test/test_sim.ml: Alcotest Array Float Fun Gen Int Int64 List QCheck QCheck_alcotest Sim
