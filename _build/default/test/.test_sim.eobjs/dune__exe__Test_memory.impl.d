test/test_memory.ml: Alcotest Array Content Hashtbl List Memory Printf QCheck QCheck_alcotest Sim
