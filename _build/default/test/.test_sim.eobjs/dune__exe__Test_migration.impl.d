test/test_migration.ml: Alcotest Array List Memory Migration Net QCheck QCheck_alcotest Result Sim String Vmm Workload
