test/test_detection.mli:
