test/test_workload.ml: Alcotest Float List Memory Printf Sim Vmm Workload
