test/test_detection.ml: Alcotest Array Cloudskulk Float Result Sim
