test/test_integration.ml: Alcotest Cloudskulk List Memory Migration Net Result Sim String Vmm Workload
