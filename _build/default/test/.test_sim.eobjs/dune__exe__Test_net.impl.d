test/test_net.ml: Alcotest Float List Net Node Printf QCheck QCheck_alcotest Sim Switch
