test/test_cloudskulk.mli:
