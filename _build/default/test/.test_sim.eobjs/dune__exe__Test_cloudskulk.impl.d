test/test_cloudskulk.ml: Alcotest Cloudskulk List Memory Migration Net Option Result Sim String Vmm
