test/test_extensions.ml: Alcotest Cloudskulk Gen List Memory Migration Net Option QCheck QCheck_alcotest Result Sim Vmm
