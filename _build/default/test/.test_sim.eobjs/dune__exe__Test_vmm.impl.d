test/test_vmm.ml: Alcotest Float List Memory Net Option Printf Result Sim String Vmm Workload
