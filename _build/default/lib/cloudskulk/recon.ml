type finding = {
  vm : Vmm.Vm.t;
  qemu_pid : Vmm.Process_table.pid;
  cmdline : string;
  config : Vmm.Qemu_config.t;
}

let list_targets host =
  let table = Vmm.Hypervisor.processes host in
  let qemu_procs = Vmm.Process_table.grep_cmdline table ~substring:"qemu-system-x86_64" in
  List.filter_map
    (fun (proc : Vmm.Process_table.proc) ->
      match Vmm.Qemu_config.of_cmdline proc.Vmm.Process_table.cmdline with
      | Error _ -> None
      | Ok config -> (
        match Vmm.Hypervisor.find_vm host config.Vmm.Qemu_config.vm_name with
        | Some vm when Vmm.Vm.is_alive vm ->
          Some { vm; qemu_pid = proc.Vmm.Process_table.pid; cmdline = proc.cmdline; config }
        | Some _ | None -> None))
    qemu_procs

let find_target host ~name =
  match List.find_opt (fun f -> Vmm.Vm.name f.vm = name) (list_targets host) with
  | Some f -> Ok f
  | None -> Error (Printf.sprintf "no running QEMU process for a VM named %s" name)

type monitor_probe = {
  status : string;
  qtree : string;
  blockstats : string;
  mtree : string;
  network : string;
}

let probe_monitor vm =
  let run cmd = Vmm.Monitor.execute_exn vm cmd in
  {
    status = run "info status";
    qtree = run "info qtree";
    blockstats = run "info blockstats";
    mtree = run "info mtree";
    network = run "info network";
  }

let probe_disk host f =
  let image = f.config.Vmm.Qemu_config.disk.Vmm.Qemu_config.image in
  match Vmm.Hypervisor.qemu_img_info host image with
  | Error e -> Error e
  | Ok info -> Vmm.Disk_image.parse_virtual_size info

let contains_substring s sub =
  let n = String.length s and m = String.length sub in
  if m = 0 then true
  else begin
    let rec scan i = i + m <= n && (String.sub s i m = sub || scan (i + 1)) in
    scan 0
  end

let verify_config f =
  let probe = probe_monitor f.vm in
  let cfg = f.config in
  let mem_str = Printf.sprintf "size %d MB" cfg.Vmm.Qemu_config.memory_mb in
  if not (contains_substring probe.mtree mem_str) then
    Error
      (Printf.sprintf "monitor reports different memory than cmdline (%d MB expected)"
         cfg.Vmm.Qemu_config.memory_mb)
  else if
    not
      (contains_substring probe.qtree cfg.Vmm.Qemu_config.netdev.Vmm.Qemu_config.model)
  then Error "monitor reports a different NIC model than the command line"
  else Ok ()
