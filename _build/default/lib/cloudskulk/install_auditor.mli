(** Host-side behavioral auditing.

    A defence-in-depth extension beyond the paper's detector: instead of
    probing memory state, audit the host for the {e footprints} a
    CloudSkulk installation leaves behind. None of these is individually
    conclusive (that is what the dedup detector is for), but each is
    cheap, and together they catch the attack both mid-installation and
    after the fact:

    - {e VMX co-launch}: a nested-VMX-capable VM appears while another
      guest with matching devices is running - the RITM staging next to
      its target.
    - {e local incoming endpoint}: a VM paused in the incoming state on
      the same host as a compatible running VM - a single-host live
      migration, which clouds rarely do legitimately.
    - {e PID/start-time inversion}: a process whose PID is older than
      its start time relative to its neighbours - the residue of the
      attacker's PID spoof.
    - {e forward to a VMX guest}: a public port-forward terminating at a
      guest that can itself host VMs - the victim's SSH now lands on a
      hypervisor.
    - {e VMCS signature}: delegated to {!Vmcs_scan}. *)

type code =
  | Vmx_colaunch
  | Local_incoming
  | Pid_inversion
  | Forward_to_vmx_guest
  | Vmcs_signature

val code_to_string : code -> string

type severity = Info | Suspicious | Alarm

val severity_to_string : severity -> string

type finding = {
  code : code;
  severity : severity;
  subject : string;  (** the VM / process / rule concerned *)
  message : string;
}

val audit : Vmm.Hypervisor.t -> finding list
(** One sweep over the host's current state. An empty list means no
    footprint was seen {e right now} - it does not prove absence. *)

val is_alarming : finding list -> bool
(** Any finding at [Alarm], or two or more at [Suspicious]. *)

val pp_finding : Format.formatter -> finding -> unit
