(** Impersonation and clean-up tricks (paper Section III-A).

    After migration, the system administrator believes GuestX {e is} the
    victim's VM. These routines make the lie hold up: GuestX reports the
    same OS, runs the same-named programs, carries the same files in
    memory, and - because "the PID is just a variable in memory" - even
    wears the victim's old QEMU PID. *)

val impersonate_os : guestx:Vmm.Vm.t -> victim:Vmm.Vm.t -> unit
(** Copy the victim's OS release string and spawn matching-named
    processes inside GuestX's (i.e. the L1 hypervisor's) OS. *)

val mirror_file : guestx:Vmm.Vm.t -> victim:Vmm.Vm.t -> name:string -> (unit, string) result
(** Copy a file the victim holds in memory into GuestX's memory with
    identical contents. The attacker does this so that VMI-style file
    checks against "the guest" (really GuestX) pass - and it is exactly
    what the dedup detector turns against them. *)

val mirror_all_files : guestx:Vmm.Vm.t -> victim:Vmm.Vm.t -> int
(** Mirror every victim file; returns how many were copied. *)

val spoof_pid :
  host:Vmm.Hypervisor.t -> guestx:Vmm.Vm.t -> old_pid:Vmm.Process_table.pid ->
  (unit, string) result
(** Renumber GuestX's QEMU process to the victim's old PID (the victim's
    process must already be dead). Updates the VM's recorded pid. *)

val sync_victim_page :
  guestx:Vmm.Vm.t -> victim:Vmm.Vm.t -> name:string -> page:int -> (unit, string) result
(** Propagate one page of a victim file change into GuestX's mirror -
    the evasion move the paper argues is unrealistically expensive at
    scale (Section VI-D); the [abl-sync] bench prices it. *)
