(** Target reconnaissance (paper Section IV-A).

    Before building the RITM, the attacker - already root on the host -
    must recover the target VM's exact QEMU configuration, because live
    migration requires a matching destination. Two paths are modelled,
    as in the paper: reading the QEMU command line from the process
    table ([ps -ef]), and interrogating the running VM's QEMU monitor
    ([info qtree], [info blockstats], [info mtree], [info network]). *)

type finding = {
  vm : Vmm.Vm.t;
  qemu_pid : Vmm.Process_table.pid;
  cmdline : string;
  config : Vmm.Qemu_config.t;  (** as recovered from the command line *)
}

val list_targets : Vmm.Hypervisor.t -> finding list
(** Every QEMU process on the host whose command line parses and whose
    VM is alive - the attacker's candidate set. *)

val find_target : Vmm.Hypervisor.t -> name:string -> (finding, string) result
(** Locate one VM by name. *)

type monitor_probe = {
  status : string;
  qtree : string;
  blockstats : string;
  mtree : string;
  network : string;
}

val probe_monitor : Vmm.Vm.t -> monitor_probe
(** The monitor-based path: what the attacker learns without [ps]. *)

val verify_config : finding -> (unit, string) result
(** Cross-check the parsed config against monitor output (memory size
    and device model must agree) - the attacker's sanity check before
    committing to the migration. *)

val probe_disk : Vmm.Hypervisor.t -> finding -> (float, string) result
(** The [qemu-img] path: read the target's image off the host's storage
    and recover its virtual size in GiB (Section IV-A's "determine the
    disk size of a running VM"). *)
