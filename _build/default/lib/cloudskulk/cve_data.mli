(** VM-escape vulnerability dataset (paper Table I).

    The CVE identifiers of VM-escape vulnerabilities reported between
    2015 and 2020, per hypervisor - the evidence behind the threat
    model's assumption that escaping to the host is realistic. *)

type hypervisor = Vmware | Virtualbox | Xen | Hyperv | Kvm_qemu

val hypervisors : hypervisor list
val hypervisor_name : hypervisor -> string

val years : int list
(** 2015 through 2020. *)

val cves : hypervisor -> year:int -> string list
(** CVE identifiers for one cell of the table. *)

val count : hypervisor -> year:int -> int
val total : hypervisor -> int
val grand_total : int

val render_table : unit -> string
(** The counts table, matching the paper's totals row
    (29/15/15/14/23). *)
