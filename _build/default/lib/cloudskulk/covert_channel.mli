(** Cross-VM covert channel over memory deduplication.

    The detector's timing primitive cuts both ways: the paper's
    reference [41] (Xiao et al., DSN'13) showed co-resident VMs can
    signal covertly through KSM. A sender and receiver share a codebook
    of unique page contents, one per bit slot. To send a 1, the sender
    loads that slot's page into its memory; for a 0 it does not. After a
    ksmd pass, the receiver writes to its own copy of each slot page: a
    copy-on-write fault (slow write) means the page was merged - the
    sender had it - so the bit is 1.

    Included because it exercises exactly the same substrate as the
    CloudSkulk detector (merge + CoW timing) from the attacker's
    direction, and because it makes a good property-test target: bits
    in, bits out. *)

type config = {
  pages_per_bit : int;
      (** redundancy: a bit is 1 when the majority of its pages were
          merged (default 1) *)
  mem_params : Memory.Mem_params.t;
  wait_factor : float;  (** ksmd full passes to wait per frame (default 2.5) *)
  codebook_seed : int;  (** both parties derive the codebook from this *)
}

val default_config : config

type transfer = {
  sent : bool list;
  received : bool list;
  bit_errors : int;
  elapsed : Sim.Time.t;
  bandwidth_bits_per_s : float;  (** virtual-time goodput *)
}

val transmit :
  ?config:config ->
  host:Vmm.Hypervisor.t ->
  sender:Vmm.Vm.t ->
  receiver:Vmm.Vm.t ->
  bool list ->
  (transfer, string) result
(** Move one frame of bits from sender to receiver. Both VMs must have
    room for the codebook pages; the sender's pages are unloaded (by
    overwriting) after the frame so slots can be reused. *)

val string_to_bits : string -> bool list
val bits_to_string : bool list -> string
(** 8-bit big-endian per character; [bits_to_string] truncates a
    trailing partial byte. *)
