type ports = {
  migration_host_port : int;
  migration_ritm_port : int;
}

type t = {
  engine : Sim.Engine.t;
  host : Vmm.Hypervisor.t;
  registry : Migration.Registry.t;
  guestx : Vmm.Vm.t;
  nested_hv : Vmm.Hypervisor.t;
  victim : Vmm.Vm.t;
  ports : ports;
  installed_at : Sim.Time.t;
}

let node_exn vm =
  match Vmm.Vm.node vm with
  | Some n -> n
  | None -> invalid_arg (Vmm.Vm.name vm ^ " has no network node")

let guestx_node t = node_exn t.guestx
let victim_node t = node_exn t.victim
let victim_level t = Vmm.Vm.level t.victim

let is_intact t =
  Vmm.Vm.is_alive t.guestx && Vmm.Vm.is_alive t.victim
  && Vmm.Level.is_nested (Vmm.Vm.level t.victim)

let pp fmt t =
  Format.fprintf fmt "RITM{guestx=%a victim=%a ports=%d->%d}" Vmm.Vm.pp t.guestx Vmm.Vm.pp
    t.victim t.ports.migration_host_port t.ports.migration_ritm_port
