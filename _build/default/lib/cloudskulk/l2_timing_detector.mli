(** Guest-side (L2) timing detection - and why the paper rejects it.

    Section VI-A: a VM user could try to detect the RITM from inside
    their own VM by timing operations whose cost explodes under nested
    virtualization (pipe latency goes from ~6.75 µs at L1 to ~65 µs at
    L2, Table III). The catch: "events and timing measurements in L2 can
    be monitored and manipulated by attackers from L1" - the L1
    hypervisor owns the guest's clock sources, so it can scale guest-
    observed time until the anomaly disappears.

    This module implements both sides:
    - the naive guest-side detector (time one reference operation
      against its provisioning-time baseline);
    - a consistency variant that times several operations with
      {e different} nesting-overhead profiles, which a single constant
      clock scale cannot normalise simultaneously;
    - the attacker's countermeasures ({!Stealth}-style):
      {!hide_reference_op} (defeats the naive detector) and full result
      spoofing (trapping the benchmark and fabricating its output -
      defeats everything, which is the paper's point and the reason
      detection belongs at L0).

    See the [abl-l2] bench for the head-to-head. *)

type verdict =
  | Looks_nested
  | Looks_normal

val verdict_to_string : verdict -> string

type config = {
  reference_op : Vmm.Cost_model.op;  (** default: lmbench pipe latency *)
  consistency_ops : Vmm.Cost_model.op list;
      (** ops with different exit/fault profiles (default: pipe,
          fork+exit, signal install) *)
  threshold : float;
      (** observed/expected ratio above which the guest cries nested
          (default 3.0) *)
  iterations : int;  (** timing-loop iterations per op (default 1000) *)
}

val default_config : config

type observation = {
  op_name : string;
  expected_l1_ns : float;  (** provisioning-time baseline *)
  observed_ns : float;  (** what the guest's clock reports now *)
  ratio : float;
}

type result = {
  observations : observation list;
  naive_verdict : verdict;  (** from the reference op alone *)
  consistency_verdict : verdict;
      (** [Looks_nested] if {e any} op's ratio trips the threshold - a
          constant clock scale can hide one profile, not all *)
  max_ratio_spread : float;
      (** max/min observed ratio across ops: > threshold spread is
          itself suspicious even if every ratio looks normal *)
}

val measure : ?config:config -> Vmm.Vm.t -> result
(** Run the guest-side timing benchmark inside a VM. The observations go
    through the VM's {!Vmm.Vm.guest_time_scale}, so an L1 attacker's
    clock manipulation affects them exactly as it would in reality.
    Advances the VM's engine by the benchmark's (real) duration. *)

(** {2 The attacker's countermeasures} *)

val hide_reference_op : ?config:config -> Vmm.Vm.t -> unit
(** Set the victim's guest clock scale so the {e reference} operation
    times exactly as it would at L1 - the cheap evasion. Other ops with
    different overhead profiles remain skewed. *)

val spoof_results : Vmm.Vm.t -> unit
(** The full evasion: L1 traps the benchmark and fabricates perfect L1
    numbers. Modelled as installing a result filter; subsequent
    {!measure} calls on this VM return baseline values exactly. *)

val stop_spoofing : Vmm.Vm.t -> unit
