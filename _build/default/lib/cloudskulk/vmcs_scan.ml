type hit = {
  vm : Vmm.Vm.t;
  page_index : int;
  content : Memory.Page.Content.t;
}

type result = {
  hits : hit list;
  vms_scanned : int;
  pages_scanned : int;
  verdict : bool;
}

let scan_vm vm =
  let ram = Vmm.Vm.ram vm in
  List.map
    (fun page_index -> { vm; page_index; content = Memory.Address_space.read ram page_index })
    (Vmm.Vmcs.scan ram)

let scan_host host =
  let vms = List.filter Vmm.Vm.is_alive (Vmm.Hypervisor.vms host) in
  let hits = List.concat_map scan_vm vms in
  let pages_scanned =
    List.fold_left (fun acc vm -> acc + Memory.Address_space.pages (Vmm.Vm.ram vm)) 0 vms
  in
  { hits; vms_scanned = List.length vms; pages_scanned; verdict = hits <> [] }
