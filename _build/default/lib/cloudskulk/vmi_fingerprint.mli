(** VMI fingerprint baseline (paper Section VI-E).

    A virtual-machine-introspection check the administrator might run:
    compare what the VM {e should} look like (recorded at provisioning
    time) against what introspection reads now - OS release, the set of
    expected processes, and the device configuration. The paper notes
    attackers evade it by making the L1 hypervisor run the same OS and
    programs as the victim; {!Stealth.impersonate_os} is exactly that
    move, and the tests show the fingerprint passing on an impersonated
    GuestX while the dedup detector still fires. *)

type fingerprint = {
  os_release : string;
  process_names : string list;  (** sorted, deduplicated *)
  memory_mb : int;
  nic_model : string;
  disk_image : string;
}

val take : Vmm.Vm.t -> fingerprint
(** Introspect a VM now. *)

type mismatch = {
  field : string;
  expected : string;
  actual : string;
}

val compare_fingerprints : expected:fingerprint -> actual:fingerprint -> mismatch list
(** Empty list = the VM looks like what was provisioned. *)

val check : expected:fingerprint -> Vmm.Vm.t -> (unit, mismatch list) result
