(** VMCS memory-forensics baseline (paper Section VI-E).

    Graziano et al.'s approach: scan each L0-visible VM's RAM for the
    layout of an Intel VT-x Virtual Machine Control Structure. Finding
    one inside a guest means that guest is running a hypervisor - i.e. a
    nested VM exists. It works against a default CloudSkulk install, but
    fails by construction when the nested hypervisor avoids VT-x
    (software emulation), which is why the paper positions the
    memory-deduplication approach as the more robust one. *)

type hit = {
  vm : Vmm.Vm.t;  (** the L0 guest whose RAM holds the structure *)
  page_index : int;
  content : Memory.Page.Content.t;
}

type result = {
  hits : hit list;
  vms_scanned : int;
  pages_scanned : int;
  verdict : bool;  (** true = a nested hypervisor was found *)
}

val scan_host : Vmm.Hypervisor.t -> result
(** Sweep every VM on the host. *)

val scan_vm : Vmm.Vm.t -> hit list
