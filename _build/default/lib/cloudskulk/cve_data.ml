type hypervisor = Vmware | Virtualbox | Xen | Hyperv | Kvm_qemu

let hypervisors = [ Vmware; Virtualbox; Xen; Hyperv; Kvm_qemu ]

let hypervisor_name = function
  | Vmware -> "VMware"
  | Virtualbox -> "VirtualBox"
  | Xen -> "Xen"
  | Hyperv -> "Hyper-V"
  | Kvm_qemu -> "KVM/QEMU"

let years = [ 2015; 2016; 2017; 2018; 2019; 2020 ]

let cves hv ~year =
  match (hv, year) with
  | Vmware, 2015 ->
    [ "CVE-2015-2336"; "CVE-2015-2337"; "CVE-2015-2338"; "CVE-2015-2339"; "CVE-2015-2340" ]
  | Vmware, 2016 -> [ "CVE-2016-7082"; "CVE-2016-7083"; "CVE-2016-7084"; "CVE-2016-7461" ]
  | Vmware, 2017 -> [ "CVE-2017-4903"; "CVE-2017-4934"; "CVE-2017-4936" ]
  | Vmware, 2018 -> [ "CVE-2018-6981"; "CVE-2018-6982" ]
  | Vmware, 2019 ->
    [ "CVE-2019-0964"; "CVE-2019-5049"; "CVE-2019-5124"; "CVE-2019-5146"; "CVE-2019-5147" ]
  | Vmware, 2020 ->
    [
      "CVE-2020-3962"; "CVE-2020-3963"; "CVE-2020-3964"; "CVE-2020-3965"; "CVE-2020-3966";
      "CVE-2020-3967"; "CVE-2020-3968"; "CVE-2020-3969"; "CVE-2020-3970"; "CVE-2020-3971";
    ]
  | Virtualbox, 2015 -> []
  | Virtualbox, 2016 -> []
  | Virtualbox, 2017 -> [ "CVE-2017-3538" ]
  | Virtualbox, 2018 ->
    [
      "CVE-2018-2676"; "CVE-2018-2685"; "CVE-2018-2686"; "CVE-2018-2687"; "CVE-2018-2688";
      "CVE-2018-2689"; "CVE-2018-2690"; "CVE-2018-2693"; "CVE-2018-2694"; "CVE-2018-2698";
      "CVE-2018-2844";
    ]
  | Virtualbox, 2019 -> [ "CVE-2019-2723"; "CVE-2019-3028" ]
  | Virtualbox, 2020 -> [ "CVE-2020-2929" ]
  | Xen, 2015 -> [ "CVE-2015-7835" ]
  | Xen, 2016 -> [ "CVE-2016-6258"; "CVE-2016-7092" ]
  | Xen, 2017 ->
    [
      "CVE-2017-8903"; "CVE-2017-8904"; "CVE-2017-8905"; "CVE-2017-10920"; "CVE-2017-10921";
      "CVE-2017-17566";
    ]
  | Xen, 2018 -> []
  | Xen, 2019 ->
    [
      "CVE-2019-18420"; "CVE-2019-18421"; "CVE-2019-18422"; "CVE-2019-18423"; "CVE-2019-18424";
      "CVE-2019-18425";
    ]
  | Xen, 2020 -> []
  | Hyperv, 2015 -> [ "CVE-2015-2361"; "CVE-2015-2362" ]
  | Hyperv, 2016 -> [ "CVE-2016-0088" ]
  | Hyperv, 2017 -> [ "CVE-2017-0075"; "CVE-2017-0109"; "CVE-2017-8664" ]
  | Hyperv, 2018 -> [ "CVE-2018-8439"; "CVE-2018-8489"; "CVE-2018-8490" ]
  | Hyperv, 2019 -> [ "CVE-2019-0620"; "CVE-2019-0709"; "CVE-2019-0722"; "CVE-2019-0887" ]
  | Hyperv, 2020 -> [ "CVE-2020-0910" ]
  | Kvm_qemu, 2015 ->
    [ "CVE-2015-3209"; "CVE-2015-3456"; "CVE-2015-5165"; "CVE-2015-7504"; "CVE-2015-5154" ]
  | Kvm_qemu, 2016 -> [ "CVE-2016-3710"; "CVE-2016-4440"; "CVE-2016-9603" ]
  | Kvm_qemu, 2017 ->
    [
      "CVE-2017-2615"; "CVE-2017-2620"; "CVE-2017-2630"; "CVE-2017-5931"; "CVE-2017-5667";
      "CVE-2017-14167";
    ]
  | Kvm_qemu, 2018 -> [ "CVE-2018-7550"; "CVE-2018-16847" ]
  | Kvm_qemu, 2019 ->
    [ "CVE-2019-6778"; "CVE-2019-7221"; "CVE-2019-14835"; "CVE-2019-14378"; "CVE-2019-18389" ]
  | Kvm_qemu, 2020 -> [ "CVE-2020-1711"; "CVE-2020-14364" ]
  | (Vmware | Virtualbox | Xen | Hyperv | Kvm_qemu), _ -> []

let count hv ~year = List.length (cves hv ~year)
let total hv = List.fold_left (fun acc y -> acc + count hv ~year:y) 0 years
let grand_total = List.fold_left (fun acc hv -> acc + total hv) 0 hypervisors

let render_table () =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "%-6s %10s %10s %6s %8s %9s\n" "Year" "VMware" "VirtualBox" "Xen" "Hyper-V"
       "KVM/QEMU");
  List.iter
    (fun year ->
      Buffer.add_string buf
        (Printf.sprintf "%-6d %10d %10d %6d %8d %9d\n" year (count Vmware ~year)
           (count Virtualbox ~year) (count Xen ~year) (count Hyperv ~year)
           (count Kvm_qemu ~year)))
    years;
  Buffer.add_string buf
    (Printf.sprintf "%-6s %10d %10d %6d %8d %9d\n" "Total" (total Vmware) (total Virtualbox)
       (total Xen) (total Hyperv) (total Kvm_qemu));
  Buffer.contents buf
