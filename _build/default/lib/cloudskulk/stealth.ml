let impersonate_os ~guestx ~victim =
  Vmm.Vm.set_os_release guestx (Vmm.Vm.os_release victim);
  let gx = Vmm.Vm.guest_processes guestx in
  let have = List.map (fun p -> p.Vmm.Process_table.name) (Vmm.Process_table.all gx) in
  List.iter
    (fun (p : Vmm.Process_table.proc) ->
      if not (List.mem p.Vmm.Process_table.name have) then
        ignore
          (Vmm.Process_table.spawn gx ~name:p.Vmm.Process_table.name
             ~cmdline:p.Vmm.Process_table.cmdline))
    (Vmm.Process_table.all (Vmm.Vm.guest_processes victim))

let read_file_image vm ~name =
  match Vmm.Vm.file_offset vm name with
  | None -> Error (Printf.sprintf "%s holds no file named %s" (Vmm.Vm.name vm) name)
  | Some offset ->
    let pages =
      match
        List.find_opt (fun (n, _, _) -> String.equal n name) (Vmm.Vm.loaded_files vm)
      with
      | Some (_, _, p) -> p
      | None -> 0
    in
    let ram = Vmm.Vm.ram vm in
    let contents = Array.init pages (fun i -> Memory.Address_space.read ram (offset + i)) in
    Ok (Memory.File_image.of_contents ~name contents)

let mirror_file ~guestx ~victim ~name =
  match read_file_image victim ~name with
  | Error e -> Error e
  | Ok image -> (
    match Vmm.Vm.load_file guestx image with
    | Ok _ -> Ok ()
    | Error e -> Error e)

let mirror_all_files ~guestx ~victim =
  List.fold_left
    (fun acc (name, _, _) ->
      match mirror_file ~guestx ~victim ~name with Ok () -> acc + 1 | Error _ -> acc)
    0 (Vmm.Vm.loaded_files victim)

let spoof_pid ~host ~guestx ~old_pid =
  let table = Vmm.Hypervisor.processes host in
  match Vmm.Process_table.reassign_pid table ~old_pid:(Vmm.Vm.qemu_pid guestx) ~new_pid:old_pid with
  | Error e -> Error e
  | Ok () ->
    Vmm.Vm.set_qemu_pid guestx old_pid;
    Ok ()

let sync_victim_page ~guestx ~victim ~name ~page =
  match (Vmm.Vm.file_offset victim name, Vmm.Vm.file_offset guestx name) with
  | None, _ -> Error (Printf.sprintf "victim holds no file named %s" name)
  | _, None -> Error (Printf.sprintf "guestx holds no mirror of %s" name)
  | Some voff, Some goff ->
    let content = Memory.Address_space.read (Vmm.Vm.ram victim) (voff + page) in
    ignore (Memory.Address_space.write (Vmm.Vm.ram guestx) (goff + page) content);
    Ok ()
