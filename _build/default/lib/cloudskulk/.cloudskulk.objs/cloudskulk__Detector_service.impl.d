lib/cloudskulk/detector_service.ml: Dedup_detector Format Hashtbl Install_auditor List Option Printf Sim String Vmm
