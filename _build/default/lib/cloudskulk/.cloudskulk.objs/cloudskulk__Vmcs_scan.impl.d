lib/cloudskulk/vmcs_scan.ml: List Memory Vmm
