lib/cloudskulk/ritm.ml: Format Migration Sim Vmm
