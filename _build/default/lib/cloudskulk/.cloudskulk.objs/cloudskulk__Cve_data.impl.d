lib/cloudskulk/cve_data.ml: Buffer List Printf
