lib/cloudskulk/l2_timing_detector.ml: Float List Sim Vmm Workload
