lib/cloudskulk/recon.ml: List Printf String Vmm
