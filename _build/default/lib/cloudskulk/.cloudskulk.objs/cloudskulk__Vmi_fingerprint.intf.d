lib/cloudskulk/vmi_fingerprint.mli: Vmm
