lib/cloudskulk/services.mli: Net Ritm Sim Vmm
