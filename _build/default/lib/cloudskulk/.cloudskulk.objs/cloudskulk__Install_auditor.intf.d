lib/cloudskulk/install_auditor.mli: Format Vmm
