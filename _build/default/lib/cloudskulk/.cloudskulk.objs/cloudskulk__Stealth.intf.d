lib/cloudskulk/stealth.mli: Vmm
