lib/cloudskulk/install.ml: Format List Migration Net Printf Recon Result Ritm Sim Stealth Vmm
