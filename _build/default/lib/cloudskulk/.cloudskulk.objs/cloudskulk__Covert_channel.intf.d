lib/cloudskulk/covert_channel.mli: Memory Sim Vmm
