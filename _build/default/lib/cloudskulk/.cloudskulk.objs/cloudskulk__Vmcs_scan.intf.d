lib/cloudskulk/vmcs_scan.mli: Memory Vmm
