lib/cloudskulk/services.ml: Buffer List Net Printf Ritm Sim String Vmm
