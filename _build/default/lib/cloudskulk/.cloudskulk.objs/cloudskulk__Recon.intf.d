lib/cloudskulk/recon.mli: Vmm
