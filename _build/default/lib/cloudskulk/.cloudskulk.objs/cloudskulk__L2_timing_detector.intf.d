lib/cloudskulk/l2_timing_detector.mli: Vmm
