lib/cloudskulk/covert_channel.ml: Array Char List Memory Printf Sim String Vmm
