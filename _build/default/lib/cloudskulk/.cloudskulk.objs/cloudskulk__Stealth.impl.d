lib/cloudskulk/stealth.ml: Array List Memory Printf String Vmm
