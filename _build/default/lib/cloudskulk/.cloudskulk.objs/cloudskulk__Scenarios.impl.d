lib/cloudskulk/scenarios.ml: Dedup_detector Install List Memory Migration Net Option Printf Result Ritm Sim Stealth String Vmm
