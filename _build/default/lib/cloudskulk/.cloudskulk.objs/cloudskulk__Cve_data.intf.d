lib/cloudskulk/cve_data.mli:
