lib/cloudskulk/dedup_detector.ml: Array Memory Printf Result Sim Vmm
