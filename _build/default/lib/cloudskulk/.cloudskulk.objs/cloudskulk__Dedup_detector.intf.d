lib/cloudskulk/dedup_detector.mli: Memory Sim Vmm
