lib/cloudskulk/ritm.mli: Format Migration Net Sim Vmm
