lib/cloudskulk/vmi_fingerprint.ml: List String Vmm
