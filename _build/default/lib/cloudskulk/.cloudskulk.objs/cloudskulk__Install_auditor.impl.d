lib/cloudskulk/install_auditor.ml: Format List Net Printf Result Sim String Vmcs_scan Vmm
