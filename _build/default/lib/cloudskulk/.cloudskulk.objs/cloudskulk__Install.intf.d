lib/cloudskulk/install.mli: Format Migration Ritm Sim Vmm
