lib/cloudskulk/scenarios.mli: Dedup_detector Install Memory Migration Ritm Sim Vmm
