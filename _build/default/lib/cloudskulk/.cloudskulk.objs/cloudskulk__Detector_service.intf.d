lib/cloudskulk/detector_service.mli: Dedup_detector Install_auditor Sim Vmm
