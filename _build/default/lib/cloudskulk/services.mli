(** Malicious services on an installed RITM (paper Section IV-B).

    {e Passive} services observe: packet capture, keystroke logging,
    pre-encryption write trapping, and running a parallel malicious OS
    beside the victim. {e Active} services tamper: dropping and
    rewriting victim traffic. All of them live at L1 - inside GuestX -
    and touch nothing in the victim's kernel, which is what makes the
    rootkit invisible to guest-side integrity checking. *)

type capture = {
  at : Sim.Time.t;
  packet : Net.Packet.t;
  observed_payload : string;  (** ciphertext for encrypted packets *)
}

(** {2 Passive services} *)

type sniffer

val start_packet_capture : Ritm.t -> sniffer
(** Record every packet crossing GuestX. *)

val captures : sniffer -> capture list
val stop_packet_capture : Ritm.t -> sniffer -> unit

type keylogger

val start_keylogger : Ritm.t -> ports:int list -> keylogger
(** Record payloads of victim-bound traffic on interactive ports
    (e.g. SSH port 22). *)

val keystrokes : keylogger -> string list
val stop_keylogger : Ritm.t -> keylogger -> unit

type write_trap

val trap_guest_writes : Ritm.t -> write_trap
(** Hook the victim's write system calls from L1: plaintext is recorded
    {e before} the guest encrypts it - defeating transport encryption. *)

val trapped_writes : write_trap -> string list
val untrap_guest_writes : Ritm.t -> write_trap -> unit

val launch_parallel_os : Ritm.t -> name:string -> memory_mb:int -> (Vmm.Vm.t, string) result
(** A separate malicious OS beside the victim under the same nested
    hypervisor (spam relay, phishing host, DDoS zombie). *)

(** {2 Active services} *)

type active_stats = {
  mutable dropped : int;
  mutable rewritten : int;
}

val drop_traffic : Ritm.t -> port:int -> active_stats
(** Silently drop victim traffic to a port (e.g. suppress outgoing
    mail). *)

val rewrite_traffic :
  Ritm.t -> port:int -> pattern:string -> replacement:string -> active_stats
(** Rewrite matching payload substrings in flight (e.g. tamper with web
    responses). Encrypted payloads pass unmodified. *)

val stop_active_service : Ritm.t -> name:string -> unit

(** {2 Victim-side traffic helper}

    Simulated applications inside the victim use this to send data; it
    reports the plaintext to the guest's write-syscall layer (where a
    write trap may listen) and then emits the - possibly encrypted -
    packet through the RITM toward the outside world. *)

val victim_send :
  Ritm.t -> dst:Net.Packet.endpoint -> ?encrypted:bool -> string -> unit
