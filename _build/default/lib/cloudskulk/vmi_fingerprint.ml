type fingerprint = {
  os_release : string;
  process_names : string list;
  memory_mb : int;
  nic_model : string;
  disk_image : string;
}

let take vm =
  let cfg = Vmm.Vm.config vm in
  let names =
    List.map
      (fun (p : Vmm.Process_table.proc) -> p.Vmm.Process_table.name)
      (Vmm.Process_table.all (Vmm.Vm.guest_processes vm))
    |> List.sort_uniq String.compare
  in
  {
    os_release = Vmm.Vm.os_release vm;
    process_names = names;
    memory_mb = cfg.Vmm.Qemu_config.memory_mb;
    nic_model = cfg.Vmm.Qemu_config.netdev.Vmm.Qemu_config.model;
    disk_image = cfg.Vmm.Qemu_config.disk.Vmm.Qemu_config.image;
  }

type mismatch = {
  field : string;
  expected : string;
  actual : string;
}

let compare_fingerprints ~expected ~actual =
  let check field exp act acc = if String.equal exp act then acc else { field; expected = exp; actual = act } :: acc in
  let missing =
    List.filter (fun n -> not (List.mem n actual.process_names)) expected.process_names
  in
  []
  |> check "os_release" expected.os_release actual.os_release
  |> check "nic_model" expected.nic_model actual.nic_model
  |> (fun acc ->
       if expected.memory_mb = actual.memory_mb then acc
       else
         { field = "memory_mb"; expected = string_of_int expected.memory_mb;
           actual = string_of_int actual.memory_mb }
         :: acc)
  |> fun acc ->
  if missing = [] then acc
  else
    { field = "processes"; expected = String.concat "," missing; actual = "(absent)" } :: acc

let check ~expected vm =
  match compare_fingerprints ~expected ~actual:(take vm) with
  | [] -> Ok ()
  | ms -> Error ms
