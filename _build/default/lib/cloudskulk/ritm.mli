(** The installed Rootkit-In-The-Middle.

    Handle to a completed CloudSkulk installation: the GuestX VM the
    attacker controls, the nested hypervisor inside it, the victim VM
    now running at L2, and the port relationships that keep the victim's
    access path unchanged. Services ({!Services}) operate on this
    handle. *)

type ports = {
  migration_host_port : int;  (** HOST PORT AAAA in the paper *)
  migration_ritm_port : int;  (** ROOTKIT PORT BBBB *)
}

type t = {
  engine : Sim.Engine.t;
  host : Vmm.Hypervisor.t;
  registry : Migration.Registry.t;
  guestx : Vmm.Vm.t;  (** the RITM VM, impersonating the victim at L1 *)
  nested_hv : Vmm.Hypervisor.t;  (** the attacker's hypervisor inside GuestX *)
  victim : Vmm.Vm.t;  (** the migrated victim, now at L2 *)
  ports : ports;
  installed_at : Sim.Time.t;
}

val guestx_node : t -> Net.Fabric.Node.t
(** GuestX's network node - every packet to or from the victim crosses
    it, which is where taps go. *)

val victim_node : t -> Net.Fabric.Node.t

val victim_level : t -> Vmm.Level.t
(** Always L2 for a standard installation. *)

val is_intact : t -> bool
(** GuestX and the victim are both still alive and the victim is
    nested. *)

val pp : Format.formatter -> t -> unit
