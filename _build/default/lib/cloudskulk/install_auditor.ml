type code =
  | Vmx_colaunch
  | Local_incoming
  | Pid_inversion
  | Forward_to_vmx_guest
  | Vmcs_signature

let code_to_string = function
  | Vmx_colaunch -> "vmx-colaunch"
  | Local_incoming -> "local-incoming"
  | Pid_inversion -> "pid-inversion"
  | Forward_to_vmx_guest -> "forward-to-vmx-guest"
  | Vmcs_signature -> "vmcs-signature"

type severity = Info | Suspicious | Alarm

let severity_to_string = function
  | Info -> "info"
  | Suspicious -> "suspicious"
  | Alarm -> "ALARM"

type finding = {
  code : code;
  severity : severity;
  subject : string;
  message : string;
}

let vmx_colaunch host =
  let vms = List.filter Vmm.Vm.is_alive (Vmm.Hypervisor.vms host) in
  let vmx_vms = List.filter (fun vm -> (Vmm.Vm.config vm).Vmm.Qemu_config.nested_vmx) vms in
  List.filter_map
    (fun vmx_vm ->
      let others = List.filter (fun v -> not (v == vmx_vm)) vms in
      if others <> [] then
        Some
          {
            code = Vmx_colaunch;
            severity = Suspicious;
            subject = Vmm.Vm.name vmx_vm;
            message =
              Printf.sprintf
                "%s exposes nested VMX while %d other guest(s) run on this host"
                (Vmm.Vm.name vmx_vm) (List.length others);
          }
      else None)
    vmx_vms

let local_incoming host =
  let vms = List.filter Vmm.Vm.is_alive (Vmm.Hypervisor.vms host) in
  List.filter_map
    (fun vm ->
      if Vmm.Vm.state vm <> Vmm.Vm.Incoming then None
      else
        let compatible_source =
          List.find_opt
            (fun src ->
              (not (src == vm))
              && Vmm.Vm.state src = Vmm.Vm.Running
              && Result.is_ok
                   (Vmm.Qemu_config.migration_compatible ~source:(Vmm.Vm.config src)
                      ~dest:(Vmm.Vm.config vm)))
            vms
        in
        match compatible_source with
        | Some src ->
          Some
            {
              code = Local_incoming;
              severity = Alarm;
              subject = Vmm.Vm.name vm;
              message =
                Printf.sprintf
                  "%s awaits an incoming migration matching running guest %s on the SAME host"
                  (Vmm.Vm.name vm) (Vmm.Vm.name src);
            }
        | None ->
          Some
            {
              code = Local_incoming;
              severity = Info;
              subject = Vmm.Vm.name vm;
              message = Vmm.Vm.name vm ^ " awaits an incoming migration";
            })
    vms

(* A reassigned PID shows up as an inversion: some process has a lower
   PID than another but started later (beyond scheduler jitter). *)
let pid_inversions host =
  let procs = Vmm.Process_table.all (Vmm.Hypervisor.processes host) in
  let tolerance = Sim.Time.ms 1. in
  let rec scan acc = function
    | [] | [ _ ] -> acc
    | a :: (b :: _ as rest) ->
      (* [all] is sorted by pid, so a.pid < b.pid *)
      let acc =
        if Sim.Time.(a.Vmm.Process_table.started_at > Sim.Time.add b.Vmm.Process_table.started_at tolerance)
        then
          {
            code = Pid_inversion;
            severity = Suspicious;
            subject = Printf.sprintf "pid %d" a.Vmm.Process_table.pid;
            message =
              Printf.sprintf
                "pid %d (%s) started at %s, after higher pid %d (%s, %s) - renumbered?"
                a.Vmm.Process_table.pid a.Vmm.Process_table.name
                (Sim.Time.to_string a.Vmm.Process_table.started_at)
                b.Vmm.Process_table.pid b.Vmm.Process_table.name
                (Sim.Time.to_string b.Vmm.Process_table.started_at);
          }
          :: acc
        else acc
      in
      scan acc rest
  in
  List.rev (scan [] procs)

let forwards_to_vmx host =
  let rules = Net.Fabric.Node.forwards (Vmm.Hypervisor.gateway host) in
  List.filter_map
    (fun (port, (to_ : Net.Packet.endpoint)) ->
      let target =
        List.find_opt
          (fun vm -> String.equal (Vmm.Vm.addr vm) to_.Net.Packet.addr)
          (Vmm.Hypervisor.vms host)
      in
      match target with
      | Some vm when (Vmm.Vm.config vm).Vmm.Qemu_config.nested_vmx ->
        Some
          {
            code = Forward_to_vmx_guest;
            severity = Suspicious;
            subject = Printf.sprintf "port %d" port;
            message =
              Printf.sprintf
                "public port %d terminates at %s, a guest with nested VMX enabled" port
                (Vmm.Vm.name vm);
          }
      | Some _ | None -> None)
    rules

let vmcs_findings host =
  let scan = Vmcs_scan.scan_host host in
  List.map
    (fun (hit : Vmcs_scan.hit) ->
      {
        code = Vmcs_signature;
        severity = Alarm;
        subject = Vmm.Vm.name hit.Vmcs_scan.vm;
        message =
          Printf.sprintf "VMCS structure at page %d of %s's RAM: it is running a hypervisor"
            hit.Vmcs_scan.page_index
            (Vmm.Vm.name hit.Vmcs_scan.vm);
      })
    scan.Vmcs_scan.hits

let audit host =
  vmx_colaunch host @ local_incoming host @ pid_inversions host @ forwards_to_vmx host
  @ vmcs_findings host

let is_alarming findings =
  List.exists (fun f -> f.severity = Alarm) findings
  || List.length (List.filter (fun f -> f.severity = Suspicious) findings) >= 2

let pp_finding fmt f =
  Format.fprintf fmt "[%s] %s (%s): %s"
    (severity_to_string f.severity)
    (code_to_string f.code) f.subject f.message
