type sample = {
  page_index : int;
  kind : Address_space.write_kind;
  cost : Sim.Time.t;
}

type result = {
  samples : sample list;
  total : Sim.Time.t;
  cow_breaks : int;
}

let probe ?(params = Mem_params.default) ~rng space ~offset ~pages =
  let rec loop i acc total breaks =
    if i >= pages then (List.rev acc, total, breaks)
    else begin
      let idx = offset + i in
      let current = Address_space.read space idx in
      (* Rewriting with a mutated content models "write one byte into the
         page": the content changes, and the cost depends on sharing. *)
      let kind = Address_space.write space idx (Page.Content.mutate current ~salt:i) in
      let cost = Mem_params.write_cost params rng kind in
      let breaks =
        match kind with Address_space.Cow_break -> breaks + 1 | Address_space.Private_write -> breaks
      in
      loop (i + 1) ({ page_index = idx; kind; cost } :: acc) (Sim.Time.add total cost) breaks
    end
  in
  let samples, total, cow_breaks = loop 0 [] Sim.Time.zero 0 in
  { samples; total; cow_breaks }

let mean_cost r =
  match List.length r.samples with
  | 0 -> Sim.Time.zero
  | n -> Sim.Time.mul r.total (1. /. float_of_int n)

let costs_ns r =
  Array.of_list (List.map (fun s -> Int64.to_float (Sim.Time.to_ns s.cost)) r.samples)

let fraction_cow r =
  match List.length r.samples with
  | 0 -> 0.
  | n -> float_of_int r.cow_breaks /. float_of_int n
