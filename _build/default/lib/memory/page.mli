(** Pages and page contents.

    The simulator does not store real page bytes; a page's content is a
    64-bit digest. Two pages are "identical" (mergeable by KSM) exactly
    when their digests are equal, which is the property the CloudSkulk
    detector depends on. *)

val size_bytes : int
(** 4096, as on the paper's x86 testbed. *)

val pages_of_bytes : int -> int
(** Number of pages needed to hold the given byte count (rounds up). *)

module Content : sig
  type t
  (** Digest of one page's contents. *)

  val zero : t
  (** The all-zeroes page (what fresh RAM holds). *)

  val of_int : int -> t
  (** Deterministic distinct content per integer tag. *)

  val random : Sim.Rng.t -> t

  val mutate : t -> salt:int -> t
  (** [mutate c ~salt] is a content derived from [c] but different from
      it - "slightly change each page" in the paper's Step 2. *)

  val of_int64 : int64 -> t
  (** Structured content with a caller-chosen bit layout - used to model
      recognisable in-memory structures (e.g. a VMCS) that scanners can
      grep for. *)

  val to_int64 : t -> int64

  val equal : t -> t -> bool
  val compare : t -> t -> int
  val hash : t -> int
  val is_zero : t -> bool
  val pp : Format.formatter -> t -> unit
end
