type t = {
  private_write : Sim.Time.t;
  cow_break : Sim.Time.t;
  noise_rsd : float;
}

let default = { private_write = Sim.Time.ns 400; cow_break = Sim.Time.us 5.5; noise_rsd = 0.08 }
let noiseless = { default with noise_rsd = 0. }

let write_cost t rng kind =
  let base =
    match kind with
    | Address_space.Private_write -> t.private_write
    | Address_space.Cow_break -> t.cow_break
  in
  Sim.Time.mul base (Sim.Rng.lognormal_noise rng ~rsd:t.noise_rsd)
