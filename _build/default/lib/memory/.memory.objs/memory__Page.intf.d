lib/memory/page.mli: Format Sim
