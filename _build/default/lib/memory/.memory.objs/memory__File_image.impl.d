lib/memory/file_image.ml: Address_space Array Hashtbl List Page
