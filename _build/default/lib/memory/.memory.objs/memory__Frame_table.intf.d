lib/memory/frame_table.mli: Page
