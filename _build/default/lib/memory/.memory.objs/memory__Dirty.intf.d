lib/memory/dirty.mli:
