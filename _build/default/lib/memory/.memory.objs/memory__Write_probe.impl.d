lib/memory/write_probe.ml: Address_space Array Int64 List Mem_params Page Sim
