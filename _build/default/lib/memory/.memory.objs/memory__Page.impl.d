lib/memory/page.ml: Format Int64 Sim
