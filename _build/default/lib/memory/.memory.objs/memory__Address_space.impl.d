lib/memory/address_space.ml: Array Dirty Format Frame_table Page Printf
