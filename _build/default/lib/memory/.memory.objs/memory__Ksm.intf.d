lib/memory/ksm.mli: Address_space Frame_table Sim
