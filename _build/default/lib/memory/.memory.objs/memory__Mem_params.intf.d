lib/memory/mem_params.mli: Address_space Sim
