lib/memory/address_space.mli: Dirty Format Frame_table Page
