lib/memory/write_probe.mli: Address_space Mem_params Sim
