lib/memory/ksm.ml: Address_space Array Format Frame_table Hashtbl List Page Sim
