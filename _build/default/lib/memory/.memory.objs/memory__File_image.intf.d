lib/memory/file_image.mli: Address_space Page Sim
