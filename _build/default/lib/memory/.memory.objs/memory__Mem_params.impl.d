lib/memory/mem_params.ml: Address_space Sim
