lib/memory/frame_table.ml: Array Page
