lib/memory/dirty.ml: Bytes Char List
