(** Kernel samepage merging (ksmd).

    A simulation of Linux's KSM daemon: a periodic scanner that walks the
    pages of registered (madvise-MERGEABLE) address spaces and merges
    pages with identical content into a single copy-on-write-protected
    frame. Follows the real ksmd structure: a {e stable tree} of already
    merged frames and an {e unstable tree} of candidate pages that is
    rebuilt on every full pass, with the [pages_to_scan] /
    [sleep_millisecs] pacing knobs from [/sys/kernel/mm/ksm]. *)

type config = {
  pages_to_scan : int;  (** pages examined per wakeup (Linux default 100) *)
  sleep : Sim.Time.t;  (** pause between wakeups (Linux default 20 ms) *)
}

val default_config : config
val fast_config : config
(** An aggressive setting (4096 pages / 1 ms) used by experiments whose
    subject is not KSM pacing itself. *)

type t

val create :
  ?config:config -> ?trace:Sim.Trace.t -> Sim.Engine.t -> Frame_table.t -> t

val register : t -> Address_space.t -> unit
(** Offer a root address space for merging. Raises [Invalid_argument] on
    a window: nested spaces are scanned through their root ancestor. *)

val unregister : t -> Address_space.t -> unit

val start : t -> unit
(** Begin periodic scanning on the engine's clock. Idempotent. *)

val stop : t -> unit

val running : t -> bool

val scan_once : t -> unit
(** Immediately examine the next [pages_to_scan] pages (a single wakeup's
    work), without touching the schedule. Useful in unit tests. *)

val full_scans : t -> int
(** Completed full passes over all registered pages. *)

val pages_merged : t -> int
(** Merge operations performed since creation. *)

val pages_shared : t -> int
(** Stable-tree frames currently live (Linux's [pages_shared]). *)

val pages_sharing : t -> int
(** Extra page references saved by sharing (Linux's [pages_sharing]). *)

val time_for_full_pass : t -> Sim.Time.t
(** Lower bound on the virtual time one full pass takes with the current
    configuration and registered population - what a detector must wait
    before trusting merge state. *)
