(** Dirty-page bitmap.

    Live migration tracks which guest pages were written since the last
    pre-copy round; the bitmap supports atomically collecting and
    clearing the dirty set, which is exactly what each round does. *)

type t

val create : int -> t
(** [create n] is a clean bitmap over [n] pages. *)

val length : t -> int
val set : t -> int -> unit
val is_dirty : t -> int -> bool
val dirty_count : t -> int
val clear : t -> unit

val collect_and_clear : t -> int list
(** Indices that were dirty, in increasing order; the bitmap is clean
    afterwards. *)

val iter_dirty : t -> (int -> unit) -> unit
