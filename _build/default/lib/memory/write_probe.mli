(** Write-timing probe.

    The measurement primitive of the CloudSkulk detector: write one byte
    to each page of a buffer and record how long each write takes. Writes
    to KSM-merged pages are much slower (copy-on-write fault) than writes
    to private pages, so the per-page timing vector reveals which pages
    were shared - without any cooperation from the guest. *)

type sample = {
  page_index : int;
  kind : Address_space.write_kind;
  cost : Sim.Time.t;
}

type result = {
  samples : sample list;  (** one per probed page, in page order *)
  total : Sim.Time.t;
  cow_breaks : int;  (** pages that were merged when probed *)
}

val probe :
  ?params:Mem_params.t ->
  rng:Sim.Rng.t ->
  Address_space.t ->
  offset:int ->
  pages:int ->
  result
(** Touch [pages] consecutive pages starting at [offset], rewriting each
    page with freshly-mutated content (so the probe itself never leaves
    two identical pages behind). Each write is timed with {!Mem_params}.
    The probe has the same side effect as the real detector's write loop:
    merged pages get unshared. *)

val mean_cost : result -> Sim.Time.t
val costs_ns : result -> float array

val fraction_cow : result -> float
(** Fraction of probed pages that were merged. *)
