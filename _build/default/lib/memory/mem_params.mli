(** Memory-write timing model.

    Calibrated against the measurements the detection approach relies on
    (paper Section VI and its refs [41], [42]): writing to a KSM-merged
    page triggers a copy-on-write fault costing several microseconds,
    while writing to a private page costs a few hundred nanoseconds. *)

type t = {
  private_write : Sim.Time.t;  (** mean cost of a normal page write *)
  cow_break : Sim.Time.t;  (** mean cost of a write that breaks a merged page *)
  noise_rsd : float;  (** relative stddev of multiplicative jitter *)
}

val default : t
(** 400 ns private, 5.5 µs CoW break, 8 % jitter. *)

val noiseless : t
(** Same means, zero jitter; for deterministic unit tests. *)

val write_cost : t -> Sim.Rng.t -> Address_space.write_kind -> Sim.Time.t
(** Sampled cost of one write of the given kind. *)
