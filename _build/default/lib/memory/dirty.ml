type t = {
  bits : Bytes.t;
  length : int;
  mutable count : int;
}

let create n = { bits = Bytes.make ((n + 7) / 8) '\000'; length = n; count = 0 }
let length t = t.length

let check t i = if i < 0 || i >= t.length then invalid_arg "Dirty: index out of range"

let is_dirty t i =
  check t i;
  Char.code (Bytes.get t.bits (i / 8)) land (1 lsl (i mod 8)) <> 0

let set t i =
  check t i;
  if not (is_dirty t i) then begin
    let byte = Char.code (Bytes.get t.bits (i / 8)) in
    Bytes.set t.bits (i / 8) (Char.chr (byte lor (1 lsl (i mod 8))));
    t.count <- t.count + 1
  end

let dirty_count t = t.count

let clear t =
  Bytes.fill t.bits 0 (Bytes.length t.bits) '\000';
  t.count <- 0

let iter_dirty t f =
  for i = 0 to t.length - 1 do
    if is_dirty t i then f i
  done

let collect_and_clear t =
  let acc = ref [] in
  iter_dirty t (fun i -> acc := i :: !acc);
  clear t;
  List.rev !acc
