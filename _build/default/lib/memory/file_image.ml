type t = {
  name : string;
  contents : Page.Content.t array;
}

let generate rng ~name ~pages =
  if pages <= 0 then invalid_arg "File_image.generate: pages must be positive";
  { name; contents = Array.init pages (fun _ -> Page.Content.random rng) }

let of_contents ~name contents = { name; contents = Array.copy contents }
let name t = t.name
let pages t = Array.length t.contents
let bytes t = Array.length t.contents * Page.size_bytes
let content t i = t.contents.(i)
let contents t = Array.copy t.contents

let mutate_all t ~salt =
  {
    name = t.name ^ "-v2";
    contents = Array.map (fun c -> Page.Content.mutate c ~salt) t.contents;
  }

let load_into t space ~offset = Address_space.load space ~offset t.contents

let matches t space ~offset =
  let n = pages t in
  let rec check i =
    i >= n || (Page.Content.equal (Address_space.read space (offset + i)) t.contents.(i) && check (i + 1))
  in
  offset + n <= Address_space.pages space && check 0

let all_pages_distinct t =
  let seen = Hashtbl.create (Array.length t.contents) in
  Array.for_all
    (fun c ->
      let key = Page.Content.hash c in
      let dup = List.exists (Page.Content.equal c) (Hashtbl.find_all seen key) in
      Hashtbl.add seen key c;
      not dup)
    t.contents
