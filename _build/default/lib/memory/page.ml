let size_bytes = 4096
let pages_of_bytes bytes = (bytes + size_bytes - 1) / size_bytes

module Content = struct
  type t = int64

  let zero = 0L

  let mix z =
    let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
    let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
    Int64.(logxor z (shift_right_logical z 31))

  (* Tag 0 must not collide with the zero page, hence the offset. *)
  let of_int n = mix (Int64.of_int (n + 0x5EED))

  let random rng = Sim.Rng.int64 rng

  let mutate c ~salt =
    let c' = mix (Int64.add c (Int64.of_int (salt + 1))) in
    if Int64.equal c' c then Int64.lognot c else c'

  let of_int64 x = x
  let to_int64 x = x
  let equal = Int64.equal
  let compare = Int64.compare
  let hash c = Int64.to_int (Int64.shift_right_logical c 3)
  let is_zero c = Int64.equal c 0L
  let pp fmt c = Format.fprintf fmt "%016Lx" c
end
