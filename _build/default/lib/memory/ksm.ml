type config = {
  pages_to_scan : int;
  sleep : Sim.Time.t;
}

let default_config = { pages_to_scan = 100; sleep = Sim.Time.ms 20. }
let fast_config = { pages_to_scan = 4096; sleep = Sim.Time.ms 1. }

module Content_tbl = Hashtbl.Make (struct
  type t = Page.Content.t

  let equal = Page.Content.equal
  let hash = Page.Content.hash
end)

type t = {
  engine : Sim.Engine.t;
  table : Frame_table.t;
  config : config;
  trace : Sim.Trace.t option;
  mutable spaces : Address_space.t list;
  stable : Frame_table.frame Content_tbl.t;
  unstable : (Address_space.t * int) Content_tbl.t;
  mutable cursor_space : int;  (* index into [spaces] *)
  mutable cursor_page : int;
  mutable full_scans : int;
  mutable merges : int;
  mutable active : bool;
}

let create ?(config = default_config) ?trace engine table =
  {
    engine;
    table;
    config;
    trace;
    spaces = [];
    stable = Content_tbl.create 4096;
    unstable = Content_tbl.create 4096;
    cursor_space = 0;
    cursor_page = 0;
    full_scans = 0;
    merges = 0;
    active = false;
  }

let emit t fmt =
  match t.trace with
  | None -> Format.ikfprintf (fun _ -> ()) Format.str_formatter fmt
  | Some tr -> Sim.Trace.emitf tr (Sim.Engine.now t.engine) Sim.Trace.Info ~component:"ksm" fmt

let register t space =
  if not (Address_space.is_root space) then
    invalid_arg "Ksm.register: only root address spaces are mergeable";
  if not (List.memq space t.spaces) then begin
    t.spaces <- t.spaces @ [ space ];
    emit t "registered %s (%d pages)" (Address_space.name space) (Address_space.pages space)
  end

let unregister t space =
  t.spaces <- List.filter (fun s -> not (s == space)) t.spaces;
  t.cursor_space <- 0;
  t.cursor_page <- 0

(* A stable-tree entry is valid only while its frame is still live,
   flagged stable, and holding the content it was indexed under (CoW can
   have recycled it). Invalid entries are pruned on lookup. *)
let stable_lookup t content =
  match Content_tbl.find_opt t.stable content with
  | None -> None
  | Some f ->
    let valid =
      Frame_table.is_live t.table f
      && Frame_table.is_stable t.table f
      && Page.Content.equal (Frame_table.content t.table f) content
    in
    if valid then Some f
    else begin
      Content_tbl.remove t.stable content;
      None
    end

(* An unstable-tree entry is a (space, index) recorded earlier in this
   pass; it is only useful if the page still holds the same content. *)
let unstable_lookup t content =
  match Content_tbl.find_opt t.unstable content with
  | None -> None
  | Some (space, i) ->
    if Page.Content.equal (Address_space.read space i) content then Some (space, i)
    else begin
      Content_tbl.remove t.unstable content;
      None
    end

let merge_into_stable t space i stable_frame =
  Address_space.remap space i stable_frame;
  t.merges <- t.merges + 1

let promote_to_stable t space i =
  let f = Address_space.frame_at space i in
  Frame_table.mark_stable t.table f;
  Content_tbl.replace t.stable (Frame_table.content t.table f) f;
  f

let scan_page t space i =
  let content = Address_space.read space i in
  let f = Address_space.frame_at space i in
  if Frame_table.is_stable t.table f then
    (* Already merged; nothing to do this pass. *)
    ()
  else
    match stable_lookup t content with
    | Some s when s <> f -> merge_into_stable t space i s
    | Some _ -> ()
    | None -> (
      match unstable_lookup t content with
      | Some (space', i') when not (space' == space && i' = i) ->
        let f' = Address_space.frame_at space' i' in
        if f' <> f then begin
          (* Two distinct frames with equal content: promote the earlier
             candidate to the stable tree and merge this page into it. *)
          let s = promote_to_stable t space' i' in
          merge_into_stable t space i s;
          Content_tbl.remove t.unstable content
        end
      | Some _ -> ()
      | None -> Content_tbl.replace t.unstable content (space, i))

let total_pages t =
  List.fold_left (fun acc s -> acc + Address_space.pages s) 0 t.spaces

let advance_cursor t =
  let spaces = Array.of_list t.spaces in
  let n = Array.length spaces in
  if n = 0 then ()
  else begin
    t.cursor_page <- t.cursor_page + 1;
    if t.cursor_page >= Address_space.pages spaces.(t.cursor_space) then begin
      t.cursor_page <- 0;
      t.cursor_space <- t.cursor_space + 1;
      if t.cursor_space >= n then begin
        t.cursor_space <- 0;
        t.full_scans <- t.full_scans + 1;
        Content_tbl.reset t.unstable;
        emit t "full pass %d complete (%d merges so far)" t.full_scans t.merges
      end
    end
  end

let scan_once t =
  let spaces = Array.of_list t.spaces in
  if Array.length spaces > 0 then
    for _ = 1 to t.config.pages_to_scan do
      if t.cursor_space < Array.length spaces then begin
        let space = spaces.(t.cursor_space) in
        if t.cursor_page < Address_space.pages space then scan_page t space t.cursor_page;
        advance_cursor t
      end
    done

let start t =
  if not t.active then begin
    t.active <- true;
    Sim.Engine.periodic t.engine ~every:t.config.sleep (fun () ->
        if t.active then scan_once t;
        t.active)
  end

let stop t = t.active <- false
let running t = t.active
let full_scans t = t.full_scans
let pages_merged t = t.merges

let pages_shared t =
  Content_tbl.fold
    (fun content f acc ->
      let live =
        Frame_table.is_live t.table f
        && Frame_table.is_stable t.table f
        && Page.Content.equal (Frame_table.content t.table f) content
      in
      if live then acc + 1 else acc)
    t.stable 0

let pages_sharing t = Frame_table.sharing_savings_pages t.table

let time_for_full_pass t =
  let pages = total_pages t in
  if pages = 0 then Sim.Time.zero
  else
    let wakeups = (pages + t.config.pages_to_scan - 1) / t.config.pages_to_scan in
    Sim.Time.mul t.config.sleep (float_of_int wakeups)
