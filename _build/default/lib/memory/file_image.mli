(** File images (the detector's File-A).

    The detection protocol needs a file whose pages are {e unique} - no
    page of it coincides with any other page in the system - plus the
    ability to derive a "slightly changed" second version (File-A-v2). *)

type t

val generate : Sim.Rng.t -> name:string -> pages:int -> t
(** A fresh file of distinct random page contents. *)

val of_contents : name:string -> Page.Content.t array -> t

val name : t -> string
val pages : t -> int
val bytes : t -> int
val content : t -> int -> Page.Content.t
val contents : t -> Page.Content.t array
(** A copy; mutating it does not affect the file. *)

val mutate_all : t -> salt:int -> t
(** File-A-v2: every page's content changed slightly (deterministically
    per [salt]), no page equal to the original's. *)

val load_into : t -> Address_space.t -> offset:int -> unit
(** Write the file's pages into consecutive pages of a space. *)

val matches : t -> Address_space.t -> offset:int -> bool
(** Does the space hold exactly this file's contents at [offset]? *)

val all_pages_distinct : t -> bool
(** The uniqueness property the protocol assumes. *)
