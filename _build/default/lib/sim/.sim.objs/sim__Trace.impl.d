lib/sim/trace.ml: Format List Queue String Time
