lib/sim/stats.ml: Array Float Format Int64 List Time
