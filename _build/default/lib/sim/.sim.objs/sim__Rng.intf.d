lib/sim/rng.mli:
