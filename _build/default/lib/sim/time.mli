(** Virtual time.

    The simulator measures time in integer nanoseconds. A value of type
    {!t} is either an instant (nanoseconds since simulation start) or a
    duration; the two are deliberately not distinguished at the type level
    because every experiment in this repository starts its clock at zero
    and the arithmetic is the same. *)

type t = int64

val zero : t

val ns : int -> t
(** [ns n] is a duration of [n] nanoseconds. *)

val us : float -> t
(** [us x] is a duration of [x] microseconds, rounded to nanoseconds. *)

val ms : float -> t
(** [ms x] is a duration of [x] milliseconds, rounded to nanoseconds. *)

val s : float -> t
(** [s x] is a duration of [x] seconds, rounded to nanoseconds. *)

val minutes : float -> t

val add : t -> t -> t
val sub : t -> t -> t
val diff : t -> t -> t
(** [diff later earlier] is [later - earlier]. *)

val mul : t -> float -> t
(** [mul d k] scales duration [d] by factor [k], rounding to nanoseconds. *)

val max : t -> t -> t
val min : t -> t -> t
val compare : t -> t -> int
val equal : t -> t -> bool
val ( <= ) : t -> t -> bool
val ( < ) : t -> t -> bool
val ( >= ) : t -> t -> bool
val ( > ) : t -> t -> bool

val to_ns : t -> int64
val to_us : t -> float
val to_ms : t -> float
val to_s : t -> float

val infinity : t
(** A time later than any reachable simulation instant. *)

val is_infinite : t -> bool

val pp : Format.formatter -> t -> unit
(** Human-readable rendering with an adaptive unit (ns/µs/ms/s). *)

val to_string : t -> string
