type t = int64

let zero = 0L
let ns n = Int64.of_int n
let of_float_ns x = Int64.of_float (Float.round x)
let us x = of_float_ns (x *. 1e3)
let ms x = of_float_ns (x *. 1e6)
let s x = of_float_ns (x *. 1e9)
let minutes x = s (x *. 60.)
let add = Int64.add
let sub = Int64.sub
let diff later earlier = Int64.sub later earlier
let mul d k = of_float_ns (Int64.to_float d *. k)
let max a b = if Int64.compare a b >= 0 then a else b
let min a b = if Int64.compare a b <= 0 then a else b
let compare = Int64.compare
let equal = Int64.equal
let ( <= ) a b = compare a b <= 0
let ( < ) a b = compare a b < 0
let ( >= ) a b = compare a b >= 0
let ( > ) a b = compare a b > 0
let to_ns t = t
let to_us t = Int64.to_float t /. 1e3
let to_ms t = Int64.to_float t /. 1e6
let to_s t = Int64.to_float t /. 1e9
let infinity = Int64.max_int
let is_infinite t = equal t infinity

let pp fmt t =
  if is_infinite t then Format.pp_print_string fmt "inf"
  else
    let f = Int64.to_float t in
    if Stdlib.( < ) f 1e3 then Format.fprintf fmt "%Ldns" t
    else if Stdlib.( < ) f 1e6 then Format.fprintf fmt "%.2fus" (f /. 1e3)
    else if Stdlib.( < ) f 1e9 then Format.fprintf fmt "%.2fms" (f /. 1e6)
    else Format.fprintf fmt "%.3fs" (f /. 1e9)

let to_string t = Format.asprintf "%a" pp t
