(** Deterministic pseudo-random numbers.

    Every stochastic component of the simulator draws from an explicit
    {!t} so that experiments are reproducible from a single seed. The
    generator is splitmix64, which is fast, has a 64-bit state, and
    supports cheap forking of independent streams ({!split}). *)

type t

val create : int -> t
(** [create seed] is a fresh generator. Equal seeds give equal streams. *)

val split : t -> t
(** [split t] advances [t] and returns an independent generator. Used to
    give each simulated component its own stream so that adding draws in
    one component does not perturb another. *)

val copy : t -> t

val int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. [bound] must be positive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

val uniform : t -> float -> float -> float
(** [uniform t lo hi] is uniform in [\[lo, hi)]. *)

val exponential : t -> float -> float
(** [exponential t mean] draws from Exp with the given mean. *)

val gaussian : t -> mu:float -> sigma:float -> float
(** Box-Muller normal draw. *)

val lognormal_noise : t -> rsd:float -> float
(** [lognormal_noise t ~rsd] is a multiplicative noise factor with mean
    [1.0] and relative standard deviation approximately [rsd]; used to
    put realistic jitter on modelled costs. [rsd = 0.] gives exactly 1. *)

val pick : t -> 'a array -> 'a
(** Uniform choice from a non-empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)
