type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let create seed = { state = mix (Int64.of_int seed) }

let int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t =
  let s = int64 t in
  { state = mix s }

let copy t = { state = t.state }

(* Top 53 bits -> float in [0, 1). *)
let unit_float t =
  let bits = Int64.shift_right_logical (int64 t) 11 in
  Int64.to_float bits *. (1. /. 9007199254740992.)

let int t bound =
  assert (bound > 0);
  (* keep 62 bits so the value fits OCaml's native positive int range *)
  let r = Int64.to_int (Int64.shift_right_logical (int64 t) 2) in
  r mod bound

let float t bound = unit_float t *. bound
let bool t = Int64.logand (int64 t) 1L = 1L
let uniform t lo hi = lo +. (unit_float t *. (hi -. lo))

let exponential t mean =
  let u = Float.max 1e-12 (unit_float t) in
  -.mean *. Float.log u

let gaussian t ~mu ~sigma =
  let u1 = Float.max 1e-12 (unit_float t) in
  let u2 = unit_float t in
  let z = Float.sqrt (-2. *. Float.log u1) *. Float.cos (2. *. Float.pi *. u2) in
  mu +. (sigma *. z)

let lognormal_noise t ~rsd =
  if rsd <= 0. then 1.
  else
    (* Parameterise the lognormal so the mean is 1 and the coefficient of
       variation is [rsd]: sigma^2 = ln(1 + rsd^2), mu = -sigma^2/2. *)
    let sigma2 = Float.log (1. +. (rsd *. rsd)) in
    let sigma = Float.sqrt sigma2 in
    Float.exp (gaussian t ~mu:(-.sigma2 /. 2.) ~sigma)

let pick t arr =
  assert (Array.length arr > 0);
  arr.(int t (Array.length arr))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done
