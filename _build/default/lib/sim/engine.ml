type event_handle = Event_queue.handle

type t = {
  mutable clock : Time.t;
  queue : (unit -> unit) Event_queue.t;
  root_rng : Rng.t;
  mutable processed : int;
}

exception Simulation_deadlock of string

let create ?(seed = 42) () =
  { clock = Time.zero; queue = Event_queue.create (); root_rng = Rng.create seed; processed = 0 }

let now t = t.clock
let rng t = t.root_rng
let fork_rng t = Rng.split t.root_rng

let schedule_at t when_ f =
  if Time.(when_ < t.clock) then
    invalid_arg
      (Format.asprintf "Engine.schedule_at: %a is before now (%a)" Time.pp when_ Time.pp t.clock);
  Event_queue.push t.queue when_ f

let schedule_after t delay f = schedule_at t (Time.add t.clock delay) f
let cancel t h = Event_queue.cancel t.queue h

let periodic t ?start ~every f =
  let first = match start with Some s -> s | None -> Time.add t.clock every in
  let rec tick () = if f () then ignore (schedule_after t every tick) in
  ignore (schedule_at t first tick)

let step t =
  match Event_queue.pop t.queue with
  | None -> false
  | Some (time, f) ->
    t.clock <- Time.max t.clock time;
    t.processed <- t.processed + 1;
    f ();
    true

let run ?(until = Time.infinity) t =
  let rec loop () =
    match Event_queue.peek_time t.queue with
    | None -> ()
    | Some next when Time.(next > until) -> ()
    | Some _ ->
      ignore (step t);
      loop ()
  in
  loop ();
  if not (Time.is_infinite until) && Time.(t.clock < until) then t.clock <- until;
  t.clock

let run_for t d = run ~until:(Time.add t.clock d) t

let advance_to t target =
  if Time.(target < t.clock) then
    invalid_arg "Engine.advance_to: target is in the past";
  (match Event_queue.peek_time t.queue with
  | Some next when Time.(next < target) ->
    raise
      (Simulation_deadlock
         (Format.asprintf
            "advance_to %a would skip a pending event at %a" Time.pp target Time.pp next))
  | Some _ | None -> ());
  t.clock <- target

let pending_events t = Event_queue.size t.queue
let events_processed t = t.processed
