type level = Debug | Info | Warn

type record = {
  time : Time.t;
  level : level;
  component : string;
  message : string;
}

type t = {
  buffer : record Queue.t;
  capacity : int;
  mutable dropped_count : int;
}

let create ?(capacity = 65536) () =
  { buffer = Queue.create (); capacity; dropped_count = 0 }

let emit t time level ~component message =
  Queue.push { time; level; component; message } t.buffer;
  if Queue.length t.buffer > t.capacity then begin
    ignore (Queue.pop t.buffer);
    t.dropped_count <- t.dropped_count + 1
  end

let emitf t time level ~component fmt =
  Format.kasprintf (fun message -> emit t time level ~component message) fmt

let records t = List.of_seq (Queue.to_seq t.buffer)

let find t ~component =
  List.filter (fun r -> String.equal r.component component) (records t)

let contains_substring s sub =
  let n = String.length s and m = String.length sub in
  if m = 0 then true
  else begin
    let rec scan i = i + m <= n && (String.sub s i m = sub || scan (i + 1)) in
    scan 0
  end

let contains t ~component ~substring =
  List.exists
    (fun r -> String.equal r.component component && contains_substring r.message substring)
    (records t)

let count t = Queue.length t.buffer
let dropped t = t.dropped_count
let clear t = Queue.clear t.buffer

let level_to_string = function
  | Debug -> "debug"
  | Info -> "info"
  | Warn -> "warn"

let pp_record fmt r =
  Format.fprintf fmt "[%a] %-5s %s: %s" Time.pp r.time (level_to_string r.level) r.component
    r.message
