(** Discrete-event simulation engine.

    An engine owns a virtual clock and an event queue. Simulated
    components schedule callbacks; {!run} drives the clock forward from
    event to event. All the substrates in this repository (memory, net,
    vmm, migration, workload) hang off one engine per experiment. *)

type t

type event_handle

val create : ?seed:int -> unit -> t
(** [create ?seed ()] is a fresh engine with its clock at {!Time.zero}.
    [seed] (default 42) seeds the engine's root {!Rng.t}. *)

val now : t -> Time.t
val rng : t -> Rng.t
(** The engine's root random stream. Components should {!fork_rng} their
    own stream instead of drawing from this directly. *)

val fork_rng : t -> Rng.t
(** An independent random stream derived from the engine's root stream. *)

val schedule_at : t -> Time.t -> (unit -> unit) -> event_handle
(** [schedule_at t when_ f] runs [f] when the clock reaches [when_].
    Scheduling in the past raises [Invalid_argument]. *)

val schedule_after : t -> Time.t -> (unit -> unit) -> event_handle
(** [schedule_after t delay f] is [schedule_at t (now t + delay)]. *)

val cancel : t -> event_handle -> unit

val periodic : t -> ?start:Time.t -> every:Time.t -> (unit -> bool) -> unit
(** [periodic t ~every f] runs [f] every [every] starting at
    [start] (default [now + every]); it stops when [f] returns [false]. *)

val run : ?until:Time.t -> t -> Time.t
(** Process events in timestamp order until the queue is empty or the
    next event is later than [until]. Returns the final clock value. If
    stopped by [until], the clock is advanced to exactly [until]. *)

val step : t -> bool
(** Process a single event; [false] if the queue was empty. *)

val run_for : t -> Time.t -> Time.t
(** [run_for t d] is [run ~until:(now t + d) t]. *)

val advance_to : t -> Time.t -> unit
(** Jump the clock forward without processing events; only valid when no
    pending event is earlier than the target (raises otherwise). Used by
    sequential cost-model code that accrues time without scheduling. *)

val pending_events : t -> int

exception Simulation_deadlock of string

val events_processed : t -> int
