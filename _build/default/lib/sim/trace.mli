(** Simulation trace.

    A lightweight in-memory event log. Components append typed records
    ("vm started", "page merged", "migration round", ...); tests and the
    CLI read them back to assert causal behaviour without timing. *)

type level = Debug | Info | Warn

type record = {
  time : Time.t;
  level : level;
  component : string;
  message : string;
}

type t

val create : ?capacity:int -> unit -> t
(** [capacity] (default 65536) bounds retained records; older records are
    dropped first once exceeded. *)

val emit : t -> Time.t -> level -> component:string -> string -> unit

val emitf :
  t -> Time.t -> level -> component:string ->
  ('a, Format.formatter, unit, unit) format4 -> 'a

val records : t -> record list
(** Records in chronological order. *)

val find : t -> component:string -> record list
val contains : t -> component:string -> substring:string -> bool
val count : t -> int
val dropped : t -> int
val clear : t -> unit
val pp_record : Format.formatter -> record -> unit
val level_to_string : level -> string
