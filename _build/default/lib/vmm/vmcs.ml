let revision_id = 0x12

(* Slot is folded into the low bits so each nested VM gets a distinct
   page, but the high bits stay fixed: that fixed prefix is the layout
   signature a scanner greps for. *)
let base = 0x564D4353_00000000L (* "VMCS" *)

let signature_content ~slot =
  Memory.Page.Content.of_int64
    (Int64.logor base (Int64.of_int ((revision_id lsl 16) lor (slot land 0xFFFF))))

let is_signature c =
  Int64.equal (Int64.logand (Memory.Page.Content.to_int64 c) 0xFFFFFFFF_FF000000L) base

let scan space =
  let hits = ref [] in
  for i = Memory.Address_space.pages space - 1 downto 0 do
    if is_signature (Memory.Address_space.read space i) then hits := i :: !hits
  done;
  !hits
