type params = {
  exit_l1 : Sim.Time.t;
  nested_exit_multiplier : float;
  nested_page_fault : Sim.Time.t;
  l2_cpu_derate : float;
}

let default_params =
  {
    exit_l1 = Sim.Time.us 1.63;
    nested_exit_multiplier = 19.0;
    nested_page_fault = Sim.Time.us 1.3;
    l2_cpu_derate = 1.03;
  }

type op = {
  name : string;
  cpu_ns : float;
  sw_exits : float;
  hw_faults_l2 : float;
  residual_l1 : float;
  residual_l2 : float;
}

let op_ns ?(sw_exits = 0.) ?(hw_faults_l2 = 0.) ?(residual_l1 = 1.0) ?residual_l2 ~name ~cpu_ns
    () =
  let residual_l2 = match residual_l2 with Some r -> r | None -> residual_l1 in
  { name; cpu_ns; sw_exits; hw_faults_l2; residual_l1; residual_l2 }

let op ?sw_exits ?hw_faults_l2 ?residual_l1 ?residual_l2 ~name ~cpu () =
  op_ns ?sw_exits ?hw_faults_l2 ?residual_l1 ?residual_l2 ~name
    ~cpu_ns:(Int64.to_float (Sim.Time.to_ns cpu))
    ()

let pure_cpu ~name ~cpu = op ~name ~cpu ()
let pure_cpu_ns ~name ~ns = op_ns ~name ~cpu_ns:ns ()

let pow base n =
  let rec go acc n = if n <= 0 then acc else go (acc *. base) (n - 1) in
  go 1.0 n

let cost_ns ?(params = default_params) ~level o =
  let ns t = Int64.to_float (Sim.Time.to_ns t) in
  match Level.to_int level with
  | 0 -> o.cpu_ns
  | 1 -> (o.cpu_ns *. o.residual_l1) +. (o.sw_exits *. ns params.exit_l1)
  | n ->
    let cpu_part = o.cpu_ns *. o.residual_l2 *. pow params.l2_cpu_derate (n - 1) in
    let exit_part =
      o.sw_exits *. ns params.exit_l1 *. pow params.nested_exit_multiplier (n - 1)
    in
    let fault_part =
      o.hw_faults_l2 *. ns params.nested_page_fault *. pow params.nested_exit_multiplier (n - 2)
    in
    cpu_part +. exit_part +. fault_part

let cost ?params ~level o = Sim.Time.ns (int_of_float (Float.round (cost_ns ?params ~level o)))

let cost_n ?params ~level o n =
  Sim.Time.ns (int_of_float (Float.round (cost_ns ?params ~level o *. float_of_int n)))

let noisy_cost ?params ~rng ~rsd ~level o =
  Sim.Time.mul (cost ?params ~level o) (Sim.Rng.lognormal_noise rng ~rsd)

let overhead_vs ?params ~level ~baseline o =
  let c_at l = cost_ns ?params ~level:l o in
  Sim.Stats.percent_change ~from_:(c_at baseline) ~to_:(c_at level)

let calibrate_hw_faults ?(params = default_params) ~name ~l0 ~l1 ~l2 () =
  let ns t = Int64.to_float (Sim.Time.to_ns t) in
  if ns l0 <= 0. then invalid_arg "calibrate_hw_faults: l0 anchor must be positive";
  let residual_l1 = ns l1 /. ns l0 in
  let cpu_part_l2 = ns l0 *. residual_l1 *. params.l2_cpu_derate in
  let hw_faults_l2 = Float.max 0. ((ns l2 -. cpu_part_l2) /. ns params.nested_page_fault) in
  op ~name ~cpu:l0 ~residual_l1 ~hw_faults_l2 ()
