(** QEMU virtual machine configuration.

    Live migration requires the destination VM to be created with the
    same device configuration as the source (paper Section IV-A), so the
    attacker's first job is recovering this record for the target - from
    the host's command lines or from monitor introspection - and the
    migration layer refuses mismatched endpoints just as QEMU does. *)

type disk = {
  image : string;  (** image file name *)
  size_gb : float;
  format : string;  (** "qcow2" / "raw" *)
}

type netdev = {
  model : string;  (** e.g. "virtio-net-pci" *)
  mac : string;
  hostfwd : (int * int) list;
      (** (host port, guest port) port-forward rules, as in
          [-netdev user,hostfwd=tcp::H-:G] *)
}

type t = {
  vm_name : string;
  memory_mb : int;
  vcpus : int;
  machine : string;  (** e.g. "pc-i440fx-2.9" *)
  cpu_model : string;
  accel_kvm : bool;
  nested_vmx : bool;  (** [-cpu host,+vmx]: can this guest host VMs? *)
  disk : disk;
  netdev : netdev;
  monitor_port : int;  (** monitor multiplexed on a telnet port *)
  vnc_display : int;
  incoming : int option;  (** [-incoming tcp:0.0.0.0:PORT] when paused awaiting migration *)
}

val default : name:string -> t
(** The paper's guest: 1024 MB, 1 vCPU, virtio disk and net, KVM on,
    QEMU 2.9-era machine type. *)

val with_incoming : t -> port:int -> t
val with_hostfwd : t -> (int * int) list -> t
val with_nested_vmx : t -> bool -> t
val with_name : t -> string -> t
val with_monitor_port : t -> int -> t

val memory_pages : t -> int

val to_cmdline : t -> string
(** The [qemu-system-x86_64 ...] invocation this config renders to; what
    appears in the host process table. *)

val of_cmdline : string -> (t, string) result
(** Parse a command line produced by {!to_cmdline} - the attacker's
    [ps -ef] reconnaissance path. *)

val migration_compatible : source:t -> dest:t -> (unit, string) result
(** QEMU's compatibility check: machine type, memory size, vCPUs, disk
    size/format and NIC model must match; names, forwarding rules,
    monitor ports and the incoming flag may differ. *)

val equal_devices : t -> t -> bool
val pp : Format.formatter -> t -> unit
