lib/vmm/layers.ml: Hypervisor Level Memory Net Printf Qemu_config Sim Vm
