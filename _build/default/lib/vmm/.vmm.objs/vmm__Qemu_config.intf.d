lib/vmm/qemu_config.mli: Format
