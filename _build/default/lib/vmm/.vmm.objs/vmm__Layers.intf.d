lib/vmm/layers.mli: Hypervisor Level Memory Net Qemu_config Sim Vm
