lib/vmm/monitor.mli: Vm
