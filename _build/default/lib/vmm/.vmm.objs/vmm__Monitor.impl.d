lib/vmm/monitor.ml: Disk_image Hashtbl List Memory Printf Qemu_config Sim String Vm
