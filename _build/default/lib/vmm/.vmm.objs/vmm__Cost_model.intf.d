lib/vmm/cost_model.mli: Level Sim
