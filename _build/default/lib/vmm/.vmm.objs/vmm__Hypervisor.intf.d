lib/vmm/hypervisor.mli: Disk_image Level Memory Net Process_table Qemu_config Sim Vm
