lib/vmm/process_table.mli: Sim
