lib/vmm/level.mli: Format
