lib/vmm/vm.mli: Disk_image Format Level Memory Net Process_table Qemu_config Sim
