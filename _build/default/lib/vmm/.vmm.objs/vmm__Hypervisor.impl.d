lib/vmm/hypervisor.ml: Disk_image Format Hashtbl Level List Memory Net Printf Process_table Qemu_config Sim String Vm Vmcs
