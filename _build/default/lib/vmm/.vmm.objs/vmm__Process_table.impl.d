lib/vmm/process_table.ml: Buffer Hashtbl Int List Printf Sim String
