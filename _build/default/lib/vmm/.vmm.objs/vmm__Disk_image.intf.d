lib/vmm/disk_image.mli:
