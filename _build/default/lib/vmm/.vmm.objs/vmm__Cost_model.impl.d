lib/vmm/cost_model.ml: Float Int64 Level Sim
