lib/vmm/vmcs.ml: Int64 Memory
