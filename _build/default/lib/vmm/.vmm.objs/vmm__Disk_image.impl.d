lib/vmm/disk_image.ml: List Printf String
