lib/vmm/qemu_config.ml: Buffer Filename Format List Memory Option Printf Result String
