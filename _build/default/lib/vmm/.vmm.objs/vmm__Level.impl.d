lib/vmm/level.ml: Format Int
