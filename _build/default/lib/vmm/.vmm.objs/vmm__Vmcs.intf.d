lib/vmm/vmcs.mli: Memory
