lib/vmm/vm.ml: Disk_image Float Format Hashtbl Level List Memory Net Option Printf Process_table Qemu_config Sim
