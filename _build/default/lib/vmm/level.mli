(** Virtualization levels, in the Turtles-project notation the paper
    follows: L0 is the hypervisor on real hardware, L1 a hypervisor
    running as L0's guest, L2 a guest of L1, and so on. *)

type t = int
(** Depth: 0 = bare metal, 1 = ordinary guest, 2 = nested guest, ... *)

val l0 : t
val l1 : t
val l2 : t

val deeper : t -> t
(** The level of a guest hosted at this level. *)

val is_virtualized : t -> bool
(** True for L1 and deeper. *)

val is_nested : t -> bool
(** True for L2 and deeper. *)

val of_int : int -> t
(** Raises [Invalid_argument] on negative depth. *)

val to_int : t -> int
val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string
