type t = int

let l0 = 0
let l1 = 1
let l2 = 2
let deeper t = t + 1
let is_virtualized t = t >= 1
let is_nested t = t >= 2

let of_int n =
  if n < 0 then invalid_arg "Level.of_int: negative depth";
  n

let to_int t = t
let equal = Int.equal
let compare = Int.compare
let pp fmt t = Format.fprintf fmt "L%d" t
let to_string t = "L" ^ string_of_int t
