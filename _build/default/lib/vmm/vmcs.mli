(** VMCS memory signatures.

    When a hypervisor uses Intel VT-x to run a guest, a Virtual Machine
    Control Structure lives in its memory. Graziano et al.'s forensic
    approach (discussed in paper Section VI-E) detects hypervisors by
    scanning RAM for this structure's layout. We model it as a
    recognisable page content that hardware-assisted launches leave in
    their host's memory - and that software-emulated nesting does not,
    which is exactly the evasion the paper points out. *)

val revision_id : int
(** The VMCS revision identifier of the modelled CPU. *)

val signature_content : slot:int -> Memory.Page.Content.t
(** Content of the VMCS page for a given VM slot. *)

val is_signature : Memory.Page.Content.t -> bool
(** Does this page content look like a VMCS? *)

val scan : Memory.Address_space.t -> int list
(** Page indices within a space whose contents match a VMCS. *)
