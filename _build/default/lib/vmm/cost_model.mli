(** Virtualization cost model.

    Predicts how long a guest operation takes at each virtualization
    level. The structure follows the mechanics the paper (Section V-B-2,
    citing the Turtles project [13] and [38]) attributes its overheads
    to:

    - pure CPU work is essentially free to virtualize; hardware
      extensions run it natively at L1, with a small residual
      cache/TLB penalty per extra level at L2+ (Table II);
    - a {e software VM exit} (hypercall, emulated I/O, interrupt window)
      costs [exit_l1] at L1, and at L2 it is trap-forwarded: the L1
      hypervisor's handling of the exit itself exits to L0 many times,
      multiplying the cost by [nested_exit_multiplier] (the reason
      pipe/socket latency explodes in Table III);
    - a {e hardware-assisted fault} (page fault filling a fresh address
      space, EPT violation) is absorbed by hardware at L1 but must be
      emulated by L0 when taken at L2 (shadow-on-EPT), costing
      [nested_page_fault] each - why fork is the worst case in
      Table III;
    - anything else (steal time, paravirt clock reads) is folded into
      per-op residual multipliers calibrated against the paper's
      measurements.

    The model extrapolates beyond L2: each extra nesting level
    multiplies exit costs again, which is what makes deeply nested
    rootkits progressively less stealthy. *)

type params = {
  exit_l1 : Sim.Time.t;  (** one software VM exit at L1 (default 1.63 µs) *)
  nested_exit_multiplier : float;
      (** cost growth of a software exit per extra nesting level
          (default 19.0) *)
  nested_page_fault : Sim.Time.t;
      (** L0-emulated hardware fault taken at L2 (default 1.3 µs) *)
  l2_cpu_derate : float;
      (** multiplicative CPU slowdown per level beyond L1
          (default 1.03) *)
}

val default_params : params

type op = {
  name : string;
  cpu_ns : float;
      (** bare-metal (L0) cost in nanoseconds; a float because lmbench's
          arithmetic rows are fractions of a nanosecond *)
  sw_exits : float;  (** software VM exits per operation *)
  hw_faults_l2 : float;
      (** hardware-assisted faults per operation that become L0-emulated
          at L2+ *)
  residual_l1 : float;  (** residual multiplier at L1 (default 1.0) *)
  residual_l2 : float;  (** residual multiplier at L2+ (default [residual_l1]) *)
}

val op :
  ?sw_exits:float ->
  ?hw_faults_l2:float ->
  ?residual_l1:float ->
  ?residual_l2:float ->
  name:string ->
  cpu:Sim.Time.t ->
  unit ->
  op

val op_ns :
  ?sw_exits:float ->
  ?hw_faults_l2:float ->
  ?residual_l1:float ->
  ?residual_l2:float ->
  name:string ->
  cpu_ns:float ->
  unit ->
  op
(** [op] with the CPU cost given directly in (possibly fractional)
    nanoseconds. *)

val pure_cpu : name:string -> cpu:Sim.Time.t -> op
(** An operation with no virtualization cost beyond the CPU derate. *)

val pure_cpu_ns : name:string -> ns:float -> op

val cost : ?params:params -> level:Level.t -> op -> Sim.Time.t
(** Modelled cost of one operation at the given level. *)

val cost_ns : ?params:params -> level:Level.t -> op -> float
(** Unrounded cost in nanoseconds - needed for sub-nanosecond ops
    (lmbench arithmetic rows are fractions of a nanosecond). *)

val cost_n : ?params:params -> level:Level.t -> op -> int -> Sim.Time.t
(** Cost of [n] consecutive operations. *)

val noisy_cost :
  ?params:params -> rng:Sim.Rng.t -> rsd:float -> level:Level.t -> op -> Sim.Time.t
(** [cost] with multiplicative lognormal jitter. *)

val overhead_vs : ?params:params -> level:Level.t -> baseline:Level.t -> op -> float
(** Percent cost increase of the op at [level] relative to [baseline]. *)

val calibrate_hw_faults :
  ?params:params ->
  name:string ->
  l0:Sim.Time.t ->
  l1:Sim.Time.t ->
  l2:Sim.Time.t ->
  unit ->
  op
(** Build an op from three measured anchors, attributing the L1 delta to
    a residual multiplier and the remaining L2 delta to hardware-assisted
    faults. Used to encode the paper's lmbench file-system rows, whose
    exit structure is not published. *)
