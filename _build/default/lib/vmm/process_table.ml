type pid = int

type proc = {
  pid : pid;
  name : string;
  cmdline : string;
  started_at : Sim.Time.t;
  parent : pid option;
}

type t = {
  engine : Sim.Engine.t;
  procs : (pid, proc) Hashtbl.t;
  mutable next_pid : pid;
}

let create ?(first_pid = 300) engine = { engine; procs = Hashtbl.create 64; next_pid = first_pid }

let fresh_pid t =
  let rec find p = if Hashtbl.mem t.procs p then find (p + 1) else p in
  let p = find t.next_pid in
  t.next_pid <- p + 1;
  p

let spawn ?parent t ~name ~cmdline =
  let proc =
    { pid = fresh_pid t; name; cmdline; started_at = Sim.Engine.now t.engine; parent }
  in
  Hashtbl.replace t.procs proc.pid proc;
  proc

let kill t pid =
  if Hashtbl.mem t.procs pid then begin
    Hashtbl.remove t.procs pid;
    true
  end
  else false

let find t pid = Hashtbl.find_opt t.procs pid
let exists t pid = Hashtbl.mem t.procs pid

let all t =
  Hashtbl.fold (fun _ p acc -> p :: acc) t.procs []
  |> List.sort (fun a b -> Int.compare a.pid b.pid)

let by_name t name = List.filter (fun p -> String.equal p.name name) (all t)
let count t = Hashtbl.length t.procs

let reassign_pid t ~old_pid ~new_pid =
  match find t old_pid with
  | None -> Error (Printf.sprintf "no process with pid %d" old_pid)
  | Some proc ->
    if old_pid = new_pid then Ok ()
    else if exists t new_pid then Error (Printf.sprintf "pid %d already in use" new_pid)
    else begin
      Hashtbl.remove t.procs old_pid;
      Hashtbl.replace t.procs new_pid { proc with pid = new_pid };
      Ok ()
    end

let contains_substring s sub =
  let n = String.length s and m = String.length sub in
  if m = 0 then true
  else begin
    let rec scan i = i + m <= n && (String.sub s i m = sub || scan (i + 1)) in
    scan 0
  end

let grep_cmdline t ~substring = List.filter (fun p -> contains_substring p.cmdline substring) (all t)

let ps_ef t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "PID\tPPID\tSTARTED\tCMD\n";
  List.iter
    (fun p ->
      Buffer.add_string buf
        (Printf.sprintf "%d\t%s\t%s\t%s\n" p.pid
           (match p.parent with Some pp -> string_of_int pp | None -> "-")
           (Sim.Time.to_string p.started_at)
           p.cmdline))
    (all t);
  Buffer.contents buf
