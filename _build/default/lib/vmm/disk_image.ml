type format = Qcow2 | Raw

let format_to_string = function Qcow2 -> "qcow2" | Raw -> "raw"

let format_of_string = function
  | "qcow2" -> Ok Qcow2
  | "raw" -> Ok Raw
  | s -> Error ("unknown image format: " ^ s)

let cluster_bytes = 64 * 1024

type t = {
  name : string;
  format : format;
  virtual_size_bytes : int;
  mutable allocated_clusters : int;
}

let metadata_clusters = 4

let create ~name ~format ~virtual_size_gb =
  if virtual_size_gb <= 0. then invalid_arg "Disk_image.create: size must be positive";
  let virtual_size_bytes = int_of_float (virtual_size_gb *. 1024. *. 1024. *. 1024.) in
  let allocated_clusters =
    match format with
    | Raw -> (virtual_size_bytes + cluster_bytes - 1) / cluster_bytes
    | Qcow2 -> metadata_clusters
  in
  { name; format; virtual_size_bytes; allocated_clusters }

let name t = t.name
let format t = t.format
let virtual_size_bytes t = t.virtual_size_bytes

let max_clusters t = (t.virtual_size_bytes + cluster_bytes - 1) / cluster_bytes
let allocated_bytes t = t.allocated_clusters * cluster_bytes

let guest_write t ~bytes =
  if bytes < 0 then invalid_arg "Disk_image.guest_write: negative size";
  let clusters = (bytes + cluster_bytes - 1) / cluster_bytes in
  t.allocated_clusters <- min (max_clusters t) (t.allocated_clusters + clusters)

let human_size bytes =
  let f = float_of_int bytes in
  if f >= 1024. ** 3. then Printf.sprintf "%.1fG" (f /. (1024. ** 3.))
  else if f >= 1024. ** 2. then Printf.sprintf "%.1fM" (f /. (1024. ** 2.))
  else Printf.sprintf "%.1fK" (f /. 1024.)

let qemu_img_info t =
  String.concat "\n"
    [
      Printf.sprintf "image: %s" t.name;
      Printf.sprintf "file format: %s" (format_to_string t.format);
      Printf.sprintf "virtual size: %s (%d bytes)" (human_size t.virtual_size_bytes)
        t.virtual_size_bytes;
      Printf.sprintf "disk size: %s" (human_size (allocated_bytes t));
      (match t.format with
      | Qcow2 -> "cluster_size: 65536"
      | Raw -> "");
    ]

let parse_virtual_size info =
  let lines = String.split_on_char '\n' info in
  let prefix = "virtual size: " in
  match
    List.find_opt (fun l -> String.length l > String.length prefix && String.sub l 0 (String.length prefix) = prefix) lines
  with
  | None -> Error "no virtual size line"
  | Some line -> (
    (* "virtual size: 20.0G (21474836480 bytes)" - use the byte count *)
    match String.index_opt line '(' with
    | None -> Error "malformed virtual size line"
    | Some i -> (
      let rest = String.sub line (i + 1) (String.length line - i - 1) in
      match String.split_on_char ' ' rest with
      | bytes_str :: _ -> (
        match int_of_string_opt bytes_str with
        | Some b -> Ok (float_of_int b /. (1024. ** 3.))
        | None -> Error ("bad byte count: " ^ bytes_str))
      | [] -> Error "malformed virtual size line"))
