(** Disk images.

    A thin model of QEMU disk images: virtual size, format, and
    cluster allocation that grows as the guest writes (qcow2's thin
    provisioning). Exists because the paper's reconnaissance uses
    [qemu-img] "to determine the disk size of a running VM"
    (Section IV-A), and because blockstats need something real behind
    them. *)

type format = Qcow2 | Raw

val format_to_string : format -> string
val format_of_string : string -> (format, string) result

type t

val create : name:string -> format:format -> virtual_size_gb:float -> t
(** A fresh image. [Raw] images are fully allocated from the start;
    [Qcow2] images start at a small metadata footprint. *)

val name : t -> string
val format : t -> format
val virtual_size_bytes : t -> int

val allocated_bytes : t -> int
(** Bytes backed by clusters on the host filesystem. *)

val guest_write : t -> bytes:int -> unit
(** Guest writes allocate clusters (first touch); rewrites of already
    allocated space are modelled by the allocation simply capping at the
    virtual size. *)

val cluster_bytes : int
(** 64 KiB, qcow2's default. *)

val qemu_img_info : t -> string
(** The [qemu-img info] rendering the attacker reads. *)

val parse_virtual_size : string -> (float, string) result
(** Recover the virtual size in GiB from a [qemu_img_info] output - the
    reconnaissance direction. *)
