type disk = {
  image : string;
  size_gb : float;
  format : string;
}

type netdev = {
  model : string;
  mac : string;
  hostfwd : (int * int) list;
}

type t = {
  vm_name : string;
  memory_mb : int;
  vcpus : int;
  machine : string;
  cpu_model : string;
  accel_kvm : bool;
  nested_vmx : bool;
  disk : disk;
  netdev : netdev;
  monitor_port : int;
  vnc_display : int;
  incoming : int option;
}

let default ~name =
  {
    vm_name = name;
    memory_mb = 1024;
    vcpus = 1;
    machine = "pc-i440fx-2.9";
    cpu_model = "host";
    accel_kvm = true;
    nested_vmx = false;
    disk = { image = name ^ ".qcow2"; size_gb = 20.; format = "qcow2" };
    netdev = { model = "virtio-net-pci"; mac = "52:54:00:12:34:56"; hostfwd = [] };
    monitor_port = 5555;
    vnc_display = 0;
    incoming = None;
  }

let with_incoming t ~port = { t with incoming = Some port }
let with_hostfwd t rules = { t with netdev = { t.netdev with hostfwd = rules } }
let with_nested_vmx t b = { t with nested_vmx = b }
let with_name t name = { t with vm_name = name }
let with_monitor_port t port = { t with monitor_port = port }
let memory_pages t = t.memory_mb * 1024 * 1024 / Memory.Page.size_bytes

let hostfwd_to_string rules =
  List.map (fun (h, g) -> Printf.sprintf ",hostfwd=tcp::%d-:%d" h g) rules |> String.concat ""

let to_cmdline t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "qemu-system-x86_64";
  Buffer.add_string buf (Printf.sprintf " -name %s" t.vm_name);
  Buffer.add_string buf (Printf.sprintf " -machine %s" t.machine);
  if t.accel_kvm then Buffer.add_string buf " -enable-kvm";
  Buffer.add_string buf
    (Printf.sprintf " -cpu %s%s" t.cpu_model (if t.nested_vmx then ",+vmx" else ""));
  Buffer.add_string buf (Printf.sprintf " -smp %d" t.vcpus);
  Buffer.add_string buf (Printf.sprintf " -m %d" t.memory_mb);
  Buffer.add_string buf
    (Printf.sprintf " -drive file=%s,format=%s,if=virtio,size=%gG" t.disk.image t.disk.format
       t.disk.size_gb);
  Buffer.add_string buf
    (Printf.sprintf " -netdev user,id=net0%s -device %s,netdev=net0,mac=%s"
       (hostfwd_to_string t.netdev.hostfwd)
       t.netdev.model t.netdev.mac);
  Buffer.add_string buf (Printf.sprintf " -monitor telnet:127.0.0.1:%d,server,nowait" t.monitor_port);
  Buffer.add_string buf (Printf.sprintf " -vnc :%d" t.vnc_display);
  (match t.incoming with
  | Some port -> Buffer.add_string buf (Printf.sprintf " -incoming tcp:0.0.0.0:%d" port)
  | None -> ());
  Buffer.contents buf

(* Parsing accepts exactly the grammar [to_cmdline] emits; the attacker
   reads back what the host launched. *)
let of_cmdline line =
  let words = String.split_on_char ' ' line |> List.filter (fun w -> w <> "") in
  match words with
  | "qemu-system-x86_64" :: rest ->
    let cfg = ref (default ~name:"parsed") in
    let err = ref None in
    let fail msg = if !err = None then err := Some msg in
    let parse_int what s =
      match int_of_string_opt s with
      | Some n -> n
      | None ->
        fail (Printf.sprintf "bad %s: %s" what s);
        0
    in
    let rec go = function
      | [] -> ()
      | "-name" :: v :: rest ->
        cfg := { !cfg with vm_name = v };
        go rest
      | "-machine" :: v :: rest ->
        cfg := { !cfg with machine = v };
        go rest
      | "-enable-kvm" :: rest ->
        cfg := { !cfg with accel_kvm = true };
        go rest
      | "-cpu" :: v :: rest ->
        let nested = Filename.check_suffix v ",+vmx" in
        let model = if nested then String.sub v 0 (String.length v - 5) else v in
        cfg := { !cfg with cpu_model = model; nested_vmx = nested };
        go rest
      | "-smp" :: v :: rest ->
        cfg := { !cfg with vcpus = parse_int "-smp" v };
        go rest
      | "-m" :: v :: rest ->
        cfg := { !cfg with memory_mb = parse_int "-m" v };
        go rest
      | "-drive" :: v :: rest ->
        let fields = String.split_on_char ',' v in
        let get key default_ =
          List.find_map
            (fun f ->
              match String.index_opt f '=' with
              | Some i when String.sub f 0 i = key ->
                Some (String.sub f (i + 1) (String.length f - i - 1))
              | Some _ | None -> None)
            fields
          |> Option.value ~default:default_
        in
        let size_str = get "size" "20G" in
        let size_gb =
          match float_of_string_opt (String.sub size_str 0 (String.length size_str - 1)) with
          | Some g -> g
          | None ->
            fail ("bad drive size: " ^ size_str);
            0.
        in
        cfg :=
          { !cfg with disk = { image = get "file" ""; format = get "format" "qcow2"; size_gb } };
        go rest
      | "-netdev" :: v :: rest ->
        let fields = String.split_on_char ',' v in
        let hostfwd =
          List.filter_map
            (fun f ->
              match String.index_opt f '=' with
              | Some i when String.sub f 0 i = "hostfwd" -> (
                (* tcp::H-:G *)
                let spec = String.sub f (i + 1) (String.length f - i - 1) in
                match String.split_on_char ':' spec with
                | [ "tcp"; ""; h; g ] -> (
                  (* "tcp::H-:G" splits to tcp / "" / "H-" / G *)
                  match int_of_string_opt (String.sub h 0 (String.length h - 1)) with
                  | Some hp -> (
                    match int_of_string_opt g with
                    | Some gp -> Some (hp, gp)
                    | None ->
                      fail ("bad hostfwd guest port: " ^ g);
                      None)
                  | None ->
                    fail ("bad hostfwd host port: " ^ h);
                    None)
                | _ ->
                  fail ("bad hostfwd: " ^ spec);
                  None)
              | Some _ | None -> None)
            fields
        in
        cfg := { !cfg with netdev = { !cfg.netdev with hostfwd } };
        go rest
      | "-device" :: v :: rest ->
        let fields = String.split_on_char ',' v in
        let model = match fields with m :: _ -> m | [] -> "virtio-net-pci" in
        let mac =
          List.find_map
            (fun f ->
              match String.index_opt f '=' with
              | Some i when String.sub f 0 i = "mac" ->
                Some (String.sub f (i + 1) (String.length f - i - 1))
              | Some _ | None -> None)
            fields
          |> Option.value ~default:"52:54:00:12:34:56"
        in
        cfg := { !cfg with netdev = { !cfg.netdev with model; mac } };
        go rest
      | "-monitor" :: v :: rest ->
        (match String.split_on_char ':' v with
        | "telnet" :: _ :: port_etc :: _ -> (
          match String.split_on_char ',' port_etc with
          | port :: _ -> cfg := { !cfg with monitor_port = parse_int "monitor port" port }
          | [] -> fail ("bad -monitor: " ^ v))
        | _ -> fail ("bad -monitor: " ^ v));
        go rest
      | "-vnc" :: v :: rest ->
        let display =
          if String.length v > 1 && v.[0] = ':' then
            parse_int "-vnc" (String.sub v 1 (String.length v - 1))
          else begin
            fail ("bad -vnc: " ^ v);
            0
          end
        in
        cfg := { !cfg with vnc_display = display };
        go rest
      | "-incoming" :: v :: rest ->
        (match String.split_on_char ':' v with
        | [ "tcp"; _; port ] -> cfg := { !cfg with incoming = Some (parse_int "-incoming" port) }
        | _ -> fail ("bad -incoming: " ^ v));
        go rest
      | flag :: rest ->
        fail ("unknown flag: " ^ flag);
        go rest
    in
    go rest;
    (match !err with Some e -> Error e | None -> Ok !cfg)
  | _ -> Error "not a qemu-system-x86_64 command line"

let migration_compatible ~source ~dest =
  let check cond msg acc = if cond then acc else msg :: acc in
  let problems =
    []
    |> check (source.machine = dest.machine) "machine type differs"
    |> check (source.memory_mb = dest.memory_mb) "memory size differs"
    |> check (source.vcpus = dest.vcpus) "vCPU count differs"
    |> check (source.disk.size_gb = dest.disk.size_gb) "disk size differs"
    |> check (source.disk.format = dest.disk.format) "disk format differs"
    |> check (source.netdev.model = dest.netdev.model) "NIC model differs"
  in
  match problems with [] -> Ok () | ps -> Error (String.concat "; " (List.rev ps))

let equal_devices a b = Result.is_ok (migration_compatible ~source:a ~dest:b)

let pp fmt t =
  Format.fprintf fmt "%s: %dMB, %d vCPU, %s disk %.0fG, nic %s%s" t.vm_name t.memory_mb t.vcpus
    t.disk.format t.disk.size_gb t.netdev.model
    (match t.incoming with Some p -> Format.sprintf " (incoming:%d)" p | None -> "")
