(** Process table of a (host or guest) operating system.

    Two roles in the reproduction: the attacker's reconnaissance reads
    QEMU command lines out of the host's table ([ps -ef] in Section
    IV-A), and the rootkit's clean-up rewrites GuestX's PID to the
    PID the victim's original QEMU held (Section III-A). *)

type pid = int

type proc = {
  pid : pid;
  name : string;
  cmdline : string;
  started_at : Sim.Time.t;
  parent : pid option;
}

type t

val create : ?first_pid:pid -> Sim.Engine.t -> t
(** [first_pid] defaults to 300, roughly where a freshly booted system
    starts handing out PIDs. *)

val spawn : ?parent:pid -> t -> name:string -> cmdline:string -> proc
val kill : t -> pid -> bool
(** [false] if no such process. *)

val find : t -> pid -> proc option
val exists : t -> pid -> bool
val by_name : t -> string -> proc list
val all : t -> proc list
(** Sorted by PID. *)

val count : t -> int

val reassign_pid : t -> old_pid:pid -> new_pid:pid -> (unit, string) result
(** Give a live process a different PID - the attacker's trick of
    renumbering GuestX's QEMU to the victim's old PID once the original
    process is dead. Fails if [old_pid] is not live or [new_pid] is
    taken. *)

val ps_ef : t -> string
(** Rendered listing, one process per line: what the attacker greps. *)

val grep_cmdline : t -> substring:string -> proc list
