lib/net/link.mli: Format Sim
