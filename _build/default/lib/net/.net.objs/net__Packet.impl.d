lib/net/packet.ml: Format String
