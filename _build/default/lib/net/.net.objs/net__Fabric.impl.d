lib/net/fabric.ml: Hashtbl Int Link List Option Packet Sim
