lib/net/link.ml: Format Sim
