lib/net/flow.mli: Link Sim
