lib/net/fabric.mli: Link Packet Sim
