lib/net/flow.ml: Link Sim
