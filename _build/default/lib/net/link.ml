type t = {
  latency : Sim.Time.t;
  bandwidth_bytes_per_s : float;
}

let make ~latency ~bandwidth_mbytes_per_s =
  if bandwidth_mbytes_per_s <= 0. then invalid_arg "Link.make: bandwidth must be positive";
  { latency; bandwidth_bytes_per_s = bandwidth_mbytes_per_s *. 1024. *. 1024. }

let loopback = make ~latency:(Sim.Time.us 50.) ~bandwidth_mbytes_per_s:2048.
let lan_1gbe = make ~latency:(Sim.Time.us 200.) ~bandwidth_mbytes_per_s:117.
let migration_loopback = make ~latency:(Sim.Time.us 80.) ~bandwidth_mbytes_per_s:50.

let transfer_time t bytes =
  let serialisation = Sim.Time.s (float_of_int bytes /. t.bandwidth_bytes_per_s) in
  Sim.Time.add t.latency serialisation

let scale_bandwidth t factor =
  if factor <= 0. then invalid_arg "Link.scale_bandwidth: factor must be positive";
  { t with bandwidth_bytes_per_s = t.bandwidth_bytes_per_s *. factor }

let pp fmt t =
  Format.fprintf fmt "link(lat=%a, bw=%.1fMB/s)" Sim.Time.pp t.latency
    (t.bandwidth_bytes_per_s /. (1024. *. 1024.))
