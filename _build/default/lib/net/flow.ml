type result = {
  bytes : int;
  elapsed : Sim.Time.t;
  throughput_mbit_s : float;
}

let throughput_mbit_s ~bytes ~elapsed =
  let secs = Sim.Time.to_s elapsed in
  if secs <= 0. then 0. else float_of_int bytes *. 8. /. 1e6 /. secs

let run engine ~link ?(derate = 1.) ?(chunk_bytes = 65536) ?(noise_rsd = 0.) ?rng ~bytes () =
  if bytes < 0 then invalid_arg "Flow.run: negative byte count";
  let link = Link.scale_bandwidth link derate in
  let rng = match rng with Some r -> r | None -> Sim.Engine.fork_rng engine in
  let started = Sim.Engine.now engine in
  let finished = ref None in
  (* TCP pipelines chunks, so propagation latency is paid once (the
     handshake), and afterwards the stream is serialisation-bound. *)
  let serialisation this =
    Sim.Time.s (float_of_int this /. link.Link.bandwidth_bytes_per_s)
  in
  let rec send_chunk remaining =
    if remaining <= 0 then finished := Some (Sim.Engine.now engine)
    else begin
      let this = min chunk_bytes remaining in
      let delay =
        Sim.Time.mul (serialisation this) (Sim.Rng.lognormal_noise rng ~rsd:noise_rsd)
      in
      ignore (Sim.Engine.schedule_after engine delay (fun () -> send_chunk (remaining - this)))
    end
  in
  ignore (Sim.Engine.schedule_after engine link.Link.latency (fun () -> send_chunk bytes));
  let rec drive () =
    match !finished with
    | Some at -> at
    | None ->
      if not (Sim.Engine.step engine) then
        raise (Sim.Engine.Simulation_deadlock "Flow.run: engine drained before flow completed")
      else drive ()
  in
  let at = drive () in
  let elapsed = Sim.Time.diff at started in
  { bytes; elapsed; throughput_mbit_s = throughput_mbit_s ~bytes ~elapsed }
