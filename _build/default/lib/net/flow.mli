(** Bulk-transfer flows.

    Models a unidirectional TCP stream (Netperf TCP_STREAM, or the
    migration byte channel) as a sequence of chunk transmissions over a
    {!Link}. Virtualization overhead enters as a bandwidth derating
    factor per virtio traversal, so L0/L1/L2 senders see slightly
    different goodput - the effect Fig 3 measures (and finds to be within
    noise for TCP bulk transfer). *)

type result = {
  bytes : int;
  elapsed : Sim.Time.t;
  throughput_mbit_s : float;
}

val run :
  Sim.Engine.t ->
  link:Link.t ->
  ?derate:float ->
  ?chunk_bytes:int ->
  ?noise_rsd:float ->
  ?rng:Sim.Rng.t ->
  bytes:int ->
  unit ->
  result
(** Simulate transferring [bytes] over [link] with effective bandwidth
    [link.bandwidth * derate] (default derate 1.0). The transfer is
    executed on the engine's virtual clock in [chunk_bytes] units
    (default 64 KiB); per-chunk jitter [noise_rsd] (default 0) models
    scheduling noise. The engine is run until the flow completes. *)

val throughput_mbit_s : bytes:int -> elapsed:Sim.Time.t -> float
