(** Network packets.

    Carried payloads are plain strings so that the rootkit's passive
    (capture, keystroke logging) and active (modify, drop) services have
    something meaningful to observe and tamper with. *)

type addr = string
(** Node address, e.g. ["10.0.0.5"]. *)

type port = int

type endpoint = {
  addr : addr;
  port : port;
}

type t = {
  id : int;
  src : endpoint;
  dst : endpoint;
  size_bytes : int;
  payload : string;
  encrypted : bool;
      (** When true, intermediaries that capture the packet see
          ciphertext; the pre-encryption write-trap service exists
          precisely because of such packets. *)
}

val make :
  ?encrypted:bool -> ?size_bytes:int -> id:int -> src:endpoint -> dst:endpoint -> string -> t
(** [size_bytes] defaults to the payload length plus a 54-byte
    Ethernet+IP+TCP header estimate. *)

val endpoint : addr -> port -> endpoint
val pp_endpoint : Format.formatter -> endpoint -> unit
val pp : Format.formatter -> t -> unit

val visible_payload : t -> string
(** What an on-path observer reads: the payload, or ["<ciphertext>"] if
    the packet is encrypted. *)
