type addr = string
type port = int

type endpoint = {
  addr : addr;
  port : port;
}

type t = {
  id : int;
  src : endpoint;
  dst : endpoint;
  size_bytes : int;
  payload : string;
  encrypted : bool;
}

let header_bytes = 54

let make ?(encrypted = false) ?size_bytes ~id ~src ~dst payload =
  let size_bytes =
    match size_bytes with Some s -> s | None -> String.length payload + header_bytes
  in
  { id; src; dst; size_bytes; payload; encrypted }

let endpoint addr port = { addr; port }
let pp_endpoint fmt e = Format.fprintf fmt "%s:%d" e.addr e.port

let pp fmt p =
  Format.fprintf fmt "#%d %a -> %a (%dB%s)" p.id pp_endpoint p.src pp_endpoint p.dst p.size_bytes
    (if p.encrypted then ", encrypted" else "")

let visible_payload p = if p.encrypted then "<ciphertext>" else p.payload
