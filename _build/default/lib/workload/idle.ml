let background ?(pages_per_second = 2.) () =
  let tick = Sim.Time.ms 500. in
  let per_tick = pages_per_second *. Sim.Time.to_s tick in
  let carry = ref 0. in
  {
    Background.name = "idle";
    tick;
    action =
      (fun env ~tick_index:_ ->
        carry := !carry +. per_tick;
        let n = int_of_float !carry in
        carry := !carry -. float_of_int n;
        Exec_env.dirty_random env n);
  }
