(** lmbench 3.0-a9 microbenchmarks (paper Tables II, III, IV).

    Each row of the paper's three lmbench tables is encoded as a
    {!Vmm.Cost_model.op}, calibrated so the model's L0/L1/L2 outputs
    land on the published measurements. The calibration is documented in
    DESIGN.md: arithmetic rows are pure CPU; pipe/socket rows carry
    software exits; fork rows carry the hardware-assisted faults that L0
    must emulate for an L2 guest; rows without a published exit
    structure (and all file-system rows) are encoded through
    {!Vmm.Cost_model.calibrate_hw_faults}. *)

(** {2 Table II: arithmetic, times in nanoseconds} *)

val arithmetic : (string * Vmm.Cost_model.op) list
(** integer bit/add/div/mod, float add/mul/div, double add/mul/div. *)

(** {2 Table III: processes, times in microseconds} *)

val processes : (string * Vmm.Cost_model.op) list
(** signal handler install/overhead, protection fault, pipe latency,
    AF_UNIX latency, fork+exit, fork+execve, fork+/bin/sh. *)

(** {2 Table IV: file system, creations/deletions per second} *)

type fs_row = {
  size_kb : int;
  create : Vmm.Cost_model.op;
  delete : Vmm.Cost_model.op;
}

val fs : fs_row list
(** Rows for 0K, 1K, 4K, 10K files. *)

(** {2 Measurement} *)

val measure :
  ?iterations:int -> Exec_env.t -> Vmm.Cost_model.op -> float
(** Mean cost per op in nanoseconds, measured by timing [iterations]
    (default 10 000) executions on the environment's clock, including
    its noise - how lmbench actually reports. *)

val ops_per_second : ns_per_op:float -> float
