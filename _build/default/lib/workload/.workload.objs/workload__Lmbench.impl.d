lib/workload/lmbench.ml: Exec_env Float Sim Vmm
