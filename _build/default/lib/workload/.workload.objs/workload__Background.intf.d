lib/workload/background.mli: Exec_env Sim
