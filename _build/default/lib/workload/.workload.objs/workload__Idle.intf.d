lib/workload/idle.mli: Background
