lib/workload/netperf.mli: Background Exec_env Net Sim
