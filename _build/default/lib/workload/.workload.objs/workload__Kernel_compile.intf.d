lib/workload/kernel_compile.mli: Background Exec_env Sim Vmm
