lib/workload/background.ml: Exec_env Sim Vmm
