lib/workload/filebench.ml: Array Background Exec_env Memory Sim Vmm
