lib/workload/exec_env.mli: Memory Sim Vmm
