lib/workload/filebench.mli: Background Exec_env Sim
