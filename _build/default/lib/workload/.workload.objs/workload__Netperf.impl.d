lib/workload/netperf.ml: Array Background Exec_env Net Sim Vmm
