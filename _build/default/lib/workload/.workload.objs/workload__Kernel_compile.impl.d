lib/workload/kernel_compile.ml: Background Exec_env Sim Vmm
