lib/workload/idle.ml: Background Exec_env Sim
