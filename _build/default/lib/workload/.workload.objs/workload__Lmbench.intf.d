lib/workload/lmbench.mli: Exec_env Vmm
