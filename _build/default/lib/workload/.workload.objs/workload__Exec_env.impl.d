lib/workload/exec_env.ml: Memory Sim Vmm
