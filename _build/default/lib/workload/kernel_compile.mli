(** Linux kernel compile workload (paper Figs 2 and 4).

    Decompress-and-compile of Linux 4.0.5, modelled as a stream of
    compile units, each a gcc invocation: CPU-heavy, fork/exec, a burst
    of fresh page faults (the dominant nested-virtualization cost), and
    object-file writes. The paper's footnote 1 applies: ccache was
    enabled on L0 only, which is why L0 looks 280 % faster than L1 -
    {!run} reproduces that by default and [~ccache_at_l0:false] shows
    the honest comparison. *)

type config = {
  compile_units : int;  (** translation units (default 2600) *)
  unit_cpu : Sim.Time.t;  (** bare-metal CPU per unit (default 330 ms) *)
  ccache_hit_factor : float;
      (** fraction of CPU left when ccache hits (default 0.26) *)
  unit_sw_exits : float;  (** I/O exits per unit (default 50) *)
  unit_hw_faults : float;
      (** fresh page faults per unit that L0 must emulate at L2
          (default 58 000) *)
  dirty_pages_per_unit : int;  (** object/page-cache pages written (default 8) *)
}

val default_config : config

val unit_op : ?ccache:bool -> config -> Vmm.Cost_model.op
(** The cost-model operation for one compile unit. *)

val run : ?ccache_at_l0:bool -> ?config:config -> Exec_env.t -> Sim.Time.t
(** Execute the full compile on the environment's clock and return its
    duration - the Fig 2 measurement. [ccache_at_l0] (default true)
    reproduces the paper's asymmetric ccache setup. *)

val background : ?config:config -> ?pages_per_second:float -> unit -> Background.spec
(** The same workload as a migration-time dirtier: a sequentially
    advancing write cursor (object files land on fresh page-cache pages)
    at [pages_per_second] (default 10 150 - about 40 MB/s, a hot
    single-job compile). *)
