type config = {
  compile_units : int;
  unit_cpu : Sim.Time.t;
  ccache_hit_factor : float;
  unit_sw_exits : float;
  unit_hw_faults : float;
  dirty_pages_per_unit : int;
}

let default_config =
  {
    compile_units = 2600;
    unit_cpu = Sim.Time.ms 330.;
    ccache_hit_factor = 0.26;
    unit_sw_exits = 50.;
    unit_hw_faults = 58_000.;
    dirty_pages_per_unit = 8;
  }

let unit_op ?(ccache = false) config =
  let cpu =
    if ccache then Sim.Time.mul config.unit_cpu config.ccache_hit_factor else config.unit_cpu
  in
  Vmm.Cost_model.op ~name:"compile-unit" ~cpu ~sw_exits:config.unit_sw_exits
    ~hw_faults_l2:config.unit_hw_faults ~residual_l1:1.02 ()

let run ?(ccache_at_l0 = true) ?(config = default_config) env =
  let ccache = ccache_at_l0 && Vmm.Level.equal env.Exec_env.level Vmm.Level.l0 in
  let op = unit_op ~ccache config in
  let cursor = ref 0 in
  let batch = 100 in
  let rec go remaining elapsed =
    if remaining <= 0 then elapsed
    else begin
      let n = min batch remaining in
      let d = Exec_env.consume env op n in
      Exec_env.dirty_sequential env ~cursor (config.dirty_pages_per_unit * n);
      (match env.Exec_env.vm with
      | Some vm ->
        let io = Vmm.Vm.io vm in
        io.Vmm.Vm.block_read_ops <- io.Vmm.Vm.block_read_ops + n;
        (* each unit leaves an object file on disk *)
        Vmm.Vm.disk_write vm ~bytes:(n * 192 * 1024)
      | None -> ());
      go (remaining - n) (Sim.Time.add elapsed d)
    end
  in
  go config.compile_units Sim.Time.zero

let background ?(config = default_config) ?(pages_per_second = 10_150.) () =
  let tick = Sim.Time.ms 50. in
  let cursor = ref 0 in
  let carry = ref 0. in
  (* each run's build is a little different (cache state, scheduling):
     draw a per-run rate factor on first tick *)
  let rate = ref None in
  ignore config.dirty_pages_per_unit;
  {
    Background.name = "kernel-compile";
    tick;
    action =
      (fun env ~tick_index:_ ->
        let pages_per_second =
          match !rate with
          | Some r -> r
          | None ->
            let r =
              pages_per_second *. Sim.Rng.lognormal_noise env.Exec_env.rng ~rsd:0.015
            in
            rate := Some r;
            r
        in
        let per_tick = pages_per_second *. Sim.Time.to_s tick in
        carry := !carry +. per_tick;
        let n = int_of_float !carry in
        carry := !carry -. float_of_int n;
        Exec_env.dirty_sequential env ~cursor n;
        match env.Exec_env.vm with
        | Some vm ->
          let io = Vmm.Vm.io vm in
          io.Vmm.Vm.block_write_ops <- io.Vmm.Vm.block_write_ops + (n / 16)
        | None -> ());
  }
