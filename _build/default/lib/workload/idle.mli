(** The idle workload: a guest whose user is connected but inactive
    (paper Section V-B-1). Only kernel housekeeping touches memory, at a
    trickle. *)

val background : ?pages_per_second:float -> unit -> Background.spec
(** Default 2 pages/s. *)
