(** Background workload driver.

    Live-migration experiments need workloads that keep running - and
    keep dirtying guest pages - {e while} the migration rounds are on
    the wire (Fig 4). A background workload is a periodic tick that
    performs its per-tick effects until stopped. *)

type spec = {
  name : string;
  tick : Sim.Time.t;
  action : Exec_env.t -> tick_index:int -> unit;
      (** side effects of one tick: dirty pages, bump I/O counters *)
}

type handle

val start : Exec_env.t -> spec -> handle
(** Begin ticking on the env's engine. *)

val stop : handle -> unit
val is_running : handle -> bool

val ticks : handle -> int
(** Ticks whose work actually ran. *)

val throttled_ticks : handle -> int
(** Ticks lost to the VM's {!Vmm.Vm.cpu_throttle} (auto-converge). *)

val name : handle -> string
