(** Filebench workload (paper Fig 4's I/O-intensive case).

    A fileserver-style personality: create / write / read / delete over
    a bounded file-cache working set. I/O-intensive but with a limited
    unique-dirty footprint, which is why its migration cost sits close
    to idle and far from the kernel compile in Fig 4. *)

type config = {
  working_set_mb : int;  (** page-cache region it recycles (default 96) *)
  ops_per_second : float;  (** filebench op rate (default 8000) *)
  dirty_pages_per_second : float;  (** unique page dirty rate (default 2000) *)
}

val default_config : config

type result = {
  ops_done : int;
  elapsed : Sim.Time.t;
  ops_per_second : float;
}

val run : ?config:config -> ?ops:int -> Exec_env.t -> result
(** Execute [ops] (default 100 000) filebench operations, pricing each
    through the cost model (creates/deletes from the lmbench fs
    calibration). *)

val background : ?config:config -> unit -> Background.spec
