type spec = {
  name : string;
  tick : Sim.Time.t;
  action : Exec_env.t -> tick_index:int -> unit;
}

type handle = {
  spec : spec;
  mutable running : bool;
  mutable tick_count : int;
  mutable throttled_ticks : int;
}

let start env spec =
  let handle = { spec; running = true; tick_count = 0; throttled_ticks = 0 } in
  let rng = Sim.Rng.split env.Exec_env.rng in
  Sim.Engine.periodic env.Exec_env.engine ~every:spec.tick (fun () ->
      if handle.running then begin
        (* a paused/stopped guest executes nothing, and a throttled vCPU
           (auto-converge) loses a fraction of its time slices *)
        let vm_running =
          match env.Exec_env.vm with
          | Some vm -> Vmm.Vm.state vm = Vmm.Vm.Running
          | None -> true
        in
        let throttle =
          match env.Exec_env.vm with Some vm -> Vmm.Vm.cpu_throttle vm | None -> 0.
        in
        if not vm_running then ()
        else if throttle > 0. && Sim.Rng.float rng 1. < throttle then
          handle.throttled_ticks <- handle.throttled_ticks + 1
        else begin
          spec.action env ~tick_index:handle.tick_count;
          handle.tick_count <- handle.tick_count + 1
        end
      end;
      handle.running);
  handle

let stop h = h.running <- false
let is_running h = h.running
let ticks h = h.tick_count
let throttled_ticks h = h.throttled_ticks
let name h = h.spec.name
