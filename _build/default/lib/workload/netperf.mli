(** Netperf TCP_STREAM workload (paper Fig 3).

    Bulk unidirectional TCP transfer from the execution environment to
    an external sink over a 1 GbE path. Virtio network I/O is efficient
    even nested (paravirtual ring buffers batch exits), so mean
    throughput barely moves across L0/L1/L2; what distinguishes the
    levels in the paper is variance (RSDs of 1.11 %, 10.32 %, 3.96 %).
    Both effects are modelled. *)

type config = {
  link : Net.Link.t;
  derate_per_level : float;  (** mean goodput factor per virtio traversal (default 0.985) *)
  rsd_by_level : float array;  (** run-to-run jitter per level, from the paper *)
  transfer_bytes : int;  (** bytes per run (default 128 MiB) *)
}

val default_config : config

type result = {
  throughput_mbit_s : float;
  elapsed : Sim.Time.t;
}

val run : ?config:config -> Exec_env.t -> result
(** One netperf run on the environment's clock. *)

val background : ?config:config -> unit -> Background.spec
(** Continuous sender for migration experiments: dirties socket-buffer
    pages at a modest rate and keeps the NIC counters moving. *)
