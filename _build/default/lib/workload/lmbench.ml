open Vmm.Cost_model

(* Table II: virtualization leaves ALU/FPU untouched; the only effect is
   the residual cache/TLB derate at L2, which the cost model applies on
   its own. *)
let arithmetic =
  let cpu_ns name ns = (name, pure_cpu_ns ~name ~ns) in
  [
    cpu_ns "integer bit" 0.26;
    cpu_ns "integer add" 0.13;
    cpu_ns "integer div" 5.94;
    cpu_ns "integer mod" 6.37;
    cpu_ns "float add" 0.75;
    cpu_ns "float mul" 1.25;
    cpu_ns "float div" 3.31;
    cpu_ns "double add" 0.75;
    cpu_ns "double mul" 1.25;
    cpu_ns "double div" 5.06;
  ]

(* Table III: see the .mli and DESIGN.md for how each row's parameters
   were derived from the paper's three anchors. *)
let processes =
  [
    ( "signal handler installation",
      op ~name:"sig-install" ~cpu:(Sim.Time.us 0.075) ~residual_l1:1.28 ~residual_l2:1.30 () );
    ( "signal handler overhead",
      op ~name:"sig-overhead" ~cpu:(Sim.Time.us 0.50) ~residual_l1:1.16 ~residual_l2:1.165 () );
    ( "protection fault",
      op ~name:"prot-fault" ~cpu:(Sim.Time.us 0.27) ~residual_l1:1.074 ~residual_l2:1.15 () );
    ("pipe latency", op ~name:"pipe" ~cpu:(Sim.Time.us 3.49) ~sw_exits:2.0 ());
    ( "AF_UNIX sock stream latency",
      op ~name:"af-unix" ~cpu:(Sim.Time.us 3.58) ~sw_exits:1.098 ~hw_faults_l2:4.84 () );
    ( "fork+exit",
      op ~name:"fork-exit" ~cpu:(Sim.Time.us 74.6) ~residual_l1:0.9873 ~hw_faults_l2:127.9 () );
    ( "fork+execve",
      op ~name:"fork-execve" ~cpu:(Sim.Time.us 245.8) ~residual_l1:1.119 ~hw_faults_l2:234.8 () );
    ( "fork+/bin/sh -c",
      op ~name:"fork-sh" ~cpu:(Sim.Time.us 918.7) ~residual_l1:1.0522 ~hw_faults_l2:638.7 () );
  ]

type fs_row = {
  size_kb : int;
  create : Vmm.Cost_model.op;
  delete : Vmm.Cost_model.op;
}

(* Table IV publishes rates (operations per second) at each level; we
   convert each to per-op microseconds and let the calibration helper
   attribute the L2 residue to emulated faults. *)
let fs_anchor ~name ~l0_rate ~l1_rate ~l2_rate =
  let us rate = Sim.Time.us (1e6 /. rate) in
  calibrate_hw_faults ~name ~l0:(us l0_rate) ~l1:(us l1_rate) ~l2:(us l2_rate) ()

let fs =
  [
    {
      size_kb = 0;
      create = fs_anchor ~name:"create-0k" ~l0_rate:126_418. ~l1_rate:121_718. ~l2_rate:2_430.;
      delete = fs_anchor ~name:"delete-0k" ~l0_rate:379_158. ~l1_rate:361_860. ~l2_rate:320_349.;
    };
    {
      size_kb = 1;
      create = fs_anchor ~name:"create-1k" ~l0_rate:99_112. ~l1_rate:97_073. ~l2_rate:62_933.;
      delete = fs_anchor ~name:"delete-1k" ~l0_rate:280_884. ~l1_rate:268_977. ~l2_rate:262_478.;
    };
    {
      size_kb = 4;
      create = fs_anchor ~name:"create-4k" ~l0_rate:99_627. ~l1_rate:95_821. ~l2_rate:96_588.;
      delete = fs_anchor ~name:"delete-4k" ~l0_rate:279_893. ~l1_rate:273_863. ~l2_rate:251_766.;
    };
    {
      size_kb = 10;
      create = fs_anchor ~name:"create-10k" ~l0_rate:79_869. ~l1_rate:77_118. ~l2_rate:70_098.;
      delete = fs_anchor ~name:"delete-10k" ~l0_rate:214_767. ~l1_rate:204_260. ~l2_rate:196_449.;
    };
  ]

let measure ?(iterations = 10_000) env op =
  let base = cost_ns ~params:env.Exec_env.params ~level:env.Exec_env.level op in
  let noisy =
    base *. Sim.Rng.lognormal_noise env.Exec_env.rng ~rsd:env.Exec_env.noise_rsd
  in
  let total = Sim.Time.ns (int_of_float (Float.round (noisy *. float_of_int iterations))) in
  ignore (Sim.Engine.run_for env.Exec_env.engine total);
  noisy

let ops_per_second ~ns_per_op = if ns_per_op <= 0. then 0. else 1e9 /. ns_per_op
