type config = {
  working_set_mb : int;
  ops_per_second : float;
  dirty_pages_per_second : float;
}

let default_config = { working_set_mb = 96; ops_per_second = 8000.; dirty_pages_per_second = 2000. }

type result = {
  ops_done : int;
  elapsed : Sim.Time.t;
  ops_per_second : float;
}

(* A representative fileserver op mix: mostly small reads/writes with a
   create+delete pair every few ops. Costs come from the same
   calibration family as the lmbench fs rows. *)
let op_mix =
  [|
    Vmm.Cost_model.op ~name:"fb-read" ~cpu:(Sim.Time.us 6.) ~sw_exits:0.5 ~hw_faults_l2:1.5 ();
    Vmm.Cost_model.op ~name:"fb-write" ~cpu:(Sim.Time.us 8.) ~sw_exits:0.8 ~hw_faults_l2:2.0 ();
    Vmm.Cost_model.op ~name:"fb-create" ~cpu:(Sim.Time.us 10.) ~sw_exits:1.0 ~hw_faults_l2:4.0
      ~residual_l1:1.03 ();
    Vmm.Cost_model.op ~name:"fb-delete" ~cpu:(Sim.Time.us 3.6) ~sw_exits:0.5 ~hw_faults_l2:0.3
      ~residual_l1:1.04 ();
  |]

let region env config =
  let total = Memory.Address_space.pages env.Exec_env.ram in
  let length = min total (config.working_set_mb * 1024 * 1024 / Memory.Page.size_bytes) in
  let offset = min (total - length) (total / 2) in
  (offset, length)

let run ?(config = default_config) ?(ops = 100_000) env =
  let offset, length = region env config in
  let started = Sim.Engine.now env.Exec_env.engine in
  let batch = 500 in
  let rec go remaining i =
    if remaining > 0 then begin
      let n = min batch remaining in
      let op = op_mix.(i mod Array.length op_mix) in
      ignore (Exec_env.consume env op n);
      Exec_env.dirty_region env ~offset ~length (n / 8);
      (match env.Exec_env.vm with
      | Some vm ->
        let io = Vmm.Vm.io vm in
        io.Vmm.Vm.block_read_ops <- io.Vmm.Vm.block_read_ops + (n / 2);
        io.Vmm.Vm.block_write_ops <- io.Vmm.Vm.block_write_ops + (n / 2);
        Vmm.Vm.disk_write vm ~bytes:(n * 2 * 1024)
      | None -> ());
      go (remaining - n) (i + 1)
    end
  in
  go ops 0;
  let elapsed = Sim.Time.diff (Sim.Engine.now env.Exec_env.engine) started in
  let secs = Sim.Time.to_s elapsed in
  { ops_done = ops; elapsed; ops_per_second = (if secs > 0. then float_of_int ops /. secs else 0.) }

let background ?(config = default_config) () =
  let tick = Sim.Time.ms 50. in
  let carry = ref 0. in
  let rate = ref None in
  {
    Background.name = "filebench";
    tick;
    action =
      (fun env ~tick_index:_ ->
        let dirty_rate =
          match !rate with
          | Some r -> r
          | None ->
            let r =
              config.dirty_pages_per_second
              *. Sim.Rng.lognormal_noise env.Exec_env.rng ~rsd:0.03
            in
            rate := Some r;
            r
        in
        let per_tick = dirty_rate *. Sim.Time.to_s tick in
        let offset, length = region env config in
        carry := !carry +. per_tick;
        let n = int_of_float !carry in
        carry := !carry -. float_of_int n;
        Exec_env.dirty_region env ~offset ~length n;
        match env.Exec_env.vm with
        | Some vm ->
          let io = Vmm.Vm.io vm in
          let ops = int_of_float (config.ops_per_second *. Sim.Time.to_s tick) in
          io.Vmm.Vm.block_read_ops <- io.Vmm.Vm.block_read_ops + (ops / 2);
          io.Vmm.Vm.block_write_ops <- io.Vmm.Vm.block_write_ops + (ops / 2)
        | None -> ());
  }
