(** Glue between the QEMU monitor and the migration engine.

    Installs a handler so that the monitor command [migrate
    tcp:host:port] on a source VM resolves the endpoint through a
    {!Registry} and runs a pre-copy (or post-copy) migration - the same
    division of labour as QEMU's monitor and migration thread. *)

type strategy =
  | Pre_copy of Precopy.config
  | Post_copy of Postcopy.config

val wire_monitor :
  ?strategy:strategy ->
  Sim.Engine.t ->
  registry:Registry.t ->
  source:Vmm.Vm.t ->
  unit ->
  unit
(** After this, [Monitor.execute source "migrate tcp:H:P"] performs the
    migration. Default strategy: pre-copy with {!Precopy.default_config}.
    The registry entry for the destination is removed on success. *)

val last_result : Vmm.Vm.t -> (Precopy.result option * Postcopy.result option) option
(** Result of the most recent migration initiated from this VM's
    monitor, if any ([fst] set for pre-copy, [snd] for post-copy). *)
