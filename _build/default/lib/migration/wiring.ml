type strategy =
  | Pre_copy of Precopy.config
  | Post_copy of Postcopy.config

(* Keyed weakly by VM name; one live wiring per source VM at a time is
   all the attack needs. *)
let results : (string, Precopy.result option * Postcopy.result option) Hashtbl.t =
  Hashtbl.create 8

let wire_monitor ?(strategy = Pre_copy Precopy.default_config) engine ~registry ~source () =
  Vmm.Vm.set_migrate_handler source (fun ~host ~port ->
      match Registry.resolve registry ~addr:host ~port with
      | Error e -> Error e
      | Ok dest -> (
        let outcome =
          match strategy with
          | Pre_copy config -> (
            match Precopy.migrate ~config engine ~source ~dest () with
            | Ok r -> Ok (Some r, None)
            | Error e -> Error e)
          | Post_copy config -> (
            match Postcopy.migrate ~config engine ~source ~dest () with
            | Ok r -> Ok (None, Some r)
            | Error e -> Error e)
        in
        match outcome with
        | Error e -> Error e
        | Ok pair ->
          Hashtbl.replace results (Vmm.Vm.name source) pair;
          Registry.unregister registry ~addr:host ~port;
          Ok ()))

let last_result vm = Hashtbl.find_opt results (Vmm.Vm.name vm)
