type config = {
  link : Net.Link.t;
  page_header_bytes : int;
  nested_dest_derate : float;
  working_set_pages : int;
  demand_fault_rate : float;
}

let default_config =
  {
    link = Net.Link.migration_loopback;
    page_header_bytes = 8;
    nested_dest_derate = 0.82;
    working_set_pages = 2048;
    demand_fault_rate = 0.02;
  }

type result = {
  downtime : Sim.Time.t;
  resume_time : Sim.Time.t;
  background_time : Sim.Time.t;
  total_time : Sim.Time.t;
  demand_faults : int;
  total_pages_sent : int;
}

let pow base n =
  let rec go acc n = if n <= 0 then acc else go (acc *. base) (n - 1) in
  go 1.0 n

let migrate ?(config = default_config) engine ~source ~dest () =
  match
    (match Vmm.Vm.state source with
    | Vmm.Vm.Running | Vmm.Vm.Paused -> (
      match Vmm.Vm.state dest with
      | Vmm.Vm.Incoming -> (
        match
          Vmm.Qemu_config.migration_compatible ~source:(Vmm.Vm.config source)
            ~dest:(Vmm.Vm.config dest)
        with
        | Error e -> Error ("incompatible configurations: " ^ e)
        | Ok () ->
          if
            Memory.Address_space.pages (Vmm.Vm.ram source)
            <> Memory.Address_space.pages (Vmm.Vm.ram dest)
          then Error "RAM size mismatch"
          else Ok ())
      | s -> Error ("destination is " ^ Vmm.Vm.state_to_string s ^ ", not incoming"))
    | s -> Error ("source is " ^ Vmm.Vm.state_to_string s ^ ", not running/paused"))
  with
  | Error e -> Error e
  | Ok () ->
    let extra = max 0 (Vmm.Level.to_int (Vmm.Vm.level dest) - 1) in
    let link = Net.Link.scale_bandwidth config.link (pow config.nested_dest_derate extra) in
    let sram = Vmm.Vm.ram source and dram = Vmm.Vm.ram dest in
    let pages = Memory.Address_space.pages sram in
    let started = Sim.Engine.now engine in
    (* Phase 1: stop the source, push device state + working set. *)
    (match Vmm.Vm.state source with
    | Vmm.Vm.Running -> (
      match Vmm.Vm.pause source with Ok () -> () | Error e -> invalid_arg e)
    | Vmm.Vm.Paused | Vmm.Vm.Created | Vmm.Vm.Incoming | Vmm.Vm.Stopped -> ());
    let ws = min config.working_set_pages pages in
    let ws_bytes = (ws * (Memory.Page.size_bytes + config.page_header_bytes)) + (512 * 1024) in
    let downtime = Net.Link.transfer_time link ws_bytes in
    ignore (Sim.Engine.run_for engine downtime);
    for i = 0 to ws - 1 do
      ignore (Memory.Address_space.write dram i (Memory.Address_space.read sram i))
    done;
    Vmm.Vm.adopt_guest_state dest ~from:source;
    (match Vmm.Vm.complete_incoming dest with Ok () -> () | Error e -> invalid_arg e);
    let resumed_at = Sim.Engine.now engine in
    (* Phase 2: background pull of the rest; a fraction arrives as
       demand faults costing an extra round trip each. *)
    let remaining = pages - ws in
    let demand_faults =
      int_of_float (Float.round (config.demand_fault_rate *. float_of_int remaining))
    in
    let stream_bytes = remaining * (Memory.Page.size_bytes + config.page_header_bytes) in
    let stream_time = Net.Link.transfer_time link stream_bytes in
    let fault_penalty = Sim.Time.mul link.Net.Link.latency (2. *. float_of_int demand_faults) in
    let background_time = Sim.Time.add stream_time fault_penalty in
    ignore (Sim.Engine.run_for engine background_time);
    for i = ws to pages - 1 do
      ignore (Memory.Address_space.write dram i (Memory.Address_space.read sram i))
    done;
    let finished = Sim.Engine.now engine in
    Ok
      {
        downtime;
        resume_time = Sim.Time.diff resumed_at started;
        background_time;
        total_time = Sim.Time.diff finished started;
        demand_faults;
        total_pages_sent = pages;
      }
