type key = Net.Packet.addr * int

type entry =
  | Listener of Vmm.Vm.t
  | Forward of key

type t = { entries : (key, entry) Hashtbl.t }

let create () = { entries = Hashtbl.create 16 }

let register_incoming t ~addr ~port vm =
  Hashtbl.replace t.entries (addr, port) (Listener vm)

let unregister t ~addr ~port = Hashtbl.remove t.entries (addr, port)

let add_forward t ~addr ~port ~to_addr ~to_port =
  Hashtbl.replace t.entries (addr, port) (Forward (to_addr, to_port))

let max_hops = 16

let resolve_with_hops t ~addr ~port =
  let rec follow key hop =
    if hop > max_hops then Error "forwarding loop (too many hops)"
    else
      match Hashtbl.find_opt t.entries key with
      | None ->
        let a, p = key in
        Error (Printf.sprintf "connection refused: nothing listening at %s:%d" a p)
      | Some (Listener vm) -> Ok (vm, hop)
      | Some (Forward next) -> follow next (hop + 1)
  in
  follow (addr, port) 0

let resolve t ~addr ~port = Result.map fst (resolve_with_hops t ~addr ~port)

let hops t ~addr ~port =
  match resolve_with_hops t ~addr ~port with Ok (_, h) -> h | Error _ -> 0
