lib/migration/wiring.ml: Hashtbl Postcopy Precopy Registry Vmm
