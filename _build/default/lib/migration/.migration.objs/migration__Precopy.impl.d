lib/migration/precopy.ml: Float Fun List Memory Net Printf Qemu_config Sim Vm Vmm
