lib/migration/postcopy.mli: Net Sim Stdlib Vmm
