lib/migration/postcopy.ml: Float Memory Net Sim Vmm
