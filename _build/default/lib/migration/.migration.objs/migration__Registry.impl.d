lib/migration/registry.ml: Hashtbl Net Printf Result Vmm
