lib/migration/wiring.mli: Postcopy Precopy Registry Sim Vmm
