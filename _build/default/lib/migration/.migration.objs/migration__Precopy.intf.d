lib/migration/precopy.mli: Net Sim Stdlib Vmm
