lib/migration/registry.mli: Net Vmm
