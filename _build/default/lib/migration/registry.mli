(** Migration endpoint registry.

    QEMU migration targets are [tcp:host:port] URIs. This registry maps
    such endpoints to VMs paused in the incoming state, and follows
    port-forward rules so that the rootkit's chain - source sends to
    HOST:AAAA, the host forwards AAAA into GuestX's BBBB, where the
    nested destination listens (paper Section IV-A) - resolves to the
    right VM. *)

type t

val create : unit -> t

val register_incoming : t -> addr:Net.Packet.addr -> port:int -> Vmm.Vm.t -> unit
(** Declare that a VM in the incoming state listens at [addr:port]. *)

val unregister : t -> addr:Net.Packet.addr -> port:int -> unit

val add_forward :
  t -> addr:Net.Packet.addr -> port:int -> to_addr:Net.Packet.addr -> to_port:int -> unit
(** NAT rule at the registry level, mirroring a gateway's hostfwd. *)

val resolve : t -> addr:Net.Packet.addr -> port:int -> (Vmm.Vm.t, string) result
(** Follow forwards (at most 16 hops; loops are reported as errors) to
    the listening VM. *)

val hops : t -> addr:Net.Packet.addr -> port:int -> int
(** Number of forward rules traversed when resolving (0 if direct). *)
