(** Post-copy live migration.

    The alternative strategy the paper notes cloud vendors may use
    (Section II-A): pause the source almost immediately, ship the device
    state and a minimal working set, resume the guest at the
    destination, and pull the remaining pages in the background (with
    demand faults for pages the guest touches first). CloudSkulk works
    over either strategy; the [abl-postcopy] bench compares install
    times under both. *)

type config = {
  link : Net.Link.t;
  page_header_bytes : int;
  nested_dest_derate : float;
  working_set_pages : int;  (** pages pushed before the destination resumes *)
  demand_fault_rate : float;
      (** fraction of background pages that arrive via a demand fault
          (network round-trip each) rather than the streaming pull *)
}

val default_config : config

type result = {
  downtime : Sim.Time.t;
  resume_time : Sim.Time.t;  (** source pause to destination running *)
  background_time : Sim.Time.t;  (** resume to last page transferred *)
  total_time : Sim.Time.t;
  demand_faults : int;
  total_pages_sent : int;
}

val migrate :
  ?config:config -> Sim.Engine.t -> source:Vmm.Vm.t -> dest:Vmm.Vm.t -> unit ->
  (result, string) Stdlib.result
(** Same preconditions and postconditions as {!Precopy.migrate}. *)
