(* Bechamel micro-benchmarks: one Test.make per paper table/figure,
   each timing the representative unit of work that experiment leans on
   (real wall-clock of the simulator, not virtual time). Useful to track
   the simulator's own performance. *)

open Bechamel
open Toolkit

(* Table I: rendering the CVE table. *)
let test_table1 =
  Test.make ~name:"table1/render-cve-table"
    (Staged.stage (fun () -> ignore (Cloudskulk.Cve_data.render_table ())))

(* Fig 2: pricing one kernel-compile unit at every level. *)
let test_fig2 =
  let op = Workload.Kernel_compile.unit_op Workload.Kernel_compile.default_config in
  Test.make ~name:"fig2/compile-unit-cost"
    (Staged.stage (fun () ->
         ignore (Vmm.Cost_model.cost_ns ~level:Vmm.Level.l0 op);
         ignore (Vmm.Cost_model.cost_ns ~level:Vmm.Level.l1 op);
         ignore (Vmm.Cost_model.cost_ns ~level:Vmm.Level.l2 op)))

(* Fig 3: one simulated netperf chunk sequence. *)
let test_fig3 =
  Test.make ~name:"fig3/flow-1MiB"
    (Staged.stage (fun () ->
         let engine = Sim.Engine.create () in
         ignore (Net.Flow.run engine ~link:Net.Link.lan_1gbe ~bytes:(1024 * 1024) ())))

(* Fig 4: one small end-to-end migration. *)
let test_fig4 =
  Test.make ~name:"fig4/migrate-8MB-idle"
    (Staged.stage (fun () ->
         let config = { (Vmm.Qemu_config.default ~name:"guest0") with Vmm.Qemu_config.memory_mb = 8 } in
         let mp =
           Vmm.Layers.migration_pair ~ksm_config:Memory.Ksm.default_config ~config
             ~nested_dest:false ()
         in
         match
           Migration.Precopy.migrate mp.Vmm.Layers.mp_engine ~source:mp.Vmm.Layers.mp_source
             ~dest:mp.Vmm.Layers.mp_dest ()
         with
         | Ok _ -> ()
         | Error e -> failwith e))

(* Tables II-IV: pricing every lmbench row at every level. *)
let test_lmbench =
  Test.make ~name:"table2-4/lmbench-pricing"
    (Staged.stage (fun () ->
         List.iter
           (fun level ->
             List.iter
               (fun (_, op) -> ignore (Vmm.Cost_model.cost_ns ~level op))
               (Workload.Lmbench.arithmetic @ Workload.Lmbench.processes))
           [ Vmm.Level.l0; Vmm.Level.l1; Vmm.Level.l2 ]))

(* Figs 5-6: one 100-page write probe against a half-merged buffer. *)
let test_fig56 =
  Test.make ~name:"fig5-6/write-probe-100-pages"
    (Staged.stage (fun () ->
         let ft = Memory.Frame_table.create () in
         let a = Memory.Address_space.create_root ft ~name:"a" ~pages:100 in
         let b = Memory.Address_space.create_root ft ~name:"b" ~pages:100 in
         for i = 0 to 99 do
           let c = Memory.Page.Content.of_int i in
           ignore (Memory.Address_space.write a i c);
           if i mod 2 = 0 then begin
             ignore (Memory.Address_space.write b i c);
             Memory.Address_space.remap b i (Memory.Address_space.frame_at a i)
           end
         done;
         let rng = Sim.Rng.create 1 in
         ignore (Memory.Write_probe.probe ~rng b ~offset:0 ~pages:100)))

(* Installation: KSM scanning one wakeup over a registered VM. *)
let test_install =
  Test.make ~name:"install/ksm-wakeup-4096-pages"
    (Staged.stage (fun () ->
         let engine = Sim.Engine.create () in
         let ft = Memory.Frame_table.create () in
         let ksm = Memory.Ksm.create ~config:Memory.Ksm.fast_config engine ft in
         let s = Memory.Address_space.create_root ft ~name:"s" ~pages:4096 in
         Memory.Ksm.register ksm s;
         Memory.Ksm.scan_once ksm))

let tests =
  Test.make_grouped ~name:"cloudskulk"
    [ test_table1; test_fig2; test_fig3; test_fig4; test_lmbench; test_fig56; test_install ]

let run () =
  Bench_util.section "Bechamel: simulator micro-benchmarks (real wall-clock)";
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) () in
  let raw = Benchmark.all cfg instances tests in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols_result ->
      let est =
        match Analyze.OLS.estimates ols_result with
        | Some (e :: _) -> Printf.sprintf "%.0f ns/run" e
        | Some [] | None -> "-"
      in
      let r2 =
        match Analyze.OLS.r_square ols_result with
        | Some r -> Printf.sprintf "%.4f" r
        | None -> "-"
      in
      rows := [ name; est; r2 ] :: !rows)
    results;
  let sorted = List.sort (fun a b -> compare (List.hd a) (List.hd b)) !rows in
  Bench_util.table ~header:[ "benchmark"; "estimate"; "r^2" ] ~rows:sorted
