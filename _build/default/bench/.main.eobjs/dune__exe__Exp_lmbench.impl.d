bench/exp_lmbench.ml: Bench_util List Printf Vmm Workload
