bench/main.mli:
