bench/exp_fig4.ml: Bench_util List Migration Sim String Vmm Workload
