bench/main.ml: Arg Bechamel_suite Cmd Cmdliner Exp_ablations Exp_detect Exp_extensions Exp_fig2 Exp_fig3 Exp_fig4 Exp_fig56 Exp_install Exp_lmbench Exp_table1 List Printf String Term
