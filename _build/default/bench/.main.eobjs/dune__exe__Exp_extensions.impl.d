bench/exp_extensions.ml: Bench_util Cloudskulk List Memory Migration Net Printf Result Sim Vmm
