bench/exp_install.ml: Bench_util Cloudskulk List Migration Net Printf Sim Vmm
