bench/bench_util.ml: List Printf Sim String
