bench/exp_table1.ml: Bench_util Cloudskulk Printf
