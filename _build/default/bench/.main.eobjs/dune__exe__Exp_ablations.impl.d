bench/exp_ablations.ml: Bench_util Cloudskulk List Memory Migration Net Option Printf Result Sim Vmm Workload
