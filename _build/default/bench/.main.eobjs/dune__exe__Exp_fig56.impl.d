bench/exp_fig56.ml: Array Bench_util Cloudskulk Float Printf Sim String
