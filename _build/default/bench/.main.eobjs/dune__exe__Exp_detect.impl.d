bench/exp_detect.ml: Bench_util Cloudskulk List Printf
