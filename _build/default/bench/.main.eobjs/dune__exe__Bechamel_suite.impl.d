bench/bechamel_suite.ml: Analyze Bechamel Bench_util Benchmark Cloudskulk Hashtbl Instance List Measure Memory Migration Net Printf Sim Staged Test Time Toolkit Vmm Workload
