bench/exp_fig2.ml: Bench_util List Printf Sim Vmm Workload
