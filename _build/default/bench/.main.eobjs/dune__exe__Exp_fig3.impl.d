bench/exp_fig3.ml: Bench_util Float List Printf Sim Vmm Workload
