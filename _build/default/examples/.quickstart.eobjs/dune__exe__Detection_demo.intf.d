examples/detection_demo.mli:
