examples/covert_exfil.mli:
