examples/soc_monitoring.mli:
