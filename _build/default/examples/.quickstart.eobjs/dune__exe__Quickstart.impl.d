examples/quickstart.ml: Memory Net Option Printf Sim Vmm
