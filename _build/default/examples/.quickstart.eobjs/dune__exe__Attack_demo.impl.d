examples/attack_demo.ml: Cloudskulk Format List Migration Net Printf Result Sim Vmm Workload
