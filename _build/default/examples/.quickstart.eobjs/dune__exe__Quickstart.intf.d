examples/quickstart.mli:
