examples/detection_demo.ml: Cloudskulk List Printf Sim String
