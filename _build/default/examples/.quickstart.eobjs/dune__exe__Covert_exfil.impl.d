examples/covert_exfil.ml: Cloudskulk Memory Net Printf Result Sim String Vmm
