examples/soc_monitoring.ml: Cloudskulk Hashtbl List Memory Migration Net Printf Result Sim Vmm
