(** Fleet assembly: many {!Host}s on a partitioned engine.

    [run] instantiates [Spec.hosts] member worlds on
    {!Sim.Parallel.run_sharded} (one engine per host, epoch =
    [Spec.fabric_latency]) and folds the per-host ledgers into one
    deterministic report. Every field of {!result} - and therefore
    {!render} - is partition-invariant: the same fleet produces
    byte-identical output for any [?shards]/[?jobs] combination. *)

type result = {
  spec : Spec.t;  (** the validated spec the fleet ran with *)
  reports : Host.report array;  (** indexed by host id *)
  detections : Cloudskulk.Fleet_soc.detection list;
      (** SOC detections in arrival order (host 0's ledger) *)
  audits_sent : int;  (** SOC audit requests mailed out *)
  soc_reports : int;  (** verdict reports the SOC received *)
}

val run : ?jobs:int -> ?shards:int -> Sim.Ctx.t -> Spec.t -> result
(** Run the fleet to [spec.duration].

    @raise Invalid_argument if [Spec.validate] rejects the spec. *)

(** {1 Fleet-wide aggregates} *)

val boots : result -> int
val kills : result -> int
val alive : result -> int
val parked : result -> int
val dropped : result -> int
val emigrations : result -> int
val immigrations : result -> int
val refusals : result -> int
val infected_hosts : result -> int
val detected_hosts : result -> int
val events : result -> int

val conservation : result -> (unit, string) Result.t
(** Fleet-wide churn ledger: every booted VM is alive, killed, dropped
    or parked at the horizon; migration stream hops balance; no host
    ever exceeded its tenant capacity. *)

val render : result -> string
(** Stable multi-line report (summary lines plus a per-host table),
    used by the [fleet] experiment and diffed across shard counts in
    CI. *)
