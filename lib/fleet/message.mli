(** Everything that crosses a host boundary, as inert data.

    Fleet hosts live on separate engines (and, when sharded, separate
    domains), so the only things allowed between them are values with
    no live simulation state: migration stream descriptors, packets
    re-addressed on arrival, and plain request/report records. These
    are exactly the ['msg] payloads the fleet posts through
    {!Sim.Parallel.run_sharded} mailboxes. *)

type t =
  | Vm_stream of Migration.Stream.descriptor
      (** a migrating tenant: captured on the source host, resumed on
          the destination when the mailbox is drained *)
  | Chatter of Net.Packet.t
      (** east-west traffic; the receiving host re-addresses it to its
          own gateway and injects it on its uplink *)
  | Audit_request
      (** SOC -> host: pull every registered tenant's next dedup probe
          forward ({!Cloudskulk.Detector_service.pull_probes_forward}) *)
  | Verdict_report of {
      vr_host : int;
      vr_tenant : string;
      vr_at : Sim.Time.t;
      vr_ttd : Sim.Time.t;
      vr_probes : int;
    }
      (** host -> SOC: a tenant's first [Nested_vm_detected] flip *)

val to_string : t -> string

val bytes : t -> int
(** Nominal wire size, for fabric accounting. *)
