(** One datacenter host: a {!Cloudskulk.Scenarios} world plus the fleet
    dressing.

    A host is a full L0 with its customer VM (infected with probability
    [Spec.infection_rate], always without VT-x so detection must come
    from dedup probes), a population of tenant VMs sharing a per-host
    base image (multi-tenant KSM pressure), Poisson churn
    (boot/kill/migrate), east-west chatter, a continuous
    {!Cloudskulk.Detector_service}, and - on host 0 - the fleet
    {!Cloudskulk.Fleet_soc}.

    A host owns exactly one engine and talks to the rest of the fleet
    only through its outgoing queue, drained into shard mailboxes by
    {!step}: its entire history is a pure function of
    [(fleet seed, host id)], which is what makes the fleet
    partition-invariant under {!Sim.Parallel.run_sharded}. *)

type t

val create : Sim.Ctx.t -> Spec.t -> id:int -> t
(** Build the host's world in full: scenario (clean or infected by the
    member ctx's first coin), initial tenants, detector monitor, churn
    and chatter schedules, uplink default route, and (host 0) the SOC
    audit rotation. *)

val deliver : t -> now:Sim.Time.t -> src:int -> Message.t list -> unit
(** Mailbox arrivals: resume (or forward) migration streams, re-inject
    chatter on the local wire, honour audit requests, and (host 0)
    record verdict reports in the SOC. *)

val step : t -> until:Sim.Time.t -> post:(dst:int -> Message.t -> unit) -> unit
(** Advance the host's engine to the barrier clock, then drain the
    outgoing queue through [post]. *)

type report = {
  r_host : int;
  r_rack : int;
  r_infected : bool;
  r_install_failed : bool;  (** infection coin hit but install aborted *)
  r_boots : int;  (** initial population + churn boots *)
  r_boot_failures : int;
  r_kills : int;
  r_emigrations : int;
  r_immigrations : int;
  r_refusals : int;  (** arrivals forwarded onward for capacity *)
  r_dropped_streams : int;  (** nowhere to forward (single-host fleet) *)
  r_parked : int;  (** streams still in the outgoing queue at horizon *)
  r_alive : int;  (** tenants alive at the horizon *)
  r_max_tenants : int;
  r_capacity : int;
  r_chatter_sent : int;
  r_chatter_received : int;
  r_audits_received : int;
  r_detected : bool;
  r_ttd : Sim.Time.t option;
  r_probes : int;
  r_events : int;  (** engine events this host processed *)
}

val report : t -> report

val soc : t -> Cloudskulk.Fleet_soc.t option
(** The fleet SOC - [Some] only on host 0. *)

val id : t -> int
val infected : t -> bool
val tenants : t -> Vmm.Vm.t list
val detector : t -> Cloudskulk.Detector_service.t

val host_of_addr : Net.Packet.addr -> int option
(** Parse a fleet host address ["fleet-<id>"]. *)

val host_addr : int -> Net.Packet.addr
