(* Everything that crosses a host boundary, as inert data. A message
   must be safe to hand to another engine (and another domain), so no
   constructor may carry live simulation state - only descriptors,
   packets, and plain records. *)

type t =
  | Vm_stream of Migration.Stream.descriptor
      (* a migrating tenant: captured on the source, resumed on arrival *)
  | Chatter of Net.Packet.t
      (* east-west traffic; re-addressed to the destination's gateway *)
  | Audit_request
      (* SOC -> host: pull every tenant's next dedup probe forward *)
  | Verdict_report of {
      vr_host : int;
      vr_tenant : string;
      vr_at : Sim.Time.t;
      vr_ttd : Sim.Time.t;
      vr_probes : int;
    }
      (* host -> SOC: first Nested_vm_detected flip for a tenant *)

let to_string = function
  | Vm_stream d ->
    Printf.sprintf "vm-stream %s (%d pages)" d.Migration.Stream.vm_name (Migration.Stream.page_count d)
  | Chatter p -> Format.asprintf "chatter %a" Net.Packet.pp p
  | Audit_request -> "audit-request"
  | Verdict_report { vr_host; vr_tenant; vr_probes; _ } ->
    Printf.sprintf "verdict-report host %d tenant %s (%d probes)" vr_host vr_tenant
      vr_probes

let bytes = function
  | Vm_stream d -> Migration.Stream.bytes d
  | Chatter p -> p.Net.Packet.size_bytes
  | Audit_request -> 128
  | Verdict_report _ -> 256
