(* One datacenter host: a full Scenarios world (L0 + customer VM,
   possibly CloudSkulk-infected) plus the fleet dressing - a population
   of tenant VMs sharing a base image (KSM pressure), Poisson churn
   (boot / kill / migrate), east-west chatter, a continuous
   Detector_service, and (on host 0) the fleet SOC.

   A host owns exactly one engine (the scenario's ctx) and talks to the
   rest of the fleet only through its outgoing queue, drained into
   shard mailboxes at [step] - never directly. That is what makes a
   host's entire history a pure function of (fleet seed, host id), and
   hence the fleet partition-invariant. *)

type t = {
  id : int;
  spec : Spec.t;
  sc : Cloudskulk.Scenarios.t;
  rng : Sim.Rng.t;  (* churn/chatter stream, forked off the host engine *)
  image : Memory.File_image.t;  (* per-host base image tenants share *)
  service : Cloudskulk.Detector_service.t;
  soc : Cloudskulk.Fleet_soc.t option;  (* host 0 only *)
  outq : (int * Message.t) Queue.t;
  mutable tenants : Vmm.Vm.t list;
  mutable next_tenant : int;
  mutable reported : string list;  (* tenants already verdict-reported *)
  infected : bool;
  install_failed : bool;
  m_messages : Sim.Telemetry.counter;
  m_migrations : Sim.Telemetry.counter;
  (* ledger *)
  mutable boots : int;
  mutable boot_failures : int;
  mutable kills : int;
  mutable emigrations : int;
  mutable immigrations : int;
  mutable refusals : int;  (* full: stream forwarded to the next host *)
  mutable dropped_streams : int;  (* nowhere to forward (1-host fleet) *)
  mutable max_tenants : int;
  mutable chatter_sent : int;
  mutable chatter_received : int;
  mutable audits_received : int;
  mutable packet_seq : int;
}

let tenant_label id = Printf.sprintf "cust-%d" id
let host_addr id = Printf.sprintf "fleet-%d" id

let host_of_addr addr =
  let prefix = "fleet-" in
  let n = String.length prefix in
  if String.length addr > n && String.sub addr 0 n = prefix then
    int_of_string_opt (String.sub addr n (String.length addr - n))
  else None

let engine t = Sim.Ctx.engine t.sc.Cloudskulk.Scenarios.ctx
let hypervisor t = t.sc.Cloudskulk.Scenarios.host
let now t = Sim.Ctx.now t.sc.Cloudskulk.Scenarios.ctx

let track_population t =
  t.max_tenants <- max t.max_tenants (List.length t.tenants)

let launch_tenant_unchecked t =
  let name = Printf.sprintf "t%d-%d" t.id t.next_tenant in
  t.next_tenant <- t.next_tenant + 1;
  let cfg =
    {
      (Vmm.Qemu_config.default ~name) with
      Vmm.Qemu_config.memory_mb = t.spec.Spec.tenant_memory_mb;
    }
  in
  match Vmm.Hypervisor.launch (hypervisor t) cfg with
  | Error _ -> t.boot_failures <- t.boot_failures + 1
  | Ok vm ->
    ignore (Vmm.Vm.load_file vm t.image);
    t.tenants <- t.tenants @ [ vm ];
    t.boots <- t.boots + 1;
    track_population t

let launch_tenant t =
  if List.length t.tenants >= Spec.capacity t.spec then
    (* full host: the scheduler would not have placed the boot here *)
    t.boot_failures <- t.boot_failures + 1
  else launch_tenant_unchecked t

let remove_tenant t vm = t.tenants <- List.filter (fun v -> not (v == vm)) t.tenants

let pick_tenant t =
  match t.tenants with
  | [] -> None
  | l -> Some (List.nth l (Sim.Rng.int t.rng (List.length l)))

let pick_remote t =
  if t.spec.Spec.hosts <= 1 then None
  else
    let d = Sim.Rng.int t.rng (t.spec.Spec.hosts - 1) in
    Some (if d >= t.id then d + 1 else d)

let send t dst msg =
  Queue.add (dst, msg) t.outq;
  Sim.Telemetry.incr t.m_messages

(* --- churn ------------------------------------------------------------- *)

let kill_op t =
  match pick_tenant t with
  | None -> ()
  | Some vm ->
    Vmm.Hypervisor.kill_vm (hypervisor t) vm;
    remove_tenant t vm;
    t.kills <- t.kills + 1

let migrate_op t =
  match (pick_tenant t, pick_remote t) with
  | Some vm, Some dst ->
    let d = Migration.Stream.capture vm in
    Vmm.Hypervisor.kill_vm (hypervisor t) vm;
    remove_tenant t vm;
    t.emigrations <- t.emigrations + 1;
    Sim.Telemetry.incr t.m_migrations;
    send t dst (Message.Vm_stream d)
  | _ -> ()

let churn_op t =
  let s = t.spec in
  let b = s.Spec.boot_per_hour and k = s.Spec.kill_per_hour and m = s.Spec.migrate_per_hour in
  let u = Sim.Rng.float t.rng (b +. k +. m) in
  if u < b then launch_tenant t else if u < b +. k then kill_op t else migrate_op t

let rec schedule_churn t =
  let s = t.spec in
  let lambda = s.Spec.boot_per_hour +. s.Spec.kill_per_hour +. s.Spec.migrate_per_hour in
  if lambda > 0. then begin
    let dt_hours = Sim.Rng.exponential t.rng (1. /. lambda) in
    let dt = Sim.Time.max (Sim.Time.ms 1.) (Sim.Time.minutes (dt_hours *. 60.)) in
    ignore
      (Sim.Engine.schedule_after (engine t) dt (fun () ->
           churn_op t;
           schedule_churn t))
  end

(* --- chatter ----------------------------------------------------------- *)

let chatter_port = 7

let chatter_op t =
  match pick_remote t with
  | None -> ()
  | Some dst ->
    t.packet_seq <- t.packet_seq + 1;
    let p =
      Net.Packet.make ~size_bytes:512 ~id:t.packet_seq
        ~src:(Net.Packet.endpoint (host_addr t.id) chatter_port)
        ~dst:(Net.Packet.endpoint (host_addr dst) chatter_port)
        "chatter"
    in
    t.chatter_sent <- t.chatter_sent + 1;
    (* unknown address on the uplink: the default route turns it into a
       cross-host mailbox message after the usual link delay *)
    Net.Fabric.Switch.send (Vmm.Hypervisor.uplink (hypervisor t)) p

let rec schedule_chatter t =
  let lambda = t.spec.Spec.chatter_per_hour in
  if lambda > 0. then begin
    let dt_hours = Sim.Rng.exponential t.rng (1. /. lambda) in
    let dt = Sim.Time.max (Sim.Time.ms 1.) (Sim.Time.minutes (dt_hours *. 60.)) in
    ignore
      (Sim.Engine.schedule_after (engine t) dt (fun () ->
           chatter_op t;
           schedule_chatter t))
  end

(* --- construction ------------------------------------------------------ *)

let incoming_port = 9099

let create ctx (spec : Spec.t) ~id =
  (* the infection coin comes off the member ctx's root stream; the
     scenario then re-forks the ctx, so the draw cannot perturb the
     world's own schedule *)
  let coin = Sim.Rng.float (Sim.Ctx.fork_rng ctx) 1.0 in
  let ksm_config = Spec.ksm_config spec in
  let customer_memory_mb = spec.Spec.customer_memory_mb in
  let sc, infected, install_failed =
    if coin < spec.Spec.infection_rate then
      (* no VT-x: the stealthy variant the VMCS auditor misses, so fleet
         detections come from the rotation's dedup probes (exp_slo) *)
      match
        Cloudskulk.Scenarios.infected_result ~ksm_config ~customer_memory_mb
          ~install_config:
            {
              (Cloudskulk.Install.default_config ~target_name:"guest0") with
              Cloudskulk.Install.use_vtx = false;
            }
          ctx
      with
      | Ok sc -> (sc, true, false)
      | Error _ ->
        (Cloudskulk.Scenarios.clean ~ksm_config ~customer_memory_mb ctx, false, true)
    else (Cloudskulk.Scenarios.clean ~ksm_config ~customer_memory_mb ctx, false, false)
  in
  let cctx = sc.Cloudskulk.Scenarios.ctx in
  let tel = Sim.Ctx.telemetry cctx in
  let labels = [ ("host", string_of_int id) ] in
  let rng = Sim.Ctx.fork_rng cctx in
  let image =
    Memory.File_image.generate (Sim.Ctx.fork_rng cctx)
      ~name:(Printf.sprintf "base-%d" id)
      ~pages:64
  in
  let service =
    Cloudskulk.Detector_service.create ~policy:(Spec.detector_policy spec) cctx
      sc.Cloudskulk.Scenarios.host
  in
  let t =
    {
      id;
      spec;
      sc;
      rng;
      image;
      service;
      soc = (if id = 0 then Some (Cloudskulk.Fleet_soc.create ()) else None);
      outq = Queue.create ();
      tenants = [];
      next_tenant = 0;
      reported = [];
      infected;
      install_failed;
      m_messages = Sim.Telemetry.counter tel ~labels ~component:"fleet" "messages_sent_total";
      m_migrations = Sim.Telemetry.counter tel ~labels ~component:"fleet" "migrations_total";
      boots = 0;
      boot_failures = 0;
      kills = 0;
      emigrations = 0;
      immigrations = 0;
      refusals = 0;
      dropped_streams = 0;
      max_tenants = 0;
      chatter_sent = 0;
      chatter_received = 0;
      audits_received = 0;
      packet_seq = 0;
    }
  in
  (* initial tenant population *)
  for _ = 1 to spec.Spec.tenants_per_host do
    launch_tenant t
  done;
  (* off-host destinations leave through the mailbox, not the wire *)
  Net.Fabric.Switch.set_default_route
    (Vmm.Hypervisor.uplink (hypervisor t))
    (Some
       (fun p ->
         match host_of_addr p.Net.Packet.dst.Net.Packet.addr with
         | Some dst when dst <> t.id && dst >= 0 && dst < spec.Spec.hosts ->
           send t dst (Message.Chatter p)
         | Some _ | None -> ()));
  (* east-west receipts land on the gateway *)
  Net.Fabric.Node.listen
    (Vmm.Hypervisor.gateway (hypervisor t))
    chatter_port
    (fun _ -> t.chatter_received <- t.chatter_received + 1);
  (* continuous monitor over the customer tenant; first detections are
     forwarded to the SOC on host 0 through the mailbox *)
  let open Cloudskulk.Detector_service in
  register_tenant t.service ~name:(tenant_label id) ~env:(fun () ->
      t.sc.Cloudskulk.Scenarios.detector_env);
  set_event_hook t.service
    (Some
       (function
       | Verdict_flip { tenant; after = Cloudskulk.Dedup_detector.Nested_vm_detected; _ }
         when not (List.mem tenant t.reported) -> (
         t.reported <- tenant :: t.reported;
         match tenant_state t.service tenant with
         | None -> ()
         | Some st ->
           send t 0
             (Message.Verdict_report
                {
                  vr_host = t.id;
                  vr_tenant = tenant;
                  vr_at = now t;
                  vr_ttd = Sim.Time.diff (now t) st.registered_at;
                  vr_probes = st.probes;
                }))
       | _ -> ()));
  start_monitor t.service;
  schedule_churn t;
  schedule_chatter t;
  (* host 0 runs the fleet SOC: a deterministic audit rotation over the
     whole host population *)
  (match t.soc with
  | Some soc when Sim.Time.(spec.Spec.soc_audit_every > Sim.Time.zero) ->
    Sim.Engine.periodic (engine t) ~every:spec.Spec.soc_audit_every (fun () ->
        (match Cloudskulk.Fleet_soc.next_audit_target soc ~hosts:spec.Spec.hosts with
        | Some target -> send t target Message.Audit_request
        | None -> ());
        true)
  | Some _ | None -> ());
  t

(* --- mailbox hooks ----------------------------------------------------- *)

let forward_stream t d =
  let next = (t.id + 1) mod t.spec.Spec.hosts in
  if next = t.id then t.dropped_streams <- t.dropped_streams + 1
  else begin
    t.refusals <- t.refusals + 1;
    send t next (Message.Vm_stream d)
  end

let deliver t ~now:_ ~src:_ msgs =
  List.iter
    (fun msg ->
      match msg with
      | Message.Vm_stream d ->
        if List.length t.tenants >= Spec.capacity t.spec then forward_stream t d
        else (
          match Migration.Stream.resume (hypervisor t) ~incoming_port d with
          | Ok vm ->
            t.tenants <- t.tenants @ [ vm ];
            t.immigrations <- t.immigrations + 1;
            track_population t
          | Error _ -> forward_stream t d)
      | Message.Chatter p ->
        (* re-address to this host's gateway and put it on the wire *)
        let p' =
          {
            p with
            Net.Packet.dst =
              Net.Packet.endpoint
                (Net.Fabric.Node.addr (Vmm.Hypervisor.gateway (hypervisor t)))
                p.Net.Packet.dst.Net.Packet.port;
          }
        in
        Net.Fabric.Switch.send (Vmm.Hypervisor.uplink (hypervisor t)) p'
      | Message.Audit_request ->
        t.audits_received <- t.audits_received + 1;
        Cloudskulk.Detector_service.pull_probes_forward t.service
      | Message.Verdict_report { vr_host; vr_tenant; vr_at; vr_ttd; vr_probes } -> (
        match t.soc with
        | None -> ()
        | Some soc ->
          Cloudskulk.Fleet_soc.note soc
            {
              Cloudskulk.Fleet_soc.det_host = vr_host;
              det_tenant = vr_tenant;
              det_at = vr_at;
              det_ttd = vr_ttd;
              det_probes = vr_probes;
            }))
    msgs

let step t ~until ~post =
  ignore (Sim.Engine.run ~until (engine t));
  while not (Queue.is_empty t.outq) do
    let dst, msg = Queue.pop t.outq in
    post ~dst msg
  done

(* --- reporting --------------------------------------------------------- *)

type report = {
  r_host : int;
  r_rack : int;
  r_infected : bool;
  r_install_failed : bool;
  r_boots : int;
  r_boot_failures : int;
  r_kills : int;
  r_emigrations : int;
  r_immigrations : int;
  r_refusals : int;
  r_dropped_streams : int;
  r_parked : int;
  r_alive : int;
  r_max_tenants : int;
  r_capacity : int;
  r_chatter_sent : int;
  r_chatter_received : int;
  r_audits_received : int;
  r_detected : bool;
  r_ttd : Sim.Time.t option;
  r_probes : int;
  r_events : int;
}

let report t =
  let parked =
    Queue.fold
      (fun acc (_, msg) -> match msg with Message.Vm_stream _ -> acc + 1 | _ -> acc)
      0 t.outq
  in
  let st = Cloudskulk.Detector_service.tenant_state t.service (tenant_label t.id) in
  {
    r_host = t.id;
    r_rack = Spec.rack_of t.spec t.id;
    r_infected = t.infected;
    r_install_failed = t.install_failed;
    r_boots = t.boots;
    r_boot_failures = t.boot_failures;
    r_kills = t.kills;
    r_emigrations = t.emigrations;
    r_immigrations = t.immigrations;
    r_refusals = t.refusals;
    r_dropped_streams = t.dropped_streams;
    r_parked = parked;
    r_alive = List.length t.tenants;
    r_max_tenants = t.max_tenants;
    r_capacity = Spec.capacity t.spec;
    r_chatter_sent = t.chatter_sent;
    r_chatter_received = t.chatter_received;
    r_audits_received = t.audits_received;
    r_detected =
      Option.is_some (Cloudskulk.Detector_service.time_to_detect t.service (tenant_label t.id));
    r_ttd = Cloudskulk.Detector_service.time_to_detect t.service (tenant_label t.id);
    r_probes =
      (match st with
      | Some s -> s.Cloudskulk.Detector_service.probes
      | None -> 0);
    r_events = Sim.Engine.events_processed (engine t);
  }

let soc t = t.soc
let id t = t.id
let infected t = t.infected
let tenants t = t.tenants
let detector t = t.service
