(* The datacenter's shape, as one validated value. Every knob that
   changes what the fleet simulates lives here, so the harness, the
   fuzzer, and the benchmarks all describe a fleet the same way - and
   [validate] is the single bounds check all of them share. *)

type t = {
  hosts : int;
  racks : int;
  tenants_per_host : int;  (* initial tenants besides the customer VM *)
  tenant_memory_mb : int;
  customer_memory_mb : int;
  infection_rate : float;  (* fraction of hosts seeded with CloudSkulk *)
  boot_per_hour : float;  (* per-host churn rates *)
  kill_per_hour : float;
  migrate_per_hour : float;
  chatter_per_hour : float;  (* cross-host packets per host *)
  duration : Sim.Time.t;
  fabric_latency : Sim.Time.t;  (* cross-host delivery quantum = the epoch *)
  ksm_pages_to_scan : int;
  ksm_sleep : Sim.Time.t;
  sweep_every : Sim.Time.t;  (* per-host detector policy *)
  dedup_every_n_sweeps : int;
  probe_pages : int;
  probe_budget : int;
  soc_audit_every : Sim.Time.t;  (* fleet SOC rotation; zero disables *)
}

let default =
  {
    hosts = 4;
    racks = 2;
    tenants_per_host = 3;
    tenant_memory_mb = 4;
    customer_memory_mb = 32;
    infection_rate = 0.25;
    boot_per_hour = 2.;
    kill_per_hour = 2.;
    migrate_per_hour = 2.;
    chatter_per_hour = 12.;
    duration = Sim.Time.minutes 60.;
    fabric_latency = Sim.Time.s 15.;
    (* ksmd paced for a standing fleet, not a microbenchmark: modest
       batches, long sleeps, incremental rescans (PR 6) so steady-state
       wakeups cost O(dirtied pages). *)
    ksm_pages_to_scan = 256;
    ksm_sleep = Sim.Time.ms 500.;
    sweep_every = Sim.Time.minutes 10.;
    dedup_every_n_sweeps = 2;
    probe_pages = 8;
    probe_budget = 1;
    soc_audit_every = Sim.Time.minutes 25.;
  }

let vms t = t.hosts * (t.tenants_per_host + 1)
let epoch t = t.fabric_latency

(* Tenant capacity per host: churn and immigration may grow a host past
   its initial population, but never past this. *)
let capacity t = (2 * t.tenants_per_host) + 2

let max_epochs = 100_000
let max_vms = 100_000

let check cond msg = if cond then Ok () else Error msg
let ( let* ) = Result.bind

let validate t =
  let* () = check (t.hosts >= 1 && t.hosts <= 4096) "hosts must be in 1..4096" in
  let* () =
    check (t.racks >= 1 && t.racks <= 64 && t.racks <= t.hosts)
      "racks must be in 1..64 and not exceed hosts"
  in
  let* () =
    check
      (t.tenants_per_host >= 0 && t.tenants_per_host <= 64)
      "tenants_per_host must be in 0..64"
  in
  let* () =
    check
      (t.tenant_memory_mb >= 1 && t.tenant_memory_mb <= 64)
      "tenant_memory_mb must be in 1..64"
  in
  let* () =
    check
      (t.customer_memory_mb >= 16 && t.customer_memory_mb <= 512)
      "customer_memory_mb must be in 16..512"
  in
  let* () = check (vms t <= max_vms) "fleet exceeds 100k VMs" in
  let* () =
    check
      (t.infection_rate >= 0. && t.infection_rate <= 1.)
      "infection_rate must be in [0, 1]"
  in
  let rate_ok r = r >= 0. && r <= 60. in
  let* () =
    check
      (rate_ok t.boot_per_hour && rate_ok t.kill_per_hour && rate_ok t.migrate_per_hour)
      "churn rates must be in [0, 60] per hour"
  in
  let* () =
    check
      (t.chatter_per_hour >= 0. && t.chatter_per_hour <= 3600.)
      "chatter_per_hour must be in [0, 3600]"
  in
  let* () =
    check
      Sim.Time.(t.duration > Sim.Time.zero && t.duration <= Sim.Time.minutes (24. *. 60.))
      "duration must be positive and at most 24 h"
  in
  let* () =
    check
      Sim.Time.(t.fabric_latency > Sim.Time.zero && t.fabric_latency <= Sim.Time.minutes 10.)
      "fabric_latency must be positive and at most 10 min"
  in
  let epochs =
    let e = Sim.Time.to_ns t.fabric_latency and d = Sim.Time.to_ns t.duration in
    Int64.to_int (Int64.div (Int64.add d (Int64.sub e 1L)) e)
  in
  let* () =
    check (epochs <= max_epochs)
      "degenerate fleet: duration / fabric_latency exceeds 100k epochs"
  in
  let* () =
    check
      (t.ksm_pages_to_scan >= 16 && t.ksm_pages_to_scan <= 16384)
      "ksm_pages_to_scan must be in 16..16384"
  in
  let* () =
    check
      Sim.Time.(t.ksm_sleep >= Sim.Time.ms 1. && t.ksm_sleep <= Sim.Time.s 10.)
      "ksm_sleep must be in 1 ms .. 10 s"
  in
  let* () =
    check
      Sim.Time.(t.sweep_every >= Sim.Time.minutes 1. && t.sweep_every <= Sim.Time.minutes 120.)
      "sweep_every must be in 1..120 min"
  in
  let* () =
    check
      (t.dedup_every_n_sweeps >= 1 && t.dedup_every_n_sweeps <= 16)
      "dedup_every_n_sweeps must be in 1..16"
  in
  let* () = check (t.probe_pages >= 2 && t.probe_pages <= 64) "probe_pages must be in 2..64" in
  let* () =
    check (t.probe_budget >= 1 && t.probe_budget <= 1024) "probe_budget must be in 1..1024"
  in
  let* () =
    check
      Sim.Time.(
        t.soc_audit_every = Sim.Time.zero
        || (t.soc_audit_every >= Sim.Time.minutes 1.
           && t.soc_audit_every <= Sim.Time.minutes 240.))
      "soc_audit_every must be zero (off) or in 1..240 min"
  in
  Ok t

let ksm_config t =
  {
    Memory.Ksm.pages_to_scan = t.ksm_pages_to_scan;
    sleep = t.ksm_sleep;
    incremental = true;
  }

let detector_policy t =
  {
    Cloudskulk.Detector_service.default_policy with
    Cloudskulk.Detector_service.sweep_every = t.sweep_every;
    dedup_every_n_sweeps = t.dedup_every_n_sweeps;
    probe_pages = t.probe_pages;
    probe_budget = t.probe_budget;
    event_log_capacity = 64;
  }

let rack_of t host = host * t.racks / t.hosts
