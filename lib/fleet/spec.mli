(** The datacenter's shape, as one validated value.

    Everything that changes what a fleet simulates lives here: the
    population (hosts, racks, tenants), the infection seeding, the
    churn and chatter rates, the time horizon, the cross-host fabric
    latency (which doubles as the sharding epoch - see
    {!Sim.Barrier}), the per-host ksmd pacing, and the detector /
    SOC policy knobs. The harness, the fuzzer, and the benchmarks all
    describe fleets with this one record, and {!validate} is the single
    bounds check they share - the fuzz grammar's "reject degenerate
    fleets" rule is literally this function. *)

type t = {
  hosts : int;
  racks : int;  (** addressing/reporting granularity; racks <= hosts *)
  tenants_per_host : int;
      (** initial tenants per host, besides the customer VM *)
  tenant_memory_mb : int;
  customer_memory_mb : int;
  infection_rate : float;  (** fraction of hosts seeded with CloudSkulk *)
  boot_per_hour : float;  (** per-host Poisson churn rates *)
  kill_per_hour : float;
  migrate_per_hour : float;
  chatter_per_hour : float;  (** cross-host packets per host *)
  duration : Sim.Time.t;
  fabric_latency : Sim.Time.t;
      (** cross-host delivery quantum; the sharding epoch *)
  ksm_pages_to_scan : int;
  ksm_sleep : Sim.Time.t;
  sweep_every : Sim.Time.t;  (** per-host detector audit cadence *)
  dedup_every_n_sweeps : int;
  probe_pages : int;
  probe_budget : int;
  soc_audit_every : Sim.Time.t;  (** fleet SOC rotation; zero disables *)
}

val default : t
(** 4 hosts x (3 tenants + 1 customer) over 2 racks, 25% infected,
    gentle churn, a 60-minute horizon, and a 15-second fabric. *)

val vms : t -> int
(** Total VMs at boot: [hosts * (tenants_per_host + 1)]. *)

val epoch : t -> Sim.Time.t
(** The sharding epoch: [fabric_latency]. *)

val capacity : t -> int
(** Per-host tenant cap: [2 * tenants_per_host + 2]. Churn and
    immigration may grow a host past its initial population, never past
    this - the conservation test's second clause. *)

val validate : t -> (t, string) result
(** Bounds-check every knob (host/tenant counts, rates, horizons, the
    epoch-count product) and reject degenerate fleets with a one-line
    reason. *)

val ksm_config : t -> Memory.Ksm.config
(** Per-host ksmd pacing: incremental rescans at the spec's batch and
    sleep. *)

val detector_policy : t -> Cloudskulk.Detector_service.policy

val rack_of : t -> int -> int
(** Which rack a host index belongs to (contiguous blocks). *)
