(* Fleet assembly and reporting: instantiate Spec.hosts member worlds
   on Parallel.run_sharded, then fold the per-host ledgers into one
   deterministic report. Everything rendered here is
   partition-invariant (per-host state, fleet totals, SOC arrival
   order), so the same fleet printed at any --shards/--jobs combination
   is byte-identical - the property test/test_fleet.ml pins down. *)

type result = {
  spec : Spec.t;
  reports : Host.report array;
  detections : Cloudskulk.Fleet_soc.detection list;
  audits_sent : int;
  soc_reports : int;
}

let run ?jobs ?(shards = 1) ctx spec =
  let spec =
    match Spec.validate spec with
    | Ok s -> s
    | Error e -> invalid_arg ("Fleet.World.run: " ^ e)
  in
  let hosts =
    Sim.Parallel.run_sharded ?jobs ~shards ~ctx ~members:spec.Spec.hosts
      ~epoch:(Spec.epoch spec) ~until:spec.Spec.duration (fun ~member ctx ->
        let h = Host.create ctx spec ~id:member in
        { Sim.Parallel.world = h; deliver = Host.deliver h; step = Host.step h })
  in
  let reports = Array.map Host.report hosts in
  let detections, audits_sent, soc_reports =
    match Host.soc hosts.(0) with
    | Some soc ->
      ( Cloudskulk.Fleet_soc.detections soc,
        Cloudskulk.Fleet_soc.audits_sent soc,
        Cloudskulk.Fleet_soc.reports_received soc )
    | None -> ([], 0, 0)
  in
  { spec; reports; detections; audits_sent; soc_reports }

let sum f r = Array.fold_left (fun acc h -> acc + f h) 0 r.reports

let boots r = sum (fun h -> h.Host.r_boots) r
let kills r = sum (fun h -> h.Host.r_kills) r
let alive r = sum (fun h -> h.Host.r_alive) r
let parked r = sum (fun h -> h.Host.r_parked) r
let dropped r = sum (fun h -> h.Host.r_dropped_streams) r
let emigrations r = sum (fun h -> h.Host.r_emigrations) r
let immigrations r = sum (fun h -> h.Host.r_immigrations) r
let refusals r = sum (fun h -> h.Host.r_refusals) r
let infected_hosts r = sum (fun h -> if h.Host.r_infected then 1 else 0) r
let detected_hosts r = sum (fun h -> if h.Host.r_detected then 1 else 0) r
let events r = sum (fun h -> h.Host.r_events) r

(* Every booted VM is, at the horizon, alive somewhere, killed
   somewhere, dropped (single-host fleet with nowhere to forward), or
   parked in an outgoing queue; and stream hops balance the same way.
   Capacity is a hard ceiling per host. *)
let conservation r =
  let check cond msg = if cond then Ok () else Error msg in
  let ( let* ) = Result.bind in
  let* () =
    check
      (boots r = kills r + dropped r + parked r + alive r)
      (Printf.sprintf "VM ledger leak: boots %d <> kills %d + dropped %d + parked %d + alive %d"
         (boots r) (kills r) (dropped r) (parked r) (alive r))
  in
  let* () =
    check
      (emigrations r = immigrations r + dropped r + parked r)
      (Printf.sprintf
         "stream ledger leak: emigrations %d <> immigrations %d + dropped %d + parked %d"
         (emigrations r) (immigrations r) (dropped r) (parked r))
  in
  let over =
    Array.to_list r.reports
    |> List.filter (fun h -> h.Host.r_max_tenants > h.Host.r_capacity)
    |> List.map (fun h -> h.Host.r_host)
  in
  check (over = [])
    ("capacity exceeded on host(s) "
    ^ String.concat ", " (List.map string_of_int over))

let fmt_min t = Printf.sprintf "%.1f" (Sim.Time.to_s t /. 60.)

let ttd_quantile r q =
  match r.detections with
  | [] -> "-"
  | ds ->
    let st = Sim.Stats.create () in
    List.iter
      (fun d ->
        Sim.Stats.add st (Int64.to_float (Sim.Time.to_ns d.Cloudskulk.Fleet_soc.det_ttd)))
      ds;
    Printf.sprintf "%.1f" (Sim.Stats.percentile st q /. 60e9)

let render r =
  let b = Buffer.create 1024 in
  let s = r.spec in
  let line fmt = Printf.ksprintf (fun l -> Buffer.add_string b (l ^ "\n")) fmt in
  line "fleet: %d hosts x %d VMs = %d VMs (%d racks), horizon %s min, epoch %.1f s"
    s.Spec.hosts
    (s.Spec.tenants_per_host + 1)
    (Spec.vms s) s.Spec.racks (fmt_min s.Spec.duration)
    (Sim.Time.to_s s.Spec.fabric_latency);
  line "infected %d host(s), install failures %d; probe budget %d/window"
    (infected_hosts r)
    (sum (fun h -> if h.Host.r_install_failed then 1 else 0) r)
    s.Spec.probe_budget;
  line "churn: boots %d (%d failed), kills %d; migrations %d -> landed %d, forwarded %d, dropped %d, parked %d"
    (boots r)
    (sum (fun h -> h.Host.r_boot_failures) r)
    (kills r) (emigrations r) (immigrations r) (refusals r) (dropped r) (parked r);
  line "chatter: sent %d, delivered %d; SOC audits sent %d, honoured %d, reports %d"
    (sum (fun h -> h.Host.r_chatter_sent) r)
    (sum (fun h -> h.Host.r_chatter_received) r)
    r.audits_sent
    (sum (fun h -> h.Host.r_audits_received) r)
    r.soc_reports;
  line "detections %d/%d infected hosts (%d at SOC); ttd p50 %s min, p99 %s min; probes behind detections %d"
    (detected_hosts r) (infected_hosts r)
    (List.length r.detections)
    (ttd_quantile r 50.) (ttd_quantile r 99.)
    (List.fold_left (fun acc d -> acc + d.Cloudskulk.Fleet_soc.det_probes) 0 r.detections);
  line "conservation %s"
    (match conservation r with Ok () -> "OK" | Error e -> "VIOLATED: " ^ e);
  line " host rack state  boots kills emig immig alive max/cap  det ttd(min) probes";
  Array.iter
    (fun h ->
      line "%5d %4d %-6s %6d %5d %4d %5d %5d %3d/%-3d %4s %8s %6d" h.Host.r_host
        h.Host.r_rack
        (if h.Host.r_infected then "inf"
         else if h.Host.r_install_failed then "aborted"
         else "clean")
        h.Host.r_boots h.Host.r_kills h.Host.r_emigrations h.Host.r_immigrations
        h.Host.r_alive h.Host.r_max_tenants h.Host.r_capacity
        (if h.Host.r_detected then "yes" else "-")
        (match h.Host.r_ttd with Some t -> fmt_min t | None -> "-")
        h.Host.r_probes)
    r.reports;
  Buffer.contents b
