type config = {
  target_name : string;
  guestx_name : string;
  guestx_memory_mb : int option;
  host_port : int;
  ritm_port : int;
  strategy : Migration.Wiring.strategy;
  use_vtx : bool;
  impersonate : bool;
  spoof_pid : bool;
  faults : Sim.Fault.profile;
}

let default_config ~target_name =
  {
    target_name;
    guestx_name = "guestx";
    guestx_memory_mb = None;
    host_port = 5600;
    ritm_port = 5601;
    strategy = Migration.Wiring.Pre_copy Migration.Precopy.default_config;
    use_vtx = true;
    impersonate = true;
    spoof_pid = true;
    faults = Sim.Fault.none;
  }

type step =
  | Recon
  | Launch_ritm
  | Nested_destination
  | Live_migration
  | Cleanup

let step_name = function
  | Recon -> "recon"
  | Launch_ritm -> "launch-ritm"
  | Nested_destination -> "nested-destination"
  | Live_migration -> "live-migration"
  | Cleanup -> "cleanup"

type step_report = {
  step : step;
  started : Sim.Time.t;
  finished : Sim.Time.t;
  detail : string;
}

type report = {
  ritm : Ritm.t;
  steps : step_report list;
  precopy : Migration.Precopy.result option;
  postcopy : Migration.Postcopy.result option;
  migration_outcome : string;
  old_pid : Vmm.Process_table.pid;
  new_pid : Vmm.Process_table.pid;
  total_time : Sim.Time.t;
}

(* Small monadic glue so each step reads top-to-bottom. *)
let ( let* ) r f = Result.bind r f

let guestx_config cfg (target : Vmm.Qemu_config.t) =
  let memory_mb =
    match cfg.guestx_memory_mb with
    | Some m -> m
    | None ->
      (* room for the nested guest's RAM plus the L1 OS itself *)
      target.Vmm.Qemu_config.memory_mb * 2
  in
  let base = Vmm.Qemu_config.default ~name:cfg.guestx_name in
  {
    base with
    Vmm.Qemu_config.memory_mb;
    monitor_port = target.Vmm.Qemu_config.monitor_port + 1;
    vnc_display = target.Vmm.Qemu_config.vnc_display + 1;
    nested_vmx = true;
    disk = { base.Vmm.Qemu_config.disk with Vmm.Qemu_config.image = cfg.guestx_name ^ ".qcow2" };
    netdev =
      {
        base.Vmm.Qemu_config.netdev with
        Vmm.Qemu_config.hostfwd = [ (cfg.host_port, cfg.ritm_port) ];
      };
  }

let run ?config ctx ~host ~registry ~target_name =
  let engine = Sim.Ctx.engine ctx in
  let cfg = match config with Some c -> c | None -> default_config ~target_name in
  let cfg = { cfg with target_name } in
  (* a non-trivial context profile overrides whatever the config
     carries; the none profile keeps the caller's (or the zero-fault
     default) untouched *)
  let cfg =
    if Sim.Fault.is_none (Sim.Ctx.faults ctx) then cfg
    else { cfg with faults = Sim.Ctx.faults ctx }
  in
  let t0 = Sim.Engine.now engine in
  let telemetry = Vmm.Hypervisor.telemetry host in
  let steps = ref [] in
  let record step started detail =
    let finished = Sim.Engine.now engine in
    if Sim.Telemetry.enabled telemetry then
      Sim.Telemetry.span telemetry ~component:"cloudskulk" ~name:"install_step"
        ~start:started ~stop:finished
        ~fields:[ ("step", step_name step) ]
        ();
    steps := { step; started; finished; detail } :: !steps
  in
  (* Step 1: reconnaissance. *)
  let s = Sim.Engine.now engine in
  let* finding = Recon.find_target host ~name:cfg.target_name in
  let* () = Recon.verify_config finding in
  record Recon s
    (Printf.sprintf "target %s: pid %d, %s" cfg.target_name finding.Recon.qemu_pid
       (Format.asprintf "%a" Vmm.Qemu_config.pp finding.Recon.config));
  let target = finding.Recon.vm in
  let old_pid = finding.Recon.qemu_pid in
  (* Step 2: launch the RITM (GuestX). *)
  let s = Sim.Engine.now engine in
  let* guestx = Vmm.Hypervisor.launch host (guestx_config cfg finding.Recon.config) in
  record Launch_ritm s
    (Printf.sprintf "%s up: %d MB, nested VMX on, hostfwd %d->%d" cfg.guestx_name
       (Vmm.Vm.config guestx).Vmm.Qemu_config.memory_mb cfg.host_port cfg.ritm_port);
  let teardown_guestx e =
    Vmm.Hypervisor.kill_vm host guestx;
    Error e
  in
  (* Step 3: nested hypervisor + matching destination, paused on BBBB. *)
  let s = Sim.Engine.now engine in
  (* The nested hypervisor is created through a quiet context: same
     world, same sink, but a private throwaway trace - the rootkit's
     machinery leaves no records in the host's own trace. *)
  (match
     Vmm.Hypervisor.create_nested ~use_vtx:cfg.use_vtx (Sim.Ctx.quiet ctx) ~vm:guestx
       ~name:"guestx-kvm"
   with
  | Error e -> teardown_guestx e
  | Ok nested_hv -> (
    let dest_config =
      finding.Recon.config
      |> (fun c -> Vmm.Qemu_config.with_incoming c ~port:cfg.ritm_port)
      |> fun c ->
      Vmm.Qemu_config.with_hostfwd c
        finding.Recon.config.Vmm.Qemu_config.netdev.Vmm.Qemu_config.hostfwd
    in
    match Vmm.Hypervisor.launch nested_hv dest_config with
    | Error e -> teardown_guestx e
    | Ok dest -> (
      let guestx_addr = Vmm.Vm.addr guestx in
      let host_addr = Net.Fabric.Node.addr (Vmm.Hypervisor.gateway host) in
      Migration.Registry.register_incoming registry ~addr:guestx_addr ~port:cfg.ritm_port dest;
      Migration.Registry.add_forward registry ~addr:host_addr ~port:cfg.host_port
        ~to_addr:guestx_addr ~to_port:cfg.ritm_port;
      record Nested_destination s
        (Printf.sprintf "destination %s incoming on %s:%d (via host:%d)" (Vmm.Vm.name dest)
           guestx_addr cfg.ritm_port cfg.host_port);
      (* Step 4: drive the target's monitor to migrate. The fault
         injector only forks an RNG stream when a real profile is
         selected, so zero-fault installs draw the exact historical
         random sequence. *)
      let s = Sim.Engine.now engine in
      let fault =
        if Sim.Fault.is_none cfg.faults then None
        else Some (Sim.Fault.create ?telemetry cfg.faults (Sim.Engine.fork_rng engine))
      in
      let wiring =
        Migration.Wiring.wire_monitor ~strategy:cfg.strategy ?fault ctx ~registry
          ~source:target ()
      in
      let migrate_cmd = Printf.sprintf "migrate tcp:%s:%d" host_addr cfg.host_port in
      match Vmm.Monitor.execute target migrate_cmd with
      | Vmm.Monitor.Error_text e ->
        Migration.Registry.unregister registry ~addr:guestx_addr ~port:cfg.ritm_port;
        teardown_guestx ("monitor migrate: " ^ e)
      | Vmm.Monitor.Quit ->
        teardown_guestx "monitor migrate: unexpected quit"
      | Vmm.Monitor.Ok_text _ -> (
        let pre_outcome, post_outcome =
          match Migration.Wiring.last_result wiring with
          | Some (p, q) -> (p, q)
          | None -> (None, None)
        in
        let precopy = Option.bind pre_outcome Migration.Outcome.stats in
        let postcopy = Option.bind post_outcome Migration.Outcome.stats in
        let migration_outcome =
          match (pre_outcome, post_outcome) with
          | Some o, _ -> Migration.Outcome.describe o
          | None, Some o -> Migration.Outcome.describe o
          | None, None -> "completed"
        in
        record Live_migration s migrate_cmd;
        (* Clean-up: kill the husk, re-point forwards, spoof, blend in. *)
        let s = Sim.Engine.now engine in
        let victim_fwds =
          finding.Recon.config.Vmm.Qemu_config.netdev.Vmm.Qemu_config.hostfwd
        in
        (match Vmm.Monitor.execute target "quit" with
        | Vmm.Monitor.Quit | Vmm.Monitor.Ok_text _ -> ()
        | Vmm.Monitor.Error_text _ -> ());
        Vmm.Hypervisor.kill_vm host target;
        (* the migration listener rule has served its purpose; leaving
           it would be evidence (a public port into a VMX guest) *)
        Net.Fabric.Node.remove_forward (Vmm.Hypervisor.gateway host) ~from_port:cfg.host_port;
        (* The victim's published ports now route host -> GuestX -> L2.
           GuestX's internal rule (port -> nested victim) was installed
           when the nested destination launched with the target's
           hostfwd config; the host side is re-pointed here, after the
           husk released the port. *)
        List.iter
          (fun (host_port, _guest_port) ->
            Net.Fabric.Node.add_forward
              (Vmm.Hypervisor.gateway host)
              ~from_port:host_port
              ~to_:(Net.Packet.endpoint guestx_addr host_port)
              ~via:(Vmm.Hypervisor.switch host))
          victim_fwds;
        let spoof_result =
          if cfg.spoof_pid then Stealth.spoof_pid ~host ~guestx ~old_pid else Ok ()
        in
        match spoof_result with
        | Error e -> teardown_guestx ("pid spoof: " ^ e)
        | Ok () ->
          if cfg.impersonate then begin
            Stealth.impersonate_os ~guestx ~victim:dest;
            ignore (Stealth.mirror_all_files ~guestx ~victim:dest)
          end;
          record Cleanup s
            (Printf.sprintf "husk killed, pid %d -> %d, forwards re-pointed%s" old_pid
               (Vmm.Vm.qemu_pid guestx)
               (if cfg.impersonate then ", impersonating" else ""));
          let ritm =
            {
              Ritm.engine;
              host;
              registry;
              guestx;
              nested_hv;
              victim = dest;
              ports =
                {
                  Ritm.migration_host_port = cfg.host_port;
                  migration_ritm_port = cfg.ritm_port;
                };
              installed_at = Sim.Engine.now engine;
            }
          in
          Ok
            {
              ritm;
              steps = List.rev !steps;
              precopy;
              postcopy;
              migration_outcome;
              old_pid;
              new_pid = Vmm.Vm.qemu_pid guestx;
              total_time = Sim.Time.diff (Sim.Engine.now engine) t0;
            }))))

let installation_time r = r.total_time

let pp_report fmt r =
  Format.fprintf fmt "CloudSkulk installed in %a@\n" Sim.Time.pp r.total_time;
  List.iter
    (fun s ->
      Format.fprintf fmt "  %-20s %a -> %a: %s@\n" (step_name s.step) Sim.Time.pp s.started
        Sim.Time.pp s.finished s.detail)
    r.steps;
  (match r.precopy with
  | Some p ->
    (* the outcome suffix only appears under fault injection, keeping
       zero-fault report text identical to pre-fault builds *)
    Format.fprintf fmt "  migration: %d rounds, %a total, %a downtime%s@\n"
      (List.length p.Migration.Precopy.rounds)
      Sim.Time.pp p.Migration.Precopy.total_time Sim.Time.pp p.Migration.Precopy.downtime
      (if String.equal r.migration_outcome "completed" then ""
       else " (" ^ r.migration_outcome ^ ")")
  | None -> ());
  Format.fprintf fmt "  pid: %d -> %d (spoofed back)@\n" r.old_pid r.new_pid
