type capture = {
  at : Sim.Time.t;
  packet : Net.Packet.t;
  observed_payload : string;
}

let now ritm = Sim.Engine.now ritm.Ritm.engine

(* {2 Packet capture} *)

type sniffer = {
  sniffer_tap : string;
  mutable captured : capture list;
}

let start_packet_capture ritm =
  let s = { sniffer_tap = "cs-sniffer"; captured = [] } in
  Net.Fabric.Node.add_tap (Ritm.guestx_node ritm) ~name:s.sniffer_tap (fun packet ->
      let c =
        { at = now ritm; packet; observed_payload = Net.Packet.visible_payload packet }
      in
      s.captured <- c :: s.captured;
      Net.Fabric.Forward);
  s

let captures s = List.rev s.captured

let stop_packet_capture ritm s =
  Net.Fabric.Node.remove_tap (Ritm.guestx_node ritm) ~name:s.sniffer_tap

(* {2 Keylogger} *)

type keylogger = {
  keylogger_tap : string;
  key_ports : int list;
  mutable keys : string list;
}

let start_keylogger ritm ~ports =
  let k = { keylogger_tap = "cs-keylogger"; key_ports = ports; keys = [] } in
  let node = Ritm.guestx_node ritm in
  Net.Fabric.Node.add_tap node ~name:k.keylogger_tap (fun packet ->
      (* inbound victim traffic arrives pre-NAT (e.g. on forwarded port
         2222); resolve through GuestX's own forward table to the port
         the victim will actually see *)
      let port = packet.Net.Packet.dst.Net.Packet.port in
      let effective =
        match Net.Fabric.Node.forward_target node port with
        | Some to_ -> to_.Net.Packet.port
        | None -> port
      in
      if List.mem effective k.key_ports then
        k.keys <- Net.Packet.visible_payload packet :: k.keys;
      Net.Fabric.Forward);
  k

let keystrokes k = List.rev k.keys

let stop_keylogger ritm k =
  Net.Fabric.Node.remove_tap (Ritm.guestx_node ritm) ~name:k.keylogger_tap

(* {2 Pre-encryption write trap} *)

type write_trap = {
  trap_name : string;
  mutable writes : string list;
}

let trap_guest_writes ritm =
  let t = { trap_name = "cs-write-trap"; writes = [] } in
  Vmm.Vm.trap_write_syscalls ritm.Ritm.victim ~name:t.trap_name (fun data ->
      t.writes <- data :: t.writes);
  t

let trapped_writes t = List.rev t.writes

let untrap_guest_writes ritm t =
  Vmm.Vm.untrap_write_syscalls ritm.Ritm.victim ~name:t.trap_name

(* {2 Parallel malicious OS} *)

let launch_parallel_os ritm ~name ~memory_mb =
  let base = Vmm.Qemu_config.default ~name in
  let config =
    {
      base with
      Vmm.Qemu_config.memory_mb;
      monitor_port = 5700;
      disk = { base.Vmm.Qemu_config.disk with Vmm.Qemu_config.image = name ^ ".qcow2" };
    }
  in
  Vmm.Hypervisor.launch ritm.Ritm.nested_hv config

(* {2 Active services} *)

type active_stats = {
  mutable dropped : int;
  mutable rewritten : int;
}

let replace_all ~pattern ~replacement s =
  let plen = String.length pattern in
  if plen = 0 then s
  else begin
    let buf = Buffer.create (String.length s) in
    let rec go i =
      if i > String.length s - plen then Buffer.add_string buf (String.sub s i (String.length s - i))
      else if String.sub s i plen = pattern then begin
        Buffer.add_string buf replacement;
        go (i + plen)
      end
      else begin
        Buffer.add_char buf s.[i];
        go (i + 1)
      end
    in
    go 0;
    Buffer.contents buf
  end

let drop_traffic ritm ~port =
  let stats = { dropped = 0; rewritten = 0 } in
  Net.Fabric.Node.add_tap (Ritm.guestx_node ritm)
    ~name:(Printf.sprintf "cs-drop-%d" port)
    (fun packet ->
      if packet.Net.Packet.dst.Net.Packet.port = port then begin
        stats.dropped <- stats.dropped + 1;
        Net.Fabric.Drop
      end
      else Net.Fabric.Forward);
  stats

let rewrite_traffic ritm ~port ~pattern ~replacement =
  let stats = { dropped = 0; rewritten = 0 } in
  Net.Fabric.Node.add_tap (Ritm.guestx_node ritm)
    ~name:(Printf.sprintf "cs-rewrite-%d" port)
    (fun packet ->
      let matches_port = packet.Net.Packet.dst.Net.Packet.port = port in
      if matches_port && not packet.Net.Packet.encrypted then begin
        let payload = replace_all ~pattern ~replacement packet.Net.Packet.payload in
        if String.equal payload packet.Net.Packet.payload then Net.Fabric.Forward
        else begin
          stats.rewritten <- stats.rewritten + 1;
          Net.Fabric.Rewrite { packet with Net.Packet.payload }
        end
      end
      else Net.Fabric.Forward);
  stats

let stop_active_service ritm ~name = Net.Fabric.Node.remove_tap (Ritm.guestx_node ritm) ~name

(* {2 Victim-side traffic helper} *)

(* Atomic so concurrent trials keep packet ids globally unique. *)
let packet_counter = Atomic.make 0

let victim_send ritm ~dst ?(encrypted = false) payload =
  let victim = ritm.Ritm.victim in
  (* The application's write syscall happens inside the guest, in the
     clear - an L1 write trap sees it here. *)
  Vmm.Vm.emit_write victim payload;
  let id = Atomic.fetch_and_add packet_counter 1 + 1 in
  let src = Net.Packet.endpoint (Vmm.Vm.addr victim) 48000 in
  let packet = Net.Packet.make ~encrypted ~id ~src ~dst payload in
  let io = Vmm.Vm.io victim in
  io.Vmm.Vm.net_tx_bytes <- io.Vmm.Vm.net_tx_bytes + packet.Net.Packet.size_bytes;
  (* Outbound path: the packet transits GuestX (the victim's hypervisor
     owns the virtual NIC - the attacker's taps run here), then the host
     gateway, then goes out on the host's uplink. *)
  match Net.Fabric.Node.route_through (Ritm.guestx_node ritm) packet with
  | None -> ()  (* an active service dropped it *)
  | Some packet -> (
    match Net.Fabric.Node.route_through (Vmm.Hypervisor.gateway ritm.Ritm.host) packet with
    | None -> ()
    | Some packet -> Net.Fabric.Switch.send (Vmm.Hypervisor.uplink ritm.Ritm.host) packet)
