type t = {
  ctx : Sim.Ctx.t;
  host : Vmm.Hypervisor.t;
  registry : Migration.Registry.t;
  customer_vm : Vmm.Vm.t;
  ritm : Ritm.t option;
  install_report : Install.report option;
  detector_env : Dedup_detector.environment;
  description : string;
}

type install_failure =
  | Launch_failed of string
  | Install_failed of string

let install_failure_to_string = function
  | Launch_failed e -> "infected(launch): " ^ e
  | Install_failed e -> "infected(install): " ^ e

let get_ok what = function
  | Ok v -> v
  | Error e -> invalid_arg (Printf.sprintf "Scenarios.%s: %s" what e)

(* Like {!Vmm.Layers}, each scenario forks the caller's context so it
   plays out in a fresh world replayed from the context's seed. *)
let make_host ?ksm_config ctx =
  let ctx = Sim.Ctx.fork ctx in
  let uplink = Net.Fabric.Switch.create ctx ~name:"uplink" ~link:Net.Link.lan_1gbe in
  let host =
    Vmm.Hypervisor.create_l0 ?ksm_config ctx ~name:"host" ~uplink ~addr:"192.168.1.100"
  in
  (ctx, host)

let customer_config ?memory_mb () =
  let base = Vmm.Qemu_config.default ~name:"guest0" in
  let base =
    match memory_mb with
    | None -> base
    | Some m -> { base with Vmm.Qemu_config.memory_mb = m }
  in
  Vmm.Qemu_config.with_hostfwd base [ (2222, 22) ]

(* Change every page of a named file inside a VM's memory. *)
let mutate_file_in vm ~name ~salt =
  match Vmm.Vm.file_offset vm name with
  | None -> Error (Printf.sprintf "%s holds no file named %s" (Vmm.Vm.name vm) name)
  | Some offset ->
    let pages =
      match List.find_opt (fun (n, _, _) -> String.equal n name) (Vmm.Vm.loaded_files vm) with
      | Some (_, _, p) -> p
      | None -> 0
    in
    let ram = Vmm.Vm.ram vm in
    for i = 0 to pages - 1 do
      let c = Memory.Address_space.read ram (offset + i) in
      ignore (Memory.Address_space.write ram (offset + i) (Memory.Page.Content.mutate c ~salt))
    done;
    Ok ()

let clean ?ksm_config ?customer_memory_mb ctx =
  let ctx, host = make_host ?ksm_config ctx in
  let registry = Migration.Registry.create () in
  let guest0 =
    get_ok "clean" (Vmm.Hypervisor.launch host (customer_config ?memory_mb:customer_memory_mb ()))
  in
  let deliver_to_guest image = Result.map (fun _ -> ()) (Vmm.Vm.load_file guest0 image) in
  let mutate_in_guest ~name ~salt = mutate_file_in guest0 ~name ~salt in
  {
    ctx;
    host;
    registry;
    customer_vm = guest0;
    ritm = None;
    install_report = None;
    detector_env = { Dedup_detector.ctx; host; deliver_to_guest; mutate_in_guest };
    description = "clean host: customer VM at L1";
  }

let ( let* ) r f = Result.bind r f

let infected_result ?ksm_config ?customer_memory_mb ?(attacker_syncs_changes = false)
    ?install_config ctx =
  let ctx, host = make_host ?ksm_config ctx in
  let registry = Migration.Registry.create () in
  let* guest0 =
    Result.map_error
      (fun e -> Launch_failed e)
      (Vmm.Hypervisor.launch host (customer_config ?memory_mb:customer_memory_mb ()))
  in
  ignore guest0;
  let* report =
    (* the context's fault profile (if any) overrides the config's
       inside {!Install.run} itself; an abort (possible under an
       aggressive profile) is a legal outcome here, not an exception *)
    Result.map_error
      (fun e -> Install_failed e)
      (Install.run ?config:install_config ctx ~host ~registry ~target_name:"guest0")
  in
  let ritm = report.Install.ritm in
  let victim = ritm.Ritm.victim in
  let guestx = ritm.Ritm.guestx in
  (* The web-interface delivery lands in the customer's OS - which now
     runs at L2. The attacker sees the file cross the RITM and mirrors
     it into GuestX so that the L1 "guest" keeps looking identical. *)
  let deliver_to_guest image =
    match Vmm.Vm.load_file victim image with
    | Error e -> Error e
    | Ok _ ->
      Result.map
        (fun () -> ())
        (Stealth.mirror_file ~guestx ~victim ~name:(Memory.File_image.name image))
  in
  let mutate_in_guest ~name ~salt =
    match mutate_file_in victim ~name ~salt with
    | Error e -> Error e
    | Ok () ->
      if attacker_syncs_changes then begin
        (* Section VI-D evasion: the attacker tracks the victim's page
           writes and replays them into the mirror. *)
        let pages =
          match
            List.find_opt (fun (n, _, _) -> String.equal n name) (Vmm.Vm.loaded_files victim)
          with
          | Some (_, _, p) -> p
          | None -> 0
        in
        let rec sync i =
          if i >= pages then Ok ()
          else
            match Stealth.sync_victim_page ~guestx ~victim ~name ~page:i with
            | Ok () -> sync (i + 1)
            | Error e -> Error e
        in
        sync 0
      end
      else Ok ()
  in
  Ok
    {
      ctx;
      host;
      registry;
      customer_vm = victim;
      ritm = Some ritm;
      install_report = Some report;
      detector_env = { Dedup_detector.ctx; host; deliver_to_guest; mutate_in_guest };
      description =
        (if attacker_syncs_changes then
           "infected host: CloudSkulk installed, attacker syncing file changes"
         else "infected host: CloudSkulk installed");
    }

let infected ?ksm_config ?customer_memory_mb ?attacker_syncs_changes ?install_config ctx =
  match
    infected_result ?ksm_config ?customer_memory_mb ?attacker_syncs_changes ?install_config
      ctx
  with
  | Ok t -> t
  | Error f -> invalid_arg ("Scenarios." ^ install_failure_to_string f)

let is_infected t = Option.is_some t.ritm
