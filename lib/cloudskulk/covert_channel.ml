type config = {
  pages_per_bit : int;
  mem_params : Memory.Mem_params.t;
  wait_factor : float;
  codebook_seed : int;
}

let default_config =
  {
    pages_per_bit = 1;
    mem_params = Memory.Mem_params.default;
    wait_factor = 2.5;
    codebook_seed = 0xC0DE;
  }

type transfer = {
  sent : bool list;
  received : bool list;
  bit_errors : int;
  elapsed : Sim.Time.t;
  bandwidth_bits_per_s : float;
}

(* Both parties derive slot contents deterministically from the shared
   seed; a fresh nonce per call keeps frames from colliding with a
   previous frame's residue (atomic: nonces must stay unique even when
   trials run concurrently across domains). *)
let frame_nonce = Atomic.make 0

let codebook config ~nonce ~bits =
  let rng = Sim.Rng.create (config.codebook_seed lxor (nonce * 0x9E37)) in
  List.init bits (fun _ ->
      Array.init config.pages_per_bit (fun _ -> Memory.Page.Content.random rng))

let load_slot vm contents ~name =
  Vmm.Vm.load_file vm (Memory.File_image.of_contents ~name contents)

let transmit ?(config = default_config) ~host ~sender ~receiver bits =
  match Vmm.Hypervisor.ksm host with
  | None -> Error "host has no ksmd: the channel needs memory deduplication"
  | Some ksm ->
    let nonce = Atomic.fetch_and_add frame_nonce 1 + 1 in
    let engine = Vmm.Vm.engine sender in
    let started = Sim.Engine.now engine in
    let book = codebook config ~nonce ~bits:(List.length bits) in
    let slot_name side i = Printf.sprintf "covert-%d-%s-%d" nonce side i in
    (* receiver always holds every slot page *)
    let rec load_receiver i = function
      | [] -> Ok ()
      | contents :: rest -> (
        match load_slot receiver contents ~name:(slot_name "rx" i) with
        | Ok _ -> load_receiver (i + 1) rest
        | Error e -> Error ("receiver: " ^ e))
    in
    (* sender holds only the 1-slots *)
    let rec load_sender i = function
      | [] -> Ok ()
      | (bit, contents) :: rest ->
        if not bit then load_sender (i + 1) rest
        else begin
          match load_slot sender contents ~name:(slot_name "tx" i) with
          | Ok _ -> load_sender (i + 1) rest
          | Error e -> Error ("sender: " ^ e)
        end
    in
    (match load_receiver 0 book with
    | Error e -> Error e
    | Ok () -> (
      match load_sender 0 (List.combine bits book) with
      | Error e -> Error e
      | Ok () ->
        (* wait for ksmd to merge matching slots *)
        let wait = Sim.Time.mul (Memory.Ksm.time_for_full_pass ksm) config.wait_factor in
        ignore (Sim.Engine.run_for engine wait);
        (* receiver probes its own copies: CoW = the sender had it *)
        let rng = Sim.Engine.fork_rng engine in
        let received =
          List.mapi
            (fun i _ ->
              match Vmm.Vm.file_offset receiver (slot_name "rx" i) with
              | None -> false
              | Some offset ->
                let probe =
                  Memory.Write_probe.probe ~params:config.mem_params ~rng
                    (Vmm.Vm.ram receiver) ~offset ~pages:config.pages_per_bit
                in
                ignore (Sim.Engine.run_for engine probe.Memory.Write_probe.total);
                Memory.Write_probe.fraction_cow probe > 0.5)
            book
        in
        (* clean both sides' bookkeeping so slots can be reused *)
        List.iteri
          (fun i _ ->
            Vmm.Vm.unload_file receiver (slot_name "rx" i);
            Vmm.Vm.unload_file sender (slot_name "tx" i))
          book;
        let bit_errors =
          List.fold_left2 (fun acc a b -> if a = b then acc else acc + 1) 0 bits received
        in
        let elapsed = Sim.Time.diff (Sim.Engine.now engine) started in
        let secs = Sim.Time.to_s elapsed in
        Ok
          {
            sent = bits;
            received;
            bit_errors;
            elapsed;
            bandwidth_bits_per_s =
              (if secs > 0. then float_of_int (List.length bits) /. secs else 0.);
          }))

let string_to_bits s =
  List.concat_map
    (fun c ->
      let code = Char.code c in
      List.init 8 (fun i -> code land (1 lsl (7 - i)) <> 0))
    (List.init (String.length s) (String.get s))

let bits_to_string bits =
  let arr = Array.of_list bits in
  let n_bytes = Array.length arr / 8 in
  String.init n_bytes (fun b ->
      let code = ref 0 in
      for i = 0 to 7 do
        if arr.((b * 8) + i) then code := !code lor (1 lsl (7 - i))
      done;
      Char.chr !code)
