(** Memory-deduplication-based CloudSkulk detection (paper Section VI).

    The defender, at L0, cannot trust anything the (possibly
    impersonated) guest reports; but KSM gives an oracle about what is
    {e in memory}: writes to merged pages are slow (copy-on-write) and
    writes to private pages fast. The two-step protocol:

    + Deliver a unique file (File-A) to the customer's VM through the
      cloud web interface; load a copy in L0; wait for ksmd; time a
      write to each page ({e t1}). Merged (slow) t1 confirms File-A is
      in the guest.
    + Have the customer change every page (File-A-v2); load a fresh
      original copy in L0; wait; time again ({e t2}).

    If there is no RITM, the guest's only copy is now different, so t2
    is fast. If a RITM sits in the middle, the L1 attacker still holds
    the {e original} File-A (they must, to impersonate the guest), so
    the L0 copy merges with L1's and t2 stays slow. {e t0} - the time
    for a copy that exists nowhere else - is the baseline. *)

type verdict =
  | Nested_vm_detected
  | No_nested_vm
  | Inconclusive of string

val verdict_to_string : verdict -> string

val verdict_equal : verdict -> verdict -> bool
(** Structural equality ([Inconclusive] reasons compare with
    [String.equal]) — use instead of polymorphic compare. *)

type config = {
  file_pages : int;  (** pages of File-A (paper: 100) *)
  mem_params : Memory.Mem_params.t;
  wait_factor : float;
      (** how many ksmd full-pass times to wait after each load
          (default 2.5) *)
  merge_ratio : float;
      (** a mean write this many times t0's is "merged" (default 3.0) *)
  mutate_salt : int;  (** salt for deriving File-A-v2 *)
}

val default_config : config

type environment = {
  ctx : Sim.Ctx.t;
  host : Vmm.Hypervisor.t;
  deliver_to_guest : Memory.File_image.t -> (unit, string) result;
      (** the web-interface push: lands File-A in the customer VM's
          memory (Section VI-D-1) *)
  mutate_in_guest : name:string -> salt:int -> (unit, string) result;
      (** ask the customer's agent to change every page of the file *)
}

type measurement = {
  label : string;
  per_page_ns : float array;  (** write time per probed page: Figs 5-6's series *)
  summary : Sim.Stats.summary;
  cow_fraction : float;  (** ground truth, for tests; the real detector sees only times *)
}

type outcome = {
  t0 : measurement;
  t1 : measurement;
  t2 : measurement;
  verdict : verdict;
  wait_per_step : Sim.Time.t;
  elapsed : Sim.Time.t;
}

val run : ?config:config -> environment -> (outcome, string) result
(** Execute the full protocol. The verdict uses timing only:
    - t1 fast: [Inconclusive] (File-A never merged - ksmd too slow or
      the file never reached the guest);
    - t1 slow, t2 fast: [No_nested_vm];
    - t1 slow, t2 slow: [Nested_vm_detected]. *)

val measure_t0 : ?config:config -> environment -> (measurement, string) result
(** Just the baseline measurement (a file that exists nowhere else). *)

val verdict_for_ratio : outcome -> ratio:float -> verdict
(** Re-decide a recorded outcome under a different [merge_ratio]
    threshold, from the t0/t1/t2 mean write times alone. With
    [ratio = config.merge_ratio] this reproduces [outcome.verdict]
    exactly — the decision rule is shared. Used by the [slo]
    experiment's ROC sweep to score thresholds post hoc without
    re-running the protocol. *)
