(** End-to-end evaluation scenarios.

    The paper's detection evaluation (Section VI-C) runs the protocol in
    two worlds: scenario 1, a clean host where the customer's VM really
    is the L1 guest the administrator sees; and scenario 2, a host where
    CloudSkulk has been installed and the "guest" the administrator sees
    is the attacker's GuestX with the real customer at L2. This module
    builds both, with the detector's web-interface callbacks wired to
    the right VMs. *)

type t = {
  ctx : Sim.Ctx.t;  (** the scenario's (forked) context *)
  host : Vmm.Hypervisor.t;
  registry : Migration.Registry.t;
  customer_vm : Vmm.Vm.t;  (** where the customer's agent actually runs *)
  ritm : Ritm.t option;  (** present when CloudSkulk is installed *)
  install_report : Install.report option;
  detector_env : Dedup_detector.environment;
  description : string;
}

type install_failure =
  | Launch_failed of string  (** the customer VM itself never came up *)
  | Install_failed of string
      (** the CloudSkulk installation aborted (e.g. its live migration
          died under an aggressive fault profile) and was torn down *)

val install_failure_to_string : install_failure -> string

val clean : ?ksm_config:Memory.Ksm.config -> ?customer_memory_mb:int -> Sim.Ctx.t -> t
(** Scenario 1: a host running the customer's VM (guest0) at L1. The
    context is the scenario's instrumentation root, {!Sim.Ctx.fork}ed
    so the scenario plays out in a fresh world replayed from its seed;
    its telemetry sink is threaded through the uplink switch and the L0
    hypervisor (and from there into KSM, VMs, migrations and the
    detector). [customer_memory_mb] (default 1024, the paper's guest)
    sizes the customer VM - the fuzzer runs smaller guests to afford
    many scenarios per budget. *)

val infected_result :
  ?ksm_config:Memory.Ksm.config ->
  ?customer_memory_mb:int ->
  ?attacker_syncs_changes:bool ->
  ?install_config:Install.config ->
  Sim.Ctx.t ->
  (t, install_failure) result
(** Scenario 2: the same host after a CloudSkulk installation. The
    detector's file delivery reaches the customer's agent (now at L2);
    the attacker, watching the delivery cross the RITM, mirrors the file
    into GuestX to keep impersonating. [attacker_syncs_changes] (default
    false) models the evasion of Section VI-D: the attacker also
    propagates the customer's page changes into the mirror. The
    context's {!Sim.Ctx.faults} profile injects channel faults into the
    install's live migration; a non-trivial profile overrides the one in
    [install_config]. An installation that fails - impossible in the
    default topology, but an ordinary outcome under an aggressive fault
    profile - is returned as [Error]: partial artifacts are already torn
    down and the host keeps running the (un-hijacked) customer VM. *)

val infected :
  ?ksm_config:Memory.Ksm.config ->
  ?customer_memory_mb:int ->
  ?attacker_syncs_changes:bool ->
  ?install_config:Install.config ->
  Sim.Ctx.t ->
  t
(** {!infected_result}, raising [Invalid_argument] on failure - the
    historical surface, fine wherever the fault profile cannot abort the
    install. Fuzz drivers and chaos tests use {!infected_result}. *)

val is_infected : t -> bool
