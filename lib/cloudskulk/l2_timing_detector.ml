type verdict =
  | Looks_nested
  | Looks_normal

let verdict_to_string = function
  | Looks_nested -> "looks nested (RITM suspected)"
  | Looks_normal -> "looks normal"

type config = {
  reference_op : Vmm.Cost_model.op;
  consistency_ops : Vmm.Cost_model.op list;
  threshold : float;
  iterations : int;
}

let find_op name =
  match List.assoc_opt name Workload.Lmbench.processes with
  | Some op -> op
  | None -> invalid_arg ("L2_timing_detector: unknown lmbench op " ^ name)

let default_config =
  {
    reference_op = find_op "pipe latency";
    consistency_ops =
      [
        find_op "pipe latency";
        find_op "fork+exit";
        find_op "signal handler installation";
      ];
    threshold = 3.0;
    iterations = 1000;
  }

type observation = {
  op_name : string;
  expected_l1_ns : float;
  observed_ns : float;
  ratio : float;
}

type result = {
  observations : observation list;
  naive_verdict : verdict;
  consistency_verdict : verdict;
  max_ratio_spread : float;
}

(* Whether a VM's L1 currently spoofs benchmark results is state of that
   VM, carried on it (never in a module-level registry, which parallel
   trial domains would share). *)
let spoof_results vm = Vmm.Vm.set_spoofs_benchmarks vm true
let stop_spoofing vm = Vmm.Vm.set_spoofs_benchmarks vm false
let is_spoofed vm = Vmm.Vm.spoofs_benchmarks vm

let observe_op config vm op =
  (* what the user was promised at provisioning: L1 performance *)
  let expected_l1_ns = Vmm.Cost_model.cost_ns ~level:Vmm.Level.l1 op in
  (* real cost at the level the guest actually runs *)
  let real_ns = Vmm.Cost_model.cost_ns ~level:(Vmm.Vm.level vm) op in
  (* the benchmark loop takes real time on the host's clock... *)
  let loop_duration =
    Sim.Time.ns (int_of_float (Float.round (real_ns *. float_of_int config.iterations)))
  in
  ignore (Sim.Engine.run_for (Vmm.Vm.engine vm) loop_duration);
  (* ...but the guest reads its own (possibly manipulated) clock *)
  let observed_ns =
    if is_spoofed vm then expected_l1_ns
    else real_ns *. Vmm.Vm.guest_time_scale vm
  in
  {
    op_name = op.Vmm.Cost_model.name;
    expected_l1_ns;
    observed_ns;
    ratio = (if expected_l1_ns > 0. then observed_ns /. expected_l1_ns else 1.);
  }

let measure ?(config = default_config) vm =
  let reference = observe_op config vm config.reference_op in
  let observations = List.map (observe_op config vm) config.consistency_ops in
  let naive_verdict = if reference.ratio > config.threshold then Looks_nested else Looks_normal in
  let consistency_verdict =
    if List.exists (fun o -> o.ratio > config.threshold) observations then Looks_nested
    else Looks_normal
  in
  let ratios = List.map (fun o -> o.ratio) observations in
  let max_ratio = List.fold_left Float.max 0. ratios in
  let min_ratio = List.fold_left Float.min Float.infinity ratios in
  {
    observations = reference :: observations;
    naive_verdict;
    consistency_verdict;
    max_ratio_spread = (if min_ratio > 0. then max_ratio /. min_ratio else 1.);
  }

let hide_reference_op ?(config = default_config) vm =
  let op = config.reference_op in
  let expected = Vmm.Cost_model.cost_ns ~level:Vmm.Level.l1 op in
  let real = Vmm.Cost_model.cost_ns ~level:(Vmm.Vm.level vm) op in
  if real > 0. then Vmm.Vm.set_guest_time_scale vm (expected /. real)
