type verdict =
  | Nested_vm_detected
  | No_nested_vm
  | Inconclusive of string

let verdict_to_string = function
  | Nested_vm_detected -> "nested VM detected (CloudSkulk present)"
  | No_nested_vm -> "no nested VM"
  | Inconclusive reason -> "inconclusive: " ^ reason

let verdict_equal a b =
  match (a, b) with
  | Nested_vm_detected, Nested_vm_detected | No_nested_vm, No_nested_vm -> true
  | Inconclusive x, Inconclusive y -> String.equal x y
  | (Nested_vm_detected | No_nested_vm | Inconclusive _), _ -> false

type config = {
  file_pages : int;
  mem_params : Memory.Mem_params.t;
  wait_factor : float;
  merge_ratio : float;
  mutate_salt : int;
}

let default_config =
  {
    file_pages = 100;
    mem_params = Memory.Mem_params.default;
    wait_factor = 2.5;
    merge_ratio = 3.0;
    mutate_salt = 0x5A17;
  }

type environment = {
  ctx : Sim.Ctx.t;
  host : Vmm.Hypervisor.t;
  deliver_to_guest : Memory.File_image.t -> (unit, string) result;
  mutate_in_guest : name:string -> salt:int -> (unit, string) result;
}

type measurement = {
  label : string;
  per_page_ns : float array;
  summary : Sim.Stats.summary;
  cow_fraction : float;
}

type outcome = {
  t0 : measurement;
  t1 : measurement;
  t2 : measurement;
  verdict : verdict;
  wait_per_step : Sim.Time.t;
  elapsed : Sim.Time.t;
}

let ( let* ) r f = Result.bind r f

(* The decision rule is a pure function of the three mean write times
   and the merge-ratio threshold, so alternative thresholds can be
   evaluated post hoc from a recorded outcome (the ROC sweep in the
   [slo] experiment) without re-running the protocol. *)
let decide ~merge_ratio ~t0_mean ~t1_mean ~t2_mean =
  let merged m = m >= merge_ratio *. t0_mean in
  if not (merged t1_mean) then
    Inconclusive
      "t1 is as fast as the baseline: File-A never merged (ksmd too slow, or the file \
       never reached the guest)"
  else if merged t2_mean then Nested_vm_detected
  else No_nested_vm

let verdict_for_ratio o ~ratio =
  decide ~merge_ratio:ratio ~t0_mean:o.t0.summary.Sim.Stats.mean
    ~t1_mean:o.t1.summary.Sim.Stats.mean ~t2_mean:o.t2.summary.Sim.Stats.mean

let ksm_exn env =
  match Vmm.Hypervisor.ksm env.host with
  | Some k -> k
  | None -> invalid_arg "Dedup_detector: host has no ksmd"

let wait_time config env =
  (* After the buffer is registered: how long one full ksmd pass takes
     over everything registered, padded by the configured factor. *)
  Sim.Time.mul (Memory.Ksm.time_for_full_pass (ksm_exn env)) config.wait_factor

(* Load [image] into a fresh host buffer, wait for ksmd, and time a
   write to each page. The buffer is released afterwards: the real
   detector's process exits and frees its memory. *)
let load_wait_probe config env ~label image =
  let telemetry = Vmm.Hypervisor.telemetry env.host in
  let probe_started = Sim.Ctx.now env.ctx in
  let* buffer =
    Vmm.Hypervisor.host_buffer env.host ~name:(Printf.sprintf "detector-%s" label)
      ~pages:(Memory.File_image.pages image)
  in
  Memory.File_image.load_into image buffer ~offset:0;
  let wait = wait_time config env in
  ignore (Sim.Engine.run_for (Sim.Ctx.engine env.ctx) wait);
  let rng = Sim.Ctx.fork_rng env.ctx in
  let probe =
    Memory.Write_probe.probe ~params:config.mem_params ~rng buffer ~offset:0
      ~pages:(Memory.File_image.pages image)
  in
  ignore (Sim.Engine.run_for (Sim.Ctx.engine env.ctx) probe.Memory.Write_probe.total);
  Vmm.Hypervisor.release_buffer env.host buffer;
  let per_page_ns = Memory.Write_probe.costs_ns probe in
  let stats = Sim.Stats.of_list (Array.to_list per_page_ns) in
  let summary = Sim.Stats.summary stats in
  let cow_fraction = Memory.Write_probe.fraction_cow probe in
  if Sim.Telemetry.enabled telemetry then begin
    let step_label = [ ("step", label) ] in
    Sim.Telemetry.incr
      (Sim.Telemetry.counter telemetry ~labels:step_label ~component:"cloudskulk"
         "probes_total");
    let h =
      Sim.Telemetry.histogram telemetry ~labels:step_label ~component:"cloudskulk"
        ~buckets:[ 100.; 300.; 1000.; 3000.; 10000.; 30000.; 100000. ]
        "probe_write_ns"
    in
    Array.iter (fun ns -> Sim.Telemetry.observe h ns) per_page_ns;
    Sim.Telemetry.span telemetry ~component:"cloudskulk" ~name:"probe" ~start:probe_started
      ~stop:(Sim.Ctx.now env.ctx)
      ~fields:
        [
          ("step", label);
          ("pages", string_of_int (Memory.File_image.pages image));
          ("mean_ns", Printf.sprintf "%.0f" summary.Sim.Stats.mean);
          ("cow_fraction", Printf.sprintf "%.4f" cow_fraction);
        ]
      ()
  end;
  Ok { label; per_page_ns; summary; cow_fraction }

(* Each protocol run works with a fresh file: real deployments generate
   a new random File-A per check (Section VI-D-1), and reusing a name
   would collide with a previous run's copy still sitting in the
   guest. Atomic, because trials may run concurrently across domains
   and a duplicated "fresh" name would silently change behaviour. *)
let run_counter = Atomic.make 0

let fresh_name prefix = Printf.sprintf "%s-%d" prefix (Atomic.fetch_and_add run_counter 1 + 1)

let measure_t0 ?(config = default_config) env =
  let rng = Sim.Ctx.fork_rng env.ctx in
  let lonely =
    Memory.File_image.generate rng ~name:(fresh_name "file-t0") ~pages:config.file_pages
  in
  load_wait_probe config env ~label:"t0" lonely

let run ?(config = default_config) env =
  let started = Sim.Ctx.now env.ctx in
  let rng = Sim.Ctx.fork_rng env.ctx in
  let file_a =
    Memory.File_image.generate rng ~name:(fresh_name "file-a") ~pages:config.file_pages
  in
  if not (Memory.File_image.all_pages_distinct file_a) then
    Error "File-A generation produced duplicate pages"
  else begin
    (* Baseline: a file no one else holds. *)
    let* t0 = measure_t0 ~config env in
    (* Step 1: push File-A to the guest, then measure. *)
    let* () = env.deliver_to_guest file_a in
    let* t1 = load_wait_probe config env ~label:"t1" file_a in
    (* Step 2: the guest changes every page; measure a fresh original. *)
    let* () = env.mutate_in_guest ~name:(Memory.File_image.name file_a) ~salt:config.mutate_salt in
    let* t2 = load_wait_probe config env ~label:"t2" file_a in
    let verdict =
      decide ~merge_ratio:config.merge_ratio ~t0_mean:t0.summary.Sim.Stats.mean
        ~t1_mean:t1.summary.Sim.Stats.mean ~t2_mean:t2.summary.Sim.Stats.mean
    in
    let telemetry = Vmm.Hypervisor.telemetry env.host in
    let verdict_label =
      match verdict with
      | Nested_vm_detected -> "nested_vm_detected"
      | No_nested_vm -> "no_nested_vm"
      | Inconclusive _ -> "inconclusive"
    in
    Sim.Telemetry.incr
      (Sim.Telemetry.counter telemetry
         ~labels:[ ("verdict", verdict_label) ]
         ~component:"cloudskulk" "verdicts_total");
    if Sim.Telemetry.enabled telemetry then
      Sim.Telemetry.span telemetry ~component:"cloudskulk" ~name:"detect" ~start:started
        ~stop:(Sim.Ctx.now env.ctx)
        ~fields:[ ("verdict", verdict_label) ]
        ();
    Ok
      {
        t0;
        t1;
        t2;
        verdict;
        wait_per_step = wait_time config env;
        elapsed = Sim.Time.diff (Sim.Ctx.now env.ctx) started;
      }
  end
