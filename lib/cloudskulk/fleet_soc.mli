(** Datacenter-level SOC aggregation over per-host detector services.

    One {!Detector_service} per host watches its own tenants; the fleet
    pins one [Fleet_soc.t] to host 0, where verdict reports forwarded
    through shard mailboxes accumulate. The SOC also owns the fleet
    audit rotation - a deterministic round-robin over hosts, so which
    host is audited next depends only on how many audits were sent, not
    on timing or partitioning. Engine-free by design: the owning host
    schedules ticks and posts mail; this module accumulates and
    decides. *)

type detection = {
  det_host : int;  (** origin host index *)
  det_tenant : string;
  det_at : Sim.Time.t;  (** fleet clock when the report reached the SOC *)
  det_ttd : Sim.Time.t;  (** registration-to-detection on the origin host *)
  det_probes : int;  (** dedup probes the origin host spent on the tenant *)
}

type t

val create : unit -> t

val note : t -> detection -> unit
(** Record a forwarded verdict report. The first report per
    (host, tenant) wins; later flips count as reports but not as new
    detections. *)

val detections : t -> detection list
(** Unique detections in arrival order - deterministic because mailbox
    drain order is (see {!Sim.Shard.exchange}). *)

val detection_count : t -> int
val reports_received : t -> int

val next_audit_target : t -> hosts:int -> int option
(** Advance the audit rotation and return the host to audit next
    ([None] for an empty fleet). *)

val audits_sent : t -> int

val ttd_stats : t -> Sim.Stats.t
(** Time-to-detection sample over the unique detections. *)

val probes_spent : t -> int
(** Total dedup probes behind the unique detections. *)
