(* The datacenter-level security operations centre.

   Each fleet host runs its own Detector_service; this aggregator lives
   on one host (the fleet pins it to host 0) and consumes the verdict
   reports the per-host services forward through shard mailboxes. It
   also plans the fleet-wide audit rotation: a deterministic round-robin
   cursor over the host population, so the sequence of audited hosts is
   a pure function of how many audits have been sent. No engine state
   lives here - the owning host schedules the ticks and posts the mail;
   this module only accumulates and decides. *)

type detection = {
  det_host : int;
  det_tenant : string;
  det_at : Sim.Time.t;  (* fleet clock when the report reached the SOC *)
  det_ttd : Sim.Time.t;  (* registration-to-detection on the origin host *)
  det_probes : int;  (* dedup probes the origin host spent on the tenant *)
}

type t = {
  mutable detections_rev : detection list;
  mutable reports : int;
  mutable audits_sent : int;
  mutable cursor : int;  (* next host in the audit rotation *)
}

let create () = { detections_rev = []; reports = 0; audits_sent = 0; cursor = 0 }

let note t d =
  t.reports <- t.reports + 1;
  (* first report wins per (host, tenant): re-flips do not re-detect *)
  if
    not
      (List.exists
         (fun d' -> d'.det_host = d.det_host && String.equal d'.det_tenant d.det_tenant)
         t.detections_rev)
  then t.detections_rev <- d :: t.detections_rev

let detections t = List.rev t.detections_rev
let detection_count t = List.length t.detections_rev
let reports_received t = t.reports
let audits_sent t = t.audits_sent

let next_audit_target t ~hosts =
  if hosts <= 0 then None
  else begin
    let target = t.cursor mod hosts in
    t.cursor <- (t.cursor + 1) mod hosts;
    t.audits_sent <- t.audits_sent + 1;
    Some target
  end

let ttd_stats t =
  let st = Sim.Stats.create () in
  List.iter
    (fun d -> Sim.Stats.add st (Int64.to_float (Sim.Time.to_ns d.det_ttd)))
    (detections t);
  st

let probes_spent t =
  List.fold_left (fun acc d -> acc + d.det_probes) 0 (detections t)
