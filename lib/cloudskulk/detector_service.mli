(** Operational detection service.

    The paper gives the detection {e mechanism}; this module packages it
    the way a cloud operator would run it: a recurring sweep over
    registered tenants that layers the cheap checks over the expensive
    one -

    + every sweep runs the {!Install_auditor} (milliseconds, no tenant
      involvement);
    + the {!Dedup_detector} protocol (minutes of ksmd waiting, needs the
      tenant-side agent) runs for a tenant when the audit is alarming,
      when the tenant has never been probed, or when its rotation is due;
    + verdict flips raise {!event}s the operator can alert on.

    See examples/soc_monitoring.ml for the inline version of the same
    idea. *)

type policy = {
  sweep_every : Sim.Time.t;  (** gap between sweeps in {!start} mode *)
  probe_pages : int;  (** File-A size for routine probes (default 8) *)
  dedup_every_n_sweeps : int;
      (** rotation: run the expensive protocol for every tenant at least
          every N sweeps even without an audit alarm (default 4) *)
}

val default_policy : policy

type tenant_state = {
  tenant : string;
  last_verdict : Dedup_detector.verdict option;
  sweeps_since_dedup : int;
}

type event =
  | Audit_alarm of { sweep : int; findings : Install_auditor.finding list }
  | Verdict_flip of {
      sweep : int;
      tenant : string;
      before : Dedup_detector.verdict option;
      after : Dedup_detector.verdict;
    }
  | Probe_failed of { sweep : int; tenant : string; reason : string }

val event_to_string : event -> string

type t

val create : ?policy:policy -> Sim.Ctx.t -> Vmm.Hypervisor.t -> t

val register_tenant :
  t -> name:string -> env:(unit -> Dedup_detector.environment) -> unit
(** [env] is re-evaluated at each probe, so it can track a tenant whose
    OS moves (e.g. into a nested VM). Registering an existing name
    replaces its environment but keeps its history. *)

val unregister_tenant : t -> name:string -> unit

val sweep_now : t -> event list
(** Run one sweep synchronously (advances virtual time by however long
    the probes take); returns the events it raised. *)

val start : t -> unit
(** Sweep on the policy's cadence until {!stop}. *)

val stop : t -> unit
val sweeps_run : t -> int
val events : t -> event list
(** All events ever raised, oldest first. *)

val tenant_state : t -> string -> tenant_state option
val compromised_tenants : t -> string list
(** Tenants whose last verdict was {!Dedup_detector.Nested_vm_detected}. *)
