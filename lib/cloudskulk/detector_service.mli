(** Operational detection service.

    The paper gives the detection {e mechanism}; this module packages it
    the way a cloud operator would run it, in two modes over the same
    tenant registry:

    {b Batch sweeps} ({!sweep_now} / {!start}): every sweep runs the
    {!Install_auditor} (milliseconds, no tenant involvement); the
    {!Dedup_detector} protocol (minutes of ksmd waiting, needs the
    tenant-side agent) runs for a tenant when the audit is alarming,
    when the tenant has never been probed, or when its rotation is due.

    {b Continuous monitoring} ({!start_monitor}): the audit keeps the
    sweep cadence (it is also the scan-window clock), while each
    tenant's expensive probe self-schedules on a jittered rotation
    interval — seeded from the service's {!Sim.Ctx} — so a large fleet's
    probes spread across the window instead of arriving as a thundering
    herd. An audit alarm pulls every tenant's next probe forward to now.

    Both modes share a probe budget per scan window: once
    [policy.probe_budget] probes have run in a window, further probes
    are deferred to the next window and accounted explicitly
    ({!event.Budget_exhausted}, {!budget_deferrals}, and the
    [detector_budget_exhausted_total] counter).

    Events land in a bounded ring ({!events}; overflow counted by
    {!events_dropped}), and verdicts/latencies stream into the host's
    telemetry sink as the service runs: [detector_probes_total{verdict}]
    counters plus [detector_probe_latency_ns] and
    [detector_time_to_detect_ns] quantile summaries.

    See examples/soc_monitoring.ml for the inline version of the same
    idea. *)

type policy = {
  sweep_every : Sim.Time.t;
      (** gap between sweeps in {!start} mode; audit cadence and scan
          window length in {!start_monitor} mode *)
  probe_pages : int;  (** File-A size for routine probes (default 8) *)
  dedup_every_n_sweeps : int;
      (** rotation: run the expensive protocol for every tenant at least
          every N sweeps even without an audit alarm (default 4). In
          monitor mode the per-tenant probe interval is
          [sweep_every * dedup_every_n_sweeps]. *)
  probe_jitter : float;
      (** monitor mode: each tenant's next probe fires after the
          rotation interval scaled by a uniform factor in
          [1 +/- probe_jitter] (default 0.2; 0 disables jitter) *)
  probe_budget : int;
      (** maximum dedup probes per scan window; excess probes are
          deferred to the next window (default [max_int]: unbounded) *)
  event_log_capacity : int;
      (** retained events in the ring buffer (default 1024); the oldest
          are dropped first and counted in {!events_dropped} *)
}

val default_policy : policy

type tenant_state = {
  tenant : string;
  last_verdict : Dedup_detector.verdict option;
  sweeps_since_dedup : int;
  probes : int;  (** completed (non-failed) probes *)
  registered_at : Sim.Time.t;
  first_detected_at : Sim.Time.t option;
      (** first time a probe returned [Nested_vm_detected] *)
}

type event =
  | Audit_alarm of { sweep : int; findings : Install_auditor.finding list }
  | Verdict_flip of {
      sweep : int;
      tenant : string;
      before : Dedup_detector.verdict option;
      after : Dedup_detector.verdict;
    }
  | Probe_failed of { sweep : int; tenant : string; reason : string }
  | Budget_exhausted of { sweep : int; tenant : string }
      (** the tenant's probe was deferred because the scan window's
          probe budget was already spent *)

val event_to_string : event -> string

type t

val create : ?policy:policy -> Sim.Ctx.t -> Vmm.Hypervisor.t -> t

val register_tenant :
  t -> name:string -> env:(unit -> Dedup_detector.environment) -> unit
(** [env] is re-evaluated at each probe, so it can track a tenant whose
    OS moves (e.g. into a nested VM). Registering an existing name
    replaces its environment but keeps its history. Under
    {!start_monitor}, a newly registered tenant's first probe is spread
    uniformly over one rotation interval. *)

val unregister_tenant : t -> name:string -> unit

val sweep_now : t -> event list
(** Run one sweep synchronously (advances virtual time by however long
    the probes take); returns the events it raised — including any that
    overflowed out of the retained ring. Each call is its own scan
    window for budget purposes. *)

val start : t -> unit
(** Batch mode: sweep on the policy's cadence until {!stop}. *)

val start_monitor : t -> unit
(** Continuous SOC mode: periodic audits every [sweep_every] plus
    jittered self-scheduling per-tenant probes, until {!stop}. A service
    is in one mode at a time; calling either start while active is a
    no-op. *)

val pull_probes_forward : t -> unit
(** Schedule every registered tenant's next monitor probe at the
    current instant - what a remote SOC audit request does when it
    reaches this host ({!Fleet_soc}). The scan-window budget still
    applies, so remote audits cannot stampede the host. No-op unless
    the service is in monitor mode. *)

val set_event_hook : t -> (event -> unit) option -> unit
(** Stream every event to [hook] as it is emitted (in addition to the
    retained ring). The fleet layer uses this to forward verdict flips
    to a datacenter SOC through shard mailboxes; the hook runs on the
    host's own domain, so it must only touch host-local state. *)

val stop : t -> unit
val sweeps_run : t -> int

val events : t -> event list
(** Retained events, oldest first — at most [event_log_capacity] of
    them (see {!events_dropped}). *)

val events_dropped : t -> int
(** Events pushed out of the ring by overflow. *)

val budget_deferrals : t -> int
(** Total probes deferred by the per-window budget. *)

val tenant_state : t -> string -> tenant_state option

val time_to_detect : t -> string -> Sim.Time.t option
(** Time from the tenant's registration to its first
    [Nested_vm_detected] verdict; [None] until then. *)

val compromised_tenants : t -> string list
(** Tenants whose last verdict was {!Dedup_detector.Nested_vm_detected}. *)
