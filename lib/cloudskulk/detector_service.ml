type policy = {
  sweep_every : Sim.Time.t;
  probe_pages : int;
  dedup_every_n_sweeps : int;
  probe_jitter : float;
  probe_budget : int;
  event_log_capacity : int;
}

let default_policy =
  {
    sweep_every = Sim.Time.minutes 30.;
    probe_pages = 8;
    dedup_every_n_sweeps = 4;
    probe_jitter = 0.2;
    probe_budget = max_int;
    event_log_capacity = 1024;
  }

type tenant_state = {
  tenant : string;
  last_verdict : Dedup_detector.verdict option;
  sweeps_since_dedup : int;
  probes : int;
  registered_at : Sim.Time.t;
  first_detected_at : Sim.Time.t option;
}

type event =
  | Audit_alarm of { sweep : int; findings : Install_auditor.finding list }
  | Verdict_flip of {
      sweep : int;
      tenant : string;
      before : Dedup_detector.verdict option;
      after : Dedup_detector.verdict;
    }
  | Probe_failed of { sweep : int; tenant : string; reason : string }
  | Budget_exhausted of { sweep : int; tenant : string }

let event_to_string = function
  | Audit_alarm { sweep; findings } ->
    Printf.sprintf "[sweep %d] audit alarm: %s" sweep
      (String.concat "; "
         (List.map (fun f -> Format.asprintf "%a" Install_auditor.pp_finding f) findings))
  | Verdict_flip { sweep; tenant; before; after } ->
    Printf.sprintf "[sweep %d] %s: %s -> %s" sweep tenant
      (match before with
      | Some v -> Dedup_detector.verdict_to_string v
      | None -> "(never probed)")
      (Dedup_detector.verdict_to_string after)
  | Probe_failed { sweep; tenant; reason } ->
    Printf.sprintf "[sweep %d] %s: probe failed: %s" sweep tenant reason
  | Budget_exhausted { sweep; tenant } ->
    Printf.sprintf "[sweep %d] %s: probe deferred: scan-window budget exhausted" sweep
      tenant

(* Bounded event log: a ring over the policy's capacity. The operator's
   alerting pipeline consumes events as they are returned from
   [sweep_now] / recorded into telemetry; the retained log is a
   diagnostic tail, and overflow is accounted, not silent. *)
type ring = {
  slots : event option array;
  mutable next : int;  (* next write position *)
  mutable len : int;
  mutable dropped : int;
}

let ring_create capacity = { slots = Array.make (max 1 capacity) None; next = 0; len = 0; dropped = 0 }

let ring_push r ev =
  let cap = Array.length r.slots in
  if r.len = cap then r.dropped <- r.dropped + 1 else r.len <- r.len + 1;
  r.slots.(r.next) <- Some ev;
  r.next <- (r.next + 1) mod cap

let ring_to_list r =
  let cap = Array.length r.slots in
  let start = (r.next - r.len + cap) mod cap in
  List.init r.len (fun i ->
      match r.slots.((start + i) mod cap) with
      | Some ev -> ev
      | None -> assert false)

type registered = {
  mutable env : unit -> Dedup_detector.environment;
  mutable last_verdict : Dedup_detector.verdict option;
  mutable sweeps_since_dedup : int;
  mutable probes : int;
  mutable deferred : bool;  (* a probe was pushed past a budget window *)
  mutable probing : bool;
      (* a probe is in flight: its ksmd wait runs the engine re-entrantly,
         so audit ticks (and their alarm pulls) can fire mid-probe; the
         guard stops those from stacking a second probe of the same
         tenant inside the first, which would never converge *)
  mutable handle : Sim.Engine.event_handle option;  (* pending monitor probe *)
  registered_at : Sim.Time.t;
  mutable first_detected_at : Sim.Time.t option;
}

type t = {
  ctx : Sim.Ctx.t;
  host : Vmm.Hypervisor.t;
  policy : policy;
  rng : Sim.Rng.t;  (* service's own stream, forked from the ctx seed *)
  tenants : (string, registered) Hashtbl.t;
  mutable tenant_order_rev : string list;  (* registration order, newest first *)
  mutable sweeps : int;
  log : ring;
  mutable sweep_acc : event list option;  (* events of an in-flight sweep_now *)
  mutable active : bool;
  mutable monitoring : bool;
  mutable hook : (event -> unit) option;  (* fleet SOC event stream *)
  mutable window_start : Sim.Time.t;
  mutable probes_in_window : int;
  mutable budget_deferrals : int;
  (* telemetry handles; physically [None] when the host has no sink *)
  m_probe_failures : Sim.Telemetry.counter;
  m_budget : Sim.Telemetry.counter;
  m_dropped : Sim.Telemetry.counter;
  m_tenants : Sim.Telemetry.gauge;
  m_probe_latency : Sim.Telemetry.summary;
  m_ttd : Sim.Telemetry.summary;
}

let create ?(policy = default_policy) ctx host =
  let tel = Vmm.Hypervisor.telemetry host in
  {
    ctx;
    host;
    policy;
    rng = Sim.Ctx.fork_rng ctx;
    tenants = Hashtbl.create 8;
    tenant_order_rev = [];
    sweeps = 0;
    log = ring_create policy.event_log_capacity;
    sweep_acc = None;
    active = false;
    monitoring = false;
    hook = None;
    window_start = Sim.Ctx.now ctx;
    probes_in_window = 0;
    budget_deferrals = 0;
    m_probe_failures =
      Sim.Telemetry.counter tel ~component:"detector" "probe_failures_total";
    m_budget = Sim.Telemetry.counter tel ~component:"detector" "budget_exhausted_total";
    m_dropped = Sim.Telemetry.counter tel ~component:"detector" "events_dropped_total";
    m_tenants = Sim.Telemetry.gauge tel ~component:"detector" "tenants";
    m_probe_latency = Sim.Telemetry.summary tel ~component:"detector" "probe_latency_ns";
    m_ttd = Sim.Telemetry.summary tel ~component:"detector" "time_to_detect_ns";
  }

let tenant_order t = List.rev t.tenant_order_rev

let emit t ev =
  let dropped_before = t.log.dropped in
  ring_push t.log ev;
  if t.log.dropped > dropped_before then Sim.Telemetry.incr t.m_dropped;
  (match t.sweep_acc with
  | Some evs -> t.sweep_acc <- Some (ev :: evs)
  | None -> ());
  match t.hook with Some f -> f ev | None -> ()

let set_event_hook t hook = t.hook <- hook

let verdict_label = function
  | Dedup_detector.Nested_vm_detected -> "nested_vm_detected"
  | Dedup_detector.No_nested_vm -> "no_nested_vm"
  | Dedup_detector.Inconclusive _ -> "inconclusive"

let interval t =
  Sim.Time.mul t.policy.sweep_every (float_of_int (max 1 t.policy.dedup_every_n_sweeps))

(* Next-probe delay for the continuous monitor: the rotation interval
   +/- the policy's jitter fraction, drawn from the service's own RNG
   stream so tenant probes drift apart instead of thundering in
   lockstep. *)
let jittered_interval t =
  let j = t.policy.probe_jitter in
  if j <= 0. then interval t
  else
    let u = Sim.Rng.float t.rng 1.0 in
    Sim.Time.mul (interval t) (1. +. (j *. ((2. *. u) -. 1.)))

let roll_window t =
  let now = Sim.Ctx.now t.ctx in
  while Sim.Time.( <= ) (Sim.Time.add t.window_start t.policy.sweep_every) now do
    t.window_start <- Sim.Time.add t.window_start t.policy.sweep_every;
    t.probes_in_window <- 0
  done

let budget_left t = t.probes_in_window < t.policy.probe_budget

let defer t ~sweep name (r : registered) =
  r.deferred <- true;
  t.budget_deferrals <- t.budget_deferrals + 1;
  Sim.Telemetry.incr t.m_budget;
  emit t (Budget_exhausted { sweep; tenant = name })

let probe_tenant t ~sweep name (r : registered) =
  let started = Sim.Ctx.now t.ctx in
  let config =
    { Dedup_detector.default_config with Dedup_detector.file_pages = t.policy.probe_pages }
  in
  r.deferred <- false;
  r.probing <- true;
  let outcome =
    Fun.protect
      ~finally:(fun () -> r.probing <- false)
      (fun () -> Dedup_detector.run ~config (r.env ()))
  in
  match outcome with
  | Error reason ->
    emit t (Probe_failed { sweep; tenant = name; reason });
    Sim.Telemetry.incr t.m_probe_failures;
    r.sweeps_since_dedup <- 0
  | Ok outcome ->
    let now = Sim.Ctx.now t.ctx in
    let after = outcome.Dedup_detector.verdict in
    r.probes <- r.probes + 1;
    Sim.Telemetry.record t.m_probe_latency
      (Int64.to_float (Sim.Time.to_ns (Sim.Time.diff now started)));
    Sim.Telemetry.incr
      (Sim.Telemetry.counter
         (Vmm.Hypervisor.telemetry t.host)
         ~labels:[ ("verdict", verdict_label after) ]
         ~component:"detector" "probes_total");
    let changed =
      match r.last_verdict with
      | None -> true
      | Some before -> not (Dedup_detector.verdict_equal before after)
    in
    if changed then
      emit t (Verdict_flip { sweep; tenant = name; before = r.last_verdict; after });
    r.last_verdict <- Some after;
    r.sweeps_since_dedup <- 0;
    (match after with
    | Dedup_detector.Nested_vm_detected when Option.is_none r.first_detected_at ->
      r.first_detected_at <- Some now;
      Sim.Telemetry.record t.m_ttd
        (Int64.to_float (Sim.Time.to_ns (Sim.Time.diff now r.registered_at)))
    | _ -> ())

(* --- continuous monitor scheduling ------------------------------------ *)

let cancel_pending t (r : registered) =
  match r.handle with
  | None -> ()
  | Some h ->
    Sim.Engine.cancel (Sim.Ctx.engine t.ctx) h;
    r.handle <- None

let rec schedule_probe t name delay =
  match Hashtbl.find_opt t.tenants name with
  | None -> ()
  | Some r ->
    cancel_pending t r;
    r.handle <-
      Some (Sim.Engine.schedule_after (Sim.Ctx.engine t.ctx) delay (fun () -> probe_tick t name))

and probe_tick t name =
  match Hashtbl.find_opt t.tenants name with
  | None -> ()
  | Some r ->
    r.handle <- None;
    (* [r.probing]: this tick fired inside the tenant's own in-flight
       probe (an alarm pulled it to now mid-wait); the running probe
       already satisfies it and will schedule the next one *)
    if t.active && t.monitoring && not r.probing then begin
      roll_window t;
      if budget_left t then begin
        t.probes_in_window <- t.probes_in_window + 1;
        probe_tenant t ~sweep:t.sweeps name r;
        schedule_probe t name (jittered_interval t)
      end
      else begin
        defer t ~sweep:t.sweeps name r;
        (* retry shortly after the next scan window opens, with a small
           jittered pad so deferred tenants do not re-collide *)
        let until_next =
          Sim.Time.diff (Sim.Time.add t.window_start t.policy.sweep_every) (Sim.Ctx.now t.ctx)
        in
        let pad =
          Sim.Time.mul t.policy.sweep_every (0.05 *. Sim.Rng.float t.rng 1.0)
        in
        schedule_probe t name
          (Sim.Time.add (Sim.Time.max until_next (Sim.Time.ns 1)) pad)
      end
    end

(* --- registration ----------------------------------------------------- *)

let register_tenant t ~name ~env =
  match Hashtbl.find_opt t.tenants name with
  | Some r -> r.env <- env
  | None ->
    Hashtbl.replace t.tenants name
      {
        env;
        last_verdict = None;
        sweeps_since_dedup = 0;
        probes = 0;
        deferred = false;
        probing = false;
        handle = None;
        registered_at = Sim.Ctx.now t.ctx;
        first_detected_at = None;
      };
    t.tenant_order_rev <- name :: t.tenant_order_rev;
    Sim.Telemetry.set t.m_tenants (float_of_int (Hashtbl.length t.tenants));
    if t.active && t.monitoring then
      (* spread the first probe uniformly over one rotation interval *)
      schedule_probe t name (Sim.Time.mul (interval t) (Sim.Rng.float t.rng 1.0))

let unregister_tenant t ~name =
  (match Hashtbl.find_opt t.tenants name with
  | Some r -> cancel_pending t r
  | None -> ());
  Hashtbl.remove t.tenants name;
  t.tenant_order_rev <- List.filter (fun n -> not (String.equal n name)) t.tenant_order_rev;
  Sim.Telemetry.set t.m_tenants (float_of_int (Hashtbl.length t.tenants))

(* --- batch sweeps (legacy [start] mode and [sweep_now]) ---------------- *)

let sweep_now t =
  t.sweeps <- t.sweeps + 1;
  let sweep = t.sweeps in
  (* each synchronous sweep is its own scan window *)
  t.window_start <- Sim.Ctx.now t.ctx;
  t.probes_in_window <- 0;
  t.sweep_acc <- Some [];
  let findings = Install_auditor.audit t.host in
  let alarmed = Install_auditor.is_alarming findings in
  if alarmed then emit t (Audit_alarm { sweep; findings });
  List.iter
    (fun name ->
      match Hashtbl.find_opt t.tenants name with
      | None -> ()
      | Some r ->
        let due =
          Option.is_none r.last_verdict
          || r.sweeps_since_dedup + 1 >= t.policy.dedup_every_n_sweeps
        in
        if (alarmed || due || r.deferred) && not r.probing then begin
          if budget_left t then begin
            t.probes_in_window <- t.probes_in_window + 1;
            probe_tenant t ~sweep name r
          end
          else defer t ~sweep name r
        end
        else r.sweeps_since_dedup <- r.sweeps_since_dedup + 1)
    (tenant_order t);
  let events =
    match t.sweep_acc with Some evs -> List.rev evs | None -> []
  in
  t.sweep_acc <- None;
  events

let start t =
  if not t.active then begin
    t.active <- true;
    t.monitoring <- false;
    Sim.Engine.periodic (Sim.Ctx.engine t.ctx) ~every:t.policy.sweep_every (fun () ->
        if t.active then ignore (sweep_now t);
        t.active)
  end

(* Continuous SOC mode: the cheap audit keeps its fixed cadence (it is
   the scan-window clock), while each tenant's expensive dedup probe
   self-schedules on a jittered rotation interval so probes spread over
   the window instead of arriving as a thundering herd. *)
let audit_tick t =
  t.sweeps <- t.sweeps + 1;
  roll_window t;
  let sweep = t.sweeps in
  let findings = Install_auditor.audit t.host in
  if Install_auditor.is_alarming findings then begin
    emit t (Audit_alarm { sweep; findings });
    (* alarm: pull every tenant's next probe forward to now; the budget
       still applies, so an alarm cannot stampede the window *)
    List.iter (fun name -> schedule_probe t name (Sim.Time.ns 0)) (tenant_order t)
  end

let start_monitor t =
  if not t.active then begin
    t.active <- true;
    t.monitoring <- true;
    t.window_start <- Sim.Ctx.now t.ctx;
    t.probes_in_window <- 0;
    List.iter
      (fun name -> schedule_probe t name (Sim.Time.mul (interval t) (Sim.Rng.float t.rng 1.0)))
      (tenant_order t);
    Sim.Engine.periodic (Sim.Ctx.engine t.ctx) ~every:t.policy.sweep_every (fun () ->
        if t.active then audit_tick t;
        t.active)
  end

(* A remote SOC audit: pull every tenant's next monitor probe forward
   to now, exactly as a local audit alarm does. The scan-window budget
   still applies, so a remote operator cannot stampede the host. *)
let pull_probes_forward t =
  if t.active && t.monitoring then
    List.iter (fun name -> schedule_probe t name (Sim.Time.ns 0)) (tenant_order t)

let stop t =
  t.active <- false;
  t.monitoring <- false;
  List.iter
    (fun name ->
      match Hashtbl.find_opt t.tenants name with
      | Some r -> cancel_pending t r
      | None -> ())
    (tenant_order t)

let sweeps_run t = t.sweeps
let events t = ring_to_list t.log
let events_dropped t = t.log.dropped
let budget_deferrals t = t.budget_deferrals

let tenant_state t name =
  Option.map
    (fun (r : registered) ->
      {
        tenant = name;
        last_verdict = r.last_verdict;
        sweeps_since_dedup = r.sweeps_since_dedup;
        probes = r.probes;
        registered_at = r.registered_at;
        first_detected_at = r.first_detected_at;
      })
    (Hashtbl.find_opt t.tenants name)

let time_to_detect t name =
  match Hashtbl.find_opt t.tenants name with
  | Some { first_detected_at = Some at; registered_at; _ } ->
    Some (Sim.Time.diff at registered_at)
  | Some _ | None -> None

let compromised_tenants t =
  List.filter
    (fun name ->
      match Hashtbl.find_opt t.tenants name with
      | Some { last_verdict = Some Dedup_detector.Nested_vm_detected; _ } -> true
      | Some _ | None -> false)
    (tenant_order t)
