type policy = {
  sweep_every : Sim.Time.t;
  probe_pages : int;
  dedup_every_n_sweeps : int;
}

let default_policy =
  { sweep_every = Sim.Time.minutes 30.; probe_pages = 8; dedup_every_n_sweeps = 4 }

type tenant_state = {
  tenant : string;
  last_verdict : Dedup_detector.verdict option;
  sweeps_since_dedup : int;
}

type event =
  | Audit_alarm of { sweep : int; findings : Install_auditor.finding list }
  | Verdict_flip of {
      sweep : int;
      tenant : string;
      before : Dedup_detector.verdict option;
      after : Dedup_detector.verdict;
    }
  | Probe_failed of { sweep : int; tenant : string; reason : string }

let event_to_string = function
  | Audit_alarm { sweep; findings } ->
    Printf.sprintf "[sweep %d] audit alarm: %s" sweep
      (String.concat "; "
         (List.map (fun f -> Format.asprintf "%a" Install_auditor.pp_finding f) findings))
  | Verdict_flip { sweep; tenant; before; after } ->
    Printf.sprintf "[sweep %d] %s: %s -> %s" sweep tenant
      (match before with
      | Some v -> Dedup_detector.verdict_to_string v
      | None -> "(never probed)")
      (Dedup_detector.verdict_to_string after)
  | Probe_failed { sweep; tenant; reason } ->
    Printf.sprintf "[sweep %d] %s: probe failed: %s" sweep tenant reason

type registered = {
  mutable env : unit -> Dedup_detector.environment;
  mutable last_verdict : Dedup_detector.verdict option;
  mutable sweeps_since_dedup : int;
}

type t = {
  ctx : Sim.Ctx.t;
  host : Vmm.Hypervisor.t;
  policy : policy;
  tenants : (string, registered) Hashtbl.t;
  mutable tenant_order : string list;
  mutable sweeps : int;
  mutable event_log : event list;  (* newest first *)
  mutable active : bool;
}

let create ?(policy = default_policy) ctx host =
  {
    ctx;
    host;
    policy;
    tenants = Hashtbl.create 8;
    tenant_order = [];
    sweeps = 0;
    event_log = [];
    active = false;
  }

let register_tenant t ~name ~env =
  match Hashtbl.find_opt t.tenants name with
  | Some r -> r.env <- env
  | None ->
    Hashtbl.replace t.tenants name { env; last_verdict = None; sweeps_since_dedup = 0 };
    t.tenant_order <- t.tenant_order @ [ name ]

let unregister_tenant t ~name =
  Hashtbl.remove t.tenants name;
  t.tenant_order <- List.filter (fun n -> n <> name) t.tenant_order

let emit t ev = t.event_log <- ev :: t.event_log

let probe_tenant t ~sweep name (r : registered) =
  let config =
    { Dedup_detector.default_config with Dedup_detector.file_pages = t.policy.probe_pages }
  in
  match Dedup_detector.run ~config (r.env ()) with
  | Error reason ->
    emit t (Probe_failed { sweep; tenant = name; reason });
    r.sweeps_since_dedup <- 0
  | Ok outcome ->
    let after = outcome.Dedup_detector.verdict in
    if r.last_verdict <> Some after then
      emit t (Verdict_flip { sweep; tenant = name; before = r.last_verdict; after });
    r.last_verdict <- Some after;
    r.sweeps_since_dedup <- 0

let sweep_now t =
  t.sweeps <- t.sweeps + 1;
  let sweep = t.sweeps in
  let events_before = List.length t.event_log in
  let findings = Install_auditor.audit t.host in
  let alarmed = Install_auditor.is_alarming findings in
  if alarmed then emit t (Audit_alarm { sweep; findings });
  List.iter
    (fun name ->
      match Hashtbl.find_opt t.tenants name with
      | None -> ()
      | Some r ->
        let due =
          r.last_verdict = None || r.sweeps_since_dedup + 1 >= t.policy.dedup_every_n_sweeps
        in
        if alarmed || due then probe_tenant t ~sweep name r
        else r.sweeps_since_dedup <- r.sweeps_since_dedup + 1)
    t.tenant_order;
  let new_count = List.length t.event_log - events_before in
  List.filteri (fun i _ -> i < new_count) t.event_log |> List.rev

let start t =
  if not t.active then begin
    t.active <- true;
    Sim.Engine.periodic (Sim.Ctx.engine t.ctx) ~every:t.policy.sweep_every (fun () ->
        if t.active then ignore (sweep_now t);
        t.active)
  end

let stop t = t.active <- false
let sweeps_run t = t.sweeps
let events t = List.rev t.event_log

let tenant_state t name =
  Option.map
    (fun (r : registered) ->
      { tenant = name; last_verdict = r.last_verdict; sweeps_since_dedup = r.sweeps_since_dedup })
    (Hashtbl.find_opt t.tenants name)

let compromised_tenants t =
  List.filter
    (fun name ->
      match Hashtbl.find_opt t.tenants name with
      | Some { last_verdict = Some Dedup_detector.Nested_vm_detected; _ } -> true
      | Some _ | None -> false)
    t.tenant_order
