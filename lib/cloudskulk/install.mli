(** CloudSkulk installation (paper Sections III and IV-A).

    The four-step attack, run end to end against a host the attacker
    already controls:

    + {e Recon} - recover the target VM's QEMU configuration (Step 1 of
      the paper folds "rent a VM and escape" into the threat model; the
      code starts where the attacker has host root).
    + {e Launch the RITM} - start GuestX, a VM with nested VMX whose
      host port AAAA forwards to its internal port BBBB.
    + {e Nested destination} - start a hypervisor inside GuestX and,
      under it, a destination VM exactly matching the target's
      configuration, paused listening on BBBB.
    + {e Live migration} - drive the target's QEMU monitor to migrate
      to tcp:host:AAAA, landing the victim inside GuestX at L2.

    Followed by clean-up: kill the paused source husk, re-point the
    victim's port-forwards through GuestX, spoof GuestX's PID to the
    old QEMU PID, and impersonate the victim's OS at L1. *)

type config = {
  target_name : string;
  guestx_name : string;
  guestx_memory_mb : int option;  (** default: enough to nest the target *)
  host_port : int;  (** AAAA (default 5600) *)
  ritm_port : int;  (** BBBB (default 5601) *)
  strategy : Migration.Wiring.strategy;
  use_vtx : bool;  (** hardware-assisted nesting (leaves VMCS traces) *)
  impersonate : bool;  (** run the {!Stealth} OS/file impersonation *)
  spoof_pid : bool;
  faults : Sim.Fault.profile;
      (** fault-injection profile for the live-migration channel
          (default {!Sim.Fault.none}: the exact historical code path).
          Under faults the migration may be [Recovered] - the install
          still succeeds, slower - or aborted, which fails the install
          at the live-migration step and tears the RITM down. *)
}

val default_config : target_name:string -> config

type step =
  | Recon
  | Launch_ritm
  | Nested_destination
  | Live_migration
  | Cleanup

val step_name : step -> string

type step_report = {
  step : step;
  started : Sim.Time.t;
  finished : Sim.Time.t;
  detail : string;
}

type report = {
  ritm : Ritm.t;
  steps : step_report list;
  precopy : Migration.Precopy.result option;
  postcopy : Migration.Postcopy.result option;
  migration_outcome : string;
      (** {!Migration.Outcome.describe} of the install's migration:
          "completed" on the fault-free path, recovery counters under
          fault injection *)
  old_pid : Vmm.Process_table.pid;
  new_pid : Vmm.Process_table.pid;
  total_time : Sim.Time.t;  (** recon start to clean-up end *)
}

val run :
  ?config:config ->
  Sim.Ctx.t ->
  host:Vmm.Hypervisor.t ->
  registry:Migration.Registry.t ->
  target_name:string ->
  (report, string) result
(** Execute the full installation. On failure, partial artifacts
    (a launched GuestX, a registered endpoint) are torn down. A
    non-trivial {!Sim.Ctx.faults} profile on the context overrides the
    config's [faults]; the nested hypervisor is built under
    {!Sim.Ctx.quiet} so it leaves no records in the host's trace. *)

val installation_time : report -> Sim.Time.t
(** Dominated by the live-migration step, as the paper observes. *)

val pp_report : Format.formatter -> report -> unit
