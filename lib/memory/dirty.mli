(** Dirty-page bitmap.

    Live migration tracks which guest pages were written since the last
    pre-copy round. The bitmap is stored 32 pages to a word and iterated
    word-at-a-time, so walking a mostly-clean bitmap costs one compare
    per 32 pages; migration rounds move the dirty set with {!drain} and
    walk it with {!fold_dirty}, neither of which allocates. *)

type t

val create : int -> t
(** [create n] is a clean bitmap over [n] pages, with no telemetry -
    the right constructor for scratch bitmaps (the [into] side of a
    drain). *)

val for_table : Frame_table.t -> int -> t
(** [for_table table n] is {!create} inheriting [table]'s telemetry
    sink: every {!drain} of this bitmap bumps
    [memory_dirty_drains_total] and [memory_dirty_pages_drained_total].
    Address spaces use this so their live bitmaps are instrumented. *)

val length : t -> int
val set : t -> int -> unit
val is_dirty : t -> int -> bool

val test_and_clear : t -> int -> bool
(** [test_and_clear t i] is [is_dirty t i], clearing the bit as a side
    effect - the one-page analogue of {!drain}, used by consumers that
    retire dirt page by page (e.g. an incremental KSM rescan). *)

val next_dirty_from : t -> int -> int option
(** [next_dirty_from t i] is the smallest dirty index [>= i], skipping
    clean ranges a word (32 pages) per compare. [None] if no bit at or
    after [i] is set; the bitmap is not modified. *)

val dirty_count : t -> int
val clear : t -> unit

val drain : t -> into:t -> unit
(** [drain t ~into] moves [t]'s dirty set into [into] (whose previous
    contents are discarded) and clears [t] - the atomic
    collect-and-clear a pre-copy round needs, without building a list.
    Raises [Invalid_argument] on a length mismatch. *)

val fold_dirty : t -> ('a -> int -> 'a) -> 'a -> 'a
(** [fold_dirty t f init] folds [f] over the dirty indices in increasing
    order. Allocation-free apart from what [f] does. *)

val iter_dirty : t -> (int -> unit) -> unit

val collect_and_clear : t -> int list
(** Indices that were dirty, in increasing order; the bitmap is clean
    afterwards. Allocates the list: hot paths should prefer
    {!drain} + {!fold_dirty}. *)
