type backing =
  | Root of { table : Frame_table.t; frames : Frame_table.frame array }
  | Window of { parent : t; offset : int }

and t = {
  name : string;
  pages : int;
  backing : backing;
  dirty : Dirty.t;
  (* extra bitmaps fired on every write to this space (after delegation
     translation); lets several consumers - migration's live bitmap and
     KSM's rescan filter - observe writes without sharing clear
     schedules. Usually empty or a single element. *)
  mutable watchers : Dirty.t list;
}

let rec frame_table t =
  match t.backing with
  | Root r -> r.table
  | Window w -> frame_table w.parent

let create_root table ~name ~pages =
  if pages <= 0 then invalid_arg "Address_space.create_root: pages must be positive";
  let frames = Array.init pages (fun _ -> Frame_table.alloc table Page.Content.zero) in
  let dirty = Dirty.for_table table pages in
  { name; pages; backing = Root { table; frames }; dirty; watchers = [] }

let window parent ~name ~offset ~pages =
  if offset < 0 || pages <= 0 || offset + pages > parent.pages then
    invalid_arg "Address_space.window: range does not fit in parent";
  let table = frame_table parent in
  {
    name;
    pages;
    backing = Window { parent; offset };
    dirty = Dirty.for_table table pages;
    watchers = [];
  }

let name t = t.name
let pages t = t.pages
let bytes t = t.pages * Page.size_bytes
let is_root t = match t.backing with Root _ -> true | Window _ -> false
let parent t = match t.backing with Root _ -> None | Window w -> Some w.parent

let check t i =
  if i < 0 || i >= t.pages then
    invalid_arg (Printf.sprintf "Address_space %s: page %d out of range" t.name i)

let rec resolve t i =
  check t i;
  match t.backing with
  | Root _ -> (t, i)
  | Window w -> resolve w.parent (w.offset + i)

let root_frames t =
  match t.backing with
  | Root r -> r.frames
  | Window _ -> assert false

(* Root spaces answer directly - no (root, index) tuple - because the
   KSM scan loop reads and resolves frames for every page of every
   registered (always root) space. *)
let frame_at t i =
  match t.backing with
  | Root r ->
    check t i;
    r.frames.(i)
  | Window _ ->
    let root, ri = resolve t i in
    (root_frames root).(ri)

let read t i =
  match t.backing with
  | Root r ->
    check t i;
    Frame_table.content r.table r.frames.(i)
  | Window _ ->
    let root, ri = resolve t i in
    Frame_table.content (frame_table root) (root_frames root).(ri)

type write_kind = Private_write | Cow_break

(* Mark dirty in this space and every ancestor on the delegation path. *)
let rec mark_dirty_chain t i =
  Dirty.set t.dirty i;
  (match t.watchers with
  | [] -> ()
  | ws -> List.iter (fun d -> Dirty.set d i) ws);
  match t.backing with
  | Root _ -> ()
  | Window w -> mark_dirty_chain w.parent (w.offset + i)

let write t i c =
  let root, ri = resolve t i in
  let table = frame_table t in
  let frames = root_frames root in
  let f = frames.(ri) in
  let kind =
    if Frame_table.is_shared table f then begin
      (* Copy-on-write: the shared frame keeps its content for the other
         sharers; this space gets a fresh private copy. *)
      let fresh = Frame_table.alloc table c in
      Frame_table.decref table f;
      frames.(ri) <- fresh;
      Frame_table.note_cow_break table;
      Cow_break
    end
    else begin
      Frame_table.write table f c;
      Private_write
    end
  in
  mark_dirty_chain t i;
  kind

let remap t i f =
  match t.backing with
  | Window _ -> invalid_arg "Address_space.remap: only valid on a root space"
  | Root r ->
    check t i;
    let old = r.frames.(i) in
    if old <> f then begin
      Frame_table.incref r.table f;
      Frame_table.decref r.table old;
      r.frames.(i) <- f
    end

let dirty t = t.dirty

let watch_writes t d =
  if Dirty.length d <> t.pages then
    invalid_arg "Address_space.watch_writes: bitmap length must equal pages";
  if not (List.memq d t.watchers) then t.watchers <- d :: t.watchers

let unwatch_writes t d = t.watchers <- List.filter (fun d' -> not (d' == d)) t.watchers

let load t ~offset contents =
  Array.iteri (fun k c -> ignore (write t (offset + k) c)) contents

let contents t = Array.init t.pages (fun i -> read t i)

let shared_page_count t =
  let table = frame_table t in
  let n = ref 0 in
  for i = 0 to t.pages - 1 do
    if Frame_table.is_shared table (frame_at t i) then incr n
  done;
  !n

let check_invariants t =
  let err fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let table = frame_table t in
  if Dirty.length t.dirty <> t.pages then
    err "space %s: dirty bitmap covers %d pages, space has %d" t.name (Dirty.length t.dirty)
      t.pages
  else begin
    match List.find_opt (fun d -> Dirty.length d <> t.pages) t.watchers with
    | Some d ->
      err "space %s: write-observer bitmap covers %d pages, space has %d" t.name
        (Dirty.length d) t.pages
    | None -> (
      let rec live i =
        if i >= t.pages then Ok ()
        else if not (Frame_table.is_live table (frame_at t i)) then
          err "space %s: page %d resolves to dead frame %d" t.name i (frame_at t i)
        else live (i + 1)
      in
      match live 0 with
      | Error _ as e -> e
      | Ok () -> (
        match t.backing with
        | Window _ -> Ok ()
        | Root r ->
          (* each appearance of a frame in this space holds one of its
             references, so per-frame multiplicity is bounded by the
             table's refcount *)
          let counts = Hashtbl.create 64 in
          Array.iter
            (fun f ->
              Hashtbl.replace counts f (1 + Option.value ~default:0 (Hashtbl.find_opt counts f)))
            r.frames;
          let over =
            Hashtbl.fold (fun f n acc -> if n > Frame_table.refcount r.table f then (f, n) :: acc else acc) counts []
            |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
          in
          (match over with
          | [] -> Ok ()
          | (f, n) :: _ ->
            err "space %s: frame %d mapped %d times but refcount is %d" t.name f n
              (Frame_table.refcount r.table f))))
  end

let pp fmt t =
  Format.fprintf fmt "%s (%d pages%s)" t.name t.pages (if is_root t then "" else ", window")
