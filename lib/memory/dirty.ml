(* Bits live in an int array, 32 bits per word, so iteration can skip a
   whole word of clean pages with one compare and never needs a per-bit
   bounds check: bits >= [length] are never set, by construction. *)

type t = {
  words : int array;
  length : int;
  mutable count : int;
  m_drains : Sim.Telemetry.counter;
  m_pages_drained : Sim.Telemetry.counter;
}

let bits_per_word = 32

let make telemetry n =
  {
    words = Array.make ((n + bits_per_word - 1) / bits_per_word) 0;
    length = n;
    count = 0;
    m_drains = Sim.Telemetry.counter telemetry ~component:"memory" "dirty_drains_total";
    m_pages_drained =
      Sim.Telemetry.counter telemetry ~component:"memory" "dirty_pages_drained_total";
  }

let create n = make None n
let for_table table n = make (Frame_table.telemetry table) n

let length t = t.length

let check t i = if i < 0 || i >= t.length then invalid_arg "Dirty: index out of range"

let is_dirty t i =
  check t i;
  (t.words.(i lsr 5) lsr (i land 31)) land 1 <> 0

let set t i =
  check t i;
  let w = i lsr 5 in
  let mask = 1 lsl (i land 31) in
  let old = t.words.(w) in
  if old land mask = 0 then begin
    t.words.(w) <- old lor mask;
    t.count <- t.count + 1
  end

let test_and_clear t i =
  check t i;
  let w = i lsr 5 in
  let mask = 1 lsl (i land 31) in
  let old = t.words.(w) in
  if old land mask = 0 then false
  else begin
    t.words.(w) <- old land lnot mask;
    t.count <- t.count - 1;
    true
  end

let next_dirty_from t from =
  if from >= t.length then None
  else begin
    check t from;
    let words = t.words in
    let n_words = Array.length words in
    let rec from_word w first_bit =
      if w >= n_words then None
      else begin
        let word = Array.unsafe_get words w lsr first_bit in
        if word = 0 then from_word (w + 1) 0
        else begin
          (* find the lowest set bit of the shifted word *)
          let rest = ref word and bit = ref first_bit in
          while !rest land 1 = 0 do
            rest := !rest lsr 1;
            incr bit
          done;
          Some ((w lsl 5) + !bit)
        end
      end
    in
    from_word (from lsr 5) (from land 31)
  end

let dirty_count t = t.count

let clear t =
  Array.fill t.words 0 (Array.length t.words) 0;
  t.count <- 0

let drain t ~into =
  if into.length <> t.length then invalid_arg "Dirty.drain: length mismatch";
  Array.blit t.words 0 into.words 0 (Array.length t.words);
  into.count <- t.count;
  Sim.Telemetry.incr t.m_drains;
  Sim.Telemetry.add t.m_pages_drained t.count;
  clear t

let fold_dirty t f init =
  let acc = ref init in
  let words = t.words in
  for w = 0 to Array.length words - 1 do
    let word = Array.unsafe_get words w in
    if word <> 0 then begin
      let base = w lsl 5 in
      (* shift the word down as bits are consumed so a word with few
         dirty pages exits early *)
      let rest = ref word and bit = ref 0 in
      while !rest <> 0 do
        if !rest land 1 <> 0 then acc := f !acc (base + !bit);
        rest := !rest lsr 1;
        incr bit
      done
    end
  done;
  !acc

let iter_dirty t f = fold_dirty t (fun () i -> f i) ()

let collect_and_clear t =
  let acc = fold_dirty t (fun acc i -> i :: acc) [] in
  clear t;
  List.rev acc
