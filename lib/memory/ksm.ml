type config = {
  pages_to_scan : int;
  sleep : Sim.Time.t;
  incremental : bool;
}

let default_config = { pages_to_scan = 100; sleep = Sim.Time.ms 20.; incremental = false }
let fast_config = { pages_to_scan = 4096; sleep = Sim.Time.ms 1.; incremental = false }

(* Both trees are keyed by the page's integer content hash - computed
   once per scan and reused - rather than the boxed content itself.
   Every hit is re-validated by full content equality before it is acted
   on, so a hash collision can only cost a missed merge opportunity,
   never a wrong one. *)
module Int_tbl = Hashtbl.Make (struct
  type t = int

  let equal = Int.equal
  let hash h = h
end)

(* One registered space plus its per-page checksum memory. [checksums.(i)]
   is the content hash seen at the previous scan of page [i], or
   [never_scanned]: like real ksmd's rmap_item checksum, it gates
   unstable-tree insertion so pages that churn between passes stop
   thrashing the tree. Content hashes are non-negative (top bits of the
   digest), so -1 cannot collide. *)
type slot = {
  space : Address_space.t;
  checksums : int array;
  (* write-observer bitmap: bit [i] set means page [i] was written (or
     never examined) since the scanner last visited it. The full sweep
     uses it to reuse cached checksums on clean pages; the incremental
     sweep additionally uses it to pick which pages to visit at all. *)
  rescan : Dirty.t;
}

let never_scanned = -1

type t = {
  engine : Sim.Engine.t;
  table : Frame_table.t;
  config : config;
  trace : Sim.Trace.t option;
  (* registration-ordered slots, [slots.(0 .. n_slots - 1)]; kept as a
     doubling array so [register] is amortized O(1) and the scan cursor
     indexes it without rebuilding anything per page *)
  mutable slots : slot array;
  mutable n_slots : int;
  stable : Frame_table.frame Int_tbl.t;
  (* unstable values pack (slot index, page index) into one immediate
     int, so a pass's candidate insertions never allocate a block beyond
     the hashtable bucket itself. Slot indices can drift when a space is
     unregistered mid-pass; entries are re-validated by content on every
     hit, which makes the drift harmless. *)
  unstable : int Int_tbl.t;
  mutable cursor_space : int;  (* index into [slots] *)
  mutable cursor_page : int;
  mutable full_scans : int;
  mutable merges : int;
  mutable volatile_skips : int;
  mutable clean_skips : int;
      (* pages whose cached checksum was reused because no write was
         observed since their previous scan *)
  mutable scanned_since_pass : bool;
      (* incremental mode: only count a pass when it examined something,
         so an idle scanner does not spin the pass counter *)
  mutable active : bool;
  (* pre-created handles: bumping one is a single match + float add, so
     the scan hot path stays free of per-event registry lookups *)
  m_passes : Sim.Telemetry.counter;
  m_scanned : Sim.Telemetry.counter;
  m_merged : Sim.Telemetry.counter;
  m_volatile : Sim.Telemetry.counter;
}

let create ?(config = default_config) ctx table =
  let engine = Sim.Ctx.engine ctx in
  let telemetry = Sim.Ctx.telemetry ctx in
  {
    engine;
    table;
    config;
    trace = Some (Sim.Ctx.trace ctx);
    slots = [||];
    n_slots = 0;
    stable = Int_tbl.create 4096;
    unstable = Int_tbl.create 4096;
    cursor_space = 0;
    cursor_page = 0;
    full_scans = 0;
    merges = 0;
    volatile_skips = 0;
    clean_skips = 0;
    scanned_since_pass = false;
    active = false;
    m_passes = Sim.Telemetry.counter telemetry ~component:"ksm" "scan_passes_total";
    m_scanned = Sim.Telemetry.counter telemetry ~component:"ksm" "pages_scanned_total";
    m_merged = Sim.Telemetry.counter telemetry ~component:"ksm" "pages_merged_total";
    m_volatile =
      Sim.Telemetry.counter telemetry ~component:"ksm" "pages_volatile_skipped_total";
  }

let emit t fmt =
  match t.trace with
  | None -> Format.ikfprintf (fun _ -> ()) Format.str_formatter fmt
  | Some tr -> Sim.Trace.emitf tr (Sim.Engine.now t.engine) Sim.Trace.Info ~component:"ksm" fmt

let slot_index t space =
  let rec go i =
    if i >= t.n_slots then None
    else if t.slots.(i).space == space then Some i
    else go (i + 1)
  in
  go 0

let register t space =
  if not (Address_space.is_root space) then
    invalid_arg "Ksm.register: only root address spaces are mergeable";
  if slot_index t space = None then begin
    let pages = Address_space.pages space in
    let rescan = Dirty.create pages in
    (* every page starts pending: never-scanned pages must be visited
       even though no write has been observed yet *)
    for i = 0 to pages - 1 do
      Dirty.set rescan i
    done;
    Address_space.watch_writes space rescan;
    let slot = { space; checksums = Array.make pages never_scanned; rescan } in
    if t.n_slots = Array.length t.slots then begin
      let grown = Array.make (max 4 (2 * t.n_slots)) slot in
      Array.blit t.slots 0 grown 0 t.n_slots;
      t.slots <- grown
    end;
    t.slots.(t.n_slots) <- slot;
    t.n_slots <- t.n_slots + 1;
    emit t "registered %s (%d pages)" (Address_space.name space) (Address_space.pages space)
  end

let unregister t space =
  match slot_index t space with
  | None -> ()
  | Some idx ->
    Address_space.unwatch_writes space t.slots.(idx).rescan;
    (* drop this pass's unstable candidates that point into the removed
       space; the rest of the pass's progress is kept (entries for later
       slots drift one index and are caught by content re-validation) *)
    let stale =
      Int_tbl.fold
        (fun key enc acc -> if enc lsr 32 = idx then key :: acc else acc)
        t.unstable []
    in
    List.iter (Int_tbl.remove t.unstable) stale;
    for i = idx to t.n_slots - 2 do
      t.slots.(i) <- t.slots.(i + 1)
    done;
    t.n_slots <- t.n_slots - 1;
    (* the cursor only steps over the removed space: scanning resumes at
       the same point of the pass, not at the start of a new one *)
    if idx < t.cursor_space then t.cursor_space <- t.cursor_space - 1
    else if idx = t.cursor_space then t.cursor_page <- 0;
    if t.cursor_space >= t.n_slots then begin
      t.cursor_space <- 0;
      t.cursor_page <- 0
    end

(* A stable-tree entry is valid only while its frame is still live,
   flagged stable, and holding the content it was indexed under (CoW can
   have recycled it). Invalid entries are pruned on lookup. [content] is
   lazy so a checksum miss - the overwhelmingly common case - never
   reads the probing page at all. *)
let stable_lookup t content checksum =
  match Int_tbl.find_opt t.stable checksum with
  | None -> None
  | Some f ->
    let valid =
      Frame_table.is_live t.table f
      && Frame_table.is_stable t.table f
      && Page.Content.equal (Frame_table.content t.table f) (Lazy.force content)
    in
    if valid then Some f
    else begin
      Int_tbl.remove t.stable checksum;
      None
    end

let merge_into_stable t space i stable_frame =
  Address_space.remap space i stable_frame;
  t.merges <- t.merges + 1;
  Sim.Telemetry.incr t.m_merged

let promote_to_stable t space i =
  let f = Address_space.frame_at space i in
  Frame_table.mark_stable t.table f;
  Int_tbl.replace t.stable (Page.Content.hash (Frame_table.content t.table f)) f;
  f

(* The unstable tree holds one candidate per content recorded earlier in
   this pass; an entry is only useful while its slot/page still exists
   and still holds that content. *)
let scan_unstable t slot_idx space i content checksum f =
  let self = (slot_idx lsl 32) lor i in
  match Int_tbl.find_opt t.unstable checksum with
  | None -> Int_tbl.replace t.unstable checksum self
  | Some enc ->
    let idx' = enc lsr 32 and i' = enc land 0xFFFF_FFFF in
    let valid =
      idx' < t.n_slots
      &&
      let space' = t.slots.(idx').space in
      i' < Address_space.pages space'
      && Page.Content.equal (Address_space.read space' i') (Lazy.force content)
    in
    if not valid then Int_tbl.replace t.unstable checksum self
    else
      let space' = t.slots.(idx').space in
      if not (space' == space && i' = i) then begin
        let f' = Address_space.frame_at space' i' in
        if f' <> f then begin
          (* Two distinct frames with equal content: promote the earlier
             candidate to the stable tree and merge this page into it. *)
          let s = promote_to_stable t space' i' in
          merge_into_stable t space i s;
          Int_tbl.remove t.unstable checksum
        end
      end

let scan_page t slot_idx slot i =
  let space = slot.space in
  let was_written = Dirty.test_and_clear slot.rescan i in
  let previous = slot.checksums.(i) in
  let content = lazy (Address_space.read space i) in
  (* Cached-checksum fast path: if no write was observed since the
     previous scan, the content - and therefore its hash - cannot have
     changed (every content change goes through [Address_space.write],
     and KSM's own remaps are content-preserving), so the expensive
     read + hash is skipped. Behaviour is identical by construction. *)
  let checksum =
    if (not was_written) && previous <> never_scanned then begin
      t.clean_skips <- t.clean_skips + 1;
      previous
    end
    else Page.Content.hash (Lazy.force content)
  in
  slot.checksums.(i) <- checksum;
  let f = Address_space.frame_at space i in
  if Frame_table.is_stable t.table f then
    (* Already merged; nothing to do this pass. *)
    ()
  else
    match stable_lookup t content checksum with
    | Some s when s <> f -> merge_into_stable t space i s
    | Some _ -> ()
    | None ->
      (* Volatile page: the content moved since the previous scan, so it
         would only pollute the unstable tree (real ksmd's checksum
         skip). A page seen for the first time is taken at face value. *)
      if previous <> never_scanned && previous <> checksum then begin
        t.volatile_skips <- t.volatile_skips + 1;
        Sim.Telemetry.incr t.m_volatile;
        (* keep the churner in the rescan set: the incremental sweep
           only visits dirty pages, and a page that settles after one
           write must still get the quiescent revisit that admits it to
           the unstable tree *)
        Dirty.set slot.rescan i
      end
      else scan_unstable t slot_idx space i content checksum f

let total_pages t =
  let acc = ref 0 in
  for i = 0 to t.n_slots - 1 do
    acc := !acc + Address_space.pages t.slots.(i).space
  done;
  !acc

let complete_pass t =
  t.full_scans <- t.full_scans + 1;
  Sim.Telemetry.incr t.m_passes;
  (* The incremental sweep keeps its unstable candidates across passes:
     clean pages are never revisited, so dropping their entries would
     lose the merge partners they advertise. Entries are re-validated by
     content on every hit, which keeps staleness harmless. *)
  if not t.config.incremental then Int_tbl.reset t.unstable;
  emit t "full pass %d complete (%d merges so far)" t.full_scans t.merges

let advance_cursor t =
  if t.n_slots > 0 then begin
    t.cursor_page <- t.cursor_page + 1;
    if t.cursor_page >= Address_space.pages t.slots.(t.cursor_space).space then begin
      t.cursor_page <- 0;
      t.cursor_space <- t.cursor_space + 1;
      if t.cursor_space >= t.n_slots then begin
        t.cursor_space <- 0;
        complete_pass t
      end
    end
  end

let scan_once_full t =
  let scanned = ref 0 in
  for _ = 1 to t.config.pages_to_scan do
    if t.cursor_space < t.n_slots then begin
      let slot = t.slots.(t.cursor_space) in
      if t.cursor_page < Address_space.pages slot.space then begin
        scan_page t t.cursor_space slot t.cursor_page;
        incr scanned
      end;
      advance_cursor t
    end
  done;
  Sim.Telemetry.add t.m_scanned !scanned

(* Incremental sweep: visit only pages whose rescan bit is set (written
   since their last visit, or never scanned), skipping clean ranges a
   word at a time. The wakeup budget is spent on examined pages, so a
   steady state where few pages are dirtied costs O(dirtied), not
   O(table). The slot-hop budget bounds an idle sweep to one lap, and a
   lap that examined nothing does not count as a pass. *)
let scan_once_incremental t =
  let next_slot t =
    t.cursor_page <- 0;
    t.cursor_space <- t.cursor_space + 1;
    if t.cursor_space >= t.n_slots then begin
      t.cursor_space <- 0;
      if t.scanned_since_pass then begin
        t.scanned_since_pass <- false;
        complete_pass t
      end
    end
  in
  let scanned = ref 0 in
  let budget = ref t.config.pages_to_scan in
  let hops = ref 0 in
  while !budget > 0 && !hops <= t.n_slots && t.n_slots > 0 do
    let slot = t.slots.(t.cursor_space) in
    match Dirty.next_dirty_from slot.rescan t.cursor_page with
    | Some i ->
      scan_page t t.cursor_space slot i;
      incr scanned;
      decr budget;
      hops := 0;
      t.scanned_since_pass <- true;
      t.cursor_page <- i + 1;
      if t.cursor_page >= Address_space.pages slot.space then next_slot t
    | None ->
      incr hops;
      next_slot t
  done;
  Sim.Telemetry.add t.m_scanned !scanned

let scan_once t =
  if t.n_slots > 0 then
    if t.config.incremental then scan_once_incremental t else scan_once_full t

let start t =
  if not t.active then begin
    t.active <- true;
    Sim.Engine.periodic t.engine ~every:t.config.sleep (fun () ->
        if t.active then scan_once t;
        t.active)
  end

let stop t = t.active <- false
let running t = t.active
let full_scans t = t.full_scans
let pages_merged t = t.merges
let pages_volatile_skipped t = t.volatile_skips
let pages_rescan_avoided t = t.clean_skips

let pages_shared t =
  Int_tbl.fold
    (fun checksum f acc ->
      let live =
        Frame_table.is_live t.table f
        && Frame_table.is_stable t.table f
        && Page.Content.hash (Frame_table.content t.table f) = checksum
      in
      if live then acc + 1 else acc)
    t.stable 0

let pages_sharing t = Frame_table.sharing_savings_pages t.table

(* An unstable entry is "current" while its packed (slot, page) still
   exists and the page still hashes to the entry's key; anything else is
   drift the scan re-validates away on its next hit. *)
let fold_current_unstable t f init =
  Int_tbl.fold
    (fun checksum enc acc ->
      let idx = enc lsr 32 and i = enc land 0xFFFF_FFFF in
      if
        idx < t.n_slots
        && i < Address_space.pages t.slots.(idx).space
        && Page.Content.hash (Address_space.read t.slots.(idx).space i) = checksum
      then f acc t.slots.(idx).space i
      else acc)
    t.unstable init

let unstable_candidates t = fold_current_unstable t (fun acc _ _ -> acc + 1) 0

let check_invariants t =
  let err = ref None in
  let fail fmt = Printf.ksprintf (fun s -> if !err = None then err := Some s) fmt in
  (* No page lives in both trees: a current unstable candidate must not
     sit on a frame the stable tree owns (merged pages either leave the
     unstable tree or go stale, never both). *)
  fold_current_unstable t
    (fun () space i ->
      let f = Address_space.frame_at space i in
      if Frame_table.is_stable t.table f then
        fail "unstable candidate %s[%d] references a stable frame" (Address_space.name space) i)
    ();
  (* Every still-valid stable-tree entry is flagged stable under the
     content it is keyed by. *)
  Int_tbl.iter
    (fun checksum f ->
      if
        Frame_table.is_live t.table f
        && Page.Content.hash (Frame_table.content t.table f) = checksum
        && not (Frame_table.is_stable t.table f)
      then fail "stable-tree frame %d is not flagged stable" f)
    t.stable;
  (* Sharing accounting: merging is the only source of frame sharing, so
     the references saved can never exceed the merges performed. *)
  if pages_sharing t > t.merges then
    fail "pages_sharing (%d) exceeds pages_merged (%d)" (pages_sharing t) t.merges;
  if pages_shared t > Int_tbl.length t.stable then
    fail "pages_shared (%d) exceeds the stable table (%d entries)" (pages_shared t)
      (Int_tbl.length t.stable);
  match !err with None -> Ok () | Some e -> Error e

let time_for_full_pass t =
  let pages = total_pages t in
  if pages = 0 then Sim.Time.zero
  else
    let wakeups = (pages + t.config.pages_to_scan - 1) / t.config.pages_to_scan in
    Sim.Time.mul t.config.sleep (float_of_int wakeups)
