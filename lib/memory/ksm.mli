(** Kernel samepage merging (ksmd).

    A simulation of Linux's KSM daemon: a periodic scanner that walks the
    pages of registered (madvise-MERGEABLE) address spaces and merges
    pages with identical content into a single copy-on-write-protected
    frame. Follows the real ksmd structure: a {e stable tree} of already
    merged frames, an {e unstable tree} of candidate pages that is
    rebuilt on every full pass, a per-page {e checksum} that keeps
    volatile (churning) pages out of the unstable tree, and the
    [pages_to_scan] / [sleep_millisecs] pacing knobs from
    [/sys/kernel/mm/ksm]. The scan hot path is allocation-free. *)

type config = {
  pages_to_scan : int;  (** pages examined per wakeup (Linux default 100) *)
  sleep : Sim.Time.t;  (** pause between wakeups (Linux default 20 ms) *)
  incremental : bool;
      (** when set, a wakeup only visits pages written since their last
          scan (plus never-scanned pages), so a steady-state rescan costs
          O(dirtied pages) instead of O(table); the unstable tree is kept
          across passes and re-validated on hit instead of being rebuilt.
          Merge outcomes converge to the same sharing as full sweeps, but
          pass pacing differs - experiments that count passes or scanned
          pages keep the (default) full sweep. *)
}

val default_config : config
val fast_config : config
(** An aggressive setting (4096 pages / 1 ms) used by experiments whose
    subject is not KSM pacing itself. *)

type t

val create : ?config:config -> Sim.Ctx.t -> Frame_table.t -> t
(** The daemon runs on the context's engine, emits into its trace, and
    registers its metric series ([ksm_scan_passes_total],
    [ksm_pages_scanned_total], [ksm_pages_merged_total],
    [ksm_pages_volatile_skipped_total]) against its sink; handles are
    pre-created here so the scan hot path never touches the registry. *)

val register : t -> Address_space.t -> unit
(** Offer a root address space for merging. Raises [Invalid_argument] on
    a window: nested spaces are scanned through their root ancestor.
    Amortized O(1); scanning order is registration order. *)

val unregister : t -> Address_space.t -> unit
(** Withdraw a space. The scan cursor steps over the removed space but
    keeps its position in the current pass, and unstable-tree candidates
    recorded from other spaces this pass are preserved. *)

val start : t -> unit
(** Begin periodic scanning on the engine's clock. Idempotent. *)

val stop : t -> unit

val running : t -> bool

val scan_once : t -> unit
(** Immediately examine the next [pages_to_scan] pages (a single wakeup's
    work), without touching the schedule. Useful in unit tests. *)

val full_scans : t -> int
(** Completed full passes over all registered pages. *)

val pages_merged : t -> int
(** Merge operations performed since creation. *)

val pages_volatile_skipped : t -> int
(** Scans that skipped the unstable tree because the page's content had
    changed since its previous scan (the checksum gate; cf. Linux's
    [pages_volatile]). *)

val pages_rescan_avoided : t -> int
(** Page examinations that reused the cached checksum because no write
    was observed since the page's previous scan - the read + hash was
    skipped. Applies in both full and incremental modes; behaviour is
    unchanged, only cost. *)

val pages_shared : t -> int
(** Stable-tree frames currently live (Linux's [pages_shared]). *)

val pages_sharing : t -> int
(** Extra page references saved by sharing (Linux's [pages_sharing]). *)

val unstable_candidates : t -> int
(** Current unstable-tree candidates: entries whose (space, page) still
    exists and still hashes to the entry's key. Stale entries (drifted
    slots, rewritten pages) are excluded, mirroring the re-validation
    the scan applies on every hit. *)

val check_invariants : t -> (unit, string) result
(** Structural sanity of the daemon's state, checkable at any point
    between scans: no page is current in both trees, still-valid
    stable-tree entries are flagged stable, and the sharing counters are
    consistent ([pages_sharing <= pages_merged],
    [pages_shared <=] stable-table size). [Error] describes the first
    violation; the property suites call this after every random
    operation. *)

val time_for_full_pass : t -> Sim.Time.t
(** Lower bound on the virtual time one full pass takes with the current
    configuration and registered population - what a detector must wait
    before trusting merge state. *)
