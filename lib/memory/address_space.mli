(** Guest-physical address spaces.

    A root space owns a run of frames in a host {!Frame_table} - the RAM
    of a VM launched on the bare host, or a buffer in the host's own
    memory (e.g. the detector's copy of File-A). A window is a carved-out
    view of a parent space: the RAM of a *nested* VM is a window into its
    parent hypervisor's RAM. Writes through a window resolve to the same
    physical frames the parent sees, which is why L0's KSM can merge
    pages that logically belong to L2 - the property the CloudSkulk
    detector exploits. *)

type t

val create_root : Frame_table.t -> name:string -> pages:int -> t
(** Fresh RAM: every page holds {!Page.Content.zero}, each in a private
    frame. *)

val window : t -> name:string -> offset:int -> pages:int -> t
(** [window parent ~offset ~pages] views pages
    [offset .. offset+pages-1] of [parent]. Raises [Invalid_argument] if
    the range does not fit. *)

val name : t -> string
val pages : t -> int
val bytes : t -> int
val is_root : t -> bool
val parent : t -> t option

val frame_table : t -> Frame_table.t
(** The physical frame table this space ultimately resolves into. *)

val resolve : t -> int -> t * int
(** [resolve t i] is the root space and root-space index that page [i]
    delegates to. [resolve] of a root space is the identity. *)

val frame_at : t -> int -> Frame_table.frame
val read : t -> int -> Page.Content.t

type write_kind = Private_write | Cow_break
(** Whether a write went to a private frame or had to break a merged
    (shared) frame. The timing difference between the two is the
    detector's measurement channel. *)

val write : t -> int -> Page.Content.t -> write_kind
(** Write content into a page. Breaks sharing if needed, and marks the
    page dirty in this space and every ancestor space along the
    delegation chain (each at its own local index). *)

val remap : t -> int -> Frame_table.frame -> unit
(** [remap t i f] makes page [i] refer to existing frame [f] (used by KSM
    when merging): increfs [f], decrefs the old frame. Only valid on a
    root space. Does not mark the page dirty: Linux KSM merges preserve
    content, and the migration dirty log only tracks content changes. *)

val dirty : t -> Dirty.t
(** This space's dirty bitmap (local indices). *)

val watch_writes : t -> Dirty.t -> unit
(** [watch_writes t d] registers [d] (length [pages t]) as an extra
    write-observer bitmap: every subsequent write to [t] - direct or
    delegated through a window - also sets the corresponding bit of [d].
    The observer owns its own clear schedule, so consumers with
    different cadences (migration rounds, KSM rescans) do not steal each
    other's dirt. Registering the same bitmap twice is a no-op. Raises
    [Invalid_argument] on a length mismatch. *)

val unwatch_writes : t -> Dirty.t -> unit
(** Remove a previously registered write observer (no-op if absent). *)

val load : t -> offset:int -> Page.Content.t array -> unit
(** Bulk write of consecutive page contents starting at [offset]
    (e.g. loading File-A into memory). *)

val contents : t -> Page.Content.t array
(** Snapshot of all page contents (by local index). *)

val shared_page_count : t -> int
(** Pages of this space currently backed by a shared frame. *)

val check_invariants : t -> (unit, string) result
(** Structural sanity, checkable at any point: the dirty bitmap and
    every registered write-observer bitmap cover exactly this space's
    pages, every page resolves to a live frame, and (root spaces) no
    frame is mapped more times than its table refcount allows. [Error]
    describes the first violation; shared by the fuzzer and the qcheck
    suites as the address-space oracle (cf. {!Ksm.check_invariants}). *)

val pp : Format.formatter -> t -> unit
