(** Host physical frames.

    One frame table per physical machine. Each frame holds a page content
    digest and a reference count; KSM raises the count when it merges
    identical pages, and copy-on-write lowers it again when a shared
    frame is written. *)

type t

type frame = int
(** Frame identifier. *)

val create : ?capacity_frames:int -> Sim.Ctx.t -> t
(** [capacity_frames] (default unbounded) models the host's physical RAM;
    allocation beyond it raises {!Out_of_memory_frames}. The context's
    telemetry sink registers the memory-layer metrics
    ([memory_cow_breaks_total], dirty drain counters) and is inherited by
    every address space built over this table. *)

val telemetry : t -> Sim.Telemetry.t option
(** The sink passed at creation - the memory layer's instrumentation
    root, consulted by {!Address_space} and {!Dirty}. *)

val note_cow_break : t -> unit
(** Count one copy-on-write break (a write to a shared frame); called by
    {!Address_space.write}. *)

exception Out_of_memory_frames

val alloc : t -> Page.Content.t -> frame
(** Allocate a fresh private frame holding the given content. *)

val is_live : t -> frame -> bool
(** Whether the frame is currently allocated. Every other accessor
    asserts liveness; callers holding possibly-stale frame ids (KSM's
    stable tree) must check this first. *)

val content : t -> frame -> Page.Content.t
val refcount : t -> frame -> int
val is_shared : t -> frame -> bool
(** [refcount > 1]. *)

val incref : t -> frame -> unit
val decref : t -> frame -> unit
(** Dropping the last reference frees the frame. *)

val write : t -> frame -> Page.Content.t -> unit
(** In-place content update; only legal on a private frame (asserts). A
    shared frame must be CoW-broken first (see {!Address_space.write}). *)

val mark_stable : t -> frame -> unit
(** Flag a frame as living in KSM's stable tree. *)

val clear_stable : t -> frame -> unit
val is_stable : t -> frame -> bool

val live_frames : t -> int
(** Number of allocated (refcounted > 0) frames. *)

val shared_frames : t -> int
(** Number of frames with refcount > 1. *)

val sharing_savings_pages : t -> int
(** Pages of RAM saved by sharing: sum over shared frames of
    (refcount - 1). The "memory density" KSM buys. *)

val check_invariants : t -> (unit, string) result
(** Structural sanity, checkable at any point: the live counter matches
    the number of referenced slots, capacity is respected, the free list
    holds only unreferenced in-range frames with no duplicates, no
    refcount is negative, and no freed frame is still flagged stable.
    [Error] describes the first violation. The fuzzer and the qcheck
    suites share this as their frame-table oracle (cf.
    {!Ksm.check_invariants}). *)
