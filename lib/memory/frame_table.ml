exception Out_of_memory_frames

type frame = int

type slot = {
  mutable content : Page.Content.t;
  mutable refs : int;
  mutable stable : bool;
}

type t = {
  mutable slots : slot array;
  mutable used : int;
  mutable free_list : frame list;
  mutable live : int;
  capacity : int option;
  telemetry : Sim.Telemetry.t option;
  m_cow_breaks : Sim.Telemetry.counter;
}

let create ?capacity_frames ctx =
  let telemetry = Sim.Ctx.telemetry ctx in
  {
    slots = [||];
    used = 0;
    free_list = [];
    live = 0;
    capacity = capacity_frames;
    telemetry;
    m_cow_breaks = Sim.Telemetry.counter telemetry ~component:"memory" "cow_breaks_total";
  }

let telemetry t = t.telemetry
let note_cow_break t = Sim.Telemetry.incr t.m_cow_breaks

let grow t =
  let cap = Array.length t.slots in
  let new_cap = if cap = 0 then 1024 else 2 * cap in
  let fresh () = { content = Page.Content.zero; refs = 0; stable = false } in
  let new_slots = Array.init new_cap (fun i -> if i < cap then t.slots.(i) else fresh ()) in
  t.slots <- new_slots

let alloc t c =
  (match t.capacity with
  | Some cap when t.live >= cap -> raise Out_of_memory_frames
  | Some _ | None -> ());
  let f =
    match t.free_list with
    | f :: rest ->
      t.free_list <- rest;
      f
    | [] ->
      if t.used = Array.length t.slots then grow t;
      let f = t.used in
      t.used <- t.used + 1;
      f
  in
  let slot = t.slots.(f) in
  slot.content <- c;
  slot.refs <- 1;
  slot.stable <- false;
  t.live <- t.live + 1;
  f

let slot t f =
  let s = t.slots.(f) in
  assert (s.refs > 0);
  s

let is_live t f = f >= 0 && f < t.used && t.slots.(f).refs > 0
let content t f = (slot t f).content
let refcount t f = (slot t f).refs
let is_shared t f = (slot t f).refs > 1
let incref t f = (slot t f).refs <- (slot t f).refs + 1

let decref t f =
  let s = slot t f in
  s.refs <- s.refs - 1;
  if s.refs = 0 then begin
    s.stable <- false;
    t.free_list <- f :: t.free_list;
    t.live <- t.live - 1
  end

let write t f c =
  let s = slot t f in
  assert (s.refs = 1);
  s.content <- c

let mark_stable t f = (slot t f).stable <- true
let clear_stable t f = (slot t f).stable <- false
let is_stable t f = (slot t f).stable
let live_frames t = t.live

let fold_live t init f =
  let acc = ref init in
  for i = 0 to t.used - 1 do
    if t.slots.(i).refs > 0 then acc := f !acc i t.slots.(i)
  done;
  !acc

let shared_frames t = fold_live t 0 (fun n _ s -> if s.refs > 1 then n + 1 else n)

let check_invariants t =
  let err fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let counted_live = fold_live t 0 (fun n _ _ -> n + 1) in
  if counted_live <> t.live then
    err "frame_table: live counter %d but %d slots hold references" t.live counted_live
  else if
    match t.capacity with Some cap -> t.live > cap | None -> false
  then err "frame_table: %d live frames exceed the capacity" t.live
  else begin
    let bad_free =
      List.find_opt (fun f -> f < 0 || f >= t.used || t.slots.(f).refs > 0) t.free_list
    in
    let dup_free =
      let sorted = List.sort Int.compare t.free_list in
      let rec dup = function
        | a :: (b :: _ as rest) -> if a = b then Some a else dup rest
        | _ -> None
      in
      dup sorted
    in
    match (bad_free, dup_free) with
    | Some f, _ -> err "frame_table: free-list frame %d is out of range or still referenced" f
    | None, Some f -> err "frame_table: frame %d appears twice on the free list" f
    | None, None ->
      let rec scan f =
        if f >= t.used then Ok ()
        else
          let s = t.slots.(f) in
          if s.refs < 0 then err "frame_table: frame %d has negative refcount %d" f s.refs
          else if s.refs = 0 && s.stable then
            err "frame_table: freed frame %d still flagged stable" f
          else scan (f + 1)
      in
      scan 0
  end

let sharing_savings_pages t =
  fold_live t 0 (fun n _ s -> if s.refs > 1 then n + s.refs - 1 else n)
