type strategy =
  | Pre_copy of Precopy.config
  | Post_copy of Postcopy.config

(* One wiring per source VM; its outcome lives on the handle the caller
   got back, never in module-level state (which parallel trial domains
   would share - trials routinely reuse VM names). *)
type t = {
  mutable last :
    (Precopy.result Outcome.t option * Postcopy.result Outcome.t option) option;
}

let fault_counters outcome =
  match outcome with
  | Outcome.Completed _ -> ""
  | Outcome.Recovered (_, r) ->
    Printf.sprintf "\nretransmissions: %d\noutages: %d\nstalled: %s" r.Outcome.retransmissions
      r.Outcome.outages
      (Sim.Time.to_string r.Outcome.stalled)
  | Outcome.Aborted a ->
    Printf.sprintf "\nretransmissions: %d\nstalled: %s" a.retransmissions
      (Sim.Time.to_string a.stalled)

let render_precopy outcome =
  match Outcome.stats outcome with
  | Some (r : Precopy.result) ->
    Printf.sprintf
      "Migration status: %s\nrounds: %d\ntransferred ram: %d bytes\ndowntime: %s\n\
       total time: %s%s"
      (Outcome.describe outcome) (List.length r.rounds) r.total_bytes_sent
      (Sim.Time.to_string r.downtime)
      (Sim.Time.to_string r.total_time)
      (fault_counters outcome)
  | None -> Printf.sprintf "Migration status: %s%s" (Outcome.describe outcome) (fault_counters outcome)

let render_postcopy outcome =
  match Outcome.stats outcome with
  | Some (r : Postcopy.result) ->
    Printf.sprintf
      "Migration status: %s (postcopy)\ntransferred pages: %d\ndowntime: %s\n\
       total time: %s\ndemand faults: %d%s"
      (Outcome.describe outcome) r.total_pages_sent
      (Sim.Time.to_string r.downtime)
      (Sim.Time.to_string r.total_time)
      r.demand_faults (fault_counters outcome)
  | None -> Printf.sprintf "Migration status: %s%s" (Outcome.describe outcome) (fault_counters outcome)

let wire_monitor ?(strategy = Pre_copy Precopy.default_config) ?fault ctx ~registry ~source
    () =
  let wiring = { last = None } in
  Vmm.Vm.set_migrate_handler source (fun ~host ~port ->
      match Registry.resolve registry ~addr:host ~port with
      | Error e -> Error e
      | Ok dest -> (
        let outcome =
          match strategy with
          | Pre_copy config -> (
            match Precopy.migrate ~config ?fault ctx ~source ~dest () with
            | Ok o ->
              Vmm.Vm.set_migration_stats source (render_precopy o);
              Ok (Some o, None, o |> Outcome.completed)
            | Error e -> Error e)
          | Post_copy config -> (
            match Postcopy.migrate ~config ?fault ctx ~source ~dest () with
            | Ok o ->
              Vmm.Vm.set_migration_stats source (render_postcopy o);
              (* a postcopy-paused destination carries its own status,
                 and its recover closure refreshes it on success *)
              (match o with
              | Outcome.Aborted { reason = Outcome.Postcopy_paused; _ } ->
                Vmm.Vm.set_migration_stats dest
                  "Migration status: postcopy-paused (migrate_recover to resume)";
                (match Vmm.Vm.recover_handler dest with
                | None -> ()
                | Some h ->
                  Vmm.Vm.set_recover_handler dest
                    (Some
                       (fun () ->
                         match h () with
                         | Error e -> Error e
                         | Ok () ->
                           Vmm.Vm.set_migration_stats dest
                             "Migration status: completed (via migrate_recover)";
                           Ok ())))
              | Outcome.Completed _ | Outcome.Recovered _ | Outcome.Aborted _ -> ());
              let handed_over =
                Outcome.completed o
                ||
                match o with
                | Outcome.Aborted { reason = Outcome.Postcopy_paused; _ } -> true
                | _ -> false
              in
              Ok (None, Some o, handed_over)
            | Error e -> Error e)
        in
        match outcome with
        | Error e -> Error e
        | Ok (pre, post, handed_over) ->
          wiring.last <- Some (pre, post);
          if handed_over then Registry.unregister registry ~addr:host ~port;
          let aborted =
            match (pre, post) with
            | Some (Outcome.Aborted a), _ | _, Some (Outcome.Aborted a) -> Some a.reason
            | _ -> None
          in
          (match aborted with
          | Some reason -> Error (Outcome.reason_to_string reason)
          | None -> Ok ())));
  wiring

let last_result t = t.last
