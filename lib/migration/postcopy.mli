(** Post-copy live migration.

    The alternative strategy the paper notes cloud vendors may use
    (Section II-A): pause the source almost immediately, ship the device
    state and a minimal working set, resume the guest at the
    destination, and pull the remaining pages in the background (with
    demand faults for pages the guest touches first). CloudSkulk works
    over either strategy; the [abl-postcopy] bench compares install
    times under both. *)

type config = {
  link : Net.Link.t;
  page_header_bytes : int;
  nested_dest_derate : float;
  working_set_pages : int;  (** pages pushed before the destination resumes *)
  demand_fault_rate : float;
      (** fraction of background pages that arrive via a demand fault
          (network round-trip each) rather than the streaming pull *)
  max_retransmits : int;
      (** phase-1 (working-set push) retransmission allowance before the
          migration aborts with [Channel_down] (default 5) *)
  pull_chunk_pages : int;
      (** granularity of the faulted background pull; an outage severs
          the stream at a chunk boundary (default 256) *)
  auto_recover : bool;
      (** when an outage severs the background pull: [true] (default)
          waits it out and resumes the pull itself ([Recovered]);
          [false] reproduces QEMU's manual flow - the destination guest
          stays paused in postcopy-paused and a [migrate_recover]
          handler is installed on it ({!Vmm.Vm.set_recover_handler}) *)
}

val default_config : config

type result = {
  downtime : Sim.Time.t;
  resume_time : Sim.Time.t;  (** source pause to destination running *)
  background_time : Sim.Time.t;  (** resume to last page transferred *)
  total_time : Sim.Time.t;
  demand_faults : int;
  total_pages_sent : int;
}

val migrate :
  ?config:config ->
  ?fault:Sim.Fault.t ->
  Sim.Ctx.t ->
  source:Vmm.Vm.t ->
  dest:Vmm.Vm.t ->
  unit ->
  (result Outcome.t, string) Stdlib.result
(** Same preconditions as {!Precopy.migrate}; [Error] is reserved for
    precondition failures and has no side effects.

    Failure semantics differ by phase. A channel failure during the
    phase-1 working-set push (the destination has not resumed yet)
    aborts like pre-copy: source resumed, destination left [Incoming].
    An outage during the phase-2 background pull happens {e after} the
    handover - the destination guest stalls on its missing pages; with
    [auto_recover] the driver waits out the outage and finishes
    ([Recovered]), otherwise it returns [Aborted Postcopy_paused] with
    the destination [Paused] and a recover closure installed for the
    monitor's [migrate_recover]. Invoking the closure resumes the guest
    and pulls the remaining pages (exactly once each - no page is lost
    or duplicated across the pause).

    Without [?fault] the driver takes the exact historical code path. *)
