(** Glue between the QEMU monitor and the migration engine.

    Installs a handler so that the monitor command [migrate
    tcp:host:port] on a source VM resolves the endpoint through a
    {!Registry} and runs a pre-copy (or post-copy) migration - the same
    division of labour as QEMU's monitor and migration thread. *)

type strategy =
  | Pre_copy of Precopy.config
  | Post_copy of Postcopy.config

type t
(** A live wiring between one source VM's monitor and the migration
    engine. The handle owns the outcome of the wiring's most recent
    migration; keeping it here (rather than in any module-level map)
    means concurrent trial domains can never observe each other's
    migrations. *)

val wire_monitor :
  ?strategy:strategy ->
  ?fault:Sim.Fault.t ->
  Sim.Ctx.t ->
  registry:Registry.t ->
  source:Vmm.Vm.t ->
  unit ->
  t
(** After this, [Monitor.execute source "migrate tcp:H:P"] performs the
    migration. Default strategy: pre-copy with {!Precopy.default_config};
    [?fault] is threaded through to the chosen driver. The registry
    entry for the destination is removed once the destination has taken
    over the guest ([Completed], [Recovered], or postcopy-paused).

    The handler reports an aborted migration as [Error] to the monitor
    (QEMU prints "migration failed"), and records a rendered summary -
    outcome, rounds, fault counters - on the source VM via
    {!Vmm.Vm.set_migration_stats} so [info migrate] can show it. A
    postcopy-paused destination gets its own status line, and its
    [migrate_recover] closure is wrapped to refresh it on success. *)

val last_result :
  t -> (Precopy.result Outcome.t option * Postcopy.result Outcome.t option) option
(** Outcome of the most recent migration performed through this wiring,
    if any ([fst] set for pre-copy, [snd] for post-copy). *)
