(* Serialised VM state for cross-host (and cross-shard) moves.

   Pre/post-copy model the *protocol* of a live migration between two
   VMs that already exist on one engine. A fleet move is different: the
   destination host lives on another engine entirely (possibly another
   domain), so the only thing that may cross is inert data. A
   [descriptor] is that data - the VM's identity, size, and nonzero
   page contents - captured on the source, shipped through a shard
   mailbox, and resumed on the destination hypervisor as an incoming
   launch. Descriptors are pure values: capture order is page order,
   so two captures of the same VM are structurally equal. *)

type descriptor = {
  vm_name : string;
  memory_mb : int;
  os_release : string;
  pages : (int * Memory.Page.Content.t) list;  (* nonzero pages, ascending index *)
}

let capture (vm : Vmm.Vm.t) =
  let ram = Vmm.Vm.ram vm in
  let n = Memory.Address_space.pages ram in
  let pages = ref [] in
  for i = n - 1 downto 0 do
    let c = Memory.Address_space.read ram i in
    if not (Memory.Page.Content.is_zero c) then pages := (i, c) :: !pages
  done;
  {
    vm_name = Vmm.Vm.name vm;
    memory_mb = (Vmm.Vm.config vm).Vmm.Qemu_config.memory_mb;
    os_release = Vmm.Vm.os_release vm;
    pages = !pages;
  }

(* Wire size: every nonzero page travels in full, plus a fixed header
   per page (index) and per stream (identity) - the same accounting the
   pre-copy driver uses for its first full round. *)
let header_bytes = 256
let page_header_bytes = 8

let bytes d =
  header_bytes
  + List.length d.pages * (Memory.Page.size_bytes + page_header_bytes)

let page_count d = List.length d.pages

let resume hv ~incoming_port d =
  let config =
    Vmm.Qemu_config.with_incoming
      { (Vmm.Qemu_config.default ~name:d.vm_name) with Vmm.Qemu_config.memory_mb = d.memory_mb }
      ~port:incoming_port
  in
  match Vmm.Hypervisor.launch hv config with
  | Error e -> Error e
  | Ok vm ->
    let ram = Vmm.Vm.ram vm in
    List.iter (fun (i, c) -> ignore (Memory.Address_space.write ram i c)) d.pages;
    Vmm.Vm.set_os_release vm d.os_release;
    (match Vmm.Vm.complete_incoming vm with
    | Ok () -> Ok vm
    | Error e ->
      Vmm.Hypervisor.kill_vm hv vm;
      Error e)
