(** Serialised VM state for cross-host moves.

    {!Precopy}/{!Postcopy} drive a live migration between two VMs that
    share one engine. A fleet move crosses engines (and possibly
    domains), so only inert data may travel: a {!descriptor} captures a
    VM's identity and nonzero page contents on the source host, rides a
    shard mailbox ({!Sim.Parallel.run_sharded}), and is resumed on the
    destination hypervisor as an incoming launch. Capture and resume
    are deterministic: pages are recorded and replayed in ascending
    page order. *)

type descriptor = {
  vm_name : string;
  memory_mb : int;
  os_release : string;
  pages : (int * Memory.Page.Content.t) list;
      (** nonzero pages, ascending page index *)
}

val capture : Vmm.Vm.t -> descriptor
(** Snapshot the VM's RAM (zero pages elided). The VM is left running -
    the fleet churn layer decides when to kill the source copy. *)

val bytes : descriptor -> int
(** Wire size: a fixed stream header plus one full page and a small
    page header per nonzero page - the same accounting pre-copy uses
    for its first full round. *)

val page_count : descriptor -> int

val resume :
  Vmm.Hypervisor.t -> incoming_port:int -> descriptor -> (Vmm.Vm.t, string) result
(** Launch the VM on the destination as an incoming migration, replay
    the captured pages into its RAM, and complete the handover (the VM
    ends [Running]). [Error] if the launch is refused - duplicate name
    or insufficient host RAM - in which case the destination is left
    untouched; the caller decides whether to retry elsewhere. *)
