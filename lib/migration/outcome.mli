(** Migration outcomes under an imperfect channel.

    QEMU's migration state machine does not assume success: a migration
    can complete, fail and leave the source running, or (post-copy) land
    in [postcopy-paused] and be resumed with [migrate_recover]. This
    module is the simulator's version of that vocabulary; both
    {!Precopy.migrate} and {!Postcopy.migrate} return their statistics
    wrapped in an {!t}. A fault-free run always returns {!Completed}
    with exactly the statistics the assume-success code path used to
    produce. *)

type reason =
  | Round_timeout of int
      (** the numbered round exceeded the per-round budget, retries
          included *)
  | Channel_down of int
      (** the link died during the numbered round and the
          retransmission allowance ran out *)
  | Cancelled of int  (** [migrate_cancel] was honoured at this round *)
  | Postcopy_paused
      (** the post-copy page pull lost its channel; the destination
          guest is paused and [migrate_recover] can resume it *)

val reason_to_string : reason -> string

type recovery = {
  retransmissions : int;  (** transmissions retried after a failure *)
  outages : int;  (** link-down events survived *)
  stalled : Sim.Time.t;  (** virtual time lost to outages and backoff *)
}

type 'a t =
  | Completed of 'a  (** clean finish: the channel never pushed back *)
  | Recovered of 'a * recovery
      (** finished, but only via retransmission/backoff (pre-copy) or a
          postcopy-recover of a paused destination *)
  | Aborted of {
      reason : reason;
      source_resumed : bool;
          (** pre-copy failure semantics: the source was resumed (or was
              never paused) and still owns the guest *)
      retransmissions : int;
      stalled : Sim.Time.t;
    }

val stats : 'a t -> 'a option
(** The statistics of a migration that moved the guest ([Completed] or
    [Recovered]); [None] for [Aborted]. *)

val completed : 'a t -> bool
(** True when the destination ended up running the guest. *)

val stats_exn : 'a t -> 'a
(** Raises [Invalid_argument] on [Aborted]. *)

val check_legal : 'a t -> source:Vmm.Vm.t -> dest:Vmm.Vm.t -> (unit, string) result
(** Whether the two VMs' states are consistent with this outcome,
    checked at the moment the outcome is returned: a completed or
    recovered migration must leave the destination running and the
    source a (paused or killed) husk; a postcopy-paused abort parks the
    destination awaiting [migrate_recover]; any other abort must leave
    the destination in the incoming state (or torn down) with
    [source_resumed] telling the truth about the source. [Error]
    describes the first inconsistency - the migration-legality oracle
    shared by the fuzzer and the chaos suites (cf.
    {!Memory.Ksm.check_invariants}). *)

val describe : 'a t -> string
(** One-line human rendering ("completed", "recovered after 1 outage,
    3 retransmissions", "aborted: ..."). *)
