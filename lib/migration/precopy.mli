(** Pre-copy live migration.

    The algorithm of Clark et al. that QEMU implements and the paper's
    attack rides on: iteratively copy RAM while the source keeps
    running, re-sending pages the guest dirties, until the remaining
    dirty set is small enough to move within the downtime budget (or a
    round cap is hit); then pause the source, transfer the rest, and
    start the destination.

    The driver is {e blocking on virtual time}: it advances the engine
    while rounds are in flight, so workloads keep executing - and keep
    dirtying pages - during the migration, which is what produces the
    workload-dependent end-to-end times of Fig 4. *)

type config = {
  link : Net.Link.t;  (** the migration channel *)
  max_downtime : Sim.Time.t;  (** stop-and-copy budget (QEMU default 300 ms) *)
  max_rounds : int;  (** cap on iterative rounds before forcing convergence *)
  page_header_bytes : int;  (** per-page framing overhead on the wire *)
  nested_dest_derate : float;
      (** multiplicative bandwidth factor per destination nesting level
          beyond L1: receiving into a nested VM's RAM costs extra exits *)
  zero_page_optimization : bool;
      (** send only headers for all-zero pages (QEMU does; off by
          default here because the effective-bandwidth calibration
          already folds it in - see DESIGN.md) *)
  auto_converge : bool;
      (** QEMU's auto-converge: when rounds stop shrinking, throttle the
          source's vCPU (20 %, then +10 % per further round, up to 99 %)
          until the dirty rate fits the downtime budget. Off by default -
          for CloudSkulk's attacker it is a stealth trade-off: the
          migration finishes, but the victim feels the brake *)
  xbzrle : bool;
      (** QEMU's XBZRLE delta compression: a page re-sent in a later
          round (its content changed, but the destination holds the
          previous version) goes on the wire as a delta. Off by
          default. *)
  xbzrle_ratio : float;
      (** delta size as a fraction of a full page (default 0.3) *)
  round_timeout : Sim.Time.t option;
      (** wall-clock (virtual) budget per round under fault injection;
          a round still stalled past it aborts with [Round_timeout].
          [None] (the default) never times out. *)
  max_retransmits : int;
      (** severed transmissions are retried this many times before the
          migration aborts with [Channel_down] (default 5) *)
  retransmit_backoff : Sim.Time.t;
      (** base of the exponential backoff between retransmissions
          (default 100 ms; doubles per retry) *)
}

val default_config : config
(** {!Net.Link.migration_loopback}, 300 ms downtime, 50 rounds, 8-byte
    headers, 0.82 per-level derate, zero-page optimization off. *)

type round_stat = {
  round : int;  (** 1-based *)
  pages_sent : int;
  bytes_sent : int;
  duration : Sim.Time.t;
  dirtied_during : int;  (** pages dirtied while this round was on the wire *)
}

type result = {
  rounds : round_stat list;
  total_pages_sent : int;
  total_bytes_sent : int;
  downtime : Sim.Time.t;  (** source paused to destination running *)
  total_time : Sim.Time.t;  (** end-to-end, the paper's Fig 4 metric *)
  converged : bool;  (** false when the round cap forced the stop *)
  max_throttle : float;  (** strongest auto-converge brake applied (0 if off) *)
}

val migrate :
  ?config:config ->
  ?fault:Sim.Fault.t ->
  Sim.Ctx.t ->
  source:Vmm.Vm.t ->
  dest:Vmm.Vm.t ->
  unit ->
  (result Outcome.t, string) Stdlib.result
(** Run a migration. [Error] is reserved for precondition failures
    (source not running/paused, destination not [Incoming],
    incompatible configurations, RAM size mismatch) and has no side
    effects. Otherwise the QEMU-style outcome is reported through
    {!Outcome.t}:

    - [Completed r]: the fault-free path. The source is left [Paused]
      (the post-migrated husk the attacker must clean up) and the
      destination [Running] with the source's RAM contents and OS
      identity.
    - [Recovered (r, recovery)]: same final states, but [?fault]
      injected retransmissions and/or outages along the way; [recovery]
      counts them.
    - [Aborted _]: a round timed out, the channel stayed down past
      [max_retransmits], or [migrate_cancel] was honoured at a round
      boundary. The destination remains parked in [Incoming]; the
      source is resumed iff this driver paused it (QEMU's
      source-resume-on-abort).

    Without [?fault] the driver takes the exact historical code path -
    identical virtual-time advancement and RNG usage - so zero-fault
    runs are byte-identical to pre-fault builds. *)

val estimated_idle_time : ?config:config -> pages:int -> unit -> Sim.Time.t
(** Analytic single-round estimate: what an idle-guest migration should
    take - useful as a sanity anchor in tests. *)
