type reason =
  | Round_timeout of int
  | Channel_down of int
  | Cancelled of int
  | Postcopy_paused

let reason_to_string = function
  | Round_timeout r -> Printf.sprintf "round %d exceeded its timeout" r
  | Channel_down r -> Printf.sprintf "channel down in round %d, retries exhausted" r
  | Cancelled r -> Printf.sprintf "cancelled at round %d" r
  | Postcopy_paused -> "postcopy page pull lost its channel (recoverable)"

type recovery = {
  retransmissions : int;
  outages : int;
  stalled : Sim.Time.t;
}

type 'a t =
  | Completed of 'a
  | Recovered of 'a * recovery
  | Aborted of {
      reason : reason;
      source_resumed : bool;
      retransmissions : int;
      stalled : Sim.Time.t;
    }

let stats = function
  | Completed s | Recovered (s, _) -> Some s
  | Aborted _ -> None

let completed = function Completed _ | Recovered _ -> true | Aborted _ -> false

let stats_exn = function
  | Completed s | Recovered (s, _) -> s
  | Aborted a -> invalid_arg ("Outcome.stats_exn: aborted: " ^ reason_to_string a.reason)

let describe = function
  | Completed _ -> "completed"
  | Recovered (_, r) ->
    Printf.sprintf "recovered after %d outage%s, %d retransmission%s (%s stalled)" r.outages
      (if r.outages = 1 then "" else "s")
      r.retransmissions
      (if r.retransmissions = 1 then "" else "s")
      (Sim.Time.to_string r.stalled)
  | Aborted a ->
    Printf.sprintf "aborted: %s%s" (reason_to_string a.reason)
      (if a.source_resumed then " (source resumed)" else "")
