type reason =
  | Round_timeout of int
  | Channel_down of int
  | Cancelled of int
  | Postcopy_paused

let reason_to_string = function
  | Round_timeout r -> Printf.sprintf "round %d exceeded its timeout" r
  | Channel_down r -> Printf.sprintf "channel down in round %d, retries exhausted" r
  | Cancelled r -> Printf.sprintf "cancelled at round %d" r
  | Postcopy_paused -> "postcopy page pull lost its channel (recoverable)"

type recovery = {
  retransmissions : int;
  outages : int;
  stalled : Sim.Time.t;
}

type 'a t =
  | Completed of 'a
  | Recovered of 'a * recovery
  | Aborted of {
      reason : reason;
      source_resumed : bool;
      retransmissions : int;
      stalled : Sim.Time.t;
    }

let stats = function
  | Completed s | Recovered (s, _) -> Some s
  | Aborted _ -> None

let completed = function Completed _ | Recovered _ -> true | Aborted _ -> false

let stats_exn = function
  | Completed s | Recovered (s, _) -> s
  | Aborted a -> invalid_arg ("Outcome.stats_exn: aborted: " ^ reason_to_string a.reason)

let check_legal t ~source ~dest =
  let err fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let state vm = Vmm.Vm.state_to_string (Vmm.Vm.state vm) in
  match t with
  | Completed _ | Recovered _ -> (
    (* the destination owns the guest; the source husk is paused until
       someone kills it *)
    match (Vmm.Vm.state dest, Vmm.Vm.state source) with
    | Vmm.Vm.Running, (Vmm.Vm.Paused | Vmm.Vm.Stopped) -> Ok ()
    | Vmm.Vm.Running, _ -> err "completed migration left the source %s" (state source)
    | _, _ -> err "completed migration left the destination %s" (state dest))
  | Aborted { reason = Postcopy_paused; _ } -> (
    (* handover already happened: the guest is parked at the destination
       awaiting migrate_recover, the source stays a paused husk *)
    match (Vmm.Vm.state dest, Vmm.Vm.state source) with
    | Vmm.Vm.Paused, (Vmm.Vm.Paused | Vmm.Vm.Stopped) -> Ok ()
    | Vmm.Vm.Paused, _ -> err "postcopy-paused migration left the source %s" (state source)
    | _, _ -> err "postcopy-paused migration left the destination %s" (state dest))
  | Aborted { source_resumed; _ } -> (
    (* pre-handover failure: the source still owns the guest and the
       destination never leaves the incoming state (or was torn down) *)
    if source_resumed <> (Vmm.Vm.state source = Vmm.Vm.Running) then
      err "abort reported source_resumed=%b but the source is %s" source_resumed (state source)
    else
      match Vmm.Vm.state dest with
      | Vmm.Vm.Incoming | Vmm.Vm.Stopped -> Ok ()
      | _ -> err "aborted migration left the destination %s" (state dest))

let describe = function
  | Completed _ -> "completed"
  | Recovered (_, r) ->
    Printf.sprintf "recovered after %d outage%s, %d retransmission%s (%s stalled)" r.outages
      (if r.outages = 1 then "" else "s")
      r.retransmissions
      (if r.retransmissions = 1 then "" else "s")
      (Sim.Time.to_string r.stalled)
  | Aborted a ->
    Printf.sprintf "aborted: %s%s" (reason_to_string a.reason)
      (if a.source_resumed then " (source resumed)" else "")
