type config = {
  link : Net.Link.t;
  max_downtime : Sim.Time.t;
  max_rounds : int;
  page_header_bytes : int;
  nested_dest_derate : float;
  zero_page_optimization : bool;
  auto_converge : bool;
  xbzrle : bool;
  xbzrle_ratio : float;
  round_timeout : Sim.Time.t option;
  max_retransmits : int;
  retransmit_backoff : Sim.Time.t;
}

let default_config =
  {
    link = Net.Link.migration_loopback;
    max_downtime = Sim.Time.ms 300.;
    max_rounds = 50;
    page_header_bytes = 8;
    nested_dest_derate = 0.82;
    zero_page_optimization = false;
    auto_converge = false;
    xbzrle = false;
    xbzrle_ratio = 0.3;
    round_timeout = None;
    max_retransmits = 5;
    retransmit_backoff = Sim.Time.ms 100.;
  }

type round_stat = {
  round : int;
  pages_sent : int;
  bytes_sent : int;
  duration : Sim.Time.t;
  dirtied_during : int;
}

type result = {
  rounds : round_stat list;
  total_pages_sent : int;
  total_bytes_sent : int;
  downtime : Sim.Time.t;
  total_time : Sim.Time.t;
  converged : bool;
  max_throttle : float;
}

let pow base n =
  let rec go acc n = if n <= 0 then acc else go (acc *. base) (n - 1) in
  go 1.0 n

(* The effective channel: derated once per destination nesting level
   beyond an ordinary L1 guest (writing received pages into a nested
   VM's RAM traps to the levels below). *)
let effective_link config ~dest_level =
  let extra = max 0 (Vmm.Level.to_int dest_level - 1) in
  Net.Link.scale_bandwidth config.link (pow config.nested_dest_derate extra)

let validate ~source ~dest =
  let open Vmm in
  if not (List.mem (Vm.state source) [ Vm.Running; Vm.Paused ]) then
    Error
      (Printf.sprintf "source %s is %s, not running/paused" (Vm.name source)
         (Vm.state_to_string (Vm.state source)))
  else if Vm.state dest <> Vm.Incoming then
    Error
      (Printf.sprintf "destination %s is %s, not in incoming state" (Vm.name dest)
         (Vm.state_to_string (Vm.state dest)))
  else
    match
      Qemu_config.migration_compatible ~source:(Vm.config source) ~dest:(Vm.config dest)
    with
    | Error e -> Error ("incompatible configurations: " ^ e)
    | Ok () ->
      let sp = Memory.Address_space.pages (Vm.ram source) in
      let dp = Memory.Address_space.pages (Vm.ram dest) in
      if sp <> dp then Error (Printf.sprintf "RAM size mismatch: %d vs %d pages" sp dp)
      else Ok ()

(* A round's page set, exposed as a fold so dirty rounds can walk a
   drained bitmap directly instead of materialising an index list. *)
type page_set = {
  page_count : int;
  fold : 'a. ('a -> int -> 'a) -> 'a -> 'a;
}

let all_pages ram =
  let n = Memory.Address_space.pages ram in
  {
    page_count = n;
    fold =
      (fun f init ->
        let acc = ref init in
        for i = 0 to n - 1 do
          acc := f !acc i
        done;
        !acc);
  }

let dirty_pages bitmap =
  {
    page_count = Memory.Dirty.dirty_count bitmap;
    fold = (fun f init -> Memory.Dirty.fold_dirty bitmap f init);
  }

let wire_bytes config ~source ~sent_before pages =
  let ram = Vmm.Vm.ram source in
  pages.fold
    (fun acc i ->
      let payload =
        if
          config.zero_page_optimization
          && Memory.Page.Content.is_zero (Memory.Address_space.read ram i)
        then 0
        else if config.xbzrle && Memory.Dirty.is_dirty sent_before i then
          (* destination holds this page's previous version: ship a delta *)
          int_of_float (Float.round (config.xbzrle_ratio *. float_of_int Memory.Page.size_bytes))
        else Memory.Page.size_bytes
      in
      acc + config.page_header_bytes + payload)
    0

let copy_pages ~source ~dest pages =
  let sram = Vmm.Vm.ram source and dram = Vmm.Vm.ram dest in
  pages.fold
    (fun () i -> ignore (Memory.Address_space.write dram i (Memory.Address_space.read sram i)))
    ()

(* Channel failure mid-migration; carries the QEMU-style abort reason. *)
exception Abort of Outcome.reason

let migrate ?(config = default_config) ?fault ctx ~source ~dest () =
  let engine = Sim.Ctx.engine ctx in
  match validate ~source ~dest with
  | Error e -> Error e
  | Ok () ->
    let telemetry = Vmm.Vm.telemetry source in
    let driver_label = [ ("driver", "precopy") ] in
    let mig name =
      Sim.Telemetry.counter telemetry ~labels:driver_label ~component:"migration" name
    in
    let m_rounds = mig "rounds_total" in
    let m_pages = mig "pages_sent_total" in
    let m_bytes = mig "bytes_sent_total" in
    let m_retransmits = mig "retransmits_total" in
    let m_outages = mig "outages_total" in
    let h_round =
      Sim.Telemetry.histogram telemetry ~labels:driver_label ~component:"migration"
        ~buckets:[ 0.001; 0.01; 0.1; 1.; 10.; 100. ]
        "round_duration_seconds"
    in
    let note_outcome outcome =
      Sim.Telemetry.incr
        (Sim.Telemetry.counter telemetry
           ~labels:[ ("driver", "precopy"); ("outcome", outcome) ]
           ~component:"migration" "outcomes_total")
    in
    let link = effective_link config ~dest_level:(Vmm.Vm.level dest) in
    let sram = Vmm.Vm.ram source in
    let dirty = Memory.Address_space.dirty sram in
    (* drop any stale cancel left over from before this migration *)
    ignore (Vmm.Vm.take_migrate_cancel source);
    let retransmissions = ref 0 and outages = ref 0 in
    let stalled = ref Sim.Time.zero in
    let we_paused = ref false in
    let check_cancel round =
      if Vmm.Vm.take_migrate_cancel source then raise (Abort (Outcome.Cancelled round))
    in
    (* Put [base] worth of data on the wire. Without an injector this is
       exactly [run_for base] - the historical assume-success path, same
       virtual time, zero extra RNG draws. With one, the transmission is
       jittered/degraded and may be severed; a severed transmission
       waits out the outage, backs off exponentially, and retransmits,
       up to [max_retransmits] times and bounded by [round_timeout]. *)
    let transmit ~round base =
      match fault with
      | None -> ignore (Sim.Engine.run_for engine base)
      | Some f ->
        let deadline =
          Option.map (fun d -> Sim.Time.add (Sim.Engine.now engine) d) config.round_timeout
        in
        let check_deadline () =
          match deadline with
          | Some d when Sim.Time.(Sim.Engine.now engine > d) ->
            raise (Abort (Outcome.Round_timeout round))
          | Some _ | None -> ()
        in
        let rec attempt retry =
          let duration = Sim.Time.mul base (Sim.Fault.transmission_factor f) in
          match Sim.Fault.cut f ~now:(Sim.Engine.now engine) ~during:duration with
          | None -> ignore (Sim.Engine.run_for engine duration)
          | Some (after, outage) ->
            incr outages;
            Sim.Telemetry.incr m_outages;
            stalled := Sim.Time.add !stalled outage;
            (* the wire died [after] into the transmission; sit out the
               repair, then back off before the retransmit *)
            ignore (Sim.Engine.run_for engine (Sim.Time.add after outage));
            if retry >= config.max_retransmits then raise (Abort (Outcome.Channel_down round));
            check_deadline ();
            incr retransmissions;
            Sim.Telemetry.incr m_retransmits;
            let backoff = Sim.Time.mul config.retransmit_backoff (pow 2. retry) in
            stalled := Sim.Time.add !stalled backoff;
            ignore (Sim.Engine.run_for engine backoff);
            check_deadline ();
            attempt (retry + 1)
        in
        attempt 0
    in
    (* pages the destination has already received at least once - the
       XBZRLE cache's reach *)
    let sent_before = Memory.Dirty.create (Memory.Address_space.pages sram) in
    let started = Sim.Engine.now engine in
    (* Pages that can move within the downtime budget. *)
    let downtime_page_budget =
      let per_page =
        Net.Link.transfer_time link (Memory.Page.size_bytes + config.page_header_bytes)
      in
      let per_page_s = Sim.Time.to_s per_page -. Sim.Time.to_s link.Net.Link.latency in
      if per_page_s <= 0. then max_int
      else int_of_float (Sim.Time.to_s config.max_downtime /. per_page_s)
    in
    (* Scratch bitmap a round's dirty set is drained into, so the live
       bitmap can keep collecting re-dirtying while the round runs. *)
    let round_set = Memory.Dirty.create (Memory.Address_space.pages sram) in
    let run_round ~round pages =
      let bytes = wire_bytes config ~source ~sent_before pages in
      let round_started = Sim.Engine.now engine in
      (* Let the guest (and everything else) run while the data is on
         the wire: this is where re-dirtying happens. *)
      transmit ~round (Net.Link.transfer_time link bytes);
      let duration = Sim.Time.diff (Sim.Engine.now engine) round_started in
      copy_pages ~source ~dest pages;
      pages.fold (fun () i -> Memory.Dirty.set sent_before i) ();
      let dirtied_during = Memory.Dirty.dirty_count dirty in
      Sim.Telemetry.incr m_rounds;
      Sim.Telemetry.add m_pages pages.page_count;
      Sim.Telemetry.add m_bytes bytes;
      Sim.Telemetry.observe h_round (Sim.Time.to_s duration);
      if Sim.Telemetry.enabled telemetry then
        Sim.Telemetry.span telemetry ~component:"migration" ~name:"round"
          ~start:round_started ~stop:(Sim.Engine.now engine)
          ~fields:
            [
              ("driver", "precopy");
              ("round", string_of_int round);
              ("pages_sent", string_of_int pages.page_count);
              ("bytes_sent", string_of_int bytes);
              ("dirtied_during", string_of_int dirtied_during);
            ]
          ();
      { round; pages_sent = pages.page_count; bytes_sent = bytes; duration; dirtied_during }
    in
    (try
       (* Round 1: the full RAM; later rounds: what got dirtied. *)
       Memory.Dirty.clear dirty;
       let first = run_round ~round:1 (all_pages sram) in
       let max_throttle = ref 0. in
       let throttle_source round =
         (* QEMU's schedule: engage at 20 %, then +10 % per further
            non-converging round, capped at 99 % *)
         if config.auto_converge && round >= 3 then begin
           let step = 0.2 +. (0.1 *. float_of_int (round - 3)) in
           let value = Float.min 0.99 step in
           Vmm.Vm.set_cpu_throttle source value;
           if value > !max_throttle then max_throttle := value
         end
       in
       let rec iterate acc round =
         check_cancel round;
         let dirty_now = Memory.Dirty.dirty_count dirty in
         if dirty_now <= downtime_page_budget then (acc, true)
         else if round > config.max_rounds then (acc, false)
         else begin
           throttle_source round;
           Memory.Dirty.drain dirty ~into:round_set;
           let stat = run_round ~round (dirty_pages round_set) in
           iterate (stat :: acc) (round + 1)
         end
       in
       let later, converged = iterate [] 2 in
       let final_round = List.length later + 2 in
       Vmm.Vm.set_cpu_throttle source 0.;
       (* Stop-and-copy: pause the source, move the final dirty set. *)
       let pause_result =
         match Vmm.Vm.state source with
         | Vmm.Vm.Running ->
           we_paused := true;
           Vmm.Vm.pause source
         | Vmm.Vm.Paused | Vmm.Vm.Created | Vmm.Vm.Incoming | Vmm.Vm.Stopped -> Ok ()
       in
       (match pause_result with
       | Ok () -> ()
       | Error e -> invalid_arg ("precopy: pausing source: " ^ e));
       Memory.Dirty.drain dirty ~into:round_set;
       let final_set = dirty_pages round_set in
       let final_bytes = wire_bytes config ~source ~sent_before final_set in
       let device_state_bytes = 512 * 1024 in
       let downtime_started = Sim.Engine.now engine in
       transmit ~round:final_round
         (Net.Link.transfer_time link (final_bytes + device_state_bytes));
       let downtime = Sim.Time.diff (Sim.Engine.now engine) downtime_started in
       copy_pages ~source ~dest final_set;
       Sim.Telemetry.incr m_rounds;
       Sim.Telemetry.add m_pages final_set.page_count;
       Sim.Telemetry.add m_bytes final_bytes;
       Sim.Telemetry.observe h_round (Sim.Time.to_s downtime);
       if Sim.Telemetry.enabled telemetry then
         Sim.Telemetry.span telemetry ~component:"migration" ~name:"stop_and_copy"
           ~start:downtime_started ~stop:(Sim.Engine.now engine)
           ~fields:
             [
               ("driver", "precopy");
               ("round", string_of_int final_round);
               ("pages_sent", string_of_int final_set.page_count);
               ("bytes_sent", string_of_int final_bytes);
             ]
           ();
       (* The destination takes over the guest's identity. *)
       Vmm.Vm.adopt_guest_state dest ~from:source;
       (match Vmm.Vm.complete_incoming dest with
       | Ok () -> ()
       | Error e -> invalid_arg ("precopy: completing incoming: " ^ e));
       let rounds =
         first :: List.rev later
         @ [
             {
               round = final_round;
               pages_sent = final_set.page_count;
               bytes_sent = final_bytes;
               duration = downtime;
               dirtied_during = 0;
             };
           ]
       in
       let total_pages_sent = List.fold_left (fun a r -> a + r.pages_sent) 0 rounds in
       let total_bytes_sent = List.fold_left (fun a r -> a + r.bytes_sent) 0 rounds in
       let stats =
         {
           rounds;
           total_pages_sent;
           total_bytes_sent;
           downtime;
           total_time = Sim.Time.diff (Sim.Engine.now engine) started;
           converged;
           max_throttle = !max_throttle;
         }
       in
       let outcome_label = if !retransmissions = 0 && !outages = 0 then "completed" else "recovered" in
       note_outcome outcome_label;
       if Sim.Telemetry.enabled telemetry then
         Sim.Telemetry.span telemetry ~component:"migration" ~name:"migrate"
           ~start:started ~stop:(Sim.Engine.now engine)
           ~fields:
             [
               ("driver", "precopy");
               ("outcome", outcome_label);
               ("rounds", string_of_int (List.length rounds));
               ("pages_sent", string_of_int total_pages_sent);
               ("bytes_sent", string_of_int total_bytes_sent);
             ]
           ();
       Ok
         (if !retransmissions = 0 && !outages = 0 then Outcome.Completed stats
          else
            Outcome.Recovered
              ( stats,
                {
                  Outcome.retransmissions = !retransmissions;
                  outages = !outages;
                  stalled = !stalled;
                } ))
     with Abort reason ->
       (* QEMU failure semantics: the migration is torn down, the source
          resumes (it still owns the guest), the destination stays
          parked in [Incoming] and never adopts the identity. *)
       Vmm.Vm.set_cpu_throttle source 0.;
       if !we_paused && Vmm.Vm.state source = Vmm.Vm.Paused then
         ignore (Vmm.Vm.resume source);
       note_outcome "aborted";
       if Sim.Telemetry.enabled telemetry then
         Sim.Telemetry.span telemetry ~component:"migration" ~name:"migrate"
           ~start:started ~stop:(Sim.Engine.now engine)
           ~fields:
             [ ("driver", "precopy"); ("outcome", "aborted");
               ("reason", Outcome.reason_to_string reason) ]
           ();
       Ok
         (Outcome.Aborted
            {
              reason;
              source_resumed = Vmm.Vm.state source = Vmm.Vm.Running;
              retransmissions = !retransmissions;
              stalled = !stalled;
            }))

let estimated_idle_time ?(config = default_config) ~pages () =
  let bytes = pages * (Memory.Page.size_bytes + config.page_header_bytes) in
  Net.Link.transfer_time config.link bytes
