type config = {
  link : Net.Link.t;
  page_header_bytes : int;
  nested_dest_derate : float;
  working_set_pages : int;
  demand_fault_rate : float;
  max_retransmits : int;
  pull_chunk_pages : int;
  auto_recover : bool;
}

let default_config =
  {
    link = Net.Link.migration_loopback;
    page_header_bytes = 8;
    nested_dest_derate = 0.82;
    working_set_pages = 2048;
    demand_fault_rate = 0.02;
    max_retransmits = 5;
    pull_chunk_pages = 256;
    auto_recover = true;
  }

type result = {
  downtime : Sim.Time.t;
  resume_time : Sim.Time.t;
  background_time : Sim.Time.t;
  total_time : Sim.Time.t;
  demand_faults : int;
  total_pages_sent : int;
}

let pow base n =
  let rec go acc n = if n <= 0 then acc else go (acc *. base) (n - 1) in
  go 1.0 n

exception Abort of Outcome.reason

let migrate ?(config = default_config) ?fault ctx ~source ~dest () =
  let engine = Sim.Ctx.engine ctx in
  match
    (match Vmm.Vm.state source with
    | Vmm.Vm.Running | Vmm.Vm.Paused -> (
      match Vmm.Vm.state dest with
      | Vmm.Vm.Incoming -> (
        match
          Vmm.Qemu_config.migration_compatible ~source:(Vmm.Vm.config source)
            ~dest:(Vmm.Vm.config dest)
        with
        | Error e -> Error ("incompatible configurations: " ^ e)
        | Ok () ->
          if
            Memory.Address_space.pages (Vmm.Vm.ram source)
            <> Memory.Address_space.pages (Vmm.Vm.ram dest)
          then Error "RAM size mismatch"
          else Ok ())
      | s -> Error ("destination is " ^ Vmm.Vm.state_to_string s ^ ", not incoming"))
    | s -> Error ("source is " ^ Vmm.Vm.state_to_string s ^ ", not running/paused"))
  with
  | Error e -> Error e
  | Ok () ->
    let telemetry = Vmm.Vm.telemetry source in
    let driver_label = [ ("driver", "postcopy") ] in
    let mig name =
      Sim.Telemetry.counter telemetry ~labels:driver_label ~component:"migration" name
    in
    let m_rounds = mig "rounds_total" in
    let m_pages = mig "pages_sent_total" in
    let m_bytes = mig "bytes_sent_total" in
    let m_retransmits = mig "retransmits_total" in
    let m_outages = mig "outages_total" in
    let m_demand_faults = mig "demand_faults_total" in
    let h_round =
      Sim.Telemetry.histogram telemetry ~labels:driver_label ~component:"migration"
        ~buckets:[ 0.001; 0.01; 0.1; 1.; 10.; 100. ]
        "round_duration_seconds"
    in
    let note_outcome outcome =
      Sim.Telemetry.incr
        (Sim.Telemetry.counter telemetry
           ~labels:[ ("driver", "postcopy"); ("outcome", outcome) ]
           ~component:"migration" "outcomes_total")
    in
    let extra = max 0 (Vmm.Level.to_int (Vmm.Vm.level dest) - 1) in
    let link = Net.Link.scale_bandwidth config.link (pow config.nested_dest_derate extra) in
    let sram = Vmm.Vm.ram source and dram = Vmm.Vm.ram dest in
    let pages = Memory.Address_space.pages sram in
    let started = Sim.Engine.now engine in
    let retransmissions = ref 0 and outages = ref 0 in
    let stalled = ref Sim.Time.zero in
    let we_paused = ref false in
    let copy_range lo hi =
      for i = lo to hi - 1 do
        ignore (Memory.Address_space.write dram i (Memory.Address_space.read sram i))
      done
    in
    (* Phase 1: stop the source, push device state + working set. A
       channel failure here is an ordinary abort - the destination has
       not taken over yet, so the source resumes and keeps the guest. *)
    (match Vmm.Vm.state source with
    | Vmm.Vm.Running -> (
      we_paused := true;
      match Vmm.Vm.pause source with Ok () -> () | Error e -> invalid_arg e)
    | Vmm.Vm.Paused | Vmm.Vm.Created | Vmm.Vm.Incoming | Vmm.Vm.Stopped -> ());
    let ws = min config.working_set_pages pages in
    let ws_bytes = (ws * (Memory.Page.size_bytes + config.page_header_bytes)) + (512 * 1024) in
    let downtime_started = Sim.Engine.now engine in
    let phase1 () =
      let base = Net.Link.transfer_time link ws_bytes in
      match fault with
      | None -> ignore (Sim.Engine.run_for engine base)
      | Some f ->
        let rec attempt retry =
          let duration = Sim.Time.mul base (Sim.Fault.transmission_factor f) in
          match Sim.Fault.cut f ~now:(Sim.Engine.now engine) ~during:duration with
          | None -> ignore (Sim.Engine.run_for engine duration)
          | Some (after, outage) ->
            incr outages;
            Sim.Telemetry.incr m_outages;
            stalled := Sim.Time.add !stalled outage;
            ignore (Sim.Engine.run_for engine (Sim.Time.add after outage));
            if retry >= config.max_retransmits then raise (Abort (Outcome.Channel_down 1));
            incr retransmissions;
            Sim.Telemetry.incr m_retransmits;
            attempt (retry + 1)
        in
        attempt 0
    in
    (try
       phase1 ();
       let downtime = Sim.Time.diff (Sim.Engine.now engine) downtime_started in
       copy_range 0 ws;
       Vmm.Vm.adopt_guest_state dest ~from:source;
       (match Vmm.Vm.complete_incoming dest with Ok () -> () | Error e -> invalid_arg e);
       let resumed_at = Sim.Engine.now engine in
       Sim.Telemetry.incr m_rounds;
       Sim.Telemetry.add m_pages ws;
       Sim.Telemetry.add m_bytes ws_bytes;
       Sim.Telemetry.observe h_round (Sim.Time.to_s downtime);
       if Sim.Telemetry.enabled telemetry then
         Sim.Telemetry.span telemetry ~component:"migration" ~name:"stop_and_copy"
           ~start:downtime_started ~stop:resumed_at
           ~fields:
             [
               ("driver", "postcopy");
               ("pages_sent", string_of_int ws);
               ("bytes_sent", string_of_int ws_bytes);
             ]
           ();
       (* Phase 2: background pull of the rest; a fraction arrives as
          demand faults costing an extra round trip each. *)
       let remaining = pages - ws in
       let demand_faults =
         int_of_float (Float.round (config.demand_fault_rate *. float_of_int remaining))
       in
       let per_page_bytes = Memory.Page.size_bytes + config.page_header_bytes in
       let fault_penalty =
         Sim.Time.mul link.Net.Link.latency (2. *. float_of_int demand_faults)
       in
       (match fault with
       | None ->
         (* the historical single-shot pull - byte-identical timing *)
         let stream_time = Net.Link.transfer_time link (remaining * per_page_bytes) in
         ignore (Sim.Engine.run_for engine (Sim.Time.add stream_time fault_penalty));
         copy_range ws pages
       | Some f ->
         (* chunked pull so an outage can sever it mid-stream. The
            demand-fault penalty is spread per page so totals match the
            single-shot path when no fault fires. *)
         let penalty_per_page =
           if remaining = 0 then Sim.Time.zero
           else Sim.Time.mul fault_penalty (1. /. float_of_int remaining)
         in
         let next = ref ws in
         let rec pull ~recovering =
           if !next < pages then begin
             let hi = min pages (!next + config.pull_chunk_pages) in
             let base =
               Sim.Time.add
                 (Net.Link.transfer_time link ((hi - !next) * per_page_bytes))
                 (Sim.Time.mul penalty_per_page (float_of_int (hi - !next)))
             in
             let duration = Sim.Time.mul base (Sim.Fault.transmission_factor f) in
             match Sim.Fault.cut f ~now:(Sim.Engine.now engine) ~during:duration with
             | None ->
               ignore (Sim.Engine.run_for engine duration);
               copy_range !next hi;
               next := hi;
               pull ~recovering
             | Some (after, outage) ->
               incr outages;
               Sim.Telemetry.incr m_outages;
               stalled := Sim.Time.add !stalled outage;
               ignore (Sim.Engine.run_for engine after);
               (* the destination guest is now running on missing pages:
                  it stalls (postcopy-paused) until the channel returns *)
               let dest_was_running = Vmm.Vm.state dest = Vmm.Vm.Running in
               if dest_was_running then ignore (Vmm.Vm.pause dest);
               if config.auto_recover || recovering then begin
                 ignore (Sim.Engine.run_for engine outage);
                 if dest_was_running then ignore (Vmm.Vm.resume dest);
                 incr retransmissions;
                 Sim.Telemetry.incr m_retransmits;
                 pull ~recovering
               end
               else raise (Abort Outcome.Postcopy_paused)
           end
         in
         (try pull ~recovering:false
          with Abort Outcome.Postcopy_paused ->
            (* Park the destination and hand the monitor a resume
               closure: QEMU's postcopy-paused + migrate_recover. *)
            Vmm.Vm.set_recover_handler dest
              (Some
                 (fun () ->
                   match Vmm.Vm.resume dest with
                   | Error e -> Error e
                   | Ok () ->
                     (* further cuts during the recovery are waited out *)
                     pull ~recovering:true;
                     Ok ()));
            raise (Abort Outcome.Postcopy_paused)));
       let finished = Sim.Engine.now engine in
       Sim.Telemetry.incr m_rounds;
       Sim.Telemetry.add m_pages remaining;
       Sim.Telemetry.add m_bytes (remaining * per_page_bytes);
       Sim.Telemetry.add m_demand_faults demand_faults;
       Sim.Telemetry.observe h_round (Sim.Time.to_s (Sim.Time.diff finished resumed_at));
       if Sim.Telemetry.enabled telemetry then
         Sim.Telemetry.span telemetry ~component:"migration" ~name:"background_pull"
           ~start:resumed_at ~stop:finished
           ~fields:
             [
               ("driver", "postcopy");
               ("pages_sent", string_of_int remaining);
               ("bytes_sent", string_of_int (remaining * per_page_bytes));
               ("demand_faults", string_of_int demand_faults);
             ]
           ();
       let stats =
         {
           downtime;
           resume_time = Sim.Time.diff resumed_at started;
           background_time = Sim.Time.diff finished resumed_at;
           total_time = Sim.Time.diff finished started;
           demand_faults;
           total_pages_sent = pages;
         }
       in
       let outcome_label = if !retransmissions = 0 && !outages = 0 then "completed" else "recovered" in
       note_outcome outcome_label;
       if Sim.Telemetry.enabled telemetry then
         Sim.Telemetry.span telemetry ~component:"migration" ~name:"migrate"
           ~start:started ~stop:finished
           ~fields:
             [
               ("driver", "postcopy");
               ("outcome", outcome_label);
               ("pages_sent", string_of_int pages);
               ("demand_faults", string_of_int demand_faults);
             ]
           ();
       Ok
         (if !retransmissions = 0 && !outages = 0 then Outcome.Completed stats
          else
            Outcome.Recovered
              ( stats,
                {
                  Outcome.retransmissions = !retransmissions;
                  outages = !outages;
                  stalled = !stalled;
                } ))
     with Abort reason ->
       (match reason with
       | Outcome.Postcopy_paused ->
         (* the destination owns the guest now; the source stays paused *)
         ()
       | _ ->
         if !we_paused && Vmm.Vm.state source = Vmm.Vm.Paused then
           ignore (Vmm.Vm.resume source));
       note_outcome "aborted";
       if Sim.Telemetry.enabled telemetry then
         Sim.Telemetry.span telemetry ~component:"migration" ~name:"migrate"
           ~start:started ~stop:(Sim.Engine.now engine)
           ~fields:
             [ ("driver", "postcopy"); ("outcome", "aborted");
               ("reason", Outcome.reason_to_string reason) ]
           ();
       Ok
         (Outcome.Aborted
            {
              reason;
              source_resumed = Vmm.Vm.state source = Vmm.Vm.Running;
              retransmissions = !retransmissions;
              stalled = !stalled;
            }))
