(** QEMU Monitor.

    A textual command interpreter over a {!Vm.t}, implementing the
    subset of the QEMU human monitor protocol the paper's attack and
    introspection rely on (Section IV-A): [info
    status/qtree/blockstats/mtree/mem/network/cpus/migrate], [migrate],
    [migrate_cancel], [migrate_recover], [migrate_set_speed], [stop],
    [cont], and [quit].

    [migrate_cancel] flags the in-flight migration for abort at its
    next round boundary (honoured by {!Migration.Precopy});
    [migrate_recover], issued on a destination parked in the
    postcopy-paused state, resumes the interrupted page pull. [info
    migrate] additionally renders the stored statistics of the most
    recent migration (rounds, outcome, fault counters) when the
    migration library has recorded them via {!Vm.set_migration_stats}.

    [migrate] delegates to the handler installed with
    {!Vm.set_migrate_handler} (wired up by the migration library), just
    as real QEMU hands the work to its migration thread. *)

type response =
  | Ok_text of string  (** command executed; rendered output *)
  | Error_text of string  (** command failed or was not understood *)
  | Quit  (** [quit] was executed; the VM is now stopped *)

val execute : Vm.t -> string -> response
(** Run one monitor command line against the VM. *)

val execute_exn : Vm.t -> string -> string
(** [execute] but raising [Failure] on errors; convenient in scripts. *)

val banner : Vm.t -> string
(** The greeting a telnet connection to the monitor port prints. *)

val help_text : string
