type env = {
  ctx : Sim.Ctx.t;
  uplink : Net.Fabric.switch;
  host : Hypervisor.t;
  exec_level : Level.t;
  exec_ram : Memory.Address_space.t;
  exec_vm : Vm.t option;
  guestx : Vm.t option;
  nested_hv : Hypervisor.t option;
}

let get_ok what = function
  | Ok v -> v
  | Error e -> invalid_arg (Printf.sprintf "Layers.%s: %s" what e)

(* Every builder forks the caller's context: each topology is a fresh
   world - its own engine replayed from the context's seed, its own
   trace - so building several from one context gives each the schedule
   a fresh creation would. *)
let make_host ?ksm_config ctx =
  let ctx = Sim.Ctx.fork ctx in
  let uplink = Net.Fabric.Switch.create ctx ~name:"uplink" ~link:Net.Link.lan_1gbe in
  let host =
    Hypervisor.create_l0 ?ksm_config ctx ~name:"host" ~uplink ~addr:"192.168.1.100"
  in
  (ctx, uplink, host)

let guest_config () =
  Qemu_config.with_hostfwd (Qemu_config.default ~name:"guest0") [ (2222, 22) ]

let bare_metal ?ksm_config ?(workspace_mb = 1024) ctx =
  let ctx, uplink, host = make_host ?ksm_config ctx in
  let pages = workspace_mb * 1024 * 1024 / Memory.Page.size_bytes in
  let exec_ram = get_ok "bare_metal" (Hypervisor.host_buffer host ~name:"l0-workspace" ~pages) in
  {
    ctx;
    uplink;
    host;
    exec_level = Level.l0;
    exec_ram;
    exec_vm = None;
    guestx = None;
    nested_hv = None;
  }

let single_guest ?ksm_config ?config ctx =
  let ctx, uplink, host = make_host ?ksm_config ctx in
  let config = match config with Some c -> c | None -> guest_config () in
  let vm = get_ok "single_guest" (Hypervisor.launch host config) in
  {
    ctx;
    uplink;
    host;
    exec_level = Vm.level vm;
    exec_ram = Vm.ram vm;
    exec_vm = Some vm;
    guestx = None;
    nested_hv = None;
  }

let nested_guest ?ksm_config ?(guestx_memory_mb = 2048) ?config ctx =
  let ctx, uplink, host = make_host ?ksm_config ctx in
  let guestx_config =
    { (Qemu_config.default ~name:"guestx") with Qemu_config.memory_mb = guestx_memory_mb }
    |> fun c -> Qemu_config.with_nested_vmx c true
  in
  let guestx = get_ok "nested_guest(guestx)" (Hypervisor.launch host guestx_config) in
  let nested_hv =
    get_ok "nested_guest(hv)" (Hypervisor.create_nested ctx ~vm:guestx ~name:"guestx-kvm")
  in
  let config = match config with Some c -> c | None -> guest_config () in
  let vm = get_ok "nested_guest(l2)" (Hypervisor.launch nested_hv config) in
  {
    ctx;
    uplink;
    host;
    exec_level = Vm.level vm;
    exec_ram = Vm.ram vm;
    exec_vm = Some vm;
    guestx = Some guestx;
    nested_hv = Some nested_hv;
  }

type migration_pair = {
  mp_ctx : Sim.Ctx.t;
  mp_host : Hypervisor.t;
  mp_source : Vm.t;
  mp_dest : Vm.t;
  mp_guestx : Vm.t option;
  mp_nested_hv : Hypervisor.t option;
}

let migration_pair ?ksm_config ?config ?(incoming_port = 5601) ~nested_dest ctx =
  let ctx, _uplink, host = make_host ?ksm_config ctx in
  let config = match config with Some c -> c | None -> guest_config () in
  let source = get_ok "migration_pair(source)" (Hypervisor.launch host config) in
  let dest_config =
    Qemu_config.with_incoming (Qemu_config.with_name config "dest") ~port:incoming_port
  in
  if not nested_dest then begin
    let dest = get_ok "migration_pair(dest)" (Hypervisor.launch host dest_config) in
    { mp_ctx = ctx; mp_host = host; mp_source = source; mp_dest = dest;
      mp_guestx = None; mp_nested_hv = None }
  end
  else begin
    let guestx_config =
      Qemu_config.with_nested_vmx
        { (Qemu_config.default ~name:"guestx") with
          Qemu_config.memory_mb = config.Qemu_config.memory_mb * 2;
          monitor_port = config.Qemu_config.monitor_port + 1;
        }
        true
    in
    let guestx = get_ok "migration_pair(guestx)" (Hypervisor.launch host guestx_config) in
    let nested_hv =
      get_ok "migration_pair(hv)" (Hypervisor.create_nested ctx ~vm:guestx ~name:"guestx-kvm")
    in
    let dest = get_ok "migration_pair(nested dest)" (Hypervisor.launch nested_hv dest_config) in
    { mp_ctx = ctx; mp_host = host; mp_source = source; mp_dest = dest;
      mp_guestx = Some guestx; mp_nested_hv = Some nested_hv }
  end

let of_level ?ksm_config ctx level =
  match Level.to_int level with
  | 0 -> bare_metal ?ksm_config ctx
  | 1 -> single_guest ?ksm_config ctx
  | 2 -> nested_guest ?ksm_config ctx
  | n -> invalid_arg (Printf.sprintf "Layers.of_level: L%d topology not predefined" n)
