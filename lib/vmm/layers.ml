type env = {
  engine : Sim.Engine.t;
  trace : Sim.Trace.t;
  uplink : Net.Fabric.switch;
  host : Hypervisor.t;
  exec_level : Level.t;
  exec_ram : Memory.Address_space.t;
  exec_vm : Vm.t option;
  guestx : Vm.t option;
  nested_hv : Hypervisor.t option;
}

let get_ok what = function
  | Ok v -> v
  | Error e -> invalid_arg (Printf.sprintf "Layers.%s: %s" what e)

let make_host ?(seed = 42) ?ksm_config ?telemetry () =
  let engine = Sim.Engine.create ~seed () in
  let trace = Sim.Trace.create () in
  let uplink =
    Net.Fabric.Switch.create ?telemetry engine ~name:"uplink" ~link:Net.Link.lan_1gbe
  in
  let host =
    Hypervisor.create_l0 ?ksm_config ~trace ?telemetry engine ~name:"host" ~uplink
      ~addr:"192.168.1.100"
  in
  (engine, trace, uplink, host)

let guest_config () =
  Qemu_config.with_hostfwd (Qemu_config.default ~name:"guest0") [ (2222, 22) ]

let bare_metal ?seed ?ksm_config ?telemetry ?(workspace_mb = 1024) () =
  let engine, trace, uplink, host = make_host ?seed ?ksm_config ?telemetry () in
  let pages = workspace_mb * 1024 * 1024 / Memory.Page.size_bytes in
  let exec_ram = get_ok "bare_metal" (Hypervisor.host_buffer host ~name:"l0-workspace" ~pages) in
  {
    engine;
    trace;
    uplink;
    host;
    exec_level = Level.l0;
    exec_ram;
    exec_vm = None;
    guestx = None;
    nested_hv = None;
  }

let single_guest ?seed ?ksm_config ?telemetry ?config () =
  let engine, trace, uplink, host = make_host ?seed ?ksm_config ?telemetry () in
  let config = match config with Some c -> c | None -> guest_config () in
  let vm = get_ok "single_guest" (Hypervisor.launch host config) in
  {
    engine;
    trace;
    uplink;
    host;
    exec_level = Vm.level vm;
    exec_ram = Vm.ram vm;
    exec_vm = Some vm;
    guestx = None;
    nested_hv = None;
  }

let nested_guest ?seed ?ksm_config ?telemetry ?(guestx_memory_mb = 2048) ?config () =
  let engine, trace, uplink, host = make_host ?seed ?ksm_config ?telemetry () in
  let guestx_config =
    { (Qemu_config.default ~name:"guestx") with Qemu_config.memory_mb = guestx_memory_mb }
    |> fun c -> Qemu_config.with_nested_vmx c true
  in
  let guestx = get_ok "nested_guest(guestx)" (Hypervisor.launch host guestx_config) in
  let nested_hv =
    get_ok "nested_guest(hv)"
      (Hypervisor.create_nested ~trace ?telemetry engine ~vm:guestx ~name:"guestx-kvm")
  in
  let config = match config with Some c -> c | None -> guest_config () in
  let vm = get_ok "nested_guest(l2)" (Hypervisor.launch nested_hv config) in
  {
    engine;
    trace;
    uplink;
    host;
    exec_level = Vm.level vm;
    exec_ram = Vm.ram vm;
    exec_vm = Some vm;
    guestx = Some guestx;
    nested_hv = Some nested_hv;
  }

type migration_pair = {
  mp_engine : Sim.Engine.t;
  mp_trace : Sim.Trace.t;
  mp_host : Hypervisor.t;
  mp_source : Vm.t;
  mp_dest : Vm.t;
  mp_guestx : Vm.t option;
  mp_nested_hv : Hypervisor.t option;
}

let migration_pair ?seed ?ksm_config ?telemetry ?config ?(incoming_port = 5601) ~nested_dest () =
  let engine, trace, _uplink, host = make_host ?seed ?ksm_config ?telemetry () in
  let config = match config with Some c -> c | None -> guest_config () in
  let source = get_ok "migration_pair(source)" (Hypervisor.launch host config) in
  let dest_config =
    Qemu_config.with_incoming (Qemu_config.with_name config "dest") ~port:incoming_port
  in
  if not nested_dest then begin
    let dest = get_ok "migration_pair(dest)" (Hypervisor.launch host dest_config) in
    { mp_engine = engine; mp_trace = trace; mp_host = host; mp_source = source; mp_dest = dest;
      mp_guestx = None; mp_nested_hv = None }
  end
  else begin
    let guestx_config =
      Qemu_config.with_nested_vmx
        { (Qemu_config.default ~name:"guestx") with
          Qemu_config.memory_mb = config.Qemu_config.memory_mb * 2;
          monitor_port = config.Qemu_config.monitor_port + 1;
        }
        true
    in
    let guestx = get_ok "migration_pair(guestx)" (Hypervisor.launch host guestx_config) in
    let nested_hv =
      get_ok "migration_pair(hv)"
        (Hypervisor.create_nested ~trace ?telemetry engine ~vm:guestx ~name:"guestx-kvm")
    in
    let dest = get_ok "migration_pair(nested dest)" (Hypervisor.launch nested_hv dest_config) in
    { mp_engine = engine; mp_trace = trace; mp_host = host; mp_source = source; mp_dest = dest;
      mp_guestx = Some guestx; mp_nested_hv = Some nested_hv }
  end

let of_level ?seed ?ksm_config ?telemetry level =
  match Level.to_int level with
  | 0 -> bare_metal ?seed ?ksm_config ?telemetry ()
  | 1 -> single_guest ?seed ?ksm_config ?telemetry ()
  | 2 -> nested_guest ?seed ?ksm_config ?telemetry ()
  | n -> invalid_arg (Printf.sprintf "Layers.of_level: L%d topology not predefined" n)
