(** Virtual machines.

    A [Vm.t] is the simulated counterpart of one QEMU process: a
    configuration, a RAM address space, a lifecycle state, a network
    identity, a guest OS (process table, loaded files), and I/O
    counters. VMs are created through {!Hypervisor.launch}; this module
    holds everything that lives per-VM. *)

type state =
  | Created  (** configured but not started *)
  | Incoming  (** paused, listening for migration data *)
  | Running
  | Paused
  | Stopped  (** dead; RAM released *)

val state_to_string : state -> string

type io_counters = {
  mutable block_read_ops : int;
  mutable block_write_ops : int;
  mutable net_tx_bytes : int;
  mutable net_rx_bytes : int;
  mutable vm_exits : int;
  mutable cpu_time : Sim.Time.t;
}

type t

(** {2 Construction (used by Hypervisor)} *)

val make :
  Sim.Ctx.t ->
  config:Qemu_config.t ->
  level:Level.t ->
  ram:Memory.Address_space.t ->
  disk:Disk_image.t ->
  qemu_pid:Process_table.pid ->
  addr:Net.Packet.addr ->
  t
(** The VM lives on the context's engine, emits state changes into its
    trace, and registers its per-level exit counters against its sink. *)

(** {2 Identity and configuration} *)

val name : t -> string
val engine : t -> Sim.Engine.t
val config : t -> Qemu_config.t
val set_config : t -> Qemu_config.t -> unit
val level : t -> Level.t
(** The level the guest's code runs at (1 for a host VM, 2 nested). *)

val ram : t -> Memory.Address_space.t

val disk : t -> Disk_image.t

val disk_write : t -> bytes:int -> unit
(** Guest block write: allocates image clusters and counts one write
    operation. *)

val qemu_pid : t -> Process_table.pid
val set_qemu_pid : t -> Process_table.pid -> unit
val addr : t -> Net.Packet.addr
val io : t -> io_counters

val telemetry : t -> Sim.Telemetry.t option
(** The sink given at construction (the owning hypervisor's) - how
    downstream layers (migration drivers, workloads) reach the metrics
    registry without extra plumbing. *)

val record_exits : t -> int -> unit
(** Charge [n] hardware VM exits to this VM: bumps [io.vm_exits] and the
    [vmm_exits_total{level=...}] counter. *)

val record_nested_fanout : t -> int -> unit
(** Count L0-level exits induced by nested exit multiplication (the
    paper's ~19x fan-out per L2 exit) under
    [vmm_nested_exit_fanout_total{level=...}]. *)

val guest_processes : t -> Process_table.t

val os_release : t -> string
val set_os_release : t -> string -> unit
(** Guest OS identification ("Fedora 22, 4.4.14-200.fc22.x86_64" by
    default) - what a VMI fingerprint reads, and what an impersonating
    RITM copies. *)

(** {2 Lifecycle} *)

val state : t -> state
val start : t -> (unit, string) result
(** [Created -> Running]; an [Incoming] VM cannot be started manually. *)

val pause : t -> (unit, string) result
val resume : t -> (unit, string) result
val await_incoming : t -> (unit, string) result
(** [Created -> Incoming]: the destination side of a migration. *)

val complete_incoming : t -> (unit, string) result
(** [Incoming -> Running]: migration finished; device state loaded. *)

val stop : t -> unit
(** Any state -> [Stopped]. Idempotent. *)

val reboot_guest : t -> (unit, string) result
(** Reboot the guest OS inside a running VM: the QEMU process (and
    hence the VM's position in any nesting) is untouched, guest memory
    is wiped to zero, and a fresh process table comes up. This is why
    CloudSkulk "will still survive" a victim reboot (paper Section
    VII-A): rebooting L2 never escapes GuestX. *)

val is_alive : t -> bool

(** {2 Network} *)

val node : t -> Net.Fabric.Node.t option
val set_node : t -> Net.Fabric.Node.t -> unit

(** {2 Guest memory helpers} *)

val load_file : t -> Memory.File_image.t -> (int, string) result
(** Load a file image into guest RAM at a fresh offset (the guest page
    cache); returns the page offset. Fails when RAM has no room or a
    file of that name is already loaded. *)

val file_offset : t -> string -> int option
(** Where a previously loaded file sits. *)

val unload_file : t -> string -> unit
(** Forget the bookkeeping (contents stay until overwritten). *)

val loaded_files : t -> (string * int * int) list
(** [(name, page offset, pages)] for each loaded file, sorted by name
    (never hash-table order, so listings are deterministic). *)

val adopt_guest_state : t -> from:t -> unit
(** Take over the guest OS identity of another VM: OS release, process
    table, loaded-file map. Called by migration when the destination
    becomes the running instance of the source's OS. *)

val touch_pages : t -> Sim.Rng.t -> count:int -> unit
(** Dirty [count] randomly chosen RAM pages - the write side of a
    running workload. *)

(** {2 CPU throttling}

    QEMU's auto-converge forces a stubborn pre-copy migration to finish
    by stealing ever-larger slices of the guest's vCPU time, slowing its
    dirty rate. Workload drivers honour this: a throttled guest skips a
    corresponding fraction of its work. *)

val cpu_throttle : t -> float
(** Fraction of vCPU time currently withheld, in [0, 0.99]. *)

val set_cpu_throttle : t -> float -> unit
(** Clamped to [0, 0.99]. *)

(** {2 Guest-observed time}

    A hypervisor controls its guest's clock sources (TSC scaling, kvmclock).
    [guest_time_scale] is the factor between real elapsed time and what
    code {e inside} the guest measures; a malicious L1 sets it below 1.0
    so that nested-virtualization overhead disappears from guest-side
    timing - the paper's Section VI-A reason to distrust detection from
    L2. *)

val guest_time_scale : t -> float
val set_guest_time_scale : t -> float -> unit
(** Raises [Invalid_argument] unless the scale is positive. *)

val observe_duration : t -> Sim.Time.t -> Sim.Time.t
(** [observe_duration vm d] is what a timing loop inside the guest
    reads when [d] of real (L0) time passes. *)

val spoofs_benchmarks : t -> bool
val set_spoofs_benchmarks : t -> bool -> unit
(** A hypervisor that controls this VM can intercept known benchmark
    binaries and fake their output outright (paper Section VI-A). The
    flag lives on the VM - not in any module-level registry - so
    parallel trials never share detector state. *)

(** {2 Write-syscall tapping}

    A hypervisor that controls this VM can trap its write system calls
    and observe data {e before} the guest encrypts it (paper Section
    IV-B-1). Guest applications report their writes through
    {!emit_write}; installed taps see the plaintext. *)

val trap_write_syscalls : t -> name:string -> (string -> unit) -> unit
val untrap_write_syscalls : t -> name:string -> unit
val emit_write : t -> string -> unit
(** Called by simulated guest applications on every write syscall. *)

(** {2 Migration hook} *)

val set_migrate_handler :
  t -> (host:string -> port:int -> (unit, string) result) -> unit

val migrate_handler :
  t -> (host:string -> port:int -> (unit, string) result) option

(** {2 Migration control plane}

    State the monitor's [migrate_cancel] / [migrate_recover] commands
    and the migration drivers share. The VM layer only stores it; the
    migration library gives it meaning. *)

val request_migrate_cancel : t -> unit
(** Ask the in-flight migration (if any) to abort at its next round
    boundary - the monitor's [migrate_cancel]. Callable from an engine
    event scheduled mid-migration. *)

val migrate_cancel_requested : t -> bool

val take_migrate_cancel : t -> bool
(** Read and clear the cancel request (the migration driver's side). *)

val set_recover_handler : t -> (unit -> (unit, string) result) option -> unit
(** Installed by a post-copy migration that parked this (destination)
    VM in the postcopy-paused state; invoking it pulls the remaining
    pages and resumes the guest - the monitor's [migrate_recover]. *)

val recover_handler : t -> (unit -> (unit, string) result) option

val set_migration_stats : t -> string -> unit
(** Rendered summary of the most recent migration involving this VM
    (outcome, rounds, fault counters); shown by [info migrate]. *)

val migration_stats : t -> string option

val pp : Format.formatter -> t -> unit
