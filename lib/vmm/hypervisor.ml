type backing =
  | Physical of Memory.Frame_table.t
  | Guest of { ram : Memory.Address_space.t; mutable floor : int; mutable ceiling : int }
      (** top-down allocator: [floor] is the lowest page nested RAM may
          use (the enclosing guest's own OS lives below), [ceiling] the
          next free page going down. *)

type t = {
  ctx : Sim.Ctx.t;
  engine : Sim.Engine.t;
  hv_name : string;
  level : Level.t;
  backing : backing;
  processes : Process_table.t;
  switch : Net.Fabric.switch;
  uplink : Net.Fabric.switch;
  gateway : Net.Fabric.Node.t;
  ksm : Memory.Ksm.t option;
  trace : Sim.Trace.t option;
  telemetry : Sim.Telemetry.t option;
  m_kills : Sim.Telemetry.counter;
  g_vms : Sim.Telemetry.gauge;
  use_vtx : bool;
  images : (string, Disk_image.t) Hashtbl.t;
  mutable vm_list : Vm.t list;
  mutable buffers : Memory.Address_space.t list;
  mutable next_vm_index : int;
}

let emit t fmt =
  match t.trace with
  | None -> Format.ikfprintf (fun _ -> ()) Format.str_formatter fmt
  | Some tr ->
    Sim.Trace.emitf tr (Sim.Engine.now t.engine) Sim.Trace.Info ~component:("hv:" ^ t.hv_name) fmt

let create_l0 ?(ram_gb = 16) ?(ksm_config = Memory.Ksm.default_config) ctx ~name ~uplink
    ~addr =
  let engine = Sim.Ctx.engine ctx in
  let telemetry = Sim.Ctx.telemetry ctx in
  let capacity_frames = ram_gb * 1024 * 1024 * 1024 / Memory.Page.size_bytes in
  let table = Memory.Frame_table.create ~capacity_frames ctx in
  let switch = Net.Fabric.Switch.create ctx ~name:(name ^ "-br0") ~link:Net.Link.loopback in
  let gateway = Net.Fabric.Node.create engine ~name:(name ^ "-gw") ~addr in
  Net.Fabric.Node.attach gateway uplink;
  Net.Fabric.Node.attach gateway switch;
  let processes = Process_table.create engine in
  ignore (Process_table.spawn processes ~name:"systemd" ~cmdline:"/usr/lib/systemd/systemd");
  ignore (Process_table.spawn processes ~name:"libvirtd" ~cmdline:"/usr/sbin/libvirtd");
  let ksm = Memory.Ksm.create ~config:ksm_config ctx table in
  Memory.Ksm.start ksm;
  {
    ctx;
    engine;
    hv_name = name;
    level = Level.l0;
    backing = Physical table;
    processes;
    switch;
    uplink;
    gateway;
    ksm = Some ksm;
    trace = Some (Sim.Ctx.trace ctx);
    telemetry;
    m_kills =
      Sim.Telemetry.counter telemetry ~labels:[ ("hv", name) ] ~component:"vmm" "vm_kills_total";
    g_vms =
      Sim.Telemetry.gauge telemetry ~labels:[ ("hv", name) ] ~component:"vmm" "vms_running";
    use_vtx = true;
    images = Hashtbl.create 8;
    vm_list = [];
    buffers = [];
    next_vm_index = 1;
  }

let create_nested ?(use_vtx = true) ctx ~vm ~name =
  let engine = Sim.Ctx.engine ctx in
  let telemetry = Sim.Ctx.telemetry ctx in
  let cfg = Vm.config vm in
  if not cfg.Qemu_config.nested_vmx then
    Error (Vm.name vm ^ ": CPU has no nested VMX (+vmx missing); cannot run a hypervisor")
  else if Vm.state vm <> Vm.Running then
    Error (Vm.name vm ^ ": VM must be running to host a nested hypervisor")
  else
    match Vm.node vm with
    | None -> Error (Vm.name vm ^ ": VM has no network node")
    | Some gateway ->
      let pages = Memory.Address_space.pages (Vm.ram vm) in
      let switch =
        Net.Fabric.Switch.create ctx ~name:(name ^ "-br0") ~link:Net.Link.loopback
      in
      Net.Fabric.Node.attach gateway switch;
      Ok
        {
          ctx;
          engine;
          hv_name = name;
          level = Vm.level vm;
          backing =
            (* The enclosing guest's kernel and userspace occupy the low
               quarter of its RAM; nested VM RAM comes from the top. *)
            Guest { ram = Vm.ram vm; floor = pages / 4; ceiling = pages };
          processes = Vm.guest_processes vm;
          switch;
          (* a nested hypervisor's "outside world" is its enclosing
             guest's own virtual network *)
          uplink = switch;
          gateway;
          ksm = None;
          trace = Some (Sim.Ctx.trace ctx);
          telemetry;
          m_kills =
            Sim.Telemetry.counter telemetry ~labels:[ ("hv", name) ] ~component:"vmm"
              "vm_kills_total";
          g_vms =
            Sim.Telemetry.gauge telemetry ~labels:[ ("hv", name) ] ~component:"vmm"
              "vms_running";
          use_vtx;
          images = Hashtbl.create 8;
          vm_list = [];
          buffers = [];
          next_vm_index = 1;
        }

let name t = t.hv_name
let uses_vtx t = t.use_vtx
let level t = t.level
let engine t = t.engine
let processes t = t.processes
let switch t = t.switch
let uplink t = t.uplink
let gateway t = t.gateway
let ksm t = t.ksm
let frame_table t = match t.backing with Physical ft -> Some ft | Guest _ -> None
let trace t = t.trace
let telemetry t = t.telemetry
let vms t = t.vm_list
let find_vm t vm_name = List.find_opt (fun vm -> String.equal (Vm.name vm) vm_name) t.vm_list

let ram_free_pages t =
  match t.backing with
  | Physical _ ->
    (* capacity is enforced lazily by the frame table on allocation *)
    max_int
  | Guest g -> g.ceiling - g.floor

let alloc_ram t ~vm_name ~pages =
  match t.backing with
  | Physical ft -> (
    try Ok (Memory.Address_space.create_root ft ~name:(vm_name ^ "-ram") ~pages)
    with Memory.Frame_table.Out_of_memory_frames -> Error "host out of memory")
  | Guest g ->
    if g.ceiling - g.floor < pages then
      Error
        (Printf.sprintf "nested hypervisor %s: %d pages requested, %d available" t.hv_name pages
           (g.ceiling - g.floor))
    else begin
      (* With hardware VT-x, launching the nested guest plants a VMCS in
         the enclosing guest's RAM, one page below the allocated block -
         the structure a Graziano-style memory-forensics scan finds. *)
      let vmcs_pages = if t.use_vtx then 1 else 0 in
      g.ceiling <- g.ceiling - pages - vmcs_pages;
      if t.use_vtx then
        ignore
          (Memory.Address_space.write g.ram g.ceiling
             (Vmcs.signature_content ~slot:t.next_vm_index));
      Ok
        (Memory.Address_space.window g.ram ~name:(vm_name ^ "-ram")
           ~offset:(g.ceiling + vmcs_pages) ~pages)
    end

let release_ram t space =
  match t.backing with
  | Physical ft ->
    if Memory.Address_space.is_root space then
      for i = 0 to Memory.Address_space.pages space - 1 do
        Memory.Frame_table.decref ft (Memory.Address_space.frame_at space i)
      done
  | Guest _ ->
    (* Window pages return to the enclosing guest; the simple top-down
       allocator does not reclaim, which matches the short-lived use in
       every experiment. *)
    ()

let install_hostfwd t (vm : Vm.t) =
  let cfg = Vm.config vm in
  List.iter
    (fun (host_port, guest_port) ->
      Net.Fabric.Node.add_forward t.gateway ~from_port:host_port
        ~to_:(Net.Packet.endpoint (Vm.addr vm) guest_port)
        ~via:t.switch)
    cfg.Qemu_config.netdev.Qemu_config.hostfwd

let remove_hostfwd t (vm : Vm.t) =
  let cfg = Vm.config vm in
  List.iter
    (fun (host_port, _) -> Net.Fabric.Node.remove_forward t.gateway ~from_port:host_port)
    cfg.Qemu_config.netdev.Qemu_config.hostfwd

let launch t (config : Qemu_config.t) =
  let vm_name = config.Qemu_config.vm_name in
  if find_vm t vm_name <> None then Error (vm_name ^ ": a VM with this name already exists")
  else
    match alloc_ram t ~vm_name ~pages:(Qemu_config.memory_pages config) with
    | Error e -> Error e
    | Ok ram ->
      let proc =
        Process_table.spawn t.processes ~name:"qemu-system-x86_64"
          ~cmdline:(Qemu_config.to_cmdline config)
      in
      let disk =
        let spec = config.Qemu_config.disk in
        match Hashtbl.find_opt t.images spec.Qemu_config.image with
        | Some img -> img
        | None ->
          let fmt =
            match Disk_image.format_of_string spec.Qemu_config.format with
            | Ok f -> f
            | Error _ -> Disk_image.Qcow2
          in
          let img =
            Disk_image.create ~name:spec.Qemu_config.image ~format:fmt
              ~virtual_size_gb:spec.Qemu_config.size_gb
          in
          Hashtbl.replace t.images spec.Qemu_config.image img;
          img
      in
      let addr = Printf.sprintf "10.%d.0.%d" (Level.to_int t.level) t.next_vm_index in
      t.next_vm_index <- t.next_vm_index + 1;
      let vm =
        Vm.make t.ctx ~config ~level:(Level.deeper t.level) ~ram ~disk ~qemu_pid:proc.pid
          ~addr
      in
      let node = Net.Fabric.Node.create t.engine ~name:vm_name ~addr in
      Net.Fabric.Node.attach node t.switch;
      Vm.set_node vm node;
      install_hostfwd t vm;
      (match t.ksm with
      | Some ksm when Memory.Address_space.is_root ram -> Memory.Ksm.register ksm ram
      | Some _ | None -> ());
      let started =
        match config.Qemu_config.incoming with
        | Some _ -> Vm.await_incoming vm
        | None -> Vm.start vm
      in
      (match started with
      | Ok () -> ()
      | Error e ->
        (* freshly created VMs always accept these transitions *)
        invalid_arg e);
      (* QEMU process startup (option parsing, device realisation, KVM
         init). Guest OS boot time is not modelled: as in the paper's
         installation-time accounting, VMs are prepared ahead of the
         measured window. *)
      ignore (Sim.Engine.run_for t.engine (Sim.Time.ms 300.));
      t.vm_list <- t.vm_list @ [ vm ];
      Sim.Telemetry.incr
        (Sim.Telemetry.counter t.telemetry
           ~labels:[ ("level", string_of_int (Level.to_int (Vm.level vm))) ]
           ~component:"vmm" "vm_launches_total");
      Sim.Telemetry.set t.g_vms (float_of_int (List.length t.vm_list));
      emit t "launched %s (pid %d, addr %s, %a)" vm_name proc.pid addr Level.pp (Vm.level vm);
      Ok vm

let kill_vm t vm =
  if List.memq vm t.vm_list then begin
    t.vm_list <- List.filter (fun v -> not (v == vm)) t.vm_list;
    remove_hostfwd t vm;
    (match Vm.node vm with
    | Some node -> Net.Fabric.Node.detach node t.switch
    | None -> ());
    (match t.ksm with
    | Some ksm when Memory.Address_space.is_root (Vm.ram vm) ->
      Memory.Ksm.unregister ksm (Vm.ram vm)
    | Some _ | None -> ());
    ignore (Process_table.kill t.processes (Vm.qemu_pid vm));
    Vm.stop vm;
    release_ram t (Vm.ram vm);
    Sim.Telemetry.incr t.m_kills;
    Sim.Telemetry.set t.g_vms (float_of_int (List.length t.vm_list));
    emit t "killed %s" (Vm.name vm)
  end

let image t name = Hashtbl.find_opt t.images name

let qemu_img_info t name =
  match image t name with
  | Some img -> Ok (Disk_image.qemu_img_info img)
  | None -> Error (Printf.sprintf "qemu-img: could not open '%s': no such file" name)

let host_buffer t ~name ~pages =
  match t.backing with
  | Guest _ -> Error "host_buffer: only supported on the physical (L0) hypervisor"
  | Physical ft -> (
    try
      let space = Memory.Address_space.create_root ft ~name ~pages in
      (match t.ksm with Some ksm -> Memory.Ksm.register ksm space | None -> ());
      t.buffers <- space :: t.buffers;
      Ok space
    with Memory.Frame_table.Out_of_memory_frames -> Error "host out of memory")

let release_buffer t space =
  if List.memq space t.buffers then begin
    t.buffers <- List.filter (fun b -> not (b == space)) t.buffers;
    (match t.ksm with Some ksm -> Memory.Ksm.unregister ksm space | None -> ());
    release_ram t space
  end
