type response =
  | Ok_text of string
  | Error_text of string
  | Quit

let banner vm =
  Printf.sprintf "QEMU 2.9.50 monitor - type 'help' for more information\n(qemu) [%s]" (Vm.name vm)

let help_text =
  String.concat "\n"
    [
      "info status        -- show the current VM status";
      "info qtree         -- show device tree";
      "info blockstats    -- show block device statistics";
      "info mtree         -- show memory tree";
      "info mem           -- show active virtual memory mappings";
      "info network       -- show network state";
      "info cpus          -- show infos for each CPU";
      "info migrate       -- show migration status";
      "info version       -- show the QEMU version";
      "info name          -- show the current VM name";
      "info uuid          -- show the current VM UUID";
      "info kvm           -- show KVM information";
      "migrate [-d] uri   -- migrate to uri (tcp:host:port)";
      "migrate_cancel     -- cancel the current VM migration";
      "migrate_recover    -- continue a paused incoming postcopy migration";
      "migrate_set_speed  -- set maximum migration speed";
      "stop               -- pause emulation";
      "cont               -- resume emulation";
      "quit               -- quit the emulator";
    ]

let info_status vm =
  let status =
    match Vm.state vm with
    | Vm.Running -> "running"
    | Vm.Paused -> "paused"
    | Vm.Incoming -> "paused (incoming migration)"
    | Vm.Created -> "prelaunch"
    | Vm.Stopped -> "shutdown"
  in
  Printf.sprintf "VM status: %s" status

let info_qtree vm =
  let cfg = Vm.config vm in
  let open Qemu_config in
  String.concat "\n"
    [
      Printf.sprintf "bus: main-system-bus (machine %s)" cfg.machine;
      "  type System";
      Printf.sprintf "  dev: %s, id \"\"" cfg.netdev.model;
      Printf.sprintf "    mac = \"%s\"" cfg.netdev.mac;
      "  dev: virtio-blk-pci, id \"\"";
      Printf.sprintf "    drive = \"%s\" (%s, %.0fG)" cfg.disk.image cfg.disk.format
        cfg.disk.size_gb;
      Printf.sprintf "  dev: kvm-pit, id \"\" (kvm: %b)" cfg.accel_kvm;
    ]

let info_blockstats vm =
  let io = Vm.io vm in
  let cfg = Vm.config vm in
  Printf.sprintf "virtio0 (%s): rd_operations=%d wr_operations=%d allocated=%d"
    cfg.Qemu_config.disk.Qemu_config.image io.Vm.block_read_ops io.Vm.block_write_ops
    (Disk_image.allocated_bytes (Vm.disk vm))

let info_mtree vm =
  let cfg = Vm.config vm in
  let bytes = cfg.Qemu_config.memory_mb * 1024 * 1024 in
  String.concat "\n"
    [
      "memory";
      Printf.sprintf "  0000000000000000-%016x (prio 0, ram): pc.ram" (bytes - 1);
      Printf.sprintf "  (size %d MB, %d pages)" cfg.Qemu_config.memory_mb
        (Qemu_config.memory_pages cfg);
    ]

let info_mem vm =
  let ram = Vm.ram vm in
  Printf.sprintf "guest RAM: %d pages, %d currently shared (KSM)"
    (Memory.Address_space.pages ram)
    (Memory.Address_space.shared_page_count ram)

let info_network vm =
  let cfg = Vm.config vm in
  let io = Vm.io vm in
  let open Qemu_config in
  let fwd =
    match cfg.netdev.hostfwd with
    | [] -> "no host forwarding"
    | rules ->
      String.concat ", "
        (List.map (fun (h, g) -> Printf.sprintf "hostfwd tcp::%d->:%d" h g) rules)
  in
  Printf.sprintf "net0: model=%s,macaddr=%s (%s)\n  tx=%dB rx=%dB" cfg.netdev.model
    cfg.netdev.mac fwd io.Vm.net_tx_bytes io.Vm.net_rx_bytes

let info_cpus vm =
  let cfg = Vm.config vm in
  let io = Vm.io vm in
  let lines =
    List.init cfg.Qemu_config.vcpus (fun i ->
        Printf.sprintf "* CPU #%d: pc=0x%08x thread_id=%d" i (0xfff0 + i) (Vm.qemu_pid vm + i))
  in
  String.concat "\n" (lines @ [ Printf.sprintf "(vm exits: %d)" io.Vm.vm_exits ])

let info_migrate vm =
  match (Vm.state vm, Vm.migration_stats vm) with
  | Vm.Incoming, _ -> "Migration status: waiting for incoming migration"
  | _, Some stats -> stats
  | (Vm.Running | Vm.Paused | Vm.Created | Vm.Stopped), None -> "Migration status: none"

let parse_migrate_uri uri =
  match String.split_on_char ':' uri with
  | [ "tcp"; host; port ] -> (
    match int_of_string_opt port with
    | Some p -> Ok (host, p)
    | None -> Error (Printf.sprintf "invalid port in uri '%s'" uri))
  | _ -> Error (Printf.sprintf "unsupported migration uri '%s' (expected tcp:host:port)" uri)

let do_migrate vm uri =
  match parse_migrate_uri uri with
  | Error e -> Error_text e
  | Ok (host, port) -> (
    match Vm.migrate_handler vm with
    | None -> Error_text "migration backend not available"
    | Some handler -> (
      match handler ~host ~port with
      | Ok () -> Ok_text "migration completed"
      | Error e -> Error_text ("migration failed: " ^ e)))

let words line = String.split_on_char ' ' line |> List.filter (fun w -> w <> "")

let execute vm line =
  (* telnet round trip + command dispatch on the monitor socket *)
  ignore (Sim.Engine.run_for (Vm.engine vm) (Sim.Time.ms 5.));
  (match words line with
  | [] -> ()
  | cmd :: _ ->
    Sim.Telemetry.incr
      (Sim.Telemetry.counter (Vm.telemetry vm) ~labels:[ ("cmd", cmd) ] ~component:"vmm"
         "monitor_commands_total"));
  match words line with
  | [] -> Ok_text ""
  | [ "help" ] -> Ok_text help_text
  | [ "info"; "status" ] -> Ok_text (info_status vm)
  | [ "info"; "qtree" ] -> Ok_text (info_qtree vm)
  | [ "info"; "blockstats" ] -> Ok_text (info_blockstats vm)
  | [ "info"; "mtree" ] -> Ok_text (info_mtree vm)
  | [ "info"; "mem" ] -> Ok_text (info_mem vm)
  | [ "info"; "network" ] -> Ok_text (info_network vm)
  | [ "info"; "cpus" ] -> Ok_text (info_cpus vm)
  | [ "info"; "migrate" ] -> Ok_text (info_migrate vm)
  | [ "info"; "version" ] -> Ok_text "2.9.50 (v2.9.0-989-g43771d5)"
  | [ "info"; "name" ] -> Ok_text (Vm.name vm)
  | [ "info"; "kvm" ] ->
    Ok_text
      (if (Vm.config vm).Qemu_config.accel_kvm then "kvm support: enabled"
       else "kvm support: disabled")
  | [ "info"; "uuid" ] ->
    (* derived from the name so it is stable across reconnects *)
    let h = Hashtbl.hash (Vm.name vm) in
    Ok_text (Printf.sprintf "%08x-0000-4000-8000-%012x" (h land 0xFFFFFFFF) (h * 2654435761))
  | [ "info"; topic ] -> Error_text (Printf.sprintf "info: unknown topic '%s'" topic)
  | [ "migrate"; uri ] -> do_migrate vm uri
  | [ "migrate"; "-d"; uri ] -> do_migrate vm uri
  | [ "migrate_cancel" ] ->
    (* sets a flag the migration driver honours at its next round
       boundary; a no-op (like real QEMU) when nothing is in flight *)
    Vm.request_migrate_cancel vm;
    Ok_text ""
  | [ "migrate_recover" ] | [ "migrate_recover"; _ ] -> (
    match Vm.recover_handler vm with
    | None -> Error_text "no postcopy migration in postcopy-paused state"
    | Some recover -> (
      Vm.set_recover_handler vm None;
      match recover () with
      | Ok () -> Ok_text "postcopy migration recovered"
      | Error e -> Error_text ("migrate_recover: " ^ e)))
  | [ "migrate_set_speed"; _speed ] -> Ok_text ""
  | [ "stop" ] -> (
    match Vm.pause vm with Ok () -> Ok_text "" | Error e -> Error_text e)
  | [ "cont" ] -> (
    match Vm.resume vm with Ok () -> Ok_text "" | Error e -> Error_text e)
  | [ "quit" ] ->
    Vm.stop vm;
    Quit
  | cmd :: _ -> Error_text (Printf.sprintf "unknown command '%s'" cmd)

let execute_exn vm line =
  match execute vm line with
  | Ok_text s -> s
  | Quit -> ""
  | Error_text e -> failwith (Printf.sprintf "monitor(%s): %s" (Vm.name vm) e)
