(** Standard experiment topologies.

    The paper evaluates every workload in three execution environments -
    L0 (bare host), L1 (guest), and L2 (nested guest) - and the
    CloudSkulk attack turns a victim's L1 into an L2. This module builds
    those topologies so benchmarks and tests do not repeat the plumbing.

    Every builder {!Sim.Ctx.fork}s the context it is given: the topology
    lives in a fresh world replayed from the context's seed (and the
    returned [env] carries that forked context), so building several
    topologies from one context gives each one an identical, independent
    schedule. *)

type env = {
  ctx : Sim.Ctx.t;  (** the topology's (forked) context *)
  uplink : Net.Fabric.switch;  (** the world outside the host *)
  host : Hypervisor.t;  (** the L0 hypervisor *)
  exec_level : Level.t;  (** where measured code runs *)
  exec_ram : Memory.Address_space.t;  (** the memory that code dirties *)
  exec_vm : Vm.t option;  (** the VM it runs in ([None] at L0) *)
  guestx : Vm.t option;  (** the enclosing L1 VM when nested *)
  nested_hv : Hypervisor.t option;  (** GuestX's hypervisor when nested *)
}

val bare_metal : ?ksm_config:Memory.Ksm.config -> ?workspace_mb:int -> Sim.Ctx.t -> env
(** L0: a host with a [workspace_mb] (default 1024) buffer the measured
    code runs in. In all constructors here, the context is the
    topology's instrumentation root (threaded into the uplink switch and
    every hypervisor). *)

val single_guest : ?ksm_config:Memory.Ksm.config -> ?config:Qemu_config.t -> Sim.Ctx.t -> env
(** L1: a host plus one running guest (default config: the paper's 1 GB
    VM, SSH forwarded from host port 2222). *)

val nested_guest :
  ?ksm_config:Memory.Ksm.config ->
  ?guestx_memory_mb:int ->
  ?config:Qemu_config.t ->
  Sim.Ctx.t ->
  env
(** L2: a host, a [guestx_memory_mb] (default 2048) L1 VM with nested
    VMX, a hypervisor inside it, and a nested guest (default: the same
    1 GB config as {!single_guest}) running at L2. *)

val of_level : ?ksm_config:Memory.Ksm.config -> Sim.Ctx.t -> Level.t -> env
(** Dispatch on 0, 1 or 2; raises [Invalid_argument] on deeper levels. *)

type migration_pair = {
  mp_ctx : Sim.Ctx.t;  (** the pair's (forked) context *)
  mp_host : Hypervisor.t;
  mp_source : Vm.t;  (** running L1 guest, the migration source *)
  mp_dest : Vm.t;  (** incoming-state destination *)
  mp_guestx : Vm.t option;  (** the enclosing VM when the destination is nested *)
  mp_nested_hv : Hypervisor.t option;
}

val migration_pair :
  ?ksm_config:Memory.Ksm.config ->
  ?config:Qemu_config.t ->
  ?incoming_port:int ->
  nested_dest:bool ->
  Sim.Ctx.t ->
  migration_pair
(** The Fig 4 topology: a source VM at L1 and a matching destination
    paused in the incoming state - either another L1 VM on the same
    host (the paper's "L0-L0" series) or a VM nested inside a GuestX
    (the "L0-L1" series, CloudSkulk's move). *)
