(** Hypervisors.

    A hypervisor launches and hosts VMs. It may sit on physical hardware
    (L0: owns the machine's frame table, runs ksmd) or inside a guest
    whose CPU exposes nested VMX (the rootkit's GuestX), in which case
    guest RAM for its VMs is carved out of the enclosing VM's own RAM -
    so every nested page stays visible to the levels below, which is
    what the detection approach exploits. *)

type t

(** {2 Construction} *)

val create_l0 :
  ?ram_gb:int ->
  ?ksm_config:Memory.Ksm.config ->
  Sim.Ctx.t ->
  name:string ->
  uplink:Net.Fabric.switch ->
  addr:Net.Packet.addr ->
  t
(** A bare-metal QEMU/KVM host: [ram_gb] (default 16, the paper's Dell
    T1700), a frame table, a ksmd instance (started), an internal
    virtual switch and a gateway node [addr] attached to both [uplink]
    and the internal switch. The context is this host's instrumentation
    root: its sink is handed to the frame table, ksmd, the internal
    switch and every launched VM (registering the
    [vmm_vm_launches_total{level=...}], [vmm_vm_kills_total{hv=...}] and
    [vmm_vms_running{hv=...}] series), and its trace receives launch and
    kill records. *)

val create_nested : ?use_vtx:bool -> Sim.Ctx.t -> vm:Vm.t -> name:string -> (t, string) result
(** A hypervisor inside [vm] (the RITM's own QEMU/KVM). Fails when the
    VM's CPU configuration lacks nested VMX, when the VM is not running,
    or when it has no network node. Guest RAM for nested VMs is
    allocated top-down from [vm]'s RAM; the nested hypervisor's process
    table {e is} [vm]'s guest process table.

    [use_vtx] (default true): launch nested guests with hardware VT-x,
    which plants a {!Vmcs} signature page in [vm]'s RAM per nested VM.
    [false] models a software-emulating nested hypervisor - slower, but
    invisible to VMCS memory forensics (paper Section VI-E). *)

val uses_vtx : t -> bool

(** {2 Accessors} *)

val name : t -> string
val level : t -> Level.t
(** Level of the hypervisor itself (0 for bare metal). Guests run at
    [level + 1]. *)

val engine : t -> Sim.Engine.t
val processes : t -> Process_table.t
val switch : t -> Net.Fabric.switch

val uplink : t -> Net.Fabric.switch
(** The network on the other side of the gateway: the outside world for
    an L0 hypervisor, the enclosing guest's network when nested. *)

val gateway : t -> Net.Fabric.Node.t
val ksm : t -> Memory.Ksm.t option
val frame_table : t -> Memory.Frame_table.t option
(** [Some] only for L0. *)

val trace : t -> Sim.Trace.t option

val telemetry : t -> Sim.Telemetry.t option
(** The sink passed at creation - consulted by components that operate
    on this host without their own telemetry parameter (detectors,
    installers, migration drivers via {!Vm.telemetry}). *)

val vms : t -> Vm.t list
val find_vm : t -> string -> Vm.t option
val ram_free_pages : t -> int

(** {2 VM lifecycle} *)

val launch : t -> Qemu_config.t -> (Vm.t, string) result
(** Create a VM: allocate RAM, spawn its QEMU process, attach its
    network node, install its host port-forwards on the gateway, and
    register its RAM with ksmd (L0 only). The VM is left [Running], or
    [Incoming] when the config carries [-incoming]. Fails on duplicate
    name or insufficient RAM. *)

val kill_vm : t -> Vm.t -> unit
(** Terminate the VM's QEMU process, remove its port-forwards, detach
    its node and release its RAM. Idempotent. *)

(** {2 Disk images}

    Each hypervisor owns the image files on its storage; launching a VM
    creates (or reopens) the image its config names. *)

val image : t -> string -> Disk_image.t option

val qemu_img_info : t -> string -> (string, string) result
(** What running [qemu-img info <file>] on this host prints - part of
    the attacker's reconnaissance toolkit (Section IV-A). *)

val host_buffer : t -> name:string -> pages:int -> (Memory.Address_space.t, string) result
(** Allocate pages in the hypervisor's own (host userspace) memory,
    registered with ksmd when present - where the detector loads its
    copy of File-A. L0 only. *)

val release_buffer : t -> Memory.Address_space.t -> unit
