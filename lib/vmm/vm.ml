type state =
  | Created
  | Incoming
  | Running
  | Paused
  | Stopped

let state_to_string = function
  | Created -> "created"
  | Incoming -> "incoming"
  | Running -> "running"
  | Paused -> "paused"
  | Stopped -> "stopped"

type io_counters = {
  mutable block_read_ops : int;
  mutable block_write_ops : int;
  mutable net_tx_bytes : int;
  mutable net_rx_bytes : int;
  mutable vm_exits : int;
  mutable cpu_time : Sim.Time.t;
}

type t = {
  engine : Sim.Engine.t;
  mutable config : Qemu_config.t;
  level : Level.t;
  ram : Memory.Address_space.t;
  disk : Disk_image.t;
  mutable qemu_pid : Process_table.pid;
  addr : Net.Packet.addr;
  trace : Sim.Trace.t option;
  telemetry : Sim.Telemetry.t option;
  m_exits : Sim.Telemetry.counter;
  m_fanout : Sim.Telemetry.counter;
  mutable state : state;
  mutable node : Net.Fabric.Node.t option;
  io : io_counters;
  mutable guest_processes : Process_table.t;
  mutable os_release : string;
  mutable loaded_files : (string, int * int) Hashtbl.t;  (* name -> (offset, pages) *)
  mutable next_file_page : int;
  mutable migrate_handler : (host:string -> port:int -> (unit, string) result) option;
  mutable migrate_cancel_requested : bool;
  mutable recover_handler : (unit -> (unit, string) result) option;
  mutable migration_stats : string option;
  mutable write_taps : (string * (string -> unit)) list;
  mutable guest_time_scale : float;
  mutable cpu_throttle : float;
  mutable spoofs_benchmarks : bool;
}

(* A booted guest has a recognisable init and kernel threads; VMI
   fingerprinting reads these. *)
let boot_processes table =
  ignore (Process_table.spawn table ~name:"systemd" ~cmdline:"/usr/lib/systemd/systemd");
  ignore (Process_table.spawn table ~name:"kthreadd" ~cmdline:"[kthreadd]");
  ignore (Process_table.spawn table ~name:"sshd" ~cmdline:"/usr/sbin/sshd -D")

let make ctx ~config ~level ~ram ~disk ~qemu_pid ~addr =
  let engine = Sim.Ctx.engine ctx in
  let telemetry = Sim.Ctx.telemetry ctx in
  let guest_processes = Process_table.create engine in
  boot_processes guest_processes;
  let level_label = [ ("level", string_of_int (Level.to_int level)) ] in
  {
    engine;
    config;
    level;
    ram;
    disk;
    qemu_pid;
    addr;
    trace = Some (Sim.Ctx.trace ctx);
    telemetry;
    m_exits = Sim.Telemetry.counter telemetry ~labels:level_label ~component:"vmm" "exits_total";
    m_fanout =
      Sim.Telemetry.counter telemetry ~labels:level_label ~component:"vmm"
        "nested_exit_fanout_total";
    state = Created;
    node = None;
    io =
      {
        block_read_ops = 0;
        block_write_ops = 0;
        net_tx_bytes = 0;
        net_rx_bytes = 0;
        vm_exits = 0;
        cpu_time = Sim.Time.zero;
      };
    guest_processes;
    os_release = "Fedora 22, Linux 4.4.14-200.fc22.x86_64";
    loaded_files = Hashtbl.create 8;
    (* Reserve the first quarter of RAM for the guest kernel and its
       anonymous memory; file loads go above it. *)
    next_file_page = Memory.Address_space.pages ram / 4;
    migrate_handler = None;
    migrate_cancel_requested = false;
    recover_handler = None;
    migration_stats = None;
    write_taps = [];
    guest_time_scale = 1.0;
    cpu_throttle = 0.;
    spoofs_benchmarks = false;
  }

let emit t fmt =
  match t.trace with
  | None -> Format.ikfprintf (fun _ -> ()) Format.str_formatter fmt
  | Some tr ->
    Sim.Trace.emitf tr (Sim.Engine.now t.engine) Sim.Trace.Info
      ~component:("vm:" ^ t.config.Qemu_config.vm_name)
      fmt

let name t = t.config.Qemu_config.vm_name
let engine t = t.engine
let config t = t.config
let set_config t c = t.config <- c
let level t = t.level
let ram t = t.ram
let disk t = t.disk

let disk_write t ~bytes =
  Disk_image.guest_write t.disk ~bytes;
  t.io.block_write_ops <- t.io.block_write_ops + 1

let qemu_pid t = t.qemu_pid
let set_qemu_pid t pid = t.qemu_pid <- pid
let addr t = t.addr
let io t = t.io
let telemetry t = t.telemetry

let record_exits t n =
  t.io.vm_exits <- t.io.vm_exits + n;
  Sim.Telemetry.add t.m_exits n

let record_nested_fanout t n = Sim.Telemetry.add t.m_fanout n
let guest_processes t = t.guest_processes
let os_release t = t.os_release
let set_os_release t s = t.os_release <- s
let state t = t.state

let transition t ~from ~to_ what =
  if List.exists (fun s -> s = t.state) from then begin
    t.state <- to_;
    emit t "%s (now %s)" what (state_to_string to_);
    Ok ()
  end
  else
    Error
      (Printf.sprintf "%s: cannot %s from state %s" (name t) what (state_to_string t.state))

let start t = transition t ~from:[ Created ] ~to_:Running "start"
let pause t = transition t ~from:[ Running ] ~to_:Paused "pause"
let resume t = transition t ~from:[ Paused ] ~to_:Running "resume"
let await_incoming t = transition t ~from:[ Created ] ~to_:Incoming "await incoming migration"
let complete_incoming t = transition t ~from:[ Incoming ] ~to_:Running "complete incoming migration"

let stop t =
  if t.state <> Stopped then begin
    t.state <- Stopped;
    emit t "stopped"
  end

let reboot_guest t =
  if t.state <> Running then
    Error (Printf.sprintf "%s: cannot reboot from state %s" (name t) (state_to_string t.state))
  else begin
    for i = 0 to Memory.Address_space.pages t.ram - 1 do
      if not (Memory.Page.Content.is_zero (Memory.Address_space.read t.ram i)) then
        ignore (Memory.Address_space.write t.ram i Memory.Page.Content.zero)
    done;
    t.guest_processes <- Process_table.create t.engine;
    boot_processes t.guest_processes;
    Hashtbl.reset t.loaded_files;
    t.next_file_page <- Memory.Address_space.pages t.ram / 4;
    emit t "guest OS rebooted";
    Ok ()
  end

let is_alive t = t.state <> Stopped
let node t = t.node
let set_node t n = t.node <- Some n

let load_file t file =
  let file_pages = Memory.File_image.pages file in
  let fname = Memory.File_image.name file in
  if Hashtbl.mem t.loaded_files fname then Error (fname ^ " already loaded")
  else if t.next_file_page + file_pages > Memory.Address_space.pages t.ram then
    Error "guest RAM exhausted"
  else begin
    let offset = t.next_file_page in
    t.next_file_page <- t.next_file_page + file_pages;
    Memory.File_image.load_into file t.ram ~offset;
    Hashtbl.replace t.loaded_files fname (offset, file_pages);
    emit t "loaded %s (%d pages) at page %d" fname file_pages offset;
    Ok offset
  end

let file_offset t fname = Option.map fst (Hashtbl.find_opt t.loaded_files fname)

let loaded_files t =
  Hashtbl.fold (fun name (off, pages) acc -> (name, off, pages) :: acc) t.loaded_files []
  |> List.sort (fun (a, _, _) (b, _, _) -> String.compare a b)

let adopt_guest_state t ~from =
  t.os_release <- from.os_release;
  t.guest_processes <- from.guest_processes;
  t.loaded_files <- from.loaded_files;
  t.next_file_page <- from.next_file_page
let unload_file t fname = Hashtbl.remove t.loaded_files fname

let touch_pages t rng ~count =
  let pages = Memory.Address_space.pages t.ram in
  for _ = 1 to count do
    let i = Sim.Rng.int rng pages in
    let c = Memory.Address_space.read t.ram i in
    ignore (Memory.Address_space.write t.ram i (Memory.Page.Content.mutate c ~salt:i))
  done

let cpu_throttle t = t.cpu_throttle
let set_cpu_throttle t x = t.cpu_throttle <- Float.max 0. (Float.min 0.99 x)
let guest_time_scale t = t.guest_time_scale

let set_guest_time_scale t scale =
  if scale <= 0. then invalid_arg "Vm.set_guest_time_scale: scale must be positive";
  t.guest_time_scale <- scale

let observe_duration t d = Sim.Time.mul d t.guest_time_scale
let set_spoofs_benchmarks t v = t.spoofs_benchmarks <- v
let spoofs_benchmarks t = t.spoofs_benchmarks

let trap_write_syscalls t ~name f = t.write_taps <- t.write_taps @ [ (name, f) ]
let untrap_write_syscalls t ~name = t.write_taps <- List.filter (fun (n, _) -> n <> name) t.write_taps
let emit_write t data = List.iter (fun (_, f) -> f data) t.write_taps

let set_migrate_handler t f = t.migrate_handler <- Some f
let migrate_handler t = t.migrate_handler

let request_migrate_cancel t = t.migrate_cancel_requested <- true
let migrate_cancel_requested t = t.migrate_cancel_requested

let take_migrate_cancel t =
  let r = t.migrate_cancel_requested in
  t.migrate_cancel_requested <- false;
  r

let set_recover_handler t h = t.recover_handler <- h
let recover_handler t = t.recover_handler

let set_migration_stats t s = t.migration_stats <- Some s
let migration_stats t = t.migration_stats

let pp fmt t =
  Format.fprintf fmt "%s[%a,%s,pid=%d]" (name t) Level.pp t.level (state_to_string t.state)
    t.qemu_pid
