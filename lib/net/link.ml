type t = {
  latency : Sim.Time.t;
  bandwidth_bytes_per_s : float;
}

(* Below this, serialisation times stop meaning anything (a single page
   would take decades of virtual time and overflow the integer
   nanosecond clock), so derating clamps here instead of sliding into
   nonsense. One byte per second is already a dead link for every
   purpose in this repository. *)
let min_bandwidth_bytes_per_s = 1.

let make ~latency ~bandwidth_mbytes_per_s =
  if bandwidth_mbytes_per_s <= 0. then invalid_arg "Link.make: bandwidth must be positive";
  if Sim.Time.(latency < Sim.Time.zero) then invalid_arg "Link.make: latency must be non-negative";
  {
    latency;
    bandwidth_bytes_per_s =
      Float.max min_bandwidth_bytes_per_s (bandwidth_mbytes_per_s *. 1024. *. 1024.);
  }

let loopback = make ~latency:(Sim.Time.us 50.) ~bandwidth_mbytes_per_s:2048.
let lan_1gbe = make ~latency:(Sim.Time.us 200.) ~bandwidth_mbytes_per_s:117.
let migration_loopback = make ~latency:(Sim.Time.us 80.) ~bandwidth_mbytes_per_s:50.

let serialisation_time t bytes =
  if bytes < 0 then invalid_arg "Link.serialisation_time: negative byte count";
  Sim.Time.s (float_of_int bytes /. t.bandwidth_bytes_per_s)

let transfer_time t bytes =
  if bytes < 0 then invalid_arg "Link.transfer_time: negative byte count";
  if bytes = 0 then t.latency
  else
    let serialisation = Sim.Time.s (float_of_int bytes /. t.bandwidth_bytes_per_s) in
    Sim.Time.add t.latency serialisation

let scale_bandwidth t factor =
  if factor <= 0. || Float.is_nan factor then
    invalid_arg "Link.scale_bandwidth: factor must be positive";
  {
    t with
    bandwidth_bytes_per_s =
      Float.max min_bandwidth_bytes_per_s (t.bandwidth_bytes_per_s *. factor);
  }

let pp fmt t =
  Format.fprintf fmt "link(lat=%a, bw=%.1fMB/s)" Sim.Time.pp t.latency
    (t.bandwidth_bytes_per_s /. (1024. *. 1024.))
