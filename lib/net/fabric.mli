(** Switched network fabric: nodes, switches, taps, port forwarding.

    Nodes attach to a switch and receive packets addressed to them.
    Two mechanisms matter for CloudSkulk:

    - {e taps}: an interposed observer on a node that can inspect, drop,
      or rewrite every packet that passes through it - how the RITM runs
      its passive and active services;
    - {e port forwarding} (NAT): a node can relay a port to another
      node reachable through some switch - how the attacker keeps the
      victim's SSH address and port unchanged after migrating the VM
      into GuestX (paper Section III-A).

    Topologies may be nested: GuestX is a node on the host switch that
    also owns an inner switch where the migrated victim VM attaches. *)

type node
type switch

type tap_action =
  | Forward  (** pass the packet unchanged *)
  | Drop
  | Rewrite of Packet.t  (** pass a modified packet instead *)

type tap = Packet.t -> tap_action

module Switch : sig
  type t = switch

  val create : Sim.Ctx.t -> name:string -> link:Link.t -> t
  (** The context's sink registers per-switch series
      [net_packets_delivered_total{switch=name}],
      [net_packets_dropped_total{switch=name}] and
      [net_bytes_carried_total{switch=name}]. *)

  val name : t -> string

  val send : t -> Packet.t -> unit
  (** Route the packet to the node holding [dst.addr], delivering it
      after the link's transfer time. Packets to unknown addresses are
      counted as dropped. *)

  val send_burst : t -> Packet.t list -> unit
  (** Route a burst of packets with a single engine event: the burst is
      delivered (in order) after the link latency plus the sum of the
      packets' serialisation times - a serial wire pays latency once
      per back-to-back train. Destinations are resolved and unknown
      addresses counted dropped at send time, as {!send} does. An empty
      burst is a no-op. Use for high-rate senders (packet generators,
      covert-channel pulses) where per-packet events dominate engine
      cost. *)

  val set_default_route : t -> (Packet.t -> unit) option -> unit
  (** Install (or clear) the switch's escape hatch: a packet addressed
      to no attached station is handed to the callback after the usual
      link transfer delay, instead of being counted dropped. The fleet
      layer uses this to turn off-host destinations into cross-host
      mailbox messages (DESIGN.md §14). Installing a route registers
      [net_packets_routed_total{switch=name}] on the switch's sink;
      switches that never set one export exactly the series they always
      did. *)

  val default_route : t -> (Packet.t -> unit) option

  val packets_delivered : t -> int
  val packets_dropped : t -> int

  val packets_routed : t -> int
  (** Packets handed to the default route so far. *)

  val bytes_carried : t -> int
end

module Node : sig
  type t = node

  val create : Sim.Engine.t -> name:string -> addr:Packet.addr -> t
  val name : t -> string
  val addr : t -> Packet.addr

  val attach : t -> switch -> unit
  (** Register the node on a switch so packets for its address reach it.
      A node may attach to several switches (a gateway). *)

  val detach : t -> switch -> unit
  (** Remove the node from a switch (e.g. when its VM is killed). *)

  val listen : t -> Packet.port -> (Packet.t -> unit) -> unit
  (** Install a handler for packets arriving at a local port (replaces
      any previous handler for that port). *)

  val stop_listening : t -> Packet.port -> unit

  val add_forward :
    t -> from_port:Packet.port -> to_:Packet.endpoint -> via:switch -> unit
  (** NAT rule: packets arriving at [from_port] are re-addressed to
      [to_] and sent out on [via]. *)

  val remove_forward : t -> from_port:Packet.port -> unit

  val forward_target : t -> Packet.port -> Packet.endpoint option
  (** Where a NAT rule on [port] points, if one is installed - lets an
      on-node observer reason about pre-NAT destination ports. *)

  val forwards : t -> (Packet.port * Packet.endpoint) list
  (** All installed NAT rules, sorted by port - what an auditor reads
      out of the host's iptables. *)

  val add_tap : t -> name:string -> tap -> unit
  (** Taps run in installation order on every arriving packet, before
      NAT and port handlers. The first [Drop] wins; [Rewrite] feeds the
      modified packet to the next tap. *)

  val remove_tap : t -> name:string -> unit

  val send : t -> via:switch -> Packet.t -> unit
  (** Transmit a packet (convenience for [Switch.send]). *)

  val route_through : t -> Packet.t -> Packet.t option
  (** Treat the node as a middlebox on the packet's path: run its taps
      (counting the packet as received) and return the possibly
      rewritten packet, or [None] if a tap dropped it. Used for egress
      traffic that transits a gateway without terminating there. *)

  val packets_received : t -> int
  val packets_unhandled : t -> int
  (** Arrived for a port with neither handler nor NAT rule. *)
end
