type tap_action =
  | Forward
  | Drop
  | Rewrite of Packet.t

type tap = Packet.t -> tap_action

type node = {
  node_engine : Sim.Engine.t;
  node_name : string;
  node_addr : Packet.addr;
  handlers : (Packet.port, Packet.t -> unit) Hashtbl.t;
  forwards : (Packet.port, Packet.endpoint * switch) Hashtbl.t;
  mutable taps : (string * tap) list;
  mutable received : int;
  mutable unhandled : int;
}

and switch = {
  sw_engine : Sim.Engine.t;
  sw_name : string;
  sw_telemetry : Sim.Telemetry.t option;
  link : Link.t;
  stations : (Packet.addr, node) Hashtbl.t;
  mutable delivered : int;
  mutable dropped : int;
  mutable bytes : int;
  mutable routed : int;
  (* Uplink escape hatch: packets addressed to no attached station are
     handed here (after the usual link delay) instead of being dropped.
     The fleet layer uses this to turn off-host traffic into mailbox
     messages; without a route behaviour is unchanged. *)
  mutable default_route : (Packet.t -> unit) option;
  mutable m_routed : Sim.Telemetry.counter option;
  m_delivered : Sim.Telemetry.counter;
  m_dropped : Sim.Telemetry.counter;
  m_bytes : Sim.Telemetry.counter;
}

let rec deliver node packet =
  node.received <- node.received + 1;
  match apply_taps node.taps packet with
  | None -> ()
  | Some packet -> (
    let port = packet.Packet.dst.Packet.port in
    match Hashtbl.find_opt node.forwards port with
    | Some (to_, via) ->
      let forwarded = { packet with Packet.dst = to_ } in
      switch_send via forwarded
    | None -> (
      match Hashtbl.find_opt node.handlers port with
      | Some handler -> handler packet
      | None -> node.unhandled <- node.unhandled + 1))

and apply_taps taps packet =
  match taps with
  | [] -> Some packet
  | (_, tap) :: rest -> (
    match tap packet with
    | Forward -> apply_taps rest packet
    | Drop -> None
    | Rewrite p -> apply_taps rest p)

and deliver_on_wire sw node packet =
  sw.delivered <- sw.delivered + 1;
  sw.bytes <- sw.bytes + packet.Packet.size_bytes;
  Sim.Telemetry.incr sw.m_delivered;
  Sim.Telemetry.add sw.m_bytes packet.Packet.size_bytes;
  deliver node packet

and route_on_wire sw route packet =
  sw.routed <- sw.routed + 1;
  sw.bytes <- sw.bytes + packet.Packet.size_bytes;
  Option.iter Sim.Telemetry.incr sw.m_routed;
  Sim.Telemetry.add sw.m_bytes packet.Packet.size_bytes;
  route packet

and switch_send sw packet =
  match Hashtbl.find_opt sw.stations packet.Packet.dst.Packet.addr with
  | None -> (
    match sw.default_route with
    | None ->
      sw.dropped <- sw.dropped + 1;
      Sim.Telemetry.incr sw.m_dropped
    | Some route ->
      let delay = Link.transfer_time sw.link packet.Packet.size_bytes in
      ignore
        (Sim.Engine.schedule_after sw.sw_engine delay (fun () ->
             route_on_wire sw route packet)))
  | Some node ->
    let delay = Link.transfer_time sw.link packet.Packet.size_bytes in
    ignore (Sim.Engine.schedule_after sw.sw_engine delay (fun () -> deliver_on_wire sw node packet))

(* One engine event for the whole burst instead of one per packet: the
   wire is serial, so the burst completes after the link latency plus
   the sum of per-packet serialisation times, and every packet is
   handed up at that instant, in burst order. Destinations are resolved
   (and unknown addresses counted dropped) at send time, exactly as
   [switch_send] does. *)
and switch_send_burst sw packets =
  let resolved =
    List.filter_map
      (fun p ->
        match Hashtbl.find_opt sw.stations p.Packet.dst.Packet.addr with
        | None -> (
          match sw.default_route with
          | None ->
            sw.dropped <- sw.dropped + 1;
            Sim.Telemetry.incr sw.m_dropped;
            None
          | Some route -> Some (`Route route, p))
        | Some node -> Some (`Station node, p))
      packets
  in
  match resolved with
  | [] -> ()
  | resolved ->
    let serialisation =
      List.fold_left
        (fun acc (_, p) ->
          Sim.Time.add acc (Link.serialisation_time sw.link p.Packet.size_bytes))
        Sim.Time.zero resolved
    in
    let delay = Sim.Time.add sw.link.Link.latency serialisation in
    ignore
      (Sim.Engine.schedule_after sw.sw_engine delay (fun () ->
           List.iter
             (fun (target, p) ->
               match target with
               | `Station node -> deliver_on_wire sw node p
               | `Route route -> route_on_wire sw route p)
             resolved))

module Switch = struct
  type t = switch

  let create ctx ~name ~link =
    let telemetry = Sim.Ctx.telemetry ctx in
    let labels = [ ("switch", name) ] in
    {
      sw_engine = Sim.Ctx.engine ctx;
      sw_name = name;
      sw_telemetry = telemetry;
      link;
      stations = Hashtbl.create 16;
      delivered = 0;
      dropped = 0;
      bytes = 0;
      routed = 0;
      default_route = None;
      m_routed = None;
      m_delivered =
        Sim.Telemetry.counter telemetry ~labels ~component:"net" "packets_delivered_total";
      m_dropped =
        Sim.Telemetry.counter telemetry ~labels ~component:"net" "packets_dropped_total";
      m_bytes =
        Sim.Telemetry.counter telemetry ~labels ~component:"net" "bytes_carried_total";
    }

  let name t = t.sw_name

  (* The routed counter is registered on first use, not at create time,
     so switches that never set a route export exactly the series they
     always did. *)
  let set_default_route t route =
    t.default_route <- route;
    if route <> None && t.m_routed = None then
      t.m_routed <-
        Some
          (Sim.Telemetry.counter t.sw_telemetry
             ~labels:[ ("switch", t.sw_name) ]
             ~component:"net" "packets_routed_total")

  let default_route t = t.default_route
  let send = switch_send
  let send_burst = switch_send_burst
  let packets_delivered t = t.delivered
  let packets_dropped t = t.dropped
  let packets_routed t = t.routed
  let bytes_carried t = t.bytes
end

module Node = struct
  type t = node

  let create engine ~name ~addr =
    {
      node_engine = engine;
      node_name = name;
      node_addr = addr;
      handlers = Hashtbl.create 8;
      forwards = Hashtbl.create 8;
      taps = [];
      received = 0;
      unhandled = 0;
    }

  let name t = t.node_name
  let addr t = t.node_addr
  let attach t sw = Hashtbl.replace sw.stations t.node_addr t

  let detach t sw =
    match Hashtbl.find_opt sw.stations t.node_addr with
    | Some n when n == t -> Hashtbl.remove sw.stations t.node_addr
    | Some _ | None -> ()
  let listen t port handler = Hashtbl.replace t.handlers port handler
  let stop_listening t port = Hashtbl.remove t.handlers port
  let add_forward t ~from_port ~to_ ~via = Hashtbl.replace t.forwards from_port (to_, via)
  let remove_forward t ~from_port = Hashtbl.remove t.forwards from_port
  let forward_target t port = Option.map fst (Hashtbl.find_opt t.forwards port)

  let forwards t =
    Hashtbl.fold (fun port (to_, _) acc -> (port, to_) :: acc) t.forwards []
    |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
  let add_tap t ~name tap = t.taps <- t.taps @ [ (name, tap) ]
  let remove_tap t ~name = t.taps <- List.filter (fun (n, _) -> n <> name) t.taps

  let send t ~via packet =
    ignore t.node_engine;
    switch_send via packet

  let route_through t packet =
    t.received <- t.received + 1;
    apply_taps t.taps packet

  let packets_received t = t.received
  let packets_unhandled t = t.unhandled
end
