(** Bulk-transfer flows.

    Models a unidirectional TCP stream (Netperf TCP_STREAM, or the
    migration byte channel) as a sequence of chunk transmissions over a
    {!Link}. Virtualization overhead enters as a bandwidth derating
    factor per virtio traversal, so L0/L1/L2 senders see slightly
    different goodput - the effect Fig 3 measures (and finds to be within
    noise for TCP bulk transfer). An optional {!Sim.Fault} injector
    perturbs the stream chunk by chunk: lost chunks are retransmitted
    after an RTO stall, jittered chunks serialise slower, and a link
    outage stalls the whole stream until repair. *)

type result = {
  bytes : int;
  elapsed : Sim.Time.t;
  throughput_mbit_s : float;
  retransmits : int;  (** chunks resent after a loss or an outage (0 without faults) *)
  link_downtime : Sim.Time.t;  (** injected outage time the flow sat through *)
}

val run :
  Sim.Ctx.t ->
  link:Link.t ->
  ?derate:float ->
  ?chunk_bytes:int ->
  ?burst_chunks:int ->
  ?noise_rsd:float ->
  ?rng:Sim.Rng.t ->
  ?fault:Sim.Fault.t ->
  bytes:int ->
  unit ->
  result
(** Simulate transferring [bytes] over [link] with effective bandwidth
    [link.bandwidth * derate] (default derate 1.0). The transfer is
    executed on the context's virtual clock in [chunk_bytes] units
    (default 64 KiB); per-chunk jitter [noise_rsd] (default 0) models
    scheduling noise. Without a fault injector the stream is paced one
    engine event per [burst_chunks] chunks (default 16) instead of one
    per chunk: per-chunk delays are still drawn and summed in stream
    order, so the elapsed time is bit-identical for every
    [burst_chunks] >= 1 ([Invalid_argument] below 1) while the event
    count drops by the batching factor. [fault] (default absent: the
    exact fault-free behaviour, no extra RNG draws) injects loss,
    jitter, degradation, and outages per chunk - fault decisions are
    per-chunk and time-dependent, so a faulted stream keeps the
    chunk-at-a-time pacing and ignores [burst_chunks]. The engine is run until the flow completes -
    every byte always arrives; faults only cost time. The context's
    sink counts [net_flow_bytes_total], [net_flow_chunk_retransmits_total]
    and [net_flow_link_downtime_ns_total], and records one ["flow"] span
    per call. *)

val throughput_mbit_s : bytes:int -> elapsed:Sim.Time.t -> float
