(** Point-to-point link capacity model.

    A link has a propagation latency and a bandwidth. [transfer_time]
    gives the serialisation+propagation delay for a burst of bytes; flows
    and the migration channel use it to pace virtual time. *)

type t = {
  latency : Sim.Time.t;
  bandwidth_bytes_per_s : float;
}

val make : latency:Sim.Time.t -> bandwidth_mbytes_per_s:float -> t
(** Raises [Invalid_argument] on a non-positive bandwidth or negative
    latency. *)

val min_bandwidth_bytes_per_s : float
(** The floor (1 B/s) any derating clamps to; below it serialisation
    times overflow the nanosecond clock and stop meaning anything. *)

val loopback : t
(** Same-host virtio/loopback path: 50 µs latency, ~2 GB/s. This is why
    the paper's single-machine migrations avoid "a lot of network
    traffic". *)

val lan_1gbe : t
(** 1 GbE datacenter link: 200 µs latency, ~117 MB/s goodput. *)

val migration_loopback : t
(** The effective QEMU migration channel on one host. QEMU's migration
    thread is far slower than raw loopback (page scanning, dirty bitmap
    syncs, default bandwidth caps): ~50 MB/s effective, calibrated so
    that an idle 1 GiB guest migrates L0-to-L1 in the ~26 s of Fig 4
    (after the per-level nested-destination derate). *)

val serialisation_time : t -> int -> Sim.Time.t
(** [serialisation_time t bytes] = bytes/bandwidth, without the
    propagation latency - the per-packet cost a batched sender sums
    before paying the latency once for the whole burst. Zero bytes cost
    zero; a negative byte count raises [Invalid_argument]. *)

val transfer_time : t -> int -> Sim.Time.t
(** [transfer_time t bytes] = latency + bytes/bandwidth. Zero bytes cost
    exactly the latency; a negative byte count raises
    [Invalid_argument]. The result is always a finite, non-negative
    duration because bandwidth never drops below
    {!min_bandwidth_bytes_per_s}. *)

val scale_bandwidth : t -> float -> t
(** Derate (factor < 1) or upgrade the bandwidth. Nested virtualization
    derates the effective channel. Raises [Invalid_argument] on a
    non-positive or NaN factor; repeated derating saturates at
    {!min_bandwidth_bytes_per_s} rather than producing unbounded
    transfer times. *)

val pp : Format.formatter -> t -> unit
