type result = {
  bytes : int;
  elapsed : Sim.Time.t;
  throughput_mbit_s : float;
  retransmits : int;
  link_downtime : Sim.Time.t;
}

let throughput_mbit_s ~bytes ~elapsed =
  let secs = Sim.Time.to_s elapsed in
  if secs <= 0. then 0. else float_of_int bytes *. 8. /. 1e6 /. secs

let run ctx ~link ?(derate = 1.) ?(chunk_bytes = 65536) ?(burst_chunks = 16) ?(noise_rsd = 0.)
    ?rng ?fault ~bytes () =
  if bytes < 0 then invalid_arg "Flow.run: negative byte count";
  if burst_chunks < 1 then invalid_arg "Flow.run: burst_chunks must be at least 1";
  let engine = Sim.Ctx.engine ctx in
  let telemetry = Sim.Ctx.telemetry ctx in
  let m_bytes = Sim.Telemetry.counter telemetry ~component:"net" "flow_bytes_total" in
  let m_retransmits =
    Sim.Telemetry.counter telemetry ~component:"net" "flow_chunk_retransmits_total"
  in
  let m_downtime =
    Sim.Telemetry.counter telemetry ~component:"net" "flow_link_downtime_ns_total"
  in
  let link = Link.scale_bandwidth link derate in
  let rng = match rng with Some r -> r | None -> Sim.Engine.fork_rng engine in
  let started = Sim.Engine.now engine in
  let finished = ref None in
  let retransmits = ref 0 in
  let link_downtime = ref Sim.Time.zero in
  (* TCP pipelines chunks, so propagation latency is paid once (the
     handshake), and afterwards the stream is serialisation-bound. *)
  let serialisation this =
    Sim.Time.s (float_of_int this /. link.Link.bandwidth_bytes_per_s)
  in
  let chunk_base this =
    Sim.Time.mul (serialisation this) (Sim.Rng.lognormal_noise rng ~rsd:noise_rsd)
  in
  (* Fault-free path: one engine event per burst of up to [burst_chunks]
     chunks, not one per chunk. The per-chunk delays are still computed
     chunk by chunk in stream order - same RNG draws, same Int64
     additions as the chunk-at-a-time path (Time.add is associative) -
     so the completion time is bit-identical; only the event count
     drops from O(chunks) to O(bursts). *)
  let rec send_burst remaining =
    if remaining <= 0 then finished := Some (Sim.Engine.now engine)
    else begin
      let delay = ref Sim.Time.zero in
      let rem = ref remaining in
      let n = ref 0 in
      while !rem > 0 && !n < burst_chunks do
        let this = min chunk_bytes !rem in
        delay := Sim.Time.add !delay (chunk_base this);
        rem := !rem - this;
        incr n
      done;
      let next = !rem in
      ignore (Sim.Engine.schedule_after engine !delay (fun () -> send_burst next))
    end
  in
  let rec send_chunk remaining =
    if remaining <= 0 then finished := Some (Sim.Engine.now engine)
    else begin
      let this = min chunk_bytes remaining in
      let base = chunk_base this in
      match fault with
      | None ->
        ignore (Sim.Engine.schedule_after engine base (fun () -> send_chunk (remaining - this)))
      | Some f ->
        let delay = Sim.Time.mul base (Sim.Fault.chunk_jitter f) in
        if Sim.Fault.drops_chunk f then begin
          (* the chunk's serialisation time is spent, the loss is noticed
             one RTO (2x latency) later, and the chunk goes again *)
          incr retransmits;
          let stall = Sim.Time.add delay (Sim.Time.mul link.Link.latency 2.) in
          ignore (Sim.Engine.schedule_after engine stall (fun () -> send_chunk remaining))
        end
        else begin
          match Sim.Fault.cut f ~now:(Sim.Engine.now engine) ~during:delay with
          | Some (after, outage) ->
            (* the link died mid-chunk: wait out the repair, resend *)
            incr retransmits;
            link_downtime := Sim.Time.add !link_downtime outage;
            let stall = Sim.Time.add after outage in
            ignore (Sim.Engine.schedule_after engine stall (fun () -> send_chunk remaining))
          | None ->
            ignore
              (Sim.Engine.schedule_after engine delay (fun () -> send_chunk (remaining - this)))
        end
    end
  in
  let transmit = match fault with None -> send_burst | Some _ -> send_chunk in
  ignore (Sim.Engine.schedule_after engine link.Link.latency (fun () -> transmit bytes));
  let rec drive () =
    match !finished with
    | Some at -> at
    | None ->
      if not (Sim.Engine.step engine) then
        raise (Sim.Engine.Simulation_deadlock "Flow.run: engine drained before flow completed")
      else drive ()
  in
  let at = drive () in
  let elapsed = Sim.Time.diff at started in
  Sim.Telemetry.add m_bytes bytes;
  Sim.Telemetry.add m_retransmits !retransmits;
  Sim.Telemetry.addf m_downtime (Int64.to_float (Sim.Time.to_ns !link_downtime));
  Sim.Telemetry.span telemetry ~component:"net" ~name:"flow" ~start:started ~stop:at
    ~fields:
      [
        ("bytes", string_of_int bytes);
        ("retransmits", string_of_int !retransmits);
      ]
    ();
  {
    bytes;
    elapsed;
    throughput_mbit_s = throughput_mbit_s ~bytes ~elapsed;
    retransmits = !retransmits;
    link_downtime = !link_downtime;
  }
