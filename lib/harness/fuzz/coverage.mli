(** Coverage accounting: feature strings and program signatures.

    A program execution yields a set of {e feature} strings - monitor
    command outcomes, migration outcome classes, detector verdict
    paths, KSM tree-shape buckets, log2-bucketed telemetry series
    values ({!Sim.Telemetry.fold_series}). The sorted feature set
    hashes to a 64-bit {e signature} (FNV-1a; no [Hashtbl.hash], so
    signatures are stable across OCaml versions and checked into the
    corpus). A map accumulates features across executions; a program
    contributing an unseen feature is interesting and enters the
    corpus. *)

type t

val create : unit -> t

val add : t -> string list -> int
(** Record an execution's features; returns how many were new. *)

val distinct : t -> int

val features : t -> (string * int) list
(** All features with hit counts, sorted by feature string. *)

val bucket : float -> int
(** Log2 bucket: 0 for values [<= 0], else [1 + floor(log2 v)] clamped
    to 62 - coarse enough that harmless magnitude jitter does not mint
    new features, fine enough that regimes (zero / few / many) do. *)

val signature : string list -> int64
(** FNV-1a 64 over the sorted, deduplicated features. *)

val path_signature : string list -> int64
(** FNV-1a 64 over the emission sequence as given - order and
    duplicates significant, so distinct action paths to the same
    feature set hash apart (cf. AFL path vs edge coverage). *)

val hex : int64 -> string
(** 16-digit lowercase hex, the corpus rendering of a signature. *)
