(** The fuzzer's correctness oracles.

    Thin dispatch over the first-class invariant checkers the substrate
    modules export ({!Memory.Ksm.check_invariants},
    {!Memory.Frame_table.check_invariants},
    {!Memory.Address_space.check_invariants},
    {!Migration.Outcome.check_legal}) plus the fuzzer's own end-to-end
    checks (RAM conservation across a completed migration, detector
    false verdicts). A violation carries a stable oracle name - the
    deduplication and corpus key - and a human detail string. *)

type violation = { oracle : string; detail : string }

val to_string : violation -> string

val check_host : Vmm.Hypervisor.t -> violation option
(** KSM invariants, frame-table invariants, and the address-space
    invariants of every live VM's RAM; [None] when all hold. *)

val check_migration :
  'a Migration.Outcome.t -> source:Vmm.Vm.t -> dest:Vmm.Vm.t -> violation option
(** {!Migration.Outcome.check_legal} plus page-for-page RAM
    conservation when the outcome says the guest moved. *)
