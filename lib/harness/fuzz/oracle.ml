type violation = { oracle : string; detail : string }

let to_string v = Printf.sprintf "%s: %s" v.oracle v.detail

let of_result oracle = function
  | Ok () -> None
  | Error detail -> Some { oracle; detail }

let first checks =
  List.fold_left
    (fun acc check -> match acc with Some _ -> acc | None -> check ())
    None checks

let check_host host =
  first
    [
      (fun () ->
        match Vmm.Hypervisor.ksm host with
        | None -> None
        | Some k -> of_result "ksm-invariants" (Memory.Ksm.check_invariants k));
      (fun () ->
        match Vmm.Hypervisor.frame_table host with
        | None -> None
        | Some ft -> of_result "frame-table-invariants" (Memory.Frame_table.check_invariants ft));
      (fun () ->
        first
          (List.map
             (fun vm () ->
               if Vmm.Vm.is_alive vm then
                 of_result "address-space-invariants"
                   (Result.map_error
                      (fun e -> Printf.sprintf "%s: %s" (Vmm.Vm.name vm) e)
                      (Memory.Address_space.check_invariants (Vmm.Vm.ram vm)))
               else None)
             (Vmm.Hypervisor.vms host)));
    ]

(* A migration that reports the guest moved must have moved all of it:
   the source husk (paused, untouched since the handover) and the
   destination hold page-for-page identical RAM. *)
let conserved ~source ~dest =
  let a = Vmm.Vm.ram source and b = Vmm.Vm.ram dest in
  let n = Memory.Address_space.pages a in
  if n <> Memory.Address_space.pages b then
    Error (Printf.sprintf "RAM sizes differ: %d vs %d pages" n (Memory.Address_space.pages b))
  else begin
    let bad = ref None in
    for i = 0 to n - 1 do
      if
        Option.is_none !bad
        && not
             (Memory.Page.Content.equal (Memory.Address_space.read a i)
                (Memory.Address_space.read b i))
      then bad := Some i
    done;
    match !bad with
    | None -> Ok ()
    | Some i -> Error (Printf.sprintf "page %d differs between source husk and destination" i)
  end

let check_migration outcome ~source ~dest =
  first
    [
      (fun () ->
        of_result "migration-legality" (Migration.Outcome.check_legal outcome ~source ~dest));
      (fun () ->
        if Migration.Outcome.completed outcome then
          of_result "migration-conservation" (conserved ~source ~dest)
        else None);
    ]
