type outcome = {
  features : string list;
  signature : int64;
  violation : Oracle.violation option;
}

let profile_of = function
  | Program.F_none -> Sim.Fault.none
  | Program.F_lossy -> Sim.Fault.lossy
  | Program.F_degraded -> Sim.Fault.degraded
  | Program.F_flaky -> Sim.Fault.flaky

let ksm_config_of = function
  | Program.K_default -> None
  | Program.K_fast -> Some Memory.Ksm.fast_config
  | Program.K_incremental ->
    Some { Memory.Ksm.default_config with Memory.Ksm.incremental = true }
  | Program.K_tiny ->
    (* slow enough that detector waits stretch, small enough that a
       full pass over a fuzz-sized guest still terminates quickly *)
    Some { Memory.Ksm.pages_to_scan = 16; sleep = Sim.Time.ms 5.; incremental = false }

let wiring_of = function
  | Program.S_precopy -> Migration.Wiring.Pre_copy Migration.Precopy.default_config
  | Program.S_postcopy -> Migration.Wiring.Post_copy Migration.Postcopy.default_config

let outcome_class = function
  | Migration.Outcome.Completed _ -> "completed"
  | Migration.Outcome.Recovered _ -> "recovered"
  | Migration.Outcome.Aborted { reason; _ } -> (
    "aborted:"
    ^
    match reason with
    | Migration.Outcome.Round_timeout _ -> "round-timeout"
    | Migration.Outcome.Channel_down _ -> "channel-down"
    | Migration.Outcome.Cancelled _ -> "cancelled"
    | Migration.Outcome.Postcopy_paused -> "postcopy-paused")

(* Top-level so it stays polymorphic in the migration statistics type
   (pre-copy and post-copy results flow through the same checks). *)
let finish_migration ~emit ~violate ~strategy ~fault ~source ~dest outcome =
  emit
    (Printf.sprintf "mig:%s:%s:%s"
       (Program.strategy_to_string strategy)
       (Program.fault_to_string fault) (outcome_class outcome));
  match Oracle.check_migration outcome ~source ~dest with
  | Some v -> violate v
  | None -> ()

let build_scenario (p : Program.t) ctx =
  let ksm_config = ksm_config_of p.ksm in
  match p.scenario with
  | Program.Clean ->
    Ok (Cloudskulk.Scenarios.clean ?ksm_config ~customer_memory_mb:p.customer_mb ctx)
  | Program.Infected { syncs; use_vtx; strategy } ->
    let install_config =
      {
        (Cloudskulk.Install.default_config ~target_name:"guest0") with
        Cloudskulk.Install.use_vtx;
        strategy = wiring_of strategy;
      }
    in
    Cloudskulk.Scenarios.infected_result ?ksm_config ~customer_memory_mb:p.customer_mb
      ~attacker_syncs_changes:syncs ~install_config ctx

let verdict_class = function
  | Cloudskulk.Dedup_detector.Nested_vm_detected -> "detected"
  | Cloudskulk.Dedup_detector.No_nested_vm -> "clean"
  | Cloudskulk.Dedup_detector.Inconclusive _ -> "inconclusive"

let exec_world (p : Program.t) ~sink ~emit ~violate ~violated =
  let ctx = Sim.Ctx.create ~seed:p.seed ~telemetry:sink ~faults:(profile_of p.faults) () in
  match build_scenario p ctx with
  | Error f ->
    emit
      ("install:"
      ^
      match f with
      | Cloudskulk.Scenarios.Launch_failed _ -> "launch-failed"
      | Cloudskulk.Scenarios.Install_failed _ -> "install-failed")
  | Ok sc ->
    emit
      ("install:" ^ match p.scenario with Program.Clean -> "clean" | Program.Infected _ -> "ok");
    let sc_ctx = sc.Cloudskulk.Scenarios.ctx in
    let eng = Sim.Ctx.engine sc_ctx in
    let host = sc.Cloudskulk.Scenarios.host in
    let customer = sc.Cloudskulk.Scenarios.customer_vm in
    let denv = sc.Cloudskulk.Scenarios.detector_env in
    let extras = ref [] in
    let last_file = ref None in
    let delivered = ref 0 in
    let apply = function
      | Program.Advance ms ->
        ignore (Sim.Engine.run_for eng (Sim.Time.ms (float_of_int ms)));
        emit (Printf.sprintf "advance:%d" (Coverage.bucket (float_of_int ms)))
      | Program.Monitor i ->
        let cmd = Program.monitor_command (i mod Program.monitor_command_count) in
        let tok =
          match
            String.split_on_char ' ' cmd |> List.filter (fun s -> not (String.equal s ""))
          with
          | [] -> "empty"
          | words -> String.concat "-" words
        in
        (match Vmm.Monitor.execute customer cmd with
        | Vmm.Monitor.Ok_text _ -> emit (Printf.sprintf "mon:%s:ok" tok)
        | Vmm.Monitor.Error_text _ -> emit (Printf.sprintf "mon:%s:err" tok)
        | Vmm.Monitor.Quit -> emit (Printf.sprintf "mon:%s:quit" tok))
      | Program.Workload { kind; rate; ms } ->
        if Vmm.Vm.is_alive customer then begin
          let env =
            Workload.Exec_env.make ~vm:customer ~ctx:sc_ctx ~level:(Vmm.Vm.level customer)
              ~ram:(Vmm.Vm.ram customer) ~rng:(Sim.Ctx.fork_rng sc_ctx) ()
          in
          let spec =
            match kind with
            | Program.W_idle ->
              Workload.Idle.background ~pages_per_second:(float_of_int rate) ()
            | Program.W_compile ->
              Workload.Kernel_compile.background ~pages_per_second:(float_of_int rate) ()
            | Program.W_filebench -> Workload.Filebench.background ()
            | Program.W_netperf -> Workload.Netperf.background ()
          in
          let h = Workload.Background.start env spec in
          ignore (Sim.Engine.run_for eng (Sim.Time.ms (float_of_int ms)));
          Workload.Background.stop h;
          emit
            (Printf.sprintf "wl:%s:%d"
               (Program.workload_to_string kind)
               (Coverage.bucket (float_of_int (Workload.Background.ticks h))))
        end
        else emit "wl:dead-vm"
      | Program.Ksm_scan n -> (
        match Vmm.Hypervisor.ksm host with
        | Some k ->
          for _ = 1 to n do
            Memory.Ksm.scan_once k
          done;
          emit "ksmscan:ok"
        | None -> emit "ksmscan:none")
      | Program.Deliver { pages; salt = _ } ->
        if Vmm.Vm.is_alive customer then begin
          incr delivered;
          let name = Printf.sprintf "fz-%d" !delivered in
          let img = Memory.File_image.generate (Sim.Ctx.fork_rng sc_ctx) ~name ~pages in
          match denv.Cloudskulk.Dedup_detector.deliver_to_guest img with
          | Ok () ->
            last_file := Some name;
            emit (Printf.sprintf "deliver:ok:%d" (Coverage.bucket (float_of_int pages)))
          | Error _ -> emit "deliver:err"
        end
        else emit "deliver:dead-vm"
      | Program.Mutate { salt } -> (
        match !last_file with
        | None -> emit "mutate:none"
        | Some name -> (
          if Vmm.Vm.is_alive customer then
            match denv.Cloudskulk.Dedup_detector.mutate_in_guest ~name ~salt with
            | Ok () -> emit "mutate:ok"
            | Error _ -> emit "mutate:err"
          else emit "mutate:dead-vm"))
      | Program.Launch { memory_mb } -> (
        let cfg =
          {
            (Vmm.Qemu_config.default ~name:(Printf.sprintf "fz-extra%d" (List.length !extras)))
            with
            Vmm.Qemu_config.memory_mb;
          }
        in
        match Vmm.Hypervisor.launch host cfg with
        | Ok vm ->
          extras := vm :: !extras;
          emit "launch:ok"
        | Error _ -> emit "launch:err")
      | Program.Kill_last -> (
        match !extras with
        | [] -> emit "kill:none"
        | vm :: rest ->
          Vmm.Hypervisor.kill_vm host vm;
          extras := rest;
          emit "kill:ok")
      | Program.Migrate { strategy; fault; memory_mb; nested; cancel } -> (
        let cfg =
          { (Vmm.Qemu_config.default ~name:"fz-mig") with Vmm.Qemu_config.memory_mb }
        in
        let mp =
          Vmm.Layers.migration_pair ~ksm_config:Memory.Ksm.fast_config ~config:cfg
            ~nested_dest:nested sc_ctx
        in
        let source = mp.Vmm.Layers.mp_source and dest = mp.Vmm.Layers.mp_dest in
        if cancel then Vmm.Vm.request_migrate_cancel source;
        let inj =
          match fault with
          | Program.F_none -> None
          | f -> Some (Sim.Fault.create (profile_of f) (Sim.Ctx.fork_rng mp.Vmm.Layers.mp_ctx))
        in
        let finish outcome = finish_migration ~emit ~violate ~strategy ~fault ~source ~dest outcome in
        match strategy with
        | Program.S_precopy -> (
          match
            Migration.Precopy.migrate ?fault:inj mp.Vmm.Layers.mp_ctx ~source ~dest ()
          with
          | Error _ -> emit "mig:err"
          | Ok outcome -> finish outcome)
        | Program.S_postcopy -> (
          match
            Migration.Postcopy.migrate ?fault:inj mp.Vmm.Layers.mp_ctx ~source ~dest ()
          with
          | Error _ -> emit "mig:err"
          | Ok outcome -> finish outcome))
      | Program.Detect { file_pages } -> (
        let config =
          { Cloudskulk.Dedup_detector.default_config with Cloudskulk.Dedup_detector.file_pages }
        in
        match Cloudskulk.Dedup_detector.run ~config denv with
        | Error _ -> emit "detect:err"
        | Ok o ->
          let v = o.Cloudskulk.Dedup_detector.verdict in
          emit ("verdict:" ^ verdict_class v);
          (match (p.scenario, v) with
          | Program.Infected { syncs = false; _ }, Cloudskulk.Dedup_detector.No_nested_vm ->
            violate
              {
                Oracle.oracle = "false-negative";
                detail =
                  "CloudSkulk installed (no sync evasion) but the dedup detector returned \
                   No_nested_vm";
              }
          | Program.Clean, Cloudskulk.Dedup_detector.Nested_vm_detected ->
            violate
              {
                Oracle.oracle = "false-positive";
                detail = "clean host but the dedup detector returned Nested_vm_detected";
              }
          | _ -> ()))
    in
    List.iter
      (fun a ->
        if not (violated ()) then begin
          apply a;
          match Oracle.check_host host with Some v -> violate v | None -> ()
        end)
      p.actions;
    (match Vmm.Hypervisor.ksm host with
    | Some k ->
      emit (Printf.sprintf "ksm:shared:%d" (Coverage.bucket (float_of_int (Memory.Ksm.pages_shared k))));
      emit
        (Printf.sprintf "ksm:sharing:%d" (Coverage.bucket (float_of_int (Memory.Ksm.pages_sharing k))));
      emit
        (Printf.sprintf "ksm:unstable:%d"
           (Coverage.bucket (float_of_int (Memory.Ksm.unstable_candidates k))));
      emit (Printf.sprintf "ksm:passes:%d" (Coverage.bucket (float_of_int (Memory.Ksm.full_scans k))))
    | None -> ());
    emit
      (Printf.sprintf "vms:%d"
         (List.length (List.filter Vmm.Vm.is_alive (Vmm.Hypervisor.vms host))))

(* The mini datacenter behind the [fleet ...] header: run it at the
   program's shard count, feed the churn ledger to the conservation
   oracle, and - the partition-invariance oracle - re-run single-shard
   and demand byte-identical output. Engine state is thrown away; only
   features and violations escape. *)
let exec_fleet (f : Program.fleet_knob) ~seed ~emit ~violate =
  let spec = Program.fleet_spec_of f in
  let run ~shards = Fleet.World.run ~jobs:1 ~shards (Sim.Ctx.create ~seed ()) spec in
  let r = run ~shards:f.fl_shards in
  emit (Printf.sprintf "fleet:hosts:%d" f.fl_hosts);
  emit
    (Printf.sprintf "fleet:infected:%d:detected:%d"
       (Fleet.World.infected_hosts r) (Fleet.World.detected_hosts r));
  emit (Printf.sprintf "fleet:boots:%d" (Coverage.bucket (float_of_int (Fleet.World.boots r))));
  emit
    (Printf.sprintf "fleet:migrations:%d"
       (Coverage.bucket (float_of_int (Fleet.World.emigrations r))));
  if Fleet.World.parked r > 0 then emit "fleet:parked";
  if Fleet.World.dropped r > 0 then emit "fleet:dropped";
  (match Fleet.World.conservation r with
  | Ok () -> emit "fleet:conserved"
  | Error detail -> violate { Oracle.oracle = "fleet-conservation"; detail });
  if f.fl_shards > 1 then
    if String.equal (Fleet.World.render r) (Fleet.World.render (run ~shards:1)) then
      emit "fleet:partition-invariant"
    else
      violate
        {
          Oracle.oracle = "fleet-partition";
          detail =
            Printf.sprintf "fleet output differs between --shards %d and --shards 1"
              f.fl_shards;
        }

let run (p : Program.t) =
  let feats = ref [] in
  let emit f = feats := f :: !feats in
  let violation = ref None in
  let violate v = if Option.is_none !violation then violation := Some v in
  (* skulklint: allow sink-discipline — per-program coverage sink, local to one execution, read back only through fold_series *)
  let sink = Sim.Telemetry.create () in
  let violated () = Option.is_some !violation in
  (try exec_world p ~sink ~emit ~violate ~violated with
  | e -> violate { Oracle.oracle = "exception"; detail = Printexc.to_string e });
  (match p.Program.fleet with
  | None -> ()
  | Some f -> (
    try if not (violated ()) then exec_fleet f ~seed:p.Program.seed ~emit ~violate
    with e -> violate { Oracle.oracle = "exception"; detail = Printexc.to_string e }));
  Sim.Telemetry.fold_series sink ~init:() ~f:(fun () key v ->
      emit (Printf.sprintf "m:%s:%d" key (Coverage.bucket v)));
  let features = List.sort_uniq String.compare !feats in
  (* the signature hashes the ordered emission sequence (duplicates
     kept): two executions sharing a feature *set* but reaching it
     along different action paths count as distinct behaviours *)
  { features; signature = Coverage.path_signature (List.rev !feats); violation = !violation }
