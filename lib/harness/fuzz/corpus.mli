(** The on-disk corpus: programs with recorded outcomes.

    A corpus file is a {!Program.to_string} rendering followed (after
    the program's ["end"] line) by one [expect] line recording what the
    program did when it was saved:

    {v expect ok <signature-hex> v}
    {v expect violation <oracle> <signature-hex> v}

    [check] re-executes the program and demands the byte-identical
    outcome - the regression contract for minimised finds and for the
    hand-seeded near-miss programs in [test/corpus/]. Directory loads
    are sorted by filename so corpus iteration order never depends on
    the filesystem. *)

type entry = {
  name : string;  (** basename, sans directory *)
  program : Program.t;
  expect_violation : string option;  (** oracle name, [None] for [ok] *)
  expect_signature : string;  (** {!Coverage.hex} of the signature *)
}

val entry_of_outcome : name:string -> Program.t -> Exec.outcome -> entry

val entry_to_string : entry -> string

val entry_of_string : name:string -> string -> (entry, string) result

val load_dir : string -> (entry list, string) result
(** All [*.skulkfuzz] files in the directory, sorted by name; an empty
    or missing directory is an empty corpus. *)

val save : dir:string -> entry -> string
(** Write [entry] as [dir/<name>]; returns the path. *)

val check : entry -> (unit, string) result
(** Replay the program; [Error] describes any outcome drift (signature
    or violation class differing from the recorded expectation). *)
