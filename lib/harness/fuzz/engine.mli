(** The coverage-guided fuzzing loop.

    Rounds of [batch] candidate programs: each candidate is either
    freshly {!Program.generate}d or a {!Program.mutate}d corpus member,
    all drawn sequentially from one splitmix64 stream; the batch is
    executed through {!Sim.Parallel.map} (workers share nothing - every
    program builds its own world) and folded back {e in candidate
    order}, so corpus growth, coverage counts and finds are a pure
    function of [(seed, budget, batch)] whatever [jobs] is.

    A candidate contributing an unseen coverage feature joins the
    corpus. The first program to violate each oracle class is
    {!minimise}d (replay-verified delete-from-end passes, then
    {!Program.shrink} steps) and reported as a find.

    [run] also executes the feedback-free baseline - same seed, same
    budget, generation only - and reports both coverage counts, so
    every summary doubles as the guided-beats-random acceptance
    check. *)

type config = {
  budget : int;  (** candidate executions in the guided run *)
  batch : int;  (** candidates per round *)
  jobs : int;  (** parallel workers ({!Sim.Parallel.map}) *)
  seed : int;
  initial : Program.t list;  (** pre-seeded corpus (e.g. [test/corpus/]) *)
  baseline : bool;
      (** also run the feedback-free baseline (doubles the execution
          count); when [false] the [random_*] stats are 0 *)
}

type find = {
  find_program : Program.t;  (** minimised *)
  find_violation : Oracle.violation;
  find_outcome : Exec.outcome;  (** of the minimised program *)
}

type stats = {
  executed : int;
  corpus : Program.t list;  (** in discovery order *)
  guided_features : int;
  guided_signatures : int;
  random_features : int;
  random_signatures : int;
  finds : find list;
  feature_table : (string * int) list;  (** guided run, sorted *)
}

val run : ?progress:(string -> unit) -> config -> stats

val minimise : Program.t -> oracle:string -> Program.t
(** Smallest variant still violating [oracle]; every step is verified
    by replay. *)
