(** Scenario programs: the fuzzer's input language.

    A program is a typed action sequence over the simulator's public
    surfaces - scenario construction knobs ({!Cloudskulk.Scenarios}),
    QEMU monitor command interleavings, workload bursts, KSM scan
    nudges, detector-protocol file deliveries, side migrations with
    fault/cancel timings, VM launches and kills - plus the construction
    parameters of the world it runs in. Everything is bounded and
    deterministic: a program plus the library version pins one exact
    execution ({!Exec.run}).

    Programs have a line-oriented textual form ([to_string] /
    [of_string]) so minimised finds can be checked into [test/corpus/]
    and replayed byte-identically by the test suite. *)

type ksm_choice = K_default | K_fast | K_incremental | K_tiny

type fault_choice = F_none | F_lossy | F_degraded | F_flaky

type strategy_choice = S_precopy | S_postcopy

type workload_choice = W_idle | W_compile | W_filebench | W_netperf

type scenario_spec =
  | Clean
  | Infected of { syncs : bool; use_vtx : bool; strategy : strategy_choice }
      (** [syncs] is the Section VI-D evasion - programs carrying it are
          exempt from the false-negative oracle *)

type action =
  | Advance of int  (** run the engine for N virtual milliseconds *)
  | Monitor of int  (** index into the {!monitor_command} pool *)
  | Workload of { kind : workload_choice; rate : int; ms : int }
      (** run a background workload in the customer VM for [ms] *)
  | Ksm_scan of int  (** force N immediate ksmd wakeups *)
  | Deliver of { pages : int; salt : int }
      (** push a fresh unique file through the web-interface path *)
  | Mutate of { salt : int }  (** mutate the most recently delivered file *)
  | Launch of { memory_mb : int }  (** launch an extra VM on the host *)
  | Kill_last  (** kill the most recently launched extra VM *)
  | Migrate of {
      strategy : strategy_choice;
      fault : fault_choice;
      memory_mb : int;
      nested : bool;  (** destination nested inside a GuestX (Fig 4 L0-L1) *)
      cancel : bool;  (** request [migrate_cancel] before starting *)
    }  (** run a side live migration on a fresh {!Vmm.Layers.migration_pair} *)
  | Detect of { file_pages : int }  (** run the full dedup-detector protocol *)

(** A mini datacenter bolted onto the program ([fleet hosts=... ...]
    header line, absent for classic programs): when present, {!Exec.run}
    runs a {!Fleet.World} with these knobs after the single-host
    scenario, feeds its churn ledger to the conservation oracle, and -
    when [fl_shards > 1] - re-runs it single-shard and demands
    byte-identical output (the partition-invariance oracle). Blind
    generation never mints one; fleets enter hand-seeded and spread by
    mutation, so fleet-free programs keep their sealed signatures. *)
type fleet_knob = {
  fl_hosts : int;
  fl_tenants : int;  (** tenant VMs per host *)
  fl_churn : int;  (** boot = kill = migrate rate, events/hour/host *)
  fl_infect : int;  (** infection probability, percent *)
  fl_shards : int;  (** partition Exec runs the fleet with *)
}

type t = {
  seed : int;  (** the program's world seed *)
  scenario : scenario_spec;
  customer_mb : int;  (** customer VM RAM; small, to afford many programs *)
  ksm : ksm_choice;
  faults : fault_choice;  (** the scenario context's fault profile *)
  fleet : fleet_knob option;
  actions : action list;
}

val fleet_spec_of : fleet_knob -> Fleet.Spec.t
(** The (small, 10-sim-minute) fleet spec {!Exec} runs for a fleet
    program; shared with {!validate} so a degenerate fleet is a parse
    error rather than a crash at execution time. *)

val monitor_command_count : int
(** Size of the fixed pool [Monitor i] indexes into. *)

val monitor_command : int -> string
(** The pool entry at an index in [0, monitor_command_count): well-formed
    commands, commands needing state the program may not have, and
    garbage. Immutable by construction so fuzz workers in parallel
    domains can read it freely. *)

val max_actions : int
(** Upper bound on [actions] length (mutation never exceeds it). *)

val ksm_to_string : ksm_choice -> string
val fault_to_string : fault_choice -> string
val strategy_to_string : strategy_choice -> string
val workload_to_string : workload_choice -> string

val validate : t -> (unit, string) result
(** All fields within the generator's bounds - what [of_string] accepts. *)

val generate : Sim.Rng.t -> t
(** A fresh random program: at most 4 actions, always in-bounds. *)

val mutate : Sim.Rng.t -> t -> t
(** One to three mutation steps (insert/delete/duplicate/swap/replace/
    tweak an action; flip a scenario, KSM, fault or sizing knob;
    reseed). Mutated programs may grow up to {!max_actions} actions -
    structurally richer than anything [generate] emits, which is where
    guided fuzzing outruns blind generation. *)

val shrink : t -> t list
(** One-step-smaller variants (a numeric halved toward its floor, the
    customer VM shrunk) for minimisation; action deletion is the
    minimiser's own pass. *)

val to_string : t -> string
(** Canonical text: ["skulkfuzz v1"] header, one field or action per
    line, terminated by ["end"]. *)

val of_string : string -> (t, string) result
(** Parse [to_string]'s format, validating bounds; ignores anything
    after the ["end"] line (the corpus format stores the expected
    outcome there). *)

val equal : t -> t -> bool

val summary : t -> string
(** One line: scenario, knobs, action count. *)
