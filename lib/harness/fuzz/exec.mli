(** Deterministic program execution.

    [run p] builds a self-contained world from [p]'s seed and knobs
    (its own {!Sim.Ctx} with a private telemetry sink and the program's
    fault profile), interprets the action sequence, and checks the
    {!Oracle}s after every action. Execution is a pure function of the
    program: same program, same features, same signature, same
    violation - on any worker, at any [--jobs], which is what lets
    {!Engine} fan candidate batches out through {!Sim.Parallel} and
    still fold coverage deterministically. *)

type outcome = {
  features : string list;  (** sorted, distinct *)
  signature : int64;  (** {!Coverage.signature} of [features] *)
  violation : Oracle.violation option;
      (** the first oracle violation; later actions were not run *)
}

val run : Program.t -> outcome
(** Never raises: an escaped exception from any layer is itself
    reported as a violation under the ["exception"] oracle. *)
