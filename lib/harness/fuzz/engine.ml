type config = {
  budget : int;
  batch : int;
  jobs : int;
  seed : int;
  initial : Program.t list;
  baseline : bool;
}

type find = {
  find_program : Program.t;
  find_violation : Oracle.violation;
  find_outcome : Exec.outcome;
}

type stats = {
  executed : int;
  corpus : Program.t list;
  guided_features : int;
  guided_signatures : int;
  random_features : int;
  random_signatures : int;
  finds : find list;
  feature_table : (string * int) list;
}

let reproduces p ~oracle =
  match (Exec.run p).Exec.violation with
  | Some v -> String.equal v.Oracle.oracle oracle
  | None -> false

(* Delete-from-end passes (a dropped action often invalidates later
   ones, so scanning back to front converges fast), then numeric
   shrinks, repeated to a fixed point. Every accepted step replays the
   violation. *)
let minimise p ~oracle =
  let current = ref p in
  let progressed = ref true in
  while !progressed do
    progressed := false;
    (* action deletion *)
    let n = List.length !current.Program.actions in
    for i = n - 1 downto 0 do
      let cand =
        { !current with Program.actions = List.filteri (fun j _ -> j <> i) !current.Program.actions }
      in
      if
        List.length cand.Program.actions < List.length !current.Program.actions
        && reproduces cand ~oracle
      then begin
        current := cand;
        progressed := true
      end
    done;
    (* numeric shrinks *)
    let continue = ref true in
    while !continue do
      continue := false;
      match List.find_opt (fun cand -> reproduces cand ~oracle) (Program.shrink !current) with
      | Some cand ->
        current := cand;
        continue := true;
        progressed := true
      | None -> ()
    done
  done;
  !current

(* One batch: build candidates sequentially from the stream, execute
   them in parallel, return them paired with outcomes in order. *)
let run_batch ~jobs candidates =
  let arr = Array.of_list candidates in
  (* skulkscope: allow escape-capture — arr is a freshly-built fan-out array the workers only read, one disjoint index each *)
  let outs = Sim.Parallel.map ~jobs (Array.length arr) (fun i -> Exec.run arr.(i)) in
  List.combine candidates outs

let run ?(progress = fun _ -> ()) cfg =
  if cfg.budget < 0 then invalid_arg "Fuzz.Engine.run: negative budget";
  if cfg.batch <= 0 then invalid_arg "Fuzz.Engine.run: batch must be positive";
  let rng = Sim.Rng.create cfg.seed in
  let cov = Coverage.create () in
  let sigs = Hashtbl.create 256 in
  let corpus = ref (List.rev cfg.initial) (* kept newest-first; reversed at the end *) in
  let corpus_n = ref (List.length cfg.initial) in
  let finds = ref [] in
  let found_oracles = Hashtbl.create 4 in
  let executed = ref 0 in
  while !executed < cfg.budget do
    let n = min cfg.batch (cfg.budget - !executed) in
    let candidates =
      List.init n (fun _ ->
          if !corpus_n = 0 || Sim.Rng.int rng 2 = 0 then Program.generate rng
          else
            let i = Sim.Rng.int rng !corpus_n in
            Program.mutate rng (List.nth !corpus i))
    in
    List.iter
      (fun (p, (o : Exec.outcome)) ->
        incr executed;
        Hashtbl.replace sigs o.signature ();
        let fresh = Coverage.add cov o.features in
        if fresh > 0 then begin
          corpus := p :: !corpus;
          incr corpus_n
        end;
        match o.violation with
        | Some v when not (Hashtbl.mem found_oracles v.Oracle.oracle) ->
          Hashtbl.add found_oracles v.Oracle.oracle ();
          progress (Printf.sprintf "violation (%s): minimising [%s]" v.Oracle.oracle (Program.summary p));
          let small = minimise p ~oracle:v.Oracle.oracle in
          let so = Exec.run small in
          let sv = match so.Exec.violation with Some sv -> sv | None -> v in
          finds := { find_program = small; find_violation = sv; find_outcome = so } :: !finds
        | _ -> ())
      (run_batch ~jobs:cfg.jobs candidates);
    progress
      (Printf.sprintf "guided: %d/%d executed, %d features, %d corpus" !executed cfg.budget
         (Coverage.distinct cov) !corpus_n)
  done;
  (* The feedback-free baseline: same seed, same budget, same batching,
     but pure generation - no corpus, no mutation. The structural edge
     of the guided loop (mutation compounds interesting programs into
     longer ones than generate ever emits) is what this run measures. *)
  let rrng = Sim.Rng.create cfg.seed in
  let rcov = Coverage.create () in
  let rsigs = Hashtbl.create 256 in
  let rexecuted = ref 0 in
  while cfg.baseline && !rexecuted < cfg.budget do
    let n = min cfg.batch (cfg.budget - !rexecuted) in
    let candidates = List.init n (fun _ -> Program.generate rrng) in
    List.iter
      (fun (_, (o : Exec.outcome)) ->
        incr rexecuted;
        Hashtbl.replace rsigs o.signature ();
        ignore (Coverage.add rcov o.features))
      (run_batch ~jobs:cfg.jobs candidates);
    progress
      (Printf.sprintf "random baseline: %d/%d executed, %d features" !rexecuted cfg.budget
         (Coverage.distinct rcov))
  done;
  {
    executed = !executed;
    corpus = List.rev !corpus;
    guided_features = Coverage.distinct cov;
    guided_signatures = Hashtbl.length sigs;
    random_features = Coverage.distinct rcov;
    random_signatures = Hashtbl.length rsigs;
    finds = List.rev !finds;
    feature_table = Coverage.features cov;
  }
