type t = { hits : (string, int ref) Hashtbl.t }

let create () = { hits = Hashtbl.create 256 }

let add t feats =
  List.fold_left
    (fun fresh f ->
      match Hashtbl.find_opt t.hits f with
      | Some r ->
        incr r;
        fresh
      | None ->
        Hashtbl.add t.hits f (ref 1);
        fresh + 1)
    0 feats

let distinct t = Hashtbl.length t.hits

let features t =
  Hashtbl.fold (fun f r acc -> (f, !r) :: acc) t.hits []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let bucket v =
  if v <= 0. then 0
  else
    let b = 1 + int_of_float (Float.floor (Float.log2 v)) in
    max 0 (min 62 b)

(* FNV-1a 64-bit: tiny, allocation-free, and - unlike [Hashtbl.hash] -
   specified here, so corpus signatures survive compiler upgrades. *)
let fnv_offset = 0xcbf29ce484222325L
let fnv_prime = 0x100000001b3L

let fnv_byte h c = Int64.mul (Int64.logxor h (Int64.of_int c)) fnv_prime

let fnv_string h s =
  let h = ref h in
  String.iter (fun c -> h := fnv_byte !h (Char.code c)) s;
  !h

let signature feats =
  let feats = List.sort_uniq String.compare feats in
  List.fold_left (fun h f -> fnv_byte (fnv_string h f) (Char.code '\n')) fnv_offset feats

let path_signature feats =
  List.fold_left (fun h f -> fnv_byte (fnv_string h f) (Char.code '\n')) fnv_offset feats

let hex s = Printf.sprintf "%016Lx" s
