type ksm_choice = K_default | K_fast | K_incremental | K_tiny

type fault_choice = F_none | F_lossy | F_degraded | F_flaky

type strategy_choice = S_precopy | S_postcopy

type workload_choice = W_idle | W_compile | W_filebench | W_netperf

type scenario_spec =
  | Clean
  | Infected of { syncs : bool; use_vtx : bool; strategy : strategy_choice }

type action =
  | Advance of int
  | Monitor of int
  | Workload of { kind : workload_choice; rate : int; ms : int }
  | Ksm_scan of int
  | Deliver of { pages : int; salt : int }
  | Mutate of { salt : int }
  | Launch of { memory_mb : int }
  | Kill_last
  | Migrate of {
      strategy : strategy_choice;
      fault : fault_choice;
      memory_mb : int;
      nested : bool;
      cancel : bool;
    }
  | Detect of { file_pages : int }

(* A mini datacenter bolted onto the program: when present, Exec runs a
   Fleet.World with these knobs after the single-host scenario, feeds
   its churn ledger to the conservation oracle, and - when fl_shards >
   1 - re-runs it single-shard and demands byte-identical output (the
   partition-invariance oracle). Rates are integers per hour and the
   infection rate an integer percentage so the program format stays
   whitespace-separated ints. *)
type fleet_knob = {
  fl_hosts : int;
  fl_tenants : int;  (** tenant VMs per host *)
  fl_churn : int;  (** boot = kill = migrate rate, events/hour/host *)
  fl_infect : int;  (** infection probability, percent *)
  fl_shards : int;  (** partition Exec runs the fleet with *)
}

type t = {
  seed : int;
  scenario : scenario_spec;
  customer_mb : int;
  ksm : ksm_choice;
  faults : fault_choice;
  fleet : fleet_knob option;
  actions : action list;
}

(* Well-formed commands, commands whose preconditions the program may
   or may not have set up, and garbage the monitor must reject without
   raising. The pool is part of the program format: [Monitor i] encodes
   the index, so entries are append-only across versions. *)
(* A list, not an array: the pool is read from fuzz workers running in
   parallel domains, so the representation must be immutable. *)
let monitor_command_pool =
  [
    "info status";
    "info mem";
    "info migrate";
    "info qtree";
    "info network";
    "info cpus";
    "info blockstats";
    "info mtree";
    "info kvm";
    "info name";
    "info uuid";
    "info version";
    "help";
    "stop";
    "cont";
    "migrate_cancel";
    "migrate_recover";
    "migrate_set_speed 1g";
    "info bogus";
    "migrate";
    "migrate tcp:nowhere:9999";
    "migrate udp:x:1";
    "frobnicate";
    "   ";
    "info";
    "quit";
  ]

let monitor_command_count = List.length monitor_command_pool
let monitor_command i = List.nth monitor_command_pool i

let max_actions = 16

(* ---- bounds (shared by validate / generate / mutate / shrink) ---- *)

let max_seed = 1 lsl 30
let min_customer_mb = 32
let max_customer_mb = 512
let max_advance_ms = 5000
let min_rate = 50
let max_rate = 5000
let min_wl_ms = 10
let max_wl_ms = 2000
let max_ksm_scans = 8
let max_deliver_pages = 128
let max_salt = 1 lsl 20
let min_vm_mb = 16
let max_launch_mb = 512
let max_migrate_mb = 128
let min_detect_pages = 8
let max_detect_pages = 128
let max_fleet_hosts = 6
let max_fleet_tenants = 3
let max_fleet_churn = 30
let max_fleet_shards = 4

(* ---- rendering ---- *)

let ksm_to_string = function
  | K_default -> "default"
  | K_fast -> "fast"
  | K_incremental -> "incremental"
  | K_tiny -> "tiny"

let fault_to_string = function
  | F_none -> "none"
  | F_lossy -> "lossy"
  | F_degraded -> "degraded"
  | F_flaky -> "flaky"

let strategy_to_string = function S_precopy -> "precopy" | S_postcopy -> "postcopy"

let workload_to_string = function
  | W_idle -> "idle"
  | W_compile -> "compile"
  | W_filebench -> "filebench"
  | W_netperf -> "netperf"

let b01 b = if b then "1" else "0"

let scenario_to_string = function
  | Clean -> "scenario clean"
  | Infected { syncs; use_vtx; strategy } ->
    Printf.sprintf "scenario infected syncs=%s vtx=%s strategy=%s" (b01 syncs) (b01 use_vtx)
      (strategy_to_string strategy)

let action_to_string = function
  | Advance n -> Printf.sprintf "advance %d" n
  | Monitor i -> Printf.sprintf "monitor %d" i
  | Workload { kind; rate; ms } ->
    Printf.sprintf "workload %s rate=%d ms=%d" (workload_to_string kind) rate ms
  | Ksm_scan n -> Printf.sprintf "ksm_scan %d" n
  | Deliver { pages; salt } -> Printf.sprintf "deliver pages=%d salt=%d" pages salt
  | Mutate { salt } -> Printf.sprintf "mutate salt=%d" salt
  | Launch { memory_mb } -> Printf.sprintf "launch mb=%d" memory_mb
  | Kill_last -> "kill_last"
  | Migrate { strategy; fault; memory_mb; nested; cancel } ->
    Printf.sprintf "migrate strategy=%s fault=%s mb=%d nested=%s cancel=%s"
      (strategy_to_string strategy) (fault_to_string fault) memory_mb (b01 nested) (b01 cancel)
  | Detect { file_pages } -> Printf.sprintf "detect pages=%d" file_pages

let to_string t =
  let b = Buffer.create 256 in
  Buffer.add_string b "skulkfuzz v1\n";
  Buffer.add_string b (Printf.sprintf "seed %d\n" t.seed);
  Buffer.add_string b (scenario_to_string t.scenario);
  Buffer.add_char b '\n';
  Buffer.add_string b (Printf.sprintf "customer_mb %d\n" t.customer_mb);
  Buffer.add_string b (Printf.sprintf "ksm %s\n" (ksm_to_string t.ksm));
  Buffer.add_string b (Printf.sprintf "faults %s\n" (fault_to_string t.faults));
  (match t.fleet with
  | None -> ()
  | Some f ->
    Buffer.add_string b
      (Printf.sprintf "fleet hosts=%d tenants=%d churn=%d infect=%d shards=%d\n" f.fl_hosts
         f.fl_tenants f.fl_churn f.fl_infect f.fl_shards));
  List.iter
    (fun a ->
      Buffer.add_string b (action_to_string a);
      Buffer.add_char b '\n')
    t.actions;
  Buffer.add_string b "end\n";
  Buffer.contents b

let equal a b = String.equal (to_string a) (to_string b)

let summary t =
  Printf.sprintf "%s customer=%dMB ksm=%s faults=%s%s actions=%d"
    (match t.scenario with
    | Clean -> "clean"
    | Infected { syncs; use_vtx; strategy } ->
      Printf.sprintf "infected(syncs=%s,vtx=%s,%s)" (b01 syncs) (b01 use_vtx)
        (strategy_to_string strategy))
    t.customer_mb (ksm_to_string t.ksm) (fault_to_string t.faults)
    (match t.fleet with
    | None -> ""
    | Some f ->
      Printf.sprintf " fleet=%dx%d/churn%d/infect%d%%/%dsh" f.fl_hosts (f.fl_tenants + 1)
        f.fl_churn f.fl_infect f.fl_shards)
    (List.length t.actions)

(* ---- validation ---- *)

let in_range what v lo hi =
  if v < lo || v > hi then Error (Printf.sprintf "%s %d out of [%d, %d]" what v lo hi)
  else Ok ()

let ( let* ) r f = Result.bind r f

let validate_action = function
  | Advance n -> in_range "advance" n 1 max_advance_ms
  | Monitor i -> in_range "monitor index" i 0 (monitor_command_count - 1)
  | Workload { kind = _; rate; ms } ->
    let* () = in_range "workload rate" rate min_rate max_rate in
    in_range "workload ms" ms min_wl_ms max_wl_ms
  | Ksm_scan n -> in_range "ksm_scan" n 1 max_ksm_scans
  | Deliver { pages; salt } ->
    let* () = in_range "deliver pages" pages 1 max_deliver_pages in
    in_range "deliver salt" salt 0 (max_salt - 1)
  | Mutate { salt } -> in_range "mutate salt" salt 0 (max_salt - 1)
  | Launch { memory_mb } -> in_range "launch mb" memory_mb min_vm_mb max_launch_mb
  | Kill_last -> Ok ()
  | Migrate { memory_mb; _ } -> in_range "migrate mb" memory_mb min_vm_mb max_migrate_mb
  | Detect { file_pages } -> in_range "detect pages" file_pages min_detect_pages max_detect_pages

(* The fleet Exec runs for a fleet program: small and short (fuzz
   budget is per-program wall clock), rates wired straight from the
   knob. Shared with validation so "parses" implies "Fleet.Spec.validate
   accepts" - a degenerate fleet is a parse error, not a crash later. *)
let fleet_spec_of f =
  {
    Fleet.Spec.default with
    Fleet.Spec.hosts = f.fl_hosts;
    racks = if f.fl_hosts >= 2 then 2 else 1;
    tenants_per_host = f.fl_tenants;
    infection_rate = float_of_int f.fl_infect /. 100.;
    boot_per_hour = float_of_int f.fl_churn;
    kill_per_hour = float_of_int f.fl_churn;
    migrate_per_hour = float_of_int f.fl_churn;
    duration = Sim.Time.minutes 10.;
  }

let validate_fleet f =
  let* () = in_range "fleet hosts" f.fl_hosts 1 max_fleet_hosts in
  let* () = in_range "fleet tenants" f.fl_tenants 0 max_fleet_tenants in
  let* () = in_range "fleet churn" f.fl_churn 0 max_fleet_churn in
  let* () = in_range "fleet infect" f.fl_infect 0 100 in
  let* () = in_range "fleet shards" f.fl_shards 1 max_fleet_shards in
  match Fleet.Spec.validate (fleet_spec_of f) with
  | Ok _ -> Ok ()
  | Error e -> Error ("fleet: " ^ e)

let validate t =
  let* () = in_range "seed" t.seed 0 (max_seed - 1) in
  let* () = in_range "customer_mb" t.customer_mb min_customer_mb max_customer_mb in
  let* () = match t.fleet with None -> Ok () | Some f -> validate_fleet f in
  let* () =
    if List.length t.actions > max_actions then
      Error (Printf.sprintf "more than %d actions" max_actions)
    else Ok ()
  in
  List.fold_left (fun acc a -> Result.bind acc (fun () -> validate_action a)) (Ok ()) t.actions

(* ---- parsing ---- *)

let parse_int what s =
  match int_of_string_opt s with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "%s: not an integer: %S" what s)

let parse_bool what s =
  match s with
  | "0" -> Ok false
  | "1" -> Ok true
  | _ -> Error (Printf.sprintf "%s: expected 0 or 1, got %S" what s)

let parse_kv what tok =
  match String.index_opt tok '=' with
  | Some i ->
    Ok (String.sub tok 0 i, String.sub tok (i + 1) (String.length tok - i - 1))
  | None -> Error (Printf.sprintf "%s: expected key=value, got %S" what tok)

let lookup what kvs key =
  match List.assoc_opt key kvs with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "%s: missing %s=" what key)

let parse_kvs what toks =
  List.fold_left
    (fun acc tok ->
      let* kvs = acc in
      let* kv = parse_kv what tok in
      Ok (kv :: kvs))
    (Ok []) toks

let strategy_of_string what = function
  | "precopy" -> Ok S_precopy
  | "postcopy" -> Ok S_postcopy
  | s -> Error (Printf.sprintf "%s: unknown strategy %S" what s)

let fault_of_string what = function
  | "none" -> Ok F_none
  | "lossy" -> Ok F_lossy
  | "degraded" -> Ok F_degraded
  | "flaky" -> Ok F_flaky
  | s -> Error (Printf.sprintf "%s: unknown fault profile %S" what s)

let workload_of_string what = function
  | "idle" -> Ok W_idle
  | "compile" -> Ok W_compile
  | "filebench" -> Ok W_filebench
  | "netperf" -> Ok W_netperf
  | s -> Error (Printf.sprintf "%s: unknown workload %S" what s)

let ksm_of_string what = function
  | "default" -> Ok K_default
  | "fast" -> Ok K_fast
  | "incremental" -> Ok K_incremental
  | "tiny" -> Ok K_tiny
  | s -> Error (Printf.sprintf "%s: unknown ksm config %S" what s)

let parse_action line toks =
  match toks with
  | [ "advance"; n ] ->
    let* n = parse_int line n in
    Ok (Advance n)
  | [ "monitor"; i ] ->
    let* i = parse_int line i in
    Ok (Monitor i)
  | "workload" :: kind :: rest ->
    let* kind = workload_of_string line kind in
    let* kvs = parse_kvs line rest in
    let* rate = Result.bind (lookup line kvs "rate") (parse_int line) in
    let* ms = Result.bind (lookup line kvs "ms") (parse_int line) in
    Ok (Workload { kind; rate; ms })
  | [ "ksm_scan"; n ] ->
    let* n = parse_int line n in
    Ok (Ksm_scan n)
  | "deliver" :: rest ->
    let* kvs = parse_kvs line rest in
    let* pages = Result.bind (lookup line kvs "pages") (parse_int line) in
    let* salt = Result.bind (lookup line kvs "salt") (parse_int line) in
    Ok (Deliver { pages; salt })
  | "mutate" :: rest ->
    let* kvs = parse_kvs line rest in
    let* salt = Result.bind (lookup line kvs "salt") (parse_int line) in
    Ok (Mutate { salt })
  | "launch" :: rest ->
    let* kvs = parse_kvs line rest in
    let* memory_mb = Result.bind (lookup line kvs "mb") (parse_int line) in
    Ok (Launch { memory_mb })
  | [ "kill_last" ] -> Ok Kill_last
  | "migrate" :: rest ->
    let* kvs = parse_kvs line rest in
    let* strategy = Result.bind (lookup line kvs "strategy") (strategy_of_string line) in
    let* fault = Result.bind (lookup line kvs "fault") (fault_of_string line) in
    let* memory_mb = Result.bind (lookup line kvs "mb") (parse_int line) in
    let* nested = Result.bind (lookup line kvs "nested") (parse_bool line) in
    let* cancel = Result.bind (lookup line kvs "cancel") (parse_bool line) in
    Ok (Migrate { strategy; fault; memory_mb; nested; cancel })
  | "detect" :: rest ->
    let* kvs = parse_kvs line rest in
    let* file_pages = Result.bind (lookup line kvs "pages") (parse_int line) in
    Ok (Detect { file_pages })
  | _ -> Error (Printf.sprintf "unknown action line %S" line)

let tokens line =
  String.split_on_char ' ' line |> List.filter (fun s -> not (String.equal s ""))

let of_string s =
  let lines =
    String.split_on_char '\n' s
    |> List.map (fun l ->
           let l = String.trim l in
           l)
    |> List.filter (fun l -> not (String.equal l ""))
  in
  match lines with
  | "skulkfuzz v1" :: rest ->
    let rec parse_header rest acc =
      match rest with
      | [] -> Error "missing end line"
      | line :: rest -> (
        match tokens line with
        | [ "seed"; n ] ->
          let* seed = parse_int line n in
          parse_header rest { acc with seed }
        | [ "scenario"; "clean" ] -> parse_header rest { acc with scenario = Clean }
        | "scenario" :: "infected" :: kvtoks ->
          let* kvs = parse_kvs line kvtoks in
          let* syncs = Result.bind (lookup line kvs "syncs") (parse_bool line) in
          let* use_vtx = Result.bind (lookup line kvs "vtx") (parse_bool line) in
          let* strategy = Result.bind (lookup line kvs "strategy") (strategy_of_string line) in
          parse_header rest { acc with scenario = Infected { syncs; use_vtx; strategy } }
        | [ "customer_mb"; n ] ->
          let* customer_mb = parse_int line n in
          parse_header rest { acc with customer_mb }
        | [ "ksm"; k ] ->
          let* ksm = ksm_of_string line k in
          parse_header rest { acc with ksm }
        | [ "faults"; f ] ->
          let* faults = fault_of_string line f in
          parse_header rest { acc with faults }
        | "fleet" :: kvtoks ->
          let* kvs = parse_kvs line kvtoks in
          let* fl_hosts = Result.bind (lookup line kvs "hosts") (parse_int line) in
          let* fl_tenants = Result.bind (lookup line kvs "tenants") (parse_int line) in
          let* fl_churn = Result.bind (lookup line kvs "churn") (parse_int line) in
          let* fl_infect = Result.bind (lookup line kvs "infect") (parse_int line) in
          let* fl_shards = Result.bind (lookup line kvs "shards") (parse_int line) in
          parse_header rest
            { acc with fleet = Some { fl_hosts; fl_tenants; fl_churn; fl_infect; fl_shards } }
        | _ -> parse_actions (line :: rest) acc []
      )
    and parse_actions rest acc actions =
      match rest with
      | [] -> Error "missing end line"
      | "end" :: _ -> Ok { acc with actions = List.rev actions }
      | line :: rest ->
        let* a = parse_action line (tokens line) in
        parse_actions rest acc (a :: actions)
    in
    let empty =
      { seed = 0; scenario = Clean; customer_mb = min_customer_mb; ksm = K_default;
        faults = F_none; fleet = None; actions = [] }
    in
    let* t = parse_header rest empty in
    let* () = validate t in
    Ok t
  | first :: _ -> Error (Printf.sprintf "bad header %S (want \"skulkfuzz v1\")" first)
  | [] -> Error "empty program"

(* ---- generation ---- *)

let gen_strategy rng = if Sim.Rng.int rng 4 = 0 then S_postcopy else S_precopy

let gen_fault rng =
  let r = Sim.Rng.int rng 20 in
  if r < 8 then F_none else if r < 13 then F_lossy else if r < 16 then F_degraded else F_flaky

let gen_action rng =
  match Sim.Rng.int rng 18 with
  | 0 | 1 | 2 -> Advance (1 + Sim.Rng.int rng 2000)
  | 3 | 4 | 5 | 6 -> Monitor (Sim.Rng.int rng monitor_command_count)
  | 7 | 8 ->
    Workload
      {
        kind = Sim.Rng.pick rng [| W_idle; W_compile; W_filebench; W_netperf |];
        rate = min_rate + Sim.Rng.int rng (max_rate - min_rate);
        ms = min_wl_ms + Sim.Rng.int rng 990;
      }
  | 9 | 10 -> Ksm_scan (1 + Sim.Rng.int rng 4)
  | 11 | 12 -> Deliver { pages = 1 + Sim.Rng.int rng 64; salt = Sim.Rng.int rng 1024 }
  | 13 -> Mutate { salt = Sim.Rng.int rng 1024 }
  | 14 -> Launch { memory_mb = 16 * (1 + Sim.Rng.int rng 8) }
  | 15 -> Kill_last
  | 16 ->
    Migrate
      {
        strategy = gen_strategy rng;
        fault = gen_fault rng;
        memory_mb = 16 * (1 + Sim.Rng.int rng 4);
        nested = Sim.Rng.bool rng;
        cancel = Sim.Rng.int rng 4 = 0;
      }
  | _ -> Detect { file_pages = min_detect_pages + Sim.Rng.int rng 57 }

let gen_scenario rng =
  if Sim.Rng.bool rng then Clean
  else
    Infected
      {
        syncs = Sim.Rng.int rng 4 = 0;
        use_vtx = Sim.Rng.int rng 4 > 0;
        strategy = gen_strategy rng;
      }

let generate rng =
  {
    seed = Sim.Rng.int rng max_seed;
    scenario = gen_scenario rng;
    customer_mb = Sim.Rng.pick rng [| 32; 48; 64; 96; 128 |];
    ksm = Sim.Rng.pick rng [| K_default; K_fast; K_incremental; K_tiny |];
    faults = gen_fault rng;
    (* blind generation never mints a fleet: fleets enter the corpus
       hand-seeded and spread through mutation of programs that already
       carry one, so the rng draw sequence of fleet-free programs (and
       with it every sealed signature) is unchanged by the knob *)
    fleet = None;
    actions = List.init (Sim.Rng.int rng 5) (fun _ -> gen_action rng);
  }

(* ---- mutation ---- *)

let nth_opt l i = List.nth_opt l i

let replace_nth l i v = List.mapi (fun j x -> if j = i then v else x) l

let remove_nth l i = List.filteri (fun j _ -> j <> i) l

let insert_nth l i v =
  let rec go j = function
    | rest when j = i -> v :: rest
    | x :: rest -> x :: go (j + 1) rest
    | [] -> [ v ]
  in
  go 0 l

let clamp lo hi v = max lo (min hi v)

let tweak_action rng a =
  let upordown v lo hi = clamp lo hi (if Sim.Rng.bool rng then v * 2 else max lo (v / 2)) in
  match a with
  | Advance n -> Advance (upordown n 1 max_advance_ms)
  | Monitor _ -> Monitor (Sim.Rng.int rng monitor_command_count)
  | Workload w ->
    if Sim.Rng.bool rng then Workload { w with rate = upordown w.rate min_rate max_rate }
    else Workload { w with ms = upordown w.ms min_wl_ms max_wl_ms }
  | Ksm_scan n -> Ksm_scan (upordown n 1 max_ksm_scans)
  | Deliver d -> Deliver { d with pages = upordown d.pages 1 max_deliver_pages }
  | Mutate _ -> Mutate { salt = Sim.Rng.int rng 1024 }
  | Launch l -> Launch { memory_mb = upordown l.memory_mb min_vm_mb max_launch_mb }
  | Kill_last -> Kill_last
  | Migrate m -> (
    match Sim.Rng.int rng 4 with
    | 0 -> Migrate { m with fault = gen_fault rng }
    | 1 -> Migrate { m with cancel = not m.cancel }
    | 2 -> Migrate { m with nested = not m.nested }
    | _ -> Migrate { m with memory_mb = upordown m.memory_mb min_vm_mb max_migrate_mb })
  | Detect d -> Detect { file_pages = upordown d.file_pages min_detect_pages max_detect_pages }

let mutate_once rng t =
  let n = List.length t.actions in
  (* growth-biased: a third of steps insert. generate caps programs at
     4 actions, so compounding inserts is how the guided loop reaches
     interleavings (workload + migration + detect + monitor chatter)
     that blind generation essentially never emits. *)
  match Sim.Rng.int rng 12 with
  | (0 | 1 | 2 | 3) when n < max_actions ->
    { t with actions = insert_nth t.actions (Sim.Rng.int rng (n + 1)) (gen_action rng) }
  | 4 when n > 0 -> { t with actions = remove_nth t.actions (Sim.Rng.int rng n) }
  | 5 when n > 0 && n < max_actions ->
    let i = Sim.Rng.int rng n in
    let a = match nth_opt t.actions i with Some a -> a | None -> gen_action rng in
    { t with actions = insert_nth t.actions i a }
  | 6 when n > 1 ->
    let i = Sim.Rng.int rng n and j = Sim.Rng.int rng n in
    let ai = List.nth t.actions i and aj = List.nth t.actions j in
    { t with actions = replace_nth (replace_nth t.actions i aj) j ai }
  | 7 when n > 0 ->
    { t with actions = replace_nth t.actions (Sim.Rng.int rng n) (gen_action rng) }
  | 8 when n > 0 ->
    let i = Sim.Rng.int rng n in
    let a = List.nth t.actions i in
    { t with actions = replace_nth t.actions i (tweak_action rng a) }
  | 9 -> { t with scenario = gen_scenario rng }
  | 10 -> { t with ksm = Sim.Rng.pick rng [| K_default; K_fast; K_incremental; K_tiny |] }
  | 11 -> { t with faults = gen_fault rng }
  | _ -> (
    (* fleet tweaks ride the default arm and only for programs that
       already carry a fleet: the `when` guard draws no randomness for
       fleet-free programs, so their mutation trajectories (and sealed
       corpus signatures) are untouched by the knob *)
    match t.fleet with
    | Some f when Sim.Rng.int rng 2 = 0 ->
      let f =
        match Sim.Rng.int rng 5 with
        | 0 -> { f with fl_hosts = clamp 1 max_fleet_hosts (f.fl_hosts + Sim.Rng.pick rng [| -1; 1 |]) }
        | 1 -> { f with fl_tenants = clamp 0 max_fleet_tenants (f.fl_tenants + Sim.Rng.pick rng [| -1; 1 |]) }
        | 2 -> { f with fl_churn = clamp 0 max_fleet_churn (if Sim.Rng.bool rng then f.fl_churn * 2 else f.fl_churn / 2) }
        | 3 -> { f with fl_infect = clamp 0 100 (if Sim.Rng.bool rng then f.fl_infect * 2 else f.fl_infect / 2) }
        | _ -> { f with fl_shards = 1 + Sim.Rng.int rng max_fleet_shards }
      in
      { t with fleet = Some f }
    | _ ->
      if Sim.Rng.bool rng then
        { t with customer_mb = Sim.Rng.pick rng [| 32; 48; 64; 96; 128 |] }
      else { t with seed = Sim.Rng.int rng max_seed })

let mutate rng t =
  (* a mutant that renders identically to its parent would burn budget
     on a guaranteed-duplicate signature; retry a few times *)
  let attempt () =
    let steps = 2 + Sim.Rng.int rng 3 in
    let rec go t k = if k = 0 then t else go (mutate_once rng t) (k - 1) in
    go t steps
  in
  let rec distinct tries =
    let m = attempt () in
    if tries = 0 || not (equal m t) then m else distinct (tries - 1)
  in
  distinct 8

(* ---- shrinking (numeric one-steps; deletion is the minimiser's) ---- *)

let shrink_action = function
  | Advance n when n > 1 -> Some (Advance (max 1 (n / 2)))
  | Workload w when w.ms > min_wl_ms -> Some (Workload { w with ms = max min_wl_ms (w.ms / 2) })
  | Workload w when w.rate > min_rate ->
    Some (Workload { w with rate = max min_rate (w.rate / 2) })
  | Ksm_scan n when n > 1 -> Some (Ksm_scan (n / 2))
  | Deliver d when d.pages > 1 -> Some (Deliver { d with pages = max 1 (d.pages / 2) })
  | Launch l when l.memory_mb > min_vm_mb ->
    Some (Launch { memory_mb = max min_vm_mb (l.memory_mb / 2) })
  | Migrate m when m.memory_mb > min_vm_mb ->
    Some (Migrate { m with memory_mb = max min_vm_mb (m.memory_mb / 2) })
  | Detect d when d.file_pages > min_detect_pages ->
    Some (Detect { file_pages = max min_detect_pages (d.file_pages / 2) })
  | _ -> None

let shrink t =
  let sized =
    if t.customer_mb > min_customer_mb then [ { t with customer_mb = min_customer_mb } ] else []
  in
  let fleetless =
    match t.fleet with
    | None -> []
    | Some f ->
      { t with fleet = None }
      :: (if f.fl_hosts > 1 then [ { t with fleet = Some { f with fl_hosts = f.fl_hosts / 2 } } ]
          else [])
      @ (if f.fl_churn > 0 then [ { t with fleet = Some { f with fl_churn = f.fl_churn / 2 } } ]
         else [])
  in
  let sized = fleetless @ sized in
  let shrunk =
    List.concat
      (List.mapi
         (fun i a ->
           match shrink_action a with
           | Some a' -> [ { t with actions = replace_nth t.actions i a' } ]
           | None -> [])
         t.actions)
  in
  sized @ shrunk
