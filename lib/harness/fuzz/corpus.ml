type entry = {
  name : string;
  program : Program.t;
  expect_violation : string option;
  expect_signature : string;
}

let entry_of_outcome ~name program (o : Exec.outcome) =
  {
    name;
    program;
    expect_violation = Option.map (fun v -> v.Oracle.oracle) o.violation;
    expect_signature = Coverage.hex o.signature;
  }

let expect_line e =
  match e.expect_violation with
  | None -> Printf.sprintf "expect ok %s" e.expect_signature
  | Some oracle -> Printf.sprintf "expect violation %s %s" oracle e.expect_signature

let entry_to_string e = Program.to_string e.program ^ expect_line e ^ "\n"

let ( let* ) r f = Result.bind r f

let entry_of_string ~name s =
  let* program = Program.of_string s in
  let lines = String.split_on_char '\n' s |> List.map String.trim in
  let expect =
    List.find_opt (fun l -> String.length l >= 7 && String.equal (String.sub l 0 7) "expect ") lines
  in
  match expect with
  | None -> Error (Printf.sprintf "%s: no expect line" name)
  | Some l -> (
    match String.split_on_char ' ' l |> List.filter (fun t -> not (String.equal t "")) with
    | [ "expect"; "ok"; sg ] ->
      Ok { name; program; expect_violation = None; expect_signature = sg }
    | [ "expect"; "violation"; oracle; sg ] ->
      Ok { name; program; expect_violation = Some oracle; expect_signature = sg }
    | _ -> Error (Printf.sprintf "%s: bad expect line %S" name l))

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let has_suffix s suf =
  let n = String.length s and m = String.length suf in
  n >= m && String.equal (String.sub s (n - m) m) suf

let load_dir dir =
  if not (Sys.file_exists dir) then Ok []
  else
    let files =
      Sys.readdir dir |> Array.to_list
      |> List.filter (fun f -> has_suffix f ".skulkfuzz")
      |> List.sort String.compare
    in
    List.fold_left
      (fun acc f ->
        let* entries = acc in
        let* e = entry_of_string ~name:f (read_file (Filename.concat dir f)) in
        Ok (e :: entries))
      (Ok []) files
    |> Result.map List.rev

let save ~dir e =
  let path = Filename.concat dir e.name in
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (entry_to_string e));
  path

let check e =
  let o = Exec.run e.program in
  let got_violation = Option.map (fun v -> v.Oracle.oracle) o.violation in
  let got_signature = Coverage.hex o.signature in
  let show = function None -> "ok" | Some oracle -> "violation " ^ oracle in
  if not (Option.equal String.equal got_violation e.expect_violation) then
    Error
      (Printf.sprintf "%s: expected %s, replay produced %s" e.name (show e.expect_violation)
         (show got_violation))
  else if not (String.equal got_signature e.expect_signature) then
    Error
      (Printf.sprintf "%s: coverage signature drifted: recorded %s, replay %s" e.name
         e.expect_signature got_signature)
  else Ok ()
