(** A declarative experiment specification.

    Every table, figure and ablation is a value of {!t}: an id for
    [--only], a one-line doc for [--list], and a body that receives the
    shared parameter surface - trial count, worker domains, and the
    {!Sim.Ctx.t} carrying seed, telemetry sink and fault profile. The
    {!Registry} gives all of them one flag set
    ([--only]/[--trials]/[--jobs]/[--seed]/[--faults]/[--metrics-out]/
    [--trace-out]/[--list]); the spec never parses flags itself. *)

type params = {
  trials : int;  (** repetitions per data point ([--trials], default 5) *)
  jobs : int;  (** worker domains for independent trials ([--jobs]) *)
  shards : int;
      (** engine partitions for sharded worlds ([--shards], default 1).
          Only experiments built on {!Sim.Parallel.run_sharded} (fleet)
          consume it; output is byte-identical whatever the value. *)
  ctx : Sim.Ctx.t;
      (** the experiment's root context: seeded from [--seed] (or the
          spec's default), carrying the shared telemetry sink (when
          [--metrics-out]/[--trace-out] are set) and the [--faults]
          profile. Bodies derive per-trial children with
          {!Sim.Parallel.map_ctx} or {!Sim.Ctx.with_seed}. *)
}

type t = {
  id : string;  (** the [--only] handle, e.g. ["fig4"] *)
  doc : string;  (** one-liner shown by [--list] *)
  default_seed : int;  (** root seed when [--seed] is not given *)
  run : params -> unit;  (** render the experiment to stdout *)
}

val make : ?default_seed:int -> id:string -> doc:string -> (params -> unit) -> t
(** [default_seed] defaults to 1. *)
