(** The experiment registry and its dispatch shell.

    Experiment modules {!register} their {!Experiment.t} specs; a
    driver executable is then one call to {!main}. The registry owns
    the whole flag surface (see {!Flags}), builds one root
    {!Sim.Ctx.t} per experiment - seeded from [--seed] or the spec's
    default, carrying the shared sink and the [--faults] profile - and
    exports telemetry once at the end of the run. *)

val register : Experiment.t -> unit
(** Append a spec. Registration order is presentation order ([--list]
    and full runs). Raises [Invalid_argument] on a duplicate id. *)

val all : unit -> Experiment.t list
(** Registered specs, in registration order. *)

val find : string -> Experiment.t option

val list_lines : unit -> string list
(** The [--list] output, one line per experiment ([%-14s %s] of id and
    doc) - exposed so tests can pin it without spawning a process. *)

val term : prologue:string list -> unit Cmdliner.Term.t
(** The assembled term over the shared flags. [prologue] lines are
    printed before a full (no [--only]) run. *)

val main : name:string -> doc:string -> ?prologue:string list -> unit -> int
(** Build the command and [Cmdliner.Cmd.eval] it; returns the exit
    code. *)
