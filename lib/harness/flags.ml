open Cmdliner

let only =
  let doc = "Run a single experiment (e.g. fig4, table2, abl-pages)." in
  Arg.(value & opt (some string) None & info [ "only" ] ~docv:"ID" ~doc)

let trials =
  let doc = "Repetitions per data point (the paper uses 5)." in
  Arg.(value & opt int 5 & info [ "trials"; "runs" ] ~docv:"N" ~doc)

let jobs =
  let doc =
    "Worker domains for experiments with independent trials (detect, fig4, abl-sync, \
     abl-density). 1 = sequential; 0 = all available cores. Output is byte-identical \
     whatever the value: trials are seeded independently and results are rendered in \
     trial order."
  in
  Arg.(value & opt int 1 & info [ "jobs"; "j" ] ~docv:"N" ~doc)

let shards =
  let doc =
    "Engine partitions for sharded-world experiments (fleet). Each shard owns a \
     contiguous block of hosts and runs them in lockstep epochs; cross-shard traffic \
     moves through deterministic mailboxes, so output is byte-identical whatever the \
     value. Experiments built on per-trial parallelism ignore it."
  in
  Arg.(value & opt int 1 & info [ "shards" ] ~docv:"N" ~doc)

let seed =
  let doc =
    "Root seed for the experiment context. Defaults to each experiment's published seed, \
     so output matches the paper tables; set it to explore other deterministic universes."
  in
  Arg.(value & opt (some int) None & info [ "seed" ] ~docv:"SEED" ~doc)

let seed_default default =
  let doc = "Seed for the deterministic simulation." in
  Arg.(value & opt int default & info [ "seed" ] ~docv:"SEED" ~doc)

let faults =
  let doc =
    "Channel fault profile injected into migrations (experiments that honour it: detect). \
     One of none, lossy, degraded, flaky. Fault schedules are seeded per trial, so output \
     is still byte-identical across --jobs levels; 'none' reproduces the fault-free runs \
     exactly."
  in
  Arg.(value & opt string "none" & info [ "faults" ] ~docv:"PROFILE" ~doc)

let metrics_out =
  let doc =
    "Write Prometheus-style telemetry (counters, gauges, histograms from every simulated \
     layer) to $(docv) (\"-\" for stdout) when the run finishes. Off by default: without \
     this flag (and --trace-out) no telemetry is collected and output is byte-identical \
     to an uninstrumented build."
  in
  Arg.(value & opt (some string) None & info [ "metrics-out" ] ~docv:"FILE" ~doc)

let trace_out =
  let doc =
    "Write the JSONL span trace (sim-time intervals with structured fields) to $(docv) \
     (\"-\" for stdout)."
  in
  Arg.(value & opt (some string) None & info [ "trace-out" ] ~docv:"FILE" ~doc)

let list_only =
  let doc = "List experiment ids and exit." in
  Arg.(value & flag & info [ "list" ] ~doc)

let write_out path contents =
  match path with
  | "-" -> print_string contents
  | path ->
    let oc = open_out path in
    output_string oc contents;
    close_out oc

let sink ~metrics_out ~trace_out =
  (* skulklint: allow sink-discipline — the harness IS the entry point; the sink made here is the root one threaded down via Sim.Ctx *)
  if metrics_out <> None || trace_out <> None then Some (Sim.Telemetry.create ()) else None

let export ~metrics_out ~trace_out = function
  | None -> ()
  | Some t ->
    Option.iter (fun p -> write_out p (Sim.Telemetry.prometheus_string t)) metrics_out;
    Option.iter (fun p -> write_out p (Sim.Telemetry.jsonl_string t)) trace_out
