(* skulklint: allow toplevel-mutable — populated once by register at startup, before any trial domain spawns; read-only afterwards *)
let experiments : Experiment.t list ref = ref []

let register (e : Experiment.t) =
  if List.exists (fun e' -> String.equal e'.Experiment.id e.Experiment.id) !experiments
  then
    invalid_arg (Printf.sprintf "Harness.Registry.register: duplicate id %S" e.Experiment.id);
  experiments := e :: !experiments

let all () = List.rev !experiments

let find id = List.find_opt (fun e -> String.equal e.Experiment.id id) (all ())

let list_lines () =
  List.map
    (fun (e : Experiment.t) -> Printf.sprintf "%-14s %s" e.Experiment.id e.Experiment.doc)
    (all ())

let run_registry ~prologue ~only ~trials ~jobs ~shards ~seed ~faults ~metrics_out
    ~trace_out ~list_only =
  if list_only then begin
    List.iter print_endline (list_lines ());
    `Ok ()
  end
  else
    match Sim.Fault.profile_of_string faults with
    | Error e -> `Error (false, e)
    | Ok faults -> (
      let telemetry = Flags.sink ~metrics_out ~trace_out in
      let run_one (e : Experiment.t) =
        let seed = match seed with Some s -> s | None -> e.Experiment.default_seed in
        let ctx = Sim.Ctx.create ~seed ?telemetry ~faults () in
        e.Experiment.run { Experiment.trials; jobs; shards; ctx }
      in
      match only with
      | Some id -> (
        match find id with
        | Some e ->
          run_one e;
          Flags.export ~metrics_out ~trace_out telemetry;
          `Ok ()
        | None ->
          `Error
            ( false,
              Printf.sprintf "unknown experiment %S; use --list to see the available ids" id ))
      | None ->
        List.iter (fun line -> Printf.printf "%s\n" line) prologue;
        List.iter run_one (all ());
        Flags.export ~metrics_out ~trace_out telemetry;
        `Ok ())

open Cmdliner

let term ~prologue =
  Term.(
    ret
      (const (fun only trials jobs shards seed faults metrics_out trace_out list_only ->
           run_registry ~prologue ~only ~trials ~jobs ~shards ~seed ~faults ~metrics_out
             ~trace_out ~list_only)
      $ Flags.only $ Flags.trials $ Flags.jobs $ Flags.shards $ Flags.seed $ Flags.faults
      $ Flags.metrics_out $ Flags.trace_out $ Flags.list_only))

let main ~name ~doc ?(prologue = []) () =
  Cmd.eval (Cmd.v (Cmd.info name ~doc) (term ~prologue))
