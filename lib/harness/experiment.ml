type params = {
  trials : int;
  jobs : int;
  shards : int;
  ctx : Sim.Ctx.t;
}

type t = {
  id : string;
  doc : string;
  default_seed : int;
  run : params -> unit;
}

let make ?(default_seed = 1) ~id ~doc run = { id; doc; default_seed; run }
