(** The shared command-line surface.

    One definition of every flag the experiment drivers accept, so the
    bench shell and the CLI stay in lockstep (names, defaults, doc
    strings) and an experiment never grows a private variant. *)

val only : string option Cmdliner.Term.t
(** [--only ID]: run a single experiment. *)

val trials : int Cmdliner.Term.t
(** [--trials N] (alias [--runs], default 5): repetitions per data
    point. *)

val jobs : int Cmdliner.Term.t
(** [--jobs N]/[-j N] (default 1): worker domains; 0 = all cores.
    Output is byte-identical whatever the value. *)

val shards : int Cmdliner.Term.t
(** [--shards N] (default 1): engine partitions for sharded-world
    experiments (fleet). Output is byte-identical whatever the
    value. *)

val seed : int option Cmdliner.Term.t
(** [--seed SEED]: root seed; [None] means each experiment's
    {!Experiment.t.default_seed}. *)

val seed_default : int -> int Cmdliner.Term.t
(** [--seed SEED] with an explicit default, for single-scenario tools
    (the CLI uses 42). *)

val faults : string Cmdliner.Term.t
(** [--faults PROFILE] (default "none"): fault profile name, validated
    with {!Sim.Fault.profile_of_string} at startup. *)

val metrics_out : string option Cmdliner.Term.t
(** [--metrics-out FILE]: Prometheus export path ("-" for stdout). *)

val trace_out : string option Cmdliner.Term.t
(** [--trace-out FILE]: JSONL span-trace export path ("-" for stdout). *)

val list_only : bool Cmdliner.Term.t
(** [--list]: print experiment ids and exit. *)

val write_out : string -> string -> unit
(** [write_out path contents]: write to [path], or stdout when [path]
    is ["-"]. *)

val sink : metrics_out:string option -> trace_out:string option -> Sim.Telemetry.t option
(** The run's telemetry sink: present iff at least one export path was
    given, so unexported runs pay nothing and stay byte-identical to an
    uninstrumented build. *)

val export :
  metrics_out:string option -> trace_out:string option -> Sim.Telemetry.t option -> unit
(** Write whichever exports were requested. *)
