type config = {
  link : Net.Link.t;
  derate_per_level : float;
  rsd_by_level : float array;
  transfer_bytes : int;
}

let default_config =
  {
    link = Net.Link.lan_1gbe;
    derate_per_level = 0.985;
    rsd_by_level = [| 0.0111; 0.1032; 0.0396 |];
    transfer_bytes = 128 * 1024 * 1024;
  }

type result = {
  throughput_mbit_s : float;
  elapsed : Sim.Time.t;
}

let pow base n =
  let rec go acc n = if n <= 0 then acc else go (acc *. base) (n - 1) in
  go 1.0 n

let level_rsd config level =
  let l = Vmm.Level.to_int level in
  if l < Array.length config.rsd_by_level then config.rsd_by_level.(l)
  else config.rsd_by_level.(Array.length config.rsd_by_level - 1)

let run ?(config = default_config) env =
  let level = env.Exec_env.level in
  (* The paper's RSDs are run-to-run, so the noise is drawn once per run
     (scheduling, host interference) and applied to the whole stream -
     per-chunk jitter would average itself away over thousands of
     chunks. *)
  let rsd = level_rsd config level in
  let run_noise = Sim.Rng.lognormal_noise env.Exec_env.rng ~rsd in
  let derate = pow config.derate_per_level (Vmm.Level.to_int level) *. run_noise in
  let flow =
    Net.Flow.run env.Exec_env.ctx ~link:config.link ~derate ~rng:env.Exec_env.rng
      ~bytes:config.transfer_bytes ()
  in
  (match env.Exec_env.vm with
  | Some vm ->
    let io = Vmm.Vm.io vm in
    io.Vmm.Vm.net_tx_bytes <- io.Vmm.Vm.net_tx_bytes + config.transfer_bytes
  | None -> ());
  { throughput_mbit_s = flow.Net.Flow.throughput_mbit_s; elapsed = flow.Net.Flow.elapsed }

let background ?(config = default_config) () =
  let tick = Sim.Time.ms 100. in
  (* Socket buffers recycle a small ring of pages; the dirty footprint
     of a sender is tiny compared to its traffic. *)
  let ring_pages = 512 in
  {
    Background.name = "netperf";
    tick;
    action =
      (fun env ~tick_index:_ ->
        let bytes_per_tick =
          int_of_float (config.link.Net.Link.bandwidth_bytes_per_s *. Sim.Time.to_s tick)
        in
        Exec_env.dirty_region env ~offset:0 ~length:ring_pages 16;
        match env.Exec_env.vm with
        | Some vm ->
          let io = Vmm.Vm.io vm in
          io.Vmm.Vm.net_tx_bytes <- io.Vmm.Vm.net_tx_bytes + bytes_per_tick
        | None -> ());
  }
