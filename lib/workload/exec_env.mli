(** Workload execution environment.

    Everything a workload generator needs to run "somewhere": an engine
    to account virtual time on, the virtualization level that the cost
    model prices operations at, the RAM it dirties, and the VM whose I/O
    counters it bumps (absent at L0). *)

type t = {
  ctx : Sim.Ctx.t;  (** the instance context workloads run against *)
  engine : Sim.Engine.t;  (** [Sim.Ctx.engine ctx], cached for the hot paths *)
  level : Vmm.Level.t;
  ram : Memory.Address_space.t;
  rng : Sim.Rng.t;
  vm : Vmm.Vm.t option;
  params : Vmm.Cost_model.params;
  noise_rsd : float;  (** run-to-run jitter applied to measured workloads *)
}

val of_layers : ?noise_rsd:float -> ?params:Vmm.Cost_model.params -> Vmm.Layers.env -> t
(** Adopt a {!Vmm.Layers.env} topology (default noise 2 %). *)

val make :
  ?noise_rsd:float ->
  ?params:Vmm.Cost_model.params ->
  ?vm:Vmm.Vm.t ->
  ctx:Sim.Ctx.t ->
  level:Vmm.Level.t ->
  ram:Memory.Address_space.t ->
  rng:Sim.Rng.t ->
  unit ->
  t

val consume : t -> Vmm.Cost_model.op -> int -> Sim.Time.t
(** [consume env op n]: price [n] ops at the env's level with noise,
    advance the engine by the total, account CPU time and exits to the
    VM, and return the elapsed time. *)

val charge_exits : t -> int -> unit
(** Bump the VM's exit counter (no time cost). *)

val dirty_random : t -> int -> unit
(** Dirty [n] uniformly random RAM pages. *)

val dirty_sequential : t -> cursor:int ref -> int -> unit
(** Dirty [n] pages starting at [!cursor], wrapping; advances the
    cursor. Models streaming writers (object files, logs) that touch
    fresh pages continuously. *)

val dirty_region : t -> offset:int -> length:int -> int -> unit
(** Dirty [n] random pages within [offset, offset+length): a bounded
    working set (file-server caches). *)
