type t = {
  ctx : Sim.Ctx.t;
  engine : Sim.Engine.t;
  level : Vmm.Level.t;
  ram : Memory.Address_space.t;
  rng : Sim.Rng.t;
  vm : Vmm.Vm.t option;
  params : Vmm.Cost_model.params;
  noise_rsd : float;
}

let make ?(noise_rsd = 0.02) ?(params = Vmm.Cost_model.default_params) ?vm ~ctx ~level ~ram
    ~rng () =
  { ctx; engine = Sim.Ctx.engine ctx; level; ram; rng; vm; params; noise_rsd }

let of_layers ?noise_rsd ?params (env : Vmm.Layers.env) =
  make ?noise_rsd ?params ?vm:env.Vmm.Layers.exec_vm ~ctx:env.Vmm.Layers.ctx
    ~level:env.Vmm.Layers.exec_level ~ram:env.Vmm.Layers.exec_ram
    ~rng:(Sim.Ctx.fork_rng env.Vmm.Layers.ctx)
    ()

let charge_exits t n =
  match t.vm with
  | Some vm ->
    Vmm.Vm.record_exits vm n;
    (* every exit at L(n>=2) traps through each level below: the
       exit-multiplication fan-out the paper's Fig 1 illustrates *)
    let depth = Vmm.Level.to_int t.level in
    if depth >= 2 && n > 0 then
      Vmm.Vm.record_nested_fanout vm
        (int_of_float
           (float_of_int n *. t.params.Vmm.Cost_model.nested_exit_multiplier
          *. float_of_int (depth - 1)))
  | None -> ()

let consume t op n =
  let base = Vmm.Cost_model.cost_n ~params:t.params ~level:t.level op n in
  let elapsed = Sim.Time.mul base (Sim.Rng.lognormal_noise t.rng ~rsd:t.noise_rsd) in
  ignore (Sim.Engine.run_for t.engine elapsed);
  (match t.vm with
  | Some vm ->
    let io = Vmm.Vm.io vm in
    io.Vmm.Vm.cpu_time <- Sim.Time.add io.Vmm.Vm.cpu_time elapsed
  | None -> ());
  charge_exits t (int_of_float (op.Vmm.Cost_model.sw_exits *. float_of_int n));
  elapsed

let rewrite t i =
  let c = Memory.Address_space.read t.ram i in
  ignore (Memory.Address_space.write t.ram i (Memory.Page.Content.mutate c ~salt:i))

let dirty_random t n =
  let pages = Memory.Address_space.pages t.ram in
  for _ = 1 to n do
    rewrite t (Sim.Rng.int t.rng pages)
  done

let dirty_sequential t ~cursor n =
  let pages = Memory.Address_space.pages t.ram in
  for _ = 1 to n do
    rewrite t (!cursor mod pages);
    incr cursor
  done

let dirty_region t ~offset ~length n =
  if length <= 0 then invalid_arg "dirty_region: empty region";
  for _ = 1 to n do
    rewrite t (offset + Sim.Rng.int t.rng length)
  done
