(** Partitioning and mailboxes for lockstep sharded simulation.

    {!Parallel.run_sharded} splits one simulated world into [members]
    independent sub-worlds and assigns each to one of [shards] workers.
    This module supplies the two deterministic ingredients:

    {ul
    {- the {e contiguous block partition} - shard [s] owns members
       [s*M/S .. (s+1)*M/S). Concatenating shards in shard order yields
       the global member order for any shard count, so any per-member
       fold done "in shard order" is automatically partition-invariant;}
    {- {e single-writer mailboxes} - during an epoch every message a
       member posts lands in its own shard's {!outbox}, keyed by
       (src, dst). Between barriers the coordinator {!exchange}s the
       outboxes into per-destination inboxes sorted by source, giving
       one canonical delivery order independent of the partition.}} *)

type 'msg outbox
(** One shard's outgoing mail for the current epoch. Written by exactly
    one worker domain; read by the coordinator after the barrier join. *)

val outbox : unit -> 'msg outbox

val post : 'msg outbox -> src:int -> dst:int -> 'msg -> unit
(** Append [msg] to the (src, dst) queue, preserving post order. *)

val posted : 'msg outbox -> int
(** Messages posted into this outbox so far. *)

val range : members:int -> shards:int -> int -> int * int
(** [range ~members ~shards s] is the half-open member interval
    [(lo, hi)] owned by shard [s]: [lo = s*members/shards],
    [hi = (s+1)*members/shards]. Blocks tile [0, members) exactly. *)

val owner : members:int -> shards:int -> int -> int
(** [owner ~members ~shards m] is the shard whose {!range} contains
    member [m]. *)

val exchange : 'msg outbox array -> members:int -> (int * 'msg list) list array
(** [exchange outboxes ~members] merges every outbox into an inbox
    array: element [dst] lists [(src, msgs)] groups in ascending [src],
    each group in post order. Because each (src, dst) pair lives in
    exactly one outbox, the result is independent of the number of
    outboxes the messages were spread over. Raises [Invalid_argument]
    if a destination is outside [0, members). *)
