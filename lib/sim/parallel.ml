let available_cores () = Domain.recommended_domain_count ()

type 'a outcome =
  | Value of 'a
  | Raised of exn * Printexc.raw_backtrace

let map ?(jobs = 1) n f =
  if n < 0 then invalid_arg "Parallel.map: negative trial count";
  let jobs = if jobs = 0 then available_cores () else jobs in
  let workers = min jobs n in
  if workers <= 1 then List.init n f
  else begin
    (* Work-stealing by index: each worker pulls the next unclaimed trial.
       Slots are disjoint per trial, and Domain.join publishes the
       writes, so the array needs no lock of its own. *)
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let rec worker () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n then begin
        let outcome =
          try Value (f i) with e -> Raised (e, Printexc.get_raw_backtrace ())
        in
        results.(i) <- Some outcome;
        worker ()
      end
    in
    let domains = Array.init (workers - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    Array.iter Domain.join domains;
    (* trial order, lowest failing index wins: identical to sequential.
       The failure scan is an explicit ascending loop because List.init
       does not promise an application order. *)
    for i = 0 to n - 1 do
      match results.(i) with
      | Some (Raised (e, bt)) -> Printexc.raise_with_backtrace e bt
      | Some (Value _) -> ()
      | None -> assert false
    done;
    List.init n (fun i ->
        match results.(i) with
        | Some (Value v) -> v
        | Some (Raised _) | None -> assert false)
  end

let map_seeds ?jobs ~root_seed ~trials f =
  map ?jobs trials (fun i -> f ~seed:(root_seed + i))

(* Context fan-out: each trial gets its own child context - a fresh
   engine minted from a per-trial seed and, when the parent carries a
   sink, its own child sink (no cross-domain sharing). The children are
   merged into the parent in trial order after the join - so the merged
   registry is identical whatever [jobs] is, and each span is tagged
   with its 1-based trial. *)
let map_ctx ?jobs ?seed_of ~ctx ~trials f =
  let seed_of =
    match seed_of with Some g -> g | None -> fun i -> Ctx.seed ctx + i
  in
  match Ctx.telemetry ctx with
  | None -> map ?jobs trials (fun i -> f i (Ctx.with_seed ctx (seed_of i)))
  | Some parent ->
    let children = Array.init trials (fun _ -> Telemetry.create_like parent) in
    let results =
      map ?jobs trials (fun i ->
          f i (Ctx.with_telemetry (Ctx.with_seed ctx (seed_of i)) (Some children.(i))))
    in
    Array.iteri
      (fun i child ->
        Telemetry.merge_into ~into:parent
          ~span_fields:[ ("trial", string_of_int (i + 1)) ]
          child)
      children;
    results
