let available_cores () = Domain.recommended_domain_count ()

type 'a outcome =
  | Value of 'a
  | Raised of exn * Printexc.raw_backtrace

let map ?(jobs = 1) n f =
  if n < 0 then invalid_arg "Parallel.map: negative trial count";
  let jobs = if jobs = 0 then available_cores () else jobs in
  let workers = min jobs n in
  if workers <= 1 then List.init n f
  else begin
    (* Work-stealing by index: each worker pulls the next unclaimed trial.
       Slots are disjoint per trial, and Domain.join publishes the
       writes, so the array needs no lock of its own. *)
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let rec worker () =
      let i = Atomic.fetch_and_add next 1 in
      if i < n then begin
        let outcome =
          try Value (f i) with e -> Raised (e, Printexc.get_raw_backtrace ())
        in
        results.(i) <- Some outcome;
        worker ()
      end
    in
    let domains = Array.init (workers - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    Array.iter Domain.join domains;
    (* trial order, lowest failing index wins: identical to sequential.
       The failure scan is an explicit ascending loop because List.init
       does not promise an application order. *)
    for i = 0 to n - 1 do
      match results.(i) with
      | Some (Raised (e, bt)) -> Printexc.raise_with_backtrace e bt
      | Some (Value _) -> ()
      | None -> assert false
    done;
    List.init n (fun i ->
        match results.(i) with
        | Some (Value v) -> v
        | Some (Raised _) | None -> assert false)
  end

let map_seeds ?jobs ~root_seed ~trials f =
  map ?jobs trials (fun i -> f ~seed:(root_seed + i))

(* Context fan-out: each trial gets its own child context - a fresh
   engine minted from a per-trial seed and, when the parent carries a
   sink, its own child sink (no cross-domain sharing). The children are
   merged into the parent in trial order after the join - so the merged
   registry is identical whatever [jobs] is, and each span is tagged
   with its 1-based trial. *)
let map_ctx ?jobs ?seed_of ~ctx ~trials f =
  let seed_of =
    match seed_of with Some g -> g | None -> fun i -> Ctx.seed ctx + i
  in
  match Ctx.telemetry ctx with
  | None -> map ?jobs trials (fun i -> f i (Ctx.with_seed ctx (seed_of i)))
  | Some parent ->
    let children = Array.init trials (fun _ -> Telemetry.create_like parent) in
    let results =
      map ?jobs trials (fun i ->
          f i (Ctx.with_telemetry (Ctx.with_seed ctx (seed_of i)) (Some children.(i))))
    in
    Array.iteri
      (fun i child ->
        Telemetry.merge_into ~into:parent
          ~span_fields:[ ("trial", string_of_int (i + 1)) ]
          child)
      children;
    results

(* ---- lockstep sharded execution ---- *)

type ('w, 'msg) sharded = {
  world : 'w;
  deliver : now:Time.t -> src:int -> 'msg list -> unit;
  step : until:Time.t -> post:(dst:int -> 'msg -> unit) -> unit;
}

(* One trial partitioned across domains instead of many trials fanned
   out: each *member* (not each shard) owns a full Ctx minted from
   (root seed, member index), so what every member simulates is a pure
   function of the root seed - the partition only decides which domain
   advances it. All cross-member traffic goes through Shard outboxes -
   even between members that happen to share a shard - and is delivered
   at barriers in the canonical (dst, src) order, so the message
   schedule is partition-invariant too. Those two choices are the whole
   byte-identity argument; DESIGN.md §14 spells it out. *)
let run_sharded ?jobs ?(shards = 1) ~ctx ~members ~epoch ~until init =
  if members < 0 then invalid_arg "Parallel.run_sharded: negative member count";
  let plan = Barrier.plan ~epoch ~until in
  if members = 0 then [||]
  else begin
    let shards = max 1 (min shards members) in
    let parent = Ctx.telemetry ctx in
    let children =
      match parent with
      | None -> [||]
      | Some p -> Array.init members (fun _ -> Telemetry.create_like p)
    in
    let ctx_of m =
      let c = Ctx.fork_member ctx ~member:m in
      if Array.length children = 0 then c
      else Ctx.with_telemetry c (Some children.(m))
    in
    (* Build phase: worlds are minted in parallel, one block per shard,
       then flattened back into global member order (block partition =>
       concatenation in shard order IS member order). *)
    let cells =
      map ?jobs shards (fun s ->
          let lo, hi = Shard.range ~members ~shards s in
          List.init (hi - lo) (fun k -> init ~member:(lo + k) (ctx_of (lo + k))))
      |> List.concat |> Array.of_list
    in
    let c_epochs = Telemetry.counter parent ~component:"sim" "shard_epochs_total" in
    let c_msgs = Telemetry.counter parent ~component:"sim" "shard_messages_total" in
    Telemetry.set
      (Telemetry.gauge parent ~component:"sim" "shard_members")
      (float_of_int members);
    let inboxes = ref (Array.make members []) in
    Barrier.iter plan ~f:(fun ~index:_ ~start ~until:t ->
        let outboxes = Array.init shards (fun _ -> Shard.outbox ()) in
        let arrived = !inboxes in
        ignore
          (map ?jobs shards (fun s ->
               let lo, hi = Shard.range ~members ~shards s in
               let ob = outboxes.(s) in
               for m = lo to hi - 1 do
                 let cell = cells.(m) in
                 List.iter
                   (fun (src, msgs) -> cell.deliver ~now:start ~src msgs)
                   arrived.(m);
                 cell.step ~until:t ~post:(fun ~dst msg ->
                     if dst < 0 || dst >= members then
                       invalid_arg "Parallel.run_sharded: post to member out of range";
                     Shard.post ob ~src:m ~dst msg)
               done));
        Telemetry.incr c_epochs;
        Array.iter (fun ob -> Telemetry.add c_msgs (Shard.posted ob)) outboxes;
        inboxes := Shard.exchange outboxes ~members);
    (* Horizon flush: mail posted during the final epoch is handed over
       at [until] in member order, so in-flight exchanges still land
       (the churn conservation property depends on this). *)
    Array.iteri
      (fun m groups ->
        List.iter (fun (src, msgs) -> cells.(m).deliver ~now:until ~src msgs) groups)
      !inboxes;
    (match parent with
    | None -> ()
    | Some p ->
      Array.iteri
        (fun m child ->
          Telemetry.merge_into ~into:p
            ~span_fields:[ ("member", string_of_int (m + 1)) ]
            child)
        children);
    Array.map (fun c -> c.world) cells
  end
