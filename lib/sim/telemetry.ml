(* Labelled metrics registry plus span-based timing.

   Everything here is deterministic by construction: values are driven
   by simulation events, spans carry virtual {!Time.t} instants, and the
   exporters order their output by sorted series name - never by hash
   order or wall clock. A sink is threaded through the substrate as a
   [t option] mirroring the [?trace] idiom; handles created against
   [None] are physically [None] and every bump on them is a single
   match, so a run without telemetry does no extra work and allocates
   nothing on the hot path. *)

type labels = (string * string) list

type cell = { mutable v : float }

type hist = {
  bounds : float array;  (* strictly ascending, finite; +Inf is implicit *)
  counts : int array;    (* length [Array.length bounds + 1]; last = overflow *)
  mutable sum : float;
  mutable total : int;
}

type summ = {
  sk : Stats.Sketch.t;  (* mergeable digest of every recorded value *)
  quantiles : float array;  (* strictly ascending, each in (0,1) *)
}

type kind = Counter of cell | Gauge of cell | Histogram of hist | Summary of summ

type entry = {
  base : string;
  labels : labels;
  kind : kind;
}

type span_record = {
  component : string;
  name : string;
  start : Time.t;
  stop : Time.t;
  fields : labels;
}

type t = {
  series : (string, entry) Hashtbl.t;
  spans : span_record Queue.t;
  span_capacity : int;
  mutable spans_dropped : int;
}

type counter = cell option
type gauge = cell option
type histogram = hist option
type summary = summ option

let create ?(span_capacity = 65536) () =
  {
    series = Hashtbl.create 256;
    spans = Queue.create ();
    span_capacity;
    spans_dropped = 0;
  }

let create_like t = create ~span_capacity:t.span_capacity ()
let enabled = function None -> false | Some _ -> true

(* Metric and label names are normalised to the Prometheus identifier
   alphabet so a stray '/' or '-' in a component name cannot produce an
   unparseable exposition. *)
let sanitize s =
  if String.equal s "" then "_"
  else
    String.mapi
      (fun i c ->
        match c with
        | 'a' .. 'z' | 'A' .. 'Z' | '_' -> c
        | '0' .. '9' when i > 0 -> c
        | _ -> '_')
      s

let escape_label_value v =
  let buf = Buffer.create (String.length v + 2) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    v;
  Buffer.contents buf

let render_series base labels =
  match labels with
  | [] -> base
  | _ ->
    let buf = Buffer.create 64 in
    Buffer.add_string buf base;
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_string buf k;
        Buffer.add_string buf "=\"";
        Buffer.add_string buf (escape_label_value v);
        Buffer.add_char buf '"')
      labels;
    Buffer.add_char buf '}';
    Buffer.contents buf

let normalise_labels labels =
  List.sort
    (fun (a, _) (b, _) -> String.compare a b)
    (List.map (fun (k, v) -> (sanitize k, v)) labels)

let register t ?(labels = []) ~component name mk =
  let base = sanitize component ^ "_" ^ sanitize name in
  let labels = normalise_labels labels in
  let key = render_series base labels in
  match Hashtbl.find_opt t.series key with
  | Some e -> e.kind
  | None ->
    let kind = mk () in
    Hashtbl.replace t.series key { base; labels; kind };
    kind

let kind_name = function
  | Counter _ -> "counter"
  | Gauge _ -> "gauge"
  | Histogram _ -> "histogram"
  | Summary _ -> "summary"

let mismatch ~component name kind =
  invalid_arg
    (Printf.sprintf "Telemetry: series %s_%s already registered as a %s" component name
       (kind_name kind))

let counter sink ?labels ~component name =
  match sink with
  | None -> None
  | Some t -> (
    match register t ?labels ~component name (fun () -> Counter { v = 0. }) with
    | Counter c -> Some c
    | k -> mismatch ~component name k)

let gauge sink ?labels ~component name =
  match sink with
  | None -> None
  | Some t -> (
    match register t ?labels ~component name (fun () -> Gauge { v = 0. }) with
    | Gauge c -> Some c
    | k -> mismatch ~component name k)

let default_buckets = [ 0.001; 0.01; 0.1; 1.; 10.; 100.; 1000. ]

let histogram sink ?labels ?(buckets = default_buckets) ~component name =
  match sink with
  | None -> None
  | Some t ->
    let mk () =
      let bounds = Array.of_list buckets in
      let n = Array.length bounds in
      if n = 0 then invalid_arg "Telemetry.histogram: empty bucket list";
      for i = 1 to n - 1 do
        if bounds.(i) <= bounds.(i - 1) then
          invalid_arg "Telemetry.histogram: bucket bounds must be strictly ascending"
      done;
      Histogram { bounds; counts = Array.make (n + 1) 0; sum = 0.; total = 0 }
    in
    (match register t ?labels ~component name mk with
    | Histogram h -> Some h
    | k -> mismatch ~component name k)

let default_quantiles = [ 0.5; 0.9; 0.99 ]

let summary sink ?labels ?(quantiles = default_quantiles) ~component name =
  match sink with
  | None -> None
  | Some t ->
    let mk () =
      let qs = Array.of_list quantiles in
      if Array.length qs = 0 then invalid_arg "Telemetry.summary: empty quantile list";
      Array.iteri
        (fun i q ->
          if q <= 0. || q >= 1. then
            invalid_arg "Telemetry.summary: quantiles must lie in (0,1)";
          if i > 0 && q <= qs.(i - 1) then
            invalid_arg "Telemetry.summary: quantiles must be strictly ascending")
        qs;
      Summary { sk = Stats.Sketch.create (); quantiles = qs }
    in
    (match register t ?labels ~component name mk with
    | Summary s -> Some s
    | k -> mismatch ~component name k)

let incr = function None -> () | Some c -> c.v <- c.v +. 1.

let add c n =
  match c with
  | None -> ()
  | Some c ->
    if n < 0 then invalid_arg "Telemetry.add: counters are monotonic";
    c.v <- c.v +. float_of_int n

let addf c x =
  match c with
  | None -> ()
  | Some c ->
    if x < 0. then invalid_arg "Telemetry.addf: counters are monotonic";
    c.v <- c.v +. x

let set g x = match g with None -> () | Some g -> g.v <- x
let record s x = match s with None -> () | Some s -> Stats.Sketch.add s.sk x

let observe h x =
  match h with
  | None -> ()
  | Some h ->
    let n = Array.length h.bounds in
    let rec idx i = if i >= n || x <= h.bounds.(i) then i else idx (i + 1) in
    let i = idx 0 in
    h.counts.(i) <- h.counts.(i) + 1;
    h.sum <- h.sum +. x;
    h.total <- h.total + 1

let push_span t s =
  Queue.push s t.spans;
  if Queue.length t.spans > t.span_capacity then begin
    ignore (Queue.pop t.spans);
    t.spans_dropped <- t.spans_dropped + 1
  end

let span sink ~component ~name ~start ~stop ?(fields = []) () =
  match sink with
  | None -> ()
  | Some t -> push_span t { component; name; start; stop; fields }

let with_span sink ~now ~component ~name ?(fields = []) f =
  match sink with
  | None -> f ()
  | Some _ ->
    let start = now () in
    let r = f () in
    span sink ~component ~name ~start ~stop:(now ()) ~fields ();
    r

let series_count t = Hashtbl.length t.series
let spans_recorded t = Queue.length t.spans
let spans_dropped t = t.spans_dropped

let value t key =
  match Hashtbl.find_opt t.series key with
  | Some { kind = Counter c; _ } | Some { kind = Gauge c; _ } -> Some c.v
  | Some _ | None -> None

let histogram_count t key =
  match Hashtbl.find_opt t.series key with
  | Some { kind = Histogram h; _ } -> Some h.total
  | Some _ | None -> None

let summary_count t key =
  match Hashtbl.find_opt t.series key with
  | Some { kind = Summary s; _ } -> Some (Stats.Sketch.count s.sk)
  | Some _ | None -> None

let summary_quantile t key q =
  match Hashtbl.find_opt t.series key with
  | Some { kind = Summary s; _ } -> Some (Stats.Sketch.quantile s.sk q)
  | Some _ | None -> None

let fold_series t ~init ~f =
  let entries =
    Hashtbl.fold (fun key e acc -> (key, e) :: acc) t.series []
    |> List.sort (fun (ka, _) (kb, _) -> String.compare ka kb)
  in
  List.fold_left
    (fun acc (key, e) ->
      match e.kind with
      | Counter c | Gauge c -> f acc key c.v
      | Histogram h -> f acc key (float_of_int h.total)
      | Summary s -> f acc key (float_of_int (Stats.Sketch.count s.sk)))
    init entries

let sorted_entries t =
  Hashtbl.fold (fun key e acc -> (key, e) :: acc) t.series []
  |> List.sort (fun (ka, a) (kb, b) ->
         match String.compare a.base b.base with 0 -> String.compare ka kb | c -> c)

let copy_kind = function
  | Counter c -> Counter { v = c.v }
  | Gauge c -> Gauge { v = c.v }
  | Histogram h ->
    Histogram
      { bounds = h.bounds; counts = Array.copy h.counts; sum = h.sum; total = h.total }
  | Summary s -> Summary { sk = Stats.Sketch.copy s.sk; quantiles = s.quantiles }

let merge_into ~into ?(span_fields = []) child =
  List.iter
    (fun (key, e) ->
      match Hashtbl.find_opt into.series key with
      | None -> Hashtbl.replace into.series key { e with kind = copy_kind e.kind }
      | Some dst -> (
        match (dst.kind, e.kind) with
        | Counter a, Counter b -> a.v <- a.v +. b.v
        | Gauge a, Gauge b -> a.v <- b.v
        | Histogram a, Histogram b ->
          if a.bounds <> b.bounds then
            invalid_arg
              (Printf.sprintf "Telemetry.merge_into: bucket bounds differ for %s" key);
          Array.iteri (fun i n -> a.counts.(i) <- a.counts.(i) + n) b.counts;
          a.sum <- a.sum +. b.sum;
          a.total <- a.total + b.total
        | Summary a, Summary b ->
          if a.quantiles <> b.quantiles then
            invalid_arg
              (Printf.sprintf "Telemetry.merge_into: quantile sets differ for %s" key);
          Stats.Sketch.merge_into ~into:a.sk b.sk
        | _ ->
          invalid_arg (Printf.sprintf "Telemetry.merge_into: kind mismatch for %s" key)))
    (sorted_entries child);
  Queue.iter
    (fun s -> push_span into { s with fields = s.fields @ span_fields })
    child.spans;
  into.spans_dropped <- into.spans_dropped + child.spans_dropped

(* Values are rendered as integers whenever exact (counters and bucket
   counts always are), so the text format is stable and diffable. *)
let fmt_value v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.9g" v

let pp_prometheus ppf t =
  let last_base = ref "" in
  List.iter
    (fun (key, e) ->
      if not (String.equal e.base !last_base) then begin
        last_base := e.base;
        Format.fprintf ppf "# TYPE %s %s@\n" e.base (kind_name e.kind)
      end;
      match e.kind with
      | Counter c | Gauge c -> Format.fprintf ppf "%s %s@\n" key (fmt_value c.v)
      | Histogram h ->
        let n = Array.length h.bounds in
        let cum = ref 0 in
        for i = 0 to n - 1 do
          cum := !cum + h.counts.(i);
          Format.fprintf ppf "%s %d@\n"
            (render_series (e.base ^ "_bucket")
               (e.labels @ [ ("le", fmt_value h.bounds.(i)) ]))
            !cum
        done;
        Format.fprintf ppf "%s %d@\n"
          (render_series (e.base ^ "_bucket") (e.labels @ [ ("le", "+Inf") ]))
          h.total;
        Format.fprintf ppf "%s %s@\n"
          (render_series (e.base ^ "_sum") e.labels)
          (fmt_value h.sum);
        Format.fprintf ppf "%s %d@\n" (render_series (e.base ^ "_count") e.labels) h.total
      | Summary s ->
        Array.iter
          (fun q ->
            Format.fprintf ppf "%s %s@\n"
              (render_series e.base (e.labels @ [ ("quantile", fmt_value q) ]))
              (fmt_value (Stats.Sketch.quantile s.sk q)))
          s.quantiles;
        Format.fprintf ppf "%s %s@\n"
          (render_series (e.base ^ "_sum") e.labels)
          (fmt_value (Stats.Sketch.sum s.sk));
        Format.fprintf ppf "%s %d@\n"
          (render_series (e.base ^ "_count") e.labels)
          (Stats.Sketch.count s.sk))
    (sorted_entries t)

let prometheus_string t = Format.asprintf "%a" pp_prometheus t

let json_escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let pp_jsonl ppf t =
  Queue.iter
    (fun s ->
      Format.fprintf ppf "{\"component\":\"%s\",\"name\":\"%s\",\"start_ns\":%Ld,\"end_ns\":%Ld"
        (json_escape s.component) (json_escape s.name) (Time.to_ns s.start)
        (Time.to_ns s.stop);
      if s.fields <> [] then begin
        Format.pp_print_string ppf ",\"fields\":{";
        List.iteri
          (fun i (k, v) ->
            Format.fprintf ppf "%s\"%s\":\"%s\""
              (if i > 0 then "," else "")
              (json_escape k) (json_escape v))
          s.fields;
        Format.pp_print_char ppf '}'
      end;
      Format.fprintf ppf "}@\n")
    t.spans;
  (* Summary series follow the spans, one object per series in sorted
     order; an empty summary has no meaningful quantiles (and [nan] is
     not valid JSON), so its [quantiles] object is left empty. *)
  List.iter
    (fun (key, e) ->
      match e.kind with
      | Counter _ | Gauge _ | Histogram _ -> ()
      | Summary s ->
        let n = Stats.Sketch.count s.sk in
        Format.fprintf ppf "{\"summary\":\"%s\",\"count\":%d,\"sum\":%s,\"quantiles\":{"
          (json_escape key) n
          (fmt_value (Stats.Sketch.sum s.sk));
        if n > 0 then
          Array.iteri
            (fun i q ->
              Format.fprintf ppf "%s\"%s\":%s"
                (if i > 0 then "," else "")
                (fmt_value q)
                (fmt_value (Stats.Sketch.quantile s.sk q)))
            s.quantiles;
        Format.fprintf ppf "}}@\n")
    (sorted_entries t)

let jsonl_string t = Format.asprintf "%a" pp_jsonl t
