(** The per-instance simulation context.

    A [Ctx.t] bundles the engine (virtual clock + deterministic RNG
    root), the event trace, the optional telemetry sink, and the fault
    profile for one simulation instance. Substrate constructors across
    [lib/] take a context instead of a sprawl of
    [?seed ?telemetry ?faults] optionals; anything reachable from one
    context shares one clock, one trace, and one sink.

    Contexts remember the seed they were built from, so {!fork} and
    {!with_seed} can mint sibling instances that are deterministic
    functions of that seed alone - the property every repeated-trial
    experiment and every [--jobs]-independence guarantee rests on. *)

type t

val create : ?seed:int -> ?telemetry:Telemetry.t -> ?faults:Fault.profile -> unit -> t
(** [create ()] is a fresh context: a new engine seeded with [seed]
    (default 42), an empty trace, no telemetry sink, and the
    {!Fault.none} profile. *)

val seed : t -> int
(** The seed this context's engine was created from. *)

val engine : t -> Engine.t
val trace : t -> Trace.t
val telemetry : t -> Telemetry.t option
val faults : t -> Fault.profile

val now : t -> Time.t
(** [now t] is [Engine.now (engine t)]. *)

val fork_rng : t -> Rng.t
(** [fork_rng t] is [Engine.fork_rng (engine t)]: the next deterministic
    RNG stream off this context's engine. *)

val fork : t -> t
(** [fork t] is a sibling instance: a {e fresh} engine re-created from
    [seed t] and an empty trace, sharing [t]'s telemetry sink and fault
    profile. Building two worlds from forks of the same context gives
    each the byte-identical event/RNG schedule a fresh [create] would. *)

val with_seed : t -> int -> t
(** [with_seed t s] is {!fork} with the seed replaced by [s]. *)

val fork_member : t -> member:int -> t
(** [fork_member t ~member] is {!with_seed} at a seed derived from
    [(seed t, member)] by a SplitMix64-style avalanche: the canonical
    way to mint one sub-world per member of a sharded run
    ({!Parallel.run_sharded}). Unlike the [seed + i] trial scheme, the
    mixed seeds of neighbouring members (or of the same member under
    neighbouring root seeds) share no arithmetic relationship, so
    member worlds stay statistically independent however many the
    fleet holds. Deterministic: same [(seed, member)], same context. *)

val with_telemetry : t -> Telemetry.t option -> t
(** [with_telemetry t sink] is [t] with its telemetry sink replaced -
    the engine, trace, and clock are shared, not forked. *)

val quiet : t -> t
(** [quiet t] shares [t]'s engine (and clock, and sink) but writes to a
    private throwaway trace: actions taken through it advance the world
    without leaving records in [trace t]. *)
