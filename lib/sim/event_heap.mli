(** Binary-heap event queue (reference implementation).

    This is the original [(time, sequence)]-keyed binary min-heap that
    {!Event_queue} replaced with a hierarchical timing wheel. It is kept
    for differential testing (the wheel must produce identical observable
    traces) and for the throughput benchmarks that document the win. The
    interface mirrors {!Event_queue} exactly. *)

type 'a t

type handle
(** Identifies a scheduled event so it can be cancelled. *)

val create : unit -> 'a t
val is_empty : 'a t -> bool

val size : 'a t -> int
(** Number of live (non-cancelled) events. *)

val push : 'a t -> Time.t -> 'a -> handle

val cancel : 'a t -> handle -> unit
(** Cancelling an already-fired or already-cancelled event is a no-op. *)

val cancelled : 'a t -> handle -> bool
(** [cancelled t h] is [true] once [h] is no longer pending, whether it
    fired or was cancelled. *)

val peek_time : 'a t -> Time.t option
(** Timestamp of the earliest live event. *)

val pop : 'a t -> (Time.t * 'a) option
(** Remove and return the earliest live event. *)
