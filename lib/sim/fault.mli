(** Deterministic fault injection.

    A {!t} is a seeded source of channel faults - packet loss, jitter,
    bandwidth degradation, and link outages - that the network and
    migration layers consult while moving bytes. All draws come from a
    private {!Rng.t} handed over at creation, so a trial's fault
    schedule is a pure function of its seed: re-running the same
    scenario (at any [--jobs] level) replays byte-identical faults, the
    property the chaos suite and the parallel determinism tests lean
    on. A component given no injector (or the {!none} profile) must
    behave exactly as before this module existed - zero-fault runs stay
    bit-for-bit reproductions of the fault-free simulator. *)

(** {2 Profiles} *)

type profile = {
  loss : float;
      (** per-chunk drop probability in [\[0, 1)]; lost chunks are
          retransmitted after an RTO stall, so loss costs time, never
          data *)
  jitter_rsd : float;
      (** relative standard deviation of the multiplicative lognormal
          noise on each transmission's serialisation time (0 = none) *)
  degradation : float;
      (** bandwidth factor in [(0, 1]] applied while the link is
          degraded (1 = full speed) *)
  degradation_duty : float;
      (** probability in [\[0, 1]] that any given transmission sees the
          degraded bandwidth *)
  mtbf : Time.t option;
      (** mean time between link failures (exponential arrivals);
          [None] = the link never goes down *)
  mttr : Time.t;  (** mean repair time of a link-down event *)
}

val none : profile
(** The identity profile: no loss, no jitter, no degradation, no
    outages. An injector carrying it never draws from its RNG. *)

val lossy : profile
(** 1 % chunk loss + 10 % jitter - a congested but live channel. The
    chaos acceptance profile. *)

val degraded : profile
(** Half of all transmissions run at 40 % bandwidth (a throttled or
    oversubscribed migration channel) with mild jitter. *)

val flaky : profile
(** {!lossy} plus link-down events: mean 20 s between failures, mean
    2 s repair - enough to interrupt a long migration mid-flight. *)

val profiles : (string * profile) list
(** Named profiles for CLI flags: none/lossy/degraded/flaky. *)

val profile_of_string : string -> (profile, string) result
val profile_name : profile -> string
(** The registered name, or ["custom"]. *)

val is_none : profile -> bool
(** Structural equality with {!none}: such a profile injects nothing. *)

val validate : profile -> (unit, string) result

(** {2 Injectors} *)

type counters = {
  mutable chunks_dropped : int;
  mutable outages : int;
  mutable link_downtime : Time.t;  (** total injected down time *)
  mutable degraded_transmissions : int;
}

type t

val create : ?telemetry:Telemetry.t -> profile -> Rng.t -> t
(** [create p rng] owns [rng]. Raises [Invalid_argument] when
    [validate p] fails. Callers wanting zero perturbation of existing
    RNG streams should only fork an [rng] for this when
    [not (is_none p)]. [telemetry] registers
    [fault_injected_total{kind=...}] (kinds [chunk_drop], [outage],
    [degraded]) and [fault_link_downtime_ns_total]; recording never
    draws from [rng]. *)

val profile : t -> profile
val counters : t -> counters

(** {2 Per-chunk queries (used by {!Net.Flow})} *)

val drops_chunk : t -> bool
(** Draw: is this chunk lost? Counts into {!counters} when true. Never
    draws under the {!none} profile. *)

val chunk_jitter : t -> float
(** Draw: multiplicative serialisation factor for one chunk - lognormal
    jitter times the degradation factor when the degradation duty
    fires. Returns exactly [1.0] (without drawing) under {!none}. *)

(** {2 Per-transmission queries (used by migration rounds)} *)

val transmission_factor : t -> float
(** Draw: multiplicative time factor for a whole transmission - jitter,
    degradation, and the goodput overhead of retransmitting lost chunks
    ([1 / (1 - loss)]). Returns exactly [1.0] (without drawing) under
    {!none}. *)

val cut : t -> now:Time.t -> during:Time.t -> (Time.t * Time.t) option
(** [cut t ~now ~during] asks whether the link fails while a
    transmission occupies [\[now, now + during)]. [Some (after, outage)]
    means the link dies [after] into the transmission and stays down
    for [outage]; the failure clock then re-arms after the repair.
    [None] (always, under a profile without [mtbf]) means the
    transmission passes undisturbed. Failure arrivals are sampled
    lazily against the virtual clock, so two runs issuing the same
    transmissions at the same times see the same cuts. *)
