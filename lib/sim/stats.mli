(** Sample statistics.

    Used by every benchmark harness to summarise repeated runs the way the
    paper reports them: mean, standard deviation, and relative standard
    deviation (the error bars in Figs 2-4). *)

type t
(** A mutable accumulator of float samples. *)

val create : unit -> t
val add : t -> float -> unit
val add_time : t -> Time.t -> unit
(** [add_time t d] records [d] in nanoseconds. *)

val count : t -> int
val mean : t -> float
(** Mean of the samples; [nan] if empty. *)

val variance : t -> float
(** Unbiased sample variance; [0.] with fewer than two samples. *)

val stddev : t -> float

val rsd : t -> float
(** Relative standard deviation as a fraction of the mean (multiply by 100
    for percent); [0.] if the mean is zero or fewer than two samples. *)

val min : t -> float
val max : t -> float
val sum : t -> float

val percentile : t -> float -> float
(** [percentile t p] for [p] in [0,100], by linear interpolation over the
    sorted samples; [nan] if empty. *)

val samples : t -> float list
(** Samples in insertion order. *)

val of_list : float list -> t

type summary = {
  n : int;
  mean : float;
  stddev : float;
  rsd : float;
  min : float;
  max : float;
  p50 : float;
  p95 : float;
  p99 : float;
}

val summary : t -> summary
(** Snapshot of the accumulator, including interpolated p50/p95/p99 (all
    [nan] when empty, like [mean]). *)

val pp_summary : Format.formatter -> summary -> unit

val percent_change : from_:float -> to_:float -> float
(** [percent_change ~from_ ~to_] is [(to_ - from_) / from_ * 100.], the
    "+X%%" labels on the paper's figures. *)
