(** Sample statistics.

    Used by every benchmark harness to summarise repeated runs the way the
    paper reports them: mean, standard deviation, and relative standard
    deviation (the error bars in Figs 2-4). Accumulators keep exact
    samples up to a cap and spill into a mergeable quantile sketch past
    it, so streaming consumers (telemetry summaries, the SOC monitor)
    stay allocation-bounded. *)

module Sketch : sig
  (** Mergeable quantile sketch: a merging t-digest with the uniform
      (k0) scale function. Storage is bounded by the compression
      parameter ([2 * compression + 2] centroids plus a fixed insert
      buffer), inserts are amortised O(1), and quantile estimates stay
      within a rank error of roughly [count / compression]
      (conservatively [2 * count / compression + 2] at interpolation
      boundaries — the bound the property tests assert). Only rational
      arithmetic is used, so results are bit-stable across libm
      implementations; estimates are a deterministic function of the
      insertion/merge sequence. *)

  type t

  val create : ?compression:int -> unit -> t
  (** Default compression is 128. Raises [Invalid_argument] below 8. *)

  val add : t -> float -> unit

  val merge_into : into:t -> t -> unit
  (** Fold [src]'s centroids into [into] in a single O(centroids)
      merge-compress pass. [src] is still usable afterwards (its
      pending insert buffer is flushed as a side effect). Equivalent,
      up to the documented rank error, to having added both sketches'
      samples into one. *)

  val quantile : t -> float -> float
  (** [quantile t q] for [q] in [0,1] (clamped); [nan] when empty.
      Exact at the extremes (tracked min/max). May flush the insert
      buffer as a side effect. *)

  val percentile : t -> float -> float
  (** [percentile t p] is [quantile t (p /. 100.)]. *)

  val count : t -> int
  val sum : t -> float
  val min : t -> float
  val max : t -> float
  val compression : t -> int

  val centroids : t -> int
  (** Live centroid count after flushing the insert buffer. *)

  val copy : t -> t
end

type t
(** A mutable accumulator of float samples. *)

val default_sample_cap : int
(** 1024: far above any per-accumulator sample count in the experiment
    suite, so existing consumers keep exact percentiles. *)

val create : ?sample_cap:int -> unit -> t
(** [create ()] retains samples exactly up to [sample_cap] (default
    {!default_sample_cap}); past the cap the accumulator spills into a
    {!Sketch} and percentiles become sketch estimates. [sample_cap = 0]
    sketches from the first sample. Mean/stddev/min/max/sum stay exact
    regardless. *)

val add : t -> float -> unit
val add_time : t -> Time.t -> unit
(** [add_time t d] records [d] in nanoseconds. *)

val count : t -> int
val mean : t -> float
(** Mean of the samples; [nan] if empty. *)

val variance : t -> float
(** Unbiased sample variance; [0.] with fewer than two samples. *)

val stddev : t -> float

val rsd : t -> float
(** Relative standard deviation as a fraction of the mean (multiply by 100
    for percent); [0.] if the mean is zero or fewer than two samples. *)

val min : t -> float
val max : t -> float
val sum : t -> float

val percentile : t -> float -> float
(** [percentile t p] for [p] in [0,100]: linear interpolation over the
    sorted samples below the cap, a {!Sketch} estimate above it; [nan]
    if empty. *)

val samples : t -> float list
(** Samples in insertion order; [[]] once the accumulator has spilled
    into its sketch (see {!is_sketched}). *)

val is_sketched : t -> bool
(** True once the sample cap has been exceeded and percentiles are
    sketch estimates. *)

val of_list : float list -> t

val merge_into : into:t -> t -> unit
(** Fold [src] into [into]: moments combine exactly (Chan et al.
    pairwise update); samples concatenate in (into, src) order while
    both sides are exact and the result fits the cap, otherwise the
    merge goes through the sketches in O(centroids). [src] is not
    modified apart from a possible sketch-buffer flush. *)

type summary = {
  n : int;
  mean : float;
  stddev : float;
  rsd : float;
  min : float;
  max : float;
  p50 : float;
  p95 : float;
  p99 : float;
}

val summary : t -> summary
(** Snapshot of the accumulator, including interpolated p50/p95/p99 (all
    [nan] when empty, like [mean]). *)

val pp_summary : Format.formatter -> summary -> unit

val percent_change : from_:float -> to_:float -> float
(** [percent_change ~from_ ~to_] is [(to_ - from_) / from_ * 100.], the
    "+X%%" labels on the paper's figures. *)
