(** Deterministic multicore fan-out of independent trials.

    Experiments repeat independent trials - each trial builds its own
    {!Engine} from its own seed - so they parallelise perfectly: this
    module fans trial bodies across OCaml 5 domains and returns the
    results in trial order, making the output bit-identical to a
    sequential run regardless of the number of workers.

    Trial functions must be self-contained: build every engine, RNG and
    substrate object inside the call, share nothing mutable with other
    trials, and return data instead of printing (the caller renders
    results in order afterwards). All code under [lib/] follows this
    discipline already - nothing in the simulator has global mutable
    state. *)

val available_cores : unit -> int
(** The runtime's recommended domain count for this machine. *)

val map : ?jobs:int -> int -> (int -> 'a) -> 'a list
(** [map ~jobs n f] is [List.init n f], computed by up to [jobs] worker
    domains pulling trial indices from a shared counter. Results are
    returned in index order. [jobs <= 1] (the default) runs sequentially
    in the calling domain; [jobs = 0] means {!available_cores}. If any
    trial raises, the exception of the lowest-indexed failing trial is
    re-raised after all workers finish. *)

val map_seeds : ?jobs:int -> root_seed:int -> trials:int -> (seed:int -> 'a) -> 'a list
(** [map_seeds ~root_seed ~trials f] runs [f ~seed:(root_seed + i)] for
    [i] in [0 .. trials - 1] via {!map}: the canonical seed-derivation
    scheme for repeated-trial experiments. *)

val map_instrumented :
  ?jobs:int -> ?telemetry:Telemetry.t -> int -> (telemetry:Telemetry.t option -> int -> 'a) ->
  'a list
(** {!map} for instrumented trials. Each trial body receives its own
    fresh child sink ({!Telemetry.create_like} of the parent, [None] when
    no parent is given); after all trials finish the children are folded
    into the parent with {!Telemetry.merge_into} in ascending trial
    order, each span tagged with a ["trial"] field (1-based). Because the
    merge order is fixed, the parent's exported metrics and spans are
    byte-identical whatever [jobs] is. *)

val map_seeds_instrumented :
  ?jobs:int -> ?telemetry:Telemetry.t -> root_seed:int -> trials:int ->
  (telemetry:Telemetry.t option -> seed:int -> 'a) -> 'a list
(** {!map_seeds} with the same per-trial sink threading as
    {!map_instrumented}. *)
