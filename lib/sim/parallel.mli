(** Deterministic multicore fan-out of independent trials.

    Experiments repeat independent trials - each trial builds its own
    {!Engine} from its own seed - so they parallelise perfectly: this
    module fans trial bodies across OCaml 5 domains and returns the
    results in trial order, making the output bit-identical to a
    sequential run regardless of the number of workers.

    Trial functions must be self-contained: build every engine, RNG and
    substrate object inside the call, share nothing mutable with other
    trials, and return data instead of printing (the caller renders
    results in order afterwards). All code under [lib/] follows this
    discipline already - nothing in the simulator has global mutable
    state. *)

val available_cores : unit -> int
(** The runtime's recommended domain count for this machine. *)

val map : ?jobs:int -> int -> (int -> 'a) -> 'a list
(** [map ~jobs n f] is [List.init n f], computed by up to [jobs] worker
    domains pulling trial indices from a shared counter. Results are
    returned in index order. [jobs <= 1] (the default) runs sequentially
    in the calling domain; [jobs = 0] means {!available_cores}. If any
    trial raises, the exception of the lowest-indexed failing trial is
    re-raised after all workers finish. *)

val map_seeds : ?jobs:int -> root_seed:int -> trials:int -> (seed:int -> 'a) -> 'a list
(** [map_seeds ~root_seed ~trials f] runs [f ~seed:(root_seed + i)] for
    [i] in [0 .. trials - 1] via {!map}: the canonical seed-derivation
    scheme for repeated-trial experiments. *)

val map_ctx :
  ?jobs:int -> ?seed_of:(int -> int) -> ctx:Ctx.t -> trials:int -> (int -> Ctx.t -> 'a) ->
  'a list
(** [map_ctx ~ctx ~trials f] runs [f i child] for [i] in
    [0 .. trials - 1] via {!map}, where [child] is a deterministic child
    context: {!Ctx.with_seed} of [ctx] at [seed_of i] (default
    [Ctx.seed ctx + i] - the canonical derivation scheme). When [ctx]
    carries a telemetry sink each child gets its own fresh sink
    ({!Telemetry.create_like}); after all trials finish the children are
    folded into the parent with {!Telemetry.merge_into} in ascending
    trial order, each span tagged with a ["trial"] field (1-based).
    Because the seed derivation and the merge order are fixed, both the
    results and the parent's exported metrics are byte-identical
    whatever [jobs] is. *)

type ('w, 'msg) sharded = {
  world : 'w;  (** the member's state, returned after the run *)
  deliver : now:Time.t -> src:int -> 'msg list -> unit;
      (** hand over mail posted to this member during the previous
          epoch. Called with the member's groups in ascending [src],
          each group in post order, before the epoch's [step]. *)
  step : until:Time.t -> post:(dst:int -> 'msg -> unit) -> unit;
      (** advance the member's world to the barrier clock [until],
          posting any cross-member messages through [post]. [post] may
          only be called during [step] (the outbox is exchanged at the
          barrier). *)
}
(** One member of a sharded run: a sub-world plus its mailbox hooks. *)

val run_sharded :
  ?jobs:int ->
  ?shards:int ->
  ctx:Ctx.t ->
  members:int ->
  epoch:Time.t ->
  until:Time.t ->
  (member:int -> Ctx.t -> ('w, 'msg) sharded) ->
  'w array
(** [run_sharded ~shards ~ctx ~members ~epoch ~until init] partitions
    ONE trial across domains: [members] independent sub-worlds advance
    in lockstep to time barriers every [epoch] of simulated time, up to
    the horizon [until], exchanging messages through deterministic
    per-(src, dst) mailboxes ({!Shard}) drained at each barrier.

    Each member - not each shard - gets its own context from
    {!Ctx.fork_member}, so what a member simulates depends only on
    [(Ctx.seed ctx, member)]; shard [s] merely advances the contiguous
    block {!Shard.range}[ ~members ~shards s]. Together with the
    canonical mailbox drain order this makes the results, the trace,
    and the merged telemetry {e byte-identical for every}
    [shards]/[jobs] {e combination} (shards execute via {!map}, so
    [jobs] only bounds worker domains). Epoch choice is the modelling
    contract: messages posted during an epoch arrive at its closing
    barrier, which is faithful only when [epoch <=] the minimum
    cross-member latency being simulated (DESIGN.md §14).

    When [ctx] carries a telemetry sink, each member gets a
    {!Telemetry.create_like} child, merged into the parent in member
    order after the run, spans tagged with a 1-based ["member"] field.
    The run itself contributes [sim_shard_epochs_total],
    [sim_shard_messages_total] and [sim_shard_members] - all
    partition-invariant by the argument above. Mail still undelivered
    when the horizon closes is flushed to [deliver] at [until] in
    member order, so in-flight exchanges land before the run returns.
    If any shard raises, the exception of the lowest-indexed failing
    shard is re-raised (as {!map}). Raises [Invalid_argument] for a
    non-positive [epoch], a negative [members], or a [post] to a
    destination outside [0, members). *)
