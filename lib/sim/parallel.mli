(** Deterministic multicore fan-out of independent trials.

    Experiments repeat independent trials - each trial builds its own
    {!Engine} from its own seed - so they parallelise perfectly: this
    module fans trial bodies across OCaml 5 domains and returns the
    results in trial order, making the output bit-identical to a
    sequential run regardless of the number of workers.

    Trial functions must be self-contained: build every engine, RNG and
    substrate object inside the call, share nothing mutable with other
    trials, and return data instead of printing (the caller renders
    results in order afterwards). All code under [lib/] follows this
    discipline already - nothing in the simulator has global mutable
    state. *)

val available_cores : unit -> int
(** The runtime's recommended domain count for this machine. *)

val map : ?jobs:int -> int -> (int -> 'a) -> 'a list
(** [map ~jobs n f] is [List.init n f], computed by up to [jobs] worker
    domains pulling trial indices from a shared counter. Results are
    returned in index order. [jobs <= 1] (the default) runs sequentially
    in the calling domain; [jobs = 0] means {!available_cores}. If any
    trial raises, the exception of the lowest-indexed failing trial is
    re-raised after all workers finish. *)

val map_seeds : ?jobs:int -> root_seed:int -> trials:int -> (seed:int -> 'a) -> 'a list
(** [map_seeds ~root_seed ~trials f] runs [f ~seed:(root_seed + i)] for
    [i] in [0 .. trials - 1] via {!map}: the canonical seed-derivation
    scheme for repeated-trial experiments. *)

val map_ctx :
  ?jobs:int -> ?seed_of:(int -> int) -> ctx:Ctx.t -> trials:int -> (int -> Ctx.t -> 'a) ->
  'a list
(** [map_ctx ~ctx ~trials f] runs [f i child] for [i] in
    [0 .. trials - 1] via {!map}, where [child] is a deterministic child
    context: {!Ctx.with_seed} of [ctx] at [seed_of i] (default
    [Ctx.seed ctx + i] - the canonical derivation scheme). When [ctx]
    carries a telemetry sink each child gets its own fresh sink
    ({!Telemetry.create_like}); after all trials finish the children are
    folded into the parent with {!Telemetry.merge_into} in ascending
    trial order, each span tagged with a ["trial"] field (1-based).
    Because the seed derivation and the merge order are fixed, both the
    results and the parent's exported metrics are byte-identical
    whatever [jobs] is. *)
