(** Labelled metrics registry and span-based timing.

    A sink collects two kinds of observation from the simulated stack:

    - {b metrics} - monotonic counters, gauges, and fixed-bucket
      histograms, keyed by [component_name{label="value",...}] exactly as
      in the Prometheus exposition format;
    - {b spans} - named intervals of {e simulation} time with structured
      [key=value] fields, exported as one JSON object per line.

    The sink is threaded through constructors as a [t option], mirroring
    the [?trace] idiom used everywhere in [lib/]. Instrument code by
    creating a handle once ({!counter}, {!gauge}, {!histogram}) and
    bumping it on the hot path: a handle created against [None] is a
    physical [None], so the disabled case is a single pattern match with
    no allocation and no hashing - strictly zero-cost.

    Determinism rules (see DESIGN.md "Observability"):
    - only simulation time ({!Time.t}) ever enters the output - never the
      wall clock;
    - recording an observation must not draw from any RNG or advance the
      engine;
    - exporters emit series in sorted order and spans in recording order,
      so equal runs produce byte-equal exports. Per-trial sinks merged
      with {!merge_into} in trial order (see {!Parallel.map_instrumented})
      make exports independent of worker count. *)

type t
(** A telemetry sink: a metrics registry plus a bounded span buffer. *)

type labels = (string * string) list
(** Label pairs. Keys are sanitised to [[a-zA-Z_][a-zA-Z0-9_]*] and
    sorted, so label order at the call site does not matter. *)

val create : ?span_capacity:int -> unit -> t
(** [span_capacity] (default 65536) bounds retained spans; the oldest are
    dropped first once exceeded (see {!spans_dropped}). *)

val create_like : t -> t
(** An empty sink with the same configuration - used for per-trial child
    sinks in {!Parallel.map_instrumented}. *)

val enabled : t option -> bool

(** {1 Metrics}

    Handles are cheap to create but are meant to be created once per
    instrumented object, not per event. Registering the same
    [component]/[name]/[labels] twice returns a handle to the same
    series; re-registering under a different metric kind raises
    [Invalid_argument]. *)

type counter
type gauge
type histogram
type summary

val counter : t option -> ?labels:labels -> component:string -> string -> counter
(** [counter sink ~component name] registers (or re-opens) the monotonic
    counter [component_name{labels}]. The series exists from registration
    time with value 0, so exports show instrumented-but-idle subsystems. *)

val incr : counter -> unit
val add : counter -> int -> unit
(** Raises [Invalid_argument] on a negative increment. *)

val addf : counter -> float -> unit

val gauge : t option -> ?labels:labels -> component:string -> string -> gauge
val set : gauge -> float -> unit

val histogram :
  t option -> ?labels:labels -> ?buckets:float list -> component:string -> string ->
  histogram
(** [buckets] are the finite upper bounds, strictly ascending (an
    implicit [+Inf] overflow bucket is always added). The default is a
    decade ladder [0.001 .. 1000]; instrumentation sites pass explicit
    bounds matched to their unit. *)

val observe : histogram -> float -> unit

val summary :
  t option -> ?labels:labels -> ?quantiles:float list -> component:string -> string ->
  summary
(** [summary sink ~component name] registers (or re-opens) a quantile
    summary series backed by a {!Stats.Sketch}: storage stays bounded
    however many values are recorded, and sinks merged with
    {!merge_into} combine their sketches in O(centroids). [quantiles]
    (default [[0.5; 0.9; 0.99]]) are the export points, each strictly
    inside (0,1) and ascending; estimates carry the sketch's documented
    rank error. Exported as [name{quantile="q"}] lines plus
    [_sum]/[_count] in Prometheus text, and as one JSON object per
    series after the spans in JSONL. *)

val record : summary -> float -> unit
(** Record one observation into the summary's sketch. *)

(** {1 Spans} *)

val span :
  t option -> component:string -> name:string -> start:Time.t -> stop:Time.t ->
  ?fields:labels -> unit -> unit
(** Record a completed interval of simulation time. [fields] are emitted
    in the given order; values computed from floats must be rendered
    deterministically by the caller (e.g. [Printf.sprintf "%.0f"]). *)

val with_span :
  t option -> now:(unit -> Time.t) -> component:string -> name:string ->
  ?fields:labels -> (unit -> 'a) -> 'a
(** [with_span sink ~now ~component ~name f] runs [f ()], recording a
    span from the sim-time before to the sim-time after. With a [None]
    sink this is exactly [f ()]. If [f] raises, no span is recorded. *)

(** {1 Introspection} *)

val series_count : t -> int
val spans_recorded : t -> int
val spans_dropped : t -> int

val value : t -> string -> float option
(** [value t key] is the current value of the counter or gauge whose
    rendered series name is [key] (e.g. ["vmm_exits_total{level=\"1\"}"]);
    [None] for histograms or absent series. *)

val histogram_count : t -> string -> int option
(** Total observation count of the histogram registered under [key]. *)

val summary_count : t -> string -> int option
(** Observation count of the summary registered under [key]. *)

val summary_quantile : t -> string -> float -> float option
(** [summary_quantile t key q] is the sketch's estimate for [q] in
    [0,1]; [None] for absent or non-summary series, [nan] when the
    summary is empty. *)

val fold_series : t -> init:'a -> f:('a -> string -> float -> 'a) -> 'a
(** Fold over every registered series in export (sorted-key) order:
    counters and gauges contribute their current value, histograms their
    total observation count. The order is a pure function of the
    registered names, so folds over equal sinks visit equal sequences -
    what the fuzzer's coverage signatures rely on. *)

(** {1 Merging} *)

val merge_into : into:t -> ?span_fields:labels -> t -> unit
(** [merge_into ~into child] folds [child] into [into]: counters add,
    gauges take the child's value, histograms add bucket-wise (raising
    [Invalid_argument] if bucket bounds differ), summaries merge their
    sketches (raising [Invalid_argument] if the quantile sets differ),
    and spans are appended in order with [span_fields] appended to each
    span's fields (used to tag spans with their trial index).
    Deterministic given a fixed merge order. *)

(** {1 Exporters} *)

val pp_prometheus : Format.formatter -> t -> unit
(** Prometheus text exposition: [# TYPE] comment per metric, series
    sorted by name, histograms expanded to cumulative [_bucket{le=...}]
    plus [_sum]/[_count]. *)

val prometheus_string : t -> string

val pp_jsonl : Format.formatter -> t -> unit
(** One JSON object per span, in recording order:
    [{"component":...,"name":...,"start_ns":...,"end_ns":...,"fields":{...}}],
    followed by one object per summary series in sorted order:
    [{"summary":...,"count":...,"sum":...,"quantiles":{...}}] (the
    [quantiles] object is empty for an empty summary). *)

val jsonl_string : t -> string
