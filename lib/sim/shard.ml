(* Partitioning and mailbox plumbing for lockstep sharded runs.

   The partition is contiguous-block by construction: shard [s] of [S]
   owns members [s*M/S .. (s+1)*M/S). Concatenating the shards in shard
   order therefore yields the global member order 0..M-1 for *any* S,
   which is what makes "merge per-member state in shard order" a
   partition-invariant operation - the property Parallel.run_sharded's
   byte-identity contract rests on.

   Mailboxes are single-writer: every (src, dst) queue lives in the
   outbox of src's shard, and only src's worker posts to it during an
   epoch. The coordinator exchanges outboxes between barriers, after the
   worker join, so no queue is ever touched from two domains at once. *)

type 'msg outbox = {
  mutable posted : int;
  boxes : (int * int, 'msg Queue.t) Hashtbl.t;
}

let outbox () = { posted = 0; boxes = Hashtbl.create 16 }

let post ob ~src ~dst msg =
  let q =
    match Hashtbl.find_opt ob.boxes (src, dst) with
    | Some q -> q
    | None ->
      let q = Queue.create () in
      Hashtbl.add ob.boxes (src, dst) q;
      q
  in
  Queue.add msg q;
  ob.posted <- ob.posted + 1

let posted ob = ob.posted

let range ~members ~shards s =
  if shards < 1 then invalid_arg "Shard.range: shards must be >= 1";
  if members < 0 then invalid_arg "Shard.range: negative member count";
  if s < 0 || s >= shards then invalid_arg "Shard.range: shard index out of range";
  (s * members / shards, (s + 1) * members / shards)

(* Inverse of [range]: smallest [s] whose block extends past [m], i.e.
   [ceil ((m+1) * shards / members) - 1], folded into one division. *)
let owner ~members ~shards m =
  if members <= 0 then invalid_arg "Shard.owner: no members";
  if m < 0 || m >= members then invalid_arg "Shard.owner: member out of range";
  if shards < 1 then invalid_arg "Shard.owner: shards must be >= 1";
  (((m + 1) * shards) - 1) / members

(* Per-destination inboxes for the next epoch. Each (src, dst) pair
   appears in exactly one outbox (src's shard is unique), so sorting the
   collected queues by (dst, src) gives one canonical delivery order
   that does not depend on how members were split into shards, nor on
   Hashtbl iteration order. *)
let exchange obs ~members =
  let pairs =
    Array.to_list obs
    |> List.concat_map (fun ob ->
           Hashtbl.fold (fun key q acc -> (key, q) :: acc) ob.boxes []
           |> List.sort (fun (((s1, d1) : int * int), _) ((s2, d2), _) ->
                  match Int.compare s1 s2 with 0 -> Int.compare d1 d2 | c -> c))
    |> List.sort (fun (((s1, d1) : int * int), _) ((s2, d2), _) ->
           match Int.compare d1 d2 with 0 -> Int.compare s1 s2 | c -> c)
  in
  let inboxes = Array.make members [] in
  List.iter
    (fun ((src, dst), q) ->
      if dst < 0 || dst >= members then
        invalid_arg "Shard.exchange: destination out of range";
      let msgs = List.of_seq (Queue.to_seq q) in
      if msgs <> [] then inboxes.(dst) <- inboxes.(dst) @ [ (src, msgs) ])
    pairs;
  inboxes
