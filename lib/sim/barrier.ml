(* The epoch timeline for lockstep sharded runs. Barrier k sits at
   min ((k+1) * epoch, until); the last barrier always lands exactly on
   [until] so every member finishes on the same clock. *)

type plan = {
  epoch : Time.t;
  until : Time.t;
  count : int;
}

let plan ~epoch ~until =
  if Time.(epoch <= Time.zero) then invalid_arg "Barrier.plan: epoch must be positive";
  if Time.is_infinite epoch || Time.is_infinite until then
    invalid_arg "Barrier.plan: epoch and until must be finite";
  if Time.(until < Time.zero) then invalid_arg "Barrier.plan: negative horizon";
  let e = Time.to_ns epoch and u = Time.to_ns until in
  let count = Int64.to_int (Int64.div (Int64.add u (Int64.sub e 1L)) e) in
  { epoch; until; count }

let epoch p = p.epoch
let until p = p.until
let count p = p.count

let time p k =
  if k < 0 || k >= p.count then invalid_arg "Barrier.time: index out of range";
  Time.min p.until (Time.ns (Int64.to_int (Int64.mul (Time.to_ns p.epoch) (Int64.of_int (k + 1)))))

let iter p ~f =
  let start = ref Time.zero in
  for k = 0 to p.count - 1 do
    let t = time p k in
    f ~index:k ~start:!start ~until:t;
    start := t
  done
