(* Hierarchical timing wheel.

   Time is quantised into 64 ns ticks. Five wheel levels of 256 slots
   each cover [2^8, 2^16, 2^24, 2^32, 2^40) ticks of horizon (level k
   spans 256^(k+1) ticks, one slot = 256^k ticks); anything beyond
   ~19.5 simulated hours ahead goes to an unsorted overflow list with a
   tracked minimum, and is folded back into the wheels when the clock
   approaches it. Near-horizon schedule and expire - the traffic that
   dominates a simulation: scan ticks, round timers, packet deliveries -
   is O(1) amortised, with no per-event hashing.

   Determinism. The external contract is identical to the binary heap
   this replaces ({!Event_heap}): events come out ordered by
   [(time, seq)] where [seq] is the push order. The wheel never needs to
   preserve insertion order internally: when a level-0 slot's window
   becomes current, its due entries are sorted by [(time, seq)] - a
   total order because [seq] is unique - into the [due] buffer, so
   same-timestamp FIFO ties are exact by construction.

   Placement invariant. Every entry stored in a wheel slot lies inside
   the *nearest upcoming occurrence* of that slot's window (slot indices
   recur every 256^(k+1) ticks at level k). [place] verifies this and
   bumps an entry to a coarser level (or overflow) when its natural
   level would alias a nearer occurrence of the same slot; this is what
   makes [window_start] an exact earliest-bound for every occupied slot
   and guarantees the cascade terminates. Cascading a level-k slot moves
   its in-window entries directly down to level k-1 by their tick bits
   (each level-k slot fans out injectively onto the 256 level-(k-1)
   slots below it), so every cascade strictly descends.

   Cancellation is O(1) and allocation-free: handles are generation
   tagged indices into an arena of generation counters. Cancelling (or
   firing) bumps the generation, which simultaneously invalidates the
   handle and marks the entry - still sitting in some slot - as dead;
   dead entries are dropped lazily when their slot is next touched, and
   when the live count reaches zero the whole structure is purged so
   popped payloads never linger. *)

type handle = int

(* Handle layout: low [idx_bits] bits index the generation arena, the
   rest carry the generation the handle was minted with. With 63-bit
   ints this allows ~2^34 reuses per cell before a stale handle could
   collide; generations also wrap defensively at that bound. *)
let idx_bits = 28
let idx_mask = (1 lsl idx_bits) - 1
let gen_mask = (1 lsl (Sys.int_size - 1 - idx_bits)) - 1

let tick_bits = 6 (* 64 ns per tick *)
let level_bits = 8
let wheel_slots = 1 lsl level_bits
let slot_mask = wheel_slots - 1
let levels = 5

(* Occupancy bitmaps use 32-bit words (8 per level) so shifts stay well
   inside OCaml's 63-bit ints. *)
let occ_words = wheel_slots / 32

type 'a entry = {
  time : Time.t;
  seq : int;
  key : handle; (* generation-tagged; dead iff gens.(idx) moved on *)
  payload : 'a;
}

type 'a t = {
  mutable due : 'a entry list; (* sorted by (time, seq); consumed by pop *)
  slots : 'a entry list array array; (* [level].[slot], unordered *)
  occ : int array array; (* [level].[word] occupancy bitmap *)
  mutable overflow : 'a entry list; (* beyond the top level's horizon *)
  mutable overflow_min : int; (* lower bound on overflow ticks *)
  mutable cur : int; (* harvest position, in ticks *)
  mutable live : int;
  mutable next_seq : int;
  mutable gens : int array; (* arena: current generation per cell *)
  mutable cells : int; (* arena high-water mark *)
  mutable free : int array; (* stack of freed cell indices *)
  mutable free_top : int;
}

let create () =
  {
    due = [];
    slots = Array.init levels (fun _ -> Array.make wheel_slots []);
    occ = Array.init levels (fun _ -> Array.make occ_words 0);
    overflow = [];
    overflow_min = max_int;
    cur = 0;
    live = 0;
    next_seq = 0;
    gens = [||];
    cells = 0;
    free = [||];
    free_top = 0;
  }

let is_empty t = t.live = 0
let size t = t.live

(* --- generation arena ------------------------------------------------ *)

let alloc_cell t =
  if t.free_top > 0 then begin
    t.free_top <- t.free_top - 1;
    t.free.(t.free_top)
  end
  else begin
    if t.cells = Array.length t.gens then begin
      let cap = Array.length t.gens in
      let new_cap = if cap = 0 then 16 else 2 * cap in
      let g = Array.make new_cap 0 in
      Array.blit t.gens 0 g 0 cap;
      t.gens <- g
    end;
    let i = t.cells in
    t.cells <- t.cells + 1;
    i
  end

let free_cell t idx =
  if t.free_top = Array.length t.free then begin
    let cap = Array.length t.free in
    let new_cap = if cap = 0 then 16 else 2 * cap in
    let f = Array.make new_cap 0 in
    Array.blit t.free 0 f 0 cap;
    t.free <- f
  end;
  t.free.(t.free_top) <- idx;
  t.free_top <- t.free_top + 1

let handle_live t h =
  let idx = h land idx_mask in
  idx < t.cells && h lsr idx_bits = t.gens.(idx)

let cancelled t h = not (handle_live t h)

(* Invalidate [h]'s cell: bumping the generation kills the handle and
   the entry record still sitting in a slot in one store. *)
let kill_cell t h =
  let idx = h land idx_mask in
  t.gens.(idx) <- (t.gens.(idx) + 1) land gen_mask;
  free_cell t idx;
  t.live <- t.live - 1

let cancel t h = if handle_live t h then kill_cell t h

let entry_live t (e : 'a entry) = handle_live t e.key

(* --- ordering -------------------------------------------------------- *)

let entry_before (a : 'a entry) (b : 'a entry) =
  match Time.compare a.time b.time with
  | 0 -> a.seq < b.seq
  | c -> c < 0

let entry_compare (a : 'a entry) (b : 'a entry) =
  match Time.compare a.time b.time with
  | 0 -> Int.compare a.seq b.seq
  | c -> c

(* Sorted insert into [due]. Only reached by pushes whose tick is at or
   behind the harvest position (zero-delay work, or re-pushes into the
   current tick), so the list walked here is the already-harvested
   front, not the whole queue. *)
let rec due_insert e = function
  | [] -> [ e ]
  | x :: _ as l when entry_before e x -> e :: l
  | x :: rest -> x :: due_insert e rest

(* --- bitmap helpers -------------------------------------------------- *)

let ctz32 x =
  (* trailing zeros of a non-zero 32-bit value *)
  let n = ref 0 and x = ref x in
  if !x land 0xFFFF = 0 then begin
    n := !n + 16;
    x := !x lsr 16
  end;
  if !x land 0xFF = 0 then begin
    n := !n + 8;
    x := !x lsr 8
  end;
  if !x land 0xF = 0 then begin
    n := !n + 4;
    x := !x lsr 4
  end;
  if !x land 0x3 = 0 then begin
    n := !n + 2;
    x := !x lsr 2
  end;
  if !x land 0x1 = 0 then incr n;
  !n

let set_occ t k s =
  let w = s lsr 5 in
  t.occ.(k).(w) <- t.occ.(k).(w) lor (1 lsl (s land 31))

let clear_occ t k s =
  let w = s lsr 5 in
  t.occ.(k).(w) <- t.occ.(k).(w) land lnot (1 lsl (s land 31))

(* First occupied slot at level [k] in circular order starting at
   [s_from]; -1 if the level is empty. *)
let next_occupied t k s_from =
  let occ = t.occ.(k) in
  let w0 = s_from lsr 5 in
  let bit = s_from land 31 in
  let first = occ.(w0) land (-1 lsl bit) in
  if first <> 0 then (w0 lsl 5) lor ctz32 first
  else begin
    let rec scan i =
      if i > occ_words then -1
      else begin
        let wi = (w0 + i) mod occ_words in
        let word =
          if i = occ_words then occ.(w0) land lnot (-1 lsl bit) else occ.(wi)
        in
        if word <> 0 then (wi lsl 5) lor ctz32 word else scan (i + 1)
      end
    in
    scan 1
  end

(* --- tick geometry --------------------------------------------------- *)

(* Arithmetic shift so [Time.infinity] maps to a large positive tick and
   (defensively) negative times to a tick at or behind any cursor. *)
let tick_of_time (time : Time.t) =
  Int64.to_int (Int64.shift_right (Time.to_ns time) tick_bits)

(* Start tick of the nearest occurrence of slot [s] of level [k] that
   still contains a tick after [cur] (everything at or before [cur] is
   already dispatched). Thanks to the placement invariant this is an
   exact earliest-bound for the slot's contents. *)
let window_start t k s =
  let shift = level_bits * k in
  let p = t.cur asr shift in
  let s_cur = p land slot_mask in
  let p' = if s >= s_cur then p - s_cur + s else p - s_cur + wheel_slots + s in
  let w = p' lsl shift in
  (* The occurrence containing [cur] is exhausted once its last tick is
     at or before [cur] (always true at level 0, where a window is a
     single tick): skip a full turn of the wheel. *)
  if w + (1 lsl shift) - 1 <= t.cur then (p' + wheel_slots) lsl shift else w

let add_overflow t e tk =
  t.overflow <- e :: t.overflow;
  if tk < t.overflow_min then t.overflow_min <- tk

(* Place [e] (tick [tk], strictly ahead of [t.cur]) at the finest level
   where it falls inside the nearest occurrence of its slot. Starting
   from the level suggested by the distance, aliasing can only push the
   entry coarser, never finer, so this terminates at overflow at the
   latest. *)
let place t (e : 'a entry) tk =
  let delta = tk - t.cur in
  let rec go k =
    if k >= levels then add_overflow t e tk
    else if delta lsr (level_bits * (k + 1)) <> 0 then go (k + 1)
    else begin
      let shift = level_bits * k in
      let s = (tk asr shift) land slot_mask in
      let w = window_start t k s in
      if tk < w + (1 lsl shift) then begin
        t.slots.(k).(s) <- e :: t.slots.(k).(s);
        set_occ t k s
      end
      else go (k + 1) (* nearest occurrence is not [e]'s window: alias *)
    end
  in
  go 0

let insert t (e : 'a entry) =
  let tk = tick_of_time e.time in
  if tk <= t.cur then t.due <- due_insert e t.due else place t e tk

(* --- advancing the wheel --------------------------------------------- *)

(* Make the level-0 slot whose window is [w] current: live entries of
   this very tick move (sorted) into [due]; later aliases are replaced. *)
let harvest t s w =
  let l = t.slots.(0).(s) in
  t.slots.(0).(s) <- [];
  clear_occ t 0 s;
  if w > t.cur then t.cur <- w;
  let matched = ref [] in
  List.iter
    (fun e ->
      if entry_live t e then begin
        if tick_of_time e.time = w then matched := e :: !matched
        else place t e (tick_of_time e.time)
      end)
    l;
  match !matched with
  | [] -> ()
  | m -> t.due <- List.merge entry_compare (List.sort entry_compare m) t.due

(* Redistribute a level-k slot whose nearest window [w] is next:
   in-window entries drop straight to level k-1 by their tick bits;
   anything else (an alias, at least a full wheel turn away) is
   re-placed coarser. *)
let cascade t k s w =
  let l = t.slots.(k).(s) in
  t.slots.(k).(s) <- [];
  clear_occ t k s;
  if w - 1 > t.cur then t.cur <- w - 1;
  let shift = level_bits * k in
  let wspan = 1 lsl shift in
  List.iter
    (fun e ->
      if entry_live t e then begin
        let tk = tick_of_time e.time in
        if tk >= w && tk - w < wspan then begin
          let s' = (tk asr (shift - level_bits)) land slot_mask in
          t.slots.(k - 1).(s') <- e :: t.slots.(k - 1).(s');
          set_occ t (k - 1) s'
        end
        else place t e tk
      end)
    l

(* Fold overflow back into the wheels. Advancing [cur] to just before
   the earliest overflow tick is safe because the wheels are only
   consulted via [advance], which refills before the cursor could pass
   [overflow_min]; the earliest live entry then lands at level 0, so
   every refill makes progress. *)
let refill_overflow t =
  let l = t.overflow in
  t.overflow <- [];
  if t.overflow_min - 1 > t.cur then t.cur <- t.overflow_min - 1;
  t.overflow_min <- max_int;
  List.iter (fun e -> if entry_live t e then insert t e) l

(* Refill [due] with the next batch of events. Returns [true] iff [due]
   is non-empty afterwards; [false] only when no live entries remain
   outside [due]. *)
let rec advance t =
  match t.due with
  | _ :: _ -> true
  | [] ->
    let best_k = ref (-1) and best_s = ref 0 and best_w = ref max_int in
    (* Descending levels with a strict compare: ties go to the coarsest
       level, which must cascade before a finer harvest at the same
       window start. *)
    for k = levels - 1 downto 0 do
      let consider s =
        let w = window_start t k s in
        if w < !best_w then begin
          best_w := w;
          best_k := k;
          best_s := s
        end
      in
      let s_from = (t.cur asr (level_bits * k)) land slot_mask in
      let s = next_occupied t k s_from in
      if s >= 0 then begin
        consider s;
        (* Window starts are monotone along the circular slot order
           except for [s_from] itself, whose occurrence may have been
           bumped a whole turn ahead; the slot after it then holds the
           level's true minimum. *)
        if s = s_from then begin
          let s2 = next_occupied t k ((s_from + 1) land slot_mask) in
          if s2 >= 0 && s2 <> s_from then consider s2
        end
      end
    done;
    if t.overflow != [] && t.overflow_min <= !best_w then begin
      refill_overflow t;
      advance t
    end
    else if !best_k < 0 then false
    else if !best_k = 0 then begin
      harvest t !best_s !best_w;
      advance t
    end
    else begin
      cascade t !best_k !best_s !best_w;
      advance t
    end

(* Everything still stored is dead ([live] hit zero): drop it all so
   payloads of popped and cancelled events can be collected. The arena
   keeps its generations, so stale handles remain invalid. *)
let purge t =
  if t.due != [] then t.due <- [];
  if t.overflow != [] then begin
    t.overflow <- [];
    t.overflow_min <- max_int
  end;
  for k = 0 to levels - 1 do
    for w = 0 to occ_words - 1 do
      if t.occ.(k).(w) <> 0 then begin
        t.occ.(k).(w) <- 0;
        let base = w lsl 5 in
        for b = 0 to 31 do
          if t.slots.(k).(base lor b) != [] then t.slots.(k).(base lor b) <- []
        done
      end
    done
  done

(* --- interface ------------------------------------------------------- *)

let push t time payload =
  let idx = alloc_cell t in
  let key = (t.gens.(idx) lsl idx_bits) lor idx in
  let e = { time; seq = t.next_seq; key; payload } in
  t.next_seq <- t.next_seq + 1;
  t.live <- t.live + 1;
  insert t e;
  key

let rec peek_time t =
  if t.live = 0 then begin
    purge t;
    None
  end
  else
    match t.due with
    | e :: rest ->
      if entry_live t e then Some e.time
      else begin
        t.due <- rest;
        peek_time t
      end
    | [] -> if advance t then peek_time t else None

let rec pop t =
  if t.live = 0 then begin
    purge t;
    None
  end
  else
    match t.due with
    | e :: rest ->
      t.due <- rest;
      if entry_live t e then begin
        kill_cell t e.key;
        Some (e.time, e.payload)
      end
      else pop t
    | [] -> if advance t then pop t else None
