type level = Debug | Info | Warn

type record = {
  time : Time.t;
  level : level;
  component : string;
  message : string;
}

type t = {
  buffer : record Queue.t;
  capacity : int;
  mutable dropped_count : int;
}

let create ?(capacity = 65536) () =
  { buffer = Queue.create (); capacity; dropped_count = 0 }

let emit t time level ~component message =
  Queue.push { time; level; component; message } t.buffer;
  if Queue.length t.buffer > t.capacity then begin
    ignore (Queue.pop t.buffer);
    t.dropped_count <- t.dropped_count + 1
  end

let emitf t time level ~component fmt =
  Format.kasprintf (fun message -> emit t time level ~component message) fmt

let records t = List.of_seq (Queue.to_seq t.buffer)

(* Queries stream over the queue directly: no intermediate list, and
   [contains] short-circuits on the first hit. *)
let find t ~component =
  List.of_seq (Seq.filter (fun r -> String.equal r.component component) (Queue.to_seq t.buffer))

let contains_substring s sub =
  let n = String.length s and m = String.length sub in
  if m = 0 then true
  else begin
    (* char-by-char comparison: no [String.sub] allocation per position *)
    let rec matches i j = j >= m || (s.[i + j] = sub.[j] && matches i (j + 1)) in
    let rec scan i = i + m <= n && (matches i 0 || scan (i + 1)) in
    scan 0
  end

let contains t ~component ~substring =
  Seq.exists
    (fun r -> String.equal r.component component && contains_substring r.message substring)
    (Queue.to_seq t.buffer)

let count t = Queue.length t.buffer
let dropped t = t.dropped_count

let clear t =
  Queue.clear t.buffer;
  t.dropped_count <- 0

let level_to_string = function
  | Debug -> "debug"
  | Info -> "info"
  | Warn -> "warn"

let pp_record fmt r =
  Format.fprintf fmt "[%a] %-5s %s: %s" Time.pp r.time (level_to_string r.level) r.component
    r.message
