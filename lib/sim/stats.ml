(* Welford's online algorithm for mean/variance, plus a retained sample
   list for percentiles. Experiment sample counts are small (5-1000), so
   keeping all samples is cheap. *)

type t = {
  mutable n : int;
  mutable mean_acc : float;
  mutable m2 : float;
  mutable min_v : float;
  mutable max_v : float;
  mutable sum_v : float;
  mutable rev_samples : float list;
  mutable sorted : float array option;
      (* cache for percentile queries, invalidated by [add] so a summary
         (p50/p95/p99) sorts once instead of three times *)
}

let create () =
  {
    n = 0;
    mean_acc = 0.;
    m2 = 0.;
    min_v = Float.infinity;
    max_v = Float.neg_infinity;
    sum_v = 0.;
    rev_samples = [];
    sorted = None;
  }

let add t x =
  t.n <- t.n + 1;
  let delta = x -. t.mean_acc in
  t.mean_acc <- t.mean_acc +. (delta /. float_of_int t.n);
  t.m2 <- t.m2 +. (delta *. (x -. t.mean_acc));
  if x < t.min_v then t.min_v <- x;
  if x > t.max_v then t.max_v <- x;
  t.sum_v <- t.sum_v +. x;
  t.rev_samples <- x :: t.rev_samples;
  t.sorted <- None

let add_time t d = add t (Int64.to_float (Time.to_ns d))
let count t = t.n
let mean t = if t.n = 0 then Float.nan else t.mean_acc
let variance t = if t.n < 2 then 0. else t.m2 /. float_of_int (t.n - 1)
let stddev t = Float.sqrt (variance t)

let rsd t =
  let m = mean t in
  if t.n < 2 || Float.equal m 0. || Float.is_nan m then 0. else stddev t /. Float.abs m

let min t = t.min_v
let max t = t.max_v
let sum t = t.sum_v
let samples t = List.rev t.rev_samples

let of_list xs =
  let t = create () in
  List.iter (add t) xs;
  t

let sorted_samples t =
  match t.sorted with
  | Some arr -> arr
  | None ->
    let arr = Array.of_list t.rev_samples in
    Array.sort Float.compare arr;
    t.sorted <- Some arr;
    arr

let percentile t p =
  if t.n = 0 then Float.nan
  else begin
    let arr = sorted_samples t in
    let p = Float.max 0. (Float.min 100. p) in
    let rank = p /. 100. *. float_of_int (Array.length arr - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = int_of_float (Float.ceil rank) in
    if lo = hi then arr.(lo)
    else
      let frac = rank -. float_of_int lo in
      arr.(lo) +. (frac *. (arr.(hi) -. arr.(lo)))
  end

type summary = {
  n : int;
  mean : float;
  stddev : float;
  rsd : float;
  min : float;
  max : float;
  p50 : float;
  p95 : float;
  p99 : float;
}

let summary (t : t) : summary =
  {
    n = t.n;
    mean = mean t;
    stddev = stddev t;
    rsd = rsd t;
    min = (if t.n = 0 then Float.nan else t.min_v);
    max = (if t.n = 0 then Float.nan else t.max_v);
    p50 = percentile t 50.;
    p95 = percentile t 95.;
    p99 = percentile t 99.;
  }

let pp_summary fmt s =
  Format.fprintf fmt
    "n=%d mean=%.4g stddev=%.4g rsd=%.2f%% min=%.4g p50=%.4g p95=%.4g p99=%.4g max=%.4g"
    s.n s.mean s.stddev (s.rsd *. 100.) s.min s.p50 s.p95 s.p99 s.max

let percent_change ~from_ ~to_ =
  if Float.equal from_ 0. then Float.nan else (to_ -. from_) /. from_ *. 100.
