(* Welford's online algorithm for mean/variance, plus a retained sample
   list for percentiles below [sample_cap] and a mergeable quantile
   sketch above it. Experiment sample counts are small (5-1000), so the
   exact path covers them; streaming sinks (telemetry summaries,
   long-running monitors) spill into the sketch and stay
   allocation-bounded. *)

module Sketch = struct
  (* Merging t-digest with the uniform (k0) scale function: centroid
     weight is capped at [total / compression], so the sketch holds at
     most [2 * compression + 2] centroids and quantile estimates carry a
     rank error of at most ~[total / compression] (conservatively
     [2 * total / compression] at the interpolation boundaries). The k0
     scale trades the k1 variant's tail sharpening for purely rational
     arithmetic: no [asin]/[sin] calls, so estimates are bit-stable
     across libm implementations, which the golden-output suite relies
     on. Inserts land in a fixed buffer and are folded in by a single
     merge-compress pass; [merge_into] is one such pass over the two
     sorted centroid arrays, O(centroids). *)

  type t = {
    compression : int;
    buf : float array; (* pending raw samples, unit weight *)
    mutable buf_len : int;
    means : float array; (* live centroids, sorted by mean *)
    weights : float array;
    mutable n : int; (* live centroid count *)
    mutable total : int;
    mutable sum_v : float;
    mutable min_v : float;
    mutable max_v : float;
    scratch_m : float array; (* merge-compress output workspace *)
    scratch_w : float array;
  }

  let default_compression = 128
  let max_centroids compression = (2 * compression) + 2
  let buffer_size compression = 4 * compression

  let create ?(compression = default_compression) () =
    if compression < 8 then
      invalid_arg "Stats.Sketch.create: compression must be >= 8";
    let mc = max_centroids compression in
    let bs = buffer_size compression in
    {
      compression;
      buf = Array.make bs 0.;
      buf_len = 0;
      means = Array.make mc 0.;
      weights = Array.make mc 0.;
      n = 0;
      total = 0;
      sum_v = 0.;
      min_v = Float.infinity;
      max_v = Float.neg_infinity;
      scratch_m = Array.make mc 0.;
      scratch_w = Array.make mc 0.;
    }

  let count t = t.total
  let sum t = t.sum_v
  let min t = if t.total = 0 then Float.nan else t.min_v
  let max t = if t.total = 0 then Float.nan else t.max_v
  let compression t = t.compression

  (* Merge the live centroids with a second sorted source (either the
     sorted insert buffer at unit weight, or another sketch's centroids)
     and compress the result back into [t]. Emitted clusters obey the
     weight cap, so the output count stays under [max_centroids]: any
     two consecutive output clusters sum to more than the cap. *)
  let merge_compress t ~w_total ~src_m ~src_w ~src_n =
    let limit = w_total /. float_of_int t.compression in
    let i = ref 0 and j = ref 0 and out = ref 0 in
    let cur_m = ref 0. and cur_w = ref 0. in
    let started = ref false in
    while !i < t.n || !j < src_n do
      let m, w =
        if
          !i < t.n
          && (!j >= src_n || Float.compare t.means.(!i) src_m.(!j) <= 0)
        then begin
          let v = (t.means.(!i), t.weights.(!i)) in
          incr i;
          v
        end
        else begin
          let v =
            (src_m.(!j), match src_w with Some w -> w.(!j) | None -> 1.)
          in
          incr j;
          v
        end
      in
      if not !started then begin
        started := true;
        cur_m := m;
        cur_w := w
      end
      else if !cur_w +. w <= limit then begin
        cur_m := !cur_m +. (w /. (!cur_w +. w) *. (m -. !cur_m));
        cur_w := !cur_w +. w
      end
      else begin
        t.scratch_m.(!out) <- !cur_m;
        t.scratch_w.(!out) <- !cur_w;
        incr out;
        cur_m := m;
        cur_w := w
      end
    done;
    if !started then begin
      t.scratch_m.(!out) <- !cur_m;
      t.scratch_w.(!out) <- !cur_w;
      incr out
    end;
    Array.blit t.scratch_m 0 t.means 0 !out;
    Array.blit t.scratch_w 0 t.weights 0 !out;
    t.n <- !out

  let flush t =
    if t.buf_len > 0 then begin
      let tmp = Array.sub t.buf 0 t.buf_len in
      Array.sort Float.compare tmp;
      merge_compress t
        ~w_total:(float_of_int t.total)
        ~src_m:tmp ~src_w:None ~src_n:t.buf_len;
      t.buf_len <- 0
    end

  let add t x =
    if t.buf_len = Array.length t.buf then flush t;
    t.buf.(t.buf_len) <- x;
    t.buf_len <- t.buf_len + 1;
    t.total <- t.total + 1;
    t.sum_v <- t.sum_v +. x;
    if x < t.min_v then t.min_v <- x;
    if x > t.max_v then t.max_v <- x

  let centroids t =
    flush t;
    t.n

  let merge_into ~into src =
    if src.total > 0 then begin
      flush src;
      flush into;
      merge_compress into
        ~w_total:(float_of_int (into.total + src.total))
        ~src_m:src.means ~src_w:(Some src.weights) ~src_n:src.n;
      into.total <- into.total + src.total;
      into.sum_v <- into.sum_v +. src.sum_v;
      if src.min_v < into.min_v then into.min_v <- src.min_v;
      if src.max_v > into.max_v then into.max_v <- src.max_v
    end

  let copy t =
    {
      t with
      buf = Array.copy t.buf;
      means = Array.copy t.means;
      weights = Array.copy t.weights;
      scratch_m = Array.copy t.scratch_m;
      scratch_w = Array.copy t.scratch_w;
    }

  (* Interpolates over centroid midpoints: centroid [i] is treated as
     sitting at cumulative rank [sum w_0..w_{i-1} + w_i / 2], with the
     extremes anchored at the exact tracked min/max. *)
  let quantile t q =
    if t.total = 0 then Float.nan
    else if t.total = 1 then t.min_v
    else begin
      flush t;
      let q = Float.max 0. (Float.min 1. q) in
      let target = q *. float_of_int t.total in
      let result = ref Float.nan in
      let found = ref false in
      let cum = ref 0. in
      let prev_rank = ref 0. in
      let prev_val = ref t.min_v in
      for i = 0 to t.n - 1 do
        let w = t.weights.(i) in
        let mid = !cum +. (w /. 2.) in
        if (not !found) && target <= mid then begin
          found := true;
          result :=
            (if mid -. !prev_rank <= 0. then t.means.(i)
             else
               !prev_val
               +. (target -. !prev_rank)
                  /. (mid -. !prev_rank)
                  *. (t.means.(i) -. !prev_val))
        end;
        cum := !cum +. w;
        prev_rank := mid;
        prev_val := t.means.(i)
      done;
      if not !found then begin
        let denom = float_of_int t.total -. !prev_rank in
        result :=
          (if denom <= 0. then t.max_v
           else
             !prev_val
             +. ((target -. !prev_rank) /. denom *. (t.max_v -. !prev_val)))
      end;
      Float.max t.min_v (Float.min t.max_v !result)
    end

  let percentile t p = quantile t (p /. 100.)
end

type t = {
  mutable n : int;
  mutable mean_acc : float;
  mutable m2 : float;
  mutable min_v : float;
  mutable max_v : float;
  mutable sum_v : float;
  sample_cap : int;
  mutable rev_samples : float list;
  mutable sorted : float array option;
      (* cache for percentile queries, invalidated by [add] so a summary
         (p50/p95/p99) sorts once instead of three times *)
  mutable sketch : Sketch.t option;
      (* engaged once [n] exceeds [sample_cap]; from then on percentiles
         are sketch estimates and [rev_samples] stays empty *)
}

let default_sample_cap = 1024

let create ?(sample_cap = default_sample_cap) () =
  {
    n = 0;
    mean_acc = 0.;
    m2 = 0.;
    min_v = Float.infinity;
    max_v = Float.neg_infinity;
    sum_v = 0.;
    sample_cap = Stdlib.max 0 sample_cap;
    rev_samples = [];
    sorted = None;
    sketch = None;
  }

(* Spill the retained samples (in insertion order) into a fresh sketch;
   the exact-percentile path is abandoned for this accumulator. *)
let spill t =
  match t.sketch with
  | Some sk -> sk
  | None ->
    let sk = Sketch.create () in
    List.iter (Sketch.add sk) (List.rev t.rev_samples);
    t.rev_samples <- [];
    t.sorted <- None;
    t.sketch <- Some sk;
    sk

(* The single ingestion path: [add_time], [of_list] and [merge_into] all
   funnel through here (or through the sketch directly), so the cap and
   cache-invalidation logic lives in exactly one place. *)
let add t x =
  t.n <- t.n + 1;
  let delta = x -. t.mean_acc in
  t.mean_acc <- t.mean_acc +. (delta /. float_of_int t.n);
  t.m2 <- t.m2 +. (delta *. (x -. t.mean_acc));
  if x < t.min_v then t.min_v <- x;
  if x > t.max_v then t.max_v <- x;
  t.sum_v <- t.sum_v +. x;
  match t.sketch with
  | Some sk -> Sketch.add sk x
  | None ->
    if t.n <= t.sample_cap then begin
      t.rev_samples <- x :: t.rev_samples;
      t.sorted <- None
    end
    else Sketch.add (spill t) x

let add_time t d = add t (Int64.to_float (Time.to_ns d))
let count t = t.n
let mean t = if t.n = 0 then Float.nan else t.mean_acc
let variance t = if t.n < 2 then 0. else t.m2 /. float_of_int (t.n - 1)
let stddev t = Float.sqrt (variance t)

let rsd t =
  let m = mean t in
  if t.n < 2 || Float.equal m 0. || Float.is_nan m then 0. else stddev t /. Float.abs m

let min t = t.min_v
let max t = t.max_v
let sum t = t.sum_v
let samples t = List.rev t.rev_samples
let is_sketched t = Option.is_some t.sketch

let of_list xs =
  let t = create () in
  List.iter (add t) xs;
  t

let merge_into ~into src =
  if src.n > 0 then begin
    let n1 = float_of_int into.n and n2 = float_of_int src.n in
    let nt = n1 +. n2 in
    if into.n = 0 then begin
      into.mean_acc <- src.mean_acc;
      into.m2 <- src.m2
    end
    else begin
      let delta = src.mean_acc -. into.mean_acc in
      into.mean_acc <- into.mean_acc +. (delta *. n2 /. nt);
      into.m2 <- into.m2 +. src.m2 +. (delta *. delta *. n1 *. n2 /. nt)
    end;
    if src.min_v < into.min_v then into.min_v <- src.min_v;
    if src.max_v > into.max_v then into.max_v <- src.max_v;
    into.sum_v <- into.sum_v +. src.sum_v;
    into.n <- into.n + src.n;
    match (into.sketch, src.sketch) with
    | None, None when into.n <= into.sample_cap ->
      (* both exact and still under the cap: equivalent to having added
         src's samples after into's, so percentiles stay exact *)
      into.rev_samples <- src.rev_samples @ into.rev_samples;
      into.sorted <- None
    | _ ->
      let sk = spill into in
      (match src.sketch with
      | Some sk2 -> Sketch.merge_into ~into:sk sk2
      | None -> List.iter (Sketch.add sk) (List.rev src.rev_samples))
  end

let sorted_samples t =
  match t.sorted with
  | Some arr -> arr
  | None ->
    let arr = Array.of_list t.rev_samples in
    Array.sort Float.compare arr;
    t.sorted <- Some arr;
    arr

let percentile t p =
  if t.n = 0 then Float.nan
  else begin
    match t.sketch with
    | Some sk -> Sketch.percentile sk p
    | None ->
      let arr = sorted_samples t in
      let p = Float.max 0. (Float.min 100. p) in
      let rank = p /. 100. *. float_of_int (Array.length arr - 1) in
      let lo = int_of_float (Float.floor rank) in
      let hi = int_of_float (Float.ceil rank) in
      if lo = hi then arr.(lo)
      else
        let frac = rank -. float_of_int lo in
        arr.(lo) +. (frac *. (arr.(hi) -. arr.(lo)))
  end

type summary = {
  n : int;
  mean : float;
  stddev : float;
  rsd : float;
  min : float;
  max : float;
  p50 : float;
  p95 : float;
  p99 : float;
}

let summary (t : t) : summary =
  {
    n = t.n;
    mean = mean t;
    stddev = stddev t;
    rsd = rsd t;
    min = (if t.n = 0 then Float.nan else t.min_v);
    max = (if t.n = 0 then Float.nan else t.max_v);
    p50 = percentile t 50.;
    p95 = percentile t 95.;
    p99 = percentile t 99.;
  }

let pp_summary fmt s =
  Format.fprintf fmt
    "n=%d mean=%.4g stddev=%.4g rsd=%.2f%% min=%.4g p50=%.4g p95=%.4g p99=%.4g max=%.4g"
    s.n s.mean s.stddev (s.rsd *. 100.) s.min s.p50 s.p95 s.p99 s.max

let percent_change ~from_ ~to_ =
  if Float.equal from_ 0. then Float.nan else (to_ -. from_) /. from_ *. 100.
