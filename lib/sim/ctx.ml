(* The per-instance simulation context. One value carries everything a
   substrate constructor used to take as separate optionals: the engine
   (clock + RNG root), the trace, the telemetry sink, and the fault
   plan. Forking rebuilds the engine from the stored seed, so a forked
   context replays the exact event/RNG schedule of a fresh one. *)

type t = {
  seed : int;
  engine : Engine.t;
  trace : Trace.t;
  telemetry : Telemetry.t option;
  faults : Fault.profile;
}

let create ?(seed = 42) ?telemetry ?(faults = Fault.none) () =
  { seed; engine = Engine.create ~seed (); trace = Trace.create (); telemetry; faults }

let seed t = t.seed
let engine t = t.engine
let trace t = t.trace
let telemetry t = t.telemetry
let faults t = t.faults
let now t = Engine.now t.engine
let fork_rng t = Engine.fork_rng t.engine

let fork t = { t with engine = Engine.create ~seed:t.seed (); trace = Trace.create () }

let with_seed t seed =
  { t with seed; engine = Engine.create ~seed (); trace = Trace.create () }

let with_telemetry t telemetry = { t with telemetry }

(* SplitMix64 finaliser: a trivial mix like [seed + member] would make
   member m of seed s collide with member m-1 of seed s+1, entangling
   neighbouring fleets; the avalanche keeps member streams disjoint. *)
let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let fork_member t ~member =
  if member < 0 then invalid_arg "Ctx.fork_member: negative member index";
  let z =
    mix64
      (Int64.logxor (Int64.of_int t.seed)
         (Int64.mul (Int64.of_int (member + 1)) 0x9E3779B97F4A7C15L))
  in
  with_seed t (Int64.to_int (Int64.shift_right_logical z 2))

(* Same world, private trace: actions taken through the quiet context
   advance the shared clock but leave no record in the instance's
   trace - the stealth branch of an install uses exactly this. *)
let quiet t = { t with trace = Trace.create () }
