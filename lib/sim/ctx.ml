(* The per-instance simulation context. One value carries everything a
   substrate constructor used to take as separate optionals: the engine
   (clock + RNG root), the trace, the telemetry sink, and the fault
   plan. Forking rebuilds the engine from the stored seed, so a forked
   context replays the exact event/RNG schedule of a fresh one. *)

type t = {
  seed : int;
  engine : Engine.t;
  trace : Trace.t;
  telemetry : Telemetry.t option;
  faults : Fault.profile;
}

let create ?(seed = 42) ?telemetry ?(faults = Fault.none) () =
  { seed; engine = Engine.create ~seed (); trace = Trace.create (); telemetry; faults }

let seed t = t.seed
let engine t = t.engine
let trace t = t.trace
let telemetry t = t.telemetry
let faults t = t.faults
let now t = Engine.now t.engine
let fork_rng t = Engine.fork_rng t.engine

let fork t = { t with engine = Engine.create ~seed:t.seed (); trace = Trace.create () }

let with_seed t seed =
  { t with seed; engine = Engine.create ~seed (); trace = Trace.create () }

let with_telemetry t telemetry = { t with telemetry }

(* Same world, private trace: actions taken through the quiet context
   advance the shared clock but leave no record in the instance's
   trace - the stealth branch of an install uses exactly this. *)
let quiet t = { t with trace = Trace.create () }
