(** Epoch timelines for lockstep sharded simulation.

    A {!plan} divides the horizon [0, until] into epochs of a fixed
    width: barrier [k] sits at [min ((k+1) * epoch, until)], so the
    final barrier always lands exactly on [until]. Between two barriers
    every shard advances its members independently; cross-member
    messages posted during epoch [k] are delivered at barrier [k] -
    which is only sound when [epoch] is no larger than the minimum
    cross-member latency being modelled (see DESIGN.md §14). *)

type plan

val plan : epoch:Time.t -> until:Time.t -> plan
(** Raises [Invalid_argument] unless [epoch > 0] and both times are
    finite and non-negative. A zero horizon yields an empty plan. *)

val epoch : plan -> Time.t
val until : plan -> Time.t

val count : plan -> int
(** Number of barriers: [ceil (until / epoch)]. *)

val time : plan -> int -> Time.t
(** [time p k] is barrier [k]'s clock value,
    [min ((k+1) * epoch, until)]. *)

val iter : plan -> f:(index:int -> start:Time.t -> until:Time.t -> unit) -> unit
(** Walk the epochs in order: [f ~index:k ~start ~until] covers the
    half-open interval [(start, until]] ending at barrier [k]. *)
