type profile = {
  loss : float;
  jitter_rsd : float;
  degradation : float;
  degradation_duty : float;
  mtbf : Time.t option;
  mttr : Time.t;
}

let none =
  {
    loss = 0.;
    jitter_rsd = 0.;
    degradation = 1.;
    degradation_duty = 0.;
    mtbf = None;
    mttr = Time.zero;
  }

let lossy = { none with loss = 0.01; jitter_rsd = 0.1 }
let degraded = { none with degradation = 0.4; degradation_duty = 0.5; jitter_rsd = 0.05 }
let flaky = { lossy with mtbf = Some (Time.s 20.); mttr = Time.s 2. }

let profiles =
  [ ("none", none); ("lossy", lossy); ("degraded", degraded); ("flaky", flaky) ]

let profile_of_string s =
  match List.assoc_opt (String.lowercase_ascii s) profiles with
  | Some p -> Ok p
  | None ->
    Error
      (Printf.sprintf "unknown fault profile %S (expected one of %s)" s
         (String.concat ", " (List.map fst profiles)))

let is_none p = p = none

let profile_name p =
  match List.find_opt (fun (_, q) -> q = p) profiles with
  | Some (name, _) -> name
  | None -> "custom"

let validate p =
  if p.loss < 0. || p.loss >= 1. then Error "loss must be in [0, 1)"
  else if p.jitter_rsd < 0. then Error "jitter_rsd must be non-negative"
  else if p.degradation <= 0. || p.degradation > 1. then
    Error "degradation must be in (0, 1]"
  else if p.degradation_duty < 0. || p.degradation_duty > 1. then
    Error "degradation_duty must be in [0, 1]"
  else if Time.(p.mttr < Time.zero) then Error "mttr must be non-negative"
  else Ok ()

type counters = {
  mutable chunks_dropped : int;
  mutable outages : int;
  mutable link_downtime : Time.t;
  mutable degraded_transmissions : int;
}

type t = {
  profile : profile;
  rng : Rng.t;
  counters : counters;
  (* absolute virtual time of the next link failure; sampled lazily on
     the first [cut] so creation order does not matter *)
  mutable next_failure : Time.t option;
  m_drops : Telemetry.counter;
  m_outages : Telemetry.counter;
  m_degraded : Telemetry.counter;
  m_downtime_ns : Telemetry.counter;
}

let create ?telemetry profile rng =
  (match validate profile with
  | Ok () -> ()
  | Error e -> invalid_arg ("Fault.create: " ^ e));
  let kind k = Telemetry.counter telemetry ~labels:[ ("kind", k) ] ~component:"fault" "injected_total" in
  {
    profile;
    rng;
    counters =
      { chunks_dropped = 0; outages = 0; link_downtime = Time.zero; degraded_transmissions = 0 };
    next_failure = None;
    m_drops = kind "chunk_drop";
    m_outages = kind "outage";
    m_degraded = kind "degraded";
    m_downtime_ns = Telemetry.counter telemetry ~component:"fault" "link_downtime_ns_total";
  }

let profile t = t.profile
let counters t = t.counters

let drops_chunk t =
  t.profile.loss > 0.
  &&
  let hit = Rng.float t.rng 1.0 < t.profile.loss in
  if hit then begin
    t.counters.chunks_dropped <- t.counters.chunks_dropped + 1;
    Telemetry.incr t.m_drops
  end;
  hit

let degradation_factor t =
  if t.profile.degradation_duty <= 0. then 1.
  else if Rng.float t.rng 1.0 < t.profile.degradation_duty then begin
    t.counters.degraded_transmissions <- t.counters.degraded_transmissions + 1;
    Telemetry.incr t.m_degraded;
    1. /. t.profile.degradation
  end
  else 1.

let chunk_jitter t =
  Rng.lognormal_noise t.rng ~rsd:t.profile.jitter_rsd *. degradation_factor t

let transmission_factor t =
  let goodput_overhead = if t.profile.loss > 0. then 1. /. (1. -. t.profile.loss) else 1. in
  Rng.lognormal_noise t.rng ~rsd:t.profile.jitter_rsd
  *. degradation_factor t *. goodput_overhead

(* Repairs are never instantaneous: a zero-length outage would make a
   "failed" transmission indistinguishable from a clean one. *)
let min_outage = Time.ms 1.

let cut t ~now ~during =
  match t.profile.mtbf with
  | None -> None
  | Some mtbf ->
    let next =
      match t.next_failure with
      | Some n -> n
      | None ->
        let n = Time.add now (Time.s (Rng.exponential t.rng (Time.to_s mtbf))) in
        t.next_failure <- Some n;
        n
    in
    if Time.(Time.add now during <= next) then None
    else begin
      let after = Time.max Time.zero (Time.diff next now) in
      let outage = Time.max min_outage (Time.s (Rng.exponential t.rng (Time.to_s t.profile.mttr))) in
      t.counters.outages <- t.counters.outages + 1;
      t.counters.link_downtime <- Time.add t.counters.link_downtime outage;
      Telemetry.incr t.m_outages;
      Telemetry.addf t.m_downtime_ns (Int64.to_float (Time.to_ns outage));
      let repaired = Time.add next outage in
      t.next_failure <-
        Some (Time.add repaired (Time.s (Rng.exponential t.rng (Time.to_s mtbf))));
      Some (after, outage)
    end
