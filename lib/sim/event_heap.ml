(* The original binary-heap event queue, kept as the reference
   implementation: the timing-wheel [Event_queue] must stay
   observably byte-identical to this structure, and the differential
   tests and throughput benchmarks compare against it.

   Cancellation is lazy: a cancelled entry stays in the heap and is
   discarded when it reaches the top. [pending] tracks ids that are in the
   heap and not cancelled, so [size] stays accurate and cancelling an
   already-fired event is a true no-op. *)

type handle = int

type 'a entry = {
  time : Time.t;
  seq : int;
  id : handle;
  payload : 'a;
}

type 'a t = {
  mutable heap : 'a entry array;
  mutable len : int;
  mutable next_seq : int;
  mutable next_id : handle;
  pending : (handle, unit) Hashtbl.t;
}

let create () =
  {
    heap = [||];
    len = 0;
    next_seq = 0;
    next_id = 0;
    pending = Hashtbl.create 64;
  }

let is_empty t = Hashtbl.length t.pending = 0
let size t = Hashtbl.length t.pending

let before a b =
  match Time.compare a.time b.time with
  | 0 -> a.seq < b.seq
  | c -> c < 0

let swap t i j =
  let tmp = t.heap.(i) in
  t.heap.(i) <- t.heap.(j);
  t.heap.(j) <- tmp

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if before t.heap.(i) t.heap.(parent) then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.len && before t.heap.(l) t.heap.(!smallest) then smallest := l;
  if r < t.len && before t.heap.(r) t.heap.(!smallest) then smallest := r;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

(* [t.heap.(0)] is always a live entry here (grow runs mid-push when the
   array is full), so the doubling filler never pins a popped payload:
   slots beyond [len] only ever alias entries that are still in the
   heap. *)
let grow t =
  let cap = Array.length t.heap in
  let new_cap = if cap = 0 then 16 else 2 * cap in
  let new_heap = Array.make new_cap t.heap.(0) in
  Array.blit t.heap 0 new_heap 0 t.len;
  t.heap <- new_heap

let push t time payload =
  let id = t.next_id in
  t.next_id <- id + 1;
  let entry = { time; seq = t.next_seq; id; payload } in
  t.next_seq <- t.next_seq + 1;
  if t.len = 0 && Array.length t.heap = 0 then t.heap <- Array.make 16 entry
  else if t.len = Array.length t.heap then grow t;
  t.heap.(t.len) <- entry;
  t.len <- t.len + 1;
  sift_up t (t.len - 1);
  Hashtbl.add t.pending id ();
  id

let cancelled t id = not (Hashtbl.mem t.pending id)
let cancel t id = Hashtbl.remove t.pending id

let pop_top t =
  let top = t.heap.(0) in
  t.len <- t.len - 1;
  if t.len > 0 then begin
    t.heap.(0) <- t.heap.(t.len);
    sift_down t 0;
    (* Release the vacated tail slot's reference so the popped payload
       can be collected: alias it to the (live) minimum instead of
       leaving the stale entry behind. *)
    t.heap.(t.len) <- t.heap.(0)
  end
  else
    (* Emptied out: drop the whole array, every slot of which references
       popped entries. Next push re-seeds it. *)
    t.heap <- [||];
  top

let rec discard_cancelled t =
  if t.len > 0 && not (Hashtbl.mem t.pending t.heap.(0).id) then begin
    let _ = pop_top t in
    discard_cancelled t
  end

let peek_time t =
  discard_cancelled t;
  if t.len = 0 then None else Some t.heap.(0).time

let pop t =
  discard_cancelled t;
  if t.len = 0 then None
  else begin
    let top = pop_top t in
    Hashtbl.remove t.pending top.id;
    Some (top.time, top.payload)
  end
