(** Simulation trace.

    A lightweight in-memory event log. Components append typed records
    ("vm started", "page merged", "migration round", ...); tests and the
    CLI read them back to assert causal behaviour without timing. *)

type level = Debug | Info | Warn

type record = {
  time : Time.t;
  level : level;
  component : string;
  message : string;
}

type t

val create : ?capacity:int -> unit -> t
(** [capacity] (default 65536) bounds retained records; older records are
    dropped first once exceeded. *)

val emit : t -> Time.t -> level -> component:string -> string -> unit

val emitf :
  t -> Time.t -> level -> component:string ->
  ('a, Format.formatter, unit, unit) format4 -> 'a

val records : t -> record list
(** Records in chronological order. *)

val find : t -> component:string -> record list
(** Records of one component, in chronological order; streams over the
    buffer without materialising the full record list. *)

val contains : t -> component:string -> substring:string -> bool
(** Whether any record of [component] mentions [substring]; streams and
    short-circuits on the first match. An empty [substring] matches any
    record of the component. *)

val count : t -> int

val dropped : t -> int
(** Records evicted by the capacity bound since creation (or since the
    last {!clear}). *)

val clear : t -> unit
(** Empties the buffer and resets the {!dropped} counter. *)

val pp_record : Format.formatter -> record -> unit
val level_to_string : level -> string
