(* skulkscope — typed escape/determinism/context analysis over .cmt files.

   Usage: skulkscope [--allow FILE] [--json FILE] [--format FMT] [--rules]
                     [--build-dir DIR] [--map-prefix FROM=TO] PATH...

   PATHs are looked up relative to --build-dir (default: _build/default
   when it exists, else the current directory) and walked for .cmt
   files. Exits 1 when any non-allowlisted finding survives. *)

let usage () =
  prerr_endline
    "usage: skulkscope [--allow FILE] [--json FILE] [--format FMT] [--rules]\n\
     \                  [--build-dir DIR] [--map-prefix FROM=TO] PATH...\n\
     \  --allow FILE      checked-in allowlist (default: lint.allow if present)\n\
     \  --json FILE       also write a structured report ('-' for stdout)\n\
     \  --format FMT      finding output format: human (default) or github\n\
     \  --rules           print the rule catalogue and exit\n\
     \  --build-dir DIR   where the .cmt tree lives (default: _build/default\n\
     \                    if present, else .)\n\
     \  --map-prefix A=B  rewrite reported source paths starting with A to B\n\
     \                    (lets a test corpus masquerade as lib/ paths)";
  exit 2

let print_rules () =
  List.iter
    (fun (r : Skulkscope_core.Rules.rule) ->
      Printf.printf "%-16s %-18s %s\n" r.name r.family r.summary)
    Skulkscope_core.Rules.catalogue

let () =
  let allow_file = ref None and json_out = ref None and roots = ref [] in
  let format = ref Lintkit.Report.Human in
  let build_dir = ref None and prefixes = ref [] in
  let rec parse_args = function
    | [] -> ()
    | "--allow" :: f :: rest ->
      allow_file := Some f;
      parse_args rest
    | "--json" :: f :: rest ->
      json_out := Some f;
      parse_args rest
    | "--format" :: f :: rest -> (
      match Lintkit.Report.format_of_string f with
      | Some fmt ->
        format := fmt;
        parse_args rest
      | None -> usage ())
    | "--build-dir" :: d :: rest ->
      build_dir := Some d;
      parse_args rest
    | "--map-prefix" :: m :: rest -> (
      match String.index_opt m '=' with
      | Some i ->
        prefixes :=
          (String.sub m 0 i, String.sub m (i + 1) (String.length m - i - 1))
          :: !prefixes;
        parse_args rest
      | None -> usage ())
    | "--rules" :: _ ->
      print_rules ();
      exit 0
    | ("--help" | "-h") :: _ -> usage ()
    | arg :: _ when String.length arg > 2 && String.sub arg 0 2 = "--" -> usage ()
    | path :: rest ->
      roots := path :: !roots;
      parse_args rest
  in
  parse_args (List.tl (Array.to_list Sys.argv));
  if !roots = [] then usage ();
  let build_dir =
    match !build_dir with
    | Some d -> d
    | None ->
      if Sys.file_exists "_build/default" && Sys.is_directory "_build/default"
      then "_build/default"
      else "."
  in
  let allow_path =
    match !allow_file with
    | Some f -> Some f
    | None -> if Sys.file_exists "lint.allow" then Some "lint.allow" else None
  in
  let allow_entries, allow_errors =
    match allow_path with
    | None -> ([], [])
    | Some f ->
      let entries, errs =
        Lintkit.Allow.parse_allow_file (Skulkscope_core.Driver.read_file f)
      in
      ( entries,
        List.map
          (fun (line, msg) ->
            { Lintkit.Report.tool = "skulkscope"; rule = "allow-file-syntax";
              file = f; line; col = 0; message = msg })
          errs )
  in
  let result, cmt_errors =
    Skulkscope_core.Driver.lint_tree ~allow_entries ~prefixes:(List.rev !prefixes)
      ~build_dir (List.rev !roots)
  in
  let findings = Lintkit.Report.sort (allow_errors @ cmt_errors @ result.findings) in
  let out = if !json_out = Some "-" then Format.err_formatter else Format.std_formatter in
  List.iter (fun f -> Format.fprintf out "%a@." (Lintkit.Report.pp !format) f) findings;
  let json =
    Lintkit.Report.to_json ~tools:[ "skulkscope" ]
      ~files_scanned:result.files_scanned ~suppressed:result.suppressed findings
  in
  (match !json_out with
  | Some "-" -> print_string json
  | Some f ->
    let oc = open_out f in
    output_string oc json;
    close_out oc
  | None -> ());
  Format.fprintf out
    "skulkscope: %d unit(s) analysed, %d finding(s), %d suppressed by allowlist@."
    result.files_scanned (List.length findings) result.suppressed;
  if findings <> [] then exit 1
