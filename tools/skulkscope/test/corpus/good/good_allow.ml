(* A real defect carrying a reasoned inline allow: suppressed cleanly,
   and the allow itself is counted as used (no allow-unused). *)

let fan_out () =
  let counter = ref 0 in
  (* skulkscope: allow escape-capture — corpus exemplar of a reasoned suppression *)
  Sim.Parallel.map 2 (fun i -> incr counter; i + !counter)
