(* Known-good: every mutable thing and every RNG is allocated inside
   the trial body, derived from the per-trial child context. *)

let run ctx =
  Sim.Parallel.map_ctx ~ctx ~trials:4 (fun _i cctx ->
      let rng = Sim.Ctx.fork_rng cctx in
      let buf = Buffer.create 16 in
      Buffer.add_string buf "trial";
      (Sim.Rng.float rng 1.0, Buffer.length buf))
