(* Known-good: cross-domain sharing through Atomic.t — the sanctioned
   escape hatch — stays silent. *)

let fan_out () =
  let done_count = Atomic.make 0 in
  let results =
    Sim.Parallel.map 4 (fun i ->
        Atomic.incr done_count;
        i * i)
  in
  (Atomic.get done_count, results)
