(* Known-good: the context arrives as a parameter everywhere; derived
   streams come from Ctx.fork_rng, never Ctx.create. *)

let step ctx = Sim.Rng.int (Sim.Ctx.fork_rng ctx) 6
let pipeline ctx = step ctx + step ctx
