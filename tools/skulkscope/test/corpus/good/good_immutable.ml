(* Known-good: closures may freely capture immutable data — lists,
   strings, tuples — from the spawning scope. *)

let table = [ (1, "one"); (2, "two") ]
let label = "trial"

let fan_out () =
  Sim.Parallel.map 4 (fun i -> (label, List.assoc_opt ((i mod 2) + 1) table))
