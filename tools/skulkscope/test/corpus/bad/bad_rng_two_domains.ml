(* Known-bad: one RNG stream forked in the spawning scope reaches two
   batches of spawned closures — the draw schedule then depends on how
   the domains interleave. Two rng-escape findings, one per spawn. *)

let run ctx =
  let rng = Sim.Ctx.fork_rng ctx in
  let a = Sim.Parallel.map 2 (fun i -> Sim.Rng.int rng (i + 10)) in
  let b = Sim.Parallel.map 2 (fun i -> Sim.Rng.float rng (float_of_int (i + 1))) in
  (a, b)
