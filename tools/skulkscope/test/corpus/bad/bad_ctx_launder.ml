(* Known-bad: a wrapper around a function that transitively applies
   Ctx.create — the interprocedural summary sees through the
   indirection. One ctx-launder finding. *)

let helper seed = Bad_ctx_minted.make_world seed
