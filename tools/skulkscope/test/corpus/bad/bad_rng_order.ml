(* Known-bad: an RNG is consumed inside a Hashtbl.iter callback, so the
   draw order follows hash-bucket order. One rng-order finding. *)

let jitter ctx (tbl : (int, float) Hashtbl.t) =
  let rng = Sim.Ctx.fork_rng ctx in
  let acc = ref 0.0 in
  Hashtbl.iter (fun _k v -> acc := !acc +. Sim.Rng.float rng v) tbl;
  !acc
