(* Known-bad: contexts minted inside lib/ instead of arriving as
   parameters — a module-level context and a helper that applies
   Ctx.create. Two ctx-minted findings ([make_world] also seeds the
   minter summary that bad_ctx_launder.ml calls through). *)

let default_ctx = Sim.Ctx.create ~seed:7 ()

let make_world seed =
  let ctx = Sim.Ctx.create ~seed () in
  Sim.Ctx.now ctx
