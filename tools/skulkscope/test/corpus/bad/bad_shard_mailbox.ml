(* Known-bad: the init closure handed to [Sim.Parallel.run_sharded]
   captures a mailbox Hashtbl from the spawning scope — every shard
   domain would hash into the same buckets concurrently, and drain
   order would follow the interleaving instead of the engine's
   canonical (dst, src) schedule. One escape-capture finding. *)

let run ctx =
  let mailbox : (int, string list) Hashtbl.t = Hashtbl.create 8 in
  let worlds =
    Sim.Parallel.run_sharded ~shards:2 ~ctx ~members:4 ~epoch:(Sim.Time.s 1.)
      ~until:(Sim.Time.s 4.) (fun ~member _ctx ->
        {
          Sim.Parallel.world = member;
          deliver =
            (fun ~now:_ ~src msgs ->
              Hashtbl.replace mailbox src (msgs @ [ string_of_int member ]));
          step = (fun ~until:_ ~post:_ -> ());
        })
  in
  (worlds, Hashtbl.length mailbox)
