(* Known-bad: spawned closures capture mutable state from the spawning
   scope — a direct ref, a record with a mutable field, and module-level
   mutable state. Three defects, three escape-capture findings. *)

type acc = { mutable total : int }

let hits : (int, int) Hashtbl.t = Hashtbl.create 8

let direct () =
  let counter = ref 0 in
  Sim.Parallel.map 4 (fun i ->
      incr counter;
      i + !counter)

let record_field () =
  let a = { total = 0 } in
  Sim.Parallel.map 4 (fun i ->
      a.total <- a.total + i;
      a.total)

let module_level () =
  Sim.Parallel.map 4 (fun i ->
      Hashtbl.replace hits i i;
      i)
