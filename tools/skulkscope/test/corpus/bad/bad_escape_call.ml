(* Known-bad: the spawned closure itself captures nothing mutable, but
   it calls a module-level function whose transitive roots include
   module-level mutable state. One escape-call finding. *)

let seen = ref 0

let bump () =
  seen := !seen + 1;
  !seen

let fan_out () = Sim.Parallel.map 4 (fun i -> ignore (bump ()); i)
