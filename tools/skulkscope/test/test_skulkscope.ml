(* Self-tests for the typed analyses: every rule fires on its known-bad
   corpus unit at the expected line, the known-good corpus is silent,
   path scoping and both allow mechanisms behave, and two runs over the
   same units produce byte-identical reports. The corpus compiles for
   real against sim, so these load genuine .cmt typedtrees; path-scoped
   rules are exercised by loading them under synthetic lib/-style
   paths. *)

open Skulkscope_core
open Lintkit

let read = Driver.read_file

(* Load one corpus unit under a synthetic path (default lib/scope/).
   [source] overrides the unit text handed to the allow scanner, for
   the stale/reasonless-allow tests. *)
let load ?path ?source ~kind name =
  let cmt =
    Printf.sprintf "corpus/%s/.scope_corpus_%s.objs/byte/scope_corpus_%s__%s.cmt"
      kind kind kind (String.capitalize_ascii name)
  in
  let source =
    match source with
    | Some s -> s
    | None -> read (Printf.sprintf "corpus/%s/%s.ml" kind name)
  in
  let path =
    match path with Some p -> p | None -> "lib/scope/" ^ name ^ ".ml"
  in
  match Driver.load_cmt ~path ~source cmt with
  | Ok u -> u
  | Error msg -> Alcotest.failf "load_cmt %s: %s" name msg

let bad_names =
  [ "bad_ctx_launder"; "bad_ctx_minted"; "bad_escape_call";
    "bad_escape_capture"; "bad_rng_order"; "bad_rng_two_domains";
    "bad_shard_mailbox" ]

let good_names =
  [ "good_allow"; "good_atomic"; "good_ctx_param"; "good_immutable";
    "good_per_trial" ]

let lint_bad () = Driver.lint_units (List.map (load ~kind:"bad") bad_names)

let brief (f : Report.finding) =
  Printf.sprintf "%s:%d %s" f.file f.line f.rule

let check_briefs name expected (r : Driver.result) =
  Alcotest.(check (list string)) name expected (List.map brief r.findings)

(* ---- bad corpus: every defect reported exactly once, with its line ---- *)

let expected_bad =
  [ "lib/scope/bad_ctx_launder.ml:5 ctx-launder";
    "lib/scope/bad_ctx_minted.ml:6 ctx-minted";
    "lib/scope/bad_ctx_minted.ml:9 ctx-minted";
    "lib/scope/bad_escape_call.ml:11 escape-call";
    "lib/scope/bad_escape_capture.ml:12 escape-capture";
    "lib/scope/bad_escape_capture.ml:18 escape-capture";
    "lib/scope/bad_escape_capture.ml:23 escape-capture";
    "lib/scope/bad_rng_order.ml:7 rng-order";
    "lib/scope/bad_rng_two_domains.ml:7 rng-escape";
    "lib/scope/bad_rng_two_domains.ml:8 rng-escape";
    "lib/scope/bad_shard_mailbox.ml:16 escape-capture" ]

let bad_tests =
  [
    Alcotest.test_case "all seeded defects, once each, at their lines" `Quick
      (fun () ->
        let r = lint_bad () in
        check_briefs "findings" expected_bad r;
        Alcotest.(check int) "nothing suppressed" 0 r.suppressed;
        Alcotest.(check int) "seven units" 7 r.files_scanned);
    Alcotest.test_case "every catalogue rule fires on the bad corpus" `Quick
      (fun () ->
        let r = lint_bad () in
        let fired rule =
          List.exists (fun (f : Report.finding) -> f.rule = rule.Rules.name)
            r.findings
        in
        List.iter
          (fun rule ->
            if not (fired rule) then
              Alcotest.failf "rule %s never fires on the corpus" rule.Rules.name)
          Rules.catalogue);
    Alcotest.test_case "determinism: two runs, identical reports" `Quick
      (fun () ->
        let a = lint_bad () and b = lint_bad () in
        Alcotest.(check (list string)) "reports"
          (List.map (Format.asprintf "%a" Report.pp_human) a.findings)
          (List.map (Format.asprintf "%a" Report.pp_human) b.findings));
  ]

(* ---- path scoping ---- *)

let scope_tests =
  [
    Alcotest.test_case "escape rules exempt lib/sim/parallel.ml" `Quick
      (fun () ->
        let u = load ~kind:"bad" ~path:"lib/sim/parallel.ml" "bad_escape_capture" in
        check_briefs "silent" [] (Driver.lint_units [ u ]));
    Alcotest.test_case "ctx-minted is scoped to lib/" `Quick (fun () ->
        let u = load ~kind:"bad" ~path:"bench/bad_ctx_minted.ml" "bad_ctx_minted" in
        check_briefs "bench exempt" [] (Driver.lint_units [ u ]));
    Alcotest.test_case "ctx-minted exempts lib/sim/" `Quick (fun () ->
        let u = load ~kind:"bad" ~path:"lib/sim/bad_ctx_minted.ml" "bad_ctx_minted" in
        check_briefs "sim exempt" [] (Driver.lint_units [ u ]));
    Alcotest.test_case "ctx-launder is scoped to lib/" `Quick (fun () ->
        let launder = load ~kind:"bad" ~path:"bench/helper.ml" "bad_ctx_launder" in
        let minted = load ~kind:"bad" "bad_ctx_minted" in
        let r = Driver.lint_units [ launder; minted ] in
        let in_bench =
          List.filter (fun (f : Report.finding) -> f.file = "bench/helper.ml")
            r.findings
        in
        Alcotest.(check (list string)) "bench exempt" []
          (List.map brief in_bench));
  ]

(* ---- good corpus & allow machinery ---- *)

let allow_tests =
  [
    Alcotest.test_case "good corpus: silent, one reasoned allow used" `Quick
      (fun () ->
        let r = Driver.lint_units (List.map (load ~kind:"good") good_names) in
        check_briefs "no findings" [] r;
        Alcotest.(check int) "good_allow suppression" 1 r.suppressed);
    Alcotest.test_case "lint.allow subtree entry suppresses" `Quick (fun () ->
        let entries, errors =
          Allow.parse_allow_file
            "lib/scope/ escape-capture corpus-wide policy exemption\n"
        in
        Alcotest.(check int) "no parse errors" 0 (List.length errors);
        let u = load ~kind:"bad" "bad_escape_capture" in
        let r = Driver.lint_units ~allow_entries:entries [ u ] in
        check_briefs "suppressed" [] r;
        Alcotest.(check int) "three dropped" 3 r.suppressed);
    Alcotest.test_case "stale allow is itself a finding" `Quick (fun () ->
        let u =
          load ~kind:"good" "good_immutable"
            ~source:"(* skulkscope: allow rng-order \xe2\x80\x94 never fires here *)\n"
        in
        check_briefs "allow-unused"
          [ "lib/scope/good_immutable.ml:1 allow-unused" ]
          (Driver.lint_units [ u ]));
    Alcotest.test_case "reasonless allow is itself a finding" `Quick (fun () ->
        let u =
          load ~kind:"good" "good_immutable"
            ~source:"(* skulkscope: allow escape-capture *)\n"
        in
        check_briefs "allow-syntax"
          [ "lib/scope/good_immutable.ml:1 allow-syntax" ]
          (Driver.lint_units [ u ]));
  ]

let () =
  Alcotest.run "skulkscope"
    [ ("bad corpus", bad_tests); ("scoping", scope_tests);
      ("allows", allow_tests) ]
