(* Pass A: whole-tree summaries.

   One sweep over every loaded unit builds
     - the mutable-record table (any record type with a mutable field,
       plus manifest aliases of mutable types),
     - the set of module-level values of mutable / RNG-ish type,
     - a per-function summary: which module-level names it references
       and whether it applies [Ctx.create] directly,
   then a fixpoint over the call graph computes, per function, the
   module-level mutable roots transitively reachable from it and
   whether it transitively mints a [Ctx]. Pass B (Analysis) consults
   these when a spawned closure calls a named function, and for the
   ctx-launder rule.

   Everything is keyed by (fully-dotted module path, name), with nested
   modules tracked, so same-named modules in different libraries never
   alias each other. *)

type unit_info = {
  u_modname : string; (* cmt_modname, e.g. "Sim__Parallel" *)
  u_prefix : string; (* dotted module prefix: "Sim.Parallel" *)
  u_path : string; (* normalised source path used for rule scoping *)
  u_structure : Typedtree.structure;
  u_source : string option; (* source text, for allow comments *)
}

type fn_summary = {
  fn_loc : Location.t;
  mutable fn_refs : Classify.key list; (* module-level names referenced *)
  mutable fn_mints : bool; (* applies Ctx.create itself *)
  mutable roots : (Classify.key * string) list; (* fixpoint: reachable roots *)
  mutable mints : bool; (* fixpoint: transitively mints a Ctx *)
}

type tables = {
  records : Classify.record_table;
  global_mutables : (Classify.key, string) Hashtbl.t;
  global_rngs : (Classify.key, string) Hashtbl.t;
  functions : (Classify.key, fn_summary) Hashtbl.t;
  (* per unit: the Idents of its module-level bindings, so Pident uses
     inside that unit resolve to keys by stamp, immune to shadowing *)
  toplevels : (string, (Ident.t * Classify.key) list) Hashtbl.t;
}

(* ---- module-level walk, tracking the dotted prefix ---- *)

(* Visits only structure items of the unit and of nested modules —
   never expressions — so "module level" means exactly the state that
   outlives every trial. *)
let rec walk_module_level ~prefix ~on_item (str : Typedtree.structure) =
  List.iter
    (fun (item : Typedtree.structure_item) ->
      on_item ~prefix item;
      match item.str_desc with
      | Tstr_module mb -> (
        match mb.mb_id with
        | Some id ->
          walk_module_expr ~prefix:(prefix ^ "." ^ Ident.name id) ~on_item
            mb.mb_expr
        | None -> ())
      | Tstr_recmodule mbs ->
        List.iter
          (fun (mb : Typedtree.module_binding) ->
            match mb.mb_id with
            | Some id ->
              walk_module_expr ~prefix:(prefix ^ "." ^ Ident.name id) ~on_item
                mb.mb_expr
            | None -> ())
          mbs
      | Tstr_include incl -> walk_module_expr ~prefix ~on_item incl.incl_mod
      | _ -> ())
    str.str_items

and walk_module_expr ~prefix ~on_item (me : Typedtree.module_expr) =
  match me.mod_desc with
  | Tmod_structure s -> walk_module_level ~prefix ~on_item s
  | Tmod_constraint (me, _, _, _) -> walk_module_expr ~prefix ~on_item me
  | Tmod_functor (_, me) -> walk_module_expr ~prefix ~on_item me
  | _ -> ()

(* ---- sweep 1: record declarations with mutable fields ---- *)

let collect_records records (u : unit_info) =
  let on_item ~prefix (item : Typedtree.structure_item) =
    match item.str_desc with
    | Tstr_type (_, decls) ->
      List.iter
        (fun (d : Typedtree.type_declaration) ->
          match d.typ_kind with
          | Ttype_record labels -> (
            match
              List.find_opt
                (fun (l : Typedtree.label_declaration) -> l.ld_mutable = Mutable)
                labels
            with
            | Some l ->
              let name = Ident.name d.typ_id in
              Hashtbl.replace records (prefix, name)
                (Printf.sprintf "record %s.%s (mutable field `%s`)" prefix name
                   (Ident.name l.ld_id))
            | None -> ())
          | _ -> ())
        decls
    | _ -> ()
  in
  walk_module_level ~prefix:u.u_prefix ~on_item u.u_structure

let collect_aliases records (u : unit_info) =
  (* second sweep: [type t = int ref]-style manifests, classified once
     the record table is populated (alias-of-alias across units is a
     known hole; one level covers the tree) *)
  let on_item ~prefix (item : Typedtree.structure_item) =
    match item.str_desc with
    | Tstr_type (_, decls) ->
      List.iter
        (fun (d : Typedtree.type_declaration) ->
          match (d.typ_kind, d.typ_manifest) with
          | Ttype_abstract, Some core -> (
            match Classify.classify ~self:prefix records core.ctyp_type with
            | Classify.Mutable desc ->
              let name = Ident.name d.typ_id in
              if not (Hashtbl.mem records (prefix, name)) then
                Hashtbl.replace records (prefix, name)
                  (Printf.sprintf "%s.%s = %s" prefix name desc)
            | _ -> ())
          | _ -> ())
        decls
    | _ -> ()
  in
  walk_module_level ~prefix:u.u_prefix ~on_item u.u_structure

(* ---- sweep 3: module-level bindings ---- *)

let rec binding_vars (p : Typedtree.pattern) =
  match p.pat_desc with
  | Tpat_var (id, _) -> [ (id, p.pat_type, p.pat_loc) ]
  | Tpat_alias (sub, id, _) -> (id, p.pat_type, p.pat_loc) :: binding_vars sub
  | Tpat_tuple ps -> List.concat_map binding_vars ps
  | Tpat_construct (_, _, ps, _) -> List.concat_map binding_vars ps
  | Tpat_record (fields, _) ->
    List.concat_map (fun (_, _, p) -> binding_vars p) fields
  | Tpat_array ps -> List.concat_map binding_vars ps
  | Tpat_or (a, b, _) -> binding_vars a @ binding_vars b
  | Tpat_lazy p -> binding_vars p
  | _ -> []

let collect_globals t (u : unit_info) =
  let tops = ref [] in
  let on_item ~prefix (item : Typedtree.structure_item) =
    match item.str_desc with
    | Tstr_value (_, vbs) ->
      List.iter
        (fun (vb : Typedtree.value_binding) ->
          List.iter
            (fun (id, ty, loc) ->
              let key = (prefix, Ident.name id) in
              tops := (id, key) :: !tops;
              match Classify.classify ~self:prefix t.records ty with
              | Classify.Mutable desc -> Hashtbl.replace t.global_mutables key desc
              | Classify.Rngish desc -> Hashtbl.replace t.global_rngs key desc
              | Classify.Func ->
                Hashtbl.replace t.functions key
                  { fn_loc = loc; fn_refs = []; fn_mints = false; roots = [];
                    mints = false }
              | _ -> ())
            (binding_vars vb.vb_pat))
        vbs
    | _ -> ()
  in
  walk_module_level ~prefix:u.u_prefix ~on_item u.u_structure;
  Hashtbl.replace t.toplevels u.u_modname !tops

(* ---- sweep 4: per-function references ---- *)

let resolve_pident t (u : unit_info) id =
  match Hashtbl.find_opt t.toplevels u.u_modname with
  | None -> None
  | Some tops ->
    List.find_map
      (fun (tid, key) -> if Ident.same tid id then Some key else None)
      tops

let collect_refs t (u : unit_info) =
  let current = ref None in
  let expr it (e : Typedtree.expression) =
    (match (!current, e.exp_desc) with
    | Some fn, Texp_ident (p, _, _) -> (
      let key =
        match p with
        | Path.Pident id -> resolve_pident t u id
        | _ -> Some (Classify.key_of_path p)
      in
      match key with
      | Some key ->
        if Classify.is_ctx_create key then fn.fn_mints <- true;
        if not (List.mem key fn.fn_refs) then fn.fn_refs <- key :: fn.fn_refs
      | None -> ())
    | _ -> ());
    Tast_iterator.default_iterator.expr it e
  in
  let structure_item it (item : Typedtree.structure_item) =
    match item.str_desc with
    | Tstr_value (_, vbs) ->
      List.iter
        (fun (vb : Typedtree.value_binding) ->
          let saved = !current in
          (match binding_vars vb.vb_pat with
          | [ (id, _, _) ] -> (
            match resolve_pident t u id with
            | Some key -> current := Hashtbl.find_opt t.functions key
            | None -> ())
          | _ -> ());
          it.Tast_iterator.expr it vb.vb_expr;
          current := saved)
        vbs
    | _ -> Tast_iterator.default_iterator.structure_item it item
  in
  let it = { Tast_iterator.default_iterator with expr; structure_item } in
  it.Tast_iterator.structure it u.u_structure

(* ---- fixpoint ---- *)

let fixpoint t =
  let changed = ref true in
  let add_root fn r =
    if not (List.mem r fn.roots) then begin
      fn.roots <- r :: fn.roots;
      changed := true
    end
  in
  while !changed do
    changed := false;
    Hashtbl.iter
      (fun _ fn ->
        if fn.fn_mints && not fn.mints then begin
          fn.mints <- true;
          changed := true
        end;
        List.iter
          (fun key ->
            (match Hashtbl.find_opt t.global_mutables key with
            | Some desc -> add_root fn (key, desc)
            | None -> ());
            (match Hashtbl.find_opt t.global_rngs key with
            | Some desc -> add_root fn (key, desc)
            | None -> ());
            match Hashtbl.find_opt t.functions key with
            | Some callee ->
              if callee.mints && not fn.mints then begin
                fn.mints <- true;
                changed := true
              end;
              List.iter (add_root fn) callee.roots
            | None -> ())
          fn.fn_refs)
      t.functions
  done;
  Hashtbl.iter (fun _ fn -> fn.roots <- List.sort compare fn.roots) t.functions

let build (units : unit_info list) =
  let t =
    {
      records = Hashtbl.create 64;
      global_mutables = Hashtbl.create 64;
      global_rngs = Hashtbl.create 16;
      functions = Hashtbl.create 256;
      toplevels = Hashtbl.create 64;
    }
  in
  List.iter (fun u -> collect_records t.records u) units;
  List.iter (fun u -> collect_aliases t.records u) units;
  List.iter (collect_globals t) units;
  List.iter (collect_refs t) units;
  fixpoint t;
  t
