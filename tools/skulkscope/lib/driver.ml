(* Load .cmt files, run both passes, suppress, report.

   The pure entry point is [lint_units] (the self-tests hand it units
   loaded from a corpus .cmt with synthetic lib/-style paths);
   [lint_tree] adds .cmt discovery under a build directory and source
   reading for allow comments, and is what the CLI calls. Report and
   allow machinery are shared with skulklint via [Lintkit]; this tool's
   inline marker is "skulkscope: allow". *)

open Lintkit

let tool = "skulkscope"
let allow_marker = tool ^ ": allow"

type result = {
  findings : Report.finding list;  (** surviving, sorted *)
  suppressed : int;
  files_scanned : int;
}

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let normalise path =
  String.split_on_char '/' path
  |> List.filter (fun seg -> seg <> "" && seg <> ".")
  |> String.concat "/"

let map_prefix ~prefixes path =
  let rec go = function
    | [] -> path
    | (from, to_) :: rest ->
      let n = String.length from in
      if String.length path >= n && String.sub path 0 n = from then
        to_ ^ String.sub path n (String.length path - n)
      else go rest
  in
  go prefixes

(* Load one .cmt. [path] overrides the recorded source path (tests use
   this to lint a corpus unit under a synthetic lib/ path); [source] is
   the unit's text when available, for allow-comment scanning. *)
let load_cmt ?path ?source cmt_path : (Summary.unit_info, string) Result.t =
  match Cmt_format.read_cmt cmt_path with
  | exception exn ->
    Error (Printf.sprintf "cannot read %s: %s" cmt_path (Printexc.to_string exn))
  | cmt -> (
    match cmt.cmt_annots with
    | Implementation structure ->
      let recorded =
        match cmt.cmt_sourcefile with Some f -> normalise f | None -> cmt_path
      in
      Ok
        {
          Summary.u_modname = cmt.cmt_modname;
          u_prefix = Classify.prefix_of_unit cmt.cmt_modname;
          u_path = (match path with Some p -> normalise p | None -> recorded);
          u_structure = structure;
          u_source = source;
        }
    | _ -> Error "not an implementation")

(* Lint a loaded set of units as one program: pass-A tables span all of
   them, then each unit is analysed and its allows applied. *)
let lint_units ?(allow_entries = []) (units : Summary.unit_info list) : result =
  let tables = Summary.build units in
  let findings, suppressed =
    List.fold_left
      (fun (fs, n) (u : Summary.unit_info) ->
        let raw = Analysis.run tables u in
        let allows =
          match u.u_source with
          | Some src -> Allow.scan_comments ~marker:allow_marker src
          | None -> []
        in
        let surviving, dropped =
          List.partition
            (fun (f : Report.finding) ->
              not
                (Allow.comment_covers allows ~line:f.line ~rule:f.rule
                || List.exists
                     (fun e -> Allow.entry_covers e ~path:u.u_path ~rule:f.rule)
                     allow_entries))
            raw
        in
        let meta = Allow.comment_findings ~tool ~file:u.u_path allows in
        (surviving @ meta @ fs, n + List.length dropped))
      ([], 0) units
  in
  {
    findings = Report.sort findings;
    suppressed;
    files_scanned = List.length units;
  }

(* ---- .cmt discovery ---- *)

let is_cmt path = Filename.check_suffix path ".cmt"

let rec collect_cmt_files acc path =
  if Sys.is_directory path then
    Sys.readdir path |> Array.to_list |> List.sort String.compare
    |> List.fold_left
         (fun acc entry ->
           if entry = ".git" then acc
           else collect_cmt_files acc (Filename.concat path entry))
         acc
  else if is_cmt path then path :: acc
  else acc

(* [roots] are paths relative to [build_dir] (a dune _build/default, or
   "." when running inside one). Source text for allow comments is read
   from [build_dir]/<recorded source path> when present. *)
let lint_tree ?(allow_entries = []) ?(prefixes = []) ~build_dir roots : result * Report.finding list =
  let cmts =
    List.map (fun r -> Filename.concat build_dir r) roots
    |> List.fold_left collect_cmt_files []
    |> List.sort_uniq String.compare
  in
  let errors = ref [] in
  let units =
    List.filter_map
      (fun cmt_path ->
        match load_cmt cmt_path with
        | Ok u ->
          let path = map_prefix ~prefixes u.u_path in
          let source =
            let candidate = Filename.concat build_dir u.u_path in
            if Sys.file_exists candidate && not (Sys.is_directory candidate)
            then Some (read_file candidate)
            else None
          in
          Some { u with u_path = path; u_source = source }
        | Error "not an implementation" -> None (* interfaces, packs *)
        | Error msg ->
          errors :=
            { Report.tool; rule = "cmt-error"; file = normalise cmt_path;
              line = 1; col = 0; message = msg }
            :: !errors;
          None)
      cmts
  in
  (* dune emits one .cmt per unit per mode; dedupe on source path *)
  let seen = Hashtbl.create 64 in
  let units =
    List.filter
      (fun (u : Summary.unit_info) ->
        if Hashtbl.mem seen (u.u_modname, u.u_path) then false
        else begin
          Hashtbl.add seen (u.u_modname, u.u_path) ();
          true
        end)
      units
  in
  (lint_units ~allow_entries units, List.rev !errors)
