(* Pass B: per-unit emission, consulting the whole-tree tables.

   Spawn sites ([Sim.Parallel.map]/[map_seeds]/[map_ctx] incl. the
   [~seed_of] callback, [Domain.spawn], [Thread.create]) get a
   free-variable analysis of the spawned closure: every free name is
   classified by its *type* — Atomic is exempt, mutable roots fire
   escape-capture, RNG/engine/context fire rng-escape, local helper
   functions are expanded in place, and named toplevel functions are
   looked up in the pass-A summaries (escape-call when their transitive
   roots include module-level mutable state).

   Hashtbl-ordered callbacks get scanned for RNG draws (rng-order), and
   every application head is checked against the context rules:
   [Ctx.create] in lib/ fires ctx-minted, a call to a function that
   transitively mints fires ctx-launder.

   Known holes (DESIGN.md §9): a closure built by partial application
   is not expanded; a minter passed as a value (not applied) escapes
   ctx-launder; bound-variable collection is scope-insensitive over the
   whole closure, so shadowing can only hide findings, never invent
   them. *)

open Lintkit

let tool = "skulkscope"

type ctxt = {
  t : Summary.tables;
  u : Summary.unit_info;
  local_defs : (Ident.t * Typedtree.expression) list;
  findings : Report.finding list ref;
}

let emit c (rule : Rules.rule) (loc : Location.t) fmt =
  Printf.ksprintf
    (fun message ->
      if rule.applies c.u.u_path then
        let pos = loc.loc_start in
        c.findings :=
          { Report.tool; rule = rule.name; file = c.u.u_path;
            line = pos.pos_lnum; col = pos.pos_cnum - pos.pos_bol; message }
          :: !(c.findings))
    fmt

let rule name =
  match Rules.find_rule name with
  | Some r -> r
  | None -> invalid_arg ("skulkscope: unknown rule " ^ name)

let escape_capture = rule "escape-capture"
let escape_call = rule "escape-call"
let rng_escape = rule "rng-escape"
let rng_order = rule "rng-order"
let ctx_minted = rule "ctx-minted"
let ctx_launder = rule "ctx-launder"

let key_of c (p : Path.t) =
  match p with
  | Path.Pident id -> Summary.resolve_pident c.t c.u id
  | _ -> Some (Classify.key_of_path p)

let head_key c (e : Typedtree.expression) =
  match e.exp_desc with Texp_ident (p, _, _) -> key_of c p | _ -> None

(* ---- free-variable collection over a closure ---- *)

type occurrences = {
  mutable bound : Ident.t list;
  mutable locals : (Ident.t * Types.type_expr * Location.t) list;
  mutable keys : (Classify.key * Location.t) list;
}

let collect_occurrences c (root : Typedtree.expression) =
  let o = { bound = []; locals = []; keys = [] } in
  let pat (type k) it (p : k Typedtree.general_pattern) =
    (match p.pat_desc with
    | Typedtree.Tpat_var (id, _) -> o.bound <- id :: o.bound
    | Typedtree.Tpat_alias (_, id, _) -> o.bound <- id :: o.bound
    | _ -> ());
    Tast_iterator.default_iterator.pat it p
  in
  let expr it (e : Typedtree.expression) =
    (match e.exp_desc with
    | Texp_ident (Path.Pident id, _, _) -> (
      match Summary.resolve_pident c.t c.u id with
      | Some key -> o.keys <- (key, e.exp_loc) :: o.keys
      | None -> o.locals <- (id, e.exp_type, e.exp_loc) :: o.locals)
    | Texp_ident (p, _, _) -> o.keys <- (Classify.key_of_path p, e.exp_loc) :: o.keys
    | Texp_for (id, _, _, _, _, _) -> o.bound <- id :: o.bound
    | _ -> ());
    Tast_iterator.default_iterator.expr it e
  in
  let it = { Tast_iterator.default_iterator with pat; expr } in
  it.Tast_iterator.expr it root;
  o

let find_local_def c id =
  List.find_map
    (fun (did, e) -> if Ident.same did id then Some e else None)
    c.local_defs

(* Free variables of [root], classified. Local helper functions are
   expanded recursively ([visited] breaks cycles); their captures count
   as captures of the spawned closure. *)
let rec analyze_closure c ~spawn ~visited (root : Typedtree.expression) =
  let o = collect_occurrences c root in
  let is_bound id = List.exists (Ident.same id) o.bound in
  let seen_locals = ref [] in
  List.iter
    (fun (id, ty, loc) ->
      if (not (is_bound id)) && not (List.exists (Ident.same id) !seen_locals)
      then begin
        seen_locals := id :: !seen_locals;
        let name = Ident.name id in
        match Classify.classify ~self:c.u.u_prefix c.t.records ty with
        | Classify.Atomic_ok | Classify.Neutral -> ()
        | Classify.Mutable desc ->
          emit c escape_capture loc
            "closure spawned via %s captures `%s` (%s) from the spawning \
             scope; every trial domain shares it — allocate per trial or use \
             Atomic"
            spawn name desc
        | Classify.Rngish desc ->
          emit c rng_escape loc
            "closure spawned via %s captures `%s` (%s) from the spawning \
             scope; the draw schedule would depend on domain interleaving — \
             fork a per-trial stream from the child ctx"
            spawn name desc
        | Classify.Func -> (
          match find_local_def c id with
          | Some body when not (List.exists (Ident.same id) visited) ->
            analyze_closure c ~spawn:(spawn ^ " (via local `" ^ name ^ "`)")
              ~visited:(id :: visited) body
          | _ -> ())
      end)
    (List.rev o.locals);
  let seen_keys = ref [] in
  List.iter
    (fun (key, loc) ->
      if not (List.mem key !seen_keys) then begin
        seen_keys := key :: !seen_keys;
        let name = Classify.key_to_string key in
        (match Hashtbl.find_opt c.t.global_mutables key with
        | Some desc ->
          emit c escape_capture loc
            "closure spawned via %s uses module-level `%s` (%s); state that \
             outlives the trial is shared by every domain"
            spawn name desc
        | None -> ());
        (match Hashtbl.find_opt c.t.global_rngs key with
        | Some desc ->
          emit c rng_escape loc
            "closure spawned via %s uses module-level `%s` (%s); a shared \
             stream makes the draw schedule depend on interleaving"
            spawn name desc
        | None -> ());
        match Hashtbl.find_opt c.t.functions key with
        | Some (s : Summary.fn_summary) -> (
          match s.roots with
          | (rkey, desc) :: _ ->
            emit c escape_call loc
              "closure spawned via %s calls `%s`, which transitively reaches \
               module-level `%s` (%s)"
              spawn name
              (Classify.key_to_string rkey)
              desc
          | [] -> ())
        | None -> ()
      end)
    (List.rev o.keys)

(* ---- spawn sites ---- *)

let rec strip_option_wrap (e : Typedtree.expression) =
  (* optional-labelled args arrive wrapped in [Some _] *)
  match e.exp_desc with
  | Texp_construct (_, { cstr_name = "Some"; _ }, [ inner ]) ->
    strip_option_wrap inner
  | _ -> e

let is_function_expr c (e : Typedtree.expression) =
  match e.exp_desc with
  | Texp_function _ -> true
  | _ -> ( match Classify.classify ~self:c.u.u_prefix c.t.records e.exp_type with
    | Classify.Func -> true
    | _ -> false)

let analyze_spawned c ~spawn (e : Typedtree.expression) =
  let e = strip_option_wrap e in
  match e.exp_desc with
  | Texp_function _ -> analyze_closure c ~spawn ~visited:[] e
  | Texp_ident (Path.Pident id, _, _) -> (
    match Summary.resolve_pident c.t c.u id with
    | Some key -> (
      match Hashtbl.find_opt c.t.functions key with
      | Some (s : Summary.fn_summary) -> (
        match s.roots with
        | (rkey, desc) :: _ ->
          emit c escape_call e.exp_loc
            "`%s` runs in spawned domains (via %s) and transitively reaches \
             module-level `%s` (%s)"
            (Classify.key_to_string key)
            spawn
            (Classify.key_to_string rkey)
            desc
        | [] -> ())
      | None -> ())
    | None -> (
      (* a local let-bound closure: expand its definition *)
      match find_local_def c id with
      | Some body -> analyze_closure c ~spawn ~visited:[ id ] body
      | None -> ()))
  | Texp_ident (p, _, _) -> (
    let key = Classify.key_of_path p in
    match Hashtbl.find_opt c.t.functions key with
    | Some (s : Summary.fn_summary) -> (
      match s.roots with
      | (rkey, desc) :: _ ->
        emit c escape_call e.exp_loc
          "`%s` runs in spawned domains (via %s) and transitively reaches \
           module-level `%s` (%s)"
          (Classify.key_to_string key)
          spawn
          (Classify.key_to_string rkey)
          desc
      | [] -> ())
    | None -> ())
  | _ -> () (* partial applications etc.: a known hole *)

let label_name = function
  | Asttypes.Nolabel -> None
  | Asttypes.Labelled s | Asttypes.Optional s -> Some s

let handle_spawn c key args =
  let spawn = Classify.key_to_string key in
  List.iter
    (fun (label, arg) ->
      match arg with
      | None -> ()
      | Some (a : Typedtree.expression) -> (
        match label_name label with
        | None -> if is_function_expr c a then analyze_spawned c ~spawn a
        | Some "seed_of" ->
          analyze_spawned c ~spawn:(spawn ^ " ~seed_of") a
        | Some _ -> () (* ~jobs, ~ctx, ~trials: not run in workers *)))
    args

(* ---- RNG under Hashtbl order ---- *)

let handle_hashtbl c fn args =
  let scan (body : Typedtree.expression) =
    let seen = ref [] in
    let expr it (e : Typedtree.expression) =
      (match e.exp_desc with
      | Texp_apply (head, _) -> (
        match head_key c head with
        | Some k
          when Classify.is_rng_draw_head k
               && not (List.mem head.exp_loc !seen) ->
          seen := head.exp_loc :: !seen;
          emit c rng_order head.exp_loc
            "`%s` consumed inside `Hashtbl.%s`: the draw order follows \
             hash-bucket order, which varies with insertion history — fold \
             over sorted keys instead"
            (Classify.key_to_string k) fn
        | _ -> ())
      | _ -> ());
      Tast_iterator.default_iterator.expr it e
    in
    let it = { Tast_iterator.default_iterator with expr } in
    it.Tast_iterator.expr it body
  in
  List.iter
    (fun (label, arg) ->
      match (label, arg) with
      | Asttypes.Nolabel, Some (a : Typedtree.expression)
        when is_function_expr c a -> (
        match a.exp_desc with
        | Texp_function _ -> scan a
        | Texp_ident (Path.Pident id, _, _)
          when Summary.resolve_pident c.t c.u id = None -> (
          match find_local_def c id with Some body -> scan body | None -> ())
        | _ -> ())
      | _ -> ())
    args

(* ---- the per-unit walk ---- *)

let collect_local_defs (str : Typedtree.structure) =
  let defs = ref [] in
  let value_binding it (vb : Typedtree.value_binding) =
    (match vb.vb_pat.pat_desc with
    | Tpat_var (id, _) -> defs := (id, vb.vb_expr) :: !defs
    | _ -> ());
    Tast_iterator.default_iterator.value_binding it vb
  in
  let it = { Tast_iterator.default_iterator with value_binding } in
  it.Tast_iterator.structure it str;
  !defs

let check_module_level_rng c =
  (* module-level Ctx/Engine/Rng values in lib/: minted state that
     should arrive as a parameter. Same nesting discipline as pass A:
     descend into modules, not into expressions. *)
  let on_item ~prefix (item : Typedtree.structure_item) =
    match item.str_desc with
    | Tstr_value (_, vbs) ->
      List.iter
        (fun (vb : Typedtree.value_binding) ->
          List.iter
            (fun (id, ty, loc) ->
              match Classify.classify ~self:prefix c.t.records ty with
              | Classify.Rngish desc ->
                emit c ctx_minted loc
                  "module-level `%s` holds a %s; mint contexts at entry \
                   points and thread them down as parameters"
                  (Ident.name id) desc
              | _ -> ())
            (Summary.binding_vars vb.vb_pat))
        vbs
    | _ -> ()
  in
  Summary.walk_module_level ~prefix:c.u.u_prefix ~on_item c.u.u_structure

let run (t : Summary.tables) (u : Summary.unit_info) : Report.finding list =
  let c = { t; u; local_defs = collect_local_defs u.u_structure; findings = ref [] } in
  check_module_level_rng c;
  let expr it (e : Typedtree.expression) =
    (match e.exp_desc with
    | Texp_apply (head, args) -> (
      match head_key c head with
      | Some key ->
        if Classify.is_spawn_head key then handle_spawn c key args;
        (match Classify.hashtbl_order_head key with
        | Some fn -> handle_hashtbl c fn args
        | None -> ());
        if Classify.is_ctx_create key then
          emit c ctx_minted head.exp_loc
            "Ctx.create in lib/: contexts are minted at entry points and \
             passed down (derive per-trial state with Ctx.fork / with_seed)"
        else (
          match Hashtbl.find_opt t.functions key with
          | Some (s : Summary.fn_summary) when s.mints ->
            emit c ctx_launder head.exp_loc
              "`%s` transitively applies Ctx.create; a wrapper does not \
               launder context provenance — accept a Ctx.t parameter instead"
              (Classify.key_to_string key)
          | _ -> ())
      | None -> ())
    | _ -> ());
    Tast_iterator.default_iterator.expr it e
  in
  let it = { Tast_iterator.default_iterator with expr } in
  it.Tast_iterator.structure it u.u_structure;
  (* one report per (rule, line): a toplevel [let c = Ctx.create 0] is
     both a minted application and a module-level rng value — say it once *)
  let sorted = Report.sort !(c.findings) in
  let rec dedupe = function
    | a :: b :: rest
      when a.Report.rule = b.Report.rule
           && a.Report.file = b.Report.file
           && a.Report.line = b.Report.line ->
      dedupe (a :: rest)
    | a :: rest -> a :: dedupe rest
    | [] -> []
  in
  dedupe sorted
