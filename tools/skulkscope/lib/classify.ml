(* Type- and path-level classification for the typed analyses.

   Everything keys off names *after* typechecking: a mutable root is
   recognised by its type's head constructor (ref, array, Hashtbl.t, a
   record with mutable fields, ...), never by how the value is spelled
   at the use site. Paths arrive in two shapes depending on how dune
   compiled the unit — [Sim.Ctx.create] through the wrapper alias, or
   [Sim__Ctx.create] directly — so components are normalised by
   splitting "__" and dropping the [Stdlib] head, and lookups match on
   the last two components. *)

type key = string * string
(* (fully-dotted enclosing module, name): ("Sim.Ctx", "create"). The
   full prefix keeps same-named modules in different libraries apart
   (lib/sim/engine.ml vs lib/harness/fuzz/engine.ml both end in
   "Engine"); well-known heads (spawns, Hashtbl traversals, Ctx.create)
   are matched on the [short] suffix instead, since call sites may
   reach them through any alias chain. *)

let split_unit_name name =
  (* "Sim__Parallel" -> ["Sim"; "Parallel"]; "Dune__exe__Foo" -> ... *)
  let n = String.length name in
  let rec go acc start i =
    if i + 1 >= n then List.rev (String.sub name start (n - start) :: acc)
    else if name.[i] = '_' && name.[i + 1] = '_' && i > start then
      go (String.sub name start (i - start) :: acc) (i + 2) (i + 2)
    else go acc start (i + 1)
  in
  if n = 0 then [ name ] else go [] 0 0

let prefix_of_unit name = String.concat "." (split_unit_name name)

let rec flatten_path (p : Path.t) =
  match p with
  | Path.Pident id -> [ Ident.name id ]
  | Path.Pdot (p, s) -> flatten_path p @ [ s ]
  | Path.Papply (p, _) -> flatten_path p
  | Path.Pextra_ty (p, _) -> flatten_path p

let path_components p =
  let comps = List.concat_map split_unit_name (flatten_path p) in
  match comps with "Stdlib" :: rest when rest <> [] -> rest | _ -> comps

let key_of_components comps : key =
  match List.rev comps with
  | name :: rev_md -> (String.concat "." (List.rev rev_md), name)
  | [] -> ("", "")

let key_of_path p = key_of_components (path_components p)

let key_to_string (md, name) = if md = "" then name else md ^ "." ^ name

(* last module component + name: ("Sim.Ctx", "create") -> ("Ctx", "create") *)
let short ((md, name) : key) : key =
  match String.rindex_opt md '.' with
  | Some i -> (String.sub md (i + 1) (String.length md - i - 1), name)
  | None -> (md, name)

(* ---- spawn heads, iteration heads, rng draw heads ---- *)

let is_spawn_head key =
  match short key with
  | ("Parallel", ("map" | "map_seeds" | "map_ctx" | "run_sharded")) -> true
  | ("Domain", "spawn") | ("Thread", "create") -> true
  | _ -> false

let hashtbl_order_head key =
  (* Hashtbl traversals whose visit order follows the bucket layout. *)
  match short key with
  | ( "Hashtbl",
      (( "iter" | "fold" | "to_seq" | "to_seq_keys" | "to_seq_values"
       | "filter_map_inplace" ) as fn) ) ->
    Some fn
  | _ -> None

let is_rng_draw_head key =
  (* Applying any of these consumes or forks a stream: position in the
     draw schedule now depends on when the call runs. *)
  match short key with
  | ("Rng", _) -> true
  | (("Ctx" | "Engine"), "fork_rng") -> true
  | ("Ctx", ("fork" | "with_seed")) -> true
  | _ -> false

let is_ctx_create key =
  match short key with ("Ctx", "create") -> true | _ -> false

(* ---- type classification ---- *)

type verdict =
  | Atomic_ok (* Atomic.t: the sanctioned cross-domain cell *)
  | Mutable of string (* shared-state root; payload describes it *)
  | Rngish of string (* RNG stream / engine / context *)
  | Func
  | Neutral

(* (module, type-name) -> description, for records with mutable fields
   declared anywhere in the analysed tree; built by Summary. *)
type record_table = (key, string) Hashtbl.t

(* [self] is the current unit's dotted module prefix: a bare [Tconstr]
   of a type declared in the same unit carries no module path, so the
   record-table lookup qualifies it with [self]. *)
let rec classify ?(depth = 0) ?(self = "") (records : record_table)
    (ty : Types.type_expr) =
  if depth > 4 then Neutral
  else
    match Types.get_desc ty with
    | Tarrow _ -> Func
    | Tpoly (ty, _) -> classify ~depth ~self records ty
    | Ttuple tys -> classify_first ~depth ~self records "tuple" tys
    | Tconstr (p, args, _) -> (
      let comps = path_components p in
      let key = key_of_components comps in
      match short key with
      | (_, "ref") when last_is comps "ref" -> Mutable "ref cell"
      | (_, "array") when last_is comps "array" -> Mutable "array"
      | (_, "bytes") when last_is comps "bytes" -> Mutable "mutable bytes"
      | ("Atomic", "t") -> Atomic_ok
      | ("Hashtbl", "t") -> Mutable "Hashtbl"
      | ("Queue", "t") -> Mutable "Queue"
      | ("Stack", "t") -> Mutable "Stack"
      | ("Buffer", "t") -> Mutable "Buffer"
      | ("Rng", "t") -> Rngish "RNG stream"
      | ("Engine", "t") -> Rngish "simulation engine"
      | ("Ctx", "t") -> Rngish "simulation context"
      | _ ->
        if box_like comps then
          classify_first ~depth ~self records (key_to_string key) args
        else (
          let qualified =
            match key with ("", name) -> (self, name) | k -> k
          in
          match Hashtbl.find_opt records qualified with
          | Some desc -> Mutable desc
          | None -> Neutral))
    | _ -> Neutral

and last_is comps name =
  match List.rev comps with c :: _ -> c = name | [] -> false

and box_like comps =
  (* containers we look through for a mutable/rng payload *)
  match List.rev comps with
  | [ ("list" | "option") ] -> true
  | "t" :: ("Seq" | "List" | "Option" | "Result" | "Either") :: _ -> true
  | _ -> false

and classify_first ~depth ~self records what tys =
  (* a tuple/list/option is only as shareable as its hottest component *)
  let verdicts = List.map (classify ~depth:(depth + 1) ~self records) tys in
  match
    List.find_opt (function Mutable _ | Rngish _ -> true | _ -> false) verdicts
  with
  | Some (Mutable d) -> Mutable (d ^ " inside a " ^ what)
  | Some (Rngish d) -> Rngish (d ^ " inside a " ^ what)
  | _ -> Neutral
