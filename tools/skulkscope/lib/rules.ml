(* The skulkscope rule catalogue. skulkscope is the *typed* companion
   to skulklint: it loads .cmt files and analyses the Typedtree, so its
   rules see types (a mutable root is anything whose type says so) and
   cross-function flows (summaries + a call-graph fixpoint), where
   skulklint's Parsetree rules see only shapes.

   Three families (see DESIGN.md §9 "Typed analyses"):

   domain-escape —
     escape-capture  a closure handed to [Sim.Parallel.map]/[map_seeds]/
                     [map_ctx]/[run_sharded] (including [~seed_of]) or
                     [Domain.spawn]/
                     [Thread.create] captures a value of mutable type
                     (ref, array, bytes, Hashtbl/Queue/Stack/Buffer,
                     a record with mutable fields, or a module-level
                     mutable value) from the spawning scope: every
                     trial domain would share it. [Atomic.t] is the
                     sanctioned escape hatch; state allocated inside
                     the closure (or derived from the child [Ctx]) is
                     per-trial and never fires.
     escape-call     the spawned closure calls a function whose
                     transitively reachable roots include module-level
                     mutable state (computed interprocedurally over
                     every analysed .cmt).

   determinism-taint —
     rng-escape      an RNG stream, engine, or context from the
                     spawning scope is captured by a spawned closure:
                     the draw schedule then depends on domain
                     interleaving. Each trial forks its own stream
                     from the child [Ctx].
     rng-order       an RNG is consumed inside a [Hashtbl.iter]/[fold]/
                     [to_seq] callback: the draw order follows
                     hash-bucket order, which varies with insertion
                     history.

   context-discipline (interprocedural: wrappers cannot launder) —
     ctx-minted      [Ctx.create] applied in lib/ outside lib/sim/, or
                     a module-level binding of context/engine/RNG type:
                     contexts are minted at entry points and threaded
                     down as parameters ([Ctx.fork]/[with_seed] are the
                     sanctioned derivations).
     ctx-launder     a call, from lib/ outside lib/sim/, to a function
                     that transitively mints a context ([Ctx.create]
                     somewhere under it): a helper wrapper does not
                     launder the provenance. *)

type rule = {
  name : string;
  family : string;
  summary : string;
  applies : string -> bool;
}

let under dir path =
  let n = String.length dir in
  String.length path >= n && String.sub path 0 n = dir

let lib_only path = under "lib/" path

(* Sim.Parallel is the sanctioned implementation: its worker closures
   share the results array and trial counter by design. *)
let outside_parallel path = path <> "lib/sim/parallel.ml"
let ctx_scope path = lib_only path && not (under "lib/sim/" path)

let catalogue =
  [
    { name = "escape-capture"; family = "domain-escape";
      summary = "spawned closure captures a mutable root from the spawning scope";
      applies = outside_parallel };
    { name = "escape-call"; family = "domain-escape";
      summary = "spawned closure reaches module-level mutable state through calls";
      applies = outside_parallel };
    { name = "rng-escape"; family = "determinism-taint";
      summary = "RNG/engine/context shared into a spawned closure";
      applies = outside_parallel };
    { name = "rng-order"; family = "determinism-taint";
      summary = "RNG consumed under Hashtbl iteration order"; applies = (fun _ -> true) };
    { name = "ctx-minted"; family = "context";
      summary = "Ctx minted (or held at module level) in lib/ instead of arriving as a parameter";
      applies = ctx_scope };
    { name = "ctx-launder"; family = "context";
      summary = "call to a wrapper that transitively mints a Ctx"; applies = ctx_scope };
  ]

let find_rule name = List.find_opt (fun r -> String.equal r.name name) catalogue
