(* Self-tests for the lint pass: every rule fires on its known-bad
   corpus snippet (with the expected count), stays silent on the
   known-good corpus, and the two allowlist mechanisms behave. Corpus
   files are real .ml files under corpus/ (parsed, never compiled);
   path-scoped rules are exercised by linting them under synthetic
   lib/-style paths. *)

open Skulklint_core
open Lintkit

let read path = Driver.read_file path

let lint ?allow_entries ~path file =
  let findings, suppressed =
    Driver.lint_source ?allow_entries ~path (read (Filename.concat "corpus" file))
  in
  (findings, suppressed)

let rules_of findings = List.map (fun f -> f.Report.rule) findings

let check_rules name expected (findings : Report.finding list) =
  Alcotest.(check (list string)) name expected (rules_of findings)

(* ---- bad corpus: each rule fires, with the expected multiplicity ---- *)

let bad_tests =
  [
    Alcotest.test_case "random-global fires twice" `Quick (fun () ->
        let f, _ = lint ~path:"lib/sim/bad_random.ml" "bad/bad_random.ml" in
        check_rules "random" [ "random-global"; "random-global" ] f);
    Alcotest.test_case "wall-clock fires three times" `Quick (fun () ->
        let f, _ = lint ~path:"lib/sim/bad_wall_clock.ml" "bad/bad_wall_clock.ml" in
        check_rules "wall clock" [ "wall-clock"; "wall-clock"; "wall-clock" ] f);
    Alcotest.test_case "hashtbl-order: iter, bare fold, late sort" `Quick (fun () ->
        let f, _ = lint ~path:"lib/vmm/bad_hashtbl_order.ml" "bad/bad_hashtbl_order.ml" in
        check_rules "hashtbl" [ "hashtbl-order"; "hashtbl-order"; "hashtbl-order" ] f);
    Alcotest.test_case "poly-compare: bare, Stdlib, float literal" `Quick (fun () ->
        let f, _ = lint ~path:"lib/sim/bad_poly_compare.ml" "bad/bad_poly_compare.ml" in
        check_rules "compare" [ "poly-compare"; "poly-compare"; "poly-compare" ] f);
    Alcotest.test_case "toplevel-mutable fires in lib/, incl. submodules" `Quick (fun () ->
        let f, _ = lint ~path:"lib/vmm/bad_toplevel_mutable.ml" "bad/bad_toplevel_mutable.ml" in
        check_rules "toplevel"
          [ "toplevel-mutable"; "toplevel-mutable"; "toplevel-mutable" ]
          f);
    Alcotest.test_case "toplevel-mutable is scoped to lib/" `Quick (fun () ->
        let f, _ = lint ~path:"bench/bad_toplevel_mutable.ml" "bad/bad_toplevel_mutable.ml" in
        check_rules "bench exempt" [] f);
    Alcotest.test_case "domain-spawn fires outside Sim.Parallel" `Quick (fun () ->
        let f, _ = lint ~path:"lib/workload/bad_domain_spawn.ml" "bad/bad_domain_spawn.ml" in
        check_rules "spawn" [ "domain-spawn" ] f);
    Alcotest.test_case "domain-spawn exempts lib/sim/parallel.ml" `Quick (fun () ->
        let f, _ = lint ~path:"lib/sim/parallel.ml" "bad/bad_domain_spawn.ml" in
        check_rules "parallel exempt" [] f);
    Alcotest.test_case "telemetry discipline: seven findings" `Quick (fun () ->
        let f, _ = lint ~path:"lib/net/bad_telemetry.ml" "bad/bad_telemetry.ml" in
        check_rules "telemetry"
          [ "counter-name"; "counter-name"; "counter-name"; "counter-name";
            "counter-monotonic"; "sink-discipline"; "sink-discipline" ]
          f);
    Alcotest.test_case "sink creation is allowed outside lib/" `Quick (fun () ->
        let f, _ = lint ~path:"bench/bad_telemetry.ml" "bad/bad_telemetry.ml" in
        check_rules "bench sinks ok"
          [ "counter-name"; "counter-name"; "counter-name"; "counter-name";
            "counter-monotonic"; "sink-discipline" ]
          f);
    Alcotest.test_case "ctx-discipline: ?telemetry and ?faults, not ?fault" `Quick (fun () ->
        let f, _ = lint ~path:"lib/vmm/bad_ctx_discipline.ml" "bad/bad_ctx_discipline.ml" in
        check_rules "ctx" [ "ctx-discipline"; "ctx-discipline" ] f);
    Alcotest.test_case "ctx-discipline exempts lib/sim/ and non-lib paths" `Quick (fun () ->
        let f, _ = lint ~path:"lib/sim/ctx.ml" "bad/bad_ctx_discipline.ml" in
        check_rules "lib/sim exempt" [] f;
        let f, _ = lint ~path:"bench/bad_ctx_discipline.ml" "bad/bad_ctx_discipline.ml" in
        check_rules "bench exempt" [] f);
    Alcotest.test_case "span-pairing: zero-width and split" `Quick (fun () ->
        let f, _ = lint ~path:"lib/net/bad_span.ml" "bad/bad_span.ml" in
        check_rules "span" [ "span-pairing"; "span-pairing" ] f);
    Alcotest.test_case "reasonless allow does not suppress; stale allow flagged" `Quick
      (fun () ->
        let f, _ = lint ~path:"lib/sim/bad_allow.ml" "bad/bad_allow.ml" in
        check_rules "allow meta" [ "allow-syntax"; "wall-clock"; "allow-unused" ] f);
    Alcotest.test_case "unparsable input is a parse-error finding" `Quick (fun () ->
        let f, _ = Driver.lint_source ~path:"lib/sim/broken.ml" "let let = in" in
        check_rules "parse error" [ "parse-error" ] f);
  ]

(* ---- good corpus: silence ---- *)

let good_file name file =
  Alcotest.test_case name `Quick (fun () ->
      let f, _ = lint ~path:"lib/sim/good.ml" file in
      check_rules name [] f)

let good_tests =
  [
    good_file "sorted folds, Sim.Rng, typed compares" "good/good_determinism.ml";
    good_file "local compare definition excuses bare uses" "good/good_local_compare.ml";
    good_file "atomic + per-instance state in lib/" "good/good_domain_state.ml";
    good_file "telemetry discipline followed" "good/good_telemetry.ml";
    Alcotest.test_case "allow with reason suppresses cleanly" `Quick (fun () ->
        let f, suppressed = lint ~path:"lib/sim/good_allow.ml" "good/good_allow.ml" in
        check_rules "no findings" [] f;
        Alcotest.(check int) "two suppressed" 2 suppressed);
  ]

(* ---- allow-file mechanism ---- *)

let allow_file_tests =
  [
    Alcotest.test_case "entry suppresses by exact path" `Quick (fun () ->
        let entries, errors =
          Allow.parse_allow_file "lib/sim/x.ml wall-clock calibration reads the host clock\n"
        in
        Alcotest.(check int) "no parse errors" 0 (List.length errors);
        let f, suppressed =
          Driver.lint_source ~allow_entries:entries ~path:"lib/sim/x.ml" "let t () = Sys.time ()"
        in
        check_rules "suppressed" [] f;
        Alcotest.(check int) "one suppressed" 1 suppressed);
    Alcotest.test_case "trailing-slash entry covers the subtree" `Quick (fun () ->
        let entries, _ = Allow.parse_allow_file "bench/ wall-clock bench measures wall time\n" in
        let f, _ =
          Driver.lint_source ~allow_entries:entries ~path:"bench/deep/x.ml"
            "let t () = Sys.time ()"
        in
        check_rules "subtree suppressed" [] f;
        let f2, _ =
          Driver.lint_source ~allow_entries:entries ~path:"lib/sim/x.ml"
            "let t () = Sys.time ()"
        in
        check_rules "other paths still fire" [ "wall-clock" ] f2);
    Alcotest.test_case "entry without a reason is a syntax error" `Quick (fun () ->
        let entries, errors = Allow.parse_allow_file "lib/sim/x.ml wall-clock\n" in
        Alcotest.(check int) "no entry" 0 (List.length entries);
        Alcotest.(check int) "one error" 1 (List.length errors));
    Alcotest.test_case "comments and blanks are skipped" `Quick (fun () ->
        let entries, errors = Allow.parse_allow_file "# header\n\n# another\n" in
        Alcotest.(check int) "no entries" 0 (List.length entries);
        Alcotest.(check int) "no errors" 0 (List.length errors));
  ]

(* ---- determinism of the linter itself ---- *)

let meta_tests =
  [
    Alcotest.test_case "linting is deterministic" `Quick (fun () ->
        let once () =
          List.map
            (fun file ->
              let f, _ = lint ~path:("lib/sim/" ^ Filename.basename file) file in
              List.map (fun x -> Format.asprintf "%a" Report.pp_human x) f)
            [ "bad/bad_random.ml"; "bad/bad_telemetry.ml"; "good/good_determinism.ml" ]
        in
        Alcotest.(check (list (list string))) "two runs agree" (once ()) (once ()));
    Alcotest.test_case "every catalogue rule is exercised by the bad corpus" `Quick (fun () ->
        let fired =
          List.concat_map
            (fun (path, file) -> rules_of (fst (lint ~path file)))
            [
              ("lib/sim/a.ml", "bad/bad_random.ml");
              ("lib/sim/b.ml", "bad/bad_wall_clock.ml");
              ("lib/vmm/c.ml", "bad/bad_hashtbl_order.ml");
              ("lib/sim/d.ml", "bad/bad_poly_compare.ml");
              ("lib/vmm/e.ml", "bad/bad_toplevel_mutable.ml");
              ("lib/workload/f.ml", "bad/bad_domain_spawn.ml");
              ("lib/net/g.ml", "bad/bad_telemetry.ml");
              ("lib/net/h.ml", "bad/bad_span.ml");
              ("lib/vmm/i.ml", "bad/bad_ctx_discipline.ml");
            ]
        in
        List.iter
          (fun (r : Rules.rule) ->
            Alcotest.(check bool)
              (Printf.sprintf "rule %s fires somewhere" r.name)
              true (List.mem r.name fired))
          Rules.catalogue);
  ]

let () =
  Alcotest.run "skulklint"
    [
      ("bad-corpus", bad_tests);
      ("good-corpus", good_tests);
      ("allow-file", allow_file_tests);
      ("meta", meta_tests);
    ]
