(* corpus: clean determinism idioms — zero findings. *)
let roll rng = Sim.Rng.int rng 6
let now engine = Sim.Engine.now engine

let listing h =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) h []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let listing_direct h =
  List.sort (fun (a, _) (b, _) -> Int.compare a b) (Hashtbl.fold (fun k v acc -> (k, v) :: acc) h [])

let by_pid = List.sort (fun a b -> Int.compare a b)
let close a b = Float.abs (a -. b) < 1e-9
let exact a = Float.equal a 0.
