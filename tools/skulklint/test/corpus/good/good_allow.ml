(* corpus: a well-formed allow with a reason suppresses and is counted
   used — zero findings. *)

(* skulklint: allow wall-clock — calibration harness measures the simulator itself *)
let calibrate () = Sys.time ()

let also_inline () = Unix.gettimeofday () (* skulklint: allow wall-clock — same calibration *)
