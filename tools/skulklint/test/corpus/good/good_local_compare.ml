(* corpus: a file-local typed [compare] excuses unqualified uses —
   zero findings. *)
let compare = Int.compare
let ( <= ) a b = compare a b <= 0
let sorted l = List.sort compare l
