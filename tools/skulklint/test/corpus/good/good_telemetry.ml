(* corpus: telemetry discipline followed — zero findings. *)
let c telemetry = Sim.Telemetry.counter telemetry ~component:"x" "bytes_total"
let g telemetry = Sim.Telemetry.gauge telemetry ~component:"x" "vms"
let s telemetry = Sim.Telemetry.summary telemetry ~component:"x" "lat_ns"
let bump c = Sim.Telemetry.add c 4096

let timed telemetry engine f =
  let started = Sim.Engine.now engine in
  let v = f () in
  let stopped = Sim.Engine.now engine in
  Sim.Telemetry.span telemetry ~component:"x" ~name:"work" ~start:started ~stop:stopped ();
  v
