(* corpus: domain-safe state shapes (linted under a lib/ path) — zero
   findings. Atomic is the sanctioned cross-domain escape hatch;
   allocation inside functions is per-instance state. *)
let run_counter = Atomic.make 0
let fresh_table () = Hashtbl.create 16
let immutable_default = [ ("a", 1); ("b", 2) ]

type t = { slots : (string, int) Hashtbl.t }

let create () = { slots = fresh_table () }
