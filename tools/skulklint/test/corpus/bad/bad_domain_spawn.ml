(* corpus: raw domain fan-out outside Sim.Parallel — one finding. *)
let run f = Domain.spawn f
