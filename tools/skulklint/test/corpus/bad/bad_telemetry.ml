(* corpus: telemetry discipline — five findings (counter name, gauge
   name, negative delta, sink creation in lib/, stray merge). *)
let c telemetry = Sim.Telemetry.counter telemetry ~component:"x" "bytes"
let g telemetry = Sim.Telemetry.gauge telemetry ~component:"x" "vms_total"
let dec c = Sim.Telemetry.add c (-1)
let fresh () = Sim.Telemetry.create ()
let merge ~into child = Sim.Telemetry.merge_into ~into child
