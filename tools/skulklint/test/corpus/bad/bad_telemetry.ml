(* corpus: telemetry discipline — seven findings (counter name, gauge
   name, summary named like a counter, summary on a reserved exporter
   suffix, negative delta, sink creation in lib/, stray merge). *)
let c telemetry = Sim.Telemetry.counter telemetry ~component:"x" "bytes"
let g telemetry = Sim.Telemetry.gauge telemetry ~component:"x" "vms_total"
let s telemetry = Sim.Telemetry.summary telemetry ~component:"x" "lat_total"
let s2 telemetry = Sim.Telemetry.summary telemetry ~component:"x" "lat_sum"
let dec c = Sim.Telemetry.add c (-1)
let fresh () = Sim.Telemetry.create ()
let merge ~into child = Sim.Telemetry.merge_into ~into child
