(* corpus: polymorphic compare and float-literal equality — three findings. *)
let sorted l = List.sort compare l
let strictly_worse l = List.sort Stdlib.compare l
let is_unit_cost x = x = 1.0
