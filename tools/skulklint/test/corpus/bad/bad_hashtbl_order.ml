(* corpus: hash-bucket iteration order escaping — three findings. *)
let dump h = Hashtbl.iter (fun k _ -> print_endline k) h
let listing h = Hashtbl.fold (fun k v acc -> (k, v) :: acc) h []

let listing_sorted_too_late h =
  let l = Hashtbl.fold (fun k v acc -> (k, v) :: acc) h [] in
  (* the sort is not syntactically tied to the fold: still a finding *)
  List.sort (fun (a, _) (b, _) -> String.compare a b) l
