(* corpus: span begin/end pairing — two findings. *)

(* zero-width: start and stop are the same binding *)
let f telemetry now =
  Sim.Telemetry.span telemetry ~component:"x" ~name:"tick" ~start:now ~stop:now ()

(* begin/end split across functions: start never captured here *)
let g telemetry stop =
  Sim.Telemetry.span telemetry ~component:"x" ~name:"work" ~start:elsewhere ~stop ()
