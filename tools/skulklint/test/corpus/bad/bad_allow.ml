(* corpus: broken allow comments — reason missing, and a stale allow
   with nothing to suppress. Two meta-findings; the reasonless allow
   does NOT suppress, so the Sys.time beneath it still fires too. *)

(* skulklint: allow wall-clock *)
let t () = Sys.time ()

(* skulklint: allow random-global — there is no Random use here at all *)
let pure = 42
