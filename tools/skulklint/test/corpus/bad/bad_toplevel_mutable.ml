(* corpus: module-level mutable state (linted under a lib/ path) —
   three findings, including one nested in a submodule. *)
let cache : (string, int) Hashtbl.t = Hashtbl.create 16
let hits = ref 0

module Inner = struct
  let scratch = Buffer.create 80
end
