(* corpus: stdlib Random in simulation code — two findings. *)
let () = Random.self_init ()
let roll () = Random.int 6
