(* known-bad: substrate constructors growing their own ?telemetry /
   ?faults optionals instead of taking the Sim.Ctx that already carries
   both. Fires ctx-discipline twice when linted under a lib/ path
   outside lib/sim/; the singular ?fault - one injection point handed to
   one migration call - is deliberately fine. *)

let create ?telemetry ~name () =
  ignore telemetry;
  name

let connect ?(faults = []) ~name () =
  ignore faults;
  name

let migrate ?fault source =
  ignore fault;
  source
