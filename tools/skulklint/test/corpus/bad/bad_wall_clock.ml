(* corpus: host-clock reads on a sim path — three findings. *)
let t () = Sys.time ()
let g () = Unix.gettimeofday ()
let u () = Unix.time ()
