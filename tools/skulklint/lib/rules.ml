(* The rule catalogue and the Ast_iterator pass that applies it.

   Three families (see DESIGN.md "Static analysis"):

   determinism —
     random-global    stdlib [Random] is process-global, unseeded per
                      trial; all randomness must come from [Sim.Rng].
     wall-clock       [Sys.time]/[Unix.gettimeofday]-style reads leak
                      the host clock into results; sim code uses
                      [Sim.Engine.now]. Bench calibration code
                      allowlists its uses with a reason.
     hashtbl-order    [Hashtbl.iter]/[fold]/[to_seq] observe hash-bucket
                      order. A fold is sanctioned when its result is
                      piped straight into [List.sort]/[sort_uniq]/
                      [stable_sort]; everything else is a finding.
     poly-compare     bare polymorphic [compare] (and [Stdlib.compare]),
                      plus [=]/[<>] against a float literal. Use the
                      typed [Int.compare]/[String.compare]/[Float.compare].

   domain-safety (approximate race detector for Sim.Parallel fan-out) —
     toplevel-mutable module-level [ref]/[Hashtbl.create]/... in lib/ is
                      shared across trial domains. [Atomic.make] is the
                      sanctioned escape hatch and is exempt.
     domain-spawn     raw [Domain.spawn]/[Thread.create] outside
                      [Sim.Parallel]: all fan-out goes through the
                      deterministic trial runner.

   context-discipline —
     ctx-discipline   a function in lib/ (outside lib/sim/) taking its
                      own [?telemetry] or [?faults] optional: those ride
                      in the [Sim.Ctx] the caller threads down. The
                      singular [?fault] (a migration-local injection
                      point) is deliberately exempt.

   telemetry-discipline —
     counter-name     counters are named [*_total]; gauges, histograms
                      and summaries are not (Prometheus conventions, and
                      the exporters sort by name). Histograms and
                      summaries also avoid the reserved exporter
                      suffixes [_sum]/[_count]/[_bucket], which would
                      collide with their own expansion.
     counter-monotonic [Telemetry.add]/[addf] with a negative constant:
                      counters only go up.
     sink-discipline  [Telemetry.create] inside lib/ (sinks are created
                      at entry points and threaded down; per-trial sinks
                      use [create_like]) and [merge_into] outside the
                      ordered merge in [Sim.Parallel].
     span-pairing     [Telemetry.span] whose [~start] equals [~stop]
                      (degenerate span) or whose [~start] is not bound
                      anywhere in the enclosing top-level definition
                      (begin/end split across functions). *)

open Parsetree
open Lintkit

type rule = {
  name : string;
  family : string;
  summary : string;
  applies : string -> bool;
}

let everywhere _ = true
let lib_only path = String.length path >= 4 && String.sub path 0 4 = "lib/"

let under dir path =
  let n = String.length dir in
  String.length path >= n && String.sub path 0 n = dir

let catalogue =
  [
    { name = "random-global"; family = "determinism";
      summary = "stdlib Random banned; use Sim.Rng"; applies = everywhere };
    { name = "wall-clock"; family = "determinism";
      summary = "host clock reads banned on sim paths; use Sim.Engine.now"; applies = everywhere };
    { name = "hashtbl-order"; family = "determinism";
      summary = "Hashtbl iteration order escapes unless sorted"; applies = everywhere };
    { name = "poly-compare"; family = "determinism";
      summary = "polymorphic compare / float equality banned"; applies = everywhere };
    { name = "toplevel-mutable"; family = "domain-safety";
      summary = "module-level mutable state in lib/ is shared across trial domains";
      applies = lib_only };
    { name = "domain-spawn"; family = "domain-safety";
      summary = "raw Domain.spawn outside Sim.Parallel";
      applies = (fun p -> p <> "lib/sim/parallel.ml") };
    { name = "ctx-discipline"; family = "context";
      summary = "substrates take a Sim.Ctx, not their own ?telemetry/?faults optionals";
      applies = (fun p -> lib_only p && not (under "lib/sim/" p)) };
    { name = "counter-name"; family = "telemetry";
      summary =
        "counters end in _total; other kinds do not and avoid reserved exporter suffixes";
      applies = everywhere };
    { name = "counter-monotonic"; family = "telemetry";
      summary = "counters only increment"; applies = everywhere };
    { name = "sink-discipline"; family = "telemetry";
      summary = "sinks created at entry points; merged only by Sim.Parallel";
      applies = everywhere };
    { name = "span-pairing"; family = "telemetry";
      summary = "span start/stop captured and paired per function"; applies = everywhere };
  ]

let find_rule name = List.find_opt (fun r -> String.equal r.name name) catalogue

type ctx = {
  path : string;
  mutable findings : Report.finding list;
  (* (line, col) of Hashtbl.fold idents whose result is piped into a sort *)
  sanctioned : (int * int, unit) Hashtbl.t;
  (* value names bound (let, fun param, match case) in the current
     top-level structure item *)
  mutable item_bound : (string, unit) Hashtbl.t;
  (* the file defines its own top-level [compare]; unqualified uses are
     that binding, not Stdlib's *)
  mutable local_compare : bool;
}

let loc_pos (loc : Location.t) =
  (loc.loc_start.Lexing.pos_lnum, loc.loc_start.Lexing.pos_cnum - loc.loc_start.Lexing.pos_bol)

let emit ctx ~loc rule message =
  match find_rule rule with
  | Some r when r.applies ctx.path ->
    let line, col = loc_pos loc in
    ctx.findings <-
      { Report.tool = "skulklint"; rule; file = ctx.path; line; col; message } :: ctx.findings
  | Some _ | None -> ()

let rec flatten_longident = function
  | Longident.Lident s -> [ s ]
  | Longident.Ldot (l, s) -> flatten_longident l @ [ s ]
  | Longident.Lapply (a, _) -> flatten_longident a

(* Strip a leading Stdlib (so Stdlib.Random.int matches Random.int). *)
let norm_ident l =
  match flatten_longident l with "Stdlib" :: rest -> rest | parts -> parts

let rec strip_constraint e =
  match e.pexp_desc with
  | Pexp_constraint (e, _) | Pexp_coerce (e, _, _) -> strip_constraint e
  | _ -> e

let head_ident e =
  match (strip_constraint e).pexp_desc with
  | Pexp_apply ({ pexp_desc = Pexp_ident id; _ }, _) -> Some (norm_ident id.txt, id.loc)
  | Pexp_ident id -> Some (norm_ident id.txt, id.loc)
  | _ -> None

let is_sort_head = function
  | [ "List"; ("sort" | "sort_uniq" | "stable_sort" | "fast_sort") ] -> true
  | _ -> false

let is_hashtbl_fold = function [ "Hashtbl"; "fold" ] -> true | _ -> false

(* Telemetry API reference: Telemetry.f or Sim.Telemetry.f. *)
let telemetry_fn = function
  | [ "Telemetry"; f ] | [ "Sim"; "Telemetry"; f ] -> Some f
  | _ -> None

let is_float_literal e =
  match (strip_constraint e).pexp_desc with
  | Pexp_constant (Pconst_float _) -> true
  | _ -> false

let is_negative_constant e =
  match (strip_constraint e).pexp_desc with
  | Pexp_constant (Pconst_integer (s, _)) | Pexp_constant (Pconst_float (s, _)) ->
    String.length s > 0 && s.[0] = '-'
  | Pexp_apply
      ( { pexp_desc = Pexp_ident { txt = Longident.Lident ("~-" | "~-." | "-" | "-."); _ }; _ },
        [ (Asttypes.Nolabel, arg) ] ) -> (
    match (strip_constraint arg).pexp_desc with Pexp_constant _ -> true | _ -> false)
  | _ -> false

let last_positional_string args =
  List.fold_left
    (fun acc (label, arg) ->
      match (label, (strip_constraint arg).pexp_desc) with
      | Asttypes.Nolabel, Pexp_constant (Pconst_string (s, _, _)) -> Some s
      | _ -> acc)
    None args

let labelled_arg name args =
  List.fold_left
    (fun acc (label, arg) ->
      match label with
      | Asttypes.Labelled l when String.equal l name -> Some arg
      | _ -> acc)
    None args

let ends_with ~suffix s =
  let n = String.length s and m = String.length suffix in
  n >= m && String.sub s (n - m) m = suffix

(* ---- per-ident checks (fire on every Pexp_ident) ---- *)

let check_ident ctx id (loc : Location.t) =
  match norm_ident id with
  | "Random" :: what :: _ ->
    emit ctx ~loc "random-global"
      (Printf.sprintf
         "Random.%s is process-global and not seeded per trial; draw from Sim.Rng instead" what)
  | [ "Sys"; "time" ] ->
    emit ctx ~loc "wall-clock"
      "Sys.time reads the host clock; use sim time (Sim.Engine.now), or allowlist with a reason \
       if this really measures the simulator itself"
  | [ "Unix"; ("gettimeofday" | "time" | "gmtime" | "localtime" as f) ] ->
    emit ctx ~loc "wall-clock"
      (Printf.sprintf "Unix.%s reads the host clock; use sim time (Sim.Engine.now)" f)
  | [ "Hashtbl"; ("iter" | "fold" | "to_seq" | "to_seq_keys" | "to_seq_values" as f) ] ->
    if not (Hashtbl.mem ctx.sanctioned (loc_pos loc)) then
      emit ctx ~loc "hashtbl-order"
        (Printf.sprintf
           "Hashtbl.%s observes hash-bucket order; pipe a fold straight into List.sort (fold \
            ... [] |> List.sort cmp) or iterate a sorted key list"
           f)
  | [ "compare" ] when not ctx.local_compare ->
    emit ctx ~loc "poly-compare"
      "polymorphic compare diverges on floats (nan) and mutable structure; use the typed \
       Int.compare / String.compare / Float.compare"
  | [ "Pervasives"; "compare" ] ->
    emit ctx ~loc "poly-compare" "polymorphic compare; use a typed compare"
  | [ "Domain"; ("spawn" as f) ] | [ "Thread"; ("create" as f) ] ->
    emit ctx ~loc "domain-spawn"
      (Printf.sprintf
         "raw %s.%s: all fan-out goes through Sim.Parallel so trials stay deterministic and \
          merge in order"
         (match norm_ident id with m :: _ -> m | [] -> "") f)
  | _ -> ()

(* [Stdlib.compare] normalises to ["compare"], which the local_compare
   carve-out above would wrongly excuse; catch the qualified form before
   normalisation. Returns true when it emitted, so the caller skips the
   normalised check and the ident isn't reported twice. *)
let check_ident_raw ctx id loc =
  match flatten_longident id with
  | [ "Stdlib"; "compare" ] ->
    emit ctx ~loc "poly-compare" "Stdlib.compare is polymorphic; use a typed compare";
    true
  | _ -> false

(* ---- application-shape checks ---- *)

let sanction_sorted_folds ctx e =
  match e.pexp_desc with
  (* fold ... |> List.sort cmp   (and longer |> chains ending in a sort) *)
  | Pexp_apply
      ( { pexp_desc = Pexp_ident { txt = Longident.Lident "|>"; _ }; _ },
        [ (Asttypes.Nolabel, lhs); (Asttypes.Nolabel, rhs) ] ) -> (
    match (head_ident rhs, head_ident lhs) with
    | Some (rh, _), Some (lh, lloc) when is_sort_head rh && is_hashtbl_fold lh ->
      Hashtbl.replace ctx.sanctioned (loc_pos lloc) ()
    | _ -> ())
  (* List.sort cmp (Hashtbl.fold f h init) *)
  | Pexp_apply ({ pexp_desc = Pexp_ident id; _ }, args) when is_sort_head (norm_ident id.txt) ->
    List.iter
      (fun (_, arg) ->
        match head_ident arg with
        | Some (h, hloc) when is_hashtbl_fold h -> Hashtbl.replace ctx.sanctioned (loc_pos hloc) ()
        | _ -> ())
      args
  | _ -> ()

let check_apply ctx e =
  match e.pexp_desc with
  | Pexp_apply ({ pexp_desc = Pexp_ident id; _ }, args) -> (
    let loc = e.pexp_loc in
    (* float equality *)
    (match (flatten_longident id.txt, args) with
    | [ ("=" | "<>") ], [ (_, a); (_, b) ] when is_float_literal a || is_float_literal b ->
      emit ctx ~loc:id.loc "poly-compare"
        "polymorphic equality against a float literal; use Float.equal (or compare against an \
         epsilon)"
    | _ -> ());
    match telemetry_fn (norm_ident id.txt) with
    | Some ("counter" as kind) | Some ("gauge" as kind) | Some ("histogram" as kind)
    | Some ("summary" as kind) -> (
      match last_positional_string args with
      | Some name ->
        if kind = "counter" && not (ends_with ~suffix:"_total" name) then
          emit ctx ~loc "counter-name"
            (Printf.sprintf
               "counter %S should be named *_total (Prometheus convention; exporters sort by \
                name)"
               name)
        else if kind <> "counter" && ends_with ~suffix:"_total" name then
          emit ctx ~loc "counter-name"
            (Printf.sprintf "%s %S must not use the counter suffix _total" kind name)
        else if
          (kind = "summary" || kind = "histogram")
          && List.exists (fun s -> ends_with ~suffix:s name) [ "_sum"; "_count"; "_bucket" ]
        then
          emit ctx ~loc "counter-name"
            (Printf.sprintf
               "%s %S ends in a reserved exporter suffix (_sum/_count/_bucket): the exposition \
                format appends those to the series itself"
               kind name)
      | None -> ())
    | Some ("add" | "addf") ->
      List.iter
        (fun (label, arg) ->
          if label = Asttypes.Nolabel && is_negative_constant arg then
            emit ctx ~loc "counter-monotonic"
              "counters are monotonic: never add a negative delta (Telemetry.add raises on it \
               at runtime anyway)")
        args
    | Some "create" ->
      if lib_only ctx.path then
        emit ctx ~loc "sink-discipline"
          "Telemetry.create inside lib/: sinks are created at entry points and threaded down; \
           per-trial sinks come from create_like"
    | Some "merge_into" ->
      if ctx.path <> "lib/sim/parallel.ml" && ctx.path <> "lib/sim/telemetry.ml" then
        emit ctx ~loc "sink-discipline"
          "sink merging happens only in Sim.Parallel, in trial order, so exports stay \
           byte-identical across --jobs"
    | Some "span" -> (
      let ident_of e =
        match (strip_constraint e).pexp_desc with
        | Pexp_ident { txt = Longident.Lident s; _ } -> Some s
        | _ -> None
      in
      let start_ = Option.map ident_of (labelled_arg "start" args) |> Option.join in
      let stop_ = Option.map ident_of (labelled_arg "stop" args) |> Option.join in
      match (start_, stop_) with
      | Some a, Some b when String.equal a b ->
        emit ctx ~loc "span-pairing"
          (Printf.sprintf "span records ~start:%s ~stop:%s — a zero-width span; capture the \
                           start time before the work and the stop time after" a b)
      | Some a, _ when not (Hashtbl.mem ctx.item_bound a) ->
        emit ctx ~loc "span-pairing"
          (Printf.sprintf
             "span start %S is not bound in this definition: begin/end are split across \
              functions; capture both sides of the interval in one place (or use with_span)"
             a)
      | _ -> ())
    | Some _ | None -> ())
  | _ -> ()

(* ---- context discipline ---- *)

(* Only the exact plural labels the Ctx record bundles: [?fault] (one
   injection point handed to a single migration) stays a legitimate
   per-call optional. *)
let check_ctx_discipline ctx e =
  match e.pexp_desc with
  | Pexp_fun ((Asttypes.Optional ("telemetry" | "faults")) as label, _, _, _) ->
    let name = match label with Asttypes.Optional l -> l | _ -> assert false in
    emit ctx ~loc:e.pexp_loc "ctx-discipline"
      (Printf.sprintf
         "optional ?%s on a lib/ function: it rides in the Sim.Ctx the caller threads down \
          (Ctx.create ~%s / Ctx.with_telemetry), not in a per-constructor optional"
         name name)
  | _ -> ()

(* ---- module-level mutable state ---- *)

let mutable_allocator e =
  match head_ident e with
  | Some ([ "ref" ], _) -> Some "a ref cell"
  | Some ([ "Hashtbl"; "create" ], _) -> Some "a Hashtbl"
  | Some ([ "Queue"; "create" ], _) -> Some "a Queue"
  | Some ([ "Stack"; "create" ], _) -> Some "a Stack"
  | Some ([ "Buffer"; "create" ], _) -> Some "a Buffer"
  | Some ([ "Array"; ("make" | "init" | "create_float") ], _) -> Some "an array"
  | Some ([ "Bytes"; ("create" | "make") ], _) -> Some "a mutable Bytes"
  | _ -> None

let rec check_toplevel_mutable ctx structure =
  List.iter
    (fun item ->
      match item.pstr_desc with
      | Pstr_value (_, bindings) ->
        List.iter
          (fun vb ->
            match mutable_allocator vb.pvb_expr with
            | Some what ->
              emit ctx ~loc:vb.pvb_loc "toplevel-mutable"
                (Printf.sprintf
                   "module-level binding allocates %s, shared by every Sim.Parallel trial \
                    domain; move it into the per-trial state it belongs to, or use Atomic if \
                    a cross-domain counter is really intended"
                   what)
            | None -> ())
          bindings
      | Pstr_module { pmb_expr = { pmod_desc = Pmod_structure s; _ }; _ } ->
        check_toplevel_mutable ctx s
      | Pstr_recmodule mbs ->
        List.iter
          (fun mb ->
            match mb.pmb_expr.pmod_desc with
            | Pmod_structure s -> check_toplevel_mutable ctx s
            | _ -> ())
          mbs
      | _ -> ())
    structure

(* ---- driving the iterator ---- *)

let collect_bound_names item =
  let names = Hashtbl.create 32 in
  let it =
    {
      Ast_iterator.default_iterator with
      pat =
        (fun self p ->
          (match p.ppat_desc with
          | Ppat_var { txt; _ } | Ppat_alias (_, { txt; _ }) -> Hashtbl.replace names txt ()
          | _ -> ());
          Ast_iterator.default_iterator.pat self p);
    }
  in
  it.structure_item it item;
  names

(* Any value binding named [compare] (top level or in a submodule)
   excuses unqualified [compare] uses in the file: they refer to the
   local, typed definition, not Stdlib's. Deliberately coarse — a file
   both defining and misusing compare is vanishingly unlikely. *)
let defines_toplevel_compare structure =
  let found = ref false in
  let it =
    {
      Ast_iterator.default_iterator with
      value_binding =
        (fun self vb ->
          (match vb.pvb_pat.ppat_desc with
          | Ppat_var { txt = "compare"; _ } -> found := true
          | _ -> ());
          Ast_iterator.default_iterator.value_binding self vb);
    }
  in
  it.structure it structure;
  !found

let run ~path structure =
  let ctx =
    {
      path;
      findings = [];
      sanctioned = Hashtbl.create 16;
      item_bound = Hashtbl.create 1;
      local_compare = defines_toplevel_compare structure;
    }
  in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun self e ->
          sanction_sorted_folds ctx e;
          check_apply ctx e;
          check_ctx_discipline ctx e;
          (match e.pexp_desc with
          | Pexp_ident id ->
            if not (check_ident_raw ctx id.txt id.loc) then
              check_ident ctx id.txt id.loc
          | _ -> ());
          Ast_iterator.default_iterator.expr self e);
    }
  in
  List.iter
    (fun item ->
      ctx.item_bound <- collect_bound_names item;
      it.structure_item it item)
    structure;
  check_toplevel_mutable ctx structure;
  ctx.findings
