(* Findings and the two report formats (human text, JSON). *)

type finding = {
  rule : string;
  file : string;
  line : int;
  col : int;
  message : string;
}

let compare_finding a b =
  match String.compare a.file b.file with
  | 0 -> (
    match Int.compare a.line b.line with
    | 0 -> (
      match Int.compare a.col b.col with
      | 0 -> String.compare a.rule b.rule
      | c -> c)
    | c -> c)
  | c -> c

let sort findings = List.sort compare_finding findings

let pp_human ppf f =
  Format.fprintf ppf "%s:%d:%d: [%s] %s" f.file f.line f.col f.rule f.message

(* Minimal JSON string escaping: the report contains only paths, rule
   names and fixed message text, but escape defensively anyway. *)
let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let finding_to_json f =
  Printf.sprintf
    {|{"file":"%s","line":%d,"col":%d,"rule":"%s","message":"%s"}|}
    (json_escape f.file) f.line f.col (json_escape f.rule) (json_escape f.message)

let to_json ~files_scanned ~suppressed findings =
  let body = String.concat ",\n    " (List.map finding_to_json (sort findings)) in
  Printf.sprintf
    {|{
  "tool": "skulklint",
  "files_scanned": %d,
  "suppressed": %d,
  "finding_count": %d,
  "findings": [
    %s
  ]
}
|}
    files_scanned suppressed (List.length findings) body
