(* Parse, lint, suppress, report. The pure entry point is
   [lint_source] (used by the self-tests, which hand it corpus text
   under a synthetic path); [lint_files] adds filesystem walking and
   the allow file, and is what the CLI calls. Report and allow
   machinery live in the shared [Lintkit] library (skulkscope uses the
   same), under this tool's "skulklint: allow" comment marker. *)

open Lintkit

let tool = "skulklint"
let allow_marker = tool ^ ": allow"

type result = {
  findings : Report.finding list;  (** surviving, sorted *)
  suppressed : int;
  files_scanned : int;
}

let parse_structure ~path source =
  let lexbuf = Lexing.from_string source in
  Location.init lexbuf path;
  Location.input_name := path;
  try Ok (Parse.implementation lexbuf)
  with exn ->
    let msg =
      match Location.error_of_exn exn with
      | Some (`Ok report) ->
        Format.asprintf "%a" Location.print_report report
      | Some `Already_displayed | None -> Printexc.to_string exn
    in
    Error msg

(* Lint one compilation unit. [path] is the repo-relative path used for
   path-scoped rules and reports; [allow_entries] come from lint.allow. *)
let lint_source ?(allow_entries = []) ~path source =
  let allows = Allow.scan_comments ~marker:allow_marker source in
  let raw =
    match parse_structure ~path source with
    | Ok structure -> Rules.run ~path structure
    | Error msg ->
      [ { Report.tool; rule = "parse-error"; file = path; line = 1; col = 0; message = msg } ]
  in
  let surviving, suppressed =
    List.partition
      (fun (f : Report.finding) ->
        not
          (Allow.comment_covers allows ~line:f.line ~rule:f.rule
          || List.exists (fun e -> Allow.entry_covers e ~path ~rule:f.rule) allow_entries))
      raw
  in
  let meta = Allow.comment_findings ~tool ~file:path allows in
  (Report.sort (surviving @ meta), List.length suppressed)

(* ---- filesystem walking ---- *)

let is_ml path = Filename.check_suffix path ".ml"

let rec collect_ml_files acc path =
  if Sys.is_directory path then
    Sys.readdir path |> Array.to_list |> List.sort String.compare
    |> List.fold_left
         (fun acc entry ->
           if entry = "_build" || entry = ".git" then acc
           else collect_ml_files acc (Filename.concat path entry))
         acc
  else if is_ml path then path :: acc
  else acc

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* Normalise "./lib//x.ml" to "lib/x.ml" so path-scoped rules and
   lint.allow entries match irrespective of how the CLI was invoked. *)
let normalise path =
  String.split_on_char '/' path
  |> List.filter (fun seg -> seg <> "" && seg <> ".")
  |> String.concat "/"

let lint_files ?(allow_entries = []) roots =
  let files =
    List.fold_left collect_ml_files [] roots |> List.map normalise |> List.sort_uniq String.compare
  in
  let findings, suppressed =
    List.fold_left
      (fun (fs, n) path ->
        let f, s = lint_source ~allow_entries ~path (read_file path) in
        (f @ fs, n + s))
      ([], 0) files
  in
  { findings = Report.sort findings; suppressed; files_scanned = List.length files }
