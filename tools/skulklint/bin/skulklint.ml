(* skulklint — determinism & domain-safety lint over the simulation.

   Usage: skulklint [--allow FILE] [--json FILE] [--format FMT] [--rules] PATH...

   Exits 1 when any non-allowlisted finding (or a malformed/stale allow)
   survives, 0 on a clean tree. *)

let usage () =
  prerr_endline
    "usage: skulklint [--allow FILE] [--json FILE] [--format FMT] [--rules] PATH...\n\
     \  --allow FILE  checked-in allowlist (default: lint.allow if present)\n\
     \  --json FILE   also write a structured report ('-' for stdout)\n\
     \  --format FMT  finding output format: human (default) or github\n\
     \                (GitHub Actions ::error annotations)\n\
     \  --rules       print the rule catalogue and exit";
  exit 2

let print_rules () =
  List.iter
    (fun (r : Skulklint_core.Rules.rule) ->
      Printf.printf "%-18s %-18s %s\n" r.name r.family r.summary)
    Skulklint_core.Rules.catalogue

let () =
  let allow_file = ref None and json_out = ref None and roots = ref [] in
  let format = ref Lintkit.Report.Human in
  let rec parse_args = function
    | [] -> ()
    | "--allow" :: f :: rest ->
      allow_file := Some f;
      parse_args rest
    | "--json" :: f :: rest ->
      json_out := Some f;
      parse_args rest
    | "--format" :: f :: rest -> (
      match Lintkit.Report.format_of_string f with
      | Some fmt ->
        format := fmt;
        parse_args rest
      | None -> usage ())
    | "--rules" :: _ ->
      print_rules ();
      exit 0
    | ("--help" | "-h") :: _ -> usage ()
    | arg :: _ when String.length arg > 2 && String.sub arg 0 2 = "--" -> usage ()
    | path :: rest ->
      roots := path :: !roots;
      parse_args rest
  in
  parse_args (List.tl (Array.to_list Sys.argv));
  if !roots = [] then usage ();
  let allow_path =
    match !allow_file with
    | Some f -> Some f
    | None -> if Sys.file_exists "lint.allow" then Some "lint.allow" else None
  in
  let allow_entries, allow_errors =
    match allow_path with
    | None -> ([], [])
    | Some f ->
      let entries, errs = Lintkit.Allow.parse_allow_file (Skulklint_core.Driver.read_file f) in
      ( entries,
        List.map
          (fun (line, msg) ->
            { Lintkit.Report.tool = "skulklint"; rule = "allow-file-syntax"; file = f; line;
              col = 0; message = msg })
          errs )
  in
  let result = Skulklint_core.Driver.lint_files ~allow_entries (List.rev !roots) in
  let findings = Lintkit.Report.sort (allow_errors @ result.findings) in
  (* With --json - the report owns stdout; human output moves to stderr
     so the JSON stays machine-parseable. *)
  let out = if !json_out = Some "-" then Format.err_formatter else Format.std_formatter in
  List.iter (fun f -> Format.fprintf out "%a@." (Lintkit.Report.pp !format) f) findings;
  let json =
    Lintkit.Report.to_json ~tools:[ "skulklint" ] ~files_scanned:result.files_scanned
      ~suppressed:result.suppressed findings
  in
  (match !json_out with
  | Some "-" -> print_string json
  | Some f ->
    let oc = open_out f in
    output_string oc json;
    close_out oc
  | None -> ());
  Format.fprintf out "skulklint: %d file(s), %d finding(s), %d suppressed by allowlist@."
    result.files_scanned (List.length findings) result.suppressed;
  if findings <> [] then exit 1
