(* skulkfuzz: coverage-guided scenario fuzzing of the nested-virt
   state space.

     dune exec tools/skulkfuzz/skulkfuzz.exe -- --fuzz-budget 64 --seed 42
     dune exec tools/skulkfuzz/skulkfuzz.exe -- --corpus test/corpus --fuzz-budget 0
     dune exec tools/skulkfuzz/skulkfuzz.exe -- --reseal test/corpus/near-miss.skulkfuzz

   Everything is deterministic in (--seed, --fuzz-budget, --batch):
   two runs - at any --jobs - produce identical corpora, coverage
   counts and finds. Exit codes: 0 clean, 1 usage/corpus drift,
   2 oracle violations found. *)

open Cmdliner

let replay_corpus entries =
  let drifted = ref 0 in
  List.iter
    (fun e ->
      match Fuzz.Corpus.check e with
      | Ok () -> Printf.printf "  replay %-32s ok\n" e.Fuzz.Corpus.name
      | Error msg ->
        incr drifted;
        Printf.printf "  replay DRIFT: %s\n" msg)
    entries;
  !drifted

let save_finds ~dir ~existing (stats : Fuzz.Engine.stats) =
  List.iter
    (fun (f : Fuzz.Engine.find) ->
      let name = Printf.sprintf "find-%s.skulkfuzz" f.find_violation.Fuzz.Oracle.oracle in
      if List.exists (fun e -> String.equal e.Fuzz.Corpus.name name) existing then
        Printf.printf "  find %s already in corpus, not overwriting\n" name
      else
        let entry = Fuzz.Corpus.entry_of_outcome ~name f.find_program f.find_outcome in
        Printf.printf "  saved %s\n" (Fuzz.Corpus.save ~dir entry))
    stats.Fuzz.Engine.finds

let summarise (stats : Fuzz.Engine.stats) ~show_features =
  Printf.printf "  executed:            %d programs (+%d random baseline)\n"
    stats.Fuzz.Engine.executed stats.executed;
  Printf.printf "  distinct features:   %d (random baseline: %d)\n" stats.guided_features
    stats.random_features;
  Printf.printf "  distinct signatures: %d (random baseline: %d)\n" stats.guided_signatures
    stats.random_signatures;
  Printf.printf "  corpus programs:     %d\n" (List.length stats.corpus);
  Printf.printf "  oracle violations:   %d\n" (List.length stats.finds);
  List.iter
    (fun (f : Fuzz.Engine.find) ->
      Printf.printf "    %s\n      %s\n"
        (Fuzz.Oracle.to_string f.find_violation)
        (Fuzz.Program.summary f.find_program))
    stats.finds;
  if show_features then begin
    Printf.printf "  features:\n";
    List.iter (fun (f, n) -> Printf.printf "    %6d  %s\n" n f) stats.feature_table
  end

let reseal path =
  let ic = open_in_bin path in
  let text = really_input_string ic (in_channel_length ic) in
  close_in ic;
  match Fuzz.Program.of_string text with
  | Error e ->
    Printf.eprintf "%s: %s\n" path e;
    1
  | Ok program ->
    let outcome = Fuzz.Exec.run program in
    let entry =
      Fuzz.Corpus.entry_of_outcome ~name:(Filename.basename path) program outcome
    in
    let oc = open_out_bin path in
    output_string oc (Fuzz.Corpus.entry_to_string entry);
    close_out oc;
    Printf.printf "resealed %s (%s, signature %s)\n" path
      (match entry.Fuzz.Corpus.expect_violation with
      | None -> "ok"
      | Some oracle -> "violation " ^ oracle)
      entry.Fuzz.Corpus.expect_signature;
    0

let main budget seed batch jobs corpus_dir reseal_file show_features verbose =
  match reseal_file with
  | Some path -> reseal path
  | None -> (
    let corpus_entries =
      match corpus_dir with
      | None -> Ok []
      | Some dir -> Fuzz.Corpus.load_dir dir
    in
    match corpus_entries with
    | Error e ->
      Printf.eprintf "corpus: %s\n" e;
      1
    | Ok entries ->
      Printf.printf "skulkfuzz: seed %d, budget %d, batch %d, jobs %d, corpus %d\n" seed budget
        batch jobs (List.length entries);
      let drifted = if entries = [] then 0 else replay_corpus entries in
      let progress = if verbose then fun m -> Printf.printf "  [%s]\n" m else fun _ -> () in
      let stats =
        Fuzz.Engine.run ~progress
          {
            Fuzz.Engine.budget;
            batch;
            jobs;
            seed;
            initial = List.map (fun e -> e.Fuzz.Corpus.program) entries;
            baseline = true;
          }
      in
      summarise stats ~show_features;
      (match corpus_dir with
      | Some dir when stats.Fuzz.Engine.finds <> [] -> save_finds ~dir ~existing:entries stats
      | _ -> ());
      if drifted > 0 then 1 else if stats.Fuzz.Engine.finds <> [] then 2 else 0)

let cmd =
  let budget =
    Arg.(
      value & opt int 64
      & info [ "fuzz-budget" ] ~docv:"N" ~doc:"Guided program executions to spend.")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N" ~doc:"Root seed.") in
  let batch =
    Arg.(value & opt int 8 & info [ "batch" ] ~docv:"N" ~doc:"Candidates per round.")
  in
  let jobs =
    Arg.(
      value & opt int 1
      & info [ "jobs" ] ~docv:"N" ~doc:"Parallel workers (0 = all cores); results are identical.")
  in
  let corpus =
    Arg.(
      value
      & opt (some string) None
      & info [ "corpus" ] ~docv:"DIR"
          ~doc:"Replay this corpus first, seed the run with it, and save new minimised finds into it.")
  in
  let reseal_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "reseal" ] ~docv:"FILE"
          ~doc:"Re-execute one corpus file and rewrite its expect line; then exit.")
  in
  let show_features =
    Arg.(value & flag & info [ "show-features" ] ~doc:"Dump the full feature table.")
  in
  let verbose = Arg.(value & flag & info [ "verbose" ] ~doc:"Per-round progress lines.") in
  let doc = "coverage-guided scenario fuzzing of the nested-virt state space" in
  Cmd.v
    (Cmd.info "skulkfuzz" ~doc)
    Term.(
      const main $ budget $ seed $ batch $ jobs $ corpus $ reseal_file $ show_features $ verbose)

let () = exit (Cmd.eval' cmd)
