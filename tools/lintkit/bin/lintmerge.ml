(* lintmerge — combine per-tool lint reports and gate the build on them.

   Usage:
     lintmerge -o OUT REPORT...           merge reports into OUT (always exit 0)
     lintmerge --check [--format F] REPORT...
                                          print every finding (human or github
                                          format) and exit 1 if any report
                                          carries one — the failure step of
                                          `dune build @lint`. *)

let usage () =
  prerr_endline
    "usage: lintmerge -o OUT REPORT...\n\
     \       lintmerge --check [--format human|github] REPORT...\n\
     \  -o OUT          write the merged JSON report to OUT ('-' for stdout)\n\
     \  --check         exit 1 when the reports carry any finding\n\
     \  --format FMT    finding render format for --check (human|github)";
  exit 2

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let () =
  let out = ref None and check = ref false and format = ref Lintkit.Report.Human in
  let inputs = ref [] in
  let rec parse_args = function
    | [] -> ()
    | "-o" :: f :: rest ->
      out := Some f;
      parse_args rest
    | "--check" :: rest ->
      check := true;
      parse_args rest
    | "--format" :: f :: rest -> (
      match Lintkit.Report.format_of_string f with
      | Some fmt ->
        format := fmt;
        parse_args rest
      | None -> usage ())
    | ("--help" | "-h") :: _ -> usage ()
    | arg :: _ when String.length arg > 1 && arg.[0] = '-' && arg <> "-" -> usage ()
    | path :: rest ->
      inputs := path :: !inputs;
      parse_args rest
  in
  parse_args (List.tl (Array.to_list Sys.argv));
  let inputs = List.rev !inputs in
  if inputs = [] || (!out = None && not !check) then usage ();
  let reports =
    List.map
      (fun path ->
        match Lintkit.Merge.parse_report (read_file path) with
        | Ok r -> r
        | Error msg ->
          Printf.eprintf "lintmerge: %s: %s\n" path msg;
          exit 2)
      inputs
  in
  let merged = Lintkit.Merge.merge reports in
  (match !out with
  | Some "-" -> print_string (Lintkit.Merge.to_json merged)
  | Some f ->
    let oc = open_out f in
    output_string oc (Lintkit.Merge.to_json merged);
    close_out oc
  | None -> ());
  if !check then begin
    List.iter
      (fun f -> Format.printf "%a@." (Lintkit.Report.pp !format) f)
      merged.Lintkit.Merge.findings;
    Format.printf "lint: %d file(s) scanned by %s, %d finding(s), %d suppressed by allowlist@."
      merged.Lintkit.Merge.files_scanned
      (String.concat "+" merged.Lintkit.Merge.tools)
      (List.length merged.Lintkit.Merge.findings)
      merged.Lintkit.Merge.suppressed;
    if merged.Lintkit.Merge.findings <> [] then exit 1
  end
