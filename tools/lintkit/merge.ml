(* Re-load per-tool JSON reports and combine them into the one
   lint-report.json the @lint alias publishes: findings concatenated and
   re-sorted, scan counters summed, the "tools" array naming every
   contributor. *)

type report = {
  tools : string list;
  files_scanned : int;
  suppressed : int;
  findings : Report.finding list;
}

let finding_of_json ~default_tool j =
  let str key = Option.bind (Json.member key j) Json.to_string in
  let int key = Option.bind (Json.member key j) Json.to_int in
  match (str "file", int "line", str "rule", str "message") with
  | Some file, Some line, Some rule, Some message ->
    Ok
      {
        Report.tool = Option.value (str "tool") ~default:default_tool;
        rule;
        file;
        line;
        col = Option.value (int "col") ~default:0;
        message;
      }
  | _ -> Error "finding is missing one of file/line/rule/message"

let report_of_json j =
  let int key = Option.bind (Json.member key j) Json.to_int in
  let tool =
    match Option.bind (Json.member "tool" j) Json.to_string with
    | Some t -> t
    | None -> "unknown"
  in
  let tools =
    match Option.bind (Json.member "tools" j) Json.to_list with
    | Some l -> List.filter_map Json.to_string l
    | None -> [ tool ]
  in
  match Option.bind (Json.member "findings" j) Json.to_list with
  | None -> Error "report has no findings array"
  | Some items ->
    let rec collect acc = function
      | [] -> Ok (List.rev acc)
      | item :: rest -> (
        match finding_of_json ~default_tool:tool item with
        | Ok f -> collect (f :: acc) rest
        | Error _ as e -> e)
    in
    Result.map
      (fun findings ->
        {
          tools;
          files_scanned = Option.value (int "files_scanned") ~default:0;
          suppressed = Option.value (int "suppressed") ~default:0;
          findings;
        })
      (collect [] items)

let parse_report source =
  match Json.parse source with
  | Error msg -> Error ("report is not valid JSON: " ^ msg)
  | Ok j -> report_of_json j

(* Tool order follows the input order (skulklint first in the @lint
   rule); duplicates collapse so re-merging a merged report is stable. *)
let merge reports =
  let tools =
    List.fold_left
      (fun acc r ->
        List.fold_left (fun acc t -> if List.mem t acc then acc else t :: acc) acc r.tools)
      [] reports
    |> List.rev
  in
  {
    tools;
    files_scanned = List.fold_left (fun n r -> n + r.files_scanned) 0 reports;
    suppressed = List.fold_left (fun n r -> n + r.suppressed) 0 reports;
    findings = Report.sort (List.concat_map (fun r -> r.findings) reports);
  }

let to_json r =
  Report.to_json ~tools:r.tools ~files_scanned:r.files_scanned ~suppressed:r.suppressed
    r.findings
