(* The two suppression mechanisms, shared by both linters:

   - inline comments: [(* <tool>: allow <rule>[, <rule>...] — reason *)]
     suppresses the named rules on the comment's own line and the line
     below it. The reason (after "—", "--" or " - ") is mandatory; an
     allow without one is itself a finding, and so is an allow that
     suppresses nothing (stale allows rot fast). The marker is
     per-tool ("skulklint: allow" / "skulkscope: allow") so a
     suppression states which analysis it is talking to.

   - the checked-in allow file (lint.allow): one entry per line,
     [<path> <rule> <reason...>]. A path ending in "/" covers the whole
     subtree. Rule names are disjoint across the two tools, so one
     shared file serves both. Used for policy-level exceptions that are
     not tied to a single source line. *)

type comment_allow = {
  ca_line : int;
  ca_rules : string list;
  ca_reason : string option;
  mutable ca_used : bool;
}

type file_entry = {
  fe_path : string;
  fe_rule : string;
  fe_reason : string;
}

let find_sub s sub from =
  let n = String.length s and m = String.length sub in
  let rec scan i = if i + m > n then None else if String.sub s i m = sub then Some i else scan (i + 1) in
  if from > n then None else scan from

(* Split "rule1, rule2 — reason" into rules and reason. Accepts an
   em-dash, "--" or " - " as the separator. *)
let split_reason segment =
  let seps = [ "\xe2\x80\x94" (* — *); "--"; " - "; ":" ] in
  let cut =
    List.fold_left
      (fun acc sep ->
        match find_sub segment sep 0 with
        | Some i -> (
          match acc with
          | Some (j, _) when j <= i -> acc
          | _ -> Some (i, String.length sep))
        | None -> acc)
      None seps
  in
  match cut with
  | None -> (segment, None)
  | Some (i, len) ->
    let rules = String.sub segment 0 i in
    let reason = String.trim (String.sub segment (i + len) (String.length segment - i - len)) in
    (rules, if reason = "" then None else Some reason)

let is_rule_char c =
  (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c = '-' || c = '_'

let parse_rules s =
  String.split_on_char ',' s
  |> List.concat_map (String.split_on_char ' ')
  |> List.map String.trim
  |> List.filter (fun t -> t <> "" && String.for_all is_rule_char t)

(* Scan raw source text for allow comments, line by line. [marker] is
   the tool-specific prefix, e.g. "skulklint: allow". Lexical subtlety
   (allows inside string literals) is deliberately ignored: the marker
   is specific enough that false matches do not happen in practice, and
   a spurious one surfaces as an unused-allow finding. *)
let scan_comments ~marker source =
  let lines = String.split_on_char '\n' source in
  let allows = ref [] in
  List.iteri
    (fun i line ->
      match find_sub line marker 0 with
      | None -> ()
      | Some at ->
        let start = at + String.length marker in
        let stop =
          match find_sub line "*)" start with Some j -> j | None -> String.length line
        in
        let segment = String.trim (String.sub line start (stop - start)) in
        let rules_part, reason = split_reason segment in
        allows :=
          { ca_line = i + 1; ca_rules = parse_rules rules_part; ca_reason = reason; ca_used = false }
          :: !allows)
    lines;
  List.rev !allows

(* lint.allow: "#" starts a comment, blank lines skipped.
   Returns entries plus (line, message) syntax errors. *)
let parse_allow_file contents =
  let entries = ref [] and errors = ref [] in
  List.iteri
    (fun i line ->
      let line = String.trim line in
      if line <> "" && not (String.length line > 0 && line.[0] = '#') then begin
        match String.split_on_char ' ' line |> List.filter (fun s -> s <> "") with
        | path :: rule :: (_ :: _ as reason_words) ->
          entries :=
            { fe_path = path; fe_rule = rule; fe_reason = String.concat " " reason_words }
            :: !entries
        | _ ->
          errors :=
            (i + 1, "malformed entry (want: <path> <rule> <reason...>): " ^ line) :: !errors
      end)
    (String.split_on_char '\n' contents);
  (List.rev !entries, List.rev !errors)

let entry_covers entry ~path ~rule =
  String.equal entry.fe_rule rule
  && (String.equal entry.fe_path path
     ||
     let n = String.length entry.fe_path in
     n > 0
     && entry.fe_path.[n - 1] = '/'
     && String.length path > n
     && String.equal (String.sub path 0 n) entry.fe_path)

(* A valid comment covers its own line and the next one, for the named
   rules only. Marks the comment used. *)
let comment_covers allows ~line ~rule =
  List.exists
    (fun ca ->
      match ca.ca_reason with
      | None -> false
      | Some _ ->
        if (line = ca.ca_line || line = ca.ca_line + 1) && List.mem rule ca.ca_rules then begin
          ca.ca_used <- true;
          true
        end
        else false)
    allows

(* Findings about the allow comments themselves. *)
let comment_findings ~tool ~file allows : Report.finding list =
  List.concat_map
    (fun ca ->
      let at message rule = { Report.tool; rule; file; line = ca.ca_line; col = 0; message } in
      let bad_syntax =
        if ca.ca_rules = [] then
          [ at "allow comment names no known-shaped rule" "allow-syntax" ]
        else if ca.ca_reason = None then
          [ at "allow comment is missing its reason (want: allow <rule> \xe2\x80\x94 reason)"
              "allow-syntax" ]
        else []
      in
      let unused =
        if bad_syntax = [] && not ca.ca_used then
          [ at
              (Printf.sprintf "unused allow for %s: nothing to suppress here"
                 (String.concat ", " ca.ca_rules))
              "allow-unused" ]
        else []
      in
      bad_syntax @ unused)
    allows
