(* Self-tests for the shared lint plumbing: the JSON reader against the
   JSON this library itself writes (escapes and all), report merging,
   the GitHub annotation format, and the allow machinery both linters
   lean on. *)

open Lintkit

let finding ?(tool = "skulklint") ?(col = 3) ~file ~line ~rule message =
  { Report.tool; rule; file; line; col; message }

(* ---- JSON: parse what we print ---- *)

let json_tests =
  [
    Alcotest.test_case "round-trip through to_json" `Quick (fun () ->
        let fs =
          [ finding ~file:"lib/a.ml" ~line:3 ~rule:"wall-clock" "uses \"now\"\n(bad)";
            finding ~tool:"skulkscope" ~file:"lib/b.ml" ~line:9 ~rule:"rng-escape"
              "tab\there \\ backslash" ]
        in
        let doc =
          Report.to_json ~tools:[ "skulklint"; "skulkscope" ] ~files_scanned:42
            ~suppressed:7 fs
        in
        match Merge.parse_report doc with
        | Error msg -> Alcotest.fail msg
        | Ok r ->
          Alcotest.(check (list string)) "tools" [ "skulklint"; "skulkscope" ] r.tools;
          Alcotest.(check int) "files_scanned" 42 r.files_scanned;
          Alcotest.(check int) "suppressed" 7 r.suppressed;
          Alcotest.(check int) "count" 2 (List.length r.findings);
          let f = List.hd r.findings in
          Alcotest.(check string) "message survives escapes" "uses \"now\"\n(bad)"
            f.Report.message;
          Alcotest.(check string) "tool attribution" "skulkscope"
            (List.nth r.findings 1).Report.tool);
    Alcotest.test_case "malformed JSON is a clean error" `Quick (fun () ->
        (match Merge.parse_report "{\"findings\": [" with
        | Ok _ -> Alcotest.fail "accepted truncated document"
        | Error _ -> ());
        match Merge.parse_report "{\"tool\": \"x\"}" with
        | Ok _ -> Alcotest.fail "accepted report without findings"
        | Error _ -> ());
  ]

(* ---- merge ---- *)

let merge_tests =
  [
    Alcotest.test_case "merge sums counters and re-sorts findings" `Quick
      (fun () ->
        let a =
          { Merge.tools = [ "skulklint" ]; files_scanned = 10; suppressed = 1;
            findings = [ finding ~file:"lib/z.ml" ~line:1 ~rule:"r" "m" ] }
        and b =
          { Merge.tools = [ "skulkscope" ]; files_scanned = 5; suppressed = 2;
            findings = [ finding ~tool:"skulkscope" ~file:"lib/a.ml" ~line:8 ~rule:"s" "m" ] }
        in
        let m = Merge.merge [ a; b ] in
        Alcotest.(check (list string)) "tools" [ "skulklint"; "skulkscope" ] m.tools;
        Alcotest.(check int) "files" 15 m.files_scanned;
        Alcotest.(check int) "suppressed" 3 m.suppressed;
        Alcotest.(check (list string)) "sorted by file"
          [ "lib/a.ml"; "lib/z.ml" ]
          (List.map (fun (f : Report.finding) -> f.file) m.findings));
    Alcotest.test_case "re-merging a merged report is stable" `Quick (fun () ->
        let a =
          { Merge.tools = [ "skulklint"; "skulkscope" ]; files_scanned = 3;
            suppressed = 0; findings = [] }
        in
        let m = Merge.merge [ a; a ] in
        Alcotest.(check (list string)) "no duplicate tools"
          [ "skulklint"; "skulkscope" ] m.tools);
  ]

(* ---- github format ---- *)

let github_tests =
  [
    Alcotest.test_case "annotation shape and escaping" `Quick (fun () ->
        let f =
          finding ~file:"lib/a.ml" ~line:4 ~rule:"wall-clock" "50%\nbroken"
        in
        Alcotest.(check string) "annotation"
          "::error file=lib/a.ml,line=4,col=3,title=skulklint wall-clock::50%25%0Abroken"
          (Format.asprintf "%a" Report.pp_github f));
    Alcotest.test_case "zero line/col clamp to 1" `Quick (fun () ->
        let f = finding ~col:0 ~file:"a.ml" ~line:0 ~rule:"r" "m" in
        let s = Format.asprintf "%a" Report.pp_github f in
        Alcotest.(check bool) "clamped" true
          (String.length s > 0
          && Option.is_some
               (String.index_opt s '1' |> Option.map (fun _ -> ()))
          &&
          let needle = "line=1,col=1" in
          let rec has i =
            i + String.length needle <= String.length s
            && (String.sub s i (String.length needle) = needle || has (i + 1))
          in
          has 0));
  ]

(* ---- allow machinery ---- *)

let allow_tests =
  [
    Alcotest.test_case "inline marker: rules, reason, two-line span" `Quick
      (fun () ->
        let src =
          "let a = 1\n\
           (* skulklint: allow wall-clock, poly-compare \xe2\x80\x94 startup only *)\n\
           let b = now ()\n\
           let c = now ()\n"
        in
        let allows = Allow.scan_comments ~marker:"skulklint: allow" src in
        Alcotest.(check int) "one comment" 1 (List.length allows);
        Alcotest.(check bool) "covers own line" true
          (Allow.comment_covers allows ~line:2 ~rule:"wall-clock");
        Alcotest.(check bool) "covers next line, second rule" true
          (Allow.comment_covers allows ~line:3 ~rule:"poly-compare");
        Alcotest.(check bool) "not two lines below" false
          (Allow.comment_covers allows ~line:4 ~rule:"wall-clock");
        Alcotest.(check bool) "not other rules" false
          (Allow.comment_covers allows ~line:2 ~rule:"rng-escape");
        Alcotest.(check (list string)) "used allow produces no meta findings"
          []
          (List.map (fun (f : Report.finding) -> f.rule)
             (Allow.comment_findings ~tool:"skulklint" ~file:"x.ml" allows)));
    Alcotest.test_case "markers are per-tool" `Quick (fun () ->
        let src = "(* skulkscope: allow rng-escape \xe2\x80\x94 reason *)\n" in
        Alcotest.(check int) "skulklint marker does not match" 0
          (List.length (Allow.scan_comments ~marker:"skulklint: allow" src));
        Alcotest.(check int) "skulkscope marker matches" 1
          (List.length (Allow.scan_comments ~marker:"skulkscope: allow" src)));
    Alcotest.test_case "unused and reasonless allows become findings" `Quick
      (fun () ->
        let src =
          "(* skulklint: allow wall-clock \xe2\x80\x94 reason *)\n\
           (* skulklint: allow poly-compare *)\n"
        in
        let allows = Allow.scan_comments ~marker:"skulklint: allow" src in
        let metas = Allow.comment_findings ~tool:"skulklint" ~file:"x.ml" allows in
        Alcotest.(check (list string)) "meta findings"
          [ "allow-unused"; "allow-syntax" ]
          (List.map (fun (f : Report.finding) -> f.rule) metas));
    Alcotest.test_case "allow file: exact, subtree, malformed" `Quick (fun () ->
        let entries, errors =
          Allow.parse_allow_file
            "# comment\n\
             lib/a.ml wall-clock boot code reads the clock once\n\
             lib/harness/fuzz/ ctx-minted fuzz mints per-seed worlds\n\
             lib/broken.ml missing-reason\n"
        in
        Alcotest.(check int) "one malformed line" 1 (List.length errors);
        Alcotest.(check int) "two entries" 2 (List.length entries);
        let exact = List.nth entries 0 and subtree = List.nth entries 1 in
        Alcotest.(check bool) "exact path" true
          (Allow.entry_covers exact ~path:"lib/a.ml" ~rule:"wall-clock");
        Alcotest.(check bool) "exact path, other rule" false
          (Allow.entry_covers exact ~path:"lib/a.ml" ~rule:"poly-compare");
        Alcotest.(check bool) "subtree" true
          (Allow.entry_covers subtree ~path:"lib/harness/fuzz/exec.ml"
             ~rule:"ctx-minted");
        Alcotest.(check bool) "subtree does not cover siblings" false
          (Allow.entry_covers subtree ~path:"lib/harness/registry.ml"
             ~rule:"ctx-minted"));
  ]

let () =
  Alcotest.run "lintkit"
    [ ("json", json_tests); ("merge", merge_tests); ("github", github_tests);
      ("allow", allow_tests) ]
