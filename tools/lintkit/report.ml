(* Findings and the three report formats (human text, GitHub Actions
   annotations, JSON), shared by skulklint and skulkscope. Each finding
   carries the tool that produced it, so reports merged across tools
   stay attributable. *)

type finding = {
  tool : string;
  rule : string;
  file : string;
  line : int;
  col : int;
  message : string;
}

let compare_finding a b =
  match String.compare a.file b.file with
  | 0 -> (
    match Int.compare a.line b.line with
    | 0 -> (
      match Int.compare a.col b.col with
      | 0 -> (
        match String.compare a.rule b.rule with
        | 0 -> String.compare a.tool b.tool
        | c -> c)
      | c -> c)
    | c -> c)
  | c -> c

let sort findings = List.sort compare_finding findings

type format = Human | Github

let format_of_string = function
  | "human" -> Some Human
  | "github" -> Some Github
  | _ -> None

let pp_human ppf f =
  Format.fprintf ppf "%s:%d:%d: [%s] %s" f.file f.line f.col f.rule f.message

(* GitHub Actions workflow-command annotation: a line of this shape on
   stdout makes the finding show up inline on the PR diff. Newlines in
   the message would end the command early; URL-encode the characters
   the runner treats specially. *)
let github_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '\n' -> Buffer.add_string buf "%0A"
      | '\r' -> Buffer.add_string buf "%0D"
      | '%' -> Buffer.add_string buf "%25"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let pp_github ppf f =
  Format.fprintf ppf "::error file=%s,line=%d,col=%d,title=%s %s::%s" f.file
    (max 1 f.line) (max 1 f.col) (github_escape f.tool) (github_escape f.rule)
    (github_escape f.message)

let pp = function Human -> pp_human | Github -> pp_github

(* Minimal JSON string escaping: the report contains only paths, rule
   names and fixed message text, but escape defensively anyway. *)
let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let finding_to_json f =
  Printf.sprintf
    {|{"tool":"%s","file":"%s","line":%d,"col":%d,"rule":"%s","message":"%s"}|}
    (json_escape f.tool) (json_escape f.file) f.line f.col (json_escape f.rule)
    (json_escape f.message)

(* [tools] is the single tool name for a per-tool report, or the list of
   merged tools for the combined lint-report.json. *)
let to_json ~tools ~files_scanned ~suppressed findings =
  let body = String.concat ",\n    " (List.map finding_to_json (sort findings)) in
  Printf.sprintf
    {|{
  "tool": "%s",
  "tools": [%s],
  "files_scanned": %d,
  "suppressed": %d,
  "finding_count": %d,
  "findings": [
    %s
  ]
}
|}
    (json_escape (String.concat "+" tools))
    (String.concat ", " (List.map (fun t -> "\"" ^ json_escape t ^ "\"") tools))
    files_scanned suppressed (List.length findings) body
