(* A minimal JSON reader, just enough to re-load the reports this
   library itself writes (lintmerge combines the per-tool reports into
   one lint-report.json). Not a general-purpose parser: numbers are
   OCaml floats, no streaming, whole document in memory — all fine for
   reports a few hundred KB at the very worst. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of string

type state = { src : string; mutable pos : int }

let error st msg = raise (Parse_error (Printf.sprintf "at offset %d: %s" st.pos msg))
let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let rec skip_ws st =
  match peek st with
  | Some (' ' | '\t' | '\n' | '\r') ->
    advance st;
    skip_ws st
  | _ -> ()

let expect st c =
  match peek st with
  | Some d when d = c -> advance st
  | Some d -> error st (Printf.sprintf "expected %c, got %c" c d)
  | None -> error st (Printf.sprintf "expected %c, got end of input" c)

let literal st word value =
  let n = String.length word in
  if st.pos + n <= String.length st.src && String.sub st.src st.pos n = word then begin
    st.pos <- st.pos + n;
    value
  end
  else error st ("expected " ^ word)

let parse_string st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> error st "unterminated string"
    | Some '"' -> advance st
    | Some '\\' -> (
      advance st;
      match peek st with
      | None -> error st "unterminated escape"
      | Some c ->
        advance st;
        (match c with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | '/' -> Buffer.add_char buf '/'
        | 'n' -> Buffer.add_char buf '\n'
        | 't' -> Buffer.add_char buf '\t'
        | 'r' -> Buffer.add_char buf '\r'
        | 'b' -> Buffer.add_char buf '\b'
        | 'f' -> Buffer.add_char buf '\012'
        | 'u' ->
          if st.pos + 4 > String.length st.src then error st "truncated \\u escape";
          let hex = String.sub st.src st.pos 4 in
          st.pos <- st.pos + 4;
          let code =
            try int_of_string ("0x" ^ hex) with _ -> error st ("bad \\u escape: " ^ hex)
          in
          (* report text is ASCII plus the occasional em-dash; encode the
             code point as UTF-8 without surrogate-pair handling *)
          if code < 0x80 then Buffer.add_char buf (Char.chr code)
          else if code < 0x800 then begin
            Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
            Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
          end
          else begin
            Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
            Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
            Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
          end
        | c -> error st (Printf.sprintf "bad escape \\%c" c));
        go ())
    | Some c ->
      advance st;
      Buffer.add_char buf c;
      go ()
  in
  go ();
  Buffer.contents buf

let parse_number st =
  let start = st.pos in
  let is_num_char = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while (match peek st with Some c -> is_num_char c | None -> false) do
    advance st
  done;
  let text = String.sub st.src start (st.pos - start) in
  match float_of_string_opt text with
  | Some f -> f
  | None -> error st ("bad number: " ^ text)

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> error st "unexpected end of input"
  | Some '"' -> Str (parse_string st)
  | Some '{' ->
    advance st;
    skip_ws st;
    if peek st = Some '}' then begin
      advance st;
      Obj []
    end
    else begin
      let rec members acc =
        skip_ws st;
        let key = parse_string st in
        skip_ws st;
        expect st ':';
        let v = parse_value st in
        skip_ws st;
        match peek st with
        | Some ',' ->
          advance st;
          members ((key, v) :: acc)
        | Some '}' ->
          advance st;
          List.rev ((key, v) :: acc)
        | _ -> error st "expected , or } in object"
      in
      Obj (members [])
    end
  | Some '[' ->
    advance st;
    skip_ws st;
    if peek st = Some ']' then begin
      advance st;
      Arr []
    end
    else begin
      let rec elements acc =
        let v = parse_value st in
        skip_ws st;
        match peek st with
        | Some ',' ->
          advance st;
          elements (v :: acc)
        | Some ']' ->
          advance st;
          List.rev (v :: acc)
        | _ -> error st "expected , or ] in array"
      in
      Arr (elements [])
    end
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some 'n' -> literal st "null" Null
  | Some _ -> Num (parse_number st)

let parse source =
  let st = { src = source; pos = 0 } in
  try
    let v = parse_value st in
    skip_ws st;
    if st.pos <> String.length source then Error "trailing garbage after JSON value"
    else Ok v
  with Parse_error msg -> Error msg

(* ---- accessors ---- *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_string = function Str s -> Some s | _ -> None
let to_int = function Num f -> Some (int_of_float f) | _ -> None
let to_list = function Arr l -> Some l | _ -> None
