(* SOC monitoring: a cloud operator's periodic sweep. Several tenants
   share a host; one of them gets hit by CloudSkulk mid-run. A security
   operations job wakes up on a schedule, runs the dedup check against
   every tenant VM, and raises an alert when the verdict flips.

   This is the "what would a downstream user build with this library"
   example: the detector packaged as a recurring, low-touch job.

   Run with: dune exec examples/soc_monitoring.exe *)

let tenants = [ "tenant-a"; "tenant-b"; "tenant-c" ]

let () =
  let ctx = Sim.Ctx.create ~seed:31 () in
  let engine = Sim.Ctx.engine ctx in
  let uplink = Net.Fabric.Switch.create ctx ~name:"uplink" ~link:Net.Link.lan_1gbe in
  let host = Vmm.Hypervisor.create_l0 ctx ~name:"host" ~uplink ~addr:"192.168.1.100" in
  let registry = Migration.Registry.create () in

  (* three tenants, ssh forwarded on 2201..2203 *)
  let vms =
    List.mapi
      (fun i name ->
        let config =
          Vmm.Qemu_config.with_hostfwd
            { (Vmm.Qemu_config.default ~name) with
              Vmm.Qemu_config.monitor_port = 5555 + i;
              vnc_display = i;
              disk =
                { (Vmm.Qemu_config.default ~name).Vmm.Qemu_config.disk with
                  Vmm.Qemu_config.image = name ^ ".qcow2" } }
            [ (2201 + i, 22) ]
        in
        Result.get_ok (Vmm.Hypervisor.launch host config))
      tenants
  in
  Printf.printf "host up with %d tenant VMs\n" (List.length vms);

  (* The SOC's per-tenant check. The "customer agent" side (delivering
     File-A and mutating it) is the web interface of Section VI-D-1: it
     talks to wherever the tenant's OS actually runs, which after an
     attack is the nested victim - tracked in [agent_vm] below. *)
  let agent_vm : (string, Vmm.Vm.t) Hashtbl.t = Hashtbl.create 4 in
  let ritm_of : (string, Cloudskulk.Ritm.t) Hashtbl.t = Hashtbl.create 4 in
  List.iter2 (fun name vm -> Hashtbl.replace agent_vm name vm) tenants vms;

  let check tenant =
    let vm = Hashtbl.find agent_vm tenant in
    let env =
      {
        Cloudskulk.Dedup_detector.ctx;
        host;
        deliver_to_guest =
          (fun image ->
            match Vmm.Vm.load_file vm image with
            | Error e -> Error e
            | Ok _ -> (
              (* if a RITM sits in the middle, the attacker sees the
                 delivery cross GuestX and mirrors the file to keep the
                 impersonation consistent - the move the detector turns
                 against them *)
              match Hashtbl.find_opt ritm_of tenant with
              | None -> Ok ()
              | Some ritm ->
                Result.map (fun () -> ())
                  (Cloudskulk.Stealth.mirror_file
                     ~guestx:ritm.Cloudskulk.Ritm.guestx ~victim:vm
                     ~name:(Memory.File_image.name image))));
        mutate_in_guest =
          (fun ~name ~salt ->
            match Vmm.Vm.file_offset vm name with
            | None -> Error "agent: no such file"
            | Some off ->
              let ram = Vmm.Vm.ram vm in
              let pages =
                match
                  List.find_opt (fun (n, _, _) -> n = name) (Vmm.Vm.loaded_files vm)
                with
                | Some (_, _, p) -> p
                | None -> 0
              in
              for i = 0 to pages - 1 do
                let c = Memory.Address_space.read ram (off + i) in
                ignore
                  (Memory.Address_space.write ram (off + i) (Memory.Page.Content.mutate c ~salt))
              done;
              Ok ());
      }
    in
    (* small probes keep the sweep cheap (abl-pages shows 4 suffice) *)
    let config =
      { Cloudskulk.Dedup_detector.default_config with Cloudskulk.Dedup_detector.file_pages = 8 }
    in
    match Cloudskulk.Dedup_detector.run ~config env with
    | Ok o -> Cloudskulk.Dedup_detector.verdict_to_string o.Cloudskulk.Dedup_detector.verdict
    | Error e -> "error: " ^ e
  in

  let sweep label =
    Printf.printf "\n[%s] SOC sweep at virtual time %s\n" label
      (Sim.Time.to_string (Sim.Engine.now engine));
    List.iter (fun t -> Printf.printf "  %-9s -> %s\n" t (check t)) tenants
  in

  sweep "before";

  (* tenant-b gets hit *)
  Printf.printf "\n*** attacker compromises the host and targets tenant-b ***\n";
  let config =
    { (Cloudskulk.Install.default_config ~target_name:"tenant-b") with
      Cloudskulk.Install.host_port = 5700;
      ritm_port = 5701 }
  in
  (match Cloudskulk.Install.run ~config ctx ~host ~registry ~target_name:"tenant-b" with
  | Ok report ->
    Printf.printf "CloudSkulk installed on tenant-b in %s\n"
      (Sim.Time.to_string report.Cloudskulk.Install.total_time);
    (* the tenant's OS now runs in the nested victim; the agent follows *)
    Hashtbl.replace agent_vm "tenant-b" report.Cloudskulk.Install.ritm.Cloudskulk.Ritm.victim;
    Hashtbl.replace ritm_of "tenant-b" report.Cloudskulk.Install.ritm
  | Error e -> Printf.printf "install failed: %s\n" e);

  sweep "after";
  Printf.printf
    "\nalert: tenant-b flipped to 'nested VM detected' - quarantine the host, image the\n\
     GuestX process, and migrate the victim out through a trusted channel.\n"
