(* Covert exfiltration: two co-resident VMs with no network path between
   them move a secret through the host's memory deduplication - the
   attack primitive of the paper's reference [41], built on the same
   merge + copy-on-write mechanics the CloudSkulk detector uses.

   Run with: dune exec examples/covert_exfil.exe *)

let () =
  let ctx = Sim.Ctx.create ~seed:41 () in
  let uplink = Net.Fabric.Switch.create ctx ~name:"uplink" ~link:Net.Link.lan_1gbe in
  (* an aggressive ksmd makes the channel fast; the default Linux pacing
     still works, just ~1 bit/s (see `bench --only abl-covert`) *)
  let host =
    Vmm.Hypervisor.create_l0 ~ksm_config:Memory.Ksm.fast_config ctx ~name:"host" ~uplink
      ~addr:"192.168.1.100"
  in
  let tenant name port =
    let cfg =
      { (Vmm.Qemu_config.default ~name) with
        Vmm.Qemu_config.memory_mb = 256;
        monitor_port = port;
        disk =
          { (Vmm.Qemu_config.default ~name).Vmm.Qemu_config.disk with
            Vmm.Qemu_config.image = name ^ ".qcow2" } }
    in
    Result.get_ok (Vmm.Hypervisor.launch host cfg)
  in
  let sender = tenant "tenant-evil" 5555 in
  let receiver = tenant "tenant-mole" 5556 in
  Printf.printf "two co-resident tenants, no shared network, one shared ksmd\n\n";

  let secret = "k=hunter2" in
  Printf.printf "sender encodes %S as %d bits of page-presence\n" secret
    (8 * String.length secret);
  match
    Cloudskulk.Covert_channel.transmit ~host ~sender ~receiver
      (Cloudskulk.Covert_channel.string_to_bits secret)
  with
  | Error e -> Printf.printf "channel failed: %s\n" e
  | Ok t ->
    Printf.printf "receiver probes its own pages' write times and decodes: %S\n"
      (Cloudskulk.Covert_channel.bits_to_string t.Cloudskulk.Covert_channel.received);
    Printf.printf "bit errors: %d; frame time %s; goodput %.2f bit/s\n"
      t.Cloudskulk.Covert_channel.bit_errors
      (Sim.Time.to_string t.Cloudskulk.Covert_channel.elapsed)
      t.Cloudskulk.Covert_channel.bandwidth_bits_per_s;
    Printf.printf
      "\nthe same mechanics cut the other way: this is exactly the merge+CoW timing\n\
       signal the CloudSkulk detector reads from L0 (see examples/detection_demo.exe)\n"
