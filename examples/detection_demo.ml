(* Detection demo: the defender's side of the paper (Section VI). Runs
   the memory-deduplication protocol against a clean host and an
   infected host, prints the t0/t1/t2 evidence, and contrasts with the
   VMCS-scanning baseline and its VT-x-free blind spot.

   Run with: dune exec examples/detection_demo.exe *)

let banner title = Printf.printf "\n=== %s ===\n" title

let show_outcome (o : Cloudskulk.Dedup_detector.outcome) =
  let line (m : Cloudskulk.Dedup_detector.measurement) meaning =
    Printf.printf "  %-3s mean %7.0f ns   (%s)\n" m.Cloudskulk.Dedup_detector.label
      m.summary.Sim.Stats.mean meaning
  in
  line o.Cloudskulk.Dedup_detector.t0 "baseline: file present nowhere else";
  line o.t1 "after delivering File-A to the guest";
  line o.t2 "after the guest changed every page";
  Printf.printf "  => %s\n"
    (Cloudskulk.Dedup_detector.verdict_to_string o.Cloudskulk.Dedup_detector.verdict)

let run_on label scenario =
  banner label;
  Printf.printf "%s\n" scenario.Cloudskulk.Scenarios.description;
  match Cloudskulk.Dedup_detector.run scenario.Cloudskulk.Scenarios.detector_env with
  | Ok o -> show_outcome o
  | Error e -> Printf.printf "  detector error: %s\n" e

let () =
  run_on "scenario 1: a clean host" (Cloudskulk.Scenarios.clean (Sim.Ctx.create ~seed:21 ()));
  run_on "scenario 2: CloudSkulk is installed"
    (Cloudskulk.Scenarios.infected (Sim.Ctx.create ~seed:21 ()));

  banner "why not just scan for VMCS structures? (Section VI-E)";
  let hw = Cloudskulk.Scenarios.infected (Sim.Ctx.create ~seed:22 ()) in
  let hw_scan = Cloudskulk.Vmcs_scan.scan_host hw.Cloudskulk.Scenarios.host in
  Printf.printf "VT-x rootkit:    VMCS scan over %d pages -> found %d signature(s): %s\n"
    hw_scan.Cloudskulk.Vmcs_scan.pages_scanned
    (List.length hw_scan.Cloudskulk.Vmcs_scan.hits)
    (if hw_scan.Cloudskulk.Vmcs_scan.verdict then "detected" else "missed");
  let soft =
    Cloudskulk.Scenarios.infected
      ~install_config:
        { (Cloudskulk.Install.default_config ~target_name:"guest0") with
          Cloudskulk.Install.use_vtx = false }
      (Sim.Ctx.create ~seed:22 ())
  in
  let soft_scan = Cloudskulk.Vmcs_scan.scan_host soft.Cloudskulk.Scenarios.host in
  Printf.printf "software rootkit: VMCS scan -> found %d signature(s): %s\n"
    (List.length soft_scan.Cloudskulk.Vmcs_scan.hits)
    (if soft_scan.Cloudskulk.Vmcs_scan.verdict then "detected" else "missed (the blind spot)");
  (match Cloudskulk.Dedup_detector.run soft.Cloudskulk.Scenarios.detector_env with
  | Ok o ->
    Printf.printf "dedup detector on the same software rootkit: %s\n"
      (Cloudskulk.Dedup_detector.verdict_to_string o.Cloudskulk.Dedup_detector.verdict)
  | Error e -> Printf.printf "error: %s\n" e);

  banner "why not VMI fingerprinting?";
  let sc = Cloudskulk.Scenarios.infected (Sim.Ctx.create ~seed:23 ()) in
  (match sc.Cloudskulk.Scenarios.ritm with
  | Some ritm ->
    let victim = ritm.Cloudskulk.Ritm.victim in
    let expected = Cloudskulk.Vmi_fingerprint.take victim in
    (* the admin introspects the VM they can see - GuestX *)
    (match Cloudskulk.Vmi_fingerprint.check ~expected ritm.Cloudskulk.Ritm.guestx with
    | Ok () -> Printf.printf "fingerprint of GuestX matches the victim's: impersonation holds\n"
    | Error ms ->
      Printf.printf "fingerprint differences: %s\n"
        (String.concat ", "
           (List.map (fun m -> m.Cloudskulk.Vmi_fingerprint.field) ms)))
  | None -> ());
  print_newline ()
