(* Attack demo: the full CloudSkulk installation against a victim that
   is actively using their VM, followed by the attacker's passive and
   active services - the scenario of paper Sections III and IV.

   Run with: dune exec examples/attack_demo.exe *)

let banner title = Printf.printf "\n=== %s ===\n" title

let () =
  let ctx = Sim.Ctx.create ~seed:11 () in
  let engine = Sim.Ctx.engine ctx in
  let uplink = Net.Fabric.Switch.create ctx ~name:"internet" ~link:Net.Link.lan_1gbe in
  let host = Vmm.Hypervisor.create_l0 ctx ~name:"cloud-host" ~uplink ~addr:"192.168.1.100" in
  let registry = Migration.Registry.create () in

  banner "a customer rents a VM and works in it";
  let config =
    Vmm.Qemu_config.with_hostfwd (Vmm.Qemu_config.default ~name:"guest0") [ (2222, 22) ]
  in
  let guest0 = Result.get_ok (Vmm.Hypervisor.launch host config) in
  Printf.printf "guest0 up at %s (pid %d), SSH on host:2222\n" (Vmm.Vm.addr guest0)
    (Vmm.Vm.qemu_pid guest0);
  (* the customer's workload: an I/O-heavy file server *)
  let wenv =
    Workload.Exec_env.make ~vm:guest0 ~ctx ~level:(Vmm.Vm.level guest0)
      ~ram:(Vmm.Vm.ram guest0) ~rng:(Sim.Ctx.fork_rng ctx) ()
  in
  let workload = Workload.Background.start wenv (Workload.Filebench.background ()) in
  ignore (Sim.Engine.run_for engine (Sim.Time.s 5.));

  banner "the attacker (root on the host) reconnoitres";
  List.iter
    (fun f ->
      Printf.printf "ps: pid %d -> %s\n" f.Cloudskulk.Recon.qemu_pid
        f.Cloudskulk.Recon.cmdline)
    (Cloudskulk.Recon.list_targets host);

  banner "four steps: GuestX, nested hypervisor, destination, live migration";
  let report =
    match Cloudskulk.Install.run ctx ~host ~registry ~target_name:"guest0" with
    | Ok r -> r
    | Error e -> failwith e
  in
  Workload.Background.stop workload;
  Format.printf "%a" Cloudskulk.Install.pp_report report;
  let ritm = report.Cloudskulk.Install.ritm in

  banner "the victim notices nothing: same address, same port, same OS";
  let victim = ritm.Cloudskulk.Ritm.victim in
  Printf.printf "victim now at %s inside %s; os: %s\n"
    (Vmm.Level.to_string (Vmm.Vm.level victim))
    (Vmm.Vm.name ritm.Cloudskulk.Ritm.guestx)
    (Vmm.Vm.os_release victim);
  let got = ref 0 in
  (match Vmm.Vm.node victim with
  | Some node -> Net.Fabric.Node.listen node 22 (fun _ -> incr got)
  | None -> ());
  let user = Net.Fabric.Node.create engine ~name:"customer" ~addr:"203.0.113.5" in
  Net.Fabric.Node.attach user uplink;
  Net.Fabric.Node.send user ~via:uplink
    (Net.Packet.make ~id:1
       ~src:(Net.Packet.endpoint "203.0.113.5" 40000)
       ~dst:(Net.Packet.endpoint "192.168.1.100" 2222)
       "ssh: still works");
  ignore (Sim.Engine.run_for engine (Sim.Time.s 1.));
  Printf.printf "SSH over the old path reached the (now nested) VM: %b\n" (!got = 1);

  banner "passive service: keystroke logging from the middle";
  let keylogger = Cloudskulk.Services.start_keylogger ritm ~ports:[ 22 ] in
  Net.Fabric.Node.send user ~via:uplink
    (Net.Packet.make ~id:2
       ~src:(Net.Packet.endpoint "203.0.113.5" 40000)
       ~dst:(Net.Packet.endpoint "192.168.1.100" 2222)
       "cat ~/.ssh/id_rsa");
  ignore (Sim.Engine.run_for engine (Sim.Time.s 1.));
  List.iter (Printf.printf "logged keystrokes: %s\n") (Cloudskulk.Services.keystrokes keylogger);

  banner "passive service: trapping writes before encryption";
  let trap = Cloudskulk.Services.trap_guest_writes ritm in
  let sniffer = Cloudskulk.Services.start_packet_capture ritm in
  Cloudskulk.Services.victim_send ritm ~encrypted:true
    ~dst:(Net.Packet.endpoint "bank.example" 443)
    "POST /transfer amount=100000";
  ignore (Sim.Engine.run_for engine (Sim.Time.s 1.));
  List.iter
    (fun c ->
      Printf.printf "on the wire the RITM sees: %s\n"
        c.Cloudskulk.Services.observed_payload)
    (Cloudskulk.Services.captures sniffer);
  List.iter
    (Printf.printf "but the write trap recorded the plaintext: %s\n")
    (Cloudskulk.Services.trapped_writes trap);

  banner "active service: tampering with a web order in flight";
  let stats =
    Cloudskulk.Services.rewrite_traffic ritm ~port:80 ~pattern:"BUY" ~replacement:"SELL"
  in
  let exchange = Net.Fabric.Node.create engine ~name:"exchange" ~addr:"203.0.113.80" in
  Net.Fabric.Node.attach exchange uplink;
  let received = ref "" in
  Net.Fabric.Node.listen exchange 80 (fun p -> received := p.Net.Packet.payload);
  Cloudskulk.Services.victim_send ritm
    ~dst:(Net.Packet.endpoint "203.0.113.80" 80)
    "order: BUY 500 shares";
  ignore (Sim.Engine.run_for engine (Sim.Time.s 1.));
  Printf.printf "victim sent:   order: BUY 500 shares\n";
  Printf.printf "exchange got:  %s   (%d packet rewritten)\n" !received
    stats.Cloudskulk.Services.rewritten;

  banner "bonus: a parallel malicious OS beside the victim";
  (match Cloudskulk.Services.launch_parallel_os ritm ~name:"spam-relay" ~memory_mb:256 with
  | Ok vm ->
    Printf.printf "%s running at %s under the attacker's hypervisor\n" (Vmm.Vm.name vm)
      (Vmm.Level.to_string (Vmm.Vm.level vm))
  | Error e -> Printf.printf "failed: %s\n" e);

  Printf.printf "\nattack demo done at virtual time %s\n"
    (Sim.Time.to_string (Sim.Engine.now engine))
