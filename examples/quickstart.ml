(* Quickstart: build a cloud host, rent a VM on it, nest a VM inside a
   VM, and watch L0's memory deduplication see straight through the
   nesting - the two primitives everything else in this library builds
   on.

   Run with: dune exec examples/quickstart.exe *)

let () =
  (* Every experiment owns one context: an engine (all time below is
     simulated virtual time, deterministic per seed), a trace, and an
     optional telemetry sink, bundled as a Sim.Ctx and threaded down. *)
  let ctx = Sim.Ctx.create ~seed:1 () in
  let engine = Sim.Ctx.engine ctx in

  (* A physical host: 16 GB of RAM, an L0 QEMU/KVM hypervisor, a ksmd
     thread, and a gateway on an external network. *)
  let uplink = Net.Fabric.Switch.create ctx ~name:"uplink" ~link:Net.Link.lan_1gbe in
  let host = Vmm.Hypervisor.create_l0 ctx ~name:"host" ~uplink ~addr:"192.168.1.100" in

  (* Launch a guest the way a cloud customer gets one: 1 GB of RAM,
     virtio devices, SSH published on host port 2222. *)
  let config =
    Vmm.Qemu_config.with_hostfwd (Vmm.Qemu_config.default ~name:"guest0") [ (2222, 22) ]
  in
  let guest0 =
    match Vmm.Hypervisor.launch host config with Ok vm -> vm | Error e -> failwith e
  in
  Printf.printf "launched %s: level=%s pid=%d addr=%s\n" (Vmm.Vm.name guest0)
    (Vmm.Level.to_string (Vmm.Vm.level guest0))
    (Vmm.Vm.qemu_pid guest0) (Vmm.Vm.addr guest0);

  (* Talk to its QEMU monitor, exactly the interface the paper's
     attacker uses for reconnaissance. *)
  print_endline (Vmm.Monitor.execute_exn guest0 "info status");
  print_endline (Vmm.Monitor.execute_exn guest0 "info qtree");

  (* Nested virtualization: a guest with +vmx can run its own
     hypervisor, and VMs under it run at L2. *)
  let guestx_config =
    Vmm.Qemu_config.with_nested_vmx
      { (Vmm.Qemu_config.default ~name:"guestx") with Vmm.Qemu_config.memory_mb = 2048;
        monitor_port = 5556 }
      true
  in
  let guestx =
    match Vmm.Hypervisor.launch host guestx_config with Ok vm -> vm | Error e -> failwith e
  in
  let nested_hv =
    match Vmm.Hypervisor.create_nested ctx ~vm:guestx ~name:"guestx-kvm" with
    | Ok hv -> hv
    | Error e -> failwith e
  in
  let l2 =
    match Vmm.Hypervisor.launch nested_hv (Vmm.Qemu_config.default ~name:"nested") with
    | Ok vm -> vm
    | Error e -> failwith e
  in
  Printf.printf "\nnested VM %s runs at %s; its RAM is a window into %s's RAM\n"
    (Vmm.Vm.name l2)
    (Vmm.Level.to_string (Vmm.Vm.level l2))
    (Vmm.Vm.name guestx);

  (* The key memory fact: load the same file at L2 and in the host, let
     ksmd run, and the two copies merge - nesting hides nothing from
     L0's view of physical memory. *)
  let rng = Sim.Ctx.fork_rng ctx in
  let file = Memory.File_image.generate rng ~name:"file-a" ~pages:100 in
  (match Vmm.Vm.load_file l2 file with Ok _ -> () | Error e -> failwith e);
  let buffer =
    match Vmm.Hypervisor.host_buffer host ~name:"host-copy" ~pages:100 with
    | Ok b -> b
    | Error e -> failwith e
  in
  Memory.File_image.load_into file buffer ~offset:0;

  let ksm = Option.get (Vmm.Hypervisor.ksm host) in
  let wait = Sim.Time.mul (Memory.Ksm.time_for_full_pass ksm) 2.5 in
  Printf.printf "waiting %s of virtual time for ksmd...\n" (Sim.Time.to_string wait);
  ignore (Sim.Engine.run_for engine wait);

  Printf.printf "ksmd merged %d pages; host buffer now has %d/100 pages shared\n"
    (Memory.Ksm.pages_merged ksm)
    (Memory.Address_space.shared_page_count buffer);

  (* Writes to merged pages are slow (copy-on-write) - the timing side
     channel CloudSkulk detection is built on. *)
  let probe = Memory.Write_probe.probe ~rng buffer ~offset:0 ~pages:100 in
  Printf.printf "write probe: %d of 100 pages took a CoW fault (mean %s per write)\n"
    probe.Memory.Write_probe.cow_breaks
    (Sim.Time.to_string (Memory.Write_probe.mean_cost probe));
  Printf.printf "\nquickstart done at virtual time %s\n"
    (Sim.Time.to_string (Sim.Engine.now engine))
