(* cloudskulk-cli: drive attack / detection scenarios from the shell.

     dune exec bin/cloudskulk_cli.exe -- attack
     dune exec bin/cloudskulk_cli.exe -- detect --infected
     dune exec bin/cloudskulk_cli.exe -- monitor --cmd "info qtree"
     dune exec bin/cloudskulk_cli.exe -- trace --infected

   Flag definitions come from {!Harness.Flags}, the same surface the
   bench registry exposes; each subcommand builds one root
   {!Sim.Ctx.t} and hands it to the library. *)

open Cmdliner

let seed_arg = Harness.Flags.seed_default 42

(* a root context for one CLI scenario run *)
let make_ctx ?telemetry ?(faults = Sim.Fault.none) seed =
  Sim.Ctx.create ~seed ?telemetry ~faults ()

(* attack: run the install and print the report *)
let attack seed =
  let ctx = make_ctx seed in
  let uplink = Net.Fabric.Switch.create ctx ~name:"uplink" ~link:Net.Link.lan_1gbe in
  let host = Vmm.Hypervisor.create_l0 ctx ~name:"host" ~uplink ~addr:"192.168.1.100" in
  let registry = Migration.Registry.create () in
  let config =
    Vmm.Qemu_config.with_hostfwd (Vmm.Qemu_config.default ~name:"guest0") [ (2222, 22) ]
  in
  (match Vmm.Hypervisor.launch host config with
  | Ok _ -> ()
  | Error e -> failwith e);
  match Cloudskulk.Install.run ctx ~host ~registry ~target_name:"guest0" with
  | Ok report ->
    Format.printf "%a" Cloudskulk.Install.pp_report report;
    0
  | Error e ->
    Printf.eprintf "install failed: %s\n" e;
    1

(* detect: run the detector against a clean or infected scenario *)
let detect seed infected syncs faults metrics_out trace_out =
  match Sim.Fault.profile_of_string faults with
  | Error e ->
    Printf.eprintf "%s\n" e;
    1
  | Ok faults -> (
    let telemetry = Harness.Flags.sink ~metrics_out ~trace_out in
    let ctx = make_ctx ?telemetry ~faults seed in
    let export () = Harness.Flags.export ~metrics_out ~trace_out telemetry in
    match
      if infected then
        Result.map_error
          (fun f -> "Scenarios." ^ Cloudskulk.Scenarios.install_failure_to_string f)
          (Cloudskulk.Scenarios.infected_result ~attacker_syncs_changes:syncs ctx)
      else Ok (Cloudskulk.Scenarios.clean ctx)
    with
    | Error e ->
      export ();
      Printf.eprintf "scenario failed: %s\n" e;
      1
    | Ok scenario -> (
      Printf.printf "scenario: %s\n" scenario.Cloudskulk.Scenarios.description;
      match Cloudskulk.Dedup_detector.run scenario.Cloudskulk.Scenarios.detector_env with
      | Ok o ->
        export ();
        let line (m : Cloudskulk.Dedup_detector.measurement) =
          Printf.printf "%-3s mean %8.0f ns  stddev %7.0f ns  merged %3.0f%%\n"
            m.Cloudskulk.Dedup_detector.label m.summary.Sim.Stats.mean
            m.summary.Sim.Stats.stddev
            (m.cow_fraction *. 100.)
        in
        line o.Cloudskulk.Dedup_detector.t0;
        line o.t1;
        line o.t2;
        Printf.printf "verdict: %s\n"
          (Cloudskulk.Dedup_detector.verdict_to_string o.Cloudskulk.Dedup_detector.verdict);
        if infected && o.Cloudskulk.Dedup_detector.verdict = Cloudskulk.Dedup_detector.Nested_vm_detected
           || (not infected)
              && o.Cloudskulk.Dedup_detector.verdict = Cloudskulk.Dedup_detector.No_nested_vm
        then 0
        else 2
      | Error e ->
        export ();
        Printf.eprintf "detector failed: %s\n" e;
        1))

(* monitor: run a QEMU monitor command against a fresh guest *)
let monitor seed cmd =
  let ctx = make_ctx seed in
  let uplink = Net.Fabric.Switch.create ctx ~name:"uplink" ~link:Net.Link.lan_1gbe in
  let host = Vmm.Hypervisor.create_l0 ctx ~name:"host" ~uplink ~addr:"192.168.1.100" in
  match Vmm.Hypervisor.launch host (Vmm.Qemu_config.default ~name:"guest0") with
  | Error e ->
    Printf.eprintf "%s\n" e;
    1
  | Ok vm -> (
    print_endline (Vmm.Monitor.banner vm);
    match Vmm.Monitor.execute vm cmd with
    | Vmm.Monitor.Ok_text s ->
      print_endline s;
      0
    | Vmm.Monitor.Quit -> 0
    | Vmm.Monitor.Error_text e ->
      Printf.eprintf "error: %s\n" e;
      1)

(* audit: behavioral sweep of a clean or infected host *)
let audit_host seed infected =
  let ctx = make_ctx seed in
  let scenario =
    if infected then Cloudskulk.Scenarios.infected ctx else Cloudskulk.Scenarios.clean ctx
  in
  Printf.printf "scenario: %s\n" scenario.Cloudskulk.Scenarios.description;
  let findings = Cloudskulk.Install_auditor.audit scenario.Cloudskulk.Scenarios.host in
  if findings = [] then print_endline "no findings"
  else
    List.iter
      (fun f -> Format.printf "%a@." Cloudskulk.Install_auditor.pp_finding f)
      findings;
  if Cloudskulk.Install_auditor.is_alarming findings then begin
    print_endline "=> ALARMING: quarantine and run the dedup detector";
    3
  end
  else 0

(* soc: run the continuous detector monitor against one tenant *)
let soc seed infected minutes metrics_out trace_out =
  let telemetry = Harness.Flags.sink ~metrics_out ~trace_out in
  let ctx = make_ctx ?telemetry seed in
  let scenario =
    if infected then Cloudskulk.Scenarios.infected ctx else Cloudskulk.Scenarios.clean ctx
  in
  Printf.printf "scenario: %s\n" scenario.Cloudskulk.Scenarios.description;
  let open Cloudskulk.Detector_service in
  let policy =
    {
      default_policy with
      sweep_every = Sim.Time.minutes 10.;
      dedup_every_n_sweeps = 2;
      probe_pages = 8;
      probe_budget = 1;
      event_log_capacity = 64;
    }
  in
  (* the scenario runs on its own forked context; the service and the
     clock we drive must live on that engine, not the root one *)
  let sctx = scenario.Cloudskulk.Scenarios.ctx in
  let service = create ~policy sctx scenario.Cloudskulk.Scenarios.host in
  register_tenant service ~name:"tenant-a" ~env:(fun () ->
      scenario.Cloudskulk.Scenarios.detector_env);
  start_monitor service;
  ignore
    (Sim.Engine.run_for (Sim.Ctx.engine sctx) (Sim.Time.minutes (float_of_int minutes)));
  stop service;
  Harness.Flags.export ~metrics_out ~trace_out telemetry;
  Printf.printf "monitored for %d virtual minutes (%d audit sweeps)\n" minutes
    (sweeps_run service);
  List.iter (fun e -> Printf.printf "  %s\n" (event_to_string e)) (events service);
  if events_dropped service > 0 then
    Printf.printf "  (+%d events dropped by the ring buffer)\n" (events_dropped service);
  (match tenant_state service "tenant-a" with
  | None -> ()
  | Some st ->
    Printf.printf "tenant-a: %d probes, last verdict %s\n" st.probes
      (match st.last_verdict with
      | Some v -> Cloudskulk.Dedup_detector.verdict_to_string v
      | None -> "none"));
  (match time_to_detect service "tenant-a" with
  | Some d -> Printf.printf "time to detect: %.1f min\n" (Sim.Time.to_s d /. 60.)
  | None -> Printf.printf "time to detect: n/a\n");
  if budget_deferrals service > 0 then
    Printf.printf "probe-budget deferrals: %d\n" (budget_deferrals service);
  let detected = compromised_tenants service <> [] in
  if detected = infected then 0 else 2

(* trace: run a scenario and dump its trace *)
let dump_trace seed infected =
  let ctx = make_ctx seed in
  let scenario =
    if infected then Cloudskulk.Scenarios.infected ctx else Cloudskulk.Scenarios.clean ctx
  in
  List.iter
    (fun r -> Format.printf "%a@." Sim.Trace.pp_record r)
    (Sim.Trace.records (Sim.Ctx.trace scenario.Cloudskulk.Scenarios.ctx));
  0

let attack_cmd =
  let doc = "Install CloudSkulk against a fresh victim and print the report" in
  Cmd.v (Cmd.info "attack" ~doc) Term.(const attack $ seed_arg)

let detect_cmd =
  let doc = "Run the memory-deduplication detector" in
  let infected =
    Arg.(value & flag & info [ "infected" ] ~doc:"Install CloudSkulk first.")
  in
  let syncs =
    Arg.(
      value & flag
      & info [ "attacker-syncs" ] ~doc:"Model the attacker synchronising page changes.")
  in
  Cmd.v (Cmd.info "detect" ~doc)
    Term.(
      const detect $ seed_arg $ infected $ syncs $ Harness.Flags.faults
      $ Harness.Flags.metrics_out $ Harness.Flags.trace_out)

let monitor_cmd =
  let doc = "Execute a QEMU monitor command against a fresh guest" in
  let cmd_arg =
    Arg.(value & opt string "info qtree" & info [ "cmd" ] ~docv:"CMD" ~doc:"Monitor command.")
  in
  Cmd.v (Cmd.info "monitor" ~doc) Term.(const monitor $ seed_arg $ cmd_arg)

let audit_cmd =
  let doc = "Run the behavioral install auditor against a host" in
  let infected = Arg.(value & flag & info [ "infected" ] ~doc:"Install CloudSkulk first.") in
  Cmd.v (Cmd.info "audit" ~doc) Term.(const audit_host $ seed_arg $ infected)

let soc_cmd =
  let doc = "Run the continuous SOC detector monitor against a tenant" in
  let infected = Arg.(value & flag & info [ "infected" ] ~doc:"Install CloudSkulk first.") in
  let minutes =
    Arg.(
      value & opt int 60
      & info [ "minutes" ] ~docv:"MIN" ~doc:"Virtual minutes to monitor for.")
  in
  Cmd.v (Cmd.info "soc" ~doc)
    Term.(
      const soc $ seed_arg $ infected $ minutes $ Harness.Flags.metrics_out
      $ Harness.Flags.trace_out)

let trace_cmd =
  let doc = "Dump the simulation trace of a scenario" in
  let infected = Arg.(value & flag & info [ "infected" ] ~doc:"Infected scenario.") in
  Cmd.v (Cmd.info "trace" ~doc) Term.(const dump_trace $ seed_arg $ infected)

let main =
  let doc = "CloudSkulk: nested-VM rootkit and detection, simulated" in
  Cmd.group (Cmd.info "cloudskulk" ~doc)
    [ attack_cmd; detect_cmd; monitor_cmd; audit_cmd; soc_cmd; trace_cmd ]

let () = exit (Cmd.eval' main)
