(* Chaos harness: random fault schedules thrown at the migration stack,
   checking the safety invariants the failure model promises. Faults may
   stretch, stall, or abort a migration - they must never lose or
   duplicate guest state, corrupt the dirty-bitmap accounting, or change
   what the detector concludes in the absence of faults. *)

let small_config ?(name = "guest0") ?(memory_mb = 8) () =
  { (Vmm.Qemu_config.default ~name) with Vmm.Qemu_config.memory_mb }

let mk_pair ?(nested = false) ctx =
  Vmm.Layers.migration_pair ~ksm_config:Memory.Ksm.fast_config ~config:(small_config ())
    ~nested_dest:nested ctx

let contents_equal a b =
  let ca = Memory.Address_space.contents a and cb = Memory.Address_space.contents b in
  Array.length ca = Array.length cb && Array.for_all2 Memory.Page.Content.equal ca cb

let profiles = [| Sim.Fault.lossy; Sim.Fault.degraded; Sim.Fault.flaky |]

let chaos_props =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make
         ~name:"precopy chaos: no page lost or duplicated, dirty accounting conserved"
         ~count:15
         QCheck.(pair small_int (int_range 0 2))
         (fun (seed, pidx) ->
           let mp = mk_pair ~nested:(seed mod 2 = 0) (Sim.Ctx.create ()) in
           let ctx = mp.Vmm.Layers.mp_ctx in
           let source = mp.Vmm.Layers.mp_source and dest = mp.Vmm.Layers.mp_dest in
           let env =
             Workload.Exec_env.make ~vm:source ~ctx ~level:(Vmm.Vm.level source)
               ~ram:(Vmm.Vm.ram source)
               ~rng:(Sim.Rng.create seed) ()
           in
           let rate = 100. +. float_of_int (seed mod 5) *. 500. in
           let wl =
             Workload.Background.start env
               (Workload.Kernel_compile.background ~pages_per_second:rate ())
           in
           let fault = Sim.Fault.create profiles.(pidx) (Sim.Rng.create seed) in
           let r = Migration.Precopy.migrate ~fault ctx ~source ~dest () in
           Workload.Background.stop wl;
           match r with
           | Error _ -> false
           | Ok o -> (
             let pages = Memory.Address_space.pages (Vmm.Vm.ram source) in
             match o with
             | Migration.Outcome.Completed r | Migration.Outcome.Recovered (r, _) ->
               let sum f = List.fold_left (fun a x -> a + f x) 0 r.Migration.Precopy.rounds in
               (* the guest moved whole: both sides identical, dest owns it *)
               contents_equal (Vmm.Vm.ram source) (Vmm.Vm.ram dest)
               && Vmm.Vm.state dest = Vmm.Vm.Running
               && Vmm.Vm.state source = Vmm.Vm.Paused
               (* dirty-bitmap conservation: every page went at least
                  once, the per-round stats add up to the totals, and a
                  re-send can only be caused by a recorded dirtying *)
               && r.Migration.Precopy.total_pages_sent >= pages
               && sum (fun x -> x.Migration.Precopy.pages_sent)
                  = r.Migration.Precopy.total_pages_sent
               && sum (fun x -> x.Migration.Precopy.bytes_sent)
                  = r.Migration.Precopy.total_bytes_sent
               && r.Migration.Precopy.total_pages_sent - pages
                  <= sum (fun x -> x.Migration.Precopy.dirtied_during)
             | Migration.Outcome.Aborted { source_resumed; _ } ->
               (* an abort hands the guest back: source runs, the
                  destination never leaves Incoming *)
               source_resumed = (Vmm.Vm.state source = Vmm.Vm.Running)
               && Vmm.Vm.state source = Vmm.Vm.Running
               && Vmm.Vm.state dest = Vmm.Vm.Incoming)));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make
         ~name:"postcopy chaos: auto-recovery pulls every remaining page exactly once"
         ~count:12 QCheck.small_int
         (fun seed ->
           let mp = mk_pair ~nested:(seed mod 2 = 1) (Sim.Ctx.create ()) in
           let ctx = mp.Vmm.Layers.mp_ctx in
           let source = mp.Vmm.Layers.mp_source and dest = mp.Vmm.Layers.mp_dest in
           let rng = Sim.Rng.create seed in
           for _ = 1 to 200 do
             let i = Sim.Rng.int rng (Memory.Address_space.pages (Vmm.Vm.ram source)) in
             ignore
               (Memory.Address_space.write (Vmm.Vm.ram source) i (Memory.Page.Content.random rng))
           done;
           (* a small working set leaves most pages to the outage-prone
              background pull; auto-recovery must wait outages out *)
           let config =
             { Migration.Postcopy.default_config with
               Migration.Postcopy.working_set_pages = 256;
               auto_recover = true;
             }
           in
           let profile =
             { Sim.Fault.lossy with
               Sim.Fault.mtbf = Some (Sim.Time.ms 150.);
               mttr = Sim.Time.ms 100.;
             }
           in
           let fault = Sim.Fault.create profile (Sim.Rng.create seed) in
           match Migration.Postcopy.migrate ~config ~fault ctx ~source ~dest () with
           | Error _ -> false
           | Ok (Migration.Outcome.Completed r) | Ok (Migration.Outcome.Recovered (r, _)) ->
             (* exactly-once delivery: the page counter equals the RAM
                size - an outage resumes the pull where it stopped *)
             contents_equal (Vmm.Vm.ram source) (Vmm.Vm.ram dest)
             && Vmm.Vm.state dest = Vmm.Vm.Running
             && r.Migration.Postcopy.total_pages_sent
                = Memory.Address_space.pages (Vmm.Vm.ram source)
           | Ok (Migration.Outcome.Aborted { reason = Migration.Outcome.Channel_down _; _ }) ->
             (* the push died before handover: ordinary abort semantics *)
             Vmm.Vm.state source = Vmm.Vm.Running && Vmm.Vm.state dest = Vmm.Vm.Incoming
           | Ok (Migration.Outcome.Aborted _) -> false));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"zero-fault detector false-positive rate is zero" ~count:5
         QCheck.small_int
         (fun seed ->
           (* the fault subsystem must not perturb clean scenarios: a
              host with no nested VM is never flagged, at any seed *)
           let sc = Cloudskulk.Scenarios.clean (Sim.Ctx.create ~seed ()) in
           match Cloudskulk.Dedup_detector.run sc.Cloudskulk.Scenarios.detector_env with
           | Ok o -> o.Cloudskulk.Dedup_detector.verdict = Cloudskulk.Dedup_detector.No_nested_vm
           | Error _ -> false));
  ]

let () = Alcotest.run "chaos" [ ("properties", chaos_props) ]
