(* End-to-end tests of the memory-deduplication detector (paper Section
   VI, Figs 5 and 6): scenario 1 (clean) and scenario 2 (CloudSkulk
   installed), the timing shapes, verdicts, edge cases, and the
   attacker-sync evasion ablation. *)

let run_detector scenario =
  match Cloudskulk.Dedup_detector.run scenario.Cloudskulk.Scenarios.detector_env with
  | Ok o -> o
  | Error e -> Alcotest.fail ("detector: " ^ e)

let mean (m : Cloudskulk.Dedup_detector.measurement) = m.summary.Sim.Stats.mean

let detection_tests =
  [
    Alcotest.test_case "scenario 1 (clean): t1 >> t2 ~ t0, verdict clean (Fig 5)" `Slow
      (fun () ->
        let sc = Cloudskulk.Scenarios.clean (Sim.Ctx.create ()) in
        let o = run_detector sc in
        Alcotest.(check bool) "verdict" true
          (o.Cloudskulk.Dedup_detector.verdict = Cloudskulk.Dedup_detector.No_nested_vm);
        Alcotest.(check bool) "t1 >> t0" true (mean o.t1 > 3. *. mean o.t0);
        Alcotest.(check bool) "t2 ~ t0" true (mean o.t2 < 2. *. mean o.t0);
        (* ground truth: every t1 page was merged, no t2 page was *)
        Alcotest.(check (float 0.01)) "t1 all CoW" 1.0 o.t1.cow_fraction;
        Alcotest.(check (float 0.01)) "t2 no CoW" 0.0 o.t2.cow_fraction);
    Alcotest.test_case "scenario 2 (infected): t1 ~ t2 >> t0, verdict detected (Fig 6)" `Slow
      (fun () ->
        let sc = Cloudskulk.Scenarios.infected (Sim.Ctx.create ()) in
        let o = run_detector sc in
        Alcotest.(check bool) "verdict" true
          (o.Cloudskulk.Dedup_detector.verdict = Cloudskulk.Dedup_detector.Nested_vm_detected);
        Alcotest.(check bool) "t1 >> t0" true (mean o.t1 > 3. *. mean o.t0);
        Alcotest.(check bool) "t2 >> t0" true (mean o.t2 > 3. *. mean o.t0);
        let ratio = mean o.t1 /. mean o.t2 in
        Alcotest.(check bool) "t1 ~ t2" true (ratio > 0.8 && ratio < 1.25));
    Alcotest.test_case "per-page series have the figures' shapes" `Slow (fun () ->
        let clean = run_detector (Cloudskulk.Scenarios.clean (Sim.Ctx.create ())) in
        Alcotest.(check int) "100 pages per series" 100
          (Array.length clean.Cloudskulk.Dedup_detector.t1.per_page_ns);
        (* Fig 5: every t1 page is individually slow, every t2 page fast *)
        let t2_max = Array.fold_left Float.max 0. clean.t2.per_page_ns in
        let t1_min = Array.fold_left Float.min Float.infinity clean.t1.per_page_ns in
        Alcotest.(check bool) "series separated" true (t1_min > t2_max));
    Alcotest.test_case "detector works against a software-emulated (VT-x-free) RITM" `Slow
      (fun () ->
        (* the evasion that defeats the VMCS baseline does not help
           against memory deduplication *)
        let config =
          { (Cloudskulk.Install.default_config ~target_name:"guest0") with
            Cloudskulk.Install.use_vtx = false }
        in
        let sc = Cloudskulk.Scenarios.infected ~install_config:config (Sim.Ctx.create ()) in
        (* VMCS scan is blind... *)
        Alcotest.(check bool) "vmcs scan misses" false
          (Cloudskulk.Vmcs_scan.scan_host sc.Cloudskulk.Scenarios.host).verdict;
        (* ...the dedup detector is not *)
        let o = run_detector sc in
        Alcotest.(check bool) "dedup detects" true
          (o.Cloudskulk.Dedup_detector.verdict = Cloudskulk.Dedup_detector.Nested_vm_detected));
    Alcotest.test_case "attacker syncing changes evades, at a cost (Section VI-D)" `Slow
      (fun () ->
        let sc = Cloudskulk.Scenarios.infected ~attacker_syncs_changes:true (Sim.Ctx.create ()) in
        let o = run_detector sc in
        (* with a perfectly synced mirror, t2 merges against... nothing
           original, so the detector reads it as clean: the evasion
           works mechanically; the paper's argument is that it cannot
           scale, which the abl-sync bench prices *)
        Alcotest.(check bool) "evaded" true
          (o.Cloudskulk.Dedup_detector.verdict = Cloudskulk.Dedup_detector.No_nested_vm));
    Alcotest.test_case "file never delivered -> inconclusive" `Slow (fun () ->
        let sc = Cloudskulk.Scenarios.clean (Sim.Ctx.create ()) in
        let env =
          { sc.Cloudskulk.Scenarios.detector_env with
            Cloudskulk.Dedup_detector.deliver_to_guest = (fun _ -> Ok ());
            mutate_in_guest = (fun ~name:_ ~salt:_ -> Ok ());
          }
        in
        (match Cloudskulk.Dedup_detector.run env with
        | Ok o ->
          (match o.Cloudskulk.Dedup_detector.verdict with
          | Cloudskulk.Dedup_detector.Inconclusive _ -> ()
          | v ->
            Alcotest.failf "expected inconclusive, got %s"
              (Cloudskulk.Dedup_detector.verdict_to_string v))
        | Error e -> Alcotest.fail e));
    Alcotest.test_case "delivery failure propagates" `Quick (fun () ->
        let sc = Cloudskulk.Scenarios.clean (Sim.Ctx.create ()) in
        let env =
          { sc.Cloudskulk.Scenarios.detector_env with
            Cloudskulk.Dedup_detector.deliver_to_guest = (fun _ -> Error "web interface down");
          }
        in
        Alcotest.(check bool) "error" true
          (Result.is_error (Cloudskulk.Dedup_detector.run env)));
    Alcotest.test_case "small probe sizes still detect (Section VI-D claim)" `Slow (fun () ->
        let config =
          { Cloudskulk.Dedup_detector.default_config with
            Cloudskulk.Dedup_detector.file_pages = 4 }
        in
        let sc = Cloudskulk.Scenarios.infected (Sim.Ctx.create ()) in
        (match Cloudskulk.Dedup_detector.run ~config sc.Cloudskulk.Scenarios.detector_env with
        | Ok o ->
          Alcotest.(check bool) "detected with 4 pages" true
            (o.Cloudskulk.Dedup_detector.verdict
            = Cloudskulk.Dedup_detector.Nested_vm_detected)
        | Error e -> Alcotest.fail e));
    Alcotest.test_case "verdicts are deterministic per seed" `Slow (fun () ->
        let run seed =
          (run_detector (Cloudskulk.Scenarios.clean (Sim.Ctx.create ~seed ()))).Cloudskulk.Dedup_detector.verdict
        in
        Alcotest.(check bool) "same verdict" true (run 1 = run 1));
    Alcotest.test_case "measure_t0 alone gives a private-write baseline" `Quick (fun () ->
        let sc = Cloudskulk.Scenarios.clean (Sim.Ctx.create ()) in
        match Cloudskulk.Dedup_detector.measure_t0 sc.Cloudskulk.Scenarios.detector_env with
        | Ok m ->
          Alcotest.(check (float 0.001)) "no CoW" 0.0 m.Cloudskulk.Dedup_detector.cow_fraction;
          Alcotest.(check bool) "sub-microsecond" true (mean m < 1000.)
        | Error e -> Alcotest.fail e);
  ]

let accuracy_tests =
  [
    Alcotest.test_case "detector is right in 10/10 mixed trials" `Slow (fun () ->
        let correct = ref 0 in
        for seed = 1 to 5 do
          let clean = run_detector (Cloudskulk.Scenarios.clean (Sim.Ctx.create ~seed ())) in
          if clean.Cloudskulk.Dedup_detector.verdict = Cloudskulk.Dedup_detector.No_nested_vm
          then incr correct;
          let infected = run_detector (Cloudskulk.Scenarios.infected (Sim.Ctx.create ~seed ())) in
          if
            infected.Cloudskulk.Dedup_detector.verdict
            = Cloudskulk.Dedup_detector.Nested_vm_detected
          then incr correct
        done;
        Alcotest.(check int) "10 of 10" 10 !correct);
  ]

let () =
  Alcotest.run "detection"
    [ ("dedup_detector", detection_tests); ("accuracy", accuracy_tests) ]
