(* Tests for the extension modules: guest-side timing detection and its
   manipulation (Section VI-A), the host-side install auditor, and the
   KSM covert channel (the paper's ref [41] mechanism). *)

let target_config ?(name = "guest0") ?(memory_mb = 64) () =
  let c = { (Vmm.Qemu_config.default ~name) with Vmm.Qemu_config.memory_mb } in
  Vmm.Qemu_config.with_hostfwd c [ (2222, 22) ]

let mk_world ?(seed = 42) ?ksm_config () =
  let ctx = Sim.Ctx.create ~seed () in
  let uplink = Net.Fabric.Switch.create ctx ~name:"uplink" ~link:Net.Link.lan_1gbe in
  let host =
    Vmm.Hypervisor.create_l0 ?ksm_config ctx ~name:"host" ~uplink ~addr:"192.168.1.100"
  in
  (ctx, uplink, host, Migration.Registry.create ())

let install_exn ctx host registry =
  match Cloudskulk.Install.run ctx ~host ~registry ~target_name:"guest0" with
  | Ok r -> r
  | Error e -> Alcotest.fail e

let infected_victim ?seed () =
  let ctx, _, host, registry = mk_world ?seed () in
  ignore (Result.get_ok (Vmm.Hypervisor.launch host (target_config ())));
  let r = install_exn ctx host registry in
  (ctx, host, r.Cloudskulk.Install.ritm)

let l2_timing_tests =
  let open Cloudskulk.L2_timing_detector in
  [
    Alcotest.test_case "honest L1 guest looks normal" `Quick (fun () ->
        let _, host, _ = ((), (), ()) in
        ignore host;
        let _, _, host, _ = mk_world () in
        let vm = Result.get_ok (Vmm.Hypervisor.launch host (target_config ())) in
        let r = measure vm in
        Alcotest.(check bool) "naive normal" true (r.naive_verdict = Looks_normal);
        Alcotest.(check bool) "consistency normal" true (r.consistency_verdict = Looks_normal));
    Alcotest.test_case "unmanipulated nested victim looks nested" `Quick (fun () ->
        let _, _, ritm = infected_victim () in
        let r = measure ritm.Cloudskulk.Ritm.victim in
        Alcotest.(check bool) "naive catches it" true (r.naive_verdict = Looks_nested);
        Alcotest.(check bool) "consistency too" true (r.consistency_verdict = Looks_nested);
        (* pipe ratio should be around 65.49/6.75 ~ 9.7x *)
        let pipe = List.hd r.observations in
        Alcotest.(check bool) "pipe ratio ~10x" true (pipe.ratio > 5. && pipe.ratio < 15.));
    Alcotest.test_case "clock scaling defeats the naive detector only" `Quick (fun () ->
        let _, _, ritm = infected_victim () in
        let victim = ritm.Cloudskulk.Ritm.victim in
        hide_reference_op victim;
        let r = measure victim in
        Alcotest.(check bool) "naive fooled" true (r.naive_verdict = Looks_normal);
        (* fork's overhead profile differs from pipe's, so a constant
           scale cannot normalise both: fork now reads as anomalously
           FAST, and the cross-op spread is wild *)
        Alcotest.(check bool) "spread betrays the scaling" true (r.max_ratio_spread > 2.));
    Alcotest.test_case "full result spoofing defeats everything" `Quick (fun () ->
        let _, _, ritm = infected_victim () in
        let victim = ritm.Cloudskulk.Ritm.victim in
        spoof_results victim;
        let r = measure victim in
        Alcotest.(check bool) "naive fooled" true (r.naive_verdict = Looks_normal);
        Alcotest.(check bool) "consistency fooled" true (r.consistency_verdict = Looks_normal);
        Alcotest.(check bool) "spread flat" true (r.max_ratio_spread < 1.1);
        stop_spoofing victim;
        let r2 = measure victim in
        Alcotest.(check bool) "anomaly returns" true (r2.naive_verdict = Looks_nested));
    Alcotest.test_case "guest clock scale validates input" `Quick (fun () ->
        let _, _, host, _ = mk_world () in
        let vm = Result.get_ok (Vmm.Hypervisor.launch host (target_config ())) in
        Alcotest.(check bool) "rejects zero" true
          (try
             Vmm.Vm.set_guest_time_scale vm 0.;
             false
           with Invalid_argument _ -> true);
        Vmm.Vm.set_guest_time_scale vm 0.5;
        Alcotest.(check (float 1e-9)) "observe halves" 500.
          (Sim.Time.to_us (Vmm.Vm.observe_duration vm (Sim.Time.ms 1.))));
  ]

let auditor_tests =
  let open Cloudskulk.Install_auditor in
  [
    Alcotest.test_case "quiet host yields no findings" `Quick (fun () ->
        let _, _, host, _ = mk_world () in
        ignore (Result.get_ok (Vmm.Hypervisor.launch host (target_config ())));
        Alcotest.(check int) "none" 0 (List.length (audit host)));
    Alcotest.test_case "benign second guest is not flagged" `Quick (fun () ->
        let _, _, host, _ = mk_world () in
        ignore (Result.get_ok (Vmm.Hypervisor.launch host (target_config ())));
        ignore
          (Result.get_ok (Vmm.Hypervisor.launch host (target_config ~name:"other" ())));
        Alcotest.(check bool) "not alarming" false (is_alarming (audit host)));
    Alcotest.test_case "post-install footprints are alarming" `Quick (fun () ->
        let ctx, _, host, registry = mk_world () in
        ignore (Result.get_ok (Vmm.Hypervisor.launch host (target_config ())));
        (* a busy host keeps spawning processes; any process born between
           the victim's QEMU and GuestX makes the later PID spoof show
           up as a PID/start-time inversion *)
        ignore
          (Vmm.Process_table.spawn
             (Vmm.Hypervisor.processes host)
             ~name:"dnf" ~cmdline:"/usr/bin/dnf makecache");
        ignore (install_exn ctx host registry);
        let findings = audit host in
        let codes = List.map (fun f -> f.code) findings in
        Alcotest.(check bool) "pid inversion seen" true (List.mem Pid_inversion codes);
        Alcotest.(check bool) "forward to vmx guest seen" true
          (List.mem Forward_to_vmx_guest codes);
        Alcotest.(check bool) "vmcs seen" true (List.mem Vmcs_signature codes);
        Alcotest.(check bool) "alarming" true (is_alarming findings));
    Alcotest.test_case "no-VT-x install still trips the behavioral checks" `Quick (fun () ->
        let ctx, _, host, registry = mk_world () in
        ignore (Result.get_ok (Vmm.Hypervisor.launch host (target_config ())));
        ignore
          (Vmm.Process_table.spawn
             (Vmm.Hypervisor.processes host)
             ~name:"dnf" ~cmdline:"/usr/bin/dnf makecache");
        let config =
          { (Cloudskulk.Install.default_config ~target_name:"guest0") with
            Cloudskulk.Install.use_vtx = false }
        in
        (match Cloudskulk.Install.run ~config ctx ~host ~registry ~target_name:"guest0" with
        | Ok _ -> ()
        | Error e -> Alcotest.fail e);
        let findings = audit host in
        let codes = List.map (fun f -> f.code) findings in
        Alcotest.(check bool) "no vmcs this time" false (List.mem Vmcs_signature codes);
        Alcotest.(check bool) "still alarming (pid inversion + forward)" true
          (is_alarming findings));
    Alcotest.test_case "mid-install window shows the staging" `Quick (fun () ->
        (* reproduce steps 2-3 by hand and audit before the migration *)
        let ctx, _, host, _ = mk_world () in
        ignore (Result.get_ok (Vmm.Hypervisor.launch host (target_config ())));
        let guestx_cfg =
          Vmm.Qemu_config.with_nested_vmx
            { (target_config ~name:"guestx" ~memory_mb:128 ()) with
              Vmm.Qemu_config.netdev =
                { (Vmm.Qemu_config.default ~name:"guestx").Vmm.Qemu_config.netdev with
                  Vmm.Qemu_config.hostfwd = [ (5600, 5601) ] };
              monitor_port = 5556 }
            true
        in
        let guestx = Result.get_ok (Vmm.Hypervisor.launch host guestx_cfg) in
        let hv = Result.get_ok (Vmm.Hypervisor.create_nested ctx ~vm:guestx ~name:"hv") in
        ignore
          (Result.get_ok
             (Vmm.Hypervisor.launch hv
                (Vmm.Qemu_config.with_incoming (target_config ~name:"dest" ()) ~port:5601)));
        let findings = audit host in
        let codes = List.map (fun f -> f.code) findings in
        Alcotest.(check bool) "vmx colaunch" true (List.mem Vmx_colaunch codes);
        Alcotest.(check bool) "forward to vmx guest" true (List.mem Forward_to_vmx_guest codes));
    Alcotest.test_case "a legitimate cross-host migration target is only info" `Quick
      (fun () ->
        let _, _, host, _ = mk_world () in
        (* an incoming VM with no matching local source: routine *)
        ignore
          (Result.get_ok
             (Vmm.Hypervisor.launch host
                (Vmm.Qemu_config.with_incoming (target_config ~name:"arriving" ()) ~port:4444)));
        let findings = audit host in
        Alcotest.(check bool) "not alarming" false (is_alarming findings);
        Alcotest.(check bool) "but noted" true
          (List.exists (fun f -> f.code = Local_incoming && f.severity = Info) findings));
  ]

let covert_tests =
  let open Cloudskulk.Covert_channel in
  let mk_pair () =
    let _, _, host, _ = mk_world ~ksm_config:Memory.Ksm.fast_config () in
    let sender = Result.get_ok (Vmm.Hypervisor.launch host (target_config ~name:"sender" ())) in
    let receiver =
      Result.get_ok (Vmm.Hypervisor.launch host (target_config ~name:"receiver" ()))
    in
    (host, sender, receiver)
  in
  [
    Alcotest.test_case "bits cross the channel intact" `Quick (fun () ->
        let host, sender, receiver = mk_pair () in
        let bits = [ true; false; true; true; false; false; true; false ] in
        match transmit ~host ~sender ~receiver bits with
        | Ok t ->
          Alcotest.(check (list bool)) "received" bits t.received;
          Alcotest.(check int) "no errors" 0 t.bit_errors;
          Alcotest.(check bool) "bandwidth positive" true (t.bandwidth_bits_per_s > 0.)
        | Error e -> Alcotest.fail e);
    Alcotest.test_case "a whole string survives" `Quick (fun () ->
        let host, sender, receiver = mk_pair () in
        let message = "exfil" in
        match transmit ~host ~sender ~receiver (string_to_bits message) with
        | Ok t -> Alcotest.(check string) "decoded" message (bits_to_string t.received)
        | Error e -> Alcotest.fail e);
    Alcotest.test_case "consecutive frames do not interfere" `Quick (fun () ->
        let host, sender, receiver = mk_pair () in
        let f1 = [ true; true; false ] and f2 = [ false; true; true ] in
        (match transmit ~host ~sender ~receiver f1 with
        | Ok t -> Alcotest.(check int) "frame 1 clean" 0 t.bit_errors
        | Error e -> Alcotest.fail e);
        match transmit ~host ~sender ~receiver f2 with
        | Ok t ->
          Alcotest.(check (list bool)) "frame 2" f2 t.received;
          Alcotest.(check int) "frame 2 clean" 0 t.bit_errors
        | Error e -> Alcotest.fail e);
    Alcotest.test_case "channel requires ksmd" `Quick (fun () ->
        (* a host without KSM: build one and stop its daemon, then the
           channel still works mechanically only if pages merge - with
           ksmd stopped nothing merges and every 1-bit is lost *)
        let _, _, host, _ = mk_world ~ksm_config:Memory.Ksm.fast_config () in
        let sender =
          Result.get_ok (Vmm.Hypervisor.launch host (target_config ~name:"sender" ()))
        in
        let receiver =
          Result.get_ok (Vmm.Hypervisor.launch host (target_config ~name:"receiver" ()))
        in
        (match Vmm.Hypervisor.ksm host with
        | Some ksm -> Memory.Ksm.stop ksm
        | None -> ());
        match transmit ~host ~sender ~receiver [ true; true; true ] with
        | Ok t -> Alcotest.(check int) "all ones lost" 3 t.bit_errors
        | Error e -> Alcotest.fail e);
    Alcotest.test_case "string round trip helpers" `Quick (fun () ->
        Alcotest.(check string) "ascii" "hello!" (bits_to_string (string_to_bits "hello!"));
        Alcotest.(check int) "8 bits per char" 16 (List.length (string_to_bits "ab")));
  ]

let covert_props =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"covert channel is error-free for random frames" ~count:10
         QCheck.(list_of_size Gen.(int_range 1 12) bool)
         (fun bits ->
           let _, _, host, _ = mk_world ~ksm_config:Memory.Ksm.fast_config () in
           let sender =
             Result.get_ok (Vmm.Hypervisor.launch host (target_config ~name:"sender" ()))
           in
           let receiver =
             Result.get_ok (Vmm.Hypervisor.launch host (target_config ~name:"receiver" ()))
           in
           match Cloudskulk.Covert_channel.transmit ~host ~sender ~receiver bits with
           | Ok t -> t.Cloudskulk.Covert_channel.bit_errors = 0
           | Error _ -> false));
  ]

(* The detector service: tenant registration, verdict flips, rotation
   policy and the audit-triggered escalation path. *)
let service_tests =
  let open Cloudskulk.Detector_service in
  let make_world_with_service ?(policy = default_policy) () =
    let ctx, _, host, registry = mk_world () in
    let vm = Result.get_ok (Vmm.Hypervisor.launch host (target_config ())) in
    let service = create ~policy ctx host in
    let vm_ref = ref vm in
    let ritm_ref = ref None in
    let env () =
      let vm = !vm_ref in
      {
        Cloudskulk.Dedup_detector.ctx;
        host;
        deliver_to_guest =
          (fun image ->
            match Vmm.Vm.load_file vm image with
            | Error e -> Error e
            | Ok _ -> (
              match !ritm_ref with
              | None -> Ok ()
              | Some ritm ->
                Result.map (fun () -> ())
                  (Cloudskulk.Stealth.mirror_file ~guestx:ritm.Cloudskulk.Ritm.guestx
                     ~victim:vm
                     ~name:(Memory.File_image.name image))));
        mutate_in_guest =
          (fun ~name ~salt ->
            match Vmm.Vm.file_offset vm name with
            | None -> Error "no such file"
            | Some off ->
              let pages =
                match
                  List.find_opt (fun (n, _, _) -> n = name) (Vmm.Vm.loaded_files vm)
                with
                | Some (_, _, p) -> p
                | None -> 0
              in
              let ram = Vmm.Vm.ram vm in
              for i = 0 to pages - 1 do
                let c = Memory.Address_space.read ram (off + i) in
                ignore
                  (Memory.Address_space.write ram (off + i)
                     (Memory.Page.Content.mutate c ~salt))
              done;
              Ok ());
      }
    in
    register_tenant service ~name:"guest0" ~env;
    (ctx, host, registry, service, vm_ref, ritm_ref)
  in
  [
    Alcotest.test_case "first sweep probes and records a clean verdict" `Quick (fun () ->
        let _, _, _, service, _, _ = make_world_with_service () in
        let evs = sweep_now service in
        Alcotest.(check int) "one flip event (None -> clean)" 1 (List.length evs);
        (match tenant_state service "guest0" with
        | Some st ->
          Alcotest.(check bool) "clean" true
            (st.last_verdict = Some Cloudskulk.Dedup_detector.No_nested_vm)
        | None -> Alcotest.fail "tenant missing");
        Alcotest.(check (list string)) "no compromised tenants" []
          (compromised_tenants service));
    Alcotest.test_case "rotation policy skips then re-probes" `Quick (fun () ->
        let policy = { default_policy with dedup_every_n_sweeps = 3 } in
        let _, _, _, service, _, _ = make_world_with_service ~policy () in
        ignore (sweep_now service);
        (* sweeps 2 and 3 should skip the dedup probe (no alarm, not due) *)
        Alcotest.(check (list string)) "sweep 2 quiet" []
          (List.map event_to_string (sweep_now service));
        Alcotest.(check (list string)) "sweep 3 quiet" []
          (List.map event_to_string (sweep_now service));
        (* sweep 4: rotation due; same verdict, so still no flip event *)
        ignore (sweep_now service);
        match tenant_state service "guest0" with
        | Some st -> Alcotest.(check int) "probe just ran" 0 st.sweeps_since_dedup
        | None -> Alcotest.fail "tenant missing");
    Alcotest.test_case "an attack flips the verdict and raises events" `Quick (fun () ->
        let ctx, host, registry, service, vm_ref, ritm_ref =
          make_world_with_service ()
        in
        ignore (sweep_now service);
        (* attack happens between sweeps *)
        let report =
          match Cloudskulk.Install.run ctx ~host ~registry ~target_name:"guest0" with
          | Ok r -> r
          | Error e -> Alcotest.fail e
        in
        vm_ref := report.Cloudskulk.Install.ritm.Cloudskulk.Ritm.victim;
        ritm_ref := Some report.Cloudskulk.Install.ritm;
        let evs = sweep_now service in
        Alcotest.(check bool) "audit alarm raised" true
          (List.exists (function Audit_alarm _ -> true | _ -> false) evs);
        Alcotest.(check bool) "verdict flip raised" true
          (List.exists
             (function
               | Verdict_flip { after = Cloudskulk.Dedup_detector.Nested_vm_detected; _ } ->
                 true
               | _ -> false)
             evs);
        Alcotest.(check (list string)) "tenant listed as compromised" [ "guest0" ]
          (compromised_tenants service));
    Alcotest.test_case "probe failure is an event, not a crash" `Quick (fun () ->
        let ctx, _, _, _, _, _ = make_world_with_service () in
        let _, _, host2, _ = mk_world () in
        let service = create ctx host2 in
        register_tenant service ~name:"ghost" ~env:(fun () ->
            {
              Cloudskulk.Dedup_detector.ctx;
              host = host2;
              deliver_to_guest = (fun _ -> Error "agent unreachable");
              mutate_in_guest = (fun ~name:_ ~salt:_ -> Ok ());
            });
        let evs = sweep_now service in
        Alcotest.(check bool) "probe_failed event" true
          (List.exists (function Probe_failed _ -> true | _ -> false) evs));
    Alcotest.test_case "periodic mode sweeps on its own" `Quick (fun () ->
        let ctx, _, _, service, _, _ =
          make_world_with_service
            ~policy:{ default_policy with sweep_every = Sim.Time.minutes 5. }
            ()
        in
        start service;
        ignore (Sim.Engine.run_for (Sim.Ctx.engine ctx) (Sim.Time.minutes 16.));
        stop service;
        Alcotest.(check bool) "at least 3 sweeps" true (sweeps_run service >= 3));
    Alcotest.test_case "unregister stops probing a tenant" `Quick (fun () ->
        let _, _, _, service, _, _ = make_world_with_service () in
        ignore (sweep_now service);
        unregister_tenant service ~name:"guest0";
        Alcotest.(check (option reject)) "state gone" None
          (Option.map ignore (tenant_state service "guest0"));
        Alcotest.(check (list string)) "sweep does nothing" []
          (List.map event_to_string (sweep_now service)));
  ]

let () =
  Alcotest.run "extensions"
    [
      ("l2_timing", l2_timing_tests);
      ("install_auditor", auditor_tests);
      ("covert_channel", covert_tests @ covert_props);
      ("detector_service", service_tests);
    ]
