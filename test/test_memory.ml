(* Tests for the memory substrate: frames, address spaces (including
   nested windows), dirty tracking, KSM merging, and the write-timing
   probe that the detector builds on. *)

let rng () = Sim.Rng.create 42

let content_tests =
  let open Memory.Page in
  [
    Alcotest.test_case "of_int is deterministic and distinct" `Quick (fun () ->
        Alcotest.(check bool) "equal" true (Content.equal (Content.of_int 5) (Content.of_int 5));
        Alcotest.(check bool) "distinct" false
          (Content.equal (Content.of_int 5) (Content.of_int 6)));
    Alcotest.test_case "of_int never collides with the zero page" `Quick (fun () ->
        for i = 0 to 1000 do
          Alcotest.(check bool) "non-zero" false (Content.is_zero (Content.of_int i))
        done);
    Alcotest.test_case "mutate changes content" `Quick (fun () ->
        let c = Content.of_int 9 in
        Alcotest.(check bool) "differs" false (Content.equal c (Content.mutate c ~salt:0)));
    Alcotest.test_case "mutate is deterministic per salt" `Quick (fun () ->
        let c = Content.of_int 9 in
        Alcotest.(check bool) "same salt same result" true
          (Content.equal (Content.mutate c ~salt:3) (Content.mutate c ~salt:3));
        Alcotest.(check bool) "different salt different result" false
          (Content.equal (Content.mutate c ~salt:3) (Content.mutate c ~salt:4)));
    Alcotest.test_case "pages_of_bytes rounds up" `Quick (fun () ->
        Alcotest.(check int) "exact" 1 (Memory.Page.pages_of_bytes 4096);
        Alcotest.(check int) "round up" 2 (Memory.Page.pages_of_bytes 4097);
        Alcotest.(check int) "zero" 0 (Memory.Page.pages_of_bytes 0));
    Alcotest.test_case "int64 round-trip" `Quick (fun () ->
        let c = Content.of_int64 0xDEADBEEFL in
        Alcotest.(check int64) "round trip" 0xDEADBEEFL (Content.to_int64 c));
  ]

let frame_tests =
  let open Memory.Frame_table in
  [
    Alcotest.test_case "alloc gives private frame" `Quick (fun () ->
        let t = create (Sim.Ctx.create ()) in
        let f = alloc t (Memory.Page.Content.of_int 1) in
        Alcotest.(check int) "refcount" 1 (refcount t f);
        Alcotest.(check bool) "not shared" false (is_shared t f);
        Alcotest.(check int) "live" 1 (live_frames t));
    Alcotest.test_case "incref/decref lifecycle" `Quick (fun () ->
        let t = create (Sim.Ctx.create ()) in
        let f = alloc t (Memory.Page.Content.of_int 1) in
        incref t f;
        Alcotest.(check bool) "shared" true (is_shared t f);
        decref t f;
        decref t f;
        Alcotest.(check int) "freed" 0 (live_frames t));
    Alcotest.test_case "freed frames are recycled" `Quick (fun () ->
        let t = create (Sim.Ctx.create ()) in
        let f = alloc t (Memory.Page.Content.of_int 1) in
        decref t f;
        let f2 = alloc t (Memory.Page.Content.of_int 2) in
        Alcotest.(check int) "same slot" f f2);
    Alcotest.test_case "capacity enforced" `Quick (fun () ->
        let t = create ~capacity_frames:2 (Sim.Ctx.create ()) in
        ignore (alloc t (Memory.Page.Content.of_int 1));
        ignore (alloc t (Memory.Page.Content.of_int 2));
        Alcotest.(check bool) "raises OOM" true
          (try
             ignore (alloc t (Memory.Page.Content.of_int 3));
             false
           with Out_of_memory_frames -> true));
    Alcotest.test_case "sharing accounting" `Quick (fun () ->
        let t = create (Sim.Ctx.create ()) in
        let f = alloc t (Memory.Page.Content.of_int 1) in
        incref t f;
        incref t f;
        ignore (alloc t (Memory.Page.Content.of_int 2));
        Alcotest.(check int) "shared frames" 1 (shared_frames t);
        Alcotest.(check int) "savings = refs-1" 2 (sharing_savings_pages t));
    Alcotest.test_case "stable flag" `Quick (fun () ->
        let t = create (Sim.Ctx.create ()) in
        let f = alloc t (Memory.Page.Content.of_int 1) in
        Alcotest.(check bool) "initially unstable" false (is_stable t f);
        mark_stable t f;
        Alcotest.(check bool) "stable" true (is_stable t f);
        clear_stable t f;
        Alcotest.(check bool) "cleared" false (is_stable t f));
  ]

let dirty_tests =
  let open Memory.Dirty in
  [
    Alcotest.test_case "set and count" `Quick (fun () ->
        let d = create 100 in
        set d 3;
        set d 97;
        set d 3;
        Alcotest.(check int) "count dedups" 2 (dirty_count d);
        Alcotest.(check bool) "is_dirty" true (is_dirty d 3);
        Alcotest.(check bool) "clean page" false (is_dirty d 4));
    Alcotest.test_case "collect_and_clear returns sorted and clears" `Quick (fun () ->
        let d = create 50 in
        List.iter (set d) [ 40; 2; 17 ];
        Alcotest.(check (list int)) "sorted" [ 2; 17; 40 ] (collect_and_clear d);
        Alcotest.(check int) "cleared" 0 (dirty_count d));
    Alcotest.test_case "out of range raises" `Quick (fun () ->
        let d = create 10 in
        Alcotest.(check bool) "raises" true
          (try
             set d 10;
             false
           with Invalid_argument _ -> true));
    Alcotest.test_case "boundary bits work" `Quick (fun () ->
        let d = create 17 in
        set d 0;
        set d 7;
        set d 8;
        set d 16;
        Alcotest.(check (list int)) "all kept" [ 0; 7; 8; 16 ] (collect_and_clear d));
    Alcotest.test_case "fold/iter match a naive bit walk at awkward lengths" `Quick (fun () ->
        List.iter
          (fun n ->
            let d = create n in
            for i = 0 to n - 1 do
              if i mod 3 = 0 || i = n - 1 then set d i
            done;
            let naive = ref [] in
            for i = length d - 1 downto 0 do
              if is_dirty d i then naive := i :: !naive
            done;
            Alcotest.(check (list int))
              (Printf.sprintf "fold, %d pages" n)
              !naive
              (List.rev (fold_dirty d (fun acc i -> i :: acc) []));
            let seen = ref [] in
            iter_dirty d (fun i -> seen := i :: !seen);
            Alcotest.(check (list int)) (Printf.sprintf "iter, %d pages" n) !naive (List.rev !seen))
          [ 1; 7; 8; 9; 31; 32; 33; 63; 64; 65 ]);
    Alcotest.test_case "fold sees every page when all are dirty" `Quick (fun () ->
        List.iter
          (fun n ->
            let d = create n in
            for i = 0 to n - 1 do
              set d i
            done;
            Alcotest.(check (list int))
              (Printf.sprintf "all dirty, %d pages" n)
              (List.init n Fun.id)
              (List.rev (fold_dirty d (fun acc i -> i :: acc) [])))
          [ 1; 7; 8; 9; 63; 64; 65 ]);
    Alcotest.test_case "fold sees nothing when none are dirty" `Quick (fun () ->
        List.iter
          (fun n ->
            let d = create n in
            Alcotest.(check int)
              (Printf.sprintf "none dirty, %d pages" n)
              0
              (fold_dirty d (fun acc _ -> acc + 1) 0))
          [ 1; 7; 8; 9; 63; 64; 65 ]);
    Alcotest.test_case "drain moves the bits and clears the source" `Quick (fun () ->
        let d = create 70 in
        let scratch = create 70 in
        List.iter (set d) [ 0; 31; 32; 64; 69 ];
        drain d ~into:scratch;
        Alcotest.(check int) "source cleared" 0 (dirty_count d);
        Alcotest.(check int) "count moved" 5 (dirty_count scratch);
        Alcotest.(check (list int)) "bits moved" [ 0; 31; 32; 64; 69 ]
          (List.rev (fold_dirty scratch (fun acc i -> i :: acc) []));
        (* drain overwrites the destination, it does not accumulate *)
        set d 5;
        drain d ~into:scratch;
        Alcotest.(check (list int)) "overwritten" [ 5 ]
          (List.rev (fold_dirty scratch (fun acc i -> i :: acc) [])));
    Alcotest.test_case "drain into a differently sized bitmap raises" `Quick (fun () ->
        let d = create 64 in
        let scratch = create 65 in
        Alcotest.(check bool) "raises" true
          (try
             drain d ~into:scratch;
             false
           with Invalid_argument _ -> true));
    Alcotest.test_case "test_and_clear retires one bit" `Quick (fun () ->
        let d = create 40 in
        set d 7;
        set d 32;
        Alcotest.(check bool) "clean page" false (test_and_clear d 8);
        Alcotest.(check bool) "dirty page" true (test_and_clear d 7);
        Alcotest.(check bool) "cleared by the test" false (is_dirty d 7);
        Alcotest.(check bool) "second call clean" false (test_and_clear d 7);
        Alcotest.(check int) "count follows" 1 (dirty_count d));
    Alcotest.test_case "next_dirty_from skips clean ranges" `Quick (fun () ->
        let d = create 100 in
        List.iter (set d) [ 2; 31; 32; 64; 97 ];
        Alcotest.(check (option int)) "from 0" (Some 2) (next_dirty_from d 0);
        Alcotest.(check (option int)) "from itself" (Some 2) (next_dirty_from d 2);
        Alcotest.(check (option int)) "word boundary" (Some 31) (next_dirty_from d 3);
        Alcotest.(check (option int)) "next word" (Some 32) (next_dirty_from d 32);
        Alcotest.(check (option int)) "across clean word" (Some 97) (next_dirty_from d 65);
        Alcotest.(check (option int)) "past the last bit" None (next_dirty_from d 98);
        Alcotest.(check (option int)) "at length" None (next_dirty_from d 100);
        Alcotest.(check int) "non-mutating" 5 (dirty_count d));
  ]

let space_tests =
  [
    Alcotest.test_case "fresh root space is all zero" `Quick (fun () ->
        let ft = Memory.Frame_table.create (Sim.Ctx.create ()) in
        let s = Memory.Address_space.create_root ft ~name:"ram" ~pages:16 in
        for i = 0 to 15 do
          Alcotest.(check bool) "zero" true
            (Memory.Page.Content.is_zero (Memory.Address_space.read s i))
        done);
    Alcotest.test_case "write then read" `Quick (fun () ->
        let ft = Memory.Frame_table.create (Sim.Ctx.create ()) in
        let s = Memory.Address_space.create_root ft ~name:"ram" ~pages:4 in
        let c = Memory.Page.Content.of_int 7 in
        ignore (Memory.Address_space.write s 2 c);
        Alcotest.(check bool) "read back" true
          (Memory.Page.Content.equal c (Memory.Address_space.read s 2)));
    Alcotest.test_case "window resolves into parent" `Quick (fun () ->
        let ft = Memory.Frame_table.create (Sim.Ctx.create ()) in
        let parent = Memory.Address_space.create_root ft ~name:"l1" ~pages:32 in
        let w = Memory.Address_space.window parent ~name:"l2" ~offset:8 ~pages:8 in
        let c = Memory.Page.Content.of_int 3 in
        ignore (Memory.Address_space.write w 0 c);
        Alcotest.(check bool) "parent sees it" true
          (Memory.Page.Content.equal c (Memory.Address_space.read parent 8));
        let root, idx = Memory.Address_space.resolve w 3 in
        Alcotest.(check bool) "root is parent" true (root == parent);
        Alcotest.(check int) "offset applied" 11 idx);
    Alcotest.test_case "nested window of window" `Quick (fun () ->
        let ft = Memory.Frame_table.create (Sim.Ctx.create ()) in
        let l1 = Memory.Address_space.create_root ft ~name:"l1" ~pages:64 in
        let l2 = Memory.Address_space.window l1 ~name:"l2" ~offset:16 ~pages:32 in
        let l3 = Memory.Address_space.window l2 ~name:"l3" ~offset:4 ~pages:8 in
        let c = Memory.Page.Content.of_int 5 in
        ignore (Memory.Address_space.write l3 1 c);
        Alcotest.(check bool) "l1 sees it at 21" true
          (Memory.Page.Content.equal c (Memory.Address_space.read l1 21)));
    Alcotest.test_case "window out of range rejected" `Quick (fun () ->
        let ft = Memory.Frame_table.create (Sim.Ctx.create ()) in
        let parent = Memory.Address_space.create_root ft ~name:"l1" ~pages:8 in
        Alcotest.(check bool) "raises" true
          (try
             ignore (Memory.Address_space.window parent ~name:"w" ~offset:4 ~pages:8);
             false
           with Invalid_argument _ -> true));
    Alcotest.test_case "write marks dirty along the chain" `Quick (fun () ->
        let ft = Memory.Frame_table.create (Sim.Ctx.create ()) in
        let l1 = Memory.Address_space.create_root ft ~name:"l1" ~pages:32 in
        let l2 = Memory.Address_space.window l1 ~name:"l2" ~offset:8 ~pages:8 in
        Memory.Dirty.clear (Memory.Address_space.dirty l1);
        ignore (Memory.Address_space.write l2 2 (Memory.Page.Content.of_int 1));
        Alcotest.(check bool) "l2 dirty at 2" true
          (Memory.Dirty.is_dirty (Memory.Address_space.dirty l2) 2);
        Alcotest.(check bool) "l1 dirty at 10" true
          (Memory.Dirty.is_dirty (Memory.Address_space.dirty l1) 10));
    Alcotest.test_case "write to shared frame is CoW" `Quick (fun () ->
        let ft = Memory.Frame_table.create (Sim.Ctx.create ()) in
        let a = Memory.Address_space.create_root ft ~name:"a" ~pages:2 in
        let b = Memory.Address_space.create_root ft ~name:"b" ~pages:2 in
        let c = Memory.Page.Content.of_int 4 in
        ignore (Memory.Address_space.write a 0 c);
        ignore (Memory.Address_space.write b 0 c);
        (* merge manually (what ksm does) *)
        Memory.Address_space.remap b 0 (Memory.Address_space.frame_at a 0);
        Alcotest.(check int) "shared after remap" 2
          (Memory.Frame_table.refcount ft (Memory.Address_space.frame_at a 0));
        let kind = Memory.Address_space.write b 0 (Memory.Page.Content.of_int 5) in
        Alcotest.(check bool) "cow break" true (kind = Memory.Address_space.Cow_break);
        Alcotest.(check bool) "a unaffected" true
          (Memory.Page.Content.equal c (Memory.Address_space.read a 0));
        Alcotest.(check bool) "frames diverged" true
          (Memory.Address_space.frame_at a 0 <> Memory.Address_space.frame_at b 0));
    Alcotest.test_case "remap refuses windows" `Quick (fun () ->
        let ft = Memory.Frame_table.create (Sim.Ctx.create ()) in
        let parent = Memory.Address_space.create_root ft ~name:"p" ~pages:8 in
        let w = Memory.Address_space.window parent ~name:"w" ~offset:0 ~pages:4 in
        Alcotest.(check bool) "raises" true
          (try
             Memory.Address_space.remap w 0 (Memory.Address_space.frame_at parent 5);
             false
           with Invalid_argument _ -> true));
    Alcotest.test_case "load and contents round-trip" `Quick (fun () ->
        let ft = Memory.Frame_table.create (Sim.Ctx.create ()) in
        let s = Memory.Address_space.create_root ft ~name:"s" ~pages:8 in
        let data = Array.init 4 (fun i -> Memory.Page.Content.of_int (100 + i)) in
        Memory.Address_space.load s ~offset:2 data;
        let all = Memory.Address_space.contents s in
        Array.iteri
          (fun i c ->
            Alcotest.(check bool) "page matches" true (Memory.Page.Content.equal c all.(2 + i)))
          data);
  ]

let make_ksm_world ?(config = Memory.Ksm.fast_config) () =
  let ctx = Sim.Ctx.create () in
  let engine = Sim.Ctx.engine ctx in
  let ft = Memory.Frame_table.create ctx in
  let ksm = Memory.Ksm.create ~config ctx ft in
  (engine, ft, ksm)

let run_full_pass engine ksm n =
  Memory.Ksm.start ksm;
  let target = Memory.Ksm.full_scans ksm + n in
  let guard = ref 0 in
  while Memory.Ksm.full_scans ksm < target && !guard < 1_000_000 do
    ignore (Sim.Engine.run_for engine (Sim.Time.ms 10.));
    incr guard
  done;
  Memory.Ksm.stop ksm

let ksm_tests =
  [
    Alcotest.test_case "identical pages merge" `Quick (fun () ->
        let engine, ft, ksm = make_ksm_world () in
        let a = Memory.Address_space.create_root ft ~name:"a" ~pages:8 in
        let b = Memory.Address_space.create_root ft ~name:"b" ~pages:8 in
        let c = Memory.Page.Content.of_int 77 in
        ignore (Memory.Address_space.write a 1 c);
        ignore (Memory.Address_space.write b 5 c);
        Memory.Ksm.register ksm a;
        Memory.Ksm.register ksm b;
        run_full_pass engine ksm 2;
        Alcotest.(check int) "same frame" (Memory.Address_space.frame_at a 1)
          (Memory.Address_space.frame_at b 5);
        Alcotest.(check bool) "merged count positive" true (Memory.Ksm.pages_merged ksm > 0));
    Alcotest.test_case "different pages stay separate" `Quick (fun () ->
        let engine, ft, ksm = make_ksm_world () in
        let a = Memory.Address_space.create_root ft ~name:"a" ~pages:4 in
        let b = Memory.Address_space.create_root ft ~name:"b" ~pages:4 in
        ignore (Memory.Address_space.write a 0 (Memory.Page.Content.of_int 1));
        ignore (Memory.Address_space.write b 0 (Memory.Page.Content.of_int 2));
        Memory.Ksm.register ksm a;
        Memory.Ksm.register ksm b;
        run_full_pass engine ksm 2;
        Alcotest.(check bool) "frames differ" true
          (Memory.Address_space.frame_at a 0 <> Memory.Address_space.frame_at b 0));
    Alcotest.test_case "nested window pages merge with host pages" `Quick (fun () ->
        (* The CloudSkulk property: an L2 page (window into GuestX RAM)
           merges with an identical page the L0 detector loads. *)
        let engine, ft, ksm = make_ksm_world () in
        let guestx = Memory.Address_space.create_root ft ~name:"guestx" ~pages:64 in
        let l2 = Memory.Address_space.window guestx ~name:"l2" ~offset:32 ~pages:16 in
        let host_buf = Memory.Address_space.create_root ft ~name:"detector" ~pages:4 in
        let c = Memory.Page.Content.of_int 99 in
        ignore (Memory.Address_space.write l2 3 c);
        ignore (Memory.Address_space.write host_buf 0 c);
        Memory.Ksm.register ksm guestx;
        Memory.Ksm.register ksm host_buf;
        run_full_pass engine ksm 2;
        Alcotest.(check int) "merged across levels" (Memory.Address_space.frame_at l2 3)
          (Memory.Address_space.frame_at host_buf 0));
    Alcotest.test_case "registering a window is rejected" `Quick (fun () ->
        let _, ft, ksm = make_ksm_world () in
        let parent = Memory.Address_space.create_root ft ~name:"p" ~pages:8 in
        let w = Memory.Address_space.window parent ~name:"w" ~offset:0 ~pages:4 in
        Alcotest.(check bool) "raises" true
          (try
             Memory.Ksm.register ksm w;
             false
           with Invalid_argument _ -> true));
    Alcotest.test_case "CoW after merge restores divergence" `Quick (fun () ->
        let engine, ft, ksm = make_ksm_world () in
        let a = Memory.Address_space.create_root ft ~name:"a" ~pages:2 in
        let b = Memory.Address_space.create_root ft ~name:"b" ~pages:2 in
        let c = Memory.Page.Content.of_int 5 in
        ignore (Memory.Address_space.write a 0 c);
        ignore (Memory.Address_space.write b 0 c);
        Memory.Ksm.register ksm a;
        Memory.Ksm.register ksm b;
        run_full_pass engine ksm 2;
        let kind = Memory.Address_space.write b 0 (Memory.Page.Content.of_int 6) in
        Alcotest.(check bool) "cow" true (kind = Memory.Address_space.Cow_break);
        Alcotest.(check bool) "a keeps original" true
          (Memory.Page.Content.equal c (Memory.Address_space.read a 0)));
    Alcotest.test_case "re-merge after CoW on next passes" `Quick (fun () ->
        let engine, ft, ksm = make_ksm_world () in
        let a = Memory.Address_space.create_root ft ~name:"a" ~pages:2 in
        let b = Memory.Address_space.create_root ft ~name:"b" ~pages:2 in
        let c = Memory.Page.Content.of_int 5 in
        ignore (Memory.Address_space.write a 0 c);
        ignore (Memory.Address_space.write b 0 c);
        Memory.Ksm.register ksm a;
        Memory.Ksm.register ksm b;
        run_full_pass engine ksm 2;
        ignore (Memory.Address_space.write b 0 c);
        (* same content again *)
        run_full_pass engine ksm 2;
        Alcotest.(check int) "merged again" (Memory.Address_space.frame_at a 0)
          (Memory.Address_space.frame_at b 0));
    Alcotest.test_case "counters: pages_sharing reflects savings" `Quick (fun () ->
        let engine, ft, ksm = make_ksm_world () in
        let a = Memory.Address_space.create_root ft ~name:"a" ~pages:10 in
        let b = Memory.Address_space.create_root ft ~name:"b" ~pages:10 in
        let c = Memory.Page.Content.of_int 1 in
        for i = 0 to 9 do
          ignore (Memory.Address_space.write a i c);
          ignore (Memory.Address_space.write b i c)
        done;
        Memory.Ksm.register ksm a;
        Memory.Ksm.register ksm b;
        run_full_pass engine ksm 2;
        (* 20 identical pages collapse to 1 frame: 19 pages saved *)
        Alcotest.(check bool) "savings >= 19" true (Memory.Ksm.pages_sharing ksm >= 19));
    Alcotest.test_case "time_for_full_pass scales with population" `Quick (fun () ->
        let _, ft, ksm = make_ksm_world ~config:{ pages_to_scan = 10; sleep = Sim.Time.ms 1.; incremental = false } () in
        let a = Memory.Address_space.create_root ft ~name:"a" ~pages:100 in
        Memory.Ksm.register ksm a;
        Alcotest.(check int64) "10 wakeups" (Sim.Time.to_ns (Sim.Time.ms 10.))
          (Sim.Time.to_ns (Memory.Ksm.time_for_full_pass ksm)));
    Alcotest.test_case "unregister mid-pass keeps the cursor position" `Quick (fun () ->
        (* Three 4-page spaces; one scan_once of 6 pages stops mid-b.
           Unregistering c (not yet scanned) must not restart the pass:
           the next 6 pages finish it, and the candidate recorded for a0
           earlier in the pass still merges with b2. *)
        let _, ft, ksm =
          make_ksm_world ~config:{ pages_to_scan = 6; sleep = Sim.Time.ms 1.; incremental = false } ()
        in
        let mk name base =
          let s = Memory.Address_space.create_root ft ~name ~pages:4 in
          for i = 0 to 3 do
            ignore (Memory.Address_space.write s i (Memory.Page.Content.of_int (base + i)))
          done;
          Memory.Ksm.register ksm s;
          s
        in
        let a = mk "a" 100 and b = mk "b" 200 and c = mk "c" 300 in
        let x = Memory.Page.Content.of_int 7777 in
        ignore (Memory.Address_space.write a 0 x);
        ignore (Memory.Address_space.write b 2 x);
        Memory.Ksm.scan_once ksm;
        (* cursor is at b, page 2 *)
        Memory.Ksm.unregister ksm c;
        Memory.Ksm.scan_once ksm;
        Alcotest.(check int) "exactly one full pass" 1 (Memory.Ksm.full_scans ksm);
        Alcotest.(check int) "a0/b2 merged" (Memory.Address_space.frame_at a 0)
          (Memory.Address_space.frame_at b 2);
        Alcotest.(check bool) "merge counted" true (Memory.Ksm.pages_merged ksm > 0));
    Alcotest.test_case "unregister of the space under the cursor resumes at its successor" `Quick
      (fun () ->
        let _, ft, ksm =
          make_ksm_world ~config:{ pages_to_scan = 6; sleep = Sim.Time.ms 1.; incremental = false } ()
        in
        let mk name base =
          let s = Memory.Address_space.create_root ft ~name ~pages:4 in
          for i = 0 to 3 do
            ignore (Memory.Address_space.write s i (Memory.Page.Content.of_int (base + i)))
          done;
          Memory.Ksm.register ksm s;
          s
        in
        let a = mk "a" 100 and b = mk "b" 200 and c = mk "c" 300 in
        let x = Memory.Page.Content.of_int 8888 in
        ignore (Memory.Address_space.write a 0 x);
        ignore (Memory.Address_space.write c 0 x);
        Memory.Ksm.scan_once ksm;
        (* cursor is at b, page 2; removing b moves it to the start of c *)
        Memory.Ksm.unregister ksm b;
        Memory.Ksm.scan_once ksm;
        Alcotest.(check int) "exactly one full pass" 1 (Memory.Ksm.full_scans ksm);
        Alcotest.(check int) "a0/c0 merged" (Memory.Address_space.frame_at a 0)
          (Memory.Address_space.frame_at c 0));
    Alcotest.test_case "a space registered mid-pass is scanned before the pass completes" `Quick
      (fun () ->
        let _, ft, ksm =
          make_ksm_world ~config:{ pages_to_scan = 2; sleep = Sim.Time.ms 1.; incremental = false } ()
        in
        let a = Memory.Address_space.create_root ft ~name:"a" ~pages:4 in
        for i = 0 to 3 do
          ignore (Memory.Address_space.write a i (Memory.Page.Content.of_int (100 + i)))
        done;
        Memory.Ksm.register ksm a;
        let x = Memory.Page.Content.of_int 9999 in
        ignore (Memory.Address_space.write a 0 x);
        Memory.Ksm.scan_once ksm;
        (* mid-pass: a0 is already in the unstable tree *)
        let b = Memory.Address_space.create_root ft ~name:"b" ~pages:2 in
        ignore (Memory.Address_space.write b 0 (Memory.Page.Content.of_int 200));
        ignore (Memory.Address_space.write b 1 x);
        Memory.Ksm.register ksm b;
        Memory.Ksm.scan_once ksm;
        Memory.Ksm.scan_once ksm;
        Alcotest.(check int) "pass covered the late space" 1 (Memory.Ksm.full_scans ksm);
        Alcotest.(check int) "a0/b1 merged" (Memory.Address_space.frame_at a 0)
          (Memory.Address_space.frame_at b 1));
    Alcotest.test_case "churning pages stay out of the unstable tree until quiescent" `Quick
      (fun () ->
        (* pages_to_scan = population, so each scan_once is one full
           pass. Pass 2 sees a0 and b0 holding identical new content,
           but both changed since pass 1, so the checksum gate keeps
           them out of the unstable tree: no merge until they hold
           still for a pass (pass 3). *)
        let _, ft, ksm =
          make_ksm_world ~config:{ pages_to_scan = 4; sleep = Sim.Time.ms 1.; incremental = false } ()
        in
        let a = Memory.Address_space.create_root ft ~name:"a" ~pages:2 in
        let b = Memory.Address_space.create_root ft ~name:"b" ~pages:2 in
        ignore (Memory.Address_space.write a 0 (Memory.Page.Content.of_int 10));
        ignore (Memory.Address_space.write a 1 (Memory.Page.Content.of_int 11));
        ignore (Memory.Address_space.write b 0 (Memory.Page.Content.of_int 20));
        ignore (Memory.Address_space.write b 1 (Memory.Page.Content.of_int 21));
        Memory.Ksm.register ksm a;
        Memory.Ksm.register ksm b;
        Memory.Ksm.scan_once ksm;
        Alcotest.(check int) "no skips on first sight" 0 (Memory.Ksm.pages_volatile_skipped ksm);
        let y = Memory.Page.Content.of_int 5555 in
        ignore (Memory.Address_space.write a 0 y);
        ignore (Memory.Address_space.write b 0 y);
        Memory.Ksm.scan_once ksm;
        Alcotest.(check int) "both churners skipped" 2 (Memory.Ksm.pages_volatile_skipped ksm);
        Alcotest.(check int) "no merge while volatile" 0 (Memory.Ksm.pages_merged ksm);
        Alcotest.(check bool) "frames still distinct" true
          (Memory.Address_space.frame_at a 0 <> Memory.Address_space.frame_at b 0);
        Memory.Ksm.scan_once ksm;
        Alcotest.(check int) "quiescent pages merge" (Memory.Address_space.frame_at a 0)
          (Memory.Address_space.frame_at b 0);
        Alcotest.(check int) "no further skips" 2 (Memory.Ksm.pages_volatile_skipped ksm));
  ]

(* ---- write observers and the incremental rescan ---- *)

let watcher_tests =
  let open Memory.Address_space in
  [
    Alcotest.test_case "watch_writes sees direct and windowed writes" `Quick (fun () ->
        let ft = Memory.Frame_table.create (Sim.Ctx.create ()) in
        let s = create_root ft ~name:"ram" ~pages:16 in
        let w = window s ~name:"w" ~offset:4 ~pages:8 in
        let obs = Memory.Dirty.create 16 in
        watch_writes s obs;
        ignore (write s 1 (Memory.Page.Content.of_int 1));
        ignore (write w 2 (Memory.Page.Content.of_int 2));
        Alcotest.(check bool) "direct write" true (Memory.Dirty.is_dirty obs 1);
        Alcotest.(check bool) "windowed write at parent index" true
          (Memory.Dirty.is_dirty obs 6);
        Alcotest.(check int) "nothing else" 2 (Memory.Dirty.dirty_count obs);
        unwatch_writes s obs;
        ignore (write s 3 (Memory.Page.Content.of_int 3));
        Alcotest.(check bool) "unwatched" false (Memory.Dirty.is_dirty obs 3));
    Alcotest.test_case "duplicate registration is a no-op; bad length raises" `Quick
      (fun () ->
        let ft = Memory.Frame_table.create (Sim.Ctx.create ()) in
        let s = create_root ft ~name:"ram" ~pages:8 in
        let obs = Memory.Dirty.create 8 in
        watch_writes s obs;
        watch_writes s obs;
        ignore (write s 0 (Memory.Page.Content.of_int 9));
        Alcotest.(check int) "counted once" 1 (Memory.Dirty.dirty_count obs);
        Alcotest.(check bool) "length mismatch raises" true
          (try
             watch_writes s (Memory.Dirty.create 9);
             false
           with Invalid_argument _ -> true));
  ]

let incremental_tests =
  [
    Alcotest.test_case "full scan reuses cached checksums for clean pages" `Quick (fun () ->
        let _, ft, ksm =
          make_ksm_world
            ~config:{ pages_to_scan = 32; sleep = Sim.Time.ms 1.; incremental = false }
            ()
        in
        let s = Memory.Address_space.create_root ft ~name:"s" ~pages:32 in
        for i = 0 to 31 do
          ignore (Memory.Address_space.write s i (Memory.Page.Content.of_int (100 + i)))
        done;
        Memory.Ksm.register ksm s;
        Memory.Ksm.scan_once ksm;
        Alcotest.(check int) "first pass hashes everything" 0
          (Memory.Ksm.pages_rescan_avoided ksm);
        Memory.Ksm.scan_once ksm;
        Alcotest.(check int) "second pass reuses all 32" 32
          (Memory.Ksm.pages_rescan_avoided ksm);
        for i = 0 to 4 do
          ignore (Memory.Address_space.write s i (Memory.Page.Content.of_int (200 + i)))
        done;
        Memory.Ksm.scan_once ksm;
        Alcotest.(check int) "third pass rehashes only the 5 written" (32 + 27)
          (Memory.Ksm.pages_rescan_avoided ksm));
    Alcotest.test_case "incremental mode merges what the full scan merges" `Quick (fun () ->
        let run incremental =
          let _, ft, ksm =
            make_ksm_world
              ~config:{ pages_to_scan = 64; sleep = Sim.Time.ms 1.; incremental }
              ()
          in
          let a = Memory.Address_space.create_root ft ~name:"a" ~pages:8 in
          let b = Memory.Address_space.create_root ft ~name:"b" ~pages:8 in
          for i = 0 to 3 do
            ignore (Memory.Address_space.write a i (Memory.Page.Content.of_int (7 + i)));
            ignore (Memory.Address_space.write b (7 - i) (Memory.Page.Content.of_int (7 + i)))
          done;
          Memory.Ksm.register ksm a;
          Memory.Ksm.register ksm b;
          for _ = 1 to 4 do
            Memory.Ksm.scan_once ksm
          done;
          (match Memory.Ksm.check_invariants ksm with
          | Ok () -> ()
          | Error e -> Alcotest.fail e);
          (Memory.Ksm.pages_merged ksm, Memory.Ksm.pages_sharing ksm)
        in
        let fm, fs = run false and im, is_ = run true in
        Alcotest.(check bool) "full mode merges" true (fm > 0);
        Alcotest.(check int) "same merges" fm im;
        Alcotest.(check int) "same sharing" fs is_);
    Alcotest.test_case "incremental steady state visits only dirtied pages" `Quick (fun () ->
        let telemetry = Sim.Telemetry.create () in
        let ctx = Sim.Ctx.create ~telemetry () in
        let ft = Memory.Frame_table.create ctx in
        let ksm =
          Memory.Ksm.create
            ~config:{ pages_to_scan = 4096; sleep = Sim.Time.ms 1.; incremental = true }
            ctx ft
        in
        let s = Memory.Address_space.create_root ft ~name:"s" ~pages:64 in
        for i = 0 to 63 do
          ignore (Memory.Address_space.write s i (Memory.Page.Content.of_int (1000 + i)))
        done;
        Memory.Ksm.register ksm s;
        let scanned () =
          match Sim.Telemetry.value telemetry "ksm_pages_scanned_total" with
          | Some v -> int_of_float v
          | None -> Alcotest.fail "no ksm_pages_scanned_total series"
        in
        Memory.Ksm.scan_once ksm;
        Alcotest.(check int) "first sweep visits all" 64 (scanned ());
        Alcotest.(check int) "one pass" 1 (Memory.Ksm.full_scans ksm);
        Memory.Ksm.scan_once ksm;
        Alcotest.(check int) "idle sweep visits nothing" 64 (scanned ());
        Alcotest.(check int) "idle sweep is not a pass" 1 (Memory.Ksm.full_scans ksm);
        for i = 10 to 12 do
          ignore (Memory.Address_space.write s i (Memory.Page.Content.of_int (2000 + i)))
        done;
        Memory.Ksm.scan_once ksm;
        (* each dirtied page is seen twice: once as a volatile churner
           (which re-arms it) and once to confirm it has settled - still
           O(dirtied), never O(table) *)
        Alcotest.(check int) "steady state visits only the 3 dirtied" (64 + (2 * 3))
          (scanned ());
        Memory.Ksm.scan_once ksm;
        Alcotest.(check int) "then goes quiet again" (64 + (2 * 3)) (scanned ()));
    Alcotest.test_case "incremental scan finds duplicates written after start" `Quick
      (fun () ->
        let _, ft, ksm =
          make_ksm_world
            ~config:{ pages_to_scan = 64; sleep = Sim.Time.ms 1.; incremental = true }
            ()
        in
        let a = Memory.Address_space.create_root ft ~name:"a" ~pages:8 in
        let b = Memory.Address_space.create_root ft ~name:"b" ~pages:8 in
        for i = 0 to 7 do
          ignore (Memory.Address_space.write a i (Memory.Page.Content.of_int (30 + i)));
          ignore (Memory.Address_space.write b i (Memory.Page.Content.of_int (50 + i)))
        done;
        Memory.Ksm.register ksm a;
        Memory.Ksm.register ksm b;
        Memory.Ksm.scan_once ksm;
        Alcotest.(check int) "nothing to merge yet" 0 (Memory.Ksm.pages_merged ksm);
        let c = Memory.Page.Content.of_int 424242 in
        ignore (Memory.Address_space.write a 2 c);
        ignore (Memory.Address_space.write b 5 c);
        (* the duplicate must hold still for a pass (checksum gate),
           then merge on the next one - all without full rescans *)
        Memory.Ksm.scan_once ksm;
        Memory.Ksm.scan_once ksm;
        Memory.Ksm.scan_once ksm;
        Alcotest.(check int) "late duplicate merged" (Memory.Address_space.frame_at a 2)
          (Memory.Address_space.frame_at b 5);
        match Memory.Ksm.check_invariants ksm with
        | Ok () -> ()
        | Error e -> Alcotest.fail e);
  ]

let file_tests =
  [
    Alcotest.test_case "generated file pages are distinct" `Quick (fun () ->
        let f = Memory.File_image.generate (rng ()) ~name:"f" ~pages:100 in
        Alcotest.(check bool) "distinct" true (Memory.File_image.all_pages_distinct f));
    Alcotest.test_case "mutate_all changes every page" `Quick (fun () ->
        let f = Memory.File_image.generate (rng ()) ~name:"f" ~pages:20 in
        let v2 = Memory.File_image.mutate_all f ~salt:1 in
        for i = 0 to 19 do
          Alcotest.(check bool) "page differs" false
            (Memory.Page.Content.equal (Memory.File_image.content f i)
               (Memory.File_image.content v2 i))
        done;
        Alcotest.(check string) "renamed" "f-v2" (Memory.File_image.name v2));
    Alcotest.test_case "load_into and matches" `Quick (fun () ->
        let ft = Memory.Frame_table.create (Sim.Ctx.create ()) in
        let s = Memory.Address_space.create_root ft ~name:"s" ~pages:32 in
        let f = Memory.File_image.generate (rng ()) ~name:"f" ~pages:8 in
        Memory.File_image.load_into f s ~offset:4;
        Alcotest.(check bool) "matches at 4" true (Memory.File_image.matches f s ~offset:4);
        Alcotest.(check bool) "not at 5" false (Memory.File_image.matches f s ~offset:5));
    Alcotest.test_case "bytes" `Quick (fun () ->
        let f = Memory.File_image.generate (rng ()) ~name:"f" ~pages:100 in
        Alcotest.(check int) "400KB, as the paper sizes File-A" (400 * 1024)
          (Memory.File_image.bytes f));
  ]

let probe_tests =
  [
    Alcotest.test_case "private pages probe fast, merged slow" `Quick (fun () ->
        let ft = Memory.Frame_table.create (Sim.Ctx.create ()) in
        let a = Memory.Address_space.create_root ft ~name:"a" ~pages:10 in
        let b = Memory.Address_space.create_root ft ~name:"b" ~pages:10 in
        for i = 0 to 9 do
          let c = Memory.Page.Content.of_int i in
          ignore (Memory.Address_space.write a i c);
          ignore (Memory.Address_space.write b i c);
          Memory.Address_space.remap b i (Memory.Address_space.frame_at a i)
        done;
        let r = Sim.Rng.create 1 in
        let merged =
          Memory.Write_probe.probe ~params:Memory.Mem_params.noiseless ~rng:r b ~offset:0
            ~pages:10
        in
        Alcotest.(check int) "all cow" 10 merged.Memory.Write_probe.cow_breaks;
        let again =
          Memory.Write_probe.probe ~params:Memory.Mem_params.noiseless ~rng:r b ~offset:0
            ~pages:10
        in
        Alcotest.(check int) "now private" 0 again.Memory.Write_probe.cow_breaks;
        Alcotest.(check bool) "merged slower" true
          Sim.Time.(
            Memory.Write_probe.mean_cost merged > Memory.Write_probe.mean_cost again));
    Alcotest.test_case "probe leaves no identical pages behind" `Quick (fun () ->
        let ft = Memory.Frame_table.create (Sim.Ctx.create ()) in
        let s = Memory.Address_space.create_root ft ~name:"s" ~pages:6 in
        let r = Sim.Rng.create 1 in
        ignore (Memory.Write_probe.probe ~rng:r s ~offset:0 ~pages:6);
        let seen = Hashtbl.create 8 in
        let dup = ref false in
        for i = 0 to 5 do
          let c = Memory.Address_space.read s i in
          let key = Memory.Page.Content.to_int64 c in
          if Hashtbl.mem seen key then dup := true;
          Hashtbl.replace seen key ()
        done;
        Alcotest.(check bool) "no duplicates" false !dup);
    Alcotest.test_case "noiseless costs match parameters" `Quick (fun () ->
        let ft = Memory.Frame_table.create (Sim.Ctx.create ()) in
        let s = Memory.Address_space.create_root ft ~name:"s" ~pages:4 in
        let r = Sim.Rng.create 1 in
        let probe =
          Memory.Write_probe.probe ~params:Memory.Mem_params.noiseless ~rng:r s ~offset:0
            ~pages:4
        in
        Array.iter
          (fun ns -> Alcotest.(check (float 1.)) "400ns" 400. ns)
          (Memory.Write_probe.costs_ns probe));
    Alcotest.test_case "fraction_cow" `Quick (fun () ->
        let ft = Memory.Frame_table.create (Sim.Ctx.create ()) in
        let a = Memory.Address_space.create_root ft ~name:"a" ~pages:4 in
        let b = Memory.Address_space.create_root ft ~name:"b" ~pages:4 in
        let c = Memory.Page.Content.of_int 1 in
        ignore (Memory.Address_space.write a 0 c);
        ignore (Memory.Address_space.write b 0 c);
        Memory.Address_space.remap b 0 (Memory.Address_space.frame_at a 0);
        let r = Sim.Rng.create 1 in
        let probe = Memory.Write_probe.probe ~rng:r b ~offset:0 ~pages:4 in
        Alcotest.(check (float 1e-9)) "1 of 4" 0.25 (Memory.Write_probe.fraction_cow probe));
  ]

let mem_props =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make
         ~name:"dirty bitset agrees with a naive bool-array model under random interleavings"
         ~count:100
         QCheck.(pair small_int (int_range 1 130))
         (fun (seed, n) ->
           (* Drive the word-skipping bitset and a bool array through the
              same random set/clear/fold/drain/collect schedule and demand
              they never disagree. Lengths around the 32-bit word boundary
              are the interesting ones; [n] ranges across several words. *)
           let open Memory.Dirty in
           let d = create n in
           let scratch = create n in
           let model = Array.make n false in
           let r = Sim.Rng.create seed in
           let agree () =
             dirty_count d = Array.fold_left (fun a b -> if b then a + 1 else a) 0 model
             && (let ok = ref true in
                 for i = 0 to n - 1 do
                   if is_dirty d i <> model.(i) then ok := false
                 done;
                 !ok)
             && List.rev (fold_dirty d (fun acc i -> i :: acc) [])
                = List.filter (fun i -> model.(i)) (List.init n Fun.id)
           in
           let ok = ref true in
           for _ = 1 to 300 do
             (match Sim.Rng.int r 5 with
             | 0 ->
               let i = Sim.Rng.int r n in
               set d i;
               model.(i) <- true
             | 1 ->
               clear d;
               Array.fill model 0 n false
             | 2 ->
               (* drain moves the set into scratch and clears the source *)
               drain d ~into:scratch;
               let moved = List.filter (fun i -> model.(i)) (List.init n Fun.id) in
               Array.fill model 0 n false;
               if List.rev (fold_dirty scratch (fun acc i -> i :: acc) []) <> moved then
                 ok := false
             | 3 ->
               let collected = collect_and_clear d in
               let expected = List.filter (fun i -> model.(i)) (List.init n Fun.id) in
               Array.fill model 0 n false;
               if collected <> expected then ok := false
             | _ ->
               let i = Sim.Rng.int r n in
               if is_dirty d i <> model.(i) then ok := false);
             if not (agree ()) then ok := false
           done;
           !ok));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make
         ~name:"ksm tree invariants hold under random register/write/unregister sequences"
         ~count:40
         QCheck.(small_int)
         (fun seed ->
           let ctx = Sim.Ctx.create ~seed () in
           let ft = Memory.Frame_table.create ctx in
           let ksm = Memory.Ksm.create ~config:Memory.Ksm.fast_config ctx ft in
           let r = Sim.Rng.create seed in
           let next_space = ref 0 in
           let registered = ref [] in
           let fresh_space () =
             let s =
               Memory.Address_space.create_root ft
                 ~name:(Printf.sprintf "s%d" !next_space)
                 ~pages:24
             in
             incr next_space;
             (* a small content alphabet so cross-space duplicates are
                common and merges actually happen *)
             for i = 0 to 23 do
               ignore
                 (Memory.Address_space.write s i (Memory.Page.Content.of_int (Sim.Rng.int r 6)))
             done;
             s
           in
           registered := [ fresh_space (); fresh_space () ];
           List.iter (Memory.Ksm.register ksm) !registered;
           let ok = ref true in
           let volatile_floor = ref 0 in
           let check () =
             (match Memory.Ksm.check_invariants ksm with
             | Ok () -> ()
             | Error e ->
               QCheck.Test.fail_reportf "invariant violated (seed %d): %s" seed e);
             (* checksum gate monotonicity: the volatile-skip counter
                never goes backwards *)
             let v = Memory.Ksm.pages_volatile_skipped ksm in
             if v < !volatile_floor then ok := false;
             volatile_floor := v
           in
           for _ = 1 to 120 do
             (match Sim.Rng.int r 6 with
             | 0 ->
               let s = fresh_space () in
               Memory.Ksm.register ksm s;
               registered := s :: !registered
             | 1 -> (
               match !registered with
               | [] -> ()
               | s :: rest ->
                 Memory.Ksm.unregister ksm s;
                 registered := rest)
             | 2 | 3 -> (
               (* random writes churn pages between scans: the checksum
                  gate's food *)
               match !registered with
               | [] -> ()
               | spaces ->
                 let s = List.nth spaces (Sim.Rng.int r (List.length spaces)) in
                 let i = Sim.Rng.int r 24 in
                 ignore
                   (Memory.Address_space.write s i
                      (Memory.Page.Content.of_int (Sim.Rng.int r 6))))
             | _ -> Memory.Ksm.scan_once ksm);
             check ()
           done;
           (* a few full passes at the end settle the merge state, and the
              invariants must survive that too *)
           for _ = 1 to 20 do
             Memory.Ksm.scan_once ksm;
             check ()
           done;
           !ok));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"refcounts never go negative through write storms" ~count:50
         QCheck.(small_int)
         (fun seed ->
           let ft = Memory.Frame_table.create (Sim.Ctx.create ()) in
           let a = Memory.Address_space.create_root ft ~name:"a" ~pages:16 in
           let b = Memory.Address_space.create_root ft ~name:"b" ~pages:16 in
           let r = Sim.Rng.create seed in
           (* randomly write equal contents, merge some, write again *)
           for _ = 1 to 200 do
             let i = Sim.Rng.int r 16 in
             let c = Memory.Page.Content.of_int (Sim.Rng.int r 8) in
             ignore (Memory.Address_space.write a i c);
             ignore (Memory.Address_space.write b i c);
             if Sim.Rng.bool r then
               Memory.Address_space.remap b i (Memory.Address_space.frame_at a i);
             if Sim.Rng.bool r then
               ignore
                 (Memory.Address_space.write b i (Memory.Page.Content.of_int (Sim.Rng.int r 8)))
           done;
           (* every page still readable and every frame refcount >= 1 *)
           let ok = ref true in
           for i = 0 to 15 do
             let fa = Memory.Address_space.frame_at a i in
             let fb = Memory.Address_space.frame_at b i in
             if Memory.Frame_table.refcount ft fa < 1 || Memory.Frame_table.refcount ft fb < 1
             then ok := false
           done;
           !ok));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"ksm merge preserves every space's contents" ~count:20
         QCheck.(small_int)
         (fun seed ->
           let ctx = Sim.Ctx.create ~seed () in
           let engine = Sim.Ctx.engine ctx in
           let ft = Memory.Frame_table.create ctx in
           let ksm = Memory.Ksm.create ~config:Memory.Ksm.fast_config ctx ft in
           let r = Sim.Rng.create seed in
           let spaces =
             List.init 3 (fun k ->
                 Memory.Address_space.create_root ft ~name:(Printf.sprintf "s%d" k) ~pages:32)
           in
           List.iter
             (fun s ->
               for i = 0 to 31 do
                 ignore
                   (Memory.Address_space.write s i (Memory.Page.Content.of_int (Sim.Rng.int r 10)))
               done;
               Memory.Ksm.register ksm s)
             spaces;
           let before = List.map Memory.Address_space.contents spaces in
           Memory.Ksm.start ksm;
           ignore (Sim.Engine.run_for engine (Sim.Time.s 1.));
           Memory.Ksm.stop ksm;
           let after = List.map Memory.Address_space.contents spaces in
           List.for_all2
             (fun b a -> Array.for_all2 Memory.Page.Content.equal b a)
             before after));
  ]

let () =
  Alcotest.run "memory"
    [
      ("page", content_tests);
      ("frame_table", frame_tests);
      ("dirty", dirty_tests);
      ("address_space", space_tests);
      ("write_watchers", watcher_tests);
      ("ksm", ksm_tests);
      ("ksm_incremental", incremental_tests);
      ("file_image", file_tests);
      ("write_probe", probe_tests);
      ("properties", mem_props);
    ]
