(* Tests for the context/harness layer: Sim.Ctx forking semantics,
   deterministic child contexts under Sim.Parallel.map_ctx at any
   worker count, and the experiment registry's flag surface (golden
   --list lines and --help contents). *)

let contains_sub hay needle =
  let n = String.length hay and m = String.length needle in
  if m = 0 then true
  else begin
    let rec scan i = i + m <= n && (String.sub hay i m = needle || scan (i + 1)) in
    scan 0
  end

let draws ctx n =
  let rng = Sim.Ctx.fork_rng ctx in
  List.init n (fun _ -> Sim.Rng.int rng 1_000_000)

(* ---- Ctx forking ---- *)

let ctx_tests =
  [
    Alcotest.test_case "fork replays the seed: two forks draw identically" `Quick (fun () ->
        let parent = Sim.Ctx.create ~seed:5 () in
        let a = Sim.Ctx.fork parent and b = Sim.Ctx.fork parent in
        Alcotest.(check (list int)) "same stream" (draws a 16) (draws b 16));
    Alcotest.test_case "fork matches a fresh create at the same seed" `Quick (fun () ->
        let forked = Sim.Ctx.fork (Sim.Ctx.create ~seed:5 ()) in
        let fresh = Sim.Ctx.create ~seed:5 () in
        Alcotest.(check (list int)) "same stream" (draws fresh 16) (draws forked 16));
    Alcotest.test_case "draining a fork leaves the parent untouched" `Quick (fun () ->
        let undisturbed = draws (Sim.Ctx.create ~seed:5 ()) 16 in
        let parent = Sim.Ctx.create ~seed:5 () in
        ignore (draws (Sim.Ctx.fork parent) 64);
        Alcotest.(check (list int)) "parent stream intact" undisturbed (draws parent 16));
    Alcotest.test_case "with_seed changes the stream and the seed" `Quick (fun () ->
        let parent = Sim.Ctx.create ~seed:5 () in
        let child = Sim.Ctx.with_seed parent 6 in
        Alcotest.(check int) "seed" 6 (Sim.Ctx.seed child);
        Alcotest.(check bool) "different stream" false (draws child 16 = draws parent 16));
    Alcotest.test_case "fork shares sink and faults, not trace" `Quick (fun () ->
        let t = Sim.Telemetry.create () in
        let parent = Sim.Ctx.create ~seed:5 ~telemetry:t ~faults:Sim.Fault.flaky () in
        let child = Sim.Ctx.fork parent in
        Alcotest.(check bool) "sink shared" true
          (match Sim.Ctx.telemetry child with Some x -> x == t | None -> false);
        Alcotest.(check bool) "faults shared" true
          (Sim.Ctx.faults child == Sim.Fault.flaky);
        Alcotest.(check bool) "trace fresh" true
          (not (Sim.Ctx.trace child == Sim.Ctx.trace parent)));
  ]

(* ---- map_ctx child derivation and --jobs independence ---- *)

let parallel_tests =
  [
    Alcotest.test_case "children get seed+i by default" `Quick (fun () ->
        let ctx = Sim.Ctx.create ~seed:100 () in
        let seeds = Sim.Parallel.map_ctx ~ctx ~trials:4 (fun _ c -> Sim.Ctx.seed c) in
        Alcotest.(check (list int)) "derived" [ 100; 101; 102; 103 ] seeds);
    Alcotest.test_case "seed_of overrides the derivation" `Quick (fun () ->
        let ctx = Sim.Ctx.create ~seed:100 () in
        let seeds =
          Sim.Parallel.map_ctx ~seed_of:(fun i -> 7 * i) ~ctx ~trials:3 (fun _ c ->
              Sim.Ctx.seed c)
        in
        Alcotest.(check (list int)) "override" [ 0; 7; 14 ] seeds);
    Alcotest.test_case "child draws are identical at jobs 1, 4 and 0" `Quick (fun () ->
        let batch jobs =
          Sim.Parallel.map_ctx ~jobs ~ctx:(Sim.Ctx.create ~seed:3 ()) ~trials:8
            (fun i c -> (i, draws c 8))
        in
        let j1 = batch 1 in
        Alcotest.(check bool) "jobs 4" true (batch 4 = j1);
        Alcotest.(check bool) "all cores" true (batch 0 = j1));
    Alcotest.test_case "scenario verdicts are jobs-independent" `Slow (fun () ->
        let batch jobs =
          Sim.Parallel.map_ctx ~jobs ~ctx:(Sim.Ctx.create ~seed:1 ()) ~trials:3
            (fun _ child ->
              let sc = Cloudskulk.Scenarios.infected child in
              match Cloudskulk.Dedup_detector.run sc.Cloudskulk.Scenarios.detector_env with
              | Ok o ->
                Cloudskulk.Dedup_detector.verdict_to_string
                  o.Cloudskulk.Dedup_detector.verdict
              | Error e -> e)
        in
        Alcotest.(check (list string)) "same verdicts" (batch 1) (batch 4));
  ]

(* ---- the registry's flag surface ---- *)

(* The registry is a process-global; register the synthetic specs once
   and observe them through list_lines and term evaluation. *)
let seen_seed = ref (-1)
let seen_trials = ref (-1)
let seen_jobs = ref (-1)
let seen_faulty = ref false

let () =
  Harness.Registry.register
    (Harness.Experiment.make ~default_seed:33 ~id:"alpha" ~doc:"first synthetic experiment"
       (fun p ->
         seen_seed := Sim.Ctx.seed p.Harness.Experiment.ctx;
         seen_trials := p.Harness.Experiment.trials;
         seen_jobs := p.Harness.Experiment.jobs;
         seen_faulty := Sim.Ctx.faults p.Harness.Experiment.ctx != Sim.Fault.none));
  Harness.Registry.register
    (Harness.Experiment.make ~id:"beta" ~doc:"second synthetic experiment" (fun _ -> ()))

let eval argv =
  let buf = Buffer.create 1024 in
  let fmt = Format.formatter_of_buffer buf in
  let cmd =
    Cmdliner.Cmd.v
      (Cmdliner.Cmd.info "bench" ~doc:"test registry shell")
      (Harness.Registry.term ~prologue:[])
  in
  let code = Cmdliner.Cmd.eval ~help:fmt ~err:fmt ~argv cmd in
  Format.pp_print_flush fmt ();
  (code, Buffer.contents buf)

let registry_tests =
  [
    Alcotest.test_case "golden --list lines" `Quick (fun () ->
        Alcotest.(check (list string))
          "list"
          [
            "alpha          first synthetic experiment";
            "beta           second synthetic experiment";
          ]
          (Harness.Registry.list_lines ()));
    Alcotest.test_case "golden --help covers the unified flag surface" `Quick (fun () ->
        let code, help = eval [| "bench"; "--help=plain" |] in
        Alcotest.(check int) "exit ok" 0 code;
        List.iter
          (fun flag ->
            Alcotest.(check bool) (flag ^ " documented") true (contains_sub help flag))
          [
            "--only"; "--trials"; "--runs"; "--jobs"; "--seed"; "--faults";
            "--metrics-out"; "--trace-out"; "--list";
          ]);
    Alcotest.test_case "--only runs the spec with its default seed" `Quick (fun () ->
        let code, _ = eval [| "bench"; "--only"; "alpha" |] in
        Alcotest.(check int) "exit ok" 0 code;
        Alcotest.(check int) "default seed" 33 !seen_seed;
        Alcotest.(check int) "default trials" 5 !seen_trials;
        Alcotest.(check int) "default jobs" 1 !seen_jobs;
        Alcotest.(check bool) "no faults" false !seen_faulty);
    Alcotest.test_case "--seed/--trials/--jobs/--faults reach the body" `Quick (fun () ->
        let code, _ =
          eval
            [|
              "bench"; "--only"; "alpha"; "--seed"; "9"; "--trials"; "2"; "--jobs"; "4";
              "--faults"; "lossy";
            |]
        in
        Alcotest.(check int) "exit ok" 0 code;
        Alcotest.(check int) "seed" 9 !seen_seed;
        Alcotest.(check int) "trials" 2 !seen_trials;
        Alcotest.(check int) "jobs" 4 !seen_jobs;
        Alcotest.(check bool) "faulty ctx" true !seen_faulty);
    Alcotest.test_case "unknown --only id is a cli error" `Quick (fun () ->
        let code, err = eval [| "bench"; "--only"; "nonesuch" |] in
        Alcotest.(check int) "cli error" Cmdliner.Cmd.Exit.cli_error code;
        Alcotest.(check bool) "mentions --list" true (contains_sub err "--list"));
    Alcotest.test_case "bad --faults profile is a cli error" `Quick (fun () ->
        let code, _ = eval [| "bench"; "--only"; "alpha"; "--faults"; "nonesuch" |] in
        Alcotest.(check int) "cli error" Cmdliner.Cmd.Exit.cli_error code);
  ]

let () =
  Alcotest.run "harness"
    [
      ("ctx", ctx_tests);
      ("map_ctx", parallel_tests);
      ("registry", registry_tests);
    ]
