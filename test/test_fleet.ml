(* Tests for the sharded fleet: Shard mailbox/exchange and Barrier
   plans, Ctx member forking, migration stream capture/resume, the
   fabric default route, and the two headline properties - partition
   invariance (identical fleet output for any --shards x --jobs
   combination, including telemetry export and detector verdicts) and
   churn conservation (every booted VM is alive, killed, dropped or
   parked at the horizon; no host ever exceeds capacity). *)

let shard_tests =
  [
    Alcotest.test_case "range partitions members contiguously" `Quick (fun () ->
        List.iter
          (fun (members, shards) ->
            let covered = ref 0 in
            for s = 0 to shards - 1 do
              let lo, hi = Sim.Shard.range ~members ~shards s in
              Alcotest.(check bool) "ordered" true (lo <= hi);
              Alcotest.(check int) "contiguous" !covered lo;
              covered := hi;
              for m = lo to hi - 1 do
                Alcotest.(check int) "owner agrees" s (Sim.Shard.owner ~members ~shards m)
              done
            done;
            Alcotest.(check int) "covers all members" members !covered)
          [ (1, 1); (4, 1); (4, 2); (4, 4); (5, 2); (7, 3); (10, 4); (100, 7) ]);
    Alcotest.test_case "exchange drains in (dst, src) order" `Quick (fun () ->
        let ob0 = Sim.Shard.outbox () and ob1 = Sim.Shard.outbox () in
        Sim.Shard.post ob1 ~src:3 ~dst:0 "c";
        Sim.Shard.post ob0 ~src:1 ~dst:0 "a";
        Sim.Shard.post ob0 ~src:1 ~dst:0 "b";
        Sim.Shard.post ob0 ~src:0 ~dst:2 "d";
        let inboxes = Sim.Shard.exchange [| ob0; ob1 |] ~members:4 in
        Alcotest.(check (list (pair int (list string))))
          "dst 0 sees src 1 then src 3, per-pair FIFO"
          [ (1, [ "a"; "b" ]); (3, [ "c" ]) ]
          inboxes.(0);
        Alcotest.(check (list (pair int (list string)))) "dst 2" [ (0, [ "d" ]) ] inboxes.(2);
        Alcotest.(check (list (pair int (list string)))) "dst 1 empty" [] inboxes.(1);
        Alcotest.(check int) "posted counts" 3 (Sim.Shard.posted ob0));
    Alcotest.test_case "exchange is partition-invariant" `Quick (fun () ->
        (* the same (src, dst, msg) set split across different outbox
           layouts must produce identical inboxes *)
        let post_all obs pick =
          List.iter
            (fun (src, dst, m) -> Sim.Shard.post obs.(pick src) ~src ~dst m)
            [ (2, 0, "x"); (0, 1, "y"); (1, 0, "z"); (2, 1, "w") ]
        in
        let one = [| Sim.Shard.outbox () |] in
        post_all one (fun _ -> 0);
        let three = [| Sim.Shard.outbox (); Sim.Shard.outbox (); Sim.Shard.outbox () |] in
        post_all three (fun src -> src);
        let a = Sim.Shard.exchange one ~members:3 in
        let b = Sim.Shard.exchange three ~members:3 in
        for m = 0 to 2 do
          Alcotest.(check (list (pair int (list string))))
            (Printf.sprintf "member %d" m) a.(m) b.(m)
        done);
    Alcotest.test_case "barrier plan covers the horizon" `Quick (fun () ->
        let plan = Sim.Barrier.plan ~epoch:(Sim.Time.s 15.) ~until:(Sim.Time.s 100.) in
        Alcotest.(check int) "ceil(100/15)" 7 (Sim.Barrier.count plan);
        let last = ref Sim.Time.zero in
        Sim.Barrier.iter plan ~f:(fun ~index:_ ~start ~until ->
            Alcotest.(check bool) "monotone" true (Sim.Time.equal start !last);
            Alcotest.(check bool) "advances" true (Sim.Time.compare until start > 0);
            last := until);
        Alcotest.(check int64) "ends exactly at the horizon"
          (Sim.Time.to_ns (Sim.Time.s 100.))
          (Sim.Time.to_ns !last));
    Alcotest.test_case "barrier rejects degenerate epochs" `Quick (fun () ->
        Alcotest.check_raises "zero epoch"
          (Invalid_argument "Barrier.plan: epoch must be positive") (fun () ->
            ignore (Sim.Barrier.plan ~epoch:Sim.Time.zero ~until:(Sim.Time.s 1.))));
    Alcotest.test_case "fork_member is deterministic and member-distinct" `Quick (fun () ->
        let ctx = Sim.Ctx.create ~seed:7 () in
        let seed_of m = Sim.Ctx.seed (Sim.Ctx.fork_member ctx ~member:m) in
        Alcotest.(check int) "stable" (seed_of 3) (seed_of 3);
        let seeds = List.init 64 seed_of in
        Alcotest.(check int) "64 distinct member seeds" 64
          (List.length (List.sort_uniq Int.compare seeds)));
  ]

(* ---- migration streams ---- *)

let stream_tests =
  [
    Alcotest.test_case "capture/resume moves the guest byte-for-byte" `Quick (fun () ->
        let l0 ctx name =
          let uplink = Net.Fabric.Switch.create ctx ~name:(name ^ "-up") ~link:Net.Link.lan_1gbe in
          Vmm.Hypervisor.create_l0 ctx ~name ~uplink ~addr:("10.0.0." ^ name)
        in
        let ctx = Sim.Ctx.create ~seed:11 () in
        let src_host = l0 ctx "src" in
        let cfg = { (Vmm.Qemu_config.default ~name:"mover") with Vmm.Qemu_config.memory_mb = 2 } in
        let vm =
          match Vmm.Hypervisor.launch src_host cfg with
          | Ok vm -> vm
          | Error e -> Alcotest.fail e
        in
        let ram = Vmm.Vm.ram vm in
        for i = 0 to 99 do
          ignore (Memory.Address_space.write ram (i * 3) (Memory.Page.Content.of_int i))
        done;
        let d = Migration.Stream.capture vm in
        Alcotest.(check string) "name travels" "mover" d.Migration.Stream.vm_name;
        Alcotest.(check int) "only nonzero pages ship" 100 (Migration.Stream.page_count d);
        Alcotest.(check bool) "bytes include headers" true
          (Migration.Stream.bytes d > 100 * 4096);
        let dst_ctx = Sim.Ctx.create ~seed:12 () in
        let dst_host = l0 dst_ctx "dst" in
        (match Migration.Stream.resume dst_host ~incoming_port:9099 d with
        | Error e -> Alcotest.fail e
        | Ok vm' ->
          Alcotest.(check bool) "alive on arrival" true (Vmm.Vm.is_alive vm');
          let ram' = Vmm.Vm.ram vm' in
          Alcotest.(check int) "same size" (Memory.Address_space.pages ram)
            (Memory.Address_space.pages ram');
          for i = 0 to Memory.Address_space.pages ram - 1 do
            if
              not
                (Memory.Page.Content.equal
                   (Memory.Address_space.read ram i)
                   (Memory.Address_space.read ram' i))
            then Alcotest.failf "page %d differs after resume" i
          done));
  ]

(* ---- fabric default route ---- *)

let fabric_tests =
  [
    Alcotest.test_case "unknown addresses fall through to the default route" `Quick
      (fun () ->
        let ctx = Sim.Ctx.create ~seed:3 () in
        let sw = Net.Fabric.Switch.create ctx ~name:"uplink" ~link:Net.Link.lan_1gbe in
        let node = Net.Fabric.Node.create (Sim.Ctx.engine ctx) ~name:"n1" ~addr:"10.0.0.1" in
        Net.Fabric.Node.attach node sw;
        let got = ref [] in
        Net.Fabric.Switch.set_default_route sw
          (Some (fun p -> got := p.Net.Packet.dst.Net.Packet.addr :: !got));
        let send dst =
          Net.Fabric.Switch.send sw
            (Net.Packet.make ~id:0
               ~src:(Net.Packet.endpoint "10.0.0.1" 1)
               ~dst:(Net.Packet.endpoint dst 7) "hi")
        in
        send "fleet-9";
        send "fleet-2";
        ignore (Sim.Engine.run (Sim.Ctx.engine ctx));
        Alcotest.(check (list string)) "routed in send order" [ "fleet-9"; "fleet-2" ]
          (List.rev !got);
        Alcotest.(check int) "routed counter" 2 (Net.Fabric.Switch.packets_routed sw));
  ]

(* ---- the headline properties ---- *)

let small_spec ~hosts ~tenants ~infect ~churn =
  {
    Fleet.Spec.default with
    Fleet.Spec.hosts;
    racks = (if hosts >= 2 then 2 else 1);
    tenants_per_host = tenants;
    infection_rate = infect;
    boot_per_hour = churn;
    kill_per_hour = churn;
    migrate_per_hour = churn;
    duration = Sim.Time.minutes 8.;
  }

(* One full observable surface of a fleet run: rendered report,
   telemetry export, and the SOC detection log. Byte-equality of this
   string across partitions is exactly the CI guarantee. *)
let surface ~shards ~jobs ~seed spec =
  let tel = Sim.Telemetry.create () in
  let ctx = Sim.Ctx.with_telemetry (Sim.Ctx.create ~seed ()) (Some tel) in
  let r = Fleet.World.run ~jobs ~shards ctx spec in
  let detections =
    List.map
      (fun d ->
        Printf.sprintf "%d:%s:%Ld:%Ld:%d" d.Cloudskulk.Fleet_soc.det_host
          d.Cloudskulk.Fleet_soc.det_tenant
          (Sim.Time.to_ns d.Cloudskulk.Fleet_soc.det_at)
          (Sim.Time.to_ns d.Cloudskulk.Fleet_soc.det_ttd)
          d.Cloudskulk.Fleet_soc.det_probes)
      r.Fleet.World.detections
  in
  ( Fleet.World.render r
    ^ "\n--- telemetry ---\n"
    ^ Sim.Telemetry.prometheus_string tel
    ^ "\n--- detections ---\n" ^ String.concat "\n" detections,
    r )

let partition_cases =
  (* (seed, hosts, tenants, infection rate, churn/hour) - includes a
     single-host fleet (streams drop), a high-churn fleet (streams park
     and forward), and an all-infected fleet (detector pressure) *)
  [
    (42, 4, 2, 0.3, 12.);
    (7, 1, 2, 1.0, 20.);
    (19, 5, 1, 0.5, 30.);
    (3, 6, 3, 0.0, 6.);
  ]

let partition_tests =
  [
    Alcotest.test_case "fleet surface is invariant under shards x jobs" `Slow (fun () ->
        List.iter
          (fun (seed, hosts, tenants, infect, churn) ->
            let spec = small_spec ~hosts ~tenants ~infect ~churn in
            let base, _ = surface ~shards:1 ~jobs:1 ~seed spec in
            List.iter
              (fun (shards, jobs) ->
                let got, _ = surface ~shards ~jobs ~seed spec in
                Alcotest.(check string)
                  (Printf.sprintf "seed %d, %d hosts: shards=%d jobs=%d" seed hosts shards
                     jobs)
                  base got)
              [ (1, 4); (2, 1); (2, 4); (4, 1); (4, 4); (3, 2) ])
          partition_cases);
  ]

let conservation_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"churn conserves VMs and respects capacity" ~count:12
         QCheck.(
           quad (int_range 0 1000) (int_range 1 5) (int_range 0 3) (int_range 0 30))
         (fun (seed, hosts, tenants, churn) ->
           let spec =
             small_spec ~hosts ~tenants ~infect:0.25 ~churn:(float_of_int churn)
           in
           let r = Fleet.World.run ~jobs:1 ~shards:2 (Sim.Ctx.create ~seed ()) spec in
           (match Fleet.World.conservation r with
           | Ok () -> ()
           | Error e -> QCheck.Test.fail_reportf "conservation: %s" e);
           Array.iter
             (fun h ->
               if h.Fleet.Host.r_alive > h.Fleet.Host.r_capacity then
                 QCheck.Test.fail_reportf "host %d alive %d > capacity %d"
                   h.Fleet.Host.r_host h.Fleet.Host.r_alive h.Fleet.Host.r_capacity)
             r.Fleet.World.reports;
           (* every stream that left a host arrived somewhere, waits in
              a queue, or was dropped by a fleet with nowhere to put it *)
           Fleet.World.emigrations r
           = Fleet.World.immigrations r + Fleet.World.dropped r + Fleet.World.parked r));
  ]

let detection_tests =
  [
    Alcotest.test_case "infected hosts get detected and reported to the SOC" `Slow
      (fun () ->
        let spec =
          {
            (small_spec ~hosts:4 ~tenants:2 ~infect:1.0 ~churn:2.) with
            Fleet.Spec.duration = Sim.Time.minutes 40.;
          }
        in
        let _, r = surface ~shards:2 ~jobs:1 ~seed:42 spec in
        Alcotest.(check int) "all four hosts infected" 4 (Fleet.World.infected_hosts r);
        Alcotest.(check bool) "most hosts detected" true (Fleet.World.detected_hosts r >= 3);
        Alcotest.(check bool) "SOC saw the verdict reports" true
          (List.length r.Fleet.World.detections >= 3);
        List.iter
          (fun d ->
            Alcotest.(check bool) "positive time-to-detection" true
              (Sim.Time.compare d.Cloudskulk.Fleet_soc.det_ttd Sim.Time.zero > 0))
          r.Fleet.World.detections);
    Alcotest.test_case "spec validation rejects degenerate fleets" `Quick (fun () ->
        let bad f = Result.is_error (Fleet.Spec.validate f) in
        Alcotest.(check bool) "zero hosts" true
          (bad { Fleet.Spec.default with Fleet.Spec.hosts = 0 });
        Alcotest.(check bool) "racks > hosts" true
          (bad { Fleet.Spec.default with Fleet.Spec.hosts = 2; racks = 3 });
        Alcotest.(check bool) "negative infection" true
          (bad { Fleet.Spec.default with Fleet.Spec.infection_rate = -0.1 });
        Alcotest.(check bool) "epoch explosion" true
          (bad
             {
               Fleet.Spec.default with
               Fleet.Spec.duration = Sim.Time.minutes (24. *. 60.);
               fabric_latency = Sim.Time.ms 1.;
             });
        Alcotest.(check bool) "default is fine" true
          (Result.is_ok (Fleet.Spec.validate Fleet.Spec.default)));
  ]

let () =
  Alcotest.run "fleet"
    [
      ("shard", shard_tests);
      ("stream", stream_tests);
      ("fabric", fabric_tests);
      ("partition", partition_tests);
      ("conservation", conservation_tests);
      ("detection", detection_tests);
    ]
