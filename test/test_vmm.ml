(* Tests for the hypervisor substrate: levels, the calibrated cost
   model, process tables, QEMU configs, VM lifecycle, hypervisors
   (including nesting), the monitor command language, and the standard
   topologies. *)

let contains_sub hay needle =
  let n = String.length hay and m = String.length needle in
  if m = 0 then true
  else begin
    let rec scan i = i + m <= n && (String.sub hay i m = needle || scan (i + 1)) in
    scan 0
  end

let level_tests =
  let open Vmm.Level in
  [
    Alcotest.test_case "notation" `Quick (fun () ->
        Alcotest.(check string) "L0" "L0" (to_string l0);
        Alcotest.(check string) "L2" "L2" (to_string l2);
        Alcotest.(check int) "deeper" 3 (to_int (deeper l2)));
    Alcotest.test_case "predicates" `Quick (fun () ->
        Alcotest.(check bool) "L0 not virtualized" false (is_virtualized l0);
        Alcotest.(check bool) "L1 virtualized" true (is_virtualized l1);
        Alcotest.(check bool) "L1 not nested" false (is_nested l1);
        Alcotest.(check bool) "L2 nested" true (is_nested l2));
    Alcotest.test_case "negative depth rejected" `Quick (fun () ->
        Alcotest.(check bool) "raises" true
          (try
             ignore (of_int (-1));
             false
           with Invalid_argument _ -> true));
  ]

(* Paper anchors for the cost model (Tables II and III). *)
let us = Sim.Time.us

let cost_at level op = Vmm.Cost_model.cost_ns ~level op /. 1000.

let within pct expected actual =
  Float.abs (actual -. expected) <= Float.abs expected *. (pct /. 100.)

let check_anchor name op (l0, l1, l2) =
  Alcotest.test_case name `Quick (fun () ->
      let c0 = cost_at Vmm.Level.l0 op in
      let c1 = cost_at Vmm.Level.l1 op in
      let c2 = cost_at Vmm.Level.l2 op in
      Alcotest.(check bool)
        (Printf.sprintf "L0 %.3f ~ %.3f" c0 l0)
        true (within 2. l0 c0);
      Alcotest.(check bool)
        (Printf.sprintf "L1 %.3f ~ %.3f" c1 l1)
        true (within 3. l1 c1);
      Alcotest.(check bool)
        (Printf.sprintf "L2 %.3f ~ %.3f" c2 l2)
        true (within 5. l2 c2))

let find_op name table =
  match List.assoc_opt name table with
  | Some op -> op
  | None -> Alcotest.failf "missing lmbench op %s" name

let cost_model_tests =
  [
    Alcotest.test_case "pure cpu unchanged at L0/L1, derated at L2" `Quick (fun () ->
        let op = Vmm.Cost_model.pure_cpu ~name:"alu" ~cpu:(us 1.) in
        Alcotest.(check (float 0.01)) "L0" 1000. (Vmm.Cost_model.cost_ns ~level:Vmm.Level.l0 op);
        Alcotest.(check (float 0.01)) "L1" 1000. (Vmm.Cost_model.cost_ns ~level:Vmm.Level.l1 op);
        Alcotest.(check (float 0.5)) "L2 +3%" 1030.
          (Vmm.Cost_model.cost_ns ~level:Vmm.Level.l2 op));
    Alcotest.test_case "sw exits multiply with nesting" `Quick (fun () ->
        let op = Vmm.Cost_model.op ~name:"x" ~cpu:Sim.Time.zero ~sw_exits:1. () in
        let c1 = Vmm.Cost_model.cost_ns ~level:Vmm.Level.l1 op in
        let c2 = Vmm.Cost_model.cost_ns ~level:Vmm.Level.l2 op in
        let c3 = Vmm.Cost_model.cost_ns ~level:(Vmm.Level.of_int 3) op in
        Alcotest.(check (float 1.)) "L1 one exit" 1630. c1;
        Alcotest.(check (float 1.)) "L2 = 19x" (1630. *. 19.) c2;
        Alcotest.(check (float 10.)) "L3 = 361x" (1630. *. 361.) c3);
    Alcotest.test_case "hw faults only bite at L2+" `Quick (fun () ->
        let op = Vmm.Cost_model.op ~name:"x" ~cpu:Sim.Time.zero ~hw_faults_l2:10. () in
        Alcotest.(check (float 0.)) "free at L1" 0.
          (Vmm.Cost_model.cost_ns ~level:Vmm.Level.l1 op);
        Alcotest.(check (float 1.)) "13 us at L2" 13000.
          (Vmm.Cost_model.cost_ns ~level:Vmm.Level.l2 op));
    Alcotest.test_case "overhead_vs computes percent" `Quick (fun () ->
        let op = Vmm.Cost_model.op ~name:"x" ~cpu:(us 10.) ~residual_l1:1.5 () in
        Alcotest.(check (float 0.1)) "+50%" 50.
          (Vmm.Cost_model.overhead_vs ~level:Vmm.Level.l1 ~baseline:Vmm.Level.l0 op));
    Alcotest.test_case "calibrate_hw_faults reproduces its anchors" `Quick (fun () ->
        let op =
          Vmm.Cost_model.calibrate_hw_faults ~name:"x" ~l0:(us 10.) ~l1:(us 11.) ~l2:(us 50.) ()
        in
        Alcotest.(check bool) "L0" true (within 1. 10. (cost_at Vmm.Level.l0 op));
        Alcotest.(check bool) "L1" true (within 1. 11. (cost_at Vmm.Level.l1 op));
        Alcotest.(check bool) "L2" true (within 2. 50. (cost_at Vmm.Level.l2 op)));
    Alcotest.test_case "cost_n scales sub-ns ops without truncation" `Quick (fun () ->
        let op = Vmm.Cost_model.pure_cpu_ns ~name:"add" ~ns:0.13 in
        (* 0.13 ns per op; a million of them should be ~130 us *)
        let total = Vmm.Cost_model.cost_n ~level:Vmm.Level.l0 op 1_000_000 in
        Alcotest.(check bool) "about 130 us" true
          (Float.abs (Sim.Time.to_us total -. 130.) < 1.));
    (* Table III anchors. *)
    check_anchor "pipe latency anchors"
      (find_op "pipe latency" Workload.Lmbench.processes)
      (3.49, 6.75, 65.49);
    check_anchor "AF_UNIX anchors"
      (find_op "AF_UNIX sock stream latency" Workload.Lmbench.processes)
      (3.58, 5.37, 43.98);
    check_anchor "fork+exit anchors"
      (find_op "fork+exit" Workload.Lmbench.processes)
      (74.6, 73.65, 242.19);
    check_anchor "fork+execve anchors"
      (find_op "fork+execve" Workload.Lmbench.processes)
      (245.8, 275.05, 588.5);
    check_anchor "fork+sh anchors"
      (find_op "fork+/bin/sh -c" Workload.Lmbench.processes)
      (918.7, 966.67, 1826.0);
    check_anchor "signal install anchors"
      (find_op "signal handler installation" Workload.Lmbench.processes)
      (0.075, 0.096, 0.10);
    check_anchor "protection fault anchors"
      (find_op "protection fault" Workload.Lmbench.processes)
      (0.27, 0.29, 0.32);
  ]

let process_table_tests =
  [
    Alcotest.test_case "spawn assigns increasing pids" `Quick (fun () ->
        let e = Sim.Engine.create () in
        let t = Vmm.Process_table.create e in
        let a = Vmm.Process_table.spawn t ~name:"a" ~cmdline:"a" in
        let b = Vmm.Process_table.spawn t ~name:"b" ~cmdline:"b" in
        Alcotest.(check bool) "increasing" true (b.pid > a.pid));
    Alcotest.test_case "kill removes" `Quick (fun () ->
        let e = Sim.Engine.create () in
        let t = Vmm.Process_table.create e in
        let p = Vmm.Process_table.spawn t ~name:"x" ~cmdline:"x" in
        Alcotest.(check bool) "killed" true (Vmm.Process_table.kill t p.pid);
        Alcotest.(check bool) "gone" false (Vmm.Process_table.exists t p.pid);
        Alcotest.(check bool) "double kill false" false (Vmm.Process_table.kill t p.pid));
    Alcotest.test_case "reassign_pid moves process" `Quick (fun () ->
        let e = Sim.Engine.create () in
        let t = Vmm.Process_table.create e in
        let p = Vmm.Process_table.spawn t ~name:"qemu" ~cmdline:"qemu ..." in
        (match Vmm.Process_table.reassign_pid t ~old_pid:p.pid ~new_pid:9999 with
        | Ok () -> ()
        | Error e -> Alcotest.fail e);
        Alcotest.(check bool) "new pid live" true (Vmm.Process_table.exists t 9999);
        Alcotest.(check bool) "old gone" false (Vmm.Process_table.exists t p.pid));
    Alcotest.test_case "reassign to taken pid fails" `Quick (fun () ->
        let e = Sim.Engine.create () in
        let t = Vmm.Process_table.create e in
        let a = Vmm.Process_table.spawn t ~name:"a" ~cmdline:"a" in
        let b = Vmm.Process_table.spawn t ~name:"b" ~cmdline:"b" in
        Alcotest.(check bool) "error" true
          (Result.is_error (Vmm.Process_table.reassign_pid t ~old_pid:a.pid ~new_pid:b.pid)));
    Alcotest.test_case "grep_cmdline finds qemu" `Quick (fun () ->
        let e = Sim.Engine.create () in
        let t = Vmm.Process_table.create e in
        ignore (Vmm.Process_table.spawn t ~name:"qemu" ~cmdline:"qemu-system-x86_64 -m 1024");
        ignore (Vmm.Process_table.spawn t ~name:"bash" ~cmdline:"/bin/bash");
        Alcotest.(check int) "one hit" 1
          (List.length (Vmm.Process_table.grep_cmdline t ~substring:"qemu-system")));
    Alcotest.test_case "ps_ef renders every process" `Quick (fun () ->
        let e = Sim.Engine.create () in
        let t = Vmm.Process_table.create e in
        ignore (Vmm.Process_table.spawn t ~name:"a" ~cmdline:"cmd-a");
        let out = Vmm.Process_table.ps_ef t in
        Alcotest.(check bool) "contains" true (contains_sub out "cmd-a"));
  ]

let qemu_config_tests =
  [
    Alcotest.test_case "cmdline round-trips" `Quick (fun () ->
        let cfg =
          Vmm.Qemu_config.default ~name:"guest0"
          |> (fun c -> Vmm.Qemu_config.with_hostfwd c [ (2222, 22); (8080, 80) ])
          |> (fun c -> Vmm.Qemu_config.with_nested_vmx c true)
          |> fun c -> Vmm.Qemu_config.with_incoming c ~port:5601
        in
        let line = Vmm.Qemu_config.to_cmdline cfg in
        match Vmm.Qemu_config.of_cmdline line with
        | Error e -> Alcotest.fail e
        | Ok parsed ->
          Alcotest.(check string) "name" "guest0" parsed.Vmm.Qemu_config.vm_name;
          Alcotest.(check int) "memory" 1024 parsed.Vmm.Qemu_config.memory_mb;
          Alcotest.(check bool) "vmx" true parsed.Vmm.Qemu_config.nested_vmx;
          Alcotest.(check (list (pair int int)))
            "hostfwd" [ (2222, 22); (8080, 80) ]
            parsed.Vmm.Qemu_config.netdev.Vmm.Qemu_config.hostfwd;
          Alcotest.(check (option int)) "incoming" (Some 5601) parsed.Vmm.Qemu_config.incoming);
    Alcotest.test_case "non-qemu command rejected" `Quick (fun () ->
        Alcotest.(check bool) "error" true
          (Result.is_error (Vmm.Qemu_config.of_cmdline "/usr/sbin/sshd -D")));
    Alcotest.test_case "migration compatibility checks devices" `Quick (fun () ->
        let a = Vmm.Qemu_config.default ~name:"a" in
        let b = Vmm.Qemu_config.default ~name:"b" in
        Alcotest.(check bool) "same devices ok" true
          (Result.is_ok (Vmm.Qemu_config.migration_compatible ~source:a ~dest:b));
        let c = { b with Vmm.Qemu_config.memory_mb = 2048 } in
        Alcotest.(check bool) "memory mismatch fails" true
          (Result.is_error (Vmm.Qemu_config.migration_compatible ~source:a ~dest:c)));
    Alcotest.test_case "memory_pages" `Quick (fun () ->
        let c = Vmm.Qemu_config.default ~name:"x" in
        Alcotest.(check int) "1GB = 262144 pages" 262144 (Vmm.Qemu_config.memory_pages c));
  ]

let mk_host () =
  let ctx = Sim.Ctx.create () in
  let uplink = Net.Fabric.Switch.create ctx ~name:"up" ~link:Net.Link.lan_1gbe in
  let host =
    Vmm.Hypervisor.create_l0 ~ksm_config:Memory.Ksm.fast_config ctx ~name:"host" ~uplink
      ~addr:"192.168.1.100"
  in
  (ctx, host)

let small_vm ?(name = "vm") ?(memory_mb = 8) ?(vmx = false) () =
  let c = { (Vmm.Qemu_config.default ~name) with Vmm.Qemu_config.memory_mb } in
  Vmm.Qemu_config.with_nested_vmx c vmx

let launch_exn host cfg =
  match Vmm.Hypervisor.launch host cfg with Ok vm -> vm | Error e -> Alcotest.fail e

let vm_tests =
  [
    Alcotest.test_case "launch leaves VM running with a qemu process" `Quick (fun () ->
        let _, host = mk_host () in
        let vm = launch_exn host (small_vm ()) in
        Alcotest.(check bool) "running" true (Vmm.Vm.state vm = Vmm.Vm.Running);
        Alcotest.(check bool) "qemu process exists" true
          (Vmm.Process_table.exists (Vmm.Hypervisor.processes host) (Vmm.Vm.qemu_pid vm));
        Alcotest.(check int) "L1" 1 (Vmm.Level.to_int (Vmm.Vm.level vm)));
    Alcotest.test_case "incoming config waits" `Quick (fun () ->
        let _, host = mk_host () in
        let vm = launch_exn host (Vmm.Qemu_config.with_incoming (small_vm ()) ~port:5601) in
        Alcotest.(check bool) "incoming" true (Vmm.Vm.state vm = Vmm.Vm.Incoming));
    Alcotest.test_case "duplicate name rejected" `Quick (fun () ->
        let _, host = mk_host () in
        ignore (launch_exn host (small_vm ()));
        Alcotest.(check bool) "error" true
          (Result.is_error (Vmm.Hypervisor.launch host (small_vm ()))));
    Alcotest.test_case "lifecycle transitions" `Quick (fun () ->
        let _, host = mk_host () in
        let vm = launch_exn host (small_vm ()) in
        Alcotest.(check bool) "pause" true (Result.is_ok (Vmm.Vm.pause vm));
        Alcotest.(check bool) "resume" true (Result.is_ok (Vmm.Vm.resume vm));
        Alcotest.(check bool) "cannot resume running" true (Result.is_error (Vmm.Vm.resume vm));
        Vmm.Vm.stop vm;
        Alcotest.(check bool) "dead" false (Vmm.Vm.is_alive vm));
    Alcotest.test_case "kill_vm releases resources" `Quick (fun () ->
        let _, host = mk_host () in
        let vm = launch_exn host (small_vm ()) in
        let pid = Vmm.Vm.qemu_pid vm in
        Vmm.Hypervisor.kill_vm host vm;
        Alcotest.(check bool) "stopped" false (Vmm.Vm.is_alive vm);
        Alcotest.(check bool) "process gone" false
          (Vmm.Process_table.exists (Vmm.Hypervisor.processes host) pid);
        Alcotest.(check (option reject)) "not listed" None
          (Option.map ignore (Vmm.Hypervisor.find_vm host "vm")));
    Alcotest.test_case "load_file and file_offset" `Quick (fun () ->
        let _, host = mk_host () in
        let vm = launch_exn host (small_vm ~memory_mb:8 ()) in
        let f = Memory.File_image.generate (Sim.Rng.create 1) ~name:"f" ~pages:10 in
        (match Vmm.Vm.load_file vm f with
        | Ok off ->
          Alcotest.(check (option int)) "offset recorded" (Some off) (Vmm.Vm.file_offset vm "f");
          Alcotest.(check bool) "contents match" true
            (Memory.File_image.matches f (Vmm.Vm.ram vm) ~offset:off)
        | Error e -> Alcotest.fail e);
        Alcotest.(check bool) "duplicate rejected" true (Result.is_error (Vmm.Vm.load_file vm f)));
    Alcotest.test_case "write syscall taps" `Quick (fun () ->
        let _, host = mk_host () in
        let vm = launch_exn host (small_vm ()) in
        let seen = ref [] in
        Vmm.Vm.trap_write_syscalls vm ~name:"t" (fun d -> seen := d :: !seen);
        Vmm.Vm.emit_write vm "hello";
        Vmm.Vm.untrap_write_syscalls vm ~name:"t";
        Vmm.Vm.emit_write vm "unseen";
        Alcotest.(check (list string)) "captured only while trapped" [ "hello" ] !seen);
    Alcotest.test_case "adopt_guest_state moves identity" `Quick (fun () ->
        let _, host = mk_host () in
        let a = launch_exn host (small_vm ~name:"a" ()) in
        let b = launch_exn host (small_vm ~name:"b" ()) in
        Vmm.Vm.set_os_release a "CustomOS 1.0";
        let f = Memory.File_image.generate (Sim.Rng.create 1) ~name:"doc" ~pages:2 in
        ignore (Vmm.Vm.load_file a f);
        Vmm.Vm.adopt_guest_state b ~from:a;
        Alcotest.(check string) "os copied" "CustomOS 1.0" (Vmm.Vm.os_release b);
        Alcotest.(check bool) "file map copied" true (Vmm.Vm.file_offset b "doc" <> None));
  ]

let nested_tests =
  [
    Alcotest.test_case "nested hypervisor requires vmx" `Quick (fun () ->
        let ctx, host = mk_host () in
        let vm = launch_exn host (small_vm ()) in
        Alcotest.(check bool) "refused" true
          (Result.is_error (Vmm.Hypervisor.create_nested ctx ~vm ~name:"hv")));
    Alcotest.test_case "nested launch carves RAM from the guest" `Quick (fun () ->
        let ctx, host = mk_host () in
        let guestx = launch_exn host (small_vm ~name:"guestx" ~memory_mb:16 ~vmx:true ()) in
        let hv =
          match Vmm.Hypervisor.create_nested ctx ~vm:guestx ~name:"hv" with
          | Ok hv -> hv
          | Error e -> Alcotest.fail e
        in
        let nested = launch_exn hv (small_vm ~name:"l2" ~memory_mb:4 ()) in
        Alcotest.(check int) "L2" 2 (Vmm.Level.to_int (Vmm.Vm.level nested));
        Alcotest.(check bool) "window not root" false
          (Memory.Address_space.is_root (Vmm.Vm.ram nested));
        (* writes at L2 surface in GuestX's RAM *)
        let c = Memory.Page.Content.of_int 42 in
        ignore (Memory.Address_space.write (Vmm.Vm.ram nested) 0 c);
        let root, idx = Memory.Address_space.resolve (Vmm.Vm.ram nested) 0 in
        Alcotest.(check bool) "root is guestx ram" true (root == Vmm.Vm.ram guestx);
        Alcotest.(check bool) "content visible" true
          (Memory.Page.Content.equal c (Memory.Address_space.read (Vmm.Vm.ram guestx) idx)));
    Alcotest.test_case "nested launch with vtx plants a VMCS" `Quick (fun () ->
        let ctx, host = mk_host () in
        let guestx = launch_exn host (small_vm ~name:"guestx" ~memory_mb:16 ~vmx:true ()) in
        let hv =
          Result.get_ok (Vmm.Hypervisor.create_nested ctx ~vm:guestx ~name:"hv")
        in
        ignore (launch_exn hv (small_vm ~name:"l2" ~memory_mb:4 ()));
        Alcotest.(check bool) "signature present" true
          (Vmm.Vmcs.scan (Vmm.Vm.ram guestx) <> []));
    Alcotest.test_case "software nesting leaves no VMCS" `Quick (fun () ->
        let ctx, host = mk_host () in
        let guestx = launch_exn host (small_vm ~name:"guestx" ~memory_mb:16 ~vmx:true ()) in
        let hv =
          Result.get_ok
            (Vmm.Hypervisor.create_nested ~use_vtx:false ctx ~vm:guestx ~name:"hv")
        in
        ignore (launch_exn hv (small_vm ~name:"l2" ~memory_mb:4 ()));
        Alcotest.(check (list int)) "no signature" [] (Vmm.Vmcs.scan (Vmm.Vm.ram guestx)));
    Alcotest.test_case "nested allocation exhausts" `Quick (fun () ->
        let ctx, host = mk_host () in
        let guestx = launch_exn host (small_vm ~name:"guestx" ~memory_mb:8 ~vmx:true ()) in
        let hv =
          Result.get_ok (Vmm.Hypervisor.create_nested ctx ~vm:guestx ~name:"hv")
        in
        (* 8 MB guest: 2048 pages, floor at 512 -> at most ~1.5K pages for
           nested VMs; a 8 MB nested VM cannot fit *)
        Alcotest.(check bool) "too big" true
          (Result.is_error (Vmm.Hypervisor.launch hv (small_vm ~name:"big" ~memory_mb:8 ()))));
    Alcotest.test_case "vmcs signature detection is specific" `Quick (fun () ->
        let r = Sim.Rng.create 99 in
        let false_hits = ref 0 in
        for _ = 1 to 10_000 do
          if Vmm.Vmcs.is_signature (Memory.Page.Content.random r) then incr false_hits
        done;
        Alcotest.(check int) "no false positives in 10k random pages" 0 !false_hits);
  ]

let monitor_tests =
  let exec vm cmd =
    match Vmm.Monitor.execute vm cmd with
    | Vmm.Monitor.Ok_text s -> s
    | Vmm.Monitor.Error_text e -> Alcotest.failf "monitor error: %s" e
    | Vmm.Monitor.Quit -> "quit"
  in
  let contains = contains_sub in
  [
    Alcotest.test_case "info status reflects state" `Quick (fun () ->
        let _, host = mk_host () in
        let vm = launch_exn host (small_vm ()) in
        Alcotest.(check bool) "running" true (contains (exec vm "info status") "running");
        ignore (exec vm "stop");
        Alcotest.(check bool) "paused" true (contains (exec vm "info status") "paused");
        ignore (exec vm "cont");
        Alcotest.(check bool) "running again" true (contains (exec vm "info status") "running"));
    Alcotest.test_case "info qtree shows devices" `Quick (fun () ->
        let _, host = mk_host () in
        let vm = launch_exn host (small_vm ()) in
        let out = exec vm "info qtree" in
        Alcotest.(check bool) "nic" true (contains out "virtio-net-pci");
        Alcotest.(check bool) "disk" true (contains out "virtio-blk-pci"));
    Alcotest.test_case "info mtree shows memory size" `Quick (fun () ->
        let _, host = mk_host () in
        let vm = launch_exn host (small_vm ~memory_mb:8 ()) in
        Alcotest.(check bool) "8 MB" true (contains (exec vm "info mtree") "size 8 MB"));
    Alcotest.test_case "info network shows hostfwd" `Quick (fun () ->
        let _, host = mk_host () in
        let cfg = Vmm.Qemu_config.with_hostfwd (small_vm ()) [ (2222, 22) ] in
        let vm = launch_exn host cfg in
        Alcotest.(check bool) "rule rendered" true
          (contains (exec vm "info network") "hostfwd tcp::2222->:22"));
    Alcotest.test_case "identity topics answer" `Quick (fun () ->
        let _, host = mk_host () in
        let vm = launch_exn host (small_vm ()) in
        Alcotest.(check string) "name" "vm" (exec vm "info name");
        Alcotest.(check bool) "version" true (contains (exec vm "info version") "2.9");
        Alcotest.(check bool) "kvm" true (contains (exec vm "info kvm") "enabled");
        let uuid1 = exec vm "info uuid" in
        Alcotest.(check string) "uuid stable" uuid1 (exec vm "info uuid"));
    Alcotest.test_case "monitor commands consume a little virtual time" `Quick (fun () ->
        let ctx, host = mk_host () in
        let vm = launch_exn host (small_vm ()) in
        let before = Sim.Engine.now (Sim.Ctx.engine ctx) in
        ignore (exec vm "info status");
        Alcotest.(check bool) "clock advanced" true
          Sim.Time.(Sim.Engine.now (Sim.Ctx.engine ctx) > before));
    Alcotest.test_case "unknown commands and topics fail" `Quick (fun () ->
        let _, host = mk_host () in
        let vm = launch_exn host (small_vm ()) in
        (match Vmm.Monitor.execute vm "info nonsense" with
        | Vmm.Monitor.Error_text _ -> ()
        | _ -> Alcotest.fail "expected error");
        match Vmm.Monitor.execute vm "frobnicate" with
        | Vmm.Monitor.Error_text _ -> ()
        | _ -> Alcotest.fail "expected error");
    Alcotest.test_case "quit stops the VM" `Quick (fun () ->
        let _, host = mk_host () in
        let vm = launch_exn host (small_vm ()) in
        (match Vmm.Monitor.execute vm "quit" with
        | Vmm.Monitor.Quit -> ()
        | _ -> Alcotest.fail "expected quit");
        Alcotest.(check bool) "stopped" false (Vmm.Vm.is_alive vm));
    Alcotest.test_case "migrate without backend errors" `Quick (fun () ->
        let _, host = mk_host () in
        let vm = launch_exn host (small_vm ()) in
        match Vmm.Monitor.execute vm "migrate tcp:1.2.3.4:5600" with
        | Vmm.Monitor.Error_text e ->
          Alcotest.(check bool) "mentions backend" true (contains e "backend")
        | _ -> Alcotest.fail "expected error");
    Alcotest.test_case "bad migration uri rejected" `Quick (fun () ->
        let _, host = mk_host () in
        let vm = launch_exn host (small_vm ()) in
        match Vmm.Monitor.execute vm "migrate fd:3" with
        | Vmm.Monitor.Error_text _ -> ()
        | _ -> Alcotest.fail "expected error");
  ]

let disk_tests =
  [
    Alcotest.test_case "qcow2 starts thin, raw starts full" `Quick (fun () ->
        let q = Vmm.Disk_image.create ~name:"a.qcow2" ~format:Vmm.Disk_image.Qcow2 ~virtual_size_gb:20. in
        let r = Vmm.Disk_image.create ~name:"b.raw" ~format:Vmm.Disk_image.Raw ~virtual_size_gb:1. in
        Alcotest.(check bool) "thin" true
          (Vmm.Disk_image.allocated_bytes q < 1024 * 1024);
        Alcotest.(check int) "full" (1024 * 1024 * 1024) (Vmm.Disk_image.allocated_bytes r));
    Alcotest.test_case "guest writes allocate, capped at virtual size" `Quick (fun () ->
        let img =
          Vmm.Disk_image.create ~name:"c.qcow2" ~format:Vmm.Disk_image.Qcow2
            ~virtual_size_gb:0.001
        in
        let before = Vmm.Disk_image.allocated_bytes img in
        Vmm.Disk_image.guest_write img ~bytes:(512 * 1024);
        Alcotest.(check bool) "grew" true (Vmm.Disk_image.allocated_bytes img > before);
        Vmm.Disk_image.guest_write img ~bytes:(100 * 1024 * 1024);
        Alcotest.(check bool) "capped" true
          (Vmm.Disk_image.allocated_bytes img
          <= Vmm.Disk_image.virtual_size_bytes img + Vmm.Disk_image.cluster_bytes));
    Alcotest.test_case "qemu-img info round-trips the virtual size" `Quick (fun () ->
        let img =
          Vmm.Disk_image.create ~name:"d.qcow2" ~format:Vmm.Disk_image.Qcow2 ~virtual_size_gb:20.
        in
        match Vmm.Disk_image.parse_virtual_size (Vmm.Disk_image.qemu_img_info img) with
        | Ok gb -> Alcotest.(check (float 0.01)) "20G" 20. gb
        | Error e -> Alcotest.fail e);
    Alcotest.test_case "hypervisor owns one image per file name" `Quick (fun () ->
        let _, host = mk_host () in
        let vm = launch_exn host (small_vm ()) in
        (match Vmm.Hypervisor.image host "vm.qcow2" with
        | Some img -> Alcotest.(check bool) "same object" true (img == Vmm.Vm.disk vm)
        | None -> Alcotest.fail "image missing");
        Alcotest.(check bool) "absent image errors" true
          (Result.is_error (Vmm.Hypervisor.qemu_img_info host "nope.qcow2")));
    Alcotest.test_case "disk_write shows up in blockstats" `Quick (fun () ->
        let _, host = mk_host () in
        let vm = launch_exn host (small_vm ()) in
        Vmm.Vm.disk_write vm ~bytes:(256 * 1024);
        let out = Vmm.Monitor.execute_exn vm "info blockstats" in
        Alcotest.(check bool) "wr_operations=1" true (contains_sub out "wr_operations=1");
        Alcotest.(check bool) "allocated grew" true
          (Vmm.Disk_image.allocated_bytes (Vmm.Vm.disk vm) >= 256 * 1024));
  ]

(* Property tests for the monitor command language: [execute] is a
   total function over arbitrary input lines, and the dispatch table
   stays in sync with [help_text]. *)
let monitor_property_tests =
  (* first words the dispatcher recognises; anything else must come
     back as a polite unknown-command error *)
  let known_heads =
    [
      "help"; "info"; "migrate"; "migrate_cancel"; "migrate_recover"; "migrate_set_speed";
      "stop"; "cont"; "quit";
    ]
  in
  let vocab_token =
    QCheck.Gen.oneofl
      (known_heads
      @ [ "status"; "qtree"; "mem"; "uuid"; "-d"; "tcp:1.2.3.4:5600"; "fd:3"; "1g"; "bogus" ])
  in
  let garbage_token = QCheck.Gen.(string_size ~gen:printable (int_range 0 12)) in
  let line_gen =
    QCheck.Gen.(
      frequency
        [
          (3, map (String.concat " ") (list_size (int_range 0 4) vocab_token));
          (2, map (String.concat " ") (list_size (int_range 0 4) garbage_token));
          (1, garbage_token);
        ])
  in
  let arbitrary_line = QCheck.make ~print:(Printf.sprintf "%S") line_gen in
  let is_unknown_error = function
    | Vmm.Monitor.Error_text e ->
      contains_sub e "unknown command" || contains_sub e "unknown topic"
    | Vmm.Monitor.Ok_text _ | Vmm.Monitor.Quit -> false
  in
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"execute never raises on arbitrary input" ~count:300
         arbitrary_line (fun line ->
           (* one shared VM: a generated "quit" stops it, and execute
              must keep answering (with errors) on the dead VM too *)
           let _, host = mk_host () in
           let vm = launch_exn host (small_vm ()) in
           ignore (Vmm.Monitor.execute vm line);
           true));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"unrecognised first words are unknown-command errors" ~count:200
         arbitrary_line (fun line ->
           let _, host = mk_host () in
           let vm = launch_exn host (small_vm ()) in
           match
             List.filter (fun w -> not (String.equal w "")) (String.split_on_char ' ' line)
           with
           | [] -> Vmm.Monitor.execute vm line = Vmm.Monitor.Ok_text ""
           | head :: _ when not (List.mem head known_heads) ->
             is_unknown_error (Vmm.Monitor.execute vm line)
           | _ :: _ -> true));
    Alcotest.test_case "every help_text command has an accepted spelling" `Quick (fun () ->
        let _, host = mk_host () in
        let vm = launch_exn host (small_vm ()) in
        let canonical lhs =
          (* turn a help synopsis into one concrete invocation *)
          let toks =
            List.filter
              (fun w -> not (String.equal w "") && not (String.equal w "[-d]"))
              (String.split_on_char ' ' lhs)
          in
          let toks = List.map (fun w -> if String.equal w "uri" then "tcp:1.2.3.4:5600" else w) toks in
          match toks with
          | [ "migrate_set_speed" ] -> "migrate_set_speed 1g"
          | toks -> String.concat " " toks
        in
        String.split_on_char '\n' Vmm.Monitor.help_text
        |> List.iter (fun help_line ->
               let lhs =
                 match String.index_opt help_line '-' with
                 | Some i when i > 0 -> String.sub help_line 0 i
                 | _ -> help_line
               in
               let cmd = canonical lhs in
               (* "quit" would stop the shared VM; it has its own test *)
               if not (String.equal cmd "quit") then
                 match Vmm.Monitor.execute vm cmd with
                 | resp when is_unknown_error resp ->
                   Alcotest.failf "help_text advertises %S but dispatch rejects it" cmd
                 | _ -> ());
        (match Vmm.Monitor.execute vm "quit" with
        | Vmm.Monitor.Quit -> ()
        | _ -> Alcotest.fail "quit did not Quit");
        (* dispatch stays total after the VM dies *)
        match Vmm.Monitor.execute vm "info status" with
        | Vmm.Monitor.Ok_text _ | Vmm.Monitor.Error_text _ -> ()
        | Vmm.Monitor.Quit -> Alcotest.fail "dead VM quit again");
  ]

let layers_tests =
  [
    Alcotest.test_case "bare_metal runs at L0" `Quick (fun () ->
        let env = Vmm.Layers.bare_metal ~ksm_config:Memory.Ksm.fast_config ~workspace_mb:8 (Sim.Ctx.create ()) in
        Alcotest.(check int) "L0" 0 (Vmm.Level.to_int env.Vmm.Layers.exec_level);
        Alcotest.(check bool) "no vm" true (env.Vmm.Layers.exec_vm = None));
    Alcotest.test_case "single_guest runs at L1" `Quick (fun () ->
        let config = { (Vmm.Qemu_config.default ~name:"guest0") with Vmm.Qemu_config.memory_mb = 8 } in
        let env = Vmm.Layers.single_guest ~ksm_config:Memory.Ksm.fast_config ~config (Sim.Ctx.create ()) in
        Alcotest.(check int) "L1" 1 (Vmm.Level.to_int env.Vmm.Layers.exec_level));
    Alcotest.test_case "nested_guest runs at L2" `Quick (fun () ->
        let config = { (Vmm.Qemu_config.default ~name:"guest0") with Vmm.Qemu_config.memory_mb = 8 } in
        let env =
          Vmm.Layers.nested_guest ~ksm_config:Memory.Ksm.fast_config ~guestx_memory_mb:64
            ~config (Sim.Ctx.create ())
        in
        Alcotest.(check int) "L2" 2 (Vmm.Level.to_int env.Vmm.Layers.exec_level);
        Alcotest.(check bool) "guestx present" true (env.Vmm.Layers.guestx <> None));
    Alcotest.test_case "migration_pair nested dest is L2 and incoming" `Quick (fun () ->
        let config = { (Vmm.Qemu_config.default ~name:"guest0") with Vmm.Qemu_config.memory_mb = 8 } in
        let mp =
          Vmm.Layers.migration_pair ~ksm_config:Memory.Ksm.fast_config ~config ~nested_dest:true
            (Sim.Ctx.create ())
        in
        Alcotest.(check int) "dest L2" 2 (Vmm.Level.to_int (Vmm.Vm.level mp.Vmm.Layers.mp_dest));
        Alcotest.(check bool) "incoming" true
          (Vmm.Vm.state mp.Vmm.Layers.mp_dest = Vmm.Vm.Incoming));
  ]

let () =
  Alcotest.run "vmm"
    [
      ("level", level_tests);
      ("cost_model", cost_model_tests);
      ("process_table", process_table_tests);
      ("qemu_config", qemu_config_tests);
      ("vm", vm_tests);
      ("nested", nested_tests);
      ("monitor", monitor_tests);
      ("monitor-properties", monitor_property_tests);
      ("disk", disk_tests);
      ("layers", layers_tests);
    ]
