(* Tests for the CloudSkulk core: the CVE dataset (Table I), attacker
   reconnaissance, the four-step installation, stealth tricks, malicious
   services, and the two baseline detectors. *)

let contains_sub hay needle =
  let n = String.length hay and m = String.length needle in
  if m = 0 then true
  else begin
    let rec scan i = i + m <= n && (String.sub hay i m = needle || scan (i + 1)) in
    scan 0
  end

let cve_tests =
  let open Cloudskulk.Cve_data in
  [
    Alcotest.test_case "totals match the paper's Table I" `Quick (fun () ->
        Alcotest.(check int) "VMware" 29 (total Vmware);
        Alcotest.(check int) "VirtualBox" 15 (total Virtualbox);
        Alcotest.(check int) "Xen" 15 (total Xen);
        Alcotest.(check int) "Hyper-V" 14 (total Hyperv);
        Alcotest.(check int) "KVM/QEMU" 23 (total Kvm_qemu);
        Alcotest.(check int) "grand total" 96 grand_total);
    Alcotest.test_case "specific cells" `Quick (fun () ->
        Alcotest.(check int) "VirtualBox 2018" 11 (count Virtualbox ~year:2018);
        Alcotest.(check int) "Xen 2018" 0 (count Xen ~year:2018);
        Alcotest.(check bool) "VENOM is listed" true
          (List.mem "CVE-2015-3456" (cves Kvm_qemu ~year:2015)));
    Alcotest.test_case "no duplicate CVE ids" `Quick (fun () ->
        let all =
          List.concat_map
            (fun hv -> List.concat_map (fun year -> cves hv ~year) years)
            hypervisors
        in
        Alcotest.(check int) "unique" (List.length all)
          (List.length (List.sort_uniq String.compare all)));
    Alcotest.test_case "render_table carries the totals row" `Quick (fun () ->
        let t = render_table () in
        Alcotest.(check bool) "has totals" true (contains_sub t "29");
        Alcotest.(check bool) "has years" true (contains_sub t "2015"));
  ]

(* A compact world: 64 MB target so installs run fast. *)
let target_config ?(name = "guest0") () =
  let c = { (Vmm.Qemu_config.default ~name) with Vmm.Qemu_config.memory_mb = 64 } in
  Vmm.Qemu_config.with_hostfwd c [ (2222, 22) ]

let mk_world ?(seed = 42) () =
  let ctx = Sim.Ctx.create ~seed () in
  let uplink = Net.Fabric.Switch.create ctx ~name:"uplink" ~link:Net.Link.lan_1gbe in
  let host = Vmm.Hypervisor.create_l0 ctx ~name:"host" ~uplink ~addr:"192.168.1.100" in
  let registry = Migration.Registry.create () in
  (ctx, uplink, host, registry)

let launch_target host = Result.get_ok (Vmm.Hypervisor.launch host (target_config ()))

let install ?(config = None) ctx host registry =
  let config =
    match config with
    | Some c -> Some c
    | None -> Some (Cloudskulk.Install.default_config ~target_name:"guest0")
  in
  match Cloudskulk.Install.run ?config ctx ~host ~registry ~target_name:"guest0" with
  | Ok r -> r
  | Error e -> Alcotest.fail ("install failed: " ^ e)

let recon_tests =
  [
    Alcotest.test_case "list_targets finds the running guest" `Quick (fun () ->
        let _, _, host, _ = mk_world () in
        ignore (launch_target host);
        let targets = Cloudskulk.Recon.list_targets host in
        Alcotest.(check int) "one" 1 (List.length targets);
        let f = List.hd targets in
        Alcotest.(check string) "name" "guest0" f.Cloudskulk.Recon.config.Vmm.Qemu_config.vm_name;
        Alcotest.(check int) "memory recovered" 64
          f.Cloudskulk.Recon.config.Vmm.Qemu_config.memory_mb);
    Alcotest.test_case "find_target by name; absent name errors" `Quick (fun () ->
        let _, _, host, _ = mk_world () in
        ignore (launch_target host);
        Alcotest.(check bool) "found" true
          (Result.is_ok (Cloudskulk.Recon.find_target host ~name:"guest0"));
        Alcotest.(check bool) "absent" true
          (Result.is_error (Cloudskulk.Recon.find_target host ~name:"guest1")));
    Alcotest.test_case "monitor probe exposes devices and memory" `Quick (fun () ->
        let _, _, host, _ = mk_world () in
        let vm = launch_target host in
        let p = Cloudskulk.Recon.probe_monitor vm in
        Alcotest.(check bool) "qtree has nic" true
          (contains_sub p.Cloudskulk.Recon.qtree "virtio-net-pci");
        Alcotest.(check bool) "mtree has size" true
          (contains_sub p.Cloudskulk.Recon.mtree "size 64 MB"));
    Alcotest.test_case "verify_config cross-checks ps against monitor" `Quick (fun () ->
        let _, _, host, _ = mk_world () in
        ignore (launch_target host);
        let f = Result.get_ok (Cloudskulk.Recon.find_target host ~name:"guest0") in
        Alcotest.(check bool) "consistent" true (Result.is_ok (Cloudskulk.Recon.verify_config f)));
    Alcotest.test_case "qemu-img recovers the target's disk size" `Quick (fun () ->
        let _, _, host, _ = mk_world () in
        ignore (launch_target host);
        let f = Result.get_ok (Cloudskulk.Recon.find_target host ~name:"guest0") in
        (match Cloudskulk.Recon.probe_disk host f with
        | Ok gb -> Alcotest.(check (float 0.01)) "20G" 20. gb
        | Error e -> Alcotest.fail e));
    Alcotest.test_case "recon ignores dead VMs" `Quick (fun () ->
        let _, _, host, _ = mk_world () in
        let vm = launch_target host in
        Vmm.Hypervisor.kill_vm host vm;
        Alcotest.(check int) "none" 0 (List.length (Cloudskulk.Recon.list_targets host)));
  ]

let install_tests =
  [
    Alcotest.test_case "four steps complete in order" `Quick (fun () ->
        let ctx, _, host, registry = mk_world () in
        ignore (launch_target host);
        let r = install ctx host registry in
        let names =
          List.map (fun s -> Cloudskulk.Install.step_name s.Cloudskulk.Install.step)
            r.Cloudskulk.Install.steps
        in
        Alcotest.(check (list string)) "order"
          [ "recon"; "launch-ritm"; "nested-destination"; "live-migration"; "cleanup" ]
          names);
    Alcotest.test_case "victim ends up at L2 inside GuestX" `Quick (fun () ->
        let ctx, _, host, registry = mk_world () in
        ignore (launch_target host);
        let r = install ctx host registry in
        let ritm = r.Cloudskulk.Install.ritm in
        Alcotest.(check int) "L2" 2 (Vmm.Level.to_int (Vmm.Vm.level ritm.Cloudskulk.Ritm.victim));
        Alcotest.(check bool) "victim running" true
          (Vmm.Vm.state ritm.Cloudskulk.Ritm.victim = Vmm.Vm.Running);
        Alcotest.(check bool) "intact" true (Cloudskulk.Ritm.is_intact ritm);
        (* victim RAM is a window into GuestX's RAM *)
        let root, _ = Memory.Address_space.resolve (Vmm.Vm.ram ritm.Cloudskulk.Ritm.victim) 0 in
        Alcotest.(check bool) "backed by guestx" true
          (root == Vmm.Vm.ram ritm.Cloudskulk.Ritm.guestx));
    Alcotest.test_case "husk is killed and PID spoofed" `Quick (fun () ->
        let ctx, _, host, registry = mk_world () in
        let target = launch_target host in
        let old_pid = Vmm.Vm.qemu_pid target in
        let r = install ctx host registry in
        Alcotest.(check bool) "target dead" false (Vmm.Vm.is_alive target);
        Alcotest.(check int) "old pid" old_pid r.Cloudskulk.Install.old_pid;
        Alcotest.(check int) "guestx wears it" old_pid r.Cloudskulk.Install.new_pid;
        let table = Vmm.Hypervisor.processes host in
        (match Vmm.Process_table.find table old_pid with
        | Some p ->
          Alcotest.(check bool) "qemu process under old pid" true
            (contains_sub p.Vmm.Process_table.cmdline "guestx")
        | None -> Alcotest.fail "pid vanished"));
    Alcotest.test_case "victim's SSH path still works after install" `Quick (fun () ->
        let ctx, uplink, host, registry = mk_world () in
        ignore (launch_target host);
        let r = install ctx host registry in
        let victim = r.Cloudskulk.Install.ritm.Cloudskulk.Ritm.victim in
        let got = ref None in
        (match Vmm.Vm.node victim with
        | Some node -> Net.Fabric.Node.listen node 22 (fun p -> got := Some p.Net.Packet.payload)
        | None -> Alcotest.fail "victim has no node");
        let user = Net.Fabric.Node.create (Sim.Ctx.engine ctx) ~name:"user" ~addr:"203.0.113.5" in
        Net.Fabric.Node.attach user uplink;
        Net.Fabric.Node.send user ~via:uplink
          (Net.Packet.make ~id:1
             ~src:(Net.Packet.endpoint "203.0.113.5" 50000)
             ~dst:(Net.Packet.endpoint "192.168.1.100" 2222)
             "ssh after rootkit");
        ignore (Sim.Engine.run_for (Sim.Ctx.engine ctx) (Sim.Time.s 1.));
        Alcotest.(check (option string)) "delivered to nested victim" (Some "ssh after rootkit")
          !got);
    Alcotest.test_case "impersonation copies the OS identity" `Quick (fun () ->
        let ctx, _, host, registry = mk_world () in
        let target = launch_target host in
        Vmm.Vm.set_os_release target "Fedora 22, Linux 4.4.14-200.fc22.x86_64";
        let r = install ctx host registry in
        let ritm = r.Cloudskulk.Install.ritm in
        Alcotest.(check string) "same os string"
          (Vmm.Vm.os_release ritm.Cloudskulk.Ritm.victim)
          (Vmm.Vm.os_release ritm.Cloudskulk.Ritm.guestx));
    Alcotest.test_case "installation time is dominated by migration" `Quick (fun () ->
        let ctx, _, host, registry = mk_world () in
        ignore (launch_target host);
        let r = install ctx host registry in
        let mig_step =
          List.find
            (fun s -> s.Cloudskulk.Install.step = Cloudskulk.Install.Live_migration)
            r.Cloudskulk.Install.steps
        in
        let duration (s : Cloudskulk.Install.step_report) =
          Sim.Time.to_s (Sim.Time.diff s.Cloudskulk.Install.finished s.Cloudskulk.Install.started)
        in
        let mig_time = duration mig_step in
        let total = Sim.Time.to_s r.Cloudskulk.Install.total_time in
        (* "dominated by the time cost of the live migration": the
           longest step by far, and the majority of the total even on
           this deliberately tiny 64 MB guest *)
        List.iter
          (fun s ->
            if s.Cloudskulk.Install.step <> Cloudskulk.Install.Live_migration then
              Alcotest.(check bool) "migration is the longest step" true
                (mig_time > duration s))
          r.Cloudskulk.Install.steps;
        Alcotest.(check bool) "migration is most of the total" true (mig_time > 0.5 *. total));
    Alcotest.test_case "missing target fails cleanly" `Quick (fun () ->
        let ctx, _, host, registry = mk_world () in
        Alcotest.(check bool) "error" true
          (Result.is_error
             (Cloudskulk.Install.run ctx ~host ~registry ~target_name:"guest0")));
    Alcotest.test_case "post-copy strategy also installs" `Quick (fun () ->
        let ctx, _, host, registry = mk_world () in
        ignore (launch_target host);
        let config =
          {
            (Cloudskulk.Install.default_config ~target_name:"guest0") with
            Cloudskulk.Install.strategy =
              Migration.Wiring.Post_copy Migration.Postcopy.default_config;
          }
        in
        let r = install ~config:(Some config) ctx host registry in
        Alcotest.(check bool) "postcopy result" true (r.Cloudskulk.Install.postcopy <> None);
        Alcotest.(check bool) "intact" true
          (Cloudskulk.Ritm.is_intact r.Cloudskulk.Install.ritm));
  ]

let stealth_tests =
  [
    Alcotest.test_case "mirror_file copies contents byte-for-byte" `Quick (fun () ->
        let ctx, _, host, registry = mk_world () in
        ignore (launch_target host);
        let r = install ctx host registry in
        let ritm = r.Cloudskulk.Install.ritm in
        let victim = ritm.Cloudskulk.Ritm.victim and guestx = ritm.Cloudskulk.Ritm.guestx in
        let f = Memory.File_image.generate (Sim.Rng.create 3) ~name:"secrets" ~pages:8 in
        ignore (Result.get_ok (Vmm.Vm.load_file victim f));
        (match Cloudskulk.Stealth.mirror_file ~guestx ~victim ~name:"secrets" with
        | Ok () -> ()
        | Error e -> Alcotest.fail e);
        match Vmm.Vm.file_offset guestx "secrets" with
        | None -> Alcotest.fail "no mirror"
        | Some off ->
          Alcotest.(check bool) "identical" true
            (Memory.File_image.matches f (Vmm.Vm.ram guestx) ~offset:off));
    Alcotest.test_case "sync_victim_page propagates a change" `Quick (fun () ->
        let ctx, _, host, registry = mk_world () in
        ignore (launch_target host);
        let r = install ctx host registry in
        let ritm = r.Cloudskulk.Install.ritm in
        let victim = ritm.Cloudskulk.Ritm.victim and guestx = ritm.Cloudskulk.Ritm.guestx in
        let f = Memory.File_image.generate (Sim.Rng.create 3) ~name:"doc" ~pages:4 in
        ignore (Result.get_ok (Vmm.Vm.load_file victim f));
        ignore (Result.get_ok (Cloudskulk.Stealth.mirror_file ~guestx ~victim ~name:"doc"));
        (* victim changes page 2 *)
        let voff = Option.get (Vmm.Vm.file_offset victim "doc") in
        let new_c = Memory.Page.Content.of_int 777 in
        ignore (Memory.Address_space.write (Vmm.Vm.ram victim) (voff + 2) new_c);
        ignore (Result.get_ok (Cloudskulk.Stealth.sync_victim_page ~guestx ~victim ~name:"doc" ~page:2));
        let goff = Option.get (Vmm.Vm.file_offset guestx "doc") in
        Alcotest.(check bool) "synced" true
          (Memory.Page.Content.equal new_c
             (Memory.Address_space.read (Vmm.Vm.ram guestx) (goff + 2))));
    Alcotest.test_case "spoof_pid requires the old pid to be free" `Quick (fun () ->
        let ctx, _, host, registry = mk_world () in
        ignore (launch_target host);
        let r = install ctx host registry in
        let guestx = r.Cloudskulk.Install.ritm.Cloudskulk.Ritm.guestx in
        (* try to steal a pid that is still in use *)
        let table = Vmm.Hypervisor.processes host in
        let live =
          List.find
            (fun (p : Vmm.Process_table.proc) -> p.Vmm.Process_table.pid <> Vmm.Vm.qemu_pid guestx)
            (Vmm.Process_table.all table)
        in
        Alcotest.(check bool) "refused" true
          (Result.is_error
             (Cloudskulk.Stealth.spoof_pid ~host ~guestx ~old_pid:live.Vmm.Process_table.pid)));
  ]

let services_tests =
  let setup () =
    let ctx, _, host, registry = mk_world () in
    ignore (launch_target host);
    let r = install ctx host registry in
    (ctx, r.Cloudskulk.Install.ritm)
  in
  [
    Alcotest.test_case "sniffer captures victim traffic" `Quick (fun () ->
        let ctx, ritm = setup () in
        let sniffer = Cloudskulk.Services.start_packet_capture ritm in
        Cloudskulk.Services.victim_send ritm
          ~dst:(Net.Packet.endpoint "203.0.113.9" 80)
          "GET /index.html";
        ignore (Sim.Engine.run_for (Sim.Ctx.engine ctx) (Sim.Time.s 1.));
        let caps = Cloudskulk.Services.captures sniffer in
        Alcotest.(check int) "one" 1 (List.length caps);
        Alcotest.(check string) "payload" "GET /index.html"
          (List.hd caps).Cloudskulk.Services.observed_payload);
    Alcotest.test_case "keylogger records only configured ports" `Quick (fun () ->
        let ctx, ritm = setup () in
        let kl = Cloudskulk.Services.start_keylogger ritm ~ports:[ 22 ] in
        Cloudskulk.Services.victim_send ritm ~dst:(Net.Packet.endpoint "x" 22) "ls -la";
        Cloudskulk.Services.victim_send ritm ~dst:(Net.Packet.endpoint "x" 80) "GET /";
        ignore (Sim.Engine.run_for (Sim.Ctx.engine ctx) (Sim.Time.s 1.));
        Alcotest.(check (list string)) "only ssh" [ "ls -la" ]
          (Cloudskulk.Services.keystrokes kl));
    Alcotest.test_case "encryption hides payloads from the sniffer" `Quick (fun () ->
        let ctx, ritm = setup () in
        let sniffer = Cloudskulk.Services.start_packet_capture ritm in
        Cloudskulk.Services.victim_send ritm ~encrypted:true
          ~dst:(Net.Packet.endpoint "bank" 443)
          "password=hunter2";
        ignore (Sim.Engine.run_for (Sim.Ctx.engine ctx) (Sim.Time.s 1.));
        Alcotest.(check string) "ciphertext only" "<ciphertext>"
          (List.hd (Cloudskulk.Services.captures sniffer)).Cloudskulk.Services.observed_payload);
    Alcotest.test_case "write trap sees plaintext before encryption" `Quick (fun () ->
        let ctx, ritm = setup () in
        let trap = Cloudskulk.Services.trap_guest_writes ritm in
        Cloudskulk.Services.victim_send ritm ~encrypted:true
          ~dst:(Net.Packet.endpoint "bank" 443)
          "password=hunter2";
        ignore (Sim.Engine.run_for (Sim.Ctx.engine ctx) (Sim.Time.s 1.));
        Alcotest.(check (list string)) "plaintext" [ "password=hunter2" ]
          (Cloudskulk.Services.trapped_writes trap);
        Cloudskulk.Services.untrap_guest_writes ritm trap);
    Alcotest.test_case "drop_traffic suppresses a port" `Quick (fun () ->
        let ctx, ritm = setup () in
        let stats = Cloudskulk.Services.drop_traffic ritm ~port:25 in
        let delivered = ref 0 in
        let uplink = Vmm.Hypervisor.uplink ritm.Cloudskulk.Ritm.host in
        let sink = Net.Fabric.Node.create (Sim.Ctx.engine ctx) ~name:"mail" ~addr:"203.0.113.25" in
        Net.Fabric.Node.attach sink uplink;
        Net.Fabric.Node.listen sink 25 (fun _ -> incr delivered);
        Net.Fabric.Node.listen sink 80 (fun _ -> incr delivered);
        Cloudskulk.Services.victim_send ritm ~dst:(Net.Packet.endpoint "203.0.113.25" 25) "MAIL";
        Cloudskulk.Services.victim_send ritm ~dst:(Net.Packet.endpoint "203.0.113.25" 80) "WEB";
        ignore (Sim.Engine.run_for (Sim.Ctx.engine ctx) (Sim.Time.s 1.));
        Alcotest.(check int) "only web arrived" 1 !delivered;
        Alcotest.(check int) "one dropped" 1 stats.Cloudskulk.Services.dropped);
    Alcotest.test_case "rewrite_traffic alters plaintext in flight" `Quick (fun () ->
        let ctx, ritm = setup () in
        let stats =
          Cloudskulk.Services.rewrite_traffic ritm ~port:80 ~pattern:"BUY"
            ~replacement:"SELL"
        in
        let got = ref None in
        let uplink = Vmm.Hypervisor.uplink ritm.Cloudskulk.Ritm.host in
        let sink = Net.Fabric.Node.create (Sim.Ctx.engine ctx) ~name:"web" ~addr:"203.0.113.80" in
        Net.Fabric.Node.attach sink uplink;
        Net.Fabric.Node.listen sink 80 (fun p -> got := Some p.Net.Packet.payload);
        Cloudskulk.Services.victim_send ritm
          ~dst:(Net.Packet.endpoint "203.0.113.80" 80)
          "order: BUY 100";
        ignore (Sim.Engine.run_for (Sim.Ctx.engine ctx) (Sim.Time.s 1.));
        Alcotest.(check (option string)) "tampered" (Some "order: SELL 100") !got;
        Alcotest.(check int) "counted" 1 stats.Cloudskulk.Services.rewritten);
    Alcotest.test_case "parallel malicious OS runs beside the victim" `Quick (fun () ->
        let _, ritm = setup () in
        match Cloudskulk.Services.launch_parallel_os ritm ~name:"spambot" ~memory_mb:8 with
        | Error e -> Alcotest.fail e
        | Ok vm ->
          Alcotest.(check int) "at L2" 2 (Vmm.Level.to_int (Vmm.Vm.level vm));
          Alcotest.(check bool) "running" true (Vmm.Vm.state vm = Vmm.Vm.Running);
          Alcotest.(check bool) "victim unaffected" true
            (Vmm.Vm.state ritm.Cloudskulk.Ritm.victim = Vmm.Vm.Running));
  ]

let baseline_tests =
  [
    Alcotest.test_case "VMCS scan finds a default (VT-x) install" `Quick (fun () ->
        let ctx, _, host, registry = mk_world () in
        ignore (launch_target host);
        ignore (install ctx host registry);
        let r = Cloudskulk.Vmcs_scan.scan_host host in
        Alcotest.(check bool) "detected" true r.Cloudskulk.Vmcs_scan.verdict);
    Alcotest.test_case "VMCS scan misses a software-emulated install" `Quick (fun () ->
        let ctx, _, host, registry = mk_world () in
        ignore (launch_target host);
        let config =
          { (Cloudskulk.Install.default_config ~target_name:"guest0") with
            Cloudskulk.Install.use_vtx = false }
        in
        ignore (install ~config:(Some config) ctx host registry);
        let r = Cloudskulk.Vmcs_scan.scan_host host in
        Alcotest.(check bool) "missed (the paper's evasion)" false
          r.Cloudskulk.Vmcs_scan.verdict);
    Alcotest.test_case "clean host has no VMCS hits" `Quick (fun () ->
        let _, _, host, _ = mk_world () in
        ignore (launch_target host);
        Alcotest.(check bool) "clean" false (Cloudskulk.Vmcs_scan.scan_host host).verdict);
    Alcotest.test_case "VMI fingerprint is evaded by impersonation" `Quick (fun () ->
        let ctx, _, host, registry = mk_world () in
        let target = launch_target host in
        let expected = Cloudskulk.Vmi_fingerprint.take target in
        let r = install ctx host registry in
        let guestx = r.Cloudskulk.Install.ritm.Cloudskulk.Ritm.guestx in
        (* the admin fingerprints what they think is guest0 - really GuestX *)
        let result = Cloudskulk.Vmi_fingerprint.check ~expected guestx in
        (match result with
        | Ok () -> ()
        | Error ms ->
          (* the only thing impersonation cannot hide in this model is
             memory size; the paper's attacker matches it by renting the
             right GuestX - accept either a pass or a memory-only diff *)
          List.iter
            (fun m ->
              Alcotest.(check string) "only memory can differ" "memory_mb"
                m.Cloudskulk.Vmi_fingerprint.field)
            ms));
    Alcotest.test_case "VMI fingerprint catches a lazy attacker" `Quick (fun () ->
        let ctx, _, host, registry = mk_world () in
        let target = launch_target host in
        Vmm.Vm.set_os_release target "CustomerOS 7";
        let expected = Cloudskulk.Vmi_fingerprint.take target in
        let config =
          { (Cloudskulk.Install.default_config ~target_name:"guest0") with
            Cloudskulk.Install.impersonate = false }
        in
        let r = install ~config:(Some config) ctx host registry in
        let guestx = r.Cloudskulk.Install.ritm.Cloudskulk.Ritm.guestx in
        match Cloudskulk.Vmi_fingerprint.check ~expected guestx with
        | Ok () -> Alcotest.fail "should have caught the unimpersonated RITM"
        | Error ms ->
          Alcotest.(check bool) "os_release flagged" true
            (List.exists (fun m -> m.Cloudskulk.Vmi_fingerprint.field = "os_release") ms));
  ]

let () =
  Alcotest.run "cloudskulk"
    [
      ("cve_data", cve_tests);
      ("recon", recon_tests);
      ("install", install_tests);
      ("stealth", stealth_tests);
      ("services", services_tests);
      ("baselines", baseline_tests);
    ]
