(* Differential and model-based tests for the timing-wheel event queue
   (Sim.Event_queue) against two oracles: a sorted-list model and the
   binary-heap reference implementation (Sim.Event_heap). The wheel and
   the heap promise identical observable behaviour - (time, seq) order,
   FIFO on equal timestamps, lazy cancellation - so any divergence under
   random push/cancel/pop/peek interleavings is a bug in one of them. *)

(* ---- operations ---- *)

type op =
  | Push of int  (* timestamp in ns *)
  | Cancel of int  (* index into the list of all pushed handles *)
  | Pop
  | Peek

(* The sorted-list model: (time_ns, seq) kept in pop order. *)
let model_insert (t, s) l =
  let rec go = function
    | [] -> [ (t, s) ]
    | (t', s') :: _ as l when t < t' || (t = t' && s < s') -> (t, s) :: l
    | x :: rest -> x :: go rest
  in
  go l

(* Run the op list against the wheel and the model simultaneously,
   checking every observation. Returns unit or fails the test. *)
let check_against_model ops =
  let q = Sim.Event_queue.create () in
  let model = ref [] in
  let seq = ref 0 in
  let pushed = ref [] (* newest first: (seq, handle) - includes fired ones *) in
  let fail fmt = Printf.ksprintf (fun m -> Alcotest.fail m) fmt in
  List.iter
    (fun op ->
      match op with
      | Push tns ->
        let h = Sim.Event_queue.push q (Sim.Time.ns tns) !seq in
        model := model_insert (tns, !seq) !model;
        pushed := (!seq, h) :: !pushed;
        incr seq
      | Cancel k -> (
        match !pushed with
        | [] -> ()
        | l ->
          (* may pick an already-fired or already-cancelled handle: both
             must be no-ops on the wheel and leave the model unchanged *)
          let s, h = List.nth l (k mod List.length l) in
          Sim.Event_queue.cancel q h;
          model := List.filter (fun (_, s') -> s' <> s) !model)
      | Pop -> (
        match (Sim.Event_queue.pop q, !model) with
        | None, [] -> ()
        | Some (t, v), (tm, sm) :: rest ->
          if Sim.Time.to_ns t <> Int64.of_int tm || v <> sm then
            fail "pop mismatch: wheel (%Ld,%d) model (%d,%d)" (Sim.Time.to_ns t) v tm sm;
          model := rest
        | None, (tm, sm) :: _ -> fail "wheel empty, model has (%d,%d)" tm sm
        | Some (t, v), [] -> fail "wheel has (%Ld,%d), model empty" (Sim.Time.to_ns t) v)
      | Peek -> (
        match (Sim.Event_queue.peek_time q, !model) with
        | None, [] -> ()
        | Some t, (tm, _) :: _ ->
          if Sim.Time.to_ns t <> Int64.of_int tm then
            fail "peek mismatch: wheel %Ld model %d" (Sim.Time.to_ns t) tm
        | None, (tm, _) :: _ -> fail "peek: wheel empty, model head %d" tm
        | Some t, [] -> fail "peek: wheel %Ld, model empty" (Sim.Time.to_ns t)))
    ops;
  if Sim.Event_queue.size q <> List.length !model then
    fail "size mismatch: wheel %d model %d" (Sim.Event_queue.size q) (List.length !model);
  (* drain what is left and compare the tail order *)
  let rec drain () =
    match (Sim.Event_queue.pop q, !model) with
    | None, [] -> ()
    | Some (t, v), (tm, sm) :: rest ->
      if Sim.Time.to_ns t <> Int64.of_int tm || v <> sm then
        fail "drain mismatch: wheel (%Ld,%d) model (%d,%d)" (Sim.Time.to_ns t) v tm sm;
      model := rest;
      drain ()
    | None, (tm, _) :: _ -> fail "drain: wheel dry with model head %d" tm
    | Some (t, _), [] -> fail "drain: wheel overfull at %Ld" (Sim.Time.to_ns t)
  in
  drain ()

(* ---- generators ---- *)

(* Timestamps chosen to stress every placement regime of the wheel:
   level-0 slots with heavy same-tick ties, mid-level windows, and the
   far-future overflow list (beyond 2^46 ns ~ 19.5 h of 64 ns ticks). *)
let time_gen =
  QCheck.Gen.frequency
    [
      (3, QCheck.Gen.int_bound 255);
      (4, QCheck.Gen.int_bound 1_000_000);
      (2, QCheck.Gen.map (fun x -> x * 1_000_003) (QCheck.Gen.int_bound 1_000_000));
      (1, QCheck.Gen.map (fun x -> 100_000_000_000_000 + x) (QCheck.Gen.int_bound 1_000_000));
    ]

let op_gen =
  QCheck.Gen.frequency
    [
      (6, QCheck.Gen.map (fun t -> Push t) time_gen);
      (2, QCheck.Gen.map (fun k -> Cancel k) QCheck.Gen.small_nat);
      (4, QCheck.Gen.return Pop);
      (2, QCheck.Gen.return Peek);
    ]

let print_op = function
  | Push t -> Printf.sprintf "Push %d" t
  | Cancel k -> Printf.sprintf "Cancel %d" k
  | Pop -> "Pop"
  | Peek -> "Peek"

let ops_arbitrary =
  QCheck.make
    ~print:(fun ops -> String.concat "; " (List.map print_op ops))
    (QCheck.Gen.list_size (QCheck.Gen.int_range 0 400) op_gen)

let model_props =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"wheel matches sorted-list model" ~count:300 ops_arbitrary
         (fun ops ->
           check_against_model ops;
           true));
  ]

(* ---- differential fuzz vs the binary-heap reference ---- *)

(* Replays the same op stream against wheel and heap and checks every
   observation agrees. Deterministic seeds make failures reproducible;
   seed coverage includes the regimes that caught two historical wheel
   bugs: a level-0 window that aliased an already-harvested tick
   (stale-window livelock) and an occupied current slot masking a
   nearer slot at the same level (overflow-ordering bug). *)
let differential_drain ~seed ~ops:n_ops =
  let r = Sim.Rng.create seed in
  let wheel = Sim.Event_queue.create () in
  let heap = Sim.Event_heap.create () in
  let wh = ref [] and hh = ref [] in
  let check_eq what a b = Alcotest.(check int64) what a b in
  for _ = 1 to n_ops do
    match Sim.Rng.int r 100 with
    | c when c < 45 ->
      let tns =
        match Sim.Rng.int r 10 with
        | 0 -> 100_000_000_000_000 + Sim.Rng.int r 1_000_000
        | 1 | 2 -> Sim.Rng.int r 256
        | 3 | 4 | 5 -> Sim.Rng.int r 1_000_000
        | _ -> Sim.Rng.int r 1_000_000 * 1_000_003
      in
      let t = Sim.Time.ns tns in
      wh := Sim.Event_queue.push wheel t tns :: !wh;
      hh := Sim.Event_heap.push heap t tns :: !hh
    | c when c < 60 ->
      let nw = List.length !wh in
      if nw > 0 then begin
        let k = Sim.Rng.int r nw in
        Sim.Event_queue.cancel wheel (List.nth !wh k);
        Sim.Event_heap.cancel heap (List.nth !hh k)
      end
    | c when c < 90 -> (
      match (Sim.Event_queue.pop wheel, Sim.Event_heap.pop heap) with
      | None, None -> ()
      | Some (tw, vw), Some (th, vh) ->
        check_eq "pop time" (Sim.Time.to_ns th) (Sim.Time.to_ns tw);
        Alcotest.(check int) "pop payload" vh vw
      | Some _, None -> Alcotest.fail "wheel popped, heap empty"
      | None, Some _ -> Alcotest.fail "heap popped, wheel empty")
    | _ -> (
      Alcotest.(check int) "size" (Sim.Event_heap.size heap) (Sim.Event_queue.size wheel);
      match (Sim.Event_queue.peek_time wheel, Sim.Event_heap.peek_time heap) with
      | None, None -> ()
      | Some tw, Some th -> check_eq "peek" (Sim.Time.to_ns th) (Sim.Time.to_ns tw)
      | _ -> Alcotest.fail "peek presence mismatch")
  done;
  let rec drain () =
    match (Sim.Event_queue.pop wheel, Sim.Event_heap.pop heap) with
    | None, None -> ()
    | Some (tw, vw), Some (th, vh) ->
      check_eq "drain time" (Sim.Time.to_ns th) (Sim.Time.to_ns tw);
      Alcotest.(check int) "drain payload" vh vw;
      drain ()
    | _ -> Alcotest.fail "drain length mismatch"
  in
  drain ()

let differential_tests =
  [
    Alcotest.test_case "wheel = heap over 50 random op streams" `Quick (fun () ->
        for seed = 0 to 49 do
          differential_drain ~seed ~ops:500
        done);
    Alcotest.test_case "wheel = heap, long overflow-heavy stream" `Quick (fun () ->
        (* seed 24 of the original fuzz caught the slot-masking bug in
           the overflow regime; run longer streams across it *)
        for seed = 20 to 29 do
          differential_drain ~seed ~ops:2000
        done);
  ]

(* ---- directed semantics tests ---- *)

let wheel_tests =
  let open Sim.Event_queue in
  [
    Alcotest.test_case "same-timestamp events pop in push order" `Quick (fun () ->
        let q = create () in
        let t = Sim.Time.ms 1. in
        for i = 0 to 99 do
          ignore (push q t i)
        done;
        for i = 0 to 99 do
          match pop q with
          | Some (t', v) ->
            Alcotest.(check int64) "time" (Sim.Time.to_ns t) (Sim.Time.to_ns t');
            Alcotest.(check int) "FIFO" i v
          | None -> Alcotest.fail "queue dry"
        done);
    Alcotest.test_case "far-future events take the overflow path and return" `Quick (fun () ->
        let q = create () in
        (* > 2^46 ns: beyond the wheel horizon, so these sit in the
           overflow list until everything nearer has drained *)
        let far = Sim.Time.ns 200_000_000_000_000 in
        let farther = Sim.Time.ns 200_000_000_001_000 in
        let h_far = push q far 1 in
        ignore (push q farther 2);
        ignore (push q (Sim.Time.ms 1.) 0);
        Alcotest.(check int) "three live" 3 (size q);
        Alcotest.(check (option int)) "near first" (Some 0) (Option.map snd (pop q));
        cancel q h_far;
        Alcotest.(check (option int)) "overflow survivor" (Some 2) (Option.map snd (pop q));
        Alcotest.(check bool) "drained" true (pop q = None));
    Alcotest.test_case "re-armed slot after harvest does not stall" `Quick (fun () ->
        (* regression for the stale-window livelock: pop an event out of
           a level-0 slot, then push new events that map back into the
           same slot (one wheel turn later) and to nearby ticks; each
           pop must terminate and preserve order *)
        let q = create () in
        let tick n = Sim.Time.ns (64 * n) in
        ignore (push q (tick 7935) 0);
        Alcotest.(check (option int)) "first" (Some 0) (Option.map snd (pop q));
        ignore (push q (tick 8191) 1);
        (* same level-0 slot index as 7935, next turn *)
        ignore (push q (tick (7935 + 256 * 256)) 2);
        ignore (push q (tick 7936) 3);
        Alcotest.(check (option int)) "nearest" (Some 3) (Option.map snd (pop q));
        Alcotest.(check (option int)) "same slot next turn" (Some 1) (Option.map snd (pop q));
        Alcotest.(check (option int)) "level above" (Some 2) (Option.map snd (pop q)));
    Alcotest.test_case "cancelled handle reports cancelled; fired too" `Quick (fun () ->
        let q = create () in
        let a = push q (Sim.Time.ms 1.) "a" in
        let b = push q (Sim.Time.ms 2.) "b" in
        Alcotest.(check bool) "a pending" false (cancelled q a);
        cancel q a;
        Alcotest.(check bool) "a cancelled" true (cancelled q a);
        Alcotest.(check (option string)) "b pops" (Some "b") (Option.map snd (pop q));
        Alcotest.(check bool) "b fired = cancelled" true (cancelled q b);
        cancel q b;
        (* no-op *)
        Alcotest.(check int) "empty" 0 (size q));
    Alcotest.test_case "cancel is O(1) bookkeeping: size tracks live events" `Quick (fun () ->
        let q = create () in
        let hs = List.init 64 (fun i -> push q (Sim.Time.us (float_of_int i)) i) in
        List.iteri (fun i h -> if i mod 2 = 0 then cancel q h) hs;
        Alcotest.(check int) "half live" 32 (size q);
        let rec drain acc = match pop q with None -> List.rev acc | Some (_, v) -> drain (v :: acc) in
        Alcotest.(check (list int)) "odd payloads in order" (List.init 32 (fun i -> (2 * i) + 1))
          (drain []));
  ]

(* ---- payload release (GC) ---- *)

(* Popping (or draining) must not leave payload pointers behind in the
   queue's internal arrays: the heap historically retained the last
   popped element in its vacated tail slot, and the wheel purges its
   arenas when the last live event fires. *)
let gc_tests =
  let weak_of v =
    let w = Weak.create 1 in
    Weak.set w 0 (Some v);
    w
  in
  let gone w =
    Gc.full_major ();
    Gc.full_major ();
    Weak.get w 0 = None
  in
  [
    Alcotest.test_case "wheel releases payloads after drain" `Quick (fun () ->
        let q = Sim.Event_queue.create () in
        let p = ref (Bytes.create 64) in
        let w = weak_of !p in
        ignore (Sim.Event_queue.push q (Sim.Time.ms 1.) !p);
        ignore (Sim.Event_queue.push q (Sim.Time.ms 2.) (Bytes.create 8));
        p := Bytes.create 0;
        ignore (Sim.Event_queue.pop q);
        ignore (Sim.Event_queue.pop q);
        Alcotest.(check bool) "payload collectable" true (gone w));
    Alcotest.test_case "heap releases a popped payload while others remain" `Quick (fun () ->
        let q = Sim.Event_heap.create () in
        let p = ref (Bytes.create 64) in
        let w = weak_of !p in
        ignore (Sim.Event_heap.push q (Sim.Time.ms 1.) !p);
        for i = 2 to 4 do
          ignore (Sim.Event_heap.push q (Sim.Time.ms (float_of_int i)) (Bytes.create 8))
        done;
        p := Bytes.create 0;
        ignore (Sim.Event_heap.pop q);
        (* three events still queued: the vacated tail slot must not pin
           the popped payload *)
        Alcotest.(check bool) "payload collectable" true (gone w));
    Alcotest.test_case "heap releases everything when drained" `Quick (fun () ->
        let q = Sim.Event_heap.create () in
        let p = ref (Bytes.create 64) in
        let w = weak_of !p in
        ignore (Sim.Event_heap.push q (Sim.Time.ms 1.) !p);
        p := Bytes.create 0;
        ignore (Sim.Event_heap.pop q);
        Alcotest.(check bool) "payload collectable" true (gone w));
  ]

let () =
  Alcotest.run "event_queue"
    [
      ("model", model_props);
      ("differential", differential_tests);
      ("semantics", wheel_tests);
      ("gc", gc_tests);
    ]
