(* Tests for the Domain-based trial fan-out (Sim.Parallel): ordering,
   exception propagation, and the determinism contract the bench
   harness depends on - running detect trials at --jobs 8 must produce
   exactly the verdicts of --jobs 1. *)

let map_tests =
  [
    Alcotest.test_case "results come back in trial order" `Quick (fun () ->
        Alcotest.(check (list int))
          "squares" (List.init 32 (fun i -> i * i))
          (Sim.Parallel.map ~jobs:4 32 (fun i -> i * i)));
    Alcotest.test_case "parallel result equals sequential result" `Quick (fun () ->
        let f i = (i * 37) mod 11 in
        Alcotest.(check (list int)) "same" (Sim.Parallel.map ~jobs:1 20 f)
          (Sim.Parallel.map ~jobs:3 20 f));
    Alcotest.test_case "more workers than trials" `Quick (fun () ->
        Alcotest.(check (list int)) "three trials" [ 0; 1; 2 ]
          (Sim.Parallel.map ~jobs:16 3 (fun i -> i)));
    Alcotest.test_case "jobs 0 means all cores" `Quick (fun () ->
        Alcotest.(check (list int)) "runs" (List.init 5 Fun.id)
          (Sim.Parallel.map ~jobs:0 5 (fun i -> i)));
    Alcotest.test_case "zero trials" `Quick (fun () ->
        Alcotest.(check (list int)) "empty" [] (Sim.Parallel.map ~jobs:4 0 (fun i -> i)));
    Alcotest.test_case "negative trial count raises" `Quick (fun () ->
        Alcotest.(check bool) "raises" true
          (try
             ignore (Sim.Parallel.map ~jobs:2 (-1) (fun i -> i));
             false
           with Invalid_argument _ -> true));
    Alcotest.test_case "lowest failing trial's exception wins" `Quick (fun () ->
        (* trials 5, 6 and 7 all raise; sequential execution would
           surface trial 5 first, so the parallel runner must too *)
        Alcotest.(check string) "trial 5" "trial-5"
          (try
             ignore
               (Sim.Parallel.map ~jobs:4 8 (fun i ->
                    if i >= 5 then failwith (Printf.sprintf "trial-%d" i) else i));
             "no exception"
           with Failure m -> m));
    Alcotest.test_case "map_seeds derives seed = root_seed + trial index" `Quick (fun () ->
        Alcotest.(check (list int)) "seeds" [ 10; 11; 12; 13 ]
          (Sim.Parallel.map_seeds ~jobs:2 ~root_seed:10 ~trials:4 (fun ~seed -> seed)));
    Alcotest.test_case "available_cores is positive" `Quick (fun () ->
        Alcotest.(check bool) "positive" true (Sim.Parallel.available_cores () > 0));
  ]

(* One detect trial as the bench harness runs it: build both scenarios
   at the trial's seed, return the verdicts. *)
let detect_trial ~seed =
  let verdict sc =
    match Cloudskulk.Dedup_detector.run sc.Cloudskulk.Scenarios.detector_env with
    | Ok o -> Cloudskulk.Dedup_detector.verdict_to_string o.Cloudskulk.Dedup_detector.verdict
    | Error e -> Alcotest.fail ("detector: " ^ e)
  in
  let clean = verdict (Cloudskulk.Scenarios.clean (Sim.Ctx.create ~seed ())) in
  let infected = verdict (Cloudskulk.Scenarios.infected (Sim.Ctx.create ~seed ())) in
  (clean, infected)

(* The faulted variant of the same trial: channel faults injected into
   the install's migration. Everything observable is returned - verdict,
   migration outcome string, install wall time - so the comparison below
   catches any divergence in the fault schedule, not just the verdict. *)
let faulted_trial ~seed =
  match Cloudskulk.Scenarios.infected_result (Sim.Ctx.create ~seed ~faults:Sim.Fault.flaky ()) with
  | Ok sc ->
    let verdict =
      match Cloudskulk.Dedup_detector.run sc.Cloudskulk.Scenarios.detector_env with
      | Ok o -> Cloudskulk.Dedup_detector.verdict_to_string o.Cloudskulk.Dedup_detector.verdict
      | Error e -> "error: " ^ e
    in
    let outcome, total =
      match sc.Cloudskulk.Scenarios.install_report with
      | Some r ->
        ( r.Cloudskulk.Install.migration_outcome,
          Sim.Time.to_string r.Cloudskulk.Install.total_time )
      | None -> ("no report", "-")
    in
    (verdict, outcome ^ " / " ^ total)
  | Error f -> ("install failed", Cloudskulk.Scenarios.install_failure_to_string f)

let determinism_tests =
  [
    Alcotest.test_case "detect verdicts at --jobs 8 equal --jobs 1" `Slow (fun () ->
        let sequential = Sim.Parallel.map_seeds ~jobs:1 ~root_seed:1 ~trials:4 detect_trial in
        let parallel = Sim.Parallel.map_seeds ~jobs:8 ~root_seed:1 ~trials:4 detect_trial in
        Alcotest.(check (list (pair string string))) "identical" sequential parallel;
        Alcotest.(check int) "all trials ran" 4 (List.length parallel));
    Alcotest.test_case "fault-injected trials at --jobs 8 equal --jobs 1" `Slow (fun () ->
        (* each trial owns a private fault RNG forked from its own
           engine, so the injected outages/jitter - and therefore the
           outcome strings and timings - must not depend on scheduling *)
        let sequential = Sim.Parallel.map_seeds ~jobs:1 ~root_seed:1 ~trials:4 faulted_trial in
        let parallel = Sim.Parallel.map_seeds ~jobs:8 ~root_seed:1 ~trials:4 faulted_trial in
        Alcotest.(check (list (pair string string))) "identical" sequential parallel);
  ]

let () =
  Alcotest.run "parallel"
    [ ("map", map_tests); ("determinism", determinism_tests) ]
