(* Regression tests for listing-order determinism: the three functions
   that read a Hashtbl out into a list must return the same ordering no
   matter what insertion history produced the table. These pin the
   fixes flagged by skulklint's hashtbl-order rule. *)

let mk_host () =
  let ctx = Sim.Ctx.create () in
  let uplink = Net.Fabric.Switch.create ctx ~name:"up" ~link:Net.Link.lan_1gbe in
  let host =
    Vmm.Hypervisor.create_l0 ~ksm_config:Memory.Ksm.fast_config ctx ~name:"host" ~uplink
      ~addr:"192.168.1.100"
  in
  (ctx, host)

let launch_exn host cfg =
  match Vmm.Hypervisor.launch host cfg with Ok vm -> vm | Error e -> Alcotest.fail e

let small_vm name =
  { (Vmm.Qemu_config.default ~name) with Vmm.Qemu_config.memory_mb = 8 }

let file rng name = Memory.File_image.generate rng ~name ~pages:3

let load_exn vm f =
  match Vmm.Vm.load_file vm f with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e

let loaded_files_tests =
  [
    Alcotest.test_case "Vm.loaded_files is sorted regardless of load order" `Quick
      (fun () ->
        let rng = Sim.Rng.create 7 in
        let names = [ "zeta"; "alpha"; "mmap_me"; "file_a"; "beta" ] in
        let files = List.map (fun n -> (n, file rng n)) names in
        let listing order =
          let _, host = mk_host () in
          let vm = launch_exn host (small_vm "vm") in
          List.iter (fun n -> load_exn vm (List.assoc n files)) order;
          Vmm.Vm.loaded_files vm
        in
        let a = listing names in
        let b = listing (List.rev names) in
        Alcotest.(check int) "same length" (List.length a) (List.length b);
        List.iter2
          (fun (na, _, pa) (nb, _, pb) ->
            Alcotest.(check string) "same name order" na nb;
            Alcotest.(check int) "same page count" pa pb)
          a b;
        let names_of l = List.map (fun (n, _, _) -> n) l in
        Alcotest.(check (list string))
          "sorted by name"
          (List.sort String.compare (names_of a))
          (names_of a));
  ]

let forwards_tests =
  [
    Alcotest.test_case "Node.forwards is sorted regardless of insertion order" `Quick
      (fun () ->
        let rules =
          [ (5901, "10.0.0.2", 5902); (22, "10.0.0.3", 22); (8080, "10.0.0.4", 80);
            (443, "10.0.0.5", 443); (5902, "10.0.0.6", 5901) ]
        in
        let listing order =
          let ctx = Sim.Ctx.create () in
          let sw = Net.Fabric.Switch.create ctx ~name:"sw" ~link:Net.Link.lan_1gbe in
          let node = Net.Fabric.Node.create (Sim.Ctx.engine ctx) ~name:"n" ~addr:"10.0.0.1" in
          List.iter
            (fun (from_port, addr, port) ->
              Net.Fabric.Node.add_forward node ~from_port
                ~to_:(Net.Packet.endpoint addr port) ~via:sw)
            order;
          Net.Fabric.Node.forwards node
        in
        let a = listing rules in
        let b = listing (List.rev rules) in
        Alcotest.(check (list int))
          "same port order"
          (List.map fst a) (List.map fst b);
        Alcotest.(check (list int))
          "sorted by port"
          (List.sort Int.compare (List.map fst a))
          (List.map fst a);
        List.iter2
          (fun (_, ea) (_, eb) ->
            Alcotest.(check string)
              "same endpoints" ea.Net.Packet.addr eb.Net.Packet.addr)
          a b);
  ]

(* Two tables with identical contents but different Hashtbl insertion
   histories: table B round-trips several PIDs through [reassign_pid],
   which reinserts them and perturbs bucket order without changing the
   table's contents. *)
let process_table_tests =
  [
    Alcotest.test_case "Process_table.all / ps_ef independent of bucket history" `Quick
      (fun () ->
        let spawn_all () =
          let engine = Sim.Engine.create () in
          let table = Vmm.Process_table.create engine in
          List.iter
            (fun name ->
              ignore
                (Vmm.Process_table.spawn table ~name ~cmdline:("/usr/bin/" ^ name)))
            [ "init"; "sshd"; "qemu-kvm"; "cron"; "ksmd"; "qemu-kvm" ];
          table
        in
        let a = spawn_all () in
        let b = spawn_all () in
        let roundtrip pid =
          (match Vmm.Process_table.reassign_pid b ~old_pid:pid ~new_pid:(pid + 1000) with
          | Ok () -> ()
          | Error e -> Alcotest.fail e);
          match Vmm.Process_table.reassign_pid b ~old_pid:(pid + 1000) ~new_pid:pid with
          | Ok () -> ()
          | Error e -> Alcotest.fail e
        in
        List.iter roundtrip [ 300; 303; 301; 305 ];
        let pids t =
          List.map (fun p -> p.Vmm.Process_table.pid) (Vmm.Process_table.all t)
        in
        Alcotest.(check (list int)) "same pid order" (pids a) (pids b);
        Alcotest.(check (list int))
          "sorted by pid"
          (List.sort Int.compare (pids a))
          (pids a);
        Alcotest.(check string)
          "ps_ef renders identically"
          (Vmm.Process_table.ps_ef a)
          (Vmm.Process_table.ps_ef b));
  ]

let () =
  Alcotest.run "determinism"
    [
      ("loaded-files", loaded_files_tests);
      ("forwards", forwards_tests);
      ("process-table", process_table_tests);
    ]
